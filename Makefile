# CI entry points. `make ci` is what a pre-merge check runs: lint (gofmt,
# go vet, and the gillis-vet static-analysis suite), build, full test
# suite, the race detector on the concurrency-bearing packages (the kernel
# execution engine, the simulation kernel, the platform and the serving
# runtime), and the seeded chaos tests that guard the resilience layer.

GO ?= go
RACE_PKGS := ./internal/par ./internal/nn ./internal/runtime ./internal/platform ./internal/simnet \
	./internal/bench ./internal/trace ./internal/trace/tracetest ./internal/analysis \
	./internal/gateway ./internal/adapt ./internal/batching ./internal/mesh

.PHONY: ci lint vet build test race chaos cover bench-kernels bench-kernels-pin bench-chaos bench-load bench-adapt bench-batch bench-mesh

ci: lint build test race chaos

# lint fails on any unformatted file, then runs go vet and the project's
# own analyzers: the intra-procedural suite (determinism, map-order,
# nil-safety, float-accumulation, dropped-error invariants) plus the
# inter-procedural call-graph analyzers (clockflow, goleak, sharedmut) —
# see DESIGN.md §9. CI sets VET_FLAGS=-github so findings land as inline
# ::error annotations on the pull request.
VET_FLAGS ?=
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/gillis-vet $(VET_FLAGS) ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Chaos tests run with their fixed seed (42, baked into the tests) so a
# resilience regression fails deterministically, never flakily.
chaos:
	$(GO) test ./internal/bench -run TestChaos -count=1
	$(GO) test ./internal/runtime -run 'TestResilient|TestNaiveFails' -count=1

# Per-package coverage gate: fails if any package listed in
# COVERAGE_BASELINE drops below its recorded floor. Regenerate the baseline
# with `./scripts/check_coverage.sh -update`.
cover:
	./scripts/check_coverage.sh

# Run the kernel benches and fail if any ns/op regresses more than 10%
# against the checked-in BENCH_kernels.json baseline.
bench-kernels:
	$(GO) run ./cmd/gillis-bench -figs kernels -kernels-baseline BENCH_kernels.json -kernels-check

# Re-pin the kernel baseline on this machine; the new file carries
# before/after speedup columns relative to the previous pin.
bench-kernels-pin:
	$(GO) run ./cmd/gillis-bench -figs kernels -kernels-baseline BENCH_kernels.json -kernels-json BENCH_kernels.json

# Regenerate the checked-in chaos baseline (fully seeded: same output on
# any machine).
bench-chaos:
	$(GO) run ./cmd/gillis-bench -figs chaos -seed 42 -chaos-json BENCH_chaos.json

# Regenerate the checked-in serving-gateway load baseline (quick-mode sweep,
# fully seeded and ShapeOnly: same output on any machine).
bench-load:
	$(GO) run ./cmd/gillis-bench -quick -seed 42 -load -load-json BENCH_load.json

# Regenerate the checked-in adaptive re-planning baseline (full-horizon
# scenario, fully seeded and ShapeOnly: same output on any machine).
bench-adapt:
	$(GO) run ./cmd/gillis-bench -seed 42 -adapt -adapt-json BENCH_adapt.json

# Regenerate the checked-in cross-query batching baseline (quick-mode sweep,
# fully seeded and ShapeOnly: same output on any machine).
bench-batch:
	$(GO) run ./cmd/gillis-bench -quick -seed 42 -batch -batch-json BENCH_batch.json

# Regenerate the checked-in multi-model serving-mesh baseline (quick-mode
# sweep, fully seeded and ShapeOnly: same output on any machine).
bench-mesh:
	$(GO) run ./cmd/gillis-bench -quick -seed 42 -mesh -mesh-json BENCH_mesh.json
