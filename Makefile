# CI entry points. `make ci` is what a pre-merge check runs: vet, build,
# full test suite, and the race detector on the concurrency-bearing
# packages (the kernel execution engine and everything that drives it).

GO ?= go
RACE_PKGS := ./internal/par ./internal/nn ./internal/runtime

.PHONY: ci vet build test race bench-kernels

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Regenerate the checked-in kernel benchmark baseline on this machine.
bench-kernels:
	$(GO) run ./cmd/gillis-bench -figs kernels -kernels-json BENCH_kernels.json
