// Package gillisbench regenerates every data figure of the Gillis paper's
// evaluation as Go benchmarks: one benchmark per figure, reporting the
// headline quantity of each as a custom metric. Run all of them with
//
//	go test -bench=. -benchmem
//
// Full-fidelity tables (the paper's query counts and sweep ranges) come
// from `go run ./cmd/gillis-bench`; the benchmarks here use the trimmed
// Quick settings so the whole suite completes in minutes.
package gillisbench

import (
	"testing"

	"gillis/internal/bench"
)

func quickCtx(b *testing.B) *bench.Context {
	b.Helper()
	ctx := bench.NewContext(7)
	ctx.Quick = true
	ctx.Queries = 15
	return ctx
}

// BenchmarkFig01SingleFunctionWRN reproduces Fig. 1: single-function
// WRN-50-k latency growth and OOM points on Lambda and GCF.
func BenchmarkFig01SingleFunctionWRN(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig1(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Lambda.MeanMs, "ms/widest-fitting")
	}
}

// BenchmarkFig07ParallelismSweep reproduces Fig. 7: layer-group latency vs
// number of parallel functions on Lambda and KNIX.
func BenchmarkFig07ParallelismSweep(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].KNIX.MeanMs, "ms/knix-widest")
	}
}

// BenchmarkFig09LatencyOptimalCNN reproduces Fig. 9: Gillis-LO vs Default
// for CNN models on Lambda/GCF.
func BenchmarkFig09LatencyOptimalCNN(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig9(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64 = 1e9
		for _, r := range res.Rows {
			if r.Speedup > 0 && r.Speedup < worst {
				worst = r.Speedup
			}
		}
		b.ReportMetric(worst, "x-min-speedup")
	}
}

// BenchmarkFig10KNIX reproduces Fig. 10: the KNIX comparison including thin
// ResNets.
func BenchmarkFig10KNIX(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig10(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Speedup, "x-speedup")
	}
}

// BenchmarkFig11LargeModels reproduces Fig. 11: Gillis vs the S3-staged
// Pipeline for models that do not fit one function.
func BenchmarkFig11LargeModels(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Speedup, "x-vs-pipeline")
	}
}

// BenchmarkFig12RNN reproduces Fig. 12: RNN depth scaling and the
// single-function OOM frontier.
func BenchmarkFig12RNN(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Gillis.MeanMs, "ms/deepest")
	}
}

// BenchmarkFig13SLOAware reproduces Fig. 13: SLO-aware RL vs BO vs BF cost
// and compliance. This is the most expensive figure (it trains RL agents).
func BenchmarkFig13SLOAware(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig13(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var saCost float64
		for _, r := range res.Rows {
			if r.Algorithm == "SA" && r.SLOMet {
				saCost = r.Latency.MeanCost
			}
		}
		b.ReportMetric(saCost, "billed-ms/query")
	}
}

// BenchmarkFig14Grouping reproduces Fig. 14: the latency-optimal grouping
// structure of WRN-34-5.
func BenchmarkFig14Grouping(b *testing.B) {
	ctx := quickCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig14(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Groups)), "groups")
	}
}

// BenchmarkFig15PerfModel reproduces Fig. 15: performance-model prediction
// accuracy across runtimes, communication delays, and end-to-end latency.
func BenchmarkFig15PerfModel(b *testing.B) {
	ctx := quickCtx(b)
	ctx.Queries = 40
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig15(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range res.E2E {
			if r.ErrPct > worst {
				worst = r.ErrPct
			}
		}
		b.ReportMetric(worst, "pct-max-e2e-err")
	}
}
