// Command gillis-bench regenerates the Gillis paper's evaluation figures
// (§V) on the simulated serverless platforms and prints each figure's table.
//
// Usage:
//
//	gillis-bench [-figs 1,7,9,10,11,12,13,14,15,kernels,chaos] [-seed N]
//	             [-queries N] [-quick] [-out FILE] [-parallelism N]
//	             [-faults R1,R2,...] [-chaos-json FILE]
//	             [-kernels-json FILE] [-kernels-baseline FILE] [-kernels-check]
//	             [-cpuprofile FILE] [-memprofile FILE]
//	             [-trace-json FILE] [-load] [-load-json FILE]
//	             [-adapt] [-adapt-json FILE] [-batch] [-batch-json FILE]
//	             [-mesh] [-mesh-json FILE]
//
// -trace-json serves one seeded resilient fork-join query of the chaos
// workload under fault injection and writes its span tree as Chrome
// trace-event JSON (loadable in chrome://tracing or Perfetto), skipping the
// figure sweep.
//
// -load replays bursty arrival traces through the serving gateway, sweeping
// burst rate × autoscaling policy and reporting SLO attainment and cost per
// policy, skipping the figure sweep; -load-json additionally writes the
// sweep as JSON (the BENCH_load.json baseline).
//
// -adapt replays the adaptive re-planning scenario: the same arrival trace
// through each static candidate plan and then through the closed-loop
// controller while the platform degrades, recovers, and takes a traffic
// surge mid-replay, skipping the figure sweep; -adapt-json additionally
// writes the scenario as JSON (the BENCH_adapt.json baseline).
//
// -batch replays Poisson arrival traces through the batching gateway,
// sweeping batch size × arrival rate × planner (latency-optimal vs
// throughput-optimal) and reporting throughput, tail latency, and cost per
// query, skipping the figure sweep; -batch-json additionally writes the
// sweep as JSON (the BENCH_batch.json baseline).
//
// -mesh replays Zipf-skewed multi-model traces through the serving mesh,
// sweeping catalog size × popularity skew × pool size and comparing LRU
// model caching against a no-cache baseline on hit rate, SLO attainment,
// and cost per query, skipping the figure sweep; -mesh-json additionally
// writes the sweep as JSON (the BENCH_mesh.json baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"gillis/internal/bench"
	"gillis/internal/par"
)

type figure struct {
	id  string
	run func(*bench.Context) (interface{ Table() string }, error)
}

func figures() []figure {
	return []figure{
		{"1", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig1(c) }},
		{"7", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig7(c) }},
		{"9", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig9(c) }},
		{"10", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig10(c) }},
		{"11", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig11(c) }},
		{"12", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig12(c) }},
		{"13", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig13(c) }},
		{"14", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig14(c) }},
		{"15", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Fig15(c) }},
		{"ablations", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Ablations(c) }},
		{"burst", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Burst(c) }},
		{"load", func(c *bench.Context) (interface{ Table() string }, error) { return bench.DynamicLoad(c) }},
		{"kernels", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Kernels(c) }},
		{"chaos", func(c *bench.Context) (interface{ Table() string }, error) { return bench.Chaos(c) }},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gillis-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gillis-bench", flag.ContinueOnError)
	figsFlag := fs.String("figs", "1,7,9,10,11,12,13,14,15,ablations,burst,load,kernels,chaos", "comma-separated figures to run")
	seed := fs.Int64("seed", 42, "random seed for all stochastic components")
	queries := fs.Int("queries", 100, "queries per latency measurement")
	quick := fs.Bool("quick", false, "trim sweeps and training budgets")
	out := fs.String("out", "", "also write tables to this file")
	parallelism := fs.Int("parallelism", 0, "kernel parallelism cap for Real-mode math (0 = GOMAXPROCS)")
	kernelsJSON := fs.String("kernels-json", "", "write the kernels figure as JSON to this file (BENCH_kernels.json baseline)")
	kernelsBaseline := fs.String("kernels-baseline", "", "annotate the kernels figure with before/after columns against this prior baseline JSON")
	kernelsCheck := fs.Bool("kernels-check", false, "fail if any kernel ns/op regresses more than 10% against -kernels-baseline")
	faultsFlag := fs.String("faults", "", "comma-separated fault rates for the chaos figure (default 0.02,0.05,0.10)")
	chaosJSON := fs.String("chaos-json", "", "write the chaos figure as JSON to this file (BENCH_chaos.json baseline)")
	loadFlag := fs.Bool("load", false, "run the serving-gateway load sweep (SLO attainment + cost vs burst rate x policy), skipping the figure sweep")
	loadJSON := fs.String("load-json", "", "write the load sweep as JSON to this file (BENCH_load.json baseline; implies -load)")
	adaptFlag := fs.Bool("adapt", false, "run the adaptive re-planning scenario (static plans vs closed-loop controller across fault-regime and load shifts), skipping the figure sweep")
	adaptJSON := fs.String("adapt-json", "", "write the adaptive scenario as JSON to this file (BENCH_adapt.json baseline; implies -adapt)")
	batchFlag := fs.Bool("batch", false, "run the cross-query batching sweep (throughput + cost vs batch size x rate x planner), skipping the figure sweep")
	batchJSON := fs.String("batch-json", "", "write the batching sweep as JSON to this file (BENCH_batch.json baseline; implies -batch)")
	meshFlag := fs.Bool("mesh", false, "run the multi-model serving-mesh sweep (hit rate + SLO + cost vs catalog size x Zipf skew x pool size), skipping the figure sweep")
	meshJSON := fs.String("mesh-json", "", "write the mesh sweep as JSON to this file (BENCH_mesh.json baseline; implies -mesh)")
	traceJSON := fs.String("trace-json", "", "trace one fork-join query and write Chrome trace-event JSON to this file")
	traceFaults := fs.Float64("trace-faults", 0.05, "fault rate for the traced query (-trace-json)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *parallelism > 0 {
		restore := par.SetParallelism(*parallelism)
		defer restore()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}

	ctx := bench.NewContext(*seed)
	ctx.Queries = *queries
	ctx.Quick = *quick
	if *faultsFlag != "" {
		rates, err := parseRates(*faultsFlag)
		if err != nil {
			return err
		}
		ctx.FaultRates = rates
	}

	if *loadFlag || *loadJSON != "" {
		report, err := bench.SweepLoad(ctx)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		fmt.Fprintln(stdout, report.Table())
		if *loadJSON != "" {
			js, err := report.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*loadJSON, js, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "load sweep written to %s\n", *loadJSON)
		}
		return nil
	}

	if *adaptFlag || *adaptJSON != "" {
		report, err := bench.AdaptScenario(ctx)
		if err != nil {
			return fmt.Errorf("adapt: %w", err)
		}
		fmt.Fprintln(stdout, report.Table())
		if *adaptJSON != "" {
			js, err := report.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*adaptJSON, js, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "adaptive scenario written to %s\n", *adaptJSON)
		}
		return nil
	}

	if *batchFlag || *batchJSON != "" {
		report, err := bench.SweepBatch(ctx)
		if err != nil {
			return fmt.Errorf("batch: %w", err)
		}
		fmt.Fprintln(stdout, report.Table())
		if *batchJSON != "" {
			js, err := report.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*batchJSON, js, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "batch sweep written to %s\n", *batchJSON)
		}
		return nil
	}

	if *meshFlag || *meshJSON != "" {
		report, err := bench.SweepMesh(ctx)
		if err != nil {
			return fmt.Errorf("mesh: %w", err)
		}
		fmt.Fprintln(stdout, report.Table())
		if *meshJSON != "" {
			js, err := report.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*meshJSON, js, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "mesh sweep written to %s\n", *meshJSON)
		}
		return nil
	}

	if *traceJSON != "" {
		report, err := bench.QueryTrace(ctx, *traceFaults)
		if err != nil {
			return fmt.Errorf("trace-json: %w", err)
		}
		if err := os.WriteFile(*traceJSON, report.Chrome, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(stdout, report.Table())
		fmt.Fprintf(stdout, "trace written to %s\n", *traceJSON)
		return nil
	}

	want := make(map[string]bool)
	for _, f := range strings.Split(*figsFlag, ",") {
		want[strings.TrimSpace(f)] = true
	}

	var sink io.Writer = stdout
	var file *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		file = f
		sink = io.MultiWriter(stdout, f)
	}

	for _, fig := range figures() {
		if !want[fig.id] {
			continue
		}
		start := time.Now()
		res, err := fig.run(ctx)
		if err != nil {
			return fmt.Errorf("figure %s: %w", fig.id, err)
		}
		if fig.id == "kernels" && *kernelsBaseline != "" {
			report, ok := res.(*bench.KernelReport)
			if !ok {
				return fmt.Errorf("kernels figure returned %T", res)
			}
			base, err := readKernelBaseline(*kernelsBaseline)
			if err != nil {
				return err
			}
			report.Compare(base)
		}
		fmt.Fprintln(sink, res.Table())
		fmt.Fprintf(sink, "(figure %s regenerated in %v)\n\n", fig.id, time.Since(start).Round(time.Millisecond))
		if fig.id == "kernels" {
			report, ok := res.(*bench.KernelReport)
			if !ok {
				return fmt.Errorf("kernels figure returned %T", res)
			}
			if *kernelsJSON != "" {
				js, err := report.JSON()
				if err != nil {
					return err
				}
				if err := os.WriteFile(*kernelsJSON, js, 0o644); err != nil {
					return err
				}
			}
			if *kernelsCheck {
				if *kernelsBaseline == "" {
					return fmt.Errorf("-kernels-check requires -kernels-baseline")
				}
				err := report.CheckRegression(0.10)
				if err != nil {
					// A sub-millisecond kernel can blow the gate on one
					// noisy sample (co-tenant or frequency jitter);
					// re-measure once before declaring a regression. A
					// real slowdown fails both attempts.
					fmt.Fprintf(sink, "kernels: %v\nkernels: re-measuring once to rule out noise\n", err)
					retry, rerr := bench.Kernels(ctx)
					if rerr != nil {
						return rerr
					}
					base, berr := readKernelBaseline(*kernelsBaseline)
					if berr != nil {
						return berr
					}
					retry.Compare(base)
					err = retry.CheckRegression(0.10)
				}
				if err != nil {
					return err
				}
				fmt.Fprintf(sink, "kernels: no ns/op regression beyond 10%% of %s\n", *kernelsBaseline)
			}
		}
		if fig.id == "chaos" && *chaosJSON != "" {
			report, ok := res.(*bench.ChaosReport)
			if !ok {
				return fmt.Errorf("chaos figure returned %T", res)
			}
			js, err := report.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*chaosJSON, js, 0o644); err != nil {
				return err
			}
		}
	}
	if file != nil {
		return file.Close()
	}
	return nil
}

// readKernelBaseline loads a previously written BENCH_kernels.json report.
func readKernelBaseline(path string) (*bench.KernelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kernels baseline: %w", err)
	}
	var r bench.KernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("kernels baseline %s: %w", path, err)
	}
	return &r, nil
}

// parseRates parses the -faults comma-separated probability list.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("invalid fault rate %q (want a probability in [0,1])", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("empty -faults list")
	}
	return rates, nil
}
