package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-figs", "14", "-quick", "-queries", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 14") || !strings.Contains(out, "regenerated in") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tables.txt")
	var buf bytes.Buffer
	if err := run([]string{"-figs", "14", "-quick", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 14") {
		t.Fatal("stdout missing table")
	}
}

func TestRunUnknownFigureIsSkipped(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figs", "999"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Fig") {
		t.Fatal("no figures should have run")
	}
}

func TestFiguresListComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range figures() {
		ids[f.id] = true
	}
	for _, want := range []string{"1", "7", "9", "10", "11", "12", "13", "14", "15", "ablations", "burst", "load", "kernels", "chaos"} {
		if !ids[want] {
			t.Errorf("figure %s missing from registry", want)
		}
	}
}

func TestRunKernelsWritesJSONBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	var buf bytes.Buffer
	if err := run([]string{"-figs", "kernels", "-quick", "-kernels-json", path, "-parallelism", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Kernel forwards") {
		t.Fatalf("stdout missing kernels table:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"gomaxprocs\"") || !strings.Contains(string(data), "conv3x3-c32-28x28") {
		t.Fatalf("baseline JSON malformed:\n%s", data)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	if err := run([]string{"-figs", "14", "-quick", "-queries", "5", "-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunChaosWritesJSONBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_chaos.json")
	var buf bytes.Buffer
	if err := run([]string{"-figs", "chaos", "-quick", "-faults", "0.05", "-chaos-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Chaos sweep") {
		t.Fatalf("stdout missing chaos table:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"goodput\"", "\"fault_rate\": 0.05", "\"resilient\""} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("baseline JSON missing %s:\n%s", want, data)
		}
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates("0.02, 0.1")
	if err != nil || len(rates) != 2 || rates[0] != 0.02 || rates[1] != 0.1 {
		t.Fatalf("parseRates: %v %v", rates, err)
	}
	for _, bad := range []string{"", "x", "-0.1", "1.5"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) should fail", bad)
		}
	}
}

func TestRunLoadWritesJSONBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-load", "-load-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Load sweep") || !strings.Contains(out, "burst-aware") {
		t.Fatalf("stdout missing load sweep table:\n%s", out)
	}
	if strings.Contains(out, "Fig") {
		t.Fatal("-load must skip the figure sweep")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"slo_pct\"") || !strings.Contains(string(data), "\"cost_inflation\"") {
		t.Fatalf("baseline JSON malformed:\n%s", data)
	}
}

// TestRunAdaptWritesJSONBaseline drives the adaptive-scenario flags: the
// table and headline print, the figure sweep is skipped, and the JSON
// baseline carries the headline comparison.
func TestRunAdaptWritesJSONBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_adapt.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-adapt", "-adapt-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Adaptive serving") || !strings.Contains(out, "headline:") {
		t.Fatalf("stdout missing adaptive scenario table:\n%s", out)
	}
	if strings.Contains(out, "Fig") {
		t.Fatal("-adapt must skip the figure sweep")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"adaptive_slo_pct\"") || !strings.Contains(string(data), "\"baseline_bit_exact\"") {
		t.Fatalf("baseline JSON malformed:\n%s", data)
	}
}

// TestRunKernelsBaselineCheck drives the -kernels-baseline/-kernels-check
// gate deterministically: a baseline with absurdly slow pins always passes,
// one with impossibly fast pins always fails (twice — once on the first
// sweep, once on the noise-retry sweep).
func TestRunKernelsBaselineCheck(t *testing.T) {
	dir := t.TempDir()
	pin := filepath.Join(dir, "pin.json")
	var buf bytes.Buffer
	if err := run([]string{"-figs", "kernels", "-quick", "-kernels-json", pin}, &buf); err != nil {
		t.Fatal(err)
	}
	rewrite := func(path string, ns int64) string {
		base, err := readKernelBaseline(pin)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Results {
			base.Results[i].NsPerOp = ns
		}
		js, err := base.JSON()
		if err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(dir, path)
		if err := os.WriteFile(out, js, 0o644); err != nil {
			t.Fatal(err)
		}
		return out
	}

	slow := rewrite("slow.json", 1<<40)
	buf.Reset()
	if err := run([]string{"-figs", "kernels", "-quick", "-kernels-baseline", slow, "-kernels-check"}, &buf); err != nil {
		t.Fatalf("check against a slower baseline must pass: %v", err)
	}
	if !strings.Contains(buf.String(), "no ns/op regression") || !strings.Contains(buf.String(), "base ns/op") {
		t.Fatalf("missing check verdict or baseline columns:\n%s", buf.String())
	}

	fast := rewrite("fast.json", 1)
	buf.Reset()
	err := run([]string{"-figs", "kernels", "-quick", "-kernels-baseline", fast, "-kernels-check"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "regressed more than 10%") {
		t.Fatalf("check against an impossibly fast baseline must fail, got %v", err)
	}
	if !strings.Contains(buf.String(), "re-measuring once") {
		t.Fatalf("gate must retry before failing:\n%s", buf.String())
	}
}

// TestRunKernelsCheckRequiresBaseline: the gate has nothing to compare
// against without -kernels-baseline.
func TestRunKernelsCheckRequiresBaseline(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-figs", "kernels", "-quick", "-kernels-check"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-kernels-baseline") {
		t.Fatalf("want missing-baseline error, got %v", err)
	}
}

// TestReadKernelBaselineErrors covers the two failure shapes: missing file
// and malformed JSON.
func TestReadKernelBaselineErrors(t *testing.T) {
	if _, err := readKernelBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readKernelBaseline(bad); err == nil {
		t.Fatal("malformed baseline JSON must error")
	}
}
