package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-figs", "14", "-quick", "-queries", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 14") || !strings.Contains(out, "regenerated in") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tables.txt")
	var buf bytes.Buffer
	if err := run([]string{"-figs", "14", "-quick", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 14") {
		t.Fatal("stdout missing table")
	}
}

func TestRunUnknownFigureIsSkipped(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figs", "999"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Fig") {
		t.Fatal("no figures should have run")
	}
}

func TestFiguresListComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range figures() {
		ids[f.id] = true
	}
	for _, want := range []string{"1", "7", "9", "10", "11", "12", "13", "14", "15", "ablations", "burst"} {
		if !ids[want] {
			t.Errorf("figure %s missing from registry", want)
		}
	}
}
