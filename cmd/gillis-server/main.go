// Command gillis-server exposes a Gillis deployment over HTTP: real
// inference (exact tensor math) runs through the serving gateway and the
// fork-join runtime on the simulated serverless platform, per request. It
// demonstrates the end-to-end serving path a production front end would
// wrap around Gillis, and its /v1/metrics endpoint aggregates the
// gateway's admission and SLO counters across requests.
//
// Endpoints:
//
//	GET  /healthz     — liveness
//	GET  /v1/model    — model metadata and the active plan
//	POST /v1/predict  — {"shape":[3,32,32],"input":[...]} → prediction
//	GET  /v1/metrics  — plain-text counters and histograms across all requests
//
// Usage:
//
//	gillis-server [-addr :8080] [-modelfile m.glsm] [-platform lambda]
//	              [-slo-ms 500] [-catalog rnn-tiny2,mobilenet-mini]
//
// Without -modelfile a small built-in demo CNN is served. -slo-ms sets the
// per-query latency deadline tracked by the gateway.slo_attained /
// gateway.slo_violated counters (0 disables the deadline).
//
// -catalog additionally serves the named zoo models through the multi-model
// mesh: a predict request naming one of them ({"model":"rnn-tiny2", ...})
// is routed by the mesh's placement layer — paying a model load on first
// use, hitting residency afterwards — and the mesh.hits / mesh.misses /
// mesh.loads counters aggregate in /v1/metrics. Requests without a model
// field keep serving the primary model exactly as before.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"gillis/internal/core"
	"gillis/internal/gateway"
	"gillis/internal/graph"
	"gillis/internal/mesh"
	"gillis/internal/modelio"
	"gillis/internal/models"
	"gillis/internal/nn"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelFile := flag.String("modelfile", "", "ONNX-lite model with weights (default: built-in demo CNN)")
	platformName := flag.String("platform", "lambda", "platform: lambda, gcf, or knix")
	seed := flag.Int64("seed", 1, "seed")
	sloMs := flag.Float64("slo-ms", 0, "per-query latency SLO in simulated ms (0 = no deadline)")
	catalogFlag := flag.String("catalog", "", "comma-separated zoo models additionally served through the multi-model mesh")
	flag.Parse()

	srv, err := newServer(*modelFile, *platformName, *seed, *sloMs, *catalogFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gillis-server:", err)
		os.Exit(1)
	}
	log.Printf("serving %s on %s (platform %s, %d plan groups, %d catalog models)",
		srv.model.Name, *addr, *platformName, len(srv.plan.Groups), len(srv.catalog))
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

// server holds the loaded model and its plan; each request runs one
// simulated fork-join inference with real tensor math, admitted through
// the serving gateway. metrics is shared across the per-request platforms,
// so /v1/metrics aggregates both platform and gateway counters over the
// server's lifetime.
type server struct {
	model   *graph.Graph
	units   []*partition.Unit
	plan    *partition.Plan
	cfg     platform.Config
	seed    int64
	sloMs   float64
	metrics *trace.Registry
	// catalog holds the zoo models additionally served through the
	// multi-model mesh (empty without -catalog).
	catalog []mesh.ModelSpec
}

func newServer(modelFile, platformName string, seed int64, sloMs float64, catalog string) (*server, error) {
	cfg, err := platform.ByName(platformName)
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	if modelFile != "" {
		g, err = modelio.LoadFile(modelFile)
		if err != nil {
			return nil, err
		}
		if !g.Initialized() {
			return nil, fmt.Errorf("model %q has no weights; export with -weights", modelFile)
		}
	} else {
		g = demoModel()
		g.Init(seed)
	}
	units, err := partition.Linearize(g)
	if err != nil {
		return nil, err
	}
	m, err := perf.Build(cfg, seed, 2, 300)
	if err != nil {
		return nil, err
	}
	plan, _, err := core.LatencyOptimal(m, units, core.Config{})
	if err != nil {
		return nil, err
	}
	specs, err := catalogSpecs(catalog, seed)
	if err != nil {
		return nil, err
	}
	return &server{model: g, units: units, plan: plan, cfg: cfg, seed: seed, sloMs: sloMs,
		metrics: trace.NewRegistry(), catalog: specs}, nil
}

// catalogSpecs resolves the -catalog list into mesh catalog entries: each
// zoo model initialized with real weights and planned as a single
// all-on-master group (the mesh demo studies placement and residency, not
// partition structure).
func catalogSpecs(catalog string, seed int64) ([]mesh.ModelSpec, error) {
	if catalog == "" {
		return nil, nil
	}
	var specs []mesh.ModelSpec
	for _, name := range strings.Split(catalog, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		g, err := models.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
		g.Init(seed)
		units, err := partition.Linearize(g)
		if err != nil {
			return nil, fmt.Errorf("catalog %s: %w", name, err)
		}
		plan := &partition.Plan{Model: name, Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}}}
		if err := plan.Validate(units); err != nil {
			return nil, fmt.Errorf("catalog %s: %w", name, err)
		}
		specs = append(specs, mesh.ModelSpec{ID: name, Units: units, Plan: plan})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("catalog: no model names in %q", catalog)
	}
	return specs, nil
}

// demoModel is the built-in CNN served when no model file is given.
func demoModel() *graph.Graph {
	g := graph.New("demo-cnn", []int{3, 32, 32})
	g.MustAdd(nn.NewConv2D("stem", 3, 16, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 16))
	g.MustAdd(nn.NewReLU("stem_relu"))
	g.MustAdd(nn.NewMaxPool2D("pool", 2, 2, 0))
	g.MustAdd(nn.NewConv2D("conv2", 16, 32, 3, 1, 1))
	g.MustAdd(nn.NewReLU("conv2_relu"))
	g.MustAdd(nn.NewGlobalAvgPool("gap"))
	g.MustAdd(nn.NewDense("fc", 32, 10))
	g.MustAdd(nn.NewSoftmax("prob"))
	return g
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.metrics.Summary())
}

// modelInfo is the /v1/model response body.
type modelInfo struct {
	Name     string   `json:"name"`
	InShape  []int    `json:"inShape"`
	Units    int      `json:"units"`
	ParamsMB float64  `json:"paramsMB"`
	Platform string   `json:"platform"`
	Plan     []string `json:"plan"`
	// Catalog lists the zoo models additionally served through the
	// multi-model mesh; omitted without -catalog.
	Catalog []string `json:"catalog,omitempty"`
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	info := modelInfo{
		Name:     s.model.Name,
		InShape:  s.model.InShape(),
		Units:    len(s.units),
		ParamsMB: float64(s.model.ParamBytes()) / 1e6,
		Platform: s.cfg.Name,
	}
	for _, spec := range s.catalog {
		info.Catalog = append(info.Catalog, spec.ID)
	}
	for gi, gp := range s.plan.Groups {
		info.Plan = append(info.Plan, fmt.Sprintf("group %d: units %d..%d %s", gi+1, gp.First, gp.Last, gp.Option))
	}
	writeJSON(w, http.StatusOK, info)
}

// predictRequest is the /v1/predict request body. Model names a -catalog
// entry to serve through the multi-model mesh; empty serves the primary
// model.
type predictRequest struct {
	Model string    `json:"model,omitempty"`
	Shape []int     `json:"shape"`
	Input []float32 `json:"input"`
}

// predictResponse is the /v1/predict response body.
type predictResponse struct {
	Model     string    `json:"model,omitempty"` // catalog model (mesh-routed requests)
	Shape     []int     `json:"shape"`
	Output    []float32 `json:"output"`
	LatencyMs float64   `json:"latencyMs"` // simulated serverless latency
	BilledMs  int64     `json:"billedMs"`
	QueueMs   float64   `json:"queueMs"`   // admission-queue (and batch-forming) wait
	BatchSize int       `json:"batchSize"` // queries served in this query's batch
	SLOOk     bool      `json:"sloOk"`     // within -slo-ms (always true when unset)
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	input, err := tensor.FromData(req.Input, req.Shape...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var res *predictResponse
	if req.Model != "" {
		res, err = s.inferModel(req.Model, input)
		if errors.Is(err, errNotInCatalog) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		res, err = s.infer(input)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// infer runs one fork-join inference on a fresh simulation, admitted
// through the serving gateway as a single-arrival replay so the gateway's
// admission and SLO counters accumulate in the shared metrics registry.
func (s *server) infer(input *tensor.Tensor) (*predictResponse, error) {
	env := simnet.NewEnv()
	p := platform.New(env, s.cfg, s.seed)
	p.UseMetrics(s.metrics)
	d, err := runtime.Deploy(p, s.units, s.plan, runtime.Real)
	if err != nil {
		return nil, err
	}
	if err := d.Prewarm(); err != nil {
		return nil, err
	}
	_, outs, err := gateway.Run(d, []time.Duration{0}, gateway.Config{
		MaxInFlight: 1,
		SLOMs:       s.sloMs,
		Input:       func(int) *tensor.Tensor { return input },
	})
	if err != nil {
		return nil, err
	}
	o := outs[0]
	if o.Err != "" {
		return nil, errors.New(o.Err)
	}
	return &predictResponse{
		Shape:     o.Output.Shape(),
		Output:    o.Output.Data(),
		LatencyMs: o.LatencyMs,
		BilledMs:  o.BilledMs,
		QueueMs:   o.QueueMs,
		BatchSize: o.BatchSize,
		SLOOk:     o.SLOOK,
	}, nil
}

// errNotInCatalog rejects model-tagged requests the server cannot route.
var errNotInCatalog = errors.New("model not in -catalog")

// inferModel runs one mesh-routed inference on a fresh simulation: the
// whole catalog is registered with a single-instance mesh, the request's
// model is loaded (billed like autoscaler prewarming) and served with real
// tensor math, and the mesh's hit/miss/load counters accumulate in the
// shared metrics registry.
func (s *server) inferModel(model string, input *tensor.Tensor) (*predictResponse, error) {
	found := false
	for _, spec := range s.catalog {
		if spec.ID == model {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", errNotInCatalog, model)
	}
	env := simnet.NewEnv()
	p := platform.New(env, s.cfg, s.seed)
	p.UseMetrics(s.metrics)
	m, err := mesh.New(p, mesh.Config{
		Instances:     1,
		InstanceMemMB: s.cfg.WeightBudgetMB,
		Mode:          runtime.Real,
	}, s.catalog)
	if err != nil {
		return nil, err
	}
	_, outs, err := gateway.Run(m, []time.Duration{0}, gateway.Config{
		MaxInFlight: 1,
		SLOMs:       s.sloMs,
		Input:       func(int) *tensor.Tensor { return input },
		Model:       func(int) string { return model },
		Router:      m,
	})
	if err != nil {
		return nil, err
	}
	o := outs[0]
	if o.Err != "" {
		return nil, errors.New(o.Err)
	}
	return &predictResponse{
		Model:     o.Model,
		Shape:     o.Output.Shape(),
		Output:    o.Output.Data(),
		LatencyMs: o.LatencyMs,
		BilledMs:  o.BilledMs,
		QueueMs:   o.QueueMs,
		BatchSize: o.BatchSize,
		SLOOk:     o.SLOOK,
	}, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
