package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gillis/internal/modelio"
	"gillis/internal/tensor"
)

var (
	srvOnce sync.Once
	testSrv *server
	srvErr  error
)

func demoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() { testSrv, srvErr = newServer("", "lambda", 1, 2000, "") })
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	ts := httptest.NewServer(testSrv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthz(t *testing.T) {
	ts := demoServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestModelInfo(t *testing.T) {
	ts := demoServer(t)
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "demo-cnn" || info.Units == 0 || len(info.Plan) == 0 {
		t.Fatalf("bad model info: %+v", info)
	}
}

func TestPredict(t *testing.T) {
	ts := demoServer(t)
	in := tensor.Full(0.5, 3, 32, 32)
	body, err := json.Marshal(predictRequest{Shape: in.Shape(), Input: in.Data()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Output) != 10 || pr.LatencyMs <= 0 || pr.BilledMs <= 0 {
		t.Fatalf("bad prediction: %+v", pr)
	}
	var sum float64
	for _, v := range pr.Output {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("softmax output sums to %v", sum)
	}
	// The HTTP answer must match direct local execution of the same model.
	want, err := testSrv.model.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pr.Output {
		if v != want.Data()[i] {
			t.Fatal("served output differs from local execution")
		}
	}
}

func TestPredictBadRequests(t *testing.T) {
	ts := demoServer(t)
	for _, body := range []string{
		"{not json",
		`{"shape":[2,2],"input":[1]}`,       // length mismatch
		`{"shape":[1,5,5],"input":[0,0,0]}`, // wrong shape for model too
	} {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("request %q should fail", body)
		}
	}
}

func TestNewServerFromModelFile(t *testing.T) {
	g := demoModel()
	g.Init(9)
	path := filepath.Join(t.TempDir(), "demo.glsm")
	if err := modelio.SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}
	s, err := newServer(path, "knix", 2, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.model.Name != "demo-cnn" {
		t.Fatalf("loaded %q", s.model.Name)
	}
	// Weightless model files are rejected.
	if err := modelio.SaveFile(path, demoModel(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(path, "knix", 2, 0, ""); err == nil {
		t.Fatal("expected no-weights error")
	}
	if _, err := newServer("", "lambda", 1, 0, "no-such-model"); err == nil {
		t.Fatal("expected unknown-catalog-model error")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := demoServer(t)
	// A predict first, so the shared registry has data to report.
	in := tensor.Full(0.25, 3, 32, 32)
	body, _ := json.Marshal(predictRequest{Shape: in.Shape(), Input: in.Data()})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", mresp.StatusCode)
	}
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"counter platform.invocations", "counter runtime.queries", "histogram runtime.query_latency_ms",
		// Requests are admitted through the serving gateway, so its
		// admission and SLO counters aggregate here too.
		"counter gateway.queries", "counter gateway.admitted", "counter gateway.served",
		"counter gateway.slo_attained", "histogram gateway.queue_wait_ms", "histogram gateway.total_ms",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics output misses %q:\n%s", want, text)
		}
	}
}

// TestPredictCatalogModel pins the multi-model mesh wiring: a -catalog
// server routes model-tagged requests through the mesh with real tensor
// math, reports the served model, surfaces the mesh counters in
// /v1/metrics, and rejects models outside the catalog.
func TestPredictCatalogModel(t *testing.T) {
	s, err := newServer("", "lambda", 1, 0, "rnn-tiny2")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	// /v1/model advertises the catalog.
	mresp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var info modelInfo
	if err := json.NewDecoder(mresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if len(info.Catalog) != 1 || info.Catalog[0] != "rnn-tiny2" {
		t.Fatalf("catalog not advertised: %+v", info)
	}

	in := tensor.Full(0.5, 16, 320)
	body, err := json.Marshal(predictRequest{Model: "rnn-tiny2", Shape: in.Shape(), Input: in.Data()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "rnn-tiny2" || len(pr.Output) != 4000 || pr.LatencyMs <= 0 {
		t.Fatalf("bad catalog prediction: model=%q out=%d lat=%.1f", pr.Model, len(pr.Output), pr.LatencyMs)
	}
	var sum float64
	for _, v := range pr.Output {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("softmax output sums to %v", sum)
	}

	// A model outside the catalog is a client error.
	bad, _ := json.Marshal(predictRequest{Model: "resnet50", Shape: in.Shape(), Input: in.Data()})
	bresp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("uncataloged model got status %d, want 400", bresp.StatusCode)
	}

	// Mesh accounting reaches the shared registry.
	tresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	text, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter mesh.misses", "counter mesh.loads.rnn-tiny2"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics output misses %q:\n%s", want, text)
		}
	}
}

// TestPredictRespectsSLOFlag pins the gateway wiring: a served demo query
// well under the generous test SLO reports sloOk.
func TestPredictRespectsSLOFlag(t *testing.T) {
	ts := demoServer(t)
	in := tensor.Full(0.1, 3, 32, 32)
	body, _ := json.Marshal(predictRequest{Shape: in.Shape(), Input: in.Data()})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if !pr.SLOOk {
		t.Errorf("warm demo inference (%.1f ms) should be within the %0.f ms test SLO", pr.LatencyMs, 2000.0)
	}
}

// TestPredictReportsQueueAndBatch pins the per-query accounting fields: a
// single-arrival replay is served alone (batch size 1) with no admission
// queueing, and both fields must round-trip the response JSON alongside
// sloOk.
func TestPredictReportsQueueAndBatch(t *testing.T) {
	ts := demoServer(t)
	in := tensor.Full(0.75, 3, 32, 32)
	body, _ := json.Marshal(predictRequest{Shape: in.Shape(), Input: in.Data()})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queueMs", "batchSize", "sloOk"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("response misses %q:\n%s", key, raw)
		}
	}
	var pr predictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.BatchSize != 1 {
		t.Errorf("lone query served with batch size %d, want 1", pr.BatchSize)
	}
	if pr.QueueMs != 0 {
		t.Errorf("lone query with MaxInFlight 1 queued %.3f ms, want 0", pr.QueueMs)
	}
}
