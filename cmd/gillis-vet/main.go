// Command gillis-vet runs the project's custom static-analysis suite over
// the repository: the determinism, ordering, nil-safety, and error-handling
// invariants the golden-trace and chaos tests can only catch dynamically,
// plus the inter-procedural call-graph analyzers (clockflow, goleak,
// sharedmut) that track violations across function and package boundaries.
//
// Usage:
//
//	gillis-vet [-list] [-json] [-github] [packages...]
//
// Packages are directory patterns ("./...", "./internal/trace"); the
// default is "./...". Exit status is 1 when any diagnostic is reported.
// -json emits machine-readable diagnostics (file, line, column, analyzer,
// message, call chain) instead of the human format; -github additionally
// emits GitHub Actions ::error workflow annotations so CI findings land
// inline on the pull request. Findings are suppressed per line with a
// justified `//gillis:allow <analyzer>[,<analyzer>...] <reason>` comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gillis/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gillis-vet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// run executes the suite and returns the process exit code: 0 clean, 1 when
// diagnostics were reported.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("gillis-vet", flag.ContinueOnError)
	fs.SetOutput(stdout)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	github := fs.Bool("github", false, "emit GitHub Actions ::error annotations alongside diagnostics")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		return 2, err
	}
	diags := analysis.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil {
			return r
		}
		return name
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     rel(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Chain:    d.Chain,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 2, err
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = rel(d.Pos.Filename)
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *github {
		for _, d := range diags {
			msg := d.Analyzer + ": " + d.Message
			if len(d.Chain) > 0 {
				msg += " [" + strings.Join(d.Chain, " -> ") + "]"
			}
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s\n",
				rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, annotationEscape(msg))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "gillis-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1, nil
	}
	return 0, nil
}

// annotationEscape applies GitHub Actions workflow-command data escaping.
func annotationEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
