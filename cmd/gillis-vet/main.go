// Command gillis-vet runs the project's custom static-analysis suite over
// the repository: the determinism, ordering, nil-safety, and error-handling
// invariants the golden-trace and chaos tests can only catch dynamically.
//
// Usage:
//
//	gillis-vet [-list] [packages...]
//
// Packages are directory patterns ("./...", "./internal/trace"); the
// default is "./...". Exit status is 1 when any diagnostic is reported.
// Findings are suppressed per line with a justified
// `//gillis:allow <analyzer> <reason>` comment.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gillis/internal/analysis"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gillis-vet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the suite and returns the process exit code: 0 clean, 1 when
// diagnostics were reported.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("gillis-vet", flag.ContinueOnError)
	fs.SetOutput(stdout)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		return 2, err
	}
	diags := analysis.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "gillis-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1, nil
	}
	return 0, nil
}
