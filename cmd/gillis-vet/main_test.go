package main

import (
	"bytes"
	"strings"
	"testing"
)

func runVet(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code, err := run(args, &buf)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String(), code
}

func TestList(t *testing.T) {
	out, code := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"nodeterm", "maporder", "niltrace", "floatacc", "errdrop"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCleanPackage(t *testing.T) {
	out, code := runVet(t, "../../internal/par")
	if code != 0 {
		t.Fatalf("exit %d on clean package, output:\n%s", code, out)
	}
	if out != "" {
		t.Fatalf("unexpected output on clean package:\n%s", out)
	}
}

// TestSeededViolation drives the acceptance criterion end to end: a fixture
// package impersonating internal/platform with a time.Now() must fail with
// a file:line diagnostic naming the analyzer.
func TestSeededViolation(t *testing.T) {
	out, code := runVet(t, "../../internal/analysis/testdata/src/gillis/internal/platform")
	if code != 1 {
		t.Fatalf("exit %d on violating package, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "clock.go:14:11: nodeterm: time.Now is nondeterministic") {
		t.Fatalf("missing file:line nodeterm diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "finding(s)") {
		t.Fatalf("missing findings summary:\n%s", out)
	}
}

func TestLoadError(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"./no-such-dir"}, &buf)
	if err == nil {
		t.Fatal("expected load error")
	}
	if code != 2 {
		t.Fatalf("exit %d on load error, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-definitely-not-a-flag"}, &buf)
	if err == nil || code != 2 {
		t.Fatalf("bad flag: code=%d err=%v, want 2 and an error", code, err)
	}
}
