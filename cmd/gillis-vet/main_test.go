package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runVet(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	code, err := run(args, &buf)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String(), code
}

func TestList(t *testing.T) {
	out, code := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"nodeterm", "maporder", "niltrace", "floatacc", "errdrop", "clockflow", "goleak", "sharedmut"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCleanPackage(t *testing.T) {
	out, code := runVet(t, "../../internal/par")
	if code != 0 {
		t.Fatalf("exit %d on clean package, output:\n%s", code, out)
	}
	if out != "" {
		t.Fatalf("unexpected output on clean package:\n%s", out)
	}
}

// TestSeededViolation drives the acceptance criterion end to end: a fixture
// package impersonating internal/platform with a time.Now() must fail with
// a file:line diagnostic naming the analyzer.
func TestSeededViolation(t *testing.T) {
	out, code := runVet(t, "../../internal/analysis/testdata/src/gillis/internal/platform")
	if code != 1 {
		t.Fatalf("exit %d on violating package, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "clock.go:14:11: nodeterm: time.Now is nondeterministic") {
		t.Fatalf("missing file:line nodeterm diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "finding(s)") {
		t.Fatalf("missing findings summary:\n%s", out)
	}
}

// TestSeededTransitiveViolation drives the inter-procedural acceptance
// criterion end to end: a clocked fixture package reaching time.Now
// exactly two call hops and one package boundary away must fail with a
// clockflow diagnostic carrying the full call chain.
func TestSeededTransitiveViolation(t *testing.T) {
	out, code := runVet(t,
		"../../internal/analysis/testdata/src/gillis/internal/runtime",
		"../../internal/analysis/testdata/src/gillis/internal/stats")
	if code != 1 {
		t.Fatalf("exit %d on violating packages, want 1; output:\n%s", code, out)
	}
	want := "replay.go:21:15: clockflow: call to gillis/internal/stats.Jitter transitively reaches nondeterministic time.Now (2 hop(s) away); gillis/internal/runtime is simnet-clocked (derive it from the Env clock or a seeded *rand.Rand) [gillis/internal/runtime.Replay -> gillis/internal/stats.Jitter -> gillis/internal/stats.wallNanos -> time.Now]"
	if !strings.Contains(out, want) {
		t.Fatalf("missing two-hop clockflow diagnostic with call chain:\nwant substring: %s\ngot:\n%s", want, out)
	}
}

// TestJSONOutput checks the machine-readable form: parseable, positioned,
// and carrying the call chain for inter-procedural findings.
func TestJSONOutput(t *testing.T) {
	out, code := runVet(t, "-json",
		"../../internal/analysis/testdata/src/gillis/internal/runtime",
		"../../internal/analysis/testdata/src/gillis/internal/stats")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	var diags []struct {
		File     string   `json:"file"`
		Line     int      `json:"line"`
		Col      int      `json:"col"`
		Analyzer string   `json:"analyzer"`
		Message  string   `json:"message"`
		Chain    []string `json:"chain"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json produced no diagnostics")
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "clockflow" && d.Line == 21 {
			found = true
			if len(d.Chain) != 4 || d.Chain[len(d.Chain)-1] != "time.Now" {
				t.Errorf("clockflow chain = %v, want 4 elements ending in time.Now", d.Chain)
			}
			if !strings.HasSuffix(d.File, "replay.go") {
				t.Errorf("file = %q, want replay.go", d.File)
			}
		}
	}
	if !found {
		t.Fatalf("no clockflow diagnostic at line 21 in -json output:\n%s", out)
	}
	if strings.Contains(out, "finding(s)") {
		t.Errorf("-json output must not carry the human summary:\n%s", out)
	}
}

// TestGitHubAnnotations checks -github emits workflow ::error commands.
func TestGitHubAnnotations(t *testing.T) {
	out, code := runVet(t, "-github",
		"../../internal/analysis/testdata/src/gillis/internal/platform")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "::error file=") || !strings.Contains(out, "line=14,col=11::nodeterm:") {
		t.Fatalf("missing ::error annotation:\n%s", out)
	}
}

func TestLoadError(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"./no-such-dir"}, &buf)
	if err == nil {
		t.Fatal("expected load error")
	}
	if code != 2 {
		t.Fatalf("exit %d on load error, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-definitely-not-a-flag"}, &buf)
	if err == nil || code != 2 {
		t.Fatalf("bad flag: code=%d err=%v, want 2 and an error", code, err)
	}
}
