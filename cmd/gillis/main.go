// Command gillis is the CLI front end of the Gillis reproduction: inspect
// benchmark models, profile simulated platforms, compute partitioning plans
// (latency-optimal or SLO-aware), serve queries over the fork-join runtime,
// and export models in the ONNX-lite interchange format.
//
// Usage:
//
//	gillis inspect   -model vgg16
//	gillis profile   -platform lambda
//	gillis partition -model vgg16 -platform lambda [-slo 800]
//	gillis serve     -model vgg16 -platform lambda [-slo 800] [-queries 100] [-trace t.json]
//	gillis export    -model vgg11 -out vgg11.glsm [-weights]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gillis/internal/core"
	"gillis/internal/modelio"
	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/profile"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
	"gillis/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gillis:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gillis <inspect|profile|partition|serve|export> [flags]")
	}
	switch args[0] {
	case "inspect":
		return cmdInspect(args[1:], out)
	case "profile":
		return cmdProfile(args[1:], out)
	case "partition":
		return cmdPartition(args[1:], out)
	case "serve":
		return cmdServe(args[1:], out)
	case "export":
		return cmdExport(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func loadUnits(model string) ([]*partition.Unit, error) {
	g, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	return partition.Linearize(g)
}

func cmdInspect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	model := fs.String("model", "vgg16", "benchmark model (vgg11/16/19, resnet34/50/101, wrnD-K, rnnN)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	units, err := loadUnits(*model)
	if err != nil {
		return err
	}
	var flops, params int64
	fmt.Fprintf(out, "model %s: %d units after branch/element-wise merging\n", *model, len(units))
	fmt.Fprintf(out, "unit |            name | out shape      |  GFLOPs | weights MB | spatial | channel\n")
	for _, u := range units {
		flops += u.FLOPs
		params += u.ParamBytes
		fmt.Fprintf(out, "%4d | %15s | %-14s | %7.2f | %10.1f | %7v | %v\n",
			u.Index, trim(u.Name, 15), shapeStr(u.OutShape), float64(u.FLOPs)/1e9, float64(u.ParamBytes)/1e6, u.Spatial, u.Channel)
	}
	fmt.Fprintf(out, "total: %.2f GFLOPs, %.0f MB of weights\n", float64(flops)/1e9, float64(params)/1e6)
	return nil
}

func cmdProfile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	platformName := fs.String("platform", "lambda", "platform: lambda, gcf, or knix")
	seed := fs.Int64("seed", 1, "profiling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := platform.ByName(*platformName)
	if err != nil {
		return err
	}
	samples, err := profile.ProfileLayers(cfg, *seed, 3)
	if err != nil {
		return err
	}
	fits, err := profile.FitLayerModels(samples)
	if err != nil {
		return err
	}
	m, err := perf.Build(cfg, *seed, 3, 400)
	if err != nil {
		return err
	}
	comm := m.Comm()
	fmt.Fprintf(out, "platform %s profile:\n", *platformName)
	fmt.Fprintf(out, "  layer-runtime regressions (weighted least squares):\n")
	for _, q := range profile.FitQualityReport(samples, fits) {
		fmt.Fprintf(out, "    %-14s %4d samples  R²=%.4f  mean rel err %.2f%%\n",
			q.Kind, q.Samples, q.R2, q.MeanRelErr*100)
	}
	fmt.Fprintf(out, "  payload bandwidth: %.1f MB/s\n", m.NetMBps())
	fmt.Fprintf(out, "  invocation overhead: EMG(mu=%.2f ms, sigma=%.2f ms, tau=%.2f ms), mean %.2f ms\n",
		comm.Mu, comm.Sigma, 1/comm.Lambda, comm.Mean())
	fmt.Fprintf(out, "  expected max overhead across n concurrent workers:\n")
	for _, n := range []int{1, 2, 4, 8, 16} {
		fmt.Fprintf(out, "    n=%2d: %.1f ms\n", n, m.MaxCommMs(n))
	}
	return nil
}

func cmdPartition(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("partition", flag.ContinueOnError)
	model := fs.String("model", "vgg16", "benchmark model")
	platformName := fs.String("platform", "lambda", "platform: lambda, gcf, or knix")
	slo := fs.Float64("slo", 0, "latency SLO in ms; 0 selects latency-optimal mode")
	episodes := fs.Int("episodes", 1500, "RL training episodes (SLO-aware mode)")
	seed := fs.Int64("seed", 1, "seed")
	planOut := fs.String("out", "", "write the plan as JSON to this file")
	explain := fs.Bool("explain", false, "print a per-group latency/cost breakdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	units, err := loadUnits(*model)
	if err != nil {
		return err
	}
	cfg, err := platform.ByName(*platformName)
	if err != nil {
		return err
	}
	m, err := perf.Build(cfg, *seed, 2, 300)
	if err != nil {
		return err
	}
	var plan *partition.Plan
	if *slo <= 0 {
		var pred perf.PlanPrediction
		plan, pred, err = core.LatencyOptimal(m, units, core.Config{})
		if err != nil {
			return err
		}
		fmt.Fprint(out, plan)
		fmt.Fprintf(out, "predicted latency %.0f ms, billed cost %d ms\n", pred.LatencyMs, pred.BilledMs)
	} else {
		res, err := core.SLOAware(m, units, *slo, core.SLOConfig{Episodes: *episodes, Seed: *seed})
		if err != nil {
			return err
		}
		plan = res.Plan
		fmt.Fprint(out, res.Plan)
		fmt.Fprintf(out, "predicted latency %.0f ms, billed cost %d ms\n", res.Pred.LatencyMs, res.Pred.BilledMs)
		if res.Met {
			fmt.Fprintf(out, "SLO of %.0f ms is met\n", *slo)
		} else {
			fmt.Fprintf(out, "WARNING: SLO of %.0f ms is NOT met\n", *slo)
		}
	}
	if *explain {
		breakdown, err := core.Explain(m, units, plan)
		if err != nil {
			return err
		}
		fmt.Fprint(out, breakdown)
	}
	if *planOut != "" {
		if err := partition.SavePlanFile(*planOut, plan); err != nil {
			return err
		}
		fmt.Fprintf(out, "plan written to %s\n", *planOut)
	}
	return nil
}

func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	model := fs.String("model", "vgg16", "benchmark model")
	platformName := fs.String("platform", "lambda", "platform: lambda, gcf, or knix")
	slo := fs.Float64("slo", 0, "latency SLO in ms; 0 selects latency-optimal mode")
	queries := fs.Int("queries", 100, "warm queries to serve")
	seed := fs.Int64("seed", 1, "seed")
	planFile := fs.String("plan", "", "serve a previously saved plan instead of planning")
	traceOut := fs.String("trace", "", "write the first query's span tree as Chrome trace-event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	units, err := loadUnits(*model)
	if err != nil {
		return err
	}
	cfg, err := platform.ByName(*platformName)
	if err != nil {
		return err
	}
	m, err := perf.Build(cfg, *seed, 2, 300)
	if err != nil {
		return err
	}
	var plan *partition.Plan
	switch {
	case *planFile != "":
		plan, err = partition.LoadPlanFile(*planFile)
		if err == nil {
			err = plan.Validate(units)
		}
	case *slo <= 0:
		plan, _, err = core.LatencyOptimal(m, units, core.Config{})
	default:
		var res core.SLOResult
		res, err = core.SLOAware(m, units, *slo, core.SLOConfig{Seed: *seed})
		if err == nil {
			plan = res.Plan
		}
	}
	if err != nil {
		return err
	}

	env := simnet.NewEnv()
	p := platform.New(env, cfg, *seed)
	var lats []float64
	var costs []float64
	var tr *trace.Trace
	var serveErr error
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
		if err != nil {
			serveErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			serveErr = err
			return
		}
		for i := 0; i < *queries; i++ {
			var r runtime.Result
			var err error
			if i == 0 && *traceOut != "" {
				r, tr, err = d.ServeTraced(proc, nil)
			} else {
				r, err = d.Serve(proc, nil)
			}
			if err != nil {
				serveErr = err
				return
			}
			lats = append(lats, r.LatencyMs)
			costs = append(costs, float64(r.BilledMs))
		}
	})
	if err := env.Run(); err != nil {
		return err
	}
	if serveErr != nil {
		return serveErr
	}
	fmt.Fprint(out, plan)
	fmt.Fprintf(out, "served %d queries on %s: mean %.0f ms, p99 %.0f ms, mean billed %.0f ms/query\n",
		*queries, *platformName, stats.Mean(lats), stats.Percentile(lats, 99), stats.Mean(costs))
	if tr != nil {
		if err := os.WriteFile(*traceOut, tr.ChromeJSON(nil), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "first query's trace written to %s (%d spans, Chrome trace-event JSON)\n", *traceOut, tr.Len())
	}
	return nil
}

func cmdExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	model := fs.String("model", "vgg11", "benchmark model")
	path := fs.String("out", "", "output file (.glsm)")
	weights := fs.Bool("weights", false, "materialize and include weights")
	seed := fs.Int64("seed", 1, "weight initialization seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("export: -out is required")
	}
	g, err := models.ByName(*model)
	if err != nil {
		return err
	}
	if *weights {
		g.Init(*seed)
	}
	if err := modelio.SaveFile(*path, g, *weights); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%s, %d ops, %.0f MB of weights%s)\n",
		*path, *model, g.Len(), float64(g.ParamBytes())/1e6,
		map[bool]string{true: ", included", false: ", structure only"}[*weights])
	return nil
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

func shapeStr(shape []int) string {
	s := ""
	for i, d := range shape {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	return s
}
