package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestUsageErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Fatal("expected usage error")
	}
	if _, err := runCmd(t, "bogus"); err == nil {
		t.Fatal("expected unknown-subcommand error")
	}
}

func TestInspect(t *testing.T) {
	out, err := runCmd(t, "inspect", "-model", "vgg11")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vgg11") || !strings.Contains(out, "GFLOPs") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := runCmd(t, "inspect", "-model", "nosuch"); err == nil {
		t.Fatal("expected unknown-model error")
	}
}

func TestProfile(t *testing.T) {
	out, err := runCmd(t, "profile", "-platform", "knix")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "invocation overhead") || !strings.Contains(out, "n=16") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestPartitionLatencyOptimal(t *testing.T) {
	out, err := runCmd(t, "partition", "-model", "rnn3", "-platform", "lambda")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan for rnn3") || !strings.Contains(out, "predicted latency") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestPartitionSLOAware(t *testing.T) {
	out, err := runCmd(t, "partition", "-model", "rnn3", "-platform", "lambda",
		"-slo", "2000", "-episodes", "200")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SLO") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestServe(t *testing.T) {
	out, err := runCmd(t, "serve", "-model", "rnn3", "-platform", "lambda", "-queries", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "served 5 queries") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.glsm")
	out, err := runCmd(t, "export", "-model", "rnn1", "-out", path, "-weights")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := runCmd(t, "export", "-model", "rnn1"); err == nil {
		t.Fatal("expected missing -out error")
	}
}

func TestUnknownPlatformRejected(t *testing.T) {
	for _, args := range [][]string{
		{"profile", "-platform", "azure"},
		{"partition", "-model", "rnn1", "-platform", "azure"},
		{"serve", "-model", "rnn1", "-platform", "azure"},
	} {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("%v: expected unknown-platform error", args)
		}
	}
}

func TestServeWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	out, err := runCmd(t, "serve", "-model", "rnn3", "-platform", "lambda", "-queries", "2", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace written to") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not valid Chrome JSON: %v", err)
	}
	if len(events) < 3 {
		t.Fatalf("suspiciously small trace: %d events", len(events))
	}
}
