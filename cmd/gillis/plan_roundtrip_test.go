package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// partition -out → serve -plan roundtrip: the workflow a user follows to
// plan once and deploy many times.
func TestPlanFileWorkflow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rnn3.plan.json")
	out, err := runCmd(t, "partition", "-model", "rnn3", "-platform", "lambda", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan written to") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	out, err = runCmd(t, "serve", "-model", "rnn3", "-platform", "lambda", "-plan", path, "-queries", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "served 5 queries") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// A plan for the wrong model must be rejected at validation.
	if _, err := runCmd(t, "serve", "-model", "vgg11", "-platform", "lambda", "-plan", path, "-queries", "1"); err == nil {
		t.Fatal("expected plan/model mismatch error")
	}
}
