// Large-model serving: WRN-50-5 has ~2.4 GB of weights — far beyond a
// single 1.4 GB serverless function. This example shows the three serving
// strategies from the paper's §V-B side by side: Default (fails with OOM),
// Pipeline (a single function streaming weights from S3), and Gillis
// (fork-join model parallelism), reproducing the Fig. 11 comparison.
package main

import (
	"fmt"
	"log"

	"gillis/internal/core"
	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := models.WideResNet(50, 5)
	if err != nil {
		return err
	}
	units, err := partition.Linearize(g)
	if err != nil {
		return err
	}
	fmt.Printf("WRN-50-5: %.1f GFLOPs per query, %.0f MB of weights, %d units\n",
		gflops(units), float64(g.ParamBytes())/1e6, len(units))

	cfg := platform.AWSLambda()
	fmt.Printf("platform: %s (%d MB weight budget per function)\n\n", cfg.Name, cfg.WeightBudgetMB)

	// Strategy 1: Default single-function serving — OOM.
	env := simnet.NewEnv()
	p := platform.New(env, cfg, 1)
	if _, err := runtime.DeployDefault(p, units, runtime.ShapeOnly); err != nil {
		fmt.Printf("default serving: %v\n\n", err)
	} else {
		return fmt.Errorf("default deployment unexpectedly succeeded")
	}

	// Strategy 2: Pipeline over object storage.
	const queries = 20
	env = simnet.NewEnv()
	p = platform.New(env, cfg, 2)
	var pipeLat, pipeLoad, pipeComp []float64
	var runErr error
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.DeployPipeline(p, units, runtime.ShapeOnly)
		if err != nil {
			runErr = err
			return
		}
		fmt.Printf("pipeline: staged into %d storage chunks\n", d.Chunks())
		if err := d.Prewarm(); err != nil {
			runErr = err
			return
		}
		for i := 0; i < queries; i++ {
			r, err := d.Serve(proc, nil)
			if err != nil {
				runErr = err
				return
			}
			pipeLat = append(pipeLat, r.LatencyMs)
			pipeLoad = append(pipeLoad, r.LoadMs)
			pipeComp = append(pipeComp, r.ComputeMs)
		}
	})
	if err := env.Run(); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	fmt.Printf("pipeline latency: %.0f ms/query (%.0f ms loading weights, %.0f ms computing)\n\n",
		stats.Mean(pipeLat), stats.Mean(pipeLoad), stats.Mean(pipeComp))

	// Strategy 3: Gillis fork-join parallelism with the latency-optimal
	// plan.
	model, err := perf.Build(cfg, 3, 2, 300)
	if err != nil {
		return err
	}
	plan, pred, err := core.LatencyOptimal(model, units, core.Config{})
	if err != nil {
		return err
	}
	fmt.Print(plan)

	env = simnet.NewEnv()
	p = platform.New(env, cfg, 4)
	var lat []float64
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
		if err != nil {
			runErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			runErr = err
			return
		}
		for i := 0; i < queries; i++ {
			r, err := d.Serve(proc, nil)
			if err != nil {
				runErr = err
				return
			}
			lat = append(lat, r.LatencyMs)
		}
	})
	if err := env.Run(); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	fmt.Printf("gillis latency: %.0f ms/query (predicted %.0f ms)\n", stats.Mean(lat), pred.LatencyMs)
	fmt.Printf("speedup over pipeline: %.1fx\n", stats.Mean(pipeLat)/stats.Mean(lat))
	return nil
}

func gflops(units []*partition.Unit) float64 {
	var total int64
	for _, u := range units {
		total += u.FLOPs
	}
	return float64(total) / 1e9
}
