// Platform comparison: serve the same model on all three platforms the
// paper evaluates (AWS Lambda, Google Cloud Functions, KNIX) and show how
// platform characteristics — billing granularity, network bandwidth,
// invocation overhead — change both the optimal plan and the achieved
// latency (§V-B, Figs. 9-10).
package main

import (
	"fmt"
	"log"

	"gillis/internal/core"
	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := models.VGG(16)
	if err != nil {
		return err
	}
	units, err := partition.Linearize(g)
	if err != nil {
		return err
	}
	fmt.Println("serving VGG-16 on three serverless platforms")
	fmt.Println("platform | default ms | gillis ms | speedup | widest group | billed ms/query")

	for i, name := range []string{"lambda", "gcf", "knix"} {
		cfg, err := platform.ByName(name)
		if err != nil {
			return err
		}
		model, err := perf.Build(cfg, int64(i+1), 2, 300)
		if err != nil {
			return err
		}
		plan, _, err := core.LatencyOptimal(model, units, core.Config{})
		if err != nil {
			return err
		}
		widest := 1
		for _, gp := range plan.Groups {
			if gp.Option.Parts > widest {
				widest = gp.Option.Parts
			}
		}
		defaultMs, _, err := serve(cfg, int64(100+i), units, nil)
		if err != nil {
			return err
		}
		gillisMs, cost, err := serve(cfg, int64(200+i), units, plan)
		if err != nil {
			return err
		}
		fmt.Printf("%8s | %10.0f | %9.0f | %6.2fx | %12d | %.0f\n",
			name, defaultMs, gillisMs, defaultMs/gillisMs, widest, cost)
	}
	return nil
}

// serve measures a plan (or Default when plan is nil) with 60 warm queries.
func serve(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan) (float64, float64, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	var lats, costs []float64
	var serveErr error
	env.Go("client", func(proc *simnet.Proc) {
		var d *runtime.Deployment
		var err error
		if plan == nil {
			d, err = runtime.DeployDefault(p, units, runtime.ShapeOnly)
		} else {
			d, err = runtime.Deploy(p, units, plan, runtime.ShapeOnly)
		}
		if err != nil {
			serveErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			serveErr = err
			return
		}
		for i := 0; i < 60; i++ {
			r, err := d.Serve(proc, nil)
			if err != nil {
				serveErr = err
				return
			}
			lats = append(lats, r.LatencyMs)
			costs = append(costs, float64(r.BilledMs))
		}
	})
	if err := env.Run(); err != nil {
		return 0, 0, err
	}
	if serveErr != nil {
		return 0, 0, serveErr
	}
	return stats.Mean(lats), stats.Mean(costs), nil
}
