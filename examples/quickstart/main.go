// Quickstart: build a small CNN, partition it with the latency-optimal
// algorithm, deploy it to the simulated Lambda platform, and serve a real
// inference query through the fork-join runtime — verifying that the
// partitioned answer is bit-identical to local execution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gillis/internal/core"
	"gillis/internal/graph"
	"gillis/internal/modelio"
	"gillis/internal/nn"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Define a model: a small CNN with a residual block.
	g := graph.New("demo-cnn", []int{3, 32, 32})
	g.MustAdd(nn.NewConv2D("stem", 3, 16, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 16))
	g.MustAdd(nn.NewReLU("stem_relu"))
	pool := g.MustAdd(nn.NewMaxPool2D("pool", 2, 2, 0))
	c1 := g.MustAdd(nn.NewConv2D("res_conv1", 16, 16, 3, 1, 1), pool)
	b1 := g.MustAdd(nn.NewBatchNorm("res_bn1", 16), c1)
	r1 := g.MustAdd(nn.NewReLU("res_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D("res_conv2", 16, 16, 3, 1, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm("res_bn2", 16), c2)
	add := g.MustAdd(nn.NewAdd("res_add"), b2, pool)
	g.MustAdd(nn.NewReLU("res_relu2"), add)
	g.MustAdd(nn.NewGlobalAvgPool("gap"))
	g.MustAdd(nn.NewDense("fc", 16, 10))
	g.MustAdd(nn.NewSoftmax("prob"))
	g.Init(1)

	// 2. Round-trip through the ONNX-lite interchange format, as a user
	// deploying a pre-trained model would.
	path := "/tmp/demo-cnn.glsm"
	if err := modelio.SaveFile(path, g, true); err != nil {
		return err
	}
	loaded, err := modelio.LoadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("model: %s, %d ops, %.1f KB of weights\n", loaded.Name, loaded.Len(), float64(loaded.ParamBytes())/1e3)

	// 3. Linearize into units (branch merging + element-wise fusion).
	units, err := partition.Linearize(loaded)
	if err != nil {
		return err
	}
	fmt.Printf("linearized into %d units\n", len(units))

	// 4. Profile the platform and compute the latency-optimal plan.
	cfg := platform.AWSLambda()
	model, err := perf.Build(cfg, 1, 2, 300)
	if err != nil {
		return err
	}
	plan, pred, err := core.LatencyOptimal(model, units, core.Config{})
	if err != nil {
		return err
	}
	fmt.Print(plan)
	fmt.Printf("predicted latency: %.1f ms\n", pred.LatencyMs)

	// 5. Serve a real query through the fork-join runtime and check the
	// output against local execution.
	input := tensor.Rand(rand.New(rand.NewSource(2)), 1, 3, 32, 32)
	want, err := loaded.Forward(input)
	if err != nil {
		return err
	}

	// For a model this small the DP rightly keeps everything on the master
	// (parallelization cannot pay for its communication). To demonstrate
	// the fork-join machinery, also serve under an explicitly parallel
	// plan: channel-partition the stem, spatially partition the residual
	// block across master + workers.
	parallel := &partition.Plan{Model: loaded.Name, Groups: []partition.GroupPlan{
		{First: 0, Last: 0, Option: partition.Option{Dim: partition.DimChannel, Parts: 2}},
		{First: 1, Last: 2, Option: partition.Option{Dim: partition.DimSpatial, Parts: 3}, OnMaster: true},
		{First: 3, Last: 5, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	if err := parallel.Validate(units); err != nil {
		return err
	}

	env := simnet.NewEnv()
	p := platform.New(env, cfg, 7)
	var serveErr error
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.Deploy(p, units, plan, runtime.Real)
		if err != nil {
			serveErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			serveErr = err
			return
		}
		res, err := d.Serve(proc, input)
		if err != nil {
			serveErr = err
			return
		}
		if !tensor.Equal(res.Output, want) {
			serveErr = fmt.Errorf("partitioned output differs from local execution")
			return
		}
		best, prob := 0, float32(0)
		for i, v := range res.Output.Data() {
			if v > prob {
				best, prob = i, v
			}
		}
		fmt.Printf("served in %.1f ms (simulated), billed %d ms; prediction: class %d (p=%.3f)\n",
			res.LatencyMs, res.BilledMs, best, prob)

		dp, err := runtime.Deploy(p, units, parallel, runtime.Real)
		if err != nil {
			serveErr = err
			return
		}
		if err := dp.Prewarm(); err != nil {
			serveErr = err
			return
		}
		resP, err := dp.Serve(proc, input)
		if err != nil {
			serveErr = err
			return
		}
		if !tensor.Equal(resP.Output, want) {
			serveErr = fmt.Errorf("fork-join output differs from local execution")
			return
		}
		fmt.Printf("fork-join plan (channel×2 + spatial×3 across 4 workers): %.1f ms, billed %d ms\n",
			resP.LatencyMs, resP.BilledMs)
		fmt.Println("both outputs are bit-identical to local execution ✓")
	})
	if err := env.Run(); err != nil {
		return err
	}
	return serveErr
}
