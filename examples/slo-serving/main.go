// SLO-aware serving: train the hierarchical RL planner (§IV-C) to serve
// VGG-16 under a latency SLO at minimum billed cost, then compare against
// the latency-optimal plan's cost — demonstrating the latency/cost
// trade-off Gillis's two modes expose.
package main

import (
	"fmt"
	"log"

	"gillis/internal/core"
	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := models.VGG(16)
	if err != nil {
		return err
	}
	units, err := partition.Linearize(g)
	if err != nil {
		return err
	}
	cfg := platform.AWSLambda()
	model, err := perf.Build(cfg, 1, 2, 300)
	if err != nil {
		return err
	}

	// Latency-optimal mode: as fast as possible, cost ignored.
	loPlan, loPred, err := core.LatencyOptimal(model, units, core.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("latency-optimal: predicted %.0f ms at %d billed ms/query\n", loPred.LatencyMs, loPred.BilledMs)

	// SLO-aware mode: the user tolerates 2x the optimal latency; the RL
	// planner finds a cheaper strategy within that budget.
	tmax := loPred.LatencyMs * 2
	fmt.Printf("training RL planner for SLO T_max = %.0f ms...\n", tmax)
	res, err := core.SLOAware(model, units, tmax, core.SLOConfig{Episodes: 1500, Seed: 1})
	if err != nil {
		return err
	}
	if !res.Met {
		return fmt.Errorf("SLO not met (best latency %.0f ms)", res.Pred.LatencyMs)
	}
	fmt.Print(res.Plan)
	fmt.Printf("slo-aware: predicted %.0f ms at %d billed ms/query\n", res.Pred.LatencyMs, res.Pred.BilledMs)
	fmt.Printf("predicted cost saving vs latency-optimal: %.2fx\n\n",
		float64(loPred.BilledMs)/float64(res.Pred.BilledMs))

	// Serve both plans and compare measured cost.
	measure := func(plan *partition.Plan, seed int64) (float64, float64, error) {
		env := simnet.NewEnv()
		p := platform.New(env, cfg, seed)
		var lats, costs []float64
		var serveErr error
		env.Go("client", func(proc *simnet.Proc) {
			d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
			if err != nil {
				serveErr = err
				return
			}
			if err := d.Prewarm(); err != nil {
				serveErr = err
				return
			}
			for i := 0; i < 100; i++ {
				r, err := d.Serve(proc, nil)
				if err != nil {
					serveErr = err
					return
				}
				lats = append(lats, r.LatencyMs)
				costs = append(costs, float64(r.BilledMs))
			}
		})
		if err := env.Run(); err != nil {
			return 0, 0, err
		}
		return stats.Mean(lats), stats.Mean(costs), serveErr
	}
	loLat, loCost, err := measure(loPlan, 10)
	if err != nil {
		return err
	}
	saLat, saCost, err := measure(res.Plan, 11)
	if err != nil {
		return err
	}
	fmt.Printf("measured latency-optimal: %.0f ms, %.0f billed ms/query\n", loLat, loCost)
	fmt.Printf("measured slo-aware:       %.0f ms, %.0f billed ms/query (SLO %.0f ms: met=%v)\n",
		saLat, saCost, tmax, saLat <= tmax)
	fmt.Printf("measured cost saving: %.2fx\n", loCost/saCost)
	return nil
}
