module gillis

go 1.22
