// Package adapt closes the serving loop: a deterministic controller that is
// ticked by the gateway on the virtual clock, compares attained latency, SLO
// attainment, and fault pressure against the perf model's predictions,
// detects drift and fault-regime changes with an online Page-Hinkley test,
// and reacts along a degradation ladder — switch between pre-computed
// candidate plans, re-run the DP planner against updated priors, and as the
// last rung command gateway brownout with hysteresis on the way back out.
//
// Every decision is a pure function of the gateway's ControlObservation
// stream and the controller's own state: no wall clock, no randomness. For a
// fixed seed the decision log replays bit-exactly, which the bench harness
// and property tests pin.
package adapt

import (
	"fmt"
	"math"
	"strings"
	"time"

	"gillis/internal/core"
	"gillis/internal/gateway"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/runtime"
	"gillis/internal/trace"
)

// Regime classifies the platform's health as seen through the gateway's
// sliding window.
type Regime int

const (
	// Healthy: the active plan is holding the SLO target and fault pressure
	// is nominal.
	Healthy Regime = iota
	// Degraded: fault pressure, attainment, or detected drift say the
	// current plan no longer matches the platform.
	Degraded
	// Critical: attainment collapsed below the brownout threshold — no
	// candidate is expected to hold the SLO.
	Critical
)

func (r Regime) String() string {
	switch r {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("regime(%d)", int(r))
}

// Candidate is one pre-computed plan the controller can activate. Index is
// the plan's slot in the runtime.Switcher; Plan is used to predict its base
// latency and cost at construction time.
type Candidate struct {
	Name string
	// Index is the candidate's deployment index in the Switcher.
	Index int
	// Plan is the partition plan the deployment at Index serves.
	Plan *partition.Plan
	// Resilient marks deployments configured with retries / master fallback;
	// under fault pressure only resilient candidates are eligible.
	Resilient bool
}

// Config tunes the controller. Zero values take the documented defaults.
type Config struct {
	// SLOMs is the latency objective the gateway enforces (required).
	SLOMs float64
	// TargetPct is the windowed SLO attainment below which the regime is
	// degraded (default 90).
	TargetPct float64
	// MinWindow is the settle count before the controller starts deciding
	// (default 10).
	MinWindow int
	// Alpha is the EMA smoothing factor for the latency-inflation and
	// comm-overhead priors (default 0.3).
	Alpha float64
	// PHDelta and PHThreshold tune the Page-Hinkley change-point test on the
	// latency-inflation signal (defaults 0.05 and 0.5).
	PHDelta     float64
	PHThreshold float64
	// DegradedFaultPct is the windowed fault percentage that flags a fault
	// regime (default 5).
	DegradedFaultPct float64
	// FaultHold is how many ticks the fault-regime flag stays latched after
	// the last sign of fault activity (default 10). A resilient plan
	// recovers faults before the gateway ever counts them, so the latch is
	// re-armed from the runtime's recovery counters (retries, fallbacks) —
	// without it the ladder would read a well-defended window as fault-free
	// and flap back to a fragile plan mid-regime.
	FaultHold int
	// BrownoutEnterPct: windowed attainment below this is critical (default
	// 50). BrownoutExitPct: served-only attainment must recover above this,
	// with fault pressure nominal, for ExitHold consecutive ticks before
	// brownout releases (defaults 85 and 3) — the exit hysteresis.
	BrownoutEnterPct float64
	BrownoutExitPct  float64
	ExitHold         int
	// CooldownTicks is the dwell after any action before the next one
	// (default 5); it bounds flapping.
	CooldownTicks int
	// FallbackHold is how many consecutive healthy ticks must pass before
	// the controller falls back to a cheaper plan (default 20). It is the
	// cost-down counterpart of the brownout exit hysteresis: probing back to
	// the cheap plan too eagerly re-exposes queries to the fault regime.
	FallbackHold int
	// Headroom derates the SLO when testing a candidate's predicted latency
	// (default 0.8): feasible means predicted × inflation ≤ Headroom × SLO.
	Headroom float64
	// Mode is the execution mode for replanned deployments (must match the
	// candidates' mode).
	Mode runtime.ExecMode
	// Core configures the online re-planner.
	Core core.Config
	// DisableReplan caps the ladder at candidate switching (rung b off).
	DisableReplan bool
}

func (c Config) withDefaults() Config {
	if c.TargetPct <= 0 {
		c.TargetPct = 90
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 10
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.PHDelta <= 0 {
		c.PHDelta = 0.05
	}
	if c.PHThreshold <= 0 {
		c.PHThreshold = 0.5
	}
	if c.DegradedFaultPct <= 0 {
		c.DegradedFaultPct = 5
	}
	if c.FaultHold <= 0 {
		c.FaultHold = 10
	}
	if c.BrownoutEnterPct <= 0 {
		c.BrownoutEnterPct = 50
	}
	if c.BrownoutExitPct <= 0 {
		c.BrownoutExitPct = 85
	}
	if c.ExitHold <= 0 {
		c.ExitHold = 3
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 5
	}
	if c.FallbackHold <= 0 {
		c.FallbackHold = 20
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 0.8
	}
	return c
}

// Decision is one recorded controller decision (a tick where it acted or the
// regime changed).
type Decision struct {
	AtMs               float64
	WindowSLOPct       float64
	WindowServedSLOPct float64
	LatInflation       float64
	FaultPct           float64
	Drift              bool
	Regime             Regime
	// Action is "" for a pure regime transition, else one of
	// "switch:<name>", "replan:<name>", "brownout:on", "brownout:off"
	// (possibly "brownout:off+switch:<name>").
	Action string
	// Active is the switcher index in effect after the decision.
	Active int
}

// pageHinkley is an online change-point test on a positive-drift signal: it
// accumulates deviations of the input above its running mean (less a slack
// delta) and fires when the accumulation rises threshold above its minimum.
type pageHinkley struct {
	n      int
	mean   float64
	cum    float64
	minCum float64
}

func (p *pageHinkley) observe(x, delta, threshold float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.cum += x - p.mean - delta
	if p.cum < p.minCum {
		p.minCum = p.cum
	}
	if p.cum-p.minCum > threshold {
		*p = pageHinkley{}
		return true
	}
	return false
}

// Controller implements gateway.Controller. It must only be ticked from the
// gateway's control loop (single goroutine on the virtual clock).
type Controller struct {
	model *perf.Model
	units []*partition.Unit
	sw    *runtime.Switcher
	cfg   Config

	cands []Candidate
	// pred[i] is the base-model prediction for cands[i].
	pred []perf.PlanPrediction
	// byIndex maps a switcher index back to its candidate slot.
	byIndex map[int]int

	reg      *trace.Registry
	overhead *trace.Histogram
	gActive  *trace.Gauge
	gRegime  *trace.Gauge
	gBrown   *trace.Gauge

	// commBase is the fitted mean invocation overhead (EMG mean) the
	// observed platform.overhead_ms histogram is compared against.
	commBase float64

	// base is the observed healthy-baseline window mean per switcher index —
	// the running minimum, learned online. Inflation is measured against it
	// rather than the model's absolute prediction, which excludes the master
	// invocation overhead and gateway queueing that dominate small models.
	base map[int]float64

	inflEMA, commEMA float64
	emaInit          bool
	ph               pageHinkley
	drift            bool
	regime           Regime
	brownout         bool
	cooldown         int
	exitStreak       int
	healthyStreak    int
	replans          int
	lastReplanInfl   float64
	// switchDone is obs.Done when the last switch was commanded: until the
	// sliding window holds only settles from after it, the window mixes two
	// plans' latencies, so baseline and drift updates are suspended.
	switchDone int
	// lastRecovered is the previous tick's runtime retry+fallback total;
	// faultHold is the fault-regime latch it re-arms (see Config.FaultHold).
	lastRecovered int64
	faultHold     int

	decisions []Decision
}

// New builds a controller over sw's candidate plans. model and units drive
// feasibility predictions and online re-planning; metrics are registered on
// sw's platform registry.
func New(model *perf.Model, units []*partition.Unit, sw *runtime.Switcher, cands []Candidate, cfg Config) (*Controller, error) {
	if model == nil || sw == nil {
		return nil, fmt.Errorf("adapt: nil model or switcher")
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("adapt: no units")
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("adapt: no candidates")
	}
	if cfg.SLOMs <= 0 {
		return nil, fmt.Errorf("adapt: SLOMs must be positive, got %v", cfg.SLOMs)
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		model:   model,
		units:   units,
		sw:      sw,
		cfg:     cfg,
		byIndex: make(map[int]int, len(cands)),
		base:    make(map[int]float64),
	}
	seen := map[string]bool{}
	for i, cand := range cands {
		if cand.Name == "" || seen[cand.Name] {
			return nil, fmt.Errorf("adapt: candidate %d needs a unique name, got %q", i, cand.Name)
		}
		seen[cand.Name] = true
		if cand.Index < 0 || cand.Index >= sw.Len() {
			return nil, fmt.Errorf("adapt: candidate %q index %d out of switcher range [0,%d)", cand.Name, cand.Index, sw.Len())
		}
		if _, dup := c.byIndex[cand.Index]; dup {
			return nil, fmt.Errorf("adapt: candidate %q duplicates switcher index %d", cand.Name, cand.Index)
		}
		if cand.Plan == nil {
			return nil, fmt.Errorf("adapt: candidate %q has no plan", cand.Name)
		}
		pred, err := model.PredictPlan(units, cand.Plan)
		if err != nil {
			return nil, fmt.Errorf("adapt: predicting candidate %q: %w", cand.Name, err)
		}
		if pred.OOM {
			return nil, fmt.Errorf("adapt: candidate %q is predicted infeasible: %s", cand.Name, pred.OOMReason)
		}
		c.byIndex[cand.Index] = i
		c.cands = append(c.cands, cand)
		c.pred = append(c.pred, pred)
	}
	comm := model.Comm()
	if comm.Lambda > 0 {
		c.commBase = comm.Mu + 1/comm.Lambda
	}
	c.reg = sw.Platform().Metrics()
	c.overhead = c.reg.Histogram("platform.overhead_ms")
	c.gActive = c.reg.Gauge("adapt.active_plan")
	c.gRegime = c.reg.Gauge("adapt.regime")
	c.gBrown = c.reg.Gauge("adapt.brownout")
	return c, nil
}

// Name implements gateway.Controller.
func (c *Controller) Name() string { return "adapt" }

// Tick implements gateway.Controller: one pass of observe → update priors →
// detect → decide.
func (c *Controller) Tick(now time.Duration, obs gateway.ControlObservation) gateway.Directive {
	dir := gateway.Directive{SwitchTo: -1, Brownout: c.brownout}
	nowMs := float64(now) / float64(time.Millisecond)
	if obs.WindowCount < c.cfg.MinWindow {
		c.setGauges(nowMs, obs.ActiveBackend)
		return dir
	}

	// Signals.
	sloPct := obs.WindowSLOPct
	servedSLO := obs.WindowServedSLOPct
	faultPct := 100 * float64(obs.WindowFaulted) / float64(obs.WindowCount)
	windowTrusted := obs.Done-c.switchDone >= obs.WindowCount
	if windowTrusted && obs.WindowMeanMs > 0 {
		if b, ok := c.base[obs.ActiveBackend]; !ok || obs.WindowMeanMs < b {
			c.base[obs.ActiveBackend] = obs.WindowMeanMs
		}
	}
	infl := c.inflEMA
	if infl <= 0 {
		infl = 1
	}
	if b := c.base[obs.ActiveBackend]; windowTrusted && b > 0 && obs.WindowMeanMs > 0 {
		infl = obs.WindowMeanMs / b
	}
	commScale := 1.0
	if c.commBase > 0 && c.overhead.Count() > 0 {
		commScale = c.overhead.Mean() / c.commBase
	}
	if !c.emaInit {
		c.inflEMA, c.commEMA, c.emaInit = infl, commScale, true
	} else {
		c.inflEMA += c.cfg.Alpha * (infl - c.inflEMA)
		c.commEMA += c.cfg.Alpha * (commScale - c.commEMA)
	}
	c.drift = windowTrusted && c.ph.observe(infl, c.cfg.PHDelta, c.cfg.PHThreshold)

	// Regime. During brownout the all-settles attainment is dominated by the
	// sheds brownout itself causes, so recovery is judged on the served-only
	// window instead.
	regime := Healthy
	if c.brownout {
		if servedSLO < c.cfg.BrownoutExitPct || faultPct >= c.cfg.DegradedFaultPct {
			regime = Critical
		}
	} else {
		switch {
		case sloPct < c.cfg.BrownoutEnterPct:
			regime = Critical
		case faultPct >= c.cfg.DegradedFaultPct || sloPct < c.cfg.TargetPct || c.drift:
			regime = Degraded
		}
	}
	// The cost-down streak counts only quiescent healthy ticks: a standing
	// queue means the headroom a cheaper plan would give up is already being
	// consumed, even while windowed attainment still reads 100% — the
	// attainment collapse from de-escalating into a building surge shows up
	// only after the switch is irreversible for a cooldown.
	if regime == Healthy && obs.QueueLen == 0 {
		c.healthyStreak++
	} else {
		c.healthyStreak = 0
	}

	// Degradation ladder. Fault pressure latches: gateway-visible faults or
	// runtime-recovered ones (retries, fallbacks — a resilient plan absorbs
	// faults before the gateway counts them) re-arm the hold, and only
	// FaultHold quiet ticks release it.
	active := obs.ActiveBackend
	recovered := c.reg.Counter("runtime.retries").Value() + c.reg.Counter("runtime.fallbacks").Value()
	faultActive := faultPct >= c.cfg.DegradedFaultPct || recovered > c.lastRecovered
	c.lastRecovered = recovered
	if faultActive {
		c.faultHold = c.cfg.FaultHold
	} else if c.faultHold > 0 {
		c.faultHold--
	}
	needResilient := faultActive || c.faultHold > 0
	action := ""
	switch {
	case c.brownout:
		if regime == Healthy {
			c.exitStreak++
			if c.exitStreak >= c.cfg.ExitHold {
				c.brownout = false
				c.exitStreak = 0
				c.cooldown = c.cfg.CooldownTicks
				action = "brownout:off"
				i := c.choose(needResilient, active)
				if i < 0 {
					i = c.chooseFast(needResilient, active, false)
				}
				if i >= 0 && c.cands[i].Index != active {
					dir.SwitchTo = c.cands[i].Index
					action += "+switch:" + c.cands[i].Name
					c.reg.Counter("adapt.plan_switches").Inc()
				}
			}
		} else {
			c.exitStreak = 0
		}
	case c.cooldown > 0:
		c.cooldown--
	case regime == Critical:
		// Critical is not always fault-critical: a load surge collapses
		// attainment through queueing with zero faults, and there the
		// lowest-latency plan — not a redundant one — is the right move. The
		// fault latch decides which. The rungs in order: fastest-feasible
		// switch, online replan, least-bad switch; brownout only when already
		// on the least-bad plan and still collapsing.
		if i := c.chooseFast(needResilient, active, true); i >= 0 && c.cands[i].Index != active {
			dir.SwitchTo = c.cands[i].Index
			action = "switch:" + c.cands[i].Name
			c.cooldown = c.cfg.CooldownTicks
			c.reg.Counter("adapt.plan_switches").Inc()
		} else if idx, name, ok := c.tryReplan(active); ok {
			dir.SwitchTo = idx
			action = "replan:" + name
			c.cooldown = c.cfg.CooldownTicks
		} else if j := c.chooseFast(needResilient, active, false); j >= 0 && c.cands[j].Index != active {
			dir.SwitchTo = c.cands[j].Index
			action = "switch:" + c.cands[j].Name
			c.cooldown = c.cfg.CooldownTicks
			c.reg.Counter("adapt.plan_switches").Inc()
		} else {
			c.brownout = true
			c.exitStreak = 0
			action = "brownout:on"
			c.reg.Counter("adapt.brownouts").Inc()
		}
	case regime == Degraded:
		if i := c.chooseFast(needResilient, active, true); i >= 0 && c.cands[i].Index != active {
			dir.SwitchTo = c.cands[i].Index
			action = "switch:" + c.cands[i].Name
			c.cooldown = c.cfg.CooldownTicks
			c.reg.Counter("adapt.plan_switches").Inc()
		} else if i < 0 {
			if idx, name, ok := c.tryReplan(active); ok {
				dir.SwitchTo = idx
				action = "replan:" + name
				c.cooldown = c.cfg.CooldownTicks
			} else if j := c.chooseFast(needResilient, active, false); j >= 0 && c.cands[j].Index != active {
				dir.SwitchTo = c.cands[j].Index
				action = "switch:" + c.cands[j].Name
				c.cooldown = c.cfg.CooldownTicks
				c.reg.Counter("adapt.plan_switches").Inc()
			}
		}
	default: // Healthy: after a stable stretch, fall back to the cheapest
		// feasible candidate to recoup the cost of defensive plans — but
		// never to a fragile one while the fault latch is still armed.
		if c.healthyStreak >= c.cfg.FallbackHold {
			if i := c.choose(needResilient, active); i >= 0 && c.cands[i].Index != active {
				dir.SwitchTo = c.cands[i].Index
				action = "switch:" + c.cands[i].Name
				c.cooldown = c.cfg.CooldownTicks
				c.reg.Counter("adapt.plan_switches").Inc()
			}
		}
	}
	dir.Brownout = c.brownout

	finalActive := active
	if dir.SwitchTo >= 0 {
		finalActive = dir.SwitchTo
		c.switchDone = obs.Done
	}
	if action != "" || regime != c.regime {
		c.decisions = append(c.decisions, Decision{
			AtMs:               nowMs,
			WindowSLOPct:       sloPct,
			WindowServedSLOPct: servedSLO,
			LatInflation:       infl,
			FaultPct:           faultPct,
			Drift:              c.drift,
			Regime:             regime,
			Action:             action,
			Active:             finalActive,
		})
		c.reg.Counter("adapt.decisions").Inc()
	}
	c.regime = regime
	c.setGauges(nowMs, finalActive)
	return dir
}

func (c *Controller) setGauges(nowMs float64, active int) {
	c.gActive.Set(float64(active), nowMs)
	c.gRegime.Set(float64(c.regime), nowMs)
	b := 0.0
	if c.brownout {
		b = 1
	}
	c.gBrown.Set(b, nowMs)
}

// overheadMean is the mean observed invocation overhead, falling back to
// the model's fitted EMG mean before any invocation settled.
func (c *Controller) overheadMean() float64 {
	if c.overhead.Count() > 0 {
		return c.overhead.Mean()
	}
	return c.commBase
}

// estLatency estimates the healthy-baseline served latency of candidate
// slot. A slot that has been active before uses its observed baseline
// directly; otherwise the model's prediction (plus one invocation overhead,
// which it excludes) is rescaled by how far the active plan's observed
// baseline sits from its own prediction — the model supplies the cross-plan
// ratio, the live telemetry the absolute scale.
func (c *Controller) estLatency(slot, active int) float64 {
	if b, ok := c.base[c.cands[slot].Index]; ok {
		return b
	}
	ovh := c.overheadMean()
	est := c.pred[slot].LatencyMs + ovh
	if activeSlot, ok := c.byIndex[active]; ok {
		if b, ok := c.base[active]; ok && c.pred[activeSlot].LatencyMs+ovh > 0 {
			est *= b / (c.pred[activeSlot].LatencyMs + ovh)
		}
	}
	return est
}

// choose picks the cheapest candidate whose inflation-adjusted latency
// estimate fits inside the derated SLO, requiring resilience when asked;
// -1 when nothing passes the strict filter.
func (c *Controller) choose(needResilient bool, active int) int {
	best := -1
	for i := range c.cands {
		if needResilient && !c.cands[i].Resilient {
			continue
		}
		if c.estLatency(i, active)*c.inflEMA > c.cfg.Headroom*c.cfg.SLOMs {
			continue
		}
		if best < 0 || c.pred[i].BilledMs < c.pred[best].BilledMs {
			best = i
		}
	}
	return best
}

// chooseFast is the escalation pick for Degraded and Critical regimes: the
// lowest-estimated-latency candidate, restricted to resilient plans under
// fault pressure. Degradation means the active plan is not holding — moving
// to a cheaper-but-slower plan there is never right, so unlike choose the
// comparator is latency, not cost (cost-down is the Healthy rung's job).
// With strict set, candidates whose inflation-adjusted estimate misses the
// derated SLO are excluded; without it the pick is the least-bad plan — the
// last rung before brownout, which under a queue-driven collapse (surge,
// zero faults) still routes to the plan closest to fitting regardless of
// how inflated the latency prior is. -1 only when nothing qualifies.
func (c *Controller) chooseFast(needResilient bool, active int, strict bool) int {
	best := -1
	for i := range c.cands {
		if needResilient && !c.cands[i].Resilient {
			continue
		}
		if strict && c.estLatency(i, active)*c.inflEMA > c.cfg.Headroom*c.cfg.SLOMs {
			continue
		}
		if best < 0 || c.estLatency(i, active) < c.estLatency(best, active) {
			best = i
		}
	}
	return best
}

// tryReplan re-runs the DP planner against the model rescaled by the live
// priors, deploys the plan with resilience, and registers it as a new
// candidate. Skipped when disabled, when the priors haven't moved since the
// last replan, or when even the replanned optimum cannot fit the SLO.
func (c *Controller) tryReplan(active int) (swIdx int, name string, ok bool) {
	if c.cfg.DisableReplan {
		return -1, "", false
	}
	if c.replans > 0 && math.Abs(c.inflEMA-c.lastReplanInfl) < 0.1 {
		return -1, "", false
	}
	scaled, err := c.model.WithPriors(perf.Priors{ComputeScale: c.inflEMA, CommScale: c.commEMA})
	if err != nil {
		return -1, "", false
	}
	plan, pred, err := core.LatencyOptimal(scaled, c.units, c.cfg.Core)
	if err != nil || pred.OOM {
		return -1, "", false
	}
	c.lastReplanInfl = c.inflEMA
	// Estimate the plan's attained latency the same way choose does: the
	// scaled prediction plus one invocation overhead, recalibrated by how
	// far the active plan's observed baseline sits from its own prediction.
	ovh := c.overheadMean()
	est := pred.LatencyMs + ovh
	if activeSlot, okA := c.byIndex[active]; okA {
		if b, okB := c.base[active]; okB && c.pred[activeSlot].LatencyMs+ovh > 0 {
			est *= b / (c.pred[activeSlot].LatencyMs + ovh)
		}
	}
	if est > c.cfg.Headroom*c.cfg.SLOMs {
		return -1, "", false
	}
	d, err := runtime.Deploy(c.sw.Platform(), c.units, plan, c.cfg.Mode,
		runtime.WithRetries(2, 25), runtime.WithMasterFallback())
	if err != nil {
		return -1, "", false
	}
	idx, err := c.sw.Add(d)
	if err != nil {
		return -1, "", false
	}
	base, err := c.model.PredictPlan(c.units, plan)
	if err != nil {
		base = pred
	}
	c.replans++
	name = fmt.Sprintf("replan-%d", c.replans)
	c.byIndex[idx] = len(c.cands)
	c.cands = append(c.cands, Candidate{Name: name, Index: idx, Plan: plan, Resilient: true})
	c.pred = append(c.pred, base)
	c.reg.Counter("adapt.replans").Inc()
	c.reg.Counter("adapt.plan_switches").Inc()
	return idx, name, true
}

// Decisions returns a copy of the recorded decision sequence.
func (c *Controller) Decisions() []Decision {
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// DecisionLog renders the decision sequence as deterministic text, one line
// per decision — the golden-file and replay-equivalence format.
func (c *Controller) DecisionLog() string {
	var b strings.Builder
	for _, d := range c.decisions {
		action := d.Action
		if action == "" {
			action = "-"
		}
		fmt.Fprintf(&b, "t=%.3f regime=%s slo=%.3f served_slo=%.3f infl=%.3f fault=%.3f drift=%v action=%s active=%d\n",
			d.AtMs, d.Regime, d.WindowSLOPct, d.WindowServedSLOPct, d.LatInflation, d.FaultPct, d.Drift, action, d.Active)
	}
	return b.String()
}
