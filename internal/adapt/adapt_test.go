package adapt

import (
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gillis/internal/gateway"
	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/par"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the decision-log golden file")

var (
	perfOnce sync.Once
	perfMdl  *perf.Model
	perfErr  error
)

func sharedModel(t *testing.T) *perf.Model {
	t.Helper()
	perfOnce.Do(func() { perfMdl, perfErr = perf.Build(platform.AWSLambda(), 1, 2, 300) })
	if perfErr != nil {
		t.Fatal(perfErr)
	}
	return perfMdl
}

// tinyCNN mirrors the runtime/gateway test model.
func tinyCNN(t *testing.T) []*partition.Unit {
	t.Helper()
	g := graph.New("tinycnn", []int{3, 24, 24})
	g.MustAdd(nn.NewConv2D("stem", 3, 8, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 8))
	g.MustAdd(nn.NewReLU("stem_relu"))
	pool := g.MustAdd(nn.NewMaxPool2D("pool", 3, 2, 1))
	c1 := g.MustAdd(nn.NewConv2D("b_conv1", 8, 8, 3, 1, 1), pool)
	b1 := g.MustAdd(nn.NewBatchNorm("b_bn1", 8), c1)
	r1 := g.MustAdd(nn.NewReLU("b_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D("b_conv2", 8, 8, 3, 1, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm("b_bn2", 8), c2)
	add := g.MustAdd(nn.NewAdd("b_add"), b2, pool)
	g.MustAdd(nn.NewReLU("b_relu2"), add)
	g.MustAdd(nn.NewAvgPool2D("avg", 2, 2))
	g.Init(42)
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func naivePlan(t *testing.T, units []*partition.Unit) *partition.Plan {
	t.Helper()
	plan := &partition.Plan{Model: "tinycnn", Groups: []partition.GroupPlan{
		{First: 0, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	return plan
}

func fanoutPlan(t *testing.T, units []*partition.Unit) *partition.Plan {
	t.Helper()
	plan := &partition.Plan{Model: "tinycnn", Groups: []partition.GroupPlan{
		{First: 0, Last: 0, Option: partition.Option{Dim: partition.DimChannel, Parts: 2}},
		{First: 1, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimSpatial, Parts: 2}, OnMaster: true},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	return plan
}

func outcomeDigest(outs []gateway.Outcome) string {
	h := fnv.New64a()
	for _, o := range outs {
		fmt.Fprintf(h, "%d|%.6f|%.6f|%.6f|%d|%v|%v|%v|%q|%q\n",
			o.ID, o.ArrivalMs, o.QueueMs, o.TotalMs,
			o.BilledMs, o.ColdStart, o.Shed, o.SLOOK, o.Err, o.FaultKind)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// scenario runs one adaptive replay: healthy start, fault-regime shift to a
// degraded profile mid-replay, recovery in the final third.
type scenarioResult struct {
	rep *gateway.LoadReport
	ctl *Controller
	log string
	dig string
}

func runScenario(t *testing.T, seed int64, horizon time.Duration, cfg Config) scenarioResult {
	t.Helper()
	model := sharedModel(t)
	units := tinyCNN(t)
	pcfg := platform.AWSLambda()
	pcfg.WarmIdleMs = 10000
	pcfg.PrewarmMs = pcfg.ColdStartMs
	degraded := platform.FaultProfile{FailureProb: 0.3, StragglerProb: 0.2, StragglerFactor: 4}
	third := float64(horizon/time.Millisecond) / 3
	pcfg.FaultSchedule = []platform.FaultTransition{
		{AtMs: third, Profile: degraded},
		{AtMs: 2 * third, Profile: platform.FaultProfile{}},
	}
	env := simnet.NewEnv()
	p := platform.New(env, pcfg, seed)
	dLat, err := runtime.Deploy(p, units, naivePlan(t, units), runtime.ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	dCons, err := runtime.Deploy(p, units, fanoutPlan(t, units), runtime.ShapeOnly,
		runtime.WithRetries(3, 25), runtime.WithMasterFallback())
	if err != nil {
		t.Fatal(err)
	}
	sw, err := runtime.NewSwitcher(dLat, dCons)
	if err != nil {
		t.Fatal(err)
	}
	cands := []Candidate{
		{Name: "latency", Index: 0, Plan: naivePlan(t, units)},
		{Name: "conservative", Index: 1, Plan: fanoutPlan(t, units), Resilient: true},
	}
	ctl, err := New(model, units, sw, cands, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.Poisson(rand.New(rand.NewSource(seed+100)), 2.5, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rep, outs, err := gateway.Run(sw, arrivals, gateway.Config{
		MaxInFlight: 4,
		QueueCap:    8,
		SLOMs:       cfg.SLOMs,
		Window:      20,
		Controller:  ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scenarioResult{rep: rep, ctl: ctl, log: ctl.DecisionLog(), dig: outcomeDigest(outs)}
}

func scenarioConfig() Config {
	return Config{
		SLOMs:         700,
		MinWindow:     8,
		ExitHold:      3,
		CooldownTicks: 5,
		DisableReplan: true,
		Mode:          runtime.ShapeOnly,
	}
}

func TestNewValidation(t *testing.T) {
	model := sharedModel(t)
	units := tinyCNN(t)
	env := simnet.NewEnv()
	p := platform.New(env, platform.AWSLambda(), 1)
	d, err := runtime.Deploy(p, units, naivePlan(t, units), runtime.ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := runtime.NewSwitcher(d)
	if err != nil {
		t.Fatal(err)
	}
	good := []Candidate{{Name: "a", Index: 0, Plan: naivePlan(t, units)}}
	cases := []struct {
		name  string
		model *perf.Model
		sw    *runtime.Switcher
		cands []Candidate
		cfg   Config
	}{
		{"nil model", nil, sw, good, Config{SLOMs: 500}},
		{"nil switcher", model, nil, good, Config{SLOMs: 500}},
		{"no candidates", model, sw, nil, Config{SLOMs: 500}},
		{"zero slo", model, sw, good, Config{}},
		{"unnamed candidate", model, sw, []Candidate{{Index: 0, Plan: naivePlan(t, units)}}, Config{SLOMs: 500}},
		{"index out of range", model, sw, []Candidate{{Name: "a", Index: 5, Plan: naivePlan(t, units)}}, Config{SLOMs: 500}},
		{"no plan", model, sw, []Candidate{{Name: "a", Index: 0}}, Config{SLOMs: 500}},
		{"duplicate name", model, sw, []Candidate{
			{Name: "a", Index: 0, Plan: naivePlan(t, units)},
			{Name: "a", Index: 0, Plan: naivePlan(t, units)},
		}, Config{SLOMs: 500}},
	}
	for _, tc := range cases {
		if _, err := New(tc.model, units, tc.sw, tc.cands, tc.cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	if _, err := New(model, units, sw, good, Config{SLOMs: 500}); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
}

func TestPageHinkley(t *testing.T) {
	var ph pageHinkley
	for i := 0; i < 200; i++ {
		if ph.observe(1.0, 0.05, 0.5) {
			t.Fatalf("fired on a stationary signal at %d", i)
		}
	}
	fired := false
	for i := 0; i < 50; i++ {
		if ph.observe(2.0, 0.05, 0.5) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("must fire on a sustained upward shift")
	}
	// The test resets after firing: another stationary run stays quiet.
	for i := 0; i < 50; i++ {
		if ph.observe(2.0, 0.05, 0.5) && i < 3 {
			t.Fatalf("refired immediately after reset at %d", i)
		}
	}
}

// TestScenarioGoldenDecisions pins the controller's full decision sequence
// under a mid-replay fault-regime shift.
func TestScenarioGoldenDecisions(t *testing.T) {
	res := runScenario(t, 7, 60*time.Second, scenarioConfig())
	if len(res.ctl.Decisions()) == 0 {
		t.Fatal("controller recorded no decisions")
	}
	if !strings.Contains(res.log, "switch:conservative") {
		t.Errorf("controller never switched to the resilient plan under faults:\n%s", res.log)
	}
	if !strings.Contains(res.log, "switch:latency") {
		t.Errorf("controller never fell back to the cheap plan after recovery:\n%s", res.log)
	}
	if res.rep.PlanSwitches == 0 {
		t.Error("gateway report shows no plan switches")
	}
	reg := res.ctl.sw.Platform().Metrics()
	if reg.Counter("adapt.decisions").Value() != int64(len(res.ctl.Decisions())) {
		t.Error("adapt.decisions counter out of sync with the decision log")
	}
	if v := reg.Gauge("adapt.active_plan").Value(); v != float64(res.ctl.sw.Active()) {
		t.Errorf("adapt.active_plan gauge %v, switcher active %d", v, res.ctl.sw.Active())
	}
	golden := filepath.Join("testdata", "decisions.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(res.log), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if string(want) != res.log {
		t.Errorf("decision log diverged from golden:\n--- want ---\n%s--- got ---\n%s", want, res.log)
	}
}

// TestDecisionsDeterministic is the 100-seed property: the decision sequence
// and every outcome are bit-identical across worker-pool parallelism and
// across repeated replays of the same seed.
func TestDecisionsDeterministic(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	horizon := 16 * time.Second
	for seed := int64(0); seed < int64(seeds); seed++ {
		var logs, digs []string
		for _, workers := range []int{1, 4, 1} {
			restore := par.SetParallelism(workers)
			res := runScenario(t, seed, horizon, scenarioConfig())
			restore()
			logs = append(logs, res.log)
			digs = append(digs, res.dig)
		}
		for i := 1; i < len(logs); i++ {
			if logs[i] != logs[0] {
				t.Fatalf("seed %d: decision log diverged between runs 0 and %d:\n--- run 0 ---\n%s--- run %d ---\n%s",
					seed, i, logs[0], i, logs[i])
			}
			if digs[i] != digs[0] {
				t.Fatalf("seed %d: outcome digest diverged: %s vs %s", seed, digs[0], digs[i])
			}
		}
	}
}

// TestBrownoutLadder drives the platform sick enough that no candidate can
// hold the SLO (the only candidate is not resilient and replanning is off):
// the controller must brown out, then release with hysteresis once the
// platform recovers.
func TestBrownoutLadder(t *testing.T) {
	model := sharedModel(t)
	units := tinyCNN(t)
	pcfg := platform.AWSLambda()
	pcfg.WarmIdleMs = 10000
	pcfg.PrewarmMs = pcfg.ColdStartMs
	pcfg.FaultSchedule = []platform.FaultTransition{
		{AtMs: 4000, Profile: platform.FaultProfile{FailureProb: 0.85}},
		{AtMs: 14000, Profile: platform.FaultProfile{}},
	}
	env := simnet.NewEnv()
	p := platform.New(env, pcfg, 5)
	d, err := runtime.Deploy(p, units, naivePlan(t, units), runtime.ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := runtime.NewSwitcher(d)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(model, units, sw, []Candidate{{Name: "only", Index: 0, Plan: naivePlan(t, units)}}, Config{
		SLOMs:         700,
		MinWindow:     8,
		ExitHold:      2,
		CooldownTicks: 3,
		DisableReplan: true,
		Mode:          runtime.ShapeOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.Poisson(rand.New(rand.NewSource(11)), 3, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep, outs, err := gateway.Run(sw, arrivals, gateway.Config{
		MaxInFlight: 2,
		QueueCap:    4,
		SLOMs:       700,
		Window:      20,
		Controller:  ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := ctl.DecisionLog()
	if !strings.Contains(log, "brownout:on") {
		t.Fatalf("controller never browned out under an unservable fault regime:\n%s", log)
	}
	if !strings.Contains(log, "brownout:off") {
		t.Fatalf("controller never released brownout after recovery:\n%s", log)
	}
	if rep.BrownoutMs <= 0 {
		t.Errorf("report brownout duration %v, want > 0", rep.BrownoutMs)
	}
	onAt, offAt := -1.0, -1.0
	for _, dec := range ctl.Decisions() {
		if strings.Contains(dec.Action, "brownout:on") && onAt < 0 {
			onAt = dec.AtMs
		}
		if strings.Contains(dec.Action, "brownout:off") && offAt < 0 {
			offAt = dec.AtMs
		}
	}
	if onAt < 4000 {
		t.Errorf("brownout engaged at %v ms, before the fault regime began", onAt)
	}
	if offAt <= onAt {
		t.Errorf("brownout released at %v ms, not after engagement at %v ms", offAt, onAt)
	}
	reg := p.Metrics()
	if reg.Counter("adapt.brownouts").Value() == 0 {
		t.Error("adapt.brownouts counter never incremented")
	}
	for _, o := range outs {
		if o.Err == gateway.ErrBrownout.Error() && (o.ArrivalMs < onAt || (offAt > 0 && o.ArrivalMs > offAt)) {
			t.Errorf("query %d shed by brownout outside the episode [%v, %v]: arrival %v",
				o.ID, onAt, offAt, o.ArrivalMs)
		}
	}
}

// TestReplanDeploysNewCandidate removes every resilient candidate and leaves
// replanning on: under fault pressure the controller must synthesize a new
// plan online, deploy it, and switch to it.
func TestReplanDeploysNewCandidate(t *testing.T) {
	model := sharedModel(t)
	units := tinyCNN(t)
	pcfg := platform.AWSLambda()
	pcfg.WarmIdleMs = 10000
	pcfg.PrewarmMs = pcfg.ColdStartMs
	pcfg.FaultSchedule = []platform.FaultTransition{
		{AtMs: 4000, Profile: platform.FaultProfile{FailureProb: 0.3}},
	}
	env := simnet.NewEnv()
	p := platform.New(env, pcfg, 9)
	d, err := runtime.Deploy(p, units, naivePlan(t, units), runtime.ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := runtime.NewSwitcher(d)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(model, units, sw, []Candidate{{Name: "only", Index: 0, Plan: naivePlan(t, units)}}, Config{
		SLOMs:     2500,
		MinWindow: 8,
		Mode:      runtime.ShapeOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.Poisson(rand.New(rand.NewSource(13)), 3, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := gateway.Run(sw, arrivals, gateway.Config{
		MaxInFlight: 4,
		QueueCap:    8,
		SLOMs:       2500,
		Window:      20,
		Controller:  ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := ctl.DecisionLog()
	if !strings.Contains(log, "replan:replan-1") {
		t.Fatalf("controller never replanned:\n%s", log)
	}
	if sw.Len() < 2 {
		t.Errorf("switcher holds %d deployments, want the replanned one added", sw.Len())
	}
	if p.Metrics().Counter("adapt.replans").Value() == 0 {
		t.Error("adapt.replans counter never incremented")
	}
	if rep.PlanSwitches == 0 {
		t.Error("report shows no plan switch after replanning")
	}
}
