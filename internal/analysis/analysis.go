// Package analysis is gillis-vet's stdlib-only static-analysis framework:
// a package loader built on go/parser + go/types + go/importer, a small
// Analyzer/Pass API in the spirit of golang.org/x/tools/go/analysis, and
// deterministic diagnostic reporting with //gillis:allow suppression.
//
// The analyzers in this package enforce invariants the rest of the repo can
// only check dynamically — bit-for-bit determinism of the simulation and
// kernels, exact billed-ms attribution, nil-safety of the untraced hot
// path. Catching a stray time.Now() or an unsorted map iteration at `make
// lint` is cheaper than debugging a broken golden trace three PRs later.
//
// Suppression: a finding is silenced by a comment
//
//	//gillis:allow <analyzer>[,<analyzer>...] <one-line justification>
//
// placed on the flagged line or on the line directly above it. The
// analyzer field accepts a comma-separated list so one comment can justify
// findings from several analyzers (a deliberately unjoined goroutine often
// trips goleak and sharedmut together). The justification is mandatory by
// convention (the analyzers cannot judge prose, but reviewers can).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //gillis:allow
	// comments. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// NeedsGraph asks Run to build the module-wide call graph before any
	// pass executes; graph construction is shared across analyzers.
	NeedsGraph bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checked package. Path() is the import path; packages
	// under a testdata/src directory are remapped to the path after
	// "testdata/src/" so analyzers see realistic paths in tests.
	Pkg  *types.Package
	Info *types.Info
	// Graph is the module-wide static call graph over the Load universe,
	// built once per Run and shared by every pass. Inter-procedural
	// analyzers (clockflow) traverse it; intra-procedural analyzers ignore
	// it.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportChain(pos, nil, format, args...)
}

// ReportChain records a finding at pos carrying a call chain (caller
// first, sink last) that explains how the violation is reached.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Chain, when non-empty, is the call chain from the flagged function
	// to the violation sink, rendered caller → ... → sink.
	Chain []string
}

// String renders the canonical "file:line:col: analyzer: message" form,
// with the call chain appended when present.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	if len(d.Chain) > 0 {
		s += " [" + strings.Join(d.Chain, " -> ") + "]"
	}
	return s
}

// allowDirective is the magic comment prefix recognized for suppression.
const allowDirective = "//gillis:allow "

// Run applies every analyzer to every package, drops findings suppressed by
// //gillis:allow comments, and returns the remainder in deterministic order
// (file, line, column, analyzer, message).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var graph *CallGraph
	for _, a := range analyzers {
		if a.NeedsGraph {
			graph = BuildCallGraph(pkgs)
			break
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowLines(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Graph:    graph,
				diags:    new([]Diagnostic),
			}
			a.Run(pass)
			for _, d := range *pass.diags {
				if suppressed(allowed, d) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// allowKey locates one suppression: a file line that carries an allow
// comment for one analyzer.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowLines collects every //gillis:allow directive in the package, keyed
// by the line the comment sits on. The analyzer field is a comma-separated
// list, so `//gillis:allow clockflow,goleak <reason>` registers one
// suppression per named analyzer.
func allowLines(pkg *Package) map[allowKey]bool {
	allowed := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, strings.TrimSuffix(allowDirective, " "))
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" {
						continue
					}
					allowed[allowKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return allowed
}

// suppressed reports whether d is covered by an allow comment on its own
// line or the line directly above.
func suppressed(allowed map[allowKey]bool, d Diagnostic) bool {
	return allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		allowed[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

// pkgNameOf resolves sel's qualifier to the imported package path, or ""
// when sel.X is not a package name (e.g. a field or method selector).
func pkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// rootIdent returns the leftmost identifier of an lvalue expression
// (x, x.f, x[i], *x, ...), or nil when there is none.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// hasPathPrefix reports whether the package import path is path itself or a
// subpackage of it.
func hasPathPrefix(pkgPath, prefix string) bool {
	return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
}
