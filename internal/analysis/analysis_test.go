package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestRunDeterministicOrder checks that diagnostics come out sorted by
// position regardless of analyzer registration order.
func TestRunDeterministicOrder(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "gillis", "internal", "platform"))
	if err != nil {
		t.Fatal(err)
	}
	forward := Run(pkgs, []*Analyzer{AnalyzerNodeterm, AnalyzerErrdrop})
	reversed := Run(pkgs, []*Analyzer{AnalyzerErrdrop, AnalyzerNodeterm})
	if len(forward) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	if len(forward) != len(reversed) {
		t.Fatalf("analyzer order changed finding count: %d vs %d", len(forward), len(reversed))
	}
	for i := range forward {
		if forward[i].String() != reversed[i].String() {
			t.Fatalf("diagnostic %d differs across analyzer orderings:\n%s\n%s", i, forward[i], reversed[i])
		}
	}
	for i := 1; i < len(forward); i++ {
		a, b := forward[i-1].Pos, forward[i].Pos
		if a.Filename == b.Filename && a.Line > b.Line {
			t.Fatalf("diagnostics out of order: %s before %s", forward[i-1], forward[i])
		}
	}
}

// TestSuppression checks same-line and line-above allow comments, and that
// an allow for one analyzer does not silence another.
func TestSuppression(t *testing.T) {
	allowed := map[allowKey]bool{
		{"f.go", 10, "nodeterm"}: true,
	}
	mk := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "f.go", Line: line}}
	}
	if !suppressed(allowed, mk(10, "nodeterm")) {
		t.Error("same-line allow not honored")
	}
	if !suppressed(allowed, mk(11, "nodeterm")) {
		t.Error("line-above allow not honored")
	}
	if suppressed(allowed, mk(12, "nodeterm")) {
		t.Error("allow leaked two lines down")
	}
	if suppressed(allowed, mk(10, "maporder")) {
		t.Error("allow for nodeterm silenced maporder")
	}
	if suppressed(allowed, mk(10, "nodeterm")) != true || suppressed(allowed, Diagnostic{Analyzer: "nodeterm", Pos: token.Position{Filename: "g.go", Line: 10}}) {
		t.Error("allow crossed files")
	}
}

// TestAllowListDirective pins the comma-separated form: one directive can
// sanction several analyzers at once, without leaking to unnamed ones.
func TestAllowListDirective(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

//gillis:allow clockflow,goleak detached supervisor is joined by the scheduler
var a = 1

//gillis:allow nodeterm bench probe
var b = 2

//gillis:allow , a bare comma names nothing
var c = 3
`
	f, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allowed := allowLines(&Package{Fset: fset, Files: []*ast.File{f}})
	for _, tc := range []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "clockflow", true},
		{3, "goleak", true},
		{3, "sharedmut", false}, // list membership is exact
		{6, "nodeterm", true},   // single-name form unchanged
		{6, "clockflow", false},
		{9, "", false}, // empty names are dropped, not registered
	} {
		if got := allowed[allowKey{"f.go", tc.line, tc.analyzer}]; got != tc.want {
			t.Errorf("allow at line %d for %q = %v, want %v", tc.line, tc.analyzer, got, tc.want)
		}
	}
}

// TestLoadTypecheckFailureReadable checks the loader degrades a broken
// package to a positioned, readable error instead of handing the analyzers
// a half-checked package (where missing type info panics far from the
// cause).
func TestLoadTypecheckFailureReadable(t *testing.T) {
	dir := writeTestPkg(t, "badtypes-*", map[string]string{
		"bad.go": "package p\n\nfunc f() int { return undefinedIdent }\n",
	})
	_, err := Load(dir)
	if err == nil {
		t.Fatal("expected a typecheck error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "typecheck") {
		t.Errorf("error does not name the failing stage: %v", err)
	}
	if !strings.Contains(msg, "bad.go") || !strings.Contains(msg, "undefinedIdent") {
		t.Errorf("error lacks position or cause: %v", err)
	}
}

// TestDiagnosticString pins the canonical rendering the CLI prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "nodeterm",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "msg",
	}
	if got, want := d.String(), "x.go:3:7: nodeterm: msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestLoadErrors exercises the loader's failure modes.
func TestLoadErrors(t *testing.T) {
	if _, err := Load("testdata/no-such-dir"); err == nil {
		t.Error("expected error for missing directory")
	}
	if _, err := Load("testdata/nodeterm.golden"); err == nil {
		t.Error("expected error for non-directory pattern")
	}
}

// TestLoadSkipsTestdataInWalk checks that "./..." never descends into
// testdata, so fixtures with deliberate violations cannot fail a real run.
func TestLoadSkipsTestdataInWalk(t *testing.T) {
	pkgs, err := Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from ./..., want just this one", len(pkgs))
	}
	if pkgs[0].Path != "gillis/internal/analysis" {
		t.Fatalf("unexpected package %q", pkgs[0].Path)
	}
	if got := Run(pkgs, All()); len(got) != 0 {
		t.Fatalf("the analysis package itself has findings:\n%v", got)
	}
}

// TestAllStable checks that the registry is alphabetical, which the -list
// output and the docs rely on.
func TestAllStable(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run", a.Name)
		}
	}
	if got, want := strings.Join(names, ","), "clockflow,errdrop,floatacc,goleak,maporder,niltrace,nodeterm,sharedmut"; got != want {
		t.Fatalf("All() = %s, want %s", got, want)
	}
}

// TestFileMatchesHost pins the loader's build-constraint filtering: files
// the toolchain would not compile on this host must not reach the
// type-checker.
func TestFileMatchesHost(t *testing.T) {
	otherArch := "arm64"
	if runtime.GOARCH == "arm64" {
		otherArch = "amd64"
	}
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"plain.go", "package p\n", true},
		{"x_" + runtime.GOARCH + ".go", "package p\n", true},
		{"x_" + otherArch + ".go", "package p\n", false},
		{"x_" + otherOS + ".go", "package p\n", false},
		{"x_noasm.go", "//go:build !" + runtime.GOARCH + "\n\npackage p\n", false},
		{"x_any.go", "//go:build " + runtime.GOARCH + " || " + otherArch + "\n\npackage p\n", true},
		{"x_comment.go", "// just a comment\npackage p\n//go:build " + otherArch + "\n", true},
	}
	for _, tc := range cases {
		if got := fileMatchesHost(tc.name, []byte(tc.src)); got != tc.want {
			t.Errorf("fileMatchesHost(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestLoadHonorsBuildConstraints loads a package whose per-architecture
// variants declare the same symbol behind opposite build tags — exactly the
// gemm dispatch layout in internal/nn. Without constraint filtering the
// type-checker reports a redeclaration.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	// The loader resolves import paths relative to the enclosing module;
	// t.TempDir is outside it, so build the fixture under this package's
	// testdata tree instead.
	dir, err := os.MkdirTemp("testdata", "constraints-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	host := fmt.Sprintf("//go:build %s\n\npackage p\n\nvar impl = %q\n", runtime.GOARCH, runtime.GOARCH)
	other := fmt.Sprintf("//go:build !%s\n\npackage p\n\nvar impl = \"fallback\"\n", runtime.GOARCH)
	if err := os.WriteFile(filepath.Join(dir, "impl_host.go"), []byte(host), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "impl_other.go"), []byte(other), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("constraint-split package failed to load: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("want 1 package with 1 file, got %d packages", len(pkgs))
	}
}
