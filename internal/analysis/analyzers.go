package analysis

// All returns the full gillis-vet suite in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerErrdrop,
		AnalyzerFloatacc,
		AnalyzerMaporder,
		AnalyzerNiltrace,
		AnalyzerNodeterm,
	}
}
