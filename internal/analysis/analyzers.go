package analysis

// All returns the full gillis-vet suite in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerClockflow,
		AnalyzerErrdrop,
		AnalyzerFloatacc,
		AnalyzerGoleak,
		AnalyzerMaporder,
		AnalyzerNiltrace,
		AnalyzerNodeterm,
		AnalyzerSharedmut,
	}
}
