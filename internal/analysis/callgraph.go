package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds gillis-vet's module-wide static call graph, the shared
// substrate under the inter-procedural analyzers (clockflow today; any
// future reachability-style check). Construction rules:
//
//   - One node per function or method *declaration* in the loaded universe
//     (patterns plus transitive module-internal imports), keyed by the
//     types.Func FullName — "pkg.F", "(pkg.T).M", "(*pkg.T).M". One
//     synthetic "<pkg>.init" node per package collects package-level
//     variable initializer expressions.
//   - Static dispatch is resolved exactly: every identifier use that
//     resolves to a module-declared *types.Func adds an edge from the
//     enclosing declaration. Because *references* count, not just call
//     expressions, function values passed as arguments or assigned to
//     locals are tracked through assignment for free: `f := stats.Jitter;
//     f()` contributes the stats.Jitter edge at the assignment.
//   - Interface calls are approximated by method-set matching: a call
//     through interface method I.M adds edges to T.M for every named type
//     T in the universe where T or *T implements I. This over-approximates
//     (no pointer analysis), which is the sound direction for taint.
//   - Code inside function literals is attributed to the enclosing
//     declaration: a closure's calls happen on behalf of whoever defined
//     it. This also over-approximates (the closure may run elsewhere).
//
// Banned ambient-nondeterminism sources (the nodeterm table) are recorded
// per node as direct uses, with the //gillis:allow state of the source
// line, so taint analyzers can honour justified wall-clock reads like
// bench/kernels.go's microbenchmark loop.

// A CallGraph is the module-wide static call graph over one Load universe.
type CallGraph struct {
	// Nodes is keyed by the node ID (types.Func FullName or "<pkg>.init").
	Nodes map[string]*CallNode
}

// A CallNode is one declared function, method, or synthetic package init.
type CallNode struct {
	// ID is the graph key and the display name used in rendered chains.
	ID string
	// Pkg is the defining package's import path.
	Pkg string
	// Pos is the declaration position.
	Pos token.Pos
	// Calls are the outgoing edges, deduplicated per callee (earliest
	// reference wins) and sorted by position for deterministic traversal.
	Calls []CallEdge
	// Banned are direct uses of ambient-nondeterminism entry points.
	Banned []BannedUse
}

// A CallEdge is one resolved reference from a node to another node.
type CallEdge struct {
	// Callee is the target node's ID.
	Callee string
	// Pos is the reference site in the caller.
	Pos token.Pos
	// Interface marks an edge added by interface method-set approximation
	// rather than exact static resolution.
	Interface bool
}

// A BannedUse is one direct use of a banned nondeterminism source
// (time.Now, global math/rand draws, os.Getenv — the nodeterm table).
type BannedUse struct {
	// Pkg and Name identify the source, e.g. "time" and "Now".
	Pkg, Name string
	// Pos is the use site.
	Pos token.Pos
	// Allowed records whether the use site carries a //gillis:allow
	// suppression for nodeterm or clockflow: a justified wall-clock read
	// is not a taint source.
	Allowed bool
}

// Node returns the node for id, or nil.
func (g *CallGraph) Node(id string) *CallNode { return g.Nodes[id] }

// PkgNodes returns the nodes declared in the package with the given import
// path, sorted by declaration position.
func (g *CallGraph) PkgNodes(path string) []*CallNode {
	var nodes []*CallNode
	for _, n := range g.Nodes {
		if n.Pkg == path {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos < nodes[j].Pos })
	return nodes
}

// BuildCallGraph constructs the call graph over the full universe of the
// given packages (each Load result carries the same universe).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	universe := pkgs
	if len(pkgs) > 0 && pkgs[0].universe != nil {
		universe = pkgs[0].universe
	}
	g := &CallGraph{Nodes: make(map[string]*CallNode)}

	// Pass 1: nodes for every declaration, and the named types available
	// for interface method-set matching.
	type declKey struct {
		pkg  *Package
		file *ast.File
		decl *ast.FuncDecl
	}
	var decls []declKey
	var named []*types.Named
	for _, pkg := range universe {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
				if n, ok := tn.Type().(*types.Named); ok {
					named = append(named, n)
				}
			}
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := obj.FullName()
				g.Nodes[id] = &CallNode{ID: id, Pkg: pkg.Path, Pos: fd.Pos()}
				decls = append(decls, declKey{pkg, f, fd})
			}
		}
	}

	// Pass 2: edges and banned uses, attributed to the enclosing
	// declaration (or the synthetic init node for package-level variable
	// initializers).
	for _, pkg := range universe {
		allowed := allowLines(pkg)
		initID := pkg.Path + ".init"
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok || d.Body == nil {
						continue
					}
					collectRefs(g, g.Nodes[obj.FullName()], pkg, named, allowed, d.Body)
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					node := g.Nodes[initID]
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok || len(vs.Values) == 0 {
							continue
						}
						if node == nil {
							node = &CallNode{ID: initID, Pkg: pkg.Path, Pos: d.Pos()}
							g.Nodes[initID] = node
						}
						for _, v := range vs.Values {
							collectRefs(g, node, pkg, named, allowed, v)
						}
					}
				}
			}
		}
	}

	for _, n := range g.Nodes {
		sortEdges(n)
	}
	return g
}

// collectRefs walks body and records, on node, every resolved reference to
// a universe function and every direct banned-source use.
func collectRefs(g *CallGraph, node *CallNode, pkg *Package, named []*types.Named, allowed map[allowKey]bool, body ast.Node) {
	info := pkg.Info
	seen := make(map[string]bool)
	for _, e := range node.Calls {
		seen[e.Callee] = true
	}
	addEdge := func(id string, pos token.Pos, iface bool) {
		if id == node.ID || seen[id] {
			return
		}
		if _, ok := g.Nodes[id]; !ok {
			return
		}
		seen[id] = true
		node.Calls = append(node.Calls, CallEdge{Callee: id, Pos: pos, Interface: iface})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Banned ambient sources read through a package qualifier.
			path := pkgNameOf(info, n)
			if banned, ok := nodetermBanned[path]; ok && banned[n.Sel.Name] {
				pos := pkg.Fset.Position(n.Pos())
				node.Banned = append(node.Banned, BannedUse{
					Pkg:  path,
					Name: n.Sel.Name,
					Pos:  n.Pos(),
					Allowed: allowed[allowKey{pos.Filename, pos.Line, "clockflow"}] ||
						allowed[allowKey{pos.Filename, pos.Line - 1, "clockflow"}] ||
						allowed[allowKey{pos.Filename, pos.Line, "nodeterm"}] ||
						allowed[allowKey{pos.Filename, pos.Line - 1, "nodeterm"}],
				})
			}
		case *ast.Ident:
			fn, ok := info.Uses[n].(*types.Func)
			if !ok {
				return true
			}
			// Instantiated generic functions and methods map back to their
			// generic declaration: the graph has one node per declaration,
			// not per instantiation.
			fn = fn.Origin()
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
				// Interface dispatch: edge to every concrete method in the
				// universe whose receiver type satisfies the interface.
				for _, id := range implementers(named, recv.Type(), fn.Name()) {
					addEdge(id, n.Pos(), true)
				}
				return true
			}
			addEdge(fn.FullName(), n.Pos(), false)
		}
		return true
	})
}

// implementers returns the node IDs of method `name` on every named type
// (or its pointer) that implements the interface type iface, sorted for
// determinism.
func implementers(named []*types.Named, iface types.Type, name string) []string {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var ids []string
	for _, n := range named {
		if types.IsInterface(n.Underlying()) {
			continue
		}
		if !types.Implements(n, it) && !types.Implements(types.NewPointer(n), it) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			ids = append(ids, m.Origin().FullName())
		}
	}
	sort.Strings(ids)
	return ids
}

// sortEdges orders a node's edges and banned uses by position so every
// traversal of the graph is deterministic.
func sortEdges(n *CallNode) {
	sort.Slice(n.Calls, func(i, j int) bool {
		if n.Calls[i].Pos != n.Calls[j].Pos {
			return n.Calls[i].Pos < n.Calls[j].Pos
		}
		return n.Calls[i].Callee < n.Calls[j].Callee
	})
	sort.Slice(n.Banned, func(i, j int) bool {
		if n.Banned[i].Pos != n.Banned[j].Pos {
			return n.Banned[i].Pos < n.Banned[j].Pos
		}
		return n.Banned[i].Pkg+"."+n.Banned[i].Name < n.Banned[j].Pkg+"."+n.Banned[j].Name
	})
}
