package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// loadFixtureGraph loads the clockflow fixture pair and builds the graph
// once per test that needs it.
func loadFixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	pkgs, err := Load(
		filepath.Join("testdata", "src", "gillis", "internal", "runtime"),
		filepath.Join("testdata", "src", "gillis", "internal", "stats"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return BuildCallGraph(pkgs)
}

// edgeTo returns node's edge to callee, or nil.
func edgeTo(n *CallNode, callee string) *CallEdge {
	for i := range n.Calls {
		if n.Calls[i].Callee == callee {
			return &n.Calls[i]
		}
	}
	return nil
}

// TestCallGraphStaticEdges pins exact static resolution: direct calls and
// function values tracked through local assignment both produce edges.
func TestCallGraphStaticEdges(t *testing.T) {
	g := loadFixtureGraph(t)

	replay := g.Node("gillis/internal/runtime.Replay")
	if replay == nil {
		t.Fatal("no node for runtime.Replay")
	}
	e := edgeTo(replay, "gillis/internal/stats.Jitter")
	if e == nil {
		t.Fatal("Replay is missing its cross-package edge to stats.Jitter")
	}
	if e.Interface {
		t.Error("static call marked as interface dispatch")
	}

	// `f := stats.Jitter; f()` — the reference at the assignment is the edge.
	fn := g.Node("gillis/internal/runtime.ReplayFn")
	if fn == nil || edgeTo(fn, "gillis/internal/stats.Jitter") == nil {
		t.Error("function value assigned to a local lost its edge")
	}

	// Pure helpers produce edges too (the graph is a call graph, not a
	// taint graph); the chain Jitter -> wallNanos must exist.
	jitter := g.Node("gillis/internal/stats.Jitter")
	if jitter == nil || edgeTo(jitter, "gillis/internal/stats.wallNanos") == nil {
		t.Error("same-package helper edge missing")
	}
}

// TestCallGraphInterfaceDispatch pins the method-set approximation: a call
// through an interface method adds a marked edge to every implementing
// concrete method in the universe.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := loadFixtureGraph(t)
	mixed := g.Node("gillis/internal/runtime.ReplayMixed")
	if mixed == nil {
		t.Fatal("no node for runtime.ReplayMixed")
	}
	e := edgeTo(mixed, "(gillis/internal/stats.Source).Draw")
	if e == nil {
		t.Fatalf("interface call did not resolve to (stats.Source).Draw; edges: %v", mixed.Calls)
	}
	if !e.Interface {
		t.Error("method-set edge not marked Interface")
	}
}

// TestCallGraphBannedUses pins the per-node banned-source record, including
// the //gillis:allow state that keeps justified wall-clock reads from
// becoming taint sources.
func TestCallGraphBannedUses(t *testing.T) {
	g := loadFixtureGraph(t)

	wall := g.Node("gillis/internal/stats.wallNanos")
	if wall == nil || len(wall.Banned) != 1 {
		t.Fatalf("wallNanos banned uses = %+v, want exactly one", wall)
	}
	if b := wall.Banned[0]; b.Pkg != "time" || b.Name != "Now" || b.Allowed {
		t.Errorf("wallNanos banned use = %+v, want non-allowed time.Now", b)
	}

	probe := g.Node("gillis/internal/runtime.timedProbe")
	if probe == nil || len(probe.Banned) != 1 {
		t.Fatalf("timedProbe banned uses = %+v, want exactly one", probe)
	}
	if !probe.Banned[0].Allowed {
		t.Error("nodeterm-allowed wall-clock read not marked Allowed")
	}
}

// writeTestPkg builds a throwaway package under testdata (the loader
// resolves import paths relative to the module, so t.TempDir is out).
func writeTestPkg(t *testing.T, pattern string, files map[string]string) string {
	t.Helper()
	dir, err := os.MkdirTemp("testdata", pattern)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCallGraphGenerics checks that generic functions and methods load and
// graph correctly: instantiated uses map back to the single generic
// declaration node via Origin, so `Sum[int]` and `Sum[float64]` share one
// node rather than dangling as unmatched instantiation IDs.
func TestCallGraphGenerics(t *testing.T) {
	dir := writeTestPkg(t, "generics-*", map[string]string{
		"g.go": `package p

type Number interface{ ~int | ~float64 }

func Sum[T Number](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

type Stack[T any] struct{ items []T }

func (st *Stack[T]) Push(v T) { st.items = append(st.items, v) }

func UseAll() int {
	var st Stack[int]
	st.Push(Sum([]int{1, 2}))
	return int(Sum([]float64{float64(len(st.items))}))
}

var total = Sum([]float64{1, 2})
`,
	})
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("generic package failed to load: %v", err)
	}
	g := BuildCallGraph(pkgs)
	path := pkgs[0].Path

	use := g.Node(path + ".UseAll")
	if use == nil {
		t.Fatalf("no node for UseAll; nodes: %v", nodeIDs(g))
	}
	if edgeTo(use, path+".Sum") == nil {
		t.Errorf("instantiated generic call lost its edge to the declaration; edges: %v", use.Calls)
	}
	if edgeTo(use, "(*"+path+".Stack[T]).Push") == nil {
		t.Errorf("instantiated generic method call lost its edge; edges: %v", use.Calls)
	}
	// Both instantiations share one declaration node — no per-instance IDs.
	for id := range g.Nodes {
		if strings.Contains(id, "Sum[") {
			t.Errorf("per-instantiation node leaked into the graph: %s", id)
		}
	}
	// Package-level var initializers hang off the synthetic init node.
	ini := g.Node(path + ".init")
	if ini == nil || edgeTo(ini, path+".Sum") == nil {
		t.Error("package-level initializer call missing from the synthetic init node")
	}
}

// TestCallGraphBuildConstraints checks the graph inherits the loader's
// host view: when a function is declared behind opposite build tags, only
// the host variant contributes a node and its banned uses.
func TestCallGraphBuildConstraints(t *testing.T) {
	dir := writeTestPkg(t, "graphtags-*", map[string]string{
		"entry.go": "package p\n\nfunc Entry() int64 { return impl() }\n",
		"impl_host.go": fmt.Sprintf(
			"//go:build %s\n\npackage p\n\nimport \"time\"\n\nfunc impl() int64 { return time.Now().UnixNano() }\n",
			runtime.GOARCH),
		"impl_other.go": fmt.Sprintf(
			"//go:build !%s\n\npackage p\n\nfunc impl() int64 { return 0 }\n",
			runtime.GOARCH),
	})
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("constraint-split package failed to load: %v", err)
	}
	g := BuildCallGraph(pkgs)
	path := pkgs[0].Path

	impl := g.Node(path + ".impl")
	if impl == nil {
		t.Fatalf("no node for impl; nodes: %v", nodeIDs(g))
	}
	if len(impl.Banned) != 1 || impl.Banned[0].Name != "Now" {
		t.Errorf("impl banned uses = %+v, want the host variant's time.Now", impl.Banned)
	}
	entry := g.Node(path + ".Entry")
	if entry == nil || edgeTo(entry, path+".impl") == nil {
		t.Error("Entry is missing its edge to the host impl variant")
	}
}

// TestPkgNodesDeterministic checks PkgNodes returns declaration order.
func TestPkgNodesDeterministic(t *testing.T) {
	g := loadFixtureGraph(t)
	nodes := g.PkgNodes("gillis/internal/stats")
	if len(nodes) < 3 {
		t.Fatalf("PkgNodes(stats) = %d nodes, want at least Jitter, wallNanos, Draw", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Pos >= nodes[i].Pos {
			t.Fatalf("PkgNodes out of declaration order at %d: %s, %s", i, nodes[i-1].ID, nodes[i].ID)
		}
	}
}

func nodeIDs(g *CallGraph) []string {
	var ids []string
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	return ids
}
