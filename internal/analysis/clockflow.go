package analysis

// AnalyzerClockflow is the inter-procedural strengthening of nodeterm:
// taint-style propagation of the banned ambient-nondeterminism sources
// (time.Now/Since, global math/rand draws, os.Getenv — the nodeterm table)
// across the module-wide call graph. A function in a simnet-clocked
// package that reaches a banned source through any number of call hops —
// a helper in internal/stats, a function value, an interface method — is
// flagged at the call site that starts the tainted chain, with the full
// chain rendered so a violation three hops deep is as actionable as a
// direct one.
//
// Division of labour with nodeterm: nodeterm remains the fast
// direct-call check (hop count zero, no graph needed); clockflow reports
// only chains of at least one hop, so the two never duplicate a finding.
// Banned uses carrying a justified //gillis:allow (for nodeterm or
// clockflow) are not taint sources: bench/kernels.go's wall-clock
// microbenchmark loop is sanctioned once, at the read, instead of
// re-flagged in every transitive caller.
var AnalyzerClockflow = &Analyzer{
	Name: "clockflow",
	Doc: "flags functions in simnet-clocked packages that transitively " +
		"reach a banned nondeterminism source (time.Now, global math/rand, " +
		"os.Getenv) through any call chain, rendering the full chain; " +
		"strengthens nodeterm across function and package boundaries",
	NeedsGraph: true,
	Run:        runClockflow,
}

func runClockflow(pass *Pass) {
	var match string
	for _, p := range clockedPkgs {
		if hasPathPrefix(pass.Pkg.Path(), p) {
			match = p
			break
		}
	}
	if match == "" || pass.Graph == nil {
		return
	}
	for _, node := range pass.Graph.PkgNodes(pass.Pkg.Path()) {
		edge, chain, sink := shortestTaintedChain(pass.Graph, node)
		if chain == nil {
			continue
		}
		pass.ReportChain(edge.Pos, chain,
			"call to %s transitively reaches nondeterministic %s.%s (%d hop(s) away); %s is simnet-clocked (derive it from the Env clock or a seeded *rand.Rand)",
			edge.Callee, sink.Pkg, sink.Name, len(chain)-2, match)
	}
}

// shortestTaintedChain finds the shortest call chain from node to a
// non-allowed banned source, at least one hop long (direct uses are
// nodeterm's findings). It returns the first edge of the chain (whose
// position anchors the diagnostic), the rendered chain — caller first,
// banned source last — and the banned use at the sink. BFS over
// position-sorted edges makes the result deterministic; ties break toward
// the earliest call site in the function.
func shortestTaintedChain(g *CallGraph, node *CallNode) (CallEdge, []string, BannedUse) {
	type item struct {
		id   string
		prev int // index into visited order, -1 for roots
		via  CallEdge
	}
	var queue []item
	visited := map[string]bool{node.ID: true}
	for _, e := range node.Calls {
		if !visited[e.Callee] {
			visited[e.Callee] = true
			queue = append(queue, item{e.Callee, -1, e})
		}
	}
	for i := 0; i < len(queue); i++ {
		it := queue[i]
		n := g.Node(it.id)
		if n == nil {
			continue
		}
		if use, ok := taintSource(n); ok {
			// Reconstruct the chain by walking prev links back to the root.
			ids := []string{it.id}
			for j := it.prev; j >= 0; j = queue[j].prev {
				ids = append(ids, queue[j].id)
			}
			chain := []string{node.ID}
			for k := len(ids) - 1; k >= 0; k-- {
				chain = append(chain, ids[k])
			}
			chain = append(chain, use.Pkg+"."+use.Name)
			// The diagnostic anchors on the first edge out of node: the
			// via of the chain's root ancestor.
			root := i
			for queue[root].prev >= 0 {
				root = queue[root].prev
			}
			return queue[root].via, chain, use
		}
		for _, e := range n.Calls {
			if !visited[e.Callee] {
				visited[e.Callee] = true
				queue = append(queue, item{e.Callee, i, e})
			}
		}
	}
	return CallEdge{}, nil, BannedUse{}
}

// taintSource returns the first non-allowed banned use in n, if any.
func taintSource(n *CallNode) (BannedUse, bool) {
	for _, b := range n.Banned {
		if !b.Allowed {
			return b, true
		}
	}
	return BannedUse{}, false
}
