package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerErrdrop flags statement-level calls in internal/ packages whose
// error result is silently discarded. The platform's billing accounting and
// the resilience layer both communicate partial state through errors
// (InvokeError carries billed-ms for failed invocations); dropping one on
// the floor is how billing attribution silently drifts. Explicit `_ =`
// assignments and defers are left alone — both are visible decisions.
var AnalyzerErrdrop = &Analyzer{
	Name: "errdrop",
	Doc: "flags expression-statement calls that discard an error result in " +
		"internal/ packages; handle it, return it, or assign it to _ explicitly",
	Run: runErrdrop,
}

func runErrdrop(pass *Pass) {
	if !hasPathPrefix(pass.Pkg.Path(), "gillis/internal") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if errdropExempt(pass, call) {
				return true
			}
			tv, ok := pass.Info.Types[call]
			if !ok || !returnsError(tv.Type) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s returns an error that is discarded; handle it or assign it to _ explicitly",
				callName(call))
			return true
		})
	}
}

// errdropExempt exempts fmt's printers (their errors reflect broken sinks
// the callers already own) and the infallible in-memory writers.
func errdropExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgNameOf(pass.Info, sel) == "fmt" {
		return true
	}
	if s, ok := pass.Info.Selections[sel]; ok {
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if tn, ok := recv.(*types.Named); ok && tn.Obj().Pkg() != nil {
			full := tn.Obj().Pkg().Path() + "." + tn.Obj().Name()
			if full == "strings.Builder" || full == "bytes.Buffer" {
				return true
			}
		}
	}
	return false
}

// returnsError reports whether t is error or a tuple containing an error.
func returnsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "call"
}
