package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatacc flags floating-point compound accumulation (+=, -=, *=,
// /=) into variables captured from outside a concurrently-executed closure:
// closures spawned with a go statement, and bodies handed to par.For — the
// kernel engine's actual concurrency entry point. Float addition is not
// associative, so concurrent accumulation order changes the result between
// runs and parallelism levels — the exact bug class internal/par's
// disjoint-output discipline exists to prevent.
//
// Inside par.For bodies, compound assignment to an *element* of a captured
// slice (c[j] += ...) is sanctioned: par.For's contract hands each body
// invocation a disjoint [lo, hi) range, so an indexed write is owned by
// exactly one goroutine — this is precisely how the GEMM micro-kernel
// accumulates output panels. Captured *scalar* accumulation has no owner
// and is still flagged. par itself is the blessed home for the primitive
// and is skipped.
var AnalyzerFloatacc = &Analyzer{
	Name: "floatacc",
	Doc: "flags float += accumulation into captured variables inside " +
		"go-spawned closures and par.For bodies; racing non-associative " +
		"adds break bitwise determinism — write disjoint slice elements " +
		"or reduce through internal/par's disjoint-range helpers",
	Run: runFloatacc,
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

func runFloatacc(pass *Pass) {
	if hasPathPrefix(pass.Pkg.Path(), "gillis/internal/par") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// Inspect every closure in the go statement:
				// `go func(){...}()` and closures passed as arguments to
				// the spawned call.
				ast.Inspect(n.Call, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok {
						checkClosure(pass, lit, false)
					}
					return true
				})
			case *ast.CallExpr:
				if !isParFor(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkClosure(pass, lit, true)
					}
				}
			}
			return true
		})
	}
}

// isParFor reports whether call invokes gillis/internal/par.For.
func isParFor(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "For" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "gillis/internal/par"
}

// checkClosure reports float compound-assignments inside lit whose target
// is declared outside the closure (i.e. shared state). With
// allowDisjointElements (the par.For discipline), indexed writes into a
// captured slice are sanctioned — the body owns its [lo, hi) range — and
// only captured scalars are flagged.
func checkClosure(pass *Pass, lit *ast.FuncLit, allowDisjointElements bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[as.Tok] || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if allowDisjointElements {
			if _, ok := lhs.(*ast.IndexExpr); ok {
				return true
			}
		}
		tv, ok := pass.Info.Types[lhs]
		if !ok || !isFloat(tv.Type) {
			return true
		}
		root := rootIdent(lhs)
		if root == nil {
			return true
		}
		obj := pass.Info.ObjectOf(root)
		if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()) {
			return true
		}
		context := "a go-spawned closure"
		if allowDisjointElements {
			context = "a par.For body"
		}
		pass.Reportf(as.Pos(),
			"float accumulation `%s %s ...` into a variable captured by %s; accumulation order is scheduling-dependent, use internal/par's disjoint-range reduction",
			root.Name, as.Tok, context)
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
