package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatacc flags floating-point compound accumulation (+=, -=, *=,
// /=) into variables captured from outside a go-spawned closure. Float
// addition is not associative, so concurrent accumulation order changes the
// result between runs and parallelism levels — the exact bug class
// internal/par's disjoint-output discipline exists to prevent. par itself
// is the blessed home for reductions and is skipped.
var AnalyzerFloatacc = &Analyzer{
	Name: "floatacc",
	Doc: "flags float += accumulation into captured variables inside " +
		"go-spawned closures; racing non-associative adds break bitwise " +
		"determinism — reduce through internal/par's disjoint-range helpers",
	Run: runFloatacc,
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

func runFloatacc(pass *Pass) {
	if hasPathPrefix(pass.Pkg.Path(), "gillis/internal/par") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// Inspect every closure in the go statement: `go func(){...}()`
			// and closures passed as arguments to the spawned call.
			ast.Inspect(gostmt.Call, func(m ast.Node) bool {
				lit, ok := m.(*ast.FuncLit)
				if !ok {
					return true
				}
				checkClosure(pass, lit)
				return true
			})
			return true
		})
	}
}

// checkClosure reports float compound-assignments inside lit whose target
// is declared outside the closure (i.e. shared state).
func checkClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[as.Tok] || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		tv, ok := pass.Info.Types[lhs]
		if !ok || !isFloat(tv.Type) {
			return true
		}
		root := rootIdent(lhs)
		if root == nil {
			return true
		}
		obj := pass.Info.ObjectOf(root)
		if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()) {
			return true
		}
		pass.Reportf(as.Pos(),
			"float accumulation `%s %s ...` into a variable captured by a go-spawned closure; accumulation order is scheduling-dependent, use internal/par's disjoint-range reduction",
			root.Name, as.Tok)
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
