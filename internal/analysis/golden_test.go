package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden diagnostic files")

// goldenCases maps each analyzer to its fixture package under testdata/src.
// Fixture directories under "gillis/..." exercise the analyzers'
// import-path gating via the loader's testdata/src remapping. golden names
// the golden file (without extension) when one analyzer has several
// fixtures; empty means the analyzer's own name.
var goldenCases = []struct {
	analyzer *Analyzer
	fixture  string
	golden   string
}{
	{AnalyzerErrdrop, "gillis/internal/errdrop", ""},
	{AnalyzerFloatacc, "floatacc", ""},
	{AnalyzerMaporder, "maporder", ""},
	{AnalyzerNiltrace, "gillis/internal/trace", ""},
	{AnalyzerNodeterm, "gillis/internal/platform", ""},
	{AnalyzerNodeterm, "gillis/internal/gateway", "nodeterm_gateway"},
	{AnalyzerNodeterm, "gillis/internal/adapt", "nodeterm_adapt"},
	{AnalyzerNodeterm, "gillis/internal/batching", "nodeterm_batching"},
}

// TestGoldenDiagnostics pins each analyzer's findings over its fixture
// package byte-for-byte, the same way the runtime golden trace pins the
// quickstart span tree.
func TestGoldenDiagnostics(t *testing.T) {
	for _, tc := range goldenCases {
		goldenName := tc.golden
		if goldenName == "" {
			goldenName = tc.analyzer.Name
		}
		t.Run(goldenName, func(t *testing.T) {
			pkgs, err := Load(filepath.Join("testdata", "src", filepath.FromSlash(tc.fixture)))
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			var sb strings.Builder
			for _, d := range Run(pkgs, []*Analyzer{tc.analyzer}) {
				d.Pos.Filename = filepath.Base(d.Pos.Filename)
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()

			goldenPath := filepath.Join("testdata", goldenName+".golden")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestFixturePathRemap guards the testdata/src import-path remapping the
// golden fixtures rely on.
func TestFixturePathRemap(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "gillis", "internal", "platform"))
	if err != nil {
		t.Fatal(err)
	}
	if got := pkgs[0].Path; got != "gillis/internal/platform" {
		t.Fatalf("remapped path = %q, want gillis/internal/platform", got)
	}
}
