package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden diagnostic files")

// goldenCases maps each analyzer to its fixture packages under
// testdata/src. Fixture directories under "gillis/..." exercise the
// analyzers' import-path gating via the loader's testdata/src remapping.
// Inter-procedural cases list every package the call chain crosses
// (clockflow's chains run from the clocked runtime fixture into the
// non-clocked stats fixture). golden names the golden file (without
// extension) when one analyzer has several fixtures; empty means the
// analyzer's own name.
var goldenCases = []struct {
	analyzer *Analyzer
	fixtures []string
	golden   string
}{
	{AnalyzerClockflow, []string{"gillis/internal/runtime", "gillis/internal/stats"}, ""},
	{AnalyzerErrdrop, []string{"gillis/internal/errdrop"}, ""},
	{AnalyzerFloatacc, []string{"floatacc"}, ""},
	{AnalyzerGoleak, []string{"gillis/internal/workload"}, ""},
	{AnalyzerMaporder, []string{"maporder"}, ""},
	{AnalyzerNiltrace, []string{"gillis/internal/trace"}, ""},
	{AnalyzerNodeterm, []string{"gillis/internal/platform"}, ""},
	{AnalyzerNodeterm, []string{"gillis/internal/gateway"}, "nodeterm_gateway"},
	{AnalyzerNodeterm, []string{"gillis/internal/adapt"}, "nodeterm_adapt"},
	{AnalyzerNodeterm, []string{"gillis/internal/batching"}, "nodeterm_batching"},
	{AnalyzerNodeterm, []string{"gillis/internal/mesh"}, "nodeterm_mesh"},
	{AnalyzerSharedmut, []string{"sharedmut"}, ""},
}

// TestGoldenDiagnostics pins each analyzer's findings over its fixture
// package byte-for-byte, the same way the runtime golden trace pins the
// quickstart span tree.
func TestGoldenDiagnostics(t *testing.T) {
	for _, tc := range goldenCases {
		goldenName := tc.golden
		if goldenName == "" {
			goldenName = tc.analyzer.Name
		}
		t.Run(goldenName, func(t *testing.T) {
			var dirs []string
			for _, fx := range tc.fixtures {
				dirs = append(dirs, filepath.Join("testdata", "src", filepath.FromSlash(fx)))
			}
			pkgs, err := Load(dirs...)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != len(dirs) {
				t.Fatalf("loaded %d packages, want %d", len(pkgs), len(dirs))
			}
			var sb strings.Builder
			for _, d := range Run(pkgs, []*Analyzer{tc.analyzer}) {
				d.Pos.Filename = filepath.Base(d.Pos.Filename)
				sb.WriteString(d.String())
				sb.WriteString("\n")
			}
			got := sb.String()

			goldenPath := filepath.Join("testdata", goldenName+".golden")
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestFixturePathRemap guards the testdata/src import-path remapping the
// golden fixtures rely on.
func TestFixturePathRemap(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "gillis", "internal", "platform"))
	if err != nil {
		t.Fatal(err)
	}
	if got := pkgs[0].Path; got != "gillis/internal/platform" {
		t.Fatalf("remapped path = %q, want gillis/internal/platform", got)
	}
}
