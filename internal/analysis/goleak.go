package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoleak requires every go statement in a simnet-clocked package
// to be provably joined before the spawning function returns. An unjoined
// goroutine is not merely a leak here: it keeps running after the virtual
// clock instant that spawned it, so its side effects land at a
// scheduler-dependent real time instead of a deterministic virtual one —
// exactly the class of bug the 100-seed replay suites cannot localize.
//
// Join evidence, established intra-procedurally:
//
//   - a sync.WaitGroup the spawned closure calls Done() on, with a
//     matching Wait() in the spawning function;
//   - a channel the closure sends to or closes, with a matching receive
//     (<-ch, or range ch) in the spawning function;
//   - a simnet.Promise the closure resolves (Resolve/Fail/TryResolve/
//     TryFail), with a matching Wait/WaitTimeout in the spawning function.
//
// "On every path" is approximated structurally: the join must not sit
// under a conditional (if/switch/select/case, or a loop that may run zero
// times) that the go statement itself is outside of — formally, the
// join's conditional ancestry must be a subset of the go statement's.
// Deferred joins count regardless of lexical position (defers run on
// every return path) under the same ancestry rule. Spawns of opaque
// function values (`go fn()`) carry no visible join contract and are
// flagged; genuinely detached workers (a process-wide pool) take a
// justified //gillis:allow.
var AnalyzerGoleak = &Analyzer{
	Name: "goleak",
	Doc: "requires go statements in simnet-clocked packages to be joined " +
		"before return via simnet.Promise, sync.WaitGroup, or a channel " +
		"receive on every path; an unjoined goroutine outlives its virtual " +
		"clock instant and breaks replay determinism",
	Run: runGoleak,
}

// joinKind classifies a synchronization object the spawned goroutine
// signals through.
type joinKind int

const (
	joinWaitGroup joinKind = iota
	joinChannel
	joinPromise
)

// spawnSignals is the set of synchronization objects a go statement's
// closure signals completion through, keyed by the root object of the
// expression (wg in wg.Done(), ch in ch <- v, pr in pr.Resolve(x)).
type spawnSignals struct {
	objs map[types.Object]joinKind
	// opaque is true when the go statement spawns no visible function
	// literal (go fn(), go m.run()): the goroutine's body is out of reach
	// and no join contract can be established here.
	opaque bool
}

func runGoleak(pass *Pass) {
	var match string
	for _, p := range clockedPkgs {
		if hasPathPrefix(pass.Pkg.Path(), p) {
			match = p
			break
		}
	}
	if match == "" {
		return
	}
	for _, f := range pass.Files {
		// Each function body — declaration or literal — is its own join
		// scope: a goroutine spawned inside a closure must be joined by
		// that closure.
		scopes := funcScopes(f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			scope := innermostScope(scopes, g)
			if scope == nil {
				return true
			}
			checkGoStmt(pass, scope, g)
			return true
		})
	}
}

// funcScopes collects every function body in the file.
func funcScopes(f *ast.File) []*ast.BlockStmt {
	var scopes []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, n.Body)
			}
		case *ast.FuncLit:
			scopes = append(scopes, n.Body)
		}
		return true
	})
	return scopes
}

// innermostScope returns the smallest function body containing n.
func innermostScope(scopes []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, s := range scopes {
		if s.Pos() <= n.Pos() && n.End() <= s.End() {
			if best == nil || s.Pos() > best.Pos() {
				best = s
			}
		}
	}
	return best
}

// checkGoStmt verifies one go statement is joined within its scope and
// reports when it is not.
func checkGoStmt(pass *Pass, scope *ast.BlockStmt, g *ast.GoStmt) {
	sig := collectSpawnSignals(pass, g.Call)
	if sig.opaque {
		pass.Reportf(g.Pos(),
			"goroutine spawns an opaque function value, which cannot be proven joined before return; spawn a closure that signals a simnet.Promise, sync.WaitGroup, or channel, and join it on every path")
		return
	}
	if len(sig.objs) == 0 {
		pass.Reportf(g.Pos(),
			"goroutine signals no join primitive; make the closure resolve a simnet.Promise, call (*sync.WaitGroup).Done, or send on a channel, and join it before return")
		return
	}
	goAnc := condAncestors(scope, g)
	joined := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if joined || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if n == g {
				return false
			}
		case *ast.DeferStmt:
			// Deferred joins run on every return path; lexical position
			// relative to the go statement does not matter, conditional
			// registration does.
			if hasJoin(pass, n, sig) && ancestrySubset(condAncestors(scope, n), goAnc) {
				joined = true
			}
			return false
		case *ast.FuncLit:
			// A join inside a non-deferred nested closure proves nothing:
			// the closure may never run in this scope.
			return false
		default:
			if isJoinNode(pass, n, sig) && n.Pos() > g.End() && ancestrySubset(condAncestors(scope, n), goAnc) {
				joined = true
				return false
			}
		}
		return true
	})
	if !joined {
		pass.Reportf(g.Pos(),
			"goroutine is not provably joined before return (no matching simnet.Promise Wait, sync.WaitGroup Wait, or channel receive on every path); an unjoined goroutine outlives its virtual-clock instant and breaks replay determinism")
	}
}

// collectSpawnSignals inspects the spawned call for function literals and
// records every synchronization object their bodies signal through.
func collectSpawnSignals(pass *Pass, call *ast.CallExpr) spawnSignals {
	sig := spawnSignals{objs: make(map[types.Object]joinKind), opaque: true}
	ast.Inspect(call, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sig.opaque = false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				if obj := rootObj(pass, m.Chan); obj != nil {
					sig.objs[obj] = joinChannel
				}
			case *ast.CallExpr:
				if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "close" && len(m.Args) == 1 {
					if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
						if obj := rootObj(pass, m.Args[0]); obj != nil {
							sig.objs[obj] = joinChannel
						}
					}
					return true
				}
				sel, ok := m.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv := recvType(pass, sel)
				switch {
				case sel.Sel.Name == "Done" && isNamedType(recv, "sync", "WaitGroup"):
					if obj := rootObj(pass, sel.X); obj != nil {
						sig.objs[obj] = joinWaitGroup
					}
				case promiseResolvers[sel.Sel.Name] && isNamedType(recv, "gillis/internal/simnet", "Promise"):
					if obj := rootObj(pass, sel.X); obj != nil {
						sig.objs[obj] = joinPromise
					}
				}
			}
			return true
		})
		return true
	})
	return sig
}

// promiseResolvers are the simnet.Promise methods that complete a promise.
var promiseResolvers = map[string]bool{
	"Resolve": true, "Fail": true, "TryResolve": true, "TryFail": true,
}

// hasJoin reports whether any node under root is a join on one of the
// signalled objects.
func hasJoin(pass *Pass, root ast.Node, sig spawnSignals) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if isJoinNode(pass, n, sig) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isJoinNode reports whether n joins one of the signalled objects: a
// WaitGroup Wait, a Promise Wait/WaitTimeout, a channel receive, or a
// range over the channel.
func isJoinNode(pass *Pass, n ast.Node, sig spawnSignals) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj := rootObj(pass, sel.X)
		if obj == nil {
			return false
		}
		kind, tracked := sig.objs[obj]
		if !tracked {
			return false
		}
		recv := recvType(pass, sel)
		switch kind {
		case joinWaitGroup:
			return sel.Sel.Name == "Wait" && isNamedType(recv, "sync", "WaitGroup")
		case joinPromise:
			return (sel.Sel.Name == "Wait" || sel.Sel.Name == "WaitTimeout") &&
				isNamedType(recv, "gillis/internal/simnet", "Promise")
		}
	case *ast.UnaryExpr:
		if n.Op != token.ARROW {
			return false
		}
		obj := rootObj(pass, n.X)
		return obj != nil && sig.objs[obj] == joinChannel
	case *ast.RangeStmt:
		tv, ok := pass.Info.Types[n.X]
		if !ok {
			return false
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return false
		}
		obj := rootObj(pass, n.X)
		return obj != nil && sig.objs[obj] == joinChannel
	}
	return false
}

// rootObj resolves the root identifier of e to its object.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return pass.Info.ObjectOf(id)
}

// recvType returns the receiver type of a method selector (pointers
// stripped), or nil when sel is not a method selection.
func recvType(pass *Pass, sel *ast.SelectorExpr) types.Type {
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// isNamedType reports whether t is the named type pkgPath.name, ignoring
// type arguments (simnet.Promise is generic).
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// condAncestors returns the conditional constructs (if/switch/select,
// case/comm clauses, and loops) enclosing target within scope, outermost
// first.
func condAncestors(scope *ast.BlockStmt, target ast.Node) []ast.Node {
	var stack []ast.Node
	var result []ast.Node
	ast.Inspect(scope, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target && result == nil {
			// The target itself is excluded: a range-over-channel join is
			// not conditional on its own loop.
			for _, a := range stack[:len(stack)-1] {
				switch a.(type) {
				case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
					*ast.SelectStmt, *ast.ForStmt, *ast.RangeStmt,
					*ast.CaseClause, *ast.CommClause:
					result = append(result, a)
				}
			}
		}
		return true
	})
	return result
}

// ancestrySubset reports whether every node in sub also appears in super.
func ancestrySubset(sub, super []ast.Node) bool {
	for _, s := range sub {
		found := false
		for _, p := range super {
			if s == p {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
