package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path. Directories under a "testdata/src" segment
	// are remapped to the path after it, so test fixtures can impersonate
	// real packages (mirroring x/tools' analysistest layout).
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// universe is every module-internal package the Load call touched —
	// the patterns plus their transitive module imports, sorted by path.
	// The call graph builds over the universe so chains can cross into
	// packages that were imported but not named as patterns.
	universe []*Package
}

// Load parses and type-checks the packages matched by patterns. A pattern
// is a directory path, or a directory path ending in "/..." which walks the
// tree beneath it. Directories named "testdata" or starting with "." or "_"
// are skipped during walks (but can be named directly). Only non-test
// sources are loaded: gillis-vet checks shipping code.
//
// Module-internal imports are resolved by the loader itself, so every
// module package is parsed and type-checked exactly once per Load call and
// all packages share one type universe — the property the inter-procedural
// call graph (callgraph.go) needs for cross-package object identity.
// Imports inside a testdata/src tree prefer a sibling fixture directory
// (testdata/src/<import path>) and fall back to the real module directory,
// so fixtures can impersonate packages that call each other. Standard
// library imports go through go/importer's source importer.
func Load(patterns ...string) ([]*Package, error) {
	dirs, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule()
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:     fset,
		modRoot:  modRoot,
		modPath:  modPath,
		fallback: importer.ForCompiler(fset, "source", nil),
		cache:    make(map[string]*Package),
		loading:  make(map[string]bool),
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	var universe []*Package
	for _, pkg := range ld.cache {
		universe = append(universe, pkg)
	}
	sort.Slice(universe, func(i, j int) bool { return universe[i].Path < universe[j].Path })
	for _, pkg := range pkgs {
		pkg.universe = universe
	}
	return pkgs, nil
}

// expand resolves patterns to a sorted, deduplicated list of candidate
// package directories.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("walk %s: %w", pat, err)
			}
			continue
		}
		fi, err := os.Stat(pat)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns the module root directory and module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// importPath computes the package's import path from its directory, with
// the testdata/src remapping described on Package.Path.
func importPath(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if i := strings.Index(rel+"/", "testdata/src/"); i >= 0 {
		return strings.TrimPrefix(rel[i:], "testdata/src/"), nil
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + rel, nil
}

// knownGOOS/knownGOARCH are the targets the filename-suffix convention
// recognizes; the repo only splits on amd64, but the check mirrors the
// toolchain's rule so future ports keep loading correctly.
var knownGOOS = map[string]bool{
	"linux": true, "darwin": true, "windows": true, "freebsd": true,
	"netbsd": true, "openbsd": true, "js": true, "wasip1": true,
}
var knownGOARCH = map[string]bool{
	"amd64": true, "arm64": true, "386": true, "arm": true,
	"riscv64": true, "ppc64le": true, "s390x": true, "wasm": true,
}

// fileMatchesHost reports whether the toolchain would compile this file on
// the host, honouring _GOOS/_GOARCH filename suffixes and //go:build
// expressions. Files excluded by build constraints must not reach the
// type-checker: per-architecture variants (gemm_amd64.go vs gemm_noasm.go)
// declare the same symbols behind opposite tags. The call graph inherits
// the same view: functions in excluded files contribute no nodes or edges.
func fileMatchesHost(name string, src []byte) bool {
	tagOK := func(tag string) bool {
		return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" || tag == "cgo"
	}
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	for i := len(parts) - 1; i > 0 && len(parts)-i <= 2; i-- {
		p := parts[i]
		if (knownGOOS[p] || knownGOARCH[p]) && p != runtime.GOOS && p != runtime.GOARCH {
			return false
		}
	}
	// A //go:build line is only valid before the package clause; scanning
	// stops there.
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		if !expr.Eval(tagOK) {
			return false
		}
	}
	return true
}

// loader parses and type-checks packages, resolving module-internal
// imports itself so each package is checked once and all share one type
// universe. It is handed to go/types as the Importer for every check.
type loader struct {
	fset             *token.FileSet
	modRoot, modPath string
	// fallback resolves non-module imports (the standard library).
	fallback types.Importer
	// cache holds every module package loaded so far, keyed by import path
	// (after testdata/src remapping).
	cache map[string]*Package
	// loading guards against import cycles, which would otherwise recurse
	// forever before the type-checker could diagnose them.
	loading map[string]bool
}

// Import implements types.Importer. srcDir-sensitive resolution happens in
// ImportFrom; plain Import sees no importing context.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom. Module-internal paths resolve
// to a directory and load through the shared cache; everything else
// delegates to the source importer.
func (ld *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if !hasPathPrefix(path, ld.modPath) && !ld.isFixturePath(path, srcDir) {
		if from, ok := ld.fallback.(types.ImporterFrom); ok {
			return from.ImportFrom(path, srcDir, mode)
		}
		return ld.fallback.Import(path)
	}
	dir, err := ld.dirFor(path, srcDir)
	if err != nil {
		return nil, err
	}
	pkg, err := ld.loadDir(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("import %q: no Go sources in %s", path, dir)
	}
	return pkg.Types, nil
}

// isFixturePath reports whether path names a sibling fixture package when
// importing from inside a testdata/src tree (fixture packages may use
// import paths outside the module path, e.g. plain "stats").
func (ld *loader) isFixturePath(path, srcDir string) bool {
	root, ok := testdataRoot(srcDir)
	if !ok {
		return false
	}
	fi, err := os.Stat(filepath.Join(root, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// testdataRoot extracts the ".../testdata/src" prefix of dir, when inside
// one. The directory may be relative ("testdata/src/gillis/...") or
// absolute, depending on how the pattern was named.
func testdataRoot(dir string) (string, bool) {
	sep := string(filepath.Separator)
	marker := filepath.Join("testdata", "src") + sep
	padded := dir + sep
	if strings.HasPrefix(padded, marker) {
		return strings.TrimSuffix(marker, sep), true
	}
	if i := strings.Index(padded, sep+marker); i >= 0 {
		return padded[:i+len(sep+marker)-1], true
	}
	return "", false
}

// dirFor maps an import path to the directory holding its sources. Imports
// from a testdata/src tree prefer a fixture directory under the same tree
// (so fixtures can impersonate module packages and import each other) and
// fall back to the real module directory.
func (ld *loader) dirFor(path, srcDir string) (string, error) {
	if root, ok := testdataRoot(srcDir); ok {
		cand := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(cand); err == nil && fi.IsDir() {
			return cand, nil
		}
	}
	if path == ld.modPath {
		return ld.modRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, ld.modPath+"/"); ok {
		cand := filepath.Join(ld.modRoot, filepath.FromSlash(rest))
		if fi, err := os.Stat(cand); err == nil && fi.IsDir() {
			return cand, nil
		}
		return "", fmt.Errorf("import %q: no such package directory under %s", path, ld.modRoot)
	}
	return "", fmt.Errorf("import %q: cannot resolve outside module %s", path, ld.modPath)
}

// loadDir parses and type-checks one directory, returning nil when it
// holds no non-test Go sources. Results are cached by import path, so a
// package named both as a pattern and as someone's import is checked once.
func (ld *loader) loadDir(dir string) (*Package, error) {
	path, err := importPath(ld.modRoot, ld.modPath, dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		src, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		if !fileMatchesHost(n, src) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, n), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		// Degrade to a readable, positioned error instead of propagating a
		// half-checked package into the analyzers (where missing type info
		// panics far from the cause).
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Types: tpkg, Info: info}
	ld.cache[path] = pkg
	return pkg, nil
}
