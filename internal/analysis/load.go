package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path. Directories under a "testdata/src" segment
	// are remapped to the path after it, so test fixtures can impersonate
	// real packages (mirroring x/tools' analysistest layout).
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the packages matched by patterns. A pattern
// is a directory path, or a directory path ending in "/..." which walks the
// tree beneath it. Directories named "testdata" or starting with "." or "_"
// are skipped during walks (but can be named directly). Only non-test
// sources are loaded: gillis-vet checks shipping code.
//
// Loading shells out to nothing itself; module-internal imports are
// resolved by go/importer's source importer, which requires the working
// directory to be inside the module.
func Load(patterns ...string) ([]*Package, error) {
	dirs, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule()
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expand resolves patterns to a sorted, deduplicated list of candidate
// package directories.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("walk %s: %w", pat, err)
			}
			continue
		}
		fi, err := os.Stat(pat)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns the module root directory and module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// importPath computes the package's import path from its directory, with
// the testdata/src remapping described on Package.Path.
func importPath(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if i := strings.Index(rel+"/", "testdata/src/"); i >= 0 {
		return strings.TrimPrefix(rel[i:], "testdata/src/"), nil
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + rel, nil
}

// loadDir parses and type-checks one directory, returning nil when it holds
// no non-test Go sources.
func loadDir(fset *token.FileSet, imp types.Importer, modRoot, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	path, err := importPath(modRoot, modPath, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
