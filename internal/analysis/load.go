package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path. Directories under a "testdata/src" segment
	// are remapped to the path after it, so test fixtures can impersonate
	// real packages (mirroring x/tools' analysistest layout).
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the packages matched by patterns. A pattern
// is a directory path, or a directory path ending in "/..." which walks the
// tree beneath it. Directories named "testdata" or starting with "." or "_"
// are skipped during walks (but can be named directly). Only non-test
// sources are loaded: gillis-vet checks shipping code.
//
// Loading shells out to nothing itself; module-internal imports are
// resolved by go/importer's source importer, which requires the working
// directory to be inside the module.
func Load(patterns ...string) ([]*Package, error) {
	dirs, err := expand(patterns)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule()
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// expand resolves patterns to a sorted, deduplicated list of candidate
// package directories.
func expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("walk %s: %w", pat, err)
			}
			continue
		}
		fi, err := os.Stat(pat)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns the module root directory and module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// importPath computes the package's import path from its directory, with
// the testdata/src remapping described on Package.Path.
func importPath(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if i := strings.Index(rel+"/", "testdata/src/"); i >= 0 {
		return strings.TrimPrefix(rel[i:], "testdata/src/"), nil
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + rel, nil
}

// knownGOOS/knownGOARCH are the targets the filename-suffix convention
// recognizes; the repo only splits on amd64, but the check mirrors the
// toolchain's rule so future ports keep loading correctly.
var knownGOOS = map[string]bool{
	"linux": true, "darwin": true, "windows": true, "freebsd": true,
	"netbsd": true, "openbsd": true, "js": true, "wasip1": true,
}
var knownGOARCH = map[string]bool{
	"amd64": true, "arm64": true, "386": true, "arm": true,
	"riscv64": true, "ppc64le": true, "s390x": true, "wasm": true,
}

// fileMatchesHost reports whether the toolchain would compile this file on
// the host, honouring _GOOS/_GOARCH filename suffixes and //go:build
// expressions. Files excluded by build constraints must not reach the
// type-checker: per-architecture variants (gemm_amd64.go vs gemm_noasm.go)
// declare the same symbols behind opposite tags.
func fileMatchesHost(name string, src []byte) bool {
	tagOK := func(tag string) bool {
		return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" || tag == "cgo"
	}
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	for i := len(parts) - 1; i > 0 && len(parts)-i <= 2; i-- {
		p := parts[i]
		if (knownGOOS[p] || knownGOARCH[p]) && p != runtime.GOOS && p != runtime.GOARCH {
			return false
		}
	}
	// A //go:build line is only valid before the package clause; scanning
	// stops there.
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		if !expr.Eval(tagOK) {
			return false
		}
	}
	return true
}

// loadDir parses and type-checks one directory, returning nil when it holds
// no non-test Go sources.
func loadDir(fset *token.FileSet, imp types.Importer, modRoot, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		src, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		if !fileMatchesHost(n, src) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	path, err := importPath(modRoot, modPath, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
