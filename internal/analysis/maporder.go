package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerMaporder flags range statements over maps whose body builds
// ordered output — appending to a slice declared outside the loop, or
// writing to an io.Writer-shaped sink — with no sort call after the loop in
// the same function. Go randomizes map iteration order, so such loops
// produce run-to-run-different output: the exact failure mode the repo's
// byte-pinned golden tables and traces exist to catch, surfaced statically.
var AnalyzerMaporder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration that appends to an outer slice or writes to " +
		"an output sink without an intervening sort; map order is randomized " +
		"per run, which breaks byte-stable tables, traces, and JSON baselines",
	Run: runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		// Collect function bodies so a range statement can be checked for a
		// sort following it within its own function.
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			sink := orderedSink(pass, rng)
			if sink == "" {
				return true
			}
			if sortedAfter(pass, funcs, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"map iteration %s in randomized order with no sort after the loop; iterate sorted keys or sort the result",
				sink)
			return true
		})
	}
}

// orderedSink describes the first order-sensitive output the range body
// produces ("" when the body is order-insensitive).
func orderedSink(pass *Pass, rng *ast.RangeStmt) string {
	var desc string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" || len(call.Args) == 0 {
					continue
				}
				target := rootIdent(call.Args[0])
				if target == nil {
					continue
				}
				obj := pass.Info.ObjectOf(target)
				// Appends into a slice that outlives the loop body; slices
				// declared inside the body are rebuilt per iteration and
				// carry no cross-iteration order.
				if obj != nil && obj.Pos() < rng.Pos() {
					desc = "appends to " + target.Name
				}
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if pkgNameOf(pass.Info, sel) == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") {
					desc = "writes fmt." + sel.Sel.Name + " output"
				} else if sel.Sel.Name == "Write" || sel.Sel.Name == "WriteString" || sel.Sel.Name == "WriteByte" {
					desc = "calls " + sel.Sel.Name + " on an output sink"
				}
			}
		}
		return desc == ""
	})
	return desc
}

// sortedAfter reports whether a sort.* or slices.Sort* call appears after
// the range statement inside the innermost function containing it.
func sortedAfter(pass *Pass, funcs []ast.Node, rng *ast.RangeStmt) bool {
	var encl ast.Node
	for _, fn := range funcs {
		if fn.Pos() <= rng.Pos() && rng.End() <= fn.End() {
			if encl == nil || fn.Pos() > encl.Pos() {
				encl = fn
			}
		}
	}
	if encl == nil {
		return false
	}
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch pkg := pkgNameOf(pass.Info, sel); {
			case pkg == "sort":
				sorted = true
			case pkg == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"):
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
