package analysis

import (
	"go/ast"
	"go/token"
)

// AnalyzerNiltrace enforces internal/trace's nil-safety contract: every
// exported pointer-receiver method on *Span must begin with a nil-receiver
// guard, because the untraced serving path threads nil spans through every
// hot call site and relies on each method degrading to a no-op.
var AnalyzerNiltrace = &Analyzer{
	Name: "niltrace",
	Doc: "requires every exported *Span method in internal/trace to open " +
		"with `if s == nil` so the untraced path stays a no-op instead of a panic",
	Run: runNiltrace,
}

func runNiltrace(pass *Pass) {
	if !hasPathPrefix(pass.Pkg.Path(), "gillis/internal/trace") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0]
			star, ok := recv.Type.(*ast.StarExpr)
			if !ok {
				continue
			}
			base, ok := star.X.(*ast.Ident)
			if !ok || base.Name != "Span" {
				continue
			}
			if len(recv.Names) == 1 && hasNilGuard(fd.Body, recv.Names[0].Name) {
				continue
			}
			pass.Reportf(fd.Pos(),
				"exported *Span method %s must start with a nil-receiver guard; nil spans are the untraced fast path",
				fd.Name.Name)
		}
	}
}

// hasNilGuard reports whether the body's first statement is
// `if <recv> == nil { ... }` (or `nil == <recv>`).
func hasNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cmp, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cmp.Op != token.EQL {
		return false
	}
	return (isIdent(cmp.X, recv) && isIdent(cmp.Y, "nil")) ||
		(isIdent(cmp.X, "nil") && isIdent(cmp.Y, recv))
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
