package analysis

import (
	"go/ast"
)

// clockedPkgs are the packages whose behavior must be a pure function of
// the simnet virtual clock and the seeds threaded through their APIs. A
// wall-clock read or an unseeded global RNG draw in any of them breaks the
// golden quickstart trace, the 100-seed chaos sweeps, and every
// bitwise-equality kernel test downstream. cmd/ is deliberately absent:
// front ends may time their own wall-clock progress output.
var clockedPkgs = []string{
	"gillis/internal/simnet",
	"gillis/internal/platform",
	"gillis/internal/runtime",
	"gillis/internal/bench",
	"gillis/internal/trace",
	"gillis/internal/par",
	"gillis/internal/nn",
	"gillis/internal/workload",
	"gillis/internal/gateway",
	"gillis/internal/adapt",
	"gillis/internal/batching",
	"gillis/internal/mesh",
}

// nodetermBanned maps an import path to the package-level names that read
// ambient nondeterministic state. For math/rand only the implicit
// global-RNG entry points are banned; rand.New(rand.NewSource(seed)) is the
// blessed pattern.
var nodetermBanned = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTicker": true, "NewTimer": true,
	},
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "NormFloat64": true,
		"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
		"Read": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint32": true, "Uint32N": true,
		"Uint64": true, "Uint64N": true, "Float32": true, "Float64": true,
		"NormFloat64": true, "ExpFloat64": true, "Perm": true,
		"Shuffle": true, "N": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
	},
}

// AnalyzerNodeterm bans ambient-nondeterminism entry points — time.Now,
// time.Since, the unseeded global math/rand functions, os.Getenv — inside
// the simnet-clocked packages listed in clockedPkgs.
var AnalyzerNodeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "bans wall-clock reads, unseeded global RNG draws, and environment " +
		"lookups in simnet-clocked packages, whose outputs must be a pure " +
		"function of seeds and virtual time",
	Run: runNodeterm,
}

func runNodeterm(pass *Pass) {
	var match string
	for _, p := range clockedPkgs {
		if hasPathPrefix(pass.Pkg.Path(), p) {
			match = p
			break
		}
	}
	if match == "" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := pkgNameOf(pass.Info, sel)
			banned, ok := nodetermBanned[path]
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s is nondeterministic; %s is simnet-clocked (derive it from the Env clock or a seeded *rand.Rand)",
				path, sel.Sel.Name, match)
			return true
		})
	}
}
