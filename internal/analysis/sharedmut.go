package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerSharedmut generalizes floatacc's concurrency discipline beyond
// float accumulation: it flags every mutation of shared (captured) state
// inside concurrently-executed closures — go-spawned closures and bodies
// handed to par.For — that the disjoint-ownership contract cannot
// sanction:
//
//   - writes into a captured map (m[k] = v, m[k]++, delete-free maps have
//     no disjoint-element ownership and racing writes corrupt the map);
//   - append to a captured slice (s = append(s, ...) races on len and on
//     the backing array);
//   - non-indexed assignment or ++/-- to any captured variable (scalar,
//     struct field, pointer target): last-writer-wins is
//     scheduling-dependent.
//
// Indexed writes into a captured slice or array (c[j] = v, c[j] += v)
// remain sanctioned in both contexts: par.For hands each body invocation
// a disjoint [lo, hi) range and fork-join spawns conventionally write
// result[i] for a loop-private i, so each element has exactly one owner —
// the exact discipline the GEMM micro-kernel's output panels depend on.
// Float compound assignment to captured scalars is floatacc's finding and
// is not re-reported here. internal/par itself hosts the pool primitive
// and its deliberate shared state, and is skipped like floatacc does.
var AnalyzerSharedmut = &Analyzer{
	Name: "sharedmut",
	Doc: "flags mutation of captured state inside par.For bodies and " +
		"go-spawned closures — map writes, append to a captured slice, " +
		"non-indexed assignments; only disjoint indexed slice-element " +
		"writes are safe under the kernel engine's ownership contract",
	Run: runSharedmut,
}

func runSharedmut(pass *Pass) {
	if hasPathPrefix(pass.Pkg.Path(), "gillis/internal/par") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				ast.Inspect(n.Call, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok {
						checkSharedMut(pass, lit, "a go-spawned closure")
					}
					return true
				})
			case *ast.CallExpr:
				if !isParFor(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkSharedMut(pass, lit, "a par.For body")
					}
				}
			}
			return true
		})
	}
}

// checkSharedMut reports unsanctioned mutations of captured state inside
// lit.
func checkSharedMut(pass *Pass, lit *ast.FuncLit, context string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				checkWrite(pass, lit, context, n.Tok, lhs, rhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, context, n.Tok, n.X, nil, n.Pos())
		}
		return true
	})
}

// checkWrite classifies one write target inside a concurrent closure and
// reports it when it mutates captured state outside the sanctioned
// disjoint-indexed-element pattern.
func checkWrite(pass *Pass, lit *ast.FuncLit, context string, tok token.Token, lhs, rhs ast.Expr, pos token.Pos) {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := pass.Info.ObjectOf(root)
	// Only captured state is shared: targets declared inside the closure
	// are private to one invocation.
	if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()) {
		return
	}

	if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
		base := pass.Info.Types[idx.X].Type
		if base != nil {
			switch base.Underlying().(type) {
			case *types.Map:
				pass.Reportf(pos,
					"write into map `%s` captured by %s; map writes have no disjoint-element ownership and race, use per-range private maps merged after the join",
					root.Name, context)
			}
		}
		// Indexed slice/array element writes are the sanctioned
		// disjoint-ownership pattern.
		return
	}

	if call, ok := unparen(rhs).(*ast.CallExpr); ok && tok == token.ASSIGN {
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
			if _, isBuiltin := pass.Info.ObjectOf(fn).(*types.Builtin); isBuiltin {
				pass.Reportf(pos,
					"append to slice `%s` captured by %s; concurrent appends race on the length and backing array, preallocate and write disjoint indices",
					root.Name, context)
				return
			}
		}
	}

	// Float compound accumulation is floatacc's finding; do not duplicate.
	if compoundOps[tok] {
		if tv, ok := pass.Info.Types[lhs]; ok && isFloat(tv.Type) {
			return
		}
	}

	pass.Reportf(pos,
		"assignment to `%s` captured by %s; a non-indexed write to shared state is last-writer-wins under scheduling, keep per-invocation state local or write disjoint slice elements",
		root.Name, context)
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
