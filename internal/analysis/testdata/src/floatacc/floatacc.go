// Package floatacc is the floatacc fixture: float accumulation racing
// inside go-spawned closures versus the safe shapes.
package floatacc

import "sync"

// BadShared accumulates into a captured float from spawned goroutines.
func BadShared(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum += x // want: captured float accumulation
		}()
	}
	wg.Wait()
	return sum
}

// BadIndirect spawns a helper that receives an accumulating closure.
func BadIndirect(run func(func())) float64 {
	var total float64
	go run(func() {
		total *= 1.5 // want: captured float accumulation
	})
	return total
}

// GoodLocal accumulates into a closure-local variable.
func GoodLocal(xs []float64, out chan<- float64) {
	go func() {
		local := 0.0
		for _, x := range xs {
			local += x
		}
		out <- local
	}()
}

// GoodInt counters are associative; only floats are flagged.
func GoodInt(n *int, done chan<- struct{}) {
	go func() {
		*n += 1
		done <- struct{}{}
	}()
}

// GoodSerial accumulates outside any goroutine.
func GoodSerial(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// AllowedSingleWriter is safe by construction and says so.
func AllowedSingleWriter(x float64, done chan<- float64) {
	var acc float64
	go func() {
		//gillis:allow floatacc fixture: single goroutine owns acc until the channel send
		acc += x
		done <- acc
	}()
}
