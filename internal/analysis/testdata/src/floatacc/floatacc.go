// Package floatacc is the floatacc fixture: float accumulation racing
// inside go-spawned closures and par.For bodies versus the safe shapes.
package floatacc

import (
	"sync"

	"gillis/internal/par"
)

// BadShared accumulates into a captured float from spawned goroutines.
func BadShared(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum += x // want: captured float accumulation
		}()
	}
	wg.Wait()
	return sum
}

// BadIndirect spawns a helper that receives an accumulating closure.
func BadIndirect(run func(func())) float64 {
	var total float64
	go run(func() {
		total *= 1.5 // want: captured float accumulation
	})
	return total
}

// GoodLocal accumulates into a closure-local variable.
func GoodLocal(xs []float64, out chan<- float64) {
	go func() {
		local := 0.0
		for _, x := range xs {
			local += x
		}
		out <- local
	}()
}

// GoodInt counters are associative; only floats are flagged.
func GoodInt(n *int, done chan<- struct{}) {
	go func() {
		*n += 1
		done <- struct{}{}
	}()
}

// GoodSerial accumulates outside any goroutine.
func GoodSerial(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// BadParForScalar accumulates into a captured scalar from a par.For body:
// the chunks race on sum, so the reduction order depends on scheduling.
func BadParForScalar(xs []float64) float64 {
	var sum float64
	par.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want: captured float accumulation
		}
	})
	return sum
}

// GoodParForElements accumulates into disjoint elements of a captured
// slice — the GEMM micro-kernel's sanctioned discipline: par.For hands the
// body a [lo, hi) range it alone owns, so every element has exactly one
// writer and the per-element accumulation order is the serial one.
func GoodParForElements(out, xs []float64) {
	par.For(len(out), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] += xs[i] * xs[i]
		}
	})
}

// GoodParForLocal reduces into a body-local accumulator before a single
// indexed store; locals are per-invocation and never shared.
func GoodParForLocal(out, xs []float64) {
	par.For(len(out), len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := out[i]
			for _, x := range xs {
				acc += x
			}
			out[i] = acc
		}
	})
}

// AllowedSingleWriter is safe by construction and says so.
func AllowedSingleWriter(x float64, done chan<- float64) {
	var acc float64
	go func() {
		//gillis:allow floatacc fixture: single goroutine owns acc until the channel send
		acc += x
		done <- acc
	}()
}
