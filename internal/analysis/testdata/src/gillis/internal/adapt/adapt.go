// Package adapt is a nodeterm fixture impersonating the adaptive
// controller: the loader remaps testdata/src/<path> to <path>, so this
// file type-checks as gillis/internal/adapt. The controller's decision log
// must be a pure function of the observation stream and its config —
// bit-exact replays and the 100-seed parallelism-invariance property both
// die on any ambient read below.
package adapt

import (
	"math/rand"
	"time"
)

// BadTick times the regime dwell off the wall clock and breaks ties with
// the global RNG — both banned in a simnet-clocked package.
func BadTick() float64 {
	started := time.Now()       // want: wall-clock dwell stamp
	tie := rand.Intn(2)         // want: global RNG tie-break
	hold := time.Since(started) // want: wall-clock read
	return float64(hold) + float64(tie)
}

// GoodTick derives the dwell from the gateway's virtual now and breaks
// ties with a seeded RNG.
func GoodTick(nowVirtual time.Duration, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	dwell := nowVirtual + 100*time.Millisecond
	_ = dwell
	return rng.Float64()
}
