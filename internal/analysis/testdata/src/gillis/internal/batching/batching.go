// Package batching is a nodeterm fixture impersonating the cross-query
// batcher: the loader remaps testdata/src/<path> to <path>, so this file
// type-checks as gillis/internal/batching. Batch closing decisions must be
// a pure function of the gateway's virtual clock and the batch state —
// the golden batch report and the 100-seed batched-replay determinism
// property both die on any ambient read below.
package batching

import (
	"math/rand"
	"time"
)

// BadClose stamps batch members off the wall clock and jitters the delay
// bound with the global RNG — both banned in a simnet-clocked package.
func BadClose() time.Duration {
	arrived := time.Now()       // want: wall-clock member stamp
	jitter := rand.Float64()    // want: global RNG delay jitter
	wait := time.Since(arrived) // want: wall-clock wait read
	return wait + time.Duration(jitter*1e6)
}

// GoodClose derives the oldest member's wait from the gateway's virtual
// now and jitters with a seeded RNG.
func GoodClose(nowVirtual, oldest time.Duration, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	wait := nowVirtual - oldest
	return wait + time.Duration(rng.Float64()*1e6)
}
