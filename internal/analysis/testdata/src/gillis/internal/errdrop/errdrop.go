// Package errdrop is the errdrop fixture, remapped under gillis/internal/
// so the analyzer treats it as shipping library code.
package errdrop

import (
	"fmt"
	"io"
	"strings"
)

// Flush is a fallible operation whose error matters.
func Flush() error { return nil }

// Pair returns a value and an error.
func Pair() (int, error) { return 0, nil }

// BadDiscard drops errors on the floor both ways.
func BadDiscard() {
	Flush() // want: discarded error
	Pair()  // want: discarded error
}

// GoodExplicit makes the discard visible.
func GoodExplicit() {
	_ = Flush()
	n, _ := Pair()
	_ = n
}

// GoodDefer leaves the idiomatic deferred cleanup alone.
func GoodDefer(c io.Closer) {
	defer c.Close()
}

// GoodExempt exercises the fmt and in-memory-writer exemptions.
func GoodExempt(w io.Writer) string {
	var sb strings.Builder
	sb.WriteString("hello")
	fmt.Fprintln(w, "table row")
	return sb.String()
}

// AllowedFireAndForget documents why the error is ignorable.
func AllowedFireAndForget() {
	Flush() //gillis:allow errdrop fixture: best-effort flush, failure is re-tried by the caller
}
