// Package gateway is a nodeterm fixture impersonating the serving gateway:
// the loader remaps testdata/src/<path> to <path>, so this file
// type-checks as gillis/internal/gateway. The gateway's replays must be a
// pure function of the arrival trace, the platform seed, and the policy —
// every ambient read below would break bit-for-bit replay.
package gateway

import (
	"math/rand"
	"os"
	"time"
)

// BadAdmit stamps arrivals off the wall clock and jitters admission with
// the global RNG — both banned in a simnet-clocked package.
func BadAdmit() float64 {
	arrival := time.Now()          // want: wall-clock arrival stamp
	jitterMs := rand.Float64()     // want: global RNG draw
	_ = os.Getenv("GATEWAY_QUEUE") // want: environment lookup
	wait := time.Since(arrival)    // want: wall-clock read
	return float64(wait) + jitterMs
}

// GoodAdmit derives everything from the virtual clock and a seeded RNG.
func GoodAdmit(nowVirtual time.Duration, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	deadline := nowVirtual + 500*time.Millisecond
	_ = deadline
	return rng.Float64()
}
