// Package mesh is a nodeterm fixture impersonating the multi-model serving
// mesh: the loader remaps testdata/src/<path> to <path>, so this file
// type-checks as gillis/internal/mesh. Placement and eviction decisions
// must be a pure function of the virtual clock and the catalog state — the
// byte-pinned mesh-report golden and the LRU-vs-no-cache bench ordering
// both die on any ambient read below.
package mesh

import (
	"math/rand"
	"time"
)

// BadEvict stamps a residency's recency off the wall clock and breaks LRU
// ties with the global RNG — both banned in a simnet-clocked package.
func BadEvict() time.Duration {
	lastUsed := time.Now()       // want: wall-clock recency stamp
	tie := rand.Intn(2)          // want: global RNG eviction tie-break
	idle := time.Since(lastUsed) // want: wall-clock idle-time read
	return idle + time.Duration(tie)
}

// GoodEvict derives a residency's idle time from the mesh's virtual now
// and breaks ties deterministically by model ID order.
func GoodEvict(nowVirtual, lastUsed time.Duration, a, b string) string {
	if idle := nowVirtual - lastUsed; idle <= 0 {
		return ""
	}
	if a < b {
		return a
	}
	return b
}
