// Package platform is a nodeterm fixture impersonating a simnet-clocked
// package: the loader remaps testdata/src/<path> to <path>, so this file
// type-checks as gillis/internal/platform.
package platform

import (
	"math/rand"
	"os"
	"time"
)

// Bad reads ambient nondeterministic state in every way nodeterm bans.
func Bad() time.Duration {
	start := time.Now()        // want: wall-clock read
	n := rand.Intn(10)         // want: global RNG draw
	_ = os.Getenv("GILLIS_XX") // want: environment lookup
	_ = n
	return time.Since(start) // want: wall-clock read
}

// Good uses the blessed seeded-RNG pattern and virtual durations only.
func Good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	d := 5 * time.Millisecond
	_ = d
	return rng.Float64()
}

// Allowed shows a justified suppression on the line above the finding.
func Allowed() time.Time {
	//gillis:allow nodeterm fixture demonstrating the suppression syntax
	return time.Now()
}
