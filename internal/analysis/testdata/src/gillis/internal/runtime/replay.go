// Package runtime is a clockflow fixture impersonating the simnet-clocked
// serving runtime: the loader remaps testdata/src/<path> to <path>, so
// this file type-checks as gillis/internal/runtime. Every function below
// that reaches a banned nondeterminism source does so *transitively* —
// through helpers in this package, through the non-clocked stats fixture
// package, through a function value, or through interface dispatch — so
// nodeterm's direct-call check stays silent and only clockflow fires.
package runtime

import (
	"math/rand"
	"time"

	"gillis/internal/stats"
)

// Replay reaches time.Now exactly two call hops and one package boundary
// away: Replay -> stats.Jitter -> stats.wallNanos -> time.Now. This is
// the acceptance-criterion chain.
func Replay() float64 {
	return stats.Jitter() // want: two-hop cross-package chain
}

// replayOnce reaches the global RNG one hop away through a helper in this
// same package.
func replayOnce() time.Duration {
	return sleepBudget() // want: one-hop chain
}

// sleepBudget draws from the unseeded global RNG; nodeterm flags this
// direct use, clockflow flags its callers.
func sleepBudget() time.Duration {
	return time.Duration(rand.Int63n(1e6))
}

// Drawer is satisfied by stats.Source; the call below dispatches through
// the interface, so the edge to (stats.Source).Draw exists only by
// method-set matching.
type Drawer interface {
	Draw() float64
}

// ReplayMixed reaches time.Now through interface dispatch.
func ReplayMixed(d Drawer) float64 {
	return d.Draw() // want: interface-dispatch chain
}

// ReplayFn reaches time.Now through a function value tracked through
// local assignment.
func ReplayFn() float64 {
	f := stats.Jitter // want: function-value chain
	return f()
}

// ReplayClean calls only pure helpers and stays clean.
func ReplayClean(xs []float64) float64 {
	return stats.Mean(xs)
}

// ReplayAllowed demonstrates suppression: the transitive read is
// justified on the line above the call.
func ReplayAllowed() float64 {
	//gillis:allow clockflow fixture demonstrates a justified transitive wall-clock read
	return stats.Jitter()
}

// timedProbe carries a justified direct wall-clock read (nodeterm's
// domain); the allow kills the taint source, so transitive callers stay
// clean — the bench/kernels.go microbenchmark pattern.
func timedProbe() int64 {
	//gillis:allow nodeterm fixture demonstrates an intentional wall-clock probe
	return time.Now().UnixNano()
}

// ReplayProbed calls the sanctioned probe; clockflow must not re-flag a
// source that is justified at the read.
func ReplayProbed() int64 {
	return timedProbe()
}
