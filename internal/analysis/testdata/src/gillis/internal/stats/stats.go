// Package stats is a clockflow fixture impersonating a *non-clocked*
// helper package: nodeterm never fires here, so the banned sources below
// are invisible to the intra-procedural suite. They are only reachable —
// and only a violation — through a call chain that starts in a
// simnet-clocked package (see the sibling runtime fixture), which is
// exactly the blind spot clockflow exists to close.
package stats

import "time"

// Jitter looks innocent from a clocked caller: the wall-clock read is two
// call hops down and one package boundary away.
func Jitter() float64 {
	return float64(wallNanos()) / 1e9
}

// wallNanos is the buried banned source: a direct time.Now in a package
// nodeterm does not police.
func wallNanos() int64 {
	return time.Now().UnixNano()
}

// Source draws samples from the wall clock behind an innocent-looking
// method, so interface dispatch from a clocked package reaches it only
// via method-set matching.
type Source struct{}

// Draw reads the wall clock directly.
func (Source) Draw() float64 {
	return float64(time.Now().UnixNano())
}

// Mean is genuinely pure: clocked callers of this helper stay clean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
