// Package trace is the niltrace fixture: a miniature Span with guarded and
// unguarded methods. The loader remaps it to gillis/internal/trace.
package trace

// Span mimics the real span: nil receivers are the untraced fast path.
type Span struct {
	Name   string
	events []string
}

// Trace is here to prove non-Span receivers are ignored.
type Trace struct{ spans []*Span }

// Good begins with the required nil guard.
func (s *Span) Good(name string) {
	if s == nil {
		return
	}
	s.events = append(s.events, name)
}

// GoodFlipped guards with the operands reversed.
func (s *Span) GoodFlipped() int {
	if nil == s {
		return 0
	}
	return len(s.events)
}

// BadUnguarded touches the receiver without a guard.
func (s *Span) BadUnguarded() int {
	return len(s.events) // want: missing nil guard
}

// BadLateGuard guards, but not as the first statement.
func (s *Span) BadLateGuard() int {
	n := 0
	if s == nil {
		return n
	}
	return len(s.events)
}

// internalHelper is unexported: callers inside the package own nil checks.
func (s *Span) internalHelper() int { return len(s.events) }

// ByValue has a value receiver and cannot be nil.
func (s Span) ByValue() string { return s.Name }

// Len is on *Trace, outside niltrace's contract.
func (t *Trace) Len() int { return len(t.spans) }

// AllowedConstructorish documents why its guard lives elsewhere.
//
//gillis:allow niltrace fixture for a justified exemption
func (s *Span) AllowedConstructorish() *Span { return s }
