// Package workload is a goleak fixture impersonating a simnet-clocked
// package: the loader remaps testdata/src/<path> to <path>, so this file
// type-checks as gillis/internal/workload. It exercises every join shape
// goleak recognizes — WaitGroup, channel, simnet.Promise, deferred joins —
// and the violation shapes: no join at all, a join on only some paths,
// and an opaque spawned function value. It imports the real simnet
// package (the fixture tree has no simnet directory, so the loader falls
// back to the module's), proving fixtures can mix impersonated and real
// packages.
package workload

import (
	"sync"

	"gillis/internal/simnet"
)

// Leak spawns and forgets: no join primitive at all.
func Leak(xs []float64) {
	go func() { // want: no join primitive
		for range xs {
		}
	}()
}

// JoinedWG is the blessed fork-join shape.
func JoinedWG(xs []float64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range xs {
		}
	}()
	wg.Wait()
}

// JoinedChan joins through a completion channel.
func JoinedChan() int {
	done := make(chan int, 1)
	go func() {
		done <- 42
	}()
	return <-done
}

// JoinedRange joins by draining a closed channel.
func JoinedRange(xs []float64) float64 {
	out := make(chan float64, len(xs))
	go func() {
		for _, x := range xs {
			out <- x
		}
		close(out)
	}()
	var s float64
	for v := range out {
		s += v
	}
	return s
}

// JoinedPromise joins through a simnet promise, the simulation's native
// completion primitive.
func JoinedPromise(env *simnet.Env, p *simnet.Proc) int {
	pr := simnet.NewPromise[int](env)
	go func() {
		pr.Resolve(42)
	}()
	v, _ := pr.Wait(p)
	return v
}

// JoinedDeferred joins on every return path via a deferred Wait.
func JoinedDeferred(xs []float64) {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range xs {
		}
	}()
}

// ConditionalJoin waits on only one branch: the goroutine escapes when
// drain is false.
func ConditionalJoin(drain bool) {
	done := make(chan struct{})
	go func() { // want: join is conditional
		close(done)
	}()
	if drain {
		<-done
	}
}

// OpaqueSpawn hands an arbitrary function value to the scheduler; its
// join contract is invisible here.
func OpaqueSpawn(fn func()) {
	go fn() // want: opaque function value
}

// AllowedDetached is a justified detached worker.
func AllowedDetached(stop chan struct{}) {
	//gillis:allow goleak fixture demonstrates a justified process-lifetime worker
	go func() {
		<-stop
	}()
}
