// Package maporder is the maporder fixture: map iterations that build
// ordered output with and without a rescuing sort.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// BadAppend appends into an outer slice in map order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want: append without sort
		out = append(out, k)
	}
	return out
}

// GoodSorted does the same but sorts before returning.
func GoodSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BadPrint streams rows in map order.
func BadPrint(w io.Writer, m map[string]int) {
	for k, v := range m { // want: Fprintf without sort
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadWrite calls Write on a sink in map order.
func BadWrite(w io.Writer, m map[string][]byte) {
	for _, v := range m { // want: Write without sort
		w.Write(v)
	}
}

// GoodLocal rebuilds a per-iteration slice; nothing ordered escapes.
func GoodLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// GoodSlice ranges over a slice, which is already ordered.
func GoodSlice(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// AllowedSummary is order-insensitive in a way the analyzer cannot see.
func AllowedSummary(m map[string]float64) []float64 {
	var sums []float64
	total := 0.0
	for _, v := range m {
		total += v
	}
	//gillis:allow maporder single-element append after an order-insensitive reduction
	for range m {
		sums = append(sums, total)
		break
	}
	return sums
}
