// Package sharedmut is a fixture for the sharedmut analyzer: mutation of
// captured state inside par.For bodies and go-spawned closures, beyond
// floatacc's float-accumulation pattern. It imports the real
// gillis/internal/par package so the par.For detection path is the one
// production kernels exercise.
package sharedmut

import (
	"sync"

	"gillis/internal/par"
)

// MapWrite races on a captured map: map writes have no disjoint-element
// ownership.
func MapWrite(keys []int) map[int]int {
	hist := make(map[int]int)
	par.For(len(keys), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hist[keys[i]]++ // want: captured map write
		}
	})
	return hist
}

// SliceAppend races on the captured slice header.
func SliceAppend(xs []float64) []float64 {
	var out []float64
	par.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out = append(out, xs[i]*2) // want: captured append
		}
	})
	return out
}

// ScalarWrite is last-writer-wins on a captured scalar.
func ScalarWrite(xs []float64) int {
	var last int
	par.For(len(xs), 1, func(lo, hi int) {
		last = hi // want: captured non-indexed assignment
	})
	return last
}

// CounterInc races an increment in a go-spawned closure.
func CounterInc(done chan struct{}) int {
	n := 0
	go func() {
		n++ // want: captured increment
		close(done)
	}()
	<-done
	return n
}

// FieldWrite mutates a captured struct through a field selector.
type acc struct{ total float64 }

func FieldWrite(xs []float64, done chan struct{}) float64 {
	var a acc
	go func() {
		a.total = float64(len(xs)) // want: captured field write
		close(done)
	}()
	<-done
	return a.total
}

// DisjointElems is the sanctioned kernel pattern: each body invocation
// owns the [lo, hi) range of the captured output slice.
func DisjointElems(xs []float64) []float64 {
	out := make([]float64, len(xs))
	par.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2
		}
	})
	return out
}

// FloatCompound is floatacc's finding, not sharedmut's: the float +=
// into a captured scalar must not be double-reported.
func FloatCompound(xs []float64) float64 {
	var sum float64
	par.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // floatacc flags this; sharedmut stays silent
		}
	})
	return sum
}

// LocalState keeps all mutation private to one invocation and stays
// clean.
func LocalState(xs []float64) []float64 {
	out := make([]float64, len(xs))
	par.For(len(xs), 1, func(lo, hi int) {
		scale := 2.0
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * scale
		}
	})
	return out
}

// AllowedMerge is a justified shared write: the WaitGroup-joined spawn
// writes a captured field under a mutex the analyzer cannot see.
func AllowedMerge(xs []float64) float64 {
	var mu sync.Mutex
	var total float64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		//gillis:allow sharedmut fixture demonstrates a justified mutex-guarded write
		total = float64(len(xs))
		mu.Unlock()
	}()
	wg.Wait()
	return total
}
