// Package batching implements the gateway's admission-side batch former: a
// pure, deterministic state machine deciding when a forming batch of
// queries closes and is handed to the serving backend. The four closing
// rules (§"Cross-query batching", DESIGN.md §13):
//
//   - Size: the batch reaches MaxBatch members — closed at admission time.
//   - SLO deadline: waiting one more control tick would push the oldest
//     member past its SLO even if the batch served immediately (requires
//     SLOMs and EstServeMs) — closed on the control tick.
//   - Delay: the oldest member has waited MaxDelay — closed on the control
//     tick.
//   - Drain: the arrival trace is exhausted, so no future query can top the
//     batch up — closed on the control tick.
//
// The former never reads a clock: every decision is a function of the
// virtual times passed in, so replays are bit-exact at any parallelism
// level. The package is simnet-clocked (enforced by the nodeterm analyzer).
package batching

import (
	"fmt"
	"time"
)

// Config parameterizes the former.
type Config struct {
	// MaxBatch is the maximum queries per batch; at least 2 (a gateway
	// with MaxBatch <= 1 never constructs a former).
	MaxBatch int
	// MaxDelay bounds how long the oldest member waits before the batch
	// closes regardless of size. Required.
	MaxDelay time.Duration
	// SLOMs, when positive together with EstServeMs, enables SLO-deadline
	// closing: the batch closes as soon as serving any later would break
	// the oldest member's SLO.
	SLOMs float64
	// EstServeMs estimates the batched serve latency used by the SLO rule.
	EstServeMs float64
	// TickMs is the control-tick period the delay and SLO rules are
	// evaluated on; the SLO rule closes one tick early so the batch is
	// dispatched before the deadline, not discovered past it. Defaults to
	// 100 ms.
	TickMs float64
}

// CloseReason says which rule closed a batch.
type CloseReason int

// Closing rules, in precedence order at a tick (size closes at admission).
const (
	ReasonNone CloseReason = iota
	ReasonSize
	ReasonSLO
	ReasonDelay
	ReasonDrain
)

// String implements fmt.Stringer; the strings appear in LoadReports.
func (r CloseReason) String() string {
	switch r {
	case ReasonSize:
		return "size"
	case ReasonSLO:
		return "slo"
	case ReasonDelay:
		return "delay"
	case ReasonDrain:
		return "drain"
	default:
		return "none"
	}
}

// Member is one query waiting in a forming batch.
type Member struct {
	// ID is the query's index in the arrival trace.
	ID int
	// Arrival is the query's arrival instant on the virtual clock.
	Arrival time.Duration
}

// Former accumulates members until a closing rule fires. Not
// goroutine-safe: the gateway drives it under its own lock.
type Former struct {
	cfg     Config
	members []Member
}

// New validates cfg and returns an empty former.
func New(cfg Config) (*Former, error) {
	if cfg.MaxBatch < 2 {
		return nil, fmt.Errorf("batching: MaxBatch %d, need at least 2", cfg.MaxBatch)
	}
	if cfg.MaxDelay <= 0 {
		return nil, fmt.Errorf("batching: MaxDelay must be positive")
	}
	if cfg.SLOMs > 0 && cfg.EstServeMs < 0 {
		return nil, fmt.Errorf("batching: negative EstServeMs")
	}
	if cfg.TickMs == 0 {
		cfg.TickMs = 100
	}
	if cfg.TickMs < 0 {
		return nil, fmt.Errorf("batching: negative TickMs")
	}
	return &Former{cfg: cfg}, nil
}

// Config returns the validated configuration (with defaults applied).
func (f *Former) Config() Config { return f.cfg }

// Add appends a member and reports whether the batch is now full (the
// size rule — the caller closes it immediately with Take).
func (f *Former) Add(id int, arrival time.Duration) (full bool) {
	f.members = append(f.members, Member{ID: id, Arrival: arrival})
	return len(f.members) >= f.cfg.MaxBatch
}

// Pending returns the number of members currently forming.
func (f *Former) Pending() int { return len(f.members) }

// OldestWaitMs returns how long the oldest member has waited at now, or 0
// when empty.
func (f *Former) OldestWaitMs(now time.Duration) float64 {
	if len(f.members) == 0 {
		return 0
	}
	return float64(now-f.members[0].Arrival) / 1e6
}

// ShouldClose evaluates the tick-driven rules at virtual time now.
// drained reports that the arrival trace is exhausted (no future query can
// join). Size is handled at Add; precedence here is SLO > delay > drain.
func (f *Former) ShouldClose(now time.Duration, drained bool) CloseReason {
	if len(f.members) == 0 {
		return ReasonNone
	}
	wait := f.OldestWaitMs(now)
	if f.cfg.SLOMs > 0 && f.cfg.EstServeMs > 0 {
		// Close while the oldest member can still attain its SLO: if by the
		// *next* tick the wait plus the estimated serve time would exceed
		// the SLO, dispatch now.
		if wait+f.cfg.TickMs+f.cfg.EstServeMs >= f.cfg.SLOMs {
			return ReasonSLO
		}
	}
	if wait >= float64(f.cfg.MaxDelay)/1e6 {
		return ReasonDelay
	}
	if drained {
		return ReasonDrain
	}
	return ReasonNone
}

// Take removes and returns the forming batch (oldest first). The caller
// decides the reason via Add/ShouldClose before calling.
func (f *Former) Take() []Member {
	m := f.members
	f.members = nil
	return m
}
