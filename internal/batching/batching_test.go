package batching

import (
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Former {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidates(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"ok", Config{MaxBatch: 4, MaxDelay: 50 * time.Millisecond}, true},
		{"max-batch-one", Config{MaxBatch: 1, MaxDelay: 50 * time.Millisecond}, false},
		{"no-delay", Config{MaxBatch: 4}, false},
		{"negative-tick", Config{MaxBatch: 4, MaxDelay: time.Millisecond, TickMs: -1}, false},
		{"negative-est", Config{MaxBatch: 4, MaxDelay: time.Millisecond, SLOMs: 100, EstServeMs: -1}, false},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDefaultTick(t *testing.T) {
	f := mustNew(t, Config{MaxBatch: 2, MaxDelay: time.Second})
	if got := f.Config().TickMs; got != 100 {
		t.Fatalf("default TickMs = %v, want 100", got)
	}
}

// TestClosingRules is the table-driven satellite: one case per closing
// rule, plus precedence and no-close cases.
func TestClosingRules(t *testing.T) {
	const ms = time.Millisecond
	base := Config{MaxBatch: 4, MaxDelay: 200 * ms, TickMs: 100}
	slo := base
	slo.SLOMs = 500
	slo.EstServeMs = 150
	cases := []struct {
		name     string
		cfg      Config
		arrivals []time.Duration // one Add per entry
		now      time.Duration
		drained  bool
		wantFull bool // last Add reports full (size rule)
		want     CloseReason
	}{
		{
			name: "size-triggered", cfg: base,
			arrivals: []time.Duration{0, 10 * ms, 20 * ms, 30 * ms},
			now:      30 * ms, wantFull: true, want: ReasonNone, // closed at Add, not at tick
		},
		{
			name: "delay-triggered", cfg: base,
			arrivals: []time.Duration{0, 150 * ms},
			now:      200 * ms, want: ReasonDelay,
		},
		{
			name: "delay-not-yet", cfg: base,
			arrivals: []time.Duration{0, 150 * ms},
			now:      199 * ms, want: ReasonNone,
		},
		{
			// wait 100 + tick 100 + est 150 < SLO 500: still headroom.
			name: "slo-not-yet", cfg: slo,
			arrivals: []time.Duration{0},
			now:      100 * ms, want: ReasonNone,
		},
		{
			// wait 199 + tick 100 + est 150 < 500 and wait < MaxDelay 200:
			// neither rule fires one instant before the delay bound.
			name: "slo-and-delay-not-yet", cfg: slo,
			arrivals: []time.Duration{0},
			now:      199 * ms, want: ReasonNone,
		},
		{
			// wait 250 + tick 100 + est 150 >= 500: dispatch now so the
			// oldest member still attains its SLO.
			name: "slo-deadline-triggered", cfg: slo,
			arrivals: []time.Duration{0},
			now:      250 * ms, want: ReasonSLO,
		},
		{
			name: "drain-on-shutdown", cfg: base,
			arrivals: []time.Duration{0},
			now:      50 * ms, drained: true, want: ReasonDrain,
		},
		{
			name: "empty-never-closes", cfg: base,
			now: time.Second, drained: true, want: ReasonNone,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := mustNew(t, tc.cfg)
			full := false
			for i, a := range tc.arrivals {
				full = f.Add(i, a)
			}
			if full != tc.wantFull {
				t.Fatalf("Add full=%v, want %v", full, tc.wantFull)
			}
			if got := f.ShouldClose(tc.now, tc.drained); got != tc.want {
				t.Fatalf("ShouldClose = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSLOPrecedesDelay pins rule precedence on a tick where both fire.
func TestSLOPrecedesDelay(t *testing.T) {
	const ms = time.Millisecond
	cfg := Config{MaxBatch: 8, MaxDelay: 200 * ms, TickMs: 100, SLOMs: 400, EstServeMs: 150}
	f := mustNew(t, cfg)
	f.Add(0, 0)
	// wait=250: delay (250 >= 200) and SLO (250+100+150 >= 400) both hold.
	if got := f.ShouldClose(250*ms, false); got != ReasonSLO {
		t.Fatalf("ShouldClose = %v, want slo", got)
	}
}

// TestSLOClosesBeforeDeadline pins the tick-early semantics: the rule fires
// on the last tick from which immediate dispatch still attains the SLO.
func TestSLOClosesBeforeDeadline(t *testing.T) {
	const ms = time.Millisecond
	cfg := Config{MaxBatch: 8, MaxDelay: time.Hour, TickMs: 100, SLOMs: 400, EstServeMs: 150}
	f := mustNew(t, cfg)
	f.Add(0, 0)
	if got := f.ShouldClose(100*ms, false); got != ReasonNone {
		t.Fatalf("t=100ms: %v, want none (100+100+150 < 400)", got)
	}
	if got := f.ShouldClose(200*ms, false); got != ReasonSLO {
		t.Fatalf("t=200ms: %v, want slo (200+100+150 >= 400)", got)
	}
	// Closing at t=200 leaves 200ms of SLO headroom >= EstServeMs 150.
	if wait := f.OldestWaitMs(200 * ms); cfg.SLOMs-wait < cfg.EstServeMs {
		t.Fatalf("closing too late: wait %.0f leaves %.0f < estimate %.0f", wait, cfg.SLOMs-wait, cfg.EstServeMs)
	}
}

func TestTakeDrainsMembers(t *testing.T) {
	f := mustNew(t, Config{MaxBatch: 3, MaxDelay: time.Second})
	f.Add(7, 0)
	f.Add(9, time.Millisecond)
	got := f.Take()
	if len(got) != 2 || got[0].ID != 7 || got[1].ID != 9 {
		t.Fatalf("Take = %v", got)
	}
	if f.Pending() != 0 {
		t.Fatalf("Pending after Take = %d", f.Pending())
	}
	if f.ShouldClose(time.Hour, true) != ReasonNone {
		t.Fatal("empty former must not close")
	}
}

func TestReasonStrings(t *testing.T) {
	want := map[CloseReason]string{
		ReasonNone: "none", ReasonSize: "size", ReasonSLO: "slo",
		ReasonDelay: "delay", ReasonDrain: "drain",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}
