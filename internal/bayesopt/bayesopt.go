// Package bayesopt implements Bayesian optimization with a Gaussian-process
// surrogate and the expected-improvement acquisition function, following
// the Cherrypick design the paper uses as its black-box baseline (§V-C):
// the objective is modeled as a GP with an RBF kernel, iteratively refined
// by sampling the point with maximal expected improvement from a random
// candidate pool.
package bayesopt

import (
	"fmt"
	"math"
	"math/rand"
)

// Objective evaluates one configuration point (lower is better).
type Objective func(x []float64) float64

// Config tunes the optimizer.
type Config struct {
	// Iters is the total number of objective evaluations.
	Iters int
	// InitRandom is how many initial points are sampled uniformly before
	// the GP takes over.
	InitRandom int
	// Candidates is the size of the random candidate pool scored by EI per
	// iteration.
	Candidates int
	// LengthScale is the RBF kernel length scale in normalized units.
	LengthScale float64
	// Noise is the observation noise standard deviation (normalized y).
	Noise float64
}

func (c Config) withDefaults(dims int) Config {
	if c.Iters <= 0 {
		c.Iters = 60
	}
	if c.InitRandom <= 0 {
		c.InitRandom = 8
	}
	if c.Candidates <= 0 {
		c.Candidates = 400
	}
	if c.LengthScale <= 0 {
		c.LengthScale = 0.25 * math.Sqrt(float64(dims))
	}
	if c.Noise <= 0 {
		c.Noise = 1e-3
	}
	return c
}

// Result is the optimization outcome.
type Result struct {
	X     []float64
	Value float64
	Evals int
	// History records every evaluated (point, value) pair in order.
	HistoryX [][]float64
	HistoryY []float64
}

// Minimize searches the unit hypercube [0,1]^dims for the objective's
// minimum.
func Minimize(obj Objective, dims int, cfg Config, rng *rand.Rand) (Result, error) {
	if dims <= 0 {
		return Result{}, fmt.Errorf("bayesopt: dims must be positive")
	}
	if obj == nil {
		return Result{}, fmt.Errorf("bayesopt: nil objective")
	}
	cfg = cfg.withDefaults(dims)

	var res Result
	res.Value = math.Inf(1)
	evaluate := func(x []float64) {
		y := obj(x)
		res.HistoryX = append(res.HistoryX, x)
		res.HistoryY = append(res.HistoryY, y)
		res.Evals++
		if y < res.Value {
			res.Value = y
			res.X = append([]float64(nil), x...)
		}
	}
	randPoint := func() []float64 {
		x := make([]float64, dims)
		for i := range x {
			x[i] = rng.Float64()
		}
		return x
	}

	for i := 0; i < cfg.InitRandom && res.Evals < cfg.Iters; i++ {
		evaluate(randPoint())
	}
	for res.Evals < cfg.Iters {
		gp, err := fitGP(res.HistoryX, res.HistoryY, cfg)
		if err != nil {
			// Degenerate surrogate (e.g. constant objective): fall back to
			// random search for this step.
			evaluate(randPoint())
			continue
		}
		best := res.normalizedBest(gp)
		var cand []float64
		bestEI := -1.0
		for c := 0; c < cfg.Candidates; c++ {
			x := randPoint()
			mu, sigma := gp.predict(x)
			ei := expectedImprovement(best, mu, sigma)
			if ei > bestEI {
				bestEI = ei
				cand = x
			}
		}
		evaluate(cand)
	}
	return res, nil
}

func (r *Result) normalizedBest(gp *gp) float64 {
	return (r.Value - gp.yMean) / gp.yStd
}

// gp is a fitted Gaussian-process surrogate over normalized targets.
type gp struct {
	x           [][]float64
	alpha       []float64
	chol        [][]float64
	ls          float64
	yMean, yStd float64
	noise       float64
}

func fitGP(xs [][]float64, ys []float64, cfg Config) (*gp, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("bayesopt: no observations")
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	var variance float64
	for _, y := range ys {
		variance += (y - mean) * (y - mean)
	}
	variance /= float64(n)
	std := math.Sqrt(variance)
	if std < 1e-12 {
		return nil, fmt.Errorf("bayesopt: degenerate observations")
	}
	g := &gp{x: xs, ls: cfg.LengthScale, yMean: mean, yStd: std, noise: cfg.Noise}

	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = rbf(xs[i], xs[j], g.ls)
		}
		k[i][i] += g.noise * g.noise
	}
	chol, err := cholesky(k)
	if err != nil {
		return nil, err
	}
	g.chol = chol
	yn := make([]float64, n)
	for i, y := range ys {
		yn[i] = (y - mean) / std
	}
	g.alpha = cholSolve(chol, yn)
	return g, nil
}

// predict returns the GP posterior mean and standard deviation at x
// (normalized target units).
func (g *gp) predict(x []float64) (mu, sigma float64) {
	n := len(g.x)
	ks := make([]float64, n)
	for i := range ks {
		ks[i] = rbf(x, g.x[i], g.ls)
	}
	for i := range ks {
		mu += ks[i] * g.alpha[i]
	}
	v := forwardSolve(g.chol, ks)
	var kss float64 = 1 // rbf(x,x)
	var vv float64
	for _, t := range v {
		vv += t * t
	}
	s2 := kss - vv
	if s2 < 1e-12 {
		s2 = 1e-12
	}
	return mu, math.Sqrt(s2)
}

// expectedImprovement for minimization with incumbent best (normalized).
func expectedImprovement(best, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (best - mu) / sigma
	return (best-mu)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

func stdNormPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }

func rbf(a, b []float64, ls float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * ls * ls))
}

// cholesky computes the lower-triangular factor of a symmetric
// positive-definite matrix.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("bayesopt: matrix not positive definite at %d", i)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L v = b.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(l)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// cholSolve solves (L Lᵀ) x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	n := len(l)
	v := forwardSolve(l, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := v[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}
