package bench

import (
	"fmt"
	"strings"

	"gillis/internal/core"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

// AblationRow reports one (model, variant) latency measurement.
type AblationRow struct {
	Model   string
	Variant string
	MeanMs  float64
	Groups  int
}

// AblationResult quantifies the design choices DESIGN.md calls out, beyond
// the paper's figures: coarse-grained layer grouping (§III-C) and master
// participation (§III-B) are each switched off in the latency-optimal
// planner to measure their contribution.
type AblationResult struct {
	Rows []AblationRow
}

// Ablations runs the study on Lambda.
func Ablations(ctx *Context) (*AblationResult, error) {
	names := []string{"vgg16", "wrn34-5"}
	if ctx.Quick {
		names = []string{"vgg16"}
	}
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	cfg := m.Platform()
	variants := []struct {
		name string
		conf core.Config
	}{
		{"full gillis", core.Config{}},
		{"no grouping", core.Config{DisableGrouping: true}},
		{"no master part.", core.Config{DisableMaster: true}},
		{"fixed fan-out 8", core.Config{PartCounts: []int{8}}},
	}
	res := &AblationResult{}
	for mi, name := range names {
		units, err := ctx.Units(name)
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			plan, _, err := core.LatencyOptimal(m, units, v.conf)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation %s/%s: %w", name, v.name, err)
			}
			meas := measurePlan(cfg, ctx.Seed+int64(mi*10+vi), units, plan, ctx.queries())
			if meas.Err != "" {
				return nil, fmt.Errorf("bench: ablation %s/%s: %s", name, v.name, meas.Err)
			}
			res.Rows = append(res.Rows, AblationRow{
				Model: name, Variant: v.name, MeanMs: meas.MeanMs, Groups: len(plan.Groups),
			})
		}
	}
	return res, nil
}

// Table renders the study as text.
func (r *AblationResult) Table() string {
	var sb strings.Builder
	sb.WriteString("Ablations. Latency-optimal serving with design choices disabled (Lambda, ms)\n")
	sb.WriteString("  model  |         variant | groups | latency\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8s | %15s | %6d | %7.0f\n", row.Model, row.Variant, row.Groups, row.MeanMs)
	}
	return sb.String()
}

// BurstRow reports one (concurrency, prewarm) configuration.
type BurstRow struct {
	Concurrency int
	Prewarmed   bool
	MeanMs      float64
	P99Ms       float64
	ColdStarts  int
}

// BurstResult is an extension study: serverless elasticity under query
// bursts. N clients fire simultaneously at a Gillis deployment; with warm
// pools sized for the burst the tail stays flat, while cold pools pay
// instance start-up on the tail — the motivation for Gillis's warm-up
// pings (§III-A).
type BurstResult struct {
	Model string
	Rows  []BurstRow
}

// Burst runs the study for ResNet-50 on Lambda.
func Burst(ctx *Context) (*BurstResult, error) {
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	units, err := ctx.Units("resnet50")
	if err != nil {
		return nil, err
	}
	plan, _, err := core.LatencyOptimal(m, units, core.Config{})
	if err != nil {
		return nil, err
	}
	concurrencies := []int{1, 4, 16}
	if ctx.Quick {
		concurrencies = []int{1, 8}
	}
	res := &BurstResult{Model: "resnet50"}
	for _, n := range concurrencies {
		for _, warm := range []bool{false, true} {
			row, err := measureBurst(m.Platform(), ctx.Seed+int64(n), units, plan, n, warm)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// measureBurst fires n concurrent queries at one deployment.
func measureBurst(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan, n int, warm bool) (BurstRow, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
	if err != nil {
		return BurstRow{}, err
	}
	if warm {
		// Warm pools sized for the whole burst.
		for i := 0; i < n; i++ {
			if err := d.Prewarm(); err != nil {
				return BurstRow{}, err
			}
		}
	}
	lats := make([]float64, 0, n)
	cold := 0
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		env.Go(fmt.Sprintf("client%d", i), func(proc *simnet.Proc) {
			r, err := d.Serve(proc, nil)
			if err != nil {
				errs[i] = err
				return
			}
			lats = append(lats, r.LatencyMs)
			if r.ColdStart {
				cold++
			}
		})
	}
	if err := env.Run(); err != nil {
		return BurstRow{}, err
	}
	for _, err := range errs {
		if err != nil {
			return BurstRow{}, err
		}
	}
	return BurstRow{
		Concurrency: n,
		Prewarmed:   warm,
		MeanMs:      stats.Mean(lats),
		P99Ms:       stats.Percentile(lats, 99),
		ColdStarts:  cold,
	}, nil
}

// Table renders the study as text.
func (r *BurstResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Burst study. %s under concurrent queries (Lambda)\n", r.Model)
	sb.WriteString("concurrency | prewarmed | mean ms | p99 ms | cold starts\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%11d | %9v | %7.0f | %6.0f | %d\n",
			row.Concurrency, row.Prewarmed, row.MeanMs, row.P99Ms, row.ColdStarts)
	}
	return sb.String()
}
