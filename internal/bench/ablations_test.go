package bench

import "testing"

func TestAblationsShowDesignValue(t *testing.T) {
	res, err := Ablations(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]AblationRow{}
	for _, r := range res.Rows {
		if r.Model == "vgg16" {
			byVariant[r.Variant] = r
		}
	}
	full := byVariant["full gillis"]
	if full.MeanMs <= 0 {
		t.Fatal("missing full-gillis row")
	}
	// Disabling layer grouping must not help (it adds per-group round
	// trips); disabling master participation must not help either.
	if ng := byVariant["no grouping"]; ng.MeanMs < full.MeanMs*0.99 {
		t.Errorf("no-grouping (%.0f ms) should not beat full gillis (%.0f ms)", ng.MeanMs, full.MeanMs)
	}
	if nm := byVariant["no master part."]; nm.MeanMs < full.MeanMs*0.99 {
		t.Errorf("no-master (%.0f ms) should not beat full gillis (%.0f ms)", nm.MeanMs, full.MeanMs)
	}
	// The ungrouped plan has as many groups as units.
	if ng := byVariant["no grouping"]; ng.Groups <= full.Groups {
		t.Errorf("no-grouping should have more groups (%d vs %d)", ng.Groups, full.Groups)
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

func TestBurstColdVsWarm(t *testing.T) {
	res, err := Burst(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		n    int
		warm bool
	}
	rows := map[key]BurstRow{}
	for _, r := range res.Rows {
		rows[key{r.Concurrency, r.Prewarmed}] = r
	}
	for _, n := range []int{1, 8} {
		cold := rows[key{n, false}]
		warm := rows[key{n, true}]
		if cold.ColdStarts == 0 {
			t.Errorf("n=%d: cold run should pay cold starts", n)
		}
		if warm.ColdStarts != 0 {
			t.Errorf("n=%d: prewarmed run should have no cold starts, got %d", n, warm.ColdStarts)
		}
		if warm.MeanMs >= cold.MeanMs {
			t.Errorf("n=%d: prewarmed mean (%.0f) should beat cold (%.0f)", n, warm.MeanMs, cold.MeanMs)
		}
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

func TestDynamicLoadWarmupPolicies(t *testing.T) {
	res, err := DynamicLoad(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 policies, got %d", len(res.Rows))
	}
	none, burstAware := res.Rows[0], res.Rows[2]
	if none.ColdStarts == 0 {
		t.Error("no-warm-up policy should pay cold starts")
	}
	if burstAware.ColdStarts >= none.ColdStarts {
		t.Errorf("burst-aware warm pool should cut cold starts: %d vs %d",
			burstAware.ColdStarts, none.ColdStarts)
	}
	if burstAware.P99Ms >= none.P99Ms {
		t.Errorf("burst-aware p99 (%.0f) should beat no-warm-up (%.0f)", burstAware.P99Ms, none.P99Ms)
	}
}
