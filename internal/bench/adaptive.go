package bench

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"time"

	"gillis/internal/adapt"
	"gillis/internal/core"
	"gillis/internal/gateway"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
	"gillis/internal/workload"
)

// The Adaptive figure studies closed-loop re-planning across two live
// regime shifts no single static plan survives: the platform serves
// healthily, then degrades (evictions, stragglers, crashes) through the
// middle of the replay, recovers, and finally takes a traffic surge. The
// latency-optimal plan rides out the surge on its headroom but its wide
// fan-out faults constantly while degraded; the conservative low-fan-out
// plan shrugs off the fault regime with retries, hedging, and fallback,
// but its thinner latency headroom queues past the SLO under the surge.
// Each static deployment is replayed unchanged, then the adapt controller
// replays the same trace hot-swapping between them. The headline the
// baseline pins: the adaptive controller attains strictly more SLO than
// the best static plan at bounded cost inflation, and with adaptation
// disabled the harness reproduces the static baseline bit-exactly.

// adaptModel is the served model.
const adaptModel = "resnet50"

// adaptPlatform is the serving platform profile.
const adaptPlatform = "lambda"

// AdaptRow is one strategy's replay of the shared fault-schedule trace.
type AdaptRow struct {
	// Strategy is "static-<candidate>" or "adaptive".
	Strategy string `json:"strategy"`
	// Report is the gateway's deterministic load report.
	Report *gateway.LoadReport `json:"report"`
	// Digest fingerprints every outcome of the replay bit-for-bit.
	Digest string `json:"digest"`
	// CostInflation is this strategy's cost-per-1k over static-latency's.
	CostInflation float64 `json:"cost_inflation"`
}

// AdaptHeadline is the pinned comparison: adaptive versus the best static
// plan by SLO attainment.
type AdaptHeadline struct {
	AdaptiveSLOPct      float64 `json:"adaptive_slo_pct"`
	BestStatic          string  `json:"best_static"`
	BestStaticSLOPct    float64 `json:"best_static_slo_pct"`
	AdaptiveCostPer1K   float64 `json:"adaptive_cost_per_1k"`
	BestStaticCostPer1K float64 `json:"best_static_cost_per_1k"`
	// CostRatio is adaptive cost over best-static cost (the ≤1.5× bound).
	CostRatio float64 `json:"cost_ratio"`
}

// AdaptReport is the full scenario: per-strategy rows plus the adaptive
// controller's decision log and the baseline-equivalence check.
type AdaptReport struct {
	Model    string  `json:"model"`
	Platform string  `json:"platform"`
	SLOMs    float64 `json:"slo_ms"`
	// DegradeAtMs and RecoverAtMs are the fault-schedule transition times;
	// SurgeAtMs is when the arrival rate steps up from BaseRate to
	// SurgeRate.
	DegradeAtMs float64    `json:"degrade_at_ms"`
	RecoverAtMs float64    `json:"recover_at_ms"`
	SurgeAtMs   float64    `json:"surge_at_ms"`
	BaseRate    float64    `json:"base_rate_qps"`
	SurgeRate   float64    `json:"surge_rate_qps"`
	Rows        []AdaptRow `json:"rows"`
	// BaselineBitExact records that the switcher harness with a nil
	// controller reproduced the plain single-deployment replay exactly
	// (same report JSON and outcome digest).
	BaselineBitExact bool `json:"baseline_bit_exact"`
	// DecisionLog is the adaptive controller's full decision sequence.
	DecisionLog string        `json:"decision_log"`
	Headline    AdaptHeadline `json:"headline"`
}

// adaptCandidate pairs a named plan with its deploy options.
type adaptCandidate struct {
	name      string
	plan      *partition.Plan
	resilient bool
	opts      []runtime.DeployOption
}

// adaptFaults is the degraded-regime fault profile. Evictions dominate:
// they are detected at dispatch, so a resilient plan recovers them with a
// cheap backoff-retry that still fits the SLO, while plain plans fault.
// Crashes (detected only after the work is done) and stragglers add an
// expensive tail that caps even the resilient plan's attainment.
func adaptFaults() platform.FaultProfile {
	return platform.FaultProfile{
		FailureProb:     0.04,
		StragglerProb:   0.08,
		StragglerFactor: 4,
		EvictionProb:    0.12,
	}
}

// adaptOutcomeDigest fingerprints a replay's outcomes. Function-name
// prefixes are per-platform deploy-sequence numbers, so error strings are
// replay-stable and safe to hash.
func adaptOutcomeDigest(outs []gateway.Outcome) string {
	h := fnv.New64a()
	for _, o := range outs {
		fmt.Fprintf(h, "%d|%.6f|%.6f|%.6f|%.6f|%d|%v|%v|%v|%q|%q\n",
			o.ID, o.ArrivalMs, o.QueueMs, o.LatencyMs, o.TotalMs,
			o.BilledMs, o.ColdStart, o.Shed, o.SLOOK, o.Err, o.FaultKind)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// calibrateLatencyDist measures the warm serving-latency distribution of a
// plan on a fresh platform: mean and 95th percentile over n warm queries.
// The scenario's SLO derives from the p95 so that healthy-phase attainment
// is structurally high and degradation, not baseline variance, drives
// violations.
func calibrateLatencyDist(cfg platform.Config, seed int64, units []*partition.Unit,
	plan *partition.Plan, n int) (meanMs, p95Ms float64, err error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	var lats []float64
	var mErr error
	env.Go("calibrate", func(proc *simnet.Proc) {
		d, derr := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
		if derr != nil {
			mErr = derr
			return
		}
		if derr := d.Prewarm(); derr != nil {
			mErr = derr
			return
		}
		if _, derr := d.Serve(proc, nil); derr != nil {
			mErr = derr
			return
		}
		for i := 0; i < n; i++ {
			before := proc.Now()
			if _, derr := d.Serve(proc, nil); derr != nil {
				mErr = derr
				return
			}
			lats = append(lats, float64(proc.Now()-before)/1e6)
		}
	})
	if rerr := env.Run(); rerr != nil {
		return 0, 0, rerr
	}
	if mErr != nil {
		return 0, 0, mErr
	}
	return stats.Mean(lats), stats.Percentile(lats, 95), nil
}

// adaptReplayResult is one replay's full observable output.
type adaptReplayResult struct {
	rep  *gateway.LoadReport
	outs []gateway.Outcome
	ctl  *adapt.Controller
}

// adaptReplay runs one replay of the shared trace on a fresh platform. With
// ctlCfg nil the switcher is pinned to initialActive with no controller —
// the static baselines. With useSwitcher false only the initial candidate
// is deployed at all: the plain-deployment control for the bit-exactness
// check.
func adaptReplay(ctx *Context, cfg platform.Config, seed int64, units []*partition.Unit,
	cands []adaptCandidate, initialActive int, arrivals []time.Duration,
	sloMs float64, maxInFlight int, useSwitcher bool, ctlCfg *adapt.Config) (*adaptReplayResult, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	deployOrder := cands
	if !useSwitcher {
		deployOrder = cands[initialActive : initialActive+1]
	}
	deps := make([]*runtime.Deployment, 0, len(deployOrder))
	for _, cand := range deployOrder {
		d, err := runtime.Deploy(p, units, cand.plan, runtime.ShapeOnly, cand.opts...)
		if err != nil {
			return nil, fmt.Errorf("bench: deploying %s: %w", cand.name, err)
		}
		deps = append(deps, d)
	}
	// Only the initially-active plan is prewarmed — exactly what the plain
	// control replay does, so the bit-exactness comparison sees identical
	// platform activity. Plans switched to later warm up on demand.
	warmIdx := 0
	if useSwitcher {
		warmIdx = initialActive
	}
	for i := 0; i < maxInFlight; i++ {
		if err := deps[warmIdx].Prewarm(); err != nil {
			return nil, err
		}
	}
	sw, err := runtime.NewSwitcher(deps...)
	if err != nil {
		return nil, err
	}
	if useSwitcher && initialActive != 0 {
		if err := sw.Switch(initialActive); err != nil {
			return nil, err
		}
	}
	var ctl *adapt.Controller
	var gwCtl gateway.Controller
	if ctlCfg != nil {
		pm, err := ctx.Model(adaptPlatform)
		if err != nil {
			return nil, err
		}
		acands := make([]adapt.Candidate, len(cands))
		for i, cand := range cands {
			acands[i] = adapt.Candidate{Name: cand.name, Index: i, Plan: cand.plan, Resilient: cand.resilient}
		}
		ctl, err = adapt.New(pm, units, sw, acands, *ctlCfg)
		if err != nil {
			return nil, err
		}
		gwCtl = ctl
	}
	rep, outs, err := gateway.Run(sw, arrivals, gateway.Config{
		MaxInFlight: maxInFlight,
		QueueCap:    2 * maxInFlight,
		SLOMs:       sloMs,
		Window:      16,
		Controller:  gwCtl,
		// Every strategy gets the same maxInFlight-deep warm pool. Statics
		// are fully warmed before the replay, so the policy only ever acts
		// after a controller switch — re-warming the newly active plan.
		Policy: gateway.FixedPool{Sets: maxInFlight},
	})
	if err != nil {
		return nil, err
	}
	return &adaptReplayResult{rep: rep, outs: outs, ctl: ctl}, nil
}

// AdaptScenario runs the adaptive-serving figure. Quick mode shortens the
// horizon; the three-phase structure (healthy → degraded → recovered) is
// preserved.
func AdaptScenario(ctx *Context) (*AdaptReport, error) {
	horizon := 90 * time.Second
	if ctx.Quick {
		horizon = 36 * time.Second
	}
	pm, err := ctx.Model(adaptPlatform)
	if err != nil {
		return nil, err
	}
	units, err := ctx.Units(adaptModel)
	if err != nil {
		return nil, err
	}
	latPlan, _, err := core.LatencyOptimal(pm, units, core.Config{})
	if err != nil {
		return nil, err
	}
	costPlan, _, err := core.LatencyOptimal(pm, units, core.Config{PartCounts: []int{2}})
	if err != nil {
		return nil, err
	}
	// The conservative candidate reuses the low-fan-out plan: fewer worker
	// invocations per query means fewer fault draws, and the full
	// resilience budget (retries, hedged backups, master fallback) recovers
	// the rest. Its weakness is the mirror image: the smallest latency
	// headroom under the SLO, so it queues past it first when load surges.
	cands := []adaptCandidate{
		{name: "latency", plan: latPlan},
		{name: "cost", plan: costPlan},
		{name: "conservative", plan: costPlan, resilient: true, opts: []runtime.DeployOption{
			runtime.WithRetries(3, 10), runtime.WithHedging(70), runtime.WithMasterFallback(),
		}},
	}

	cfg := pm.Platform()
	cfg.WarmIdleMs = 0 // instances stay warm; plan switches pay cold starts once
	cfg.PrewarmMs = cfg.ColdStartMs
	seed := ctx.Seed

	meanMs, p95Ms, err := calibrateLatencyDist(cfg, seed, units, latPlan, 40)
	if err != nil {
		return nil, fmt.Errorf("bench: adapt calibration: %w", err)
	}
	// The SLO leaves the latency plan surge headroom and admits the
	// conservative plan's cheap (eviction-retry) recoveries, while the
	// low-fan-out plans serve under it with little queueing slack.
	sloMs := round3(1.45 * p95Ms)

	horizonMs := float64(horizon / time.Millisecond)
	degradeAt := round3(horizonMs / 3)
	recoverAt := round3(0.6 * horizonMs)
	surgeAt := round3(0.8 * horizonMs)
	cfg.FaultSchedule = []platform.FaultTransition{
		{AtMs: degradeAt, Profile: adaptFaults()},
		{AtMs: recoverAt, Profile: platform.FaultProfile{}},
	}

	const baseRate, surgeRate = 2.5, 8.0
	arrivals, err := workload.Poisson(rand.New(rand.NewSource(seed+17)), baseRate,
		time.Duration(surgeAt)*time.Millisecond)
	if err != nil {
		return nil, err
	}
	surgeArr, err := workload.Poisson(rand.New(rand.NewSource(seed+29)), surgeRate,
		horizon-time.Duration(surgeAt)*time.Millisecond)
	if err != nil {
		return nil, err
	}
	for _, a := range surgeArr {
		arrivals = append(arrivals, a+time.Duration(surgeAt)*time.Millisecond)
	}
	maxInFlight := int(math.Ceil(baseRate*meanMs/1000)) + 2

	report := &AdaptReport{
		Model:       adaptModel,
		Platform:    adaptPlatform,
		SLOMs:       sloMs,
		DegradeAtMs: degradeAt,
		RecoverAtMs: recoverAt,
		SurgeAtMs:   surgeAt,
		BaseRate:    baseRate,
		SurgeRate:   surgeRate,
	}

	// Static baselines: each candidate pinned, no controller.
	var latPer1K float64
	for i, cand := range cands {
		res, err := adaptReplay(ctx, cfg, seed, units, cands, i, arrivals, sloMs, maxInFlight, true, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: static %s replay: %w", cand.name, err)
		}
		row := AdaptRow{
			Strategy: "static-" + cand.name,
			Report:   res.rep,
			Digest:   adaptOutcomeDigest(res.outs),
		}
		if i == 0 {
			latPer1K = res.rep.CostPer1K
			// The bit-exactness control: the same trace through a plain
			// single deployment, no switcher co-tenants, no controller.
			plain, err := adaptReplay(ctx, cfg, seed, units, cands, 0, arrivals, sloMs, maxInFlight, false, nil)
			if err != nil {
				return nil, err
			}
			plainJSON, err := json.Marshal(plain.rep)
			if err != nil {
				return nil, err
			}
			swJSON, err := json.Marshal(res.rep)
			if err != nil {
				return nil, err
			}
			report.BaselineBitExact = string(plainJSON) == string(swJSON) &&
				adaptOutcomeDigest(plain.outs) == row.Digest
		}
		if latPer1K > 0 {
			row.CostInflation = round3(res.rep.CostPer1K / latPer1K)
		}
		report.Rows = append(report.Rows, row)
	}

	// The adaptive replay: same trace, controller live, starting on the
	// latency plan.
	ctlCfg := &adapt.Config{
		SLOMs:     sloMs,
		MinWindow: 8,
		// The surge phase legitimately drops windowed attainment; brownout
		// must stay reserved for genuinely unservable regimes.
		BrownoutEnterPct: 30,
		// Dwell constants are in controller ticks, and the gateway ticks the
		// controller from its 100 ms control loop: 15 ticks of cooldown = 1.5 s
		// between actions, a 3 s fault latch, and a 5 s healthy dwell before
		// any cost-down. Shorter dwells flap at this cadence.
		CooldownTicks: 15,
		FaultHold:     30,
		FallbackHold:  50,
		Mode:          runtime.ShapeOnly,
		// The scenario's degradation is candidate-shaped by construction;
		// replanning mid-replay is exercised by the adapt package's tests.
		DisableReplan: true,
	}
	res, err := adaptReplay(ctx, cfg, seed, units, cands, 0, arrivals, sloMs, maxInFlight, true, ctlCfg)
	if err != nil {
		return nil, fmt.Errorf("bench: adaptive replay: %w", err)
	}
	row := AdaptRow{
		Strategy: "adaptive",
		Report:   res.rep,
		Digest:   adaptOutcomeDigest(res.outs),
	}
	if latPer1K > 0 {
		row.CostInflation = round3(res.rep.CostPer1K / latPer1K)
	}
	report.Rows = append(report.Rows, row)
	report.DecisionLog = res.ctl.DecisionLog()

	// Headline: adaptive vs the best static plan by SLO attainment.
	best := 0
	for i := 1; i < len(report.Rows)-1; i++ {
		if report.Rows[i].Report.SLOPct > report.Rows[best].Report.SLOPct {
			best = i
		}
	}
	bestRow, adRow := report.Rows[best], report.Rows[len(report.Rows)-1]
	report.Headline = AdaptHeadline{
		AdaptiveSLOPct:      adRow.Report.SLOPct,
		BestStatic:          bestRow.Strategy,
		BestStaticSLOPct:    bestRow.Report.SLOPct,
		AdaptiveCostPer1K:   adRow.Report.CostPer1K,
		BestStaticCostPer1K: bestRow.Report.CostPer1K,
	}
	if bestRow.Report.CostPer1K > 0 {
		report.Headline.CostRatio = round3(adRow.Report.CostPer1K / bestRow.Report.CostPer1K)
	}
	return report, nil
}

// Table renders the scenario in the figure runners' tabular style.
func (r *AdaptReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Adaptive serving: %s on %s, SLO %.0f ms, degraded %.0f–%.0f ms, surge ×%.1f from %.0f ms\n",
		r.Model, r.Platform, r.SLOMs, r.DegradeAtMs, r.RecoverAtMs, r.SurgeRate/r.BaseRate, r.SurgeAtMs)
	fmt.Fprintf(&sb, "%-20s │ %6s %8s %7s %7s %6s %5s │ %9s %6s %8s %9s\n",
		"strategy", "slo%", "goodput", "p50", "p99", "fault", "shed", "cost/1k", "infl", "switches", "brownout")
	for _, row := range r.Rows {
		rep := row.Report
		fmt.Fprintf(&sb, "%-20s │ %6.1f %8.2f %7.0f %7.0f %6d %5d │ %9.0f %6.2f %8d %9.0f\n",
			row.Strategy, rep.SLOPct, rep.GoodputQPS, rep.P50Ms, rep.P99Ms, rep.Faulted, rep.Shed,
			rep.CostPer1K, row.CostInflation, rep.PlanSwitches, rep.BrownoutMs)
	}
	fmt.Fprintf(&sb, "headline: adaptive %.1f%% vs best static (%s) %.1f%% at %.2fx its cost; baseline bit-exact: %v",
		r.Headline.AdaptiveSLOPct, r.Headline.BestStatic, r.Headline.BestStaticSLOPct,
		r.Headline.CostRatio, r.BaselineBitExact)
	return sb.String()
}

// JSON renders the report as the BENCH_adapt.json baseline format.
func (r *AdaptReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
