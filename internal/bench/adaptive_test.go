package bench

import (
	"strings"
	"testing"
)

// TestAdaptScenarioQuick pins the headline in quick mode: under a
// mid-replay fault-regime shift the adaptive controller attains strictly
// more SLO than the best static plan at bounded cost inflation, and the
// switcher harness with adaptation disabled reproduces the plain static
// replay bit-exactly.
func TestAdaptScenarioQuick(t *testing.T) {
	ctx := NewContext(42)
	ctx.Quick = true
	rep, err := AdaptScenario(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("want 3 static rows + 1 adaptive, got %d", len(rep.Rows))
	}
	if !rep.BaselineBitExact {
		t.Error("switcher harness with nil controller must reproduce the plain replay bit-exactly")
	}
	h := rep.Headline
	if h.AdaptiveSLOPct <= h.BestStaticSLOPct {
		t.Errorf("adaptive SLO %.1f%% must strictly beat best static (%s) %.1f%%\n%s",
			h.AdaptiveSLOPct, h.BestStatic, h.BestStaticSLOPct, rep.Table())
	}
	if h.CostRatio > 1.5 {
		t.Errorf("adaptive cost ratio %.2fx exceeds the 1.5x bound over %s\n%s",
			h.CostRatio, h.BestStatic, rep.Table())
	}
	if rep.DecisionLog == "" || !strings.Contains(rep.DecisionLog, "switch:") {
		t.Errorf("adaptive replay recorded no plan switch:\n%s", rep.DecisionLog)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatal(err)
	}
}
