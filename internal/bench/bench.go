// Package bench reproduces every data figure of the Gillis paper's
// evaluation (§V): one runner per figure, each printing the same rows or
// series the paper reports. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured outcomes.
package bench

import (
	"fmt"
	"sync"

	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

// Context caches fitted performance models and linearized units across
// experiment runners.
type Context struct {
	// Seed drives every stochastic component.
	Seed int64
	// Queries per measurement (the paper uses 100 for latency figures).
	Queries int
	// Quick trims sweeps and training budgets for use under testing.B.
	Quick bool
	// FaultRates overrides the chaos experiment's fault-rate sweep
	// (gillis-bench -faults); empty means the default sweep.
	FaultRates []float64

	mu      sync.Mutex
	perfmdl map[string]*perf.Model
	units   map[string][]*partition.Unit
}

// NewContext creates a benchmark context with the paper's defaults.
func NewContext(seed int64) *Context {
	return &Context{
		Seed:    seed,
		Queries: 100,
		perfmdl: make(map[string]*perf.Model),
		units:   make(map[string][]*partition.Unit),
	}
}

// Model returns (building on first use) the fitted performance model for a
// platform ("lambda", "gcf", "knix").
func (c *Context) Model(platformName string) (*perf.Model, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.perfmdl[platformName]; ok {
		return m, nil
	}
	cfg, err := platform.ByName(platformName)
	if err != nil {
		return nil, err
	}
	m, err := perf.Build(cfg, c.Seed, 2, 300)
	if err != nil {
		return nil, err
	}
	c.perfmdl[platformName] = m
	return m, nil
}

// Units returns (linearizing on first use) a zoo model's unit chain.
func (c *Context) Units(model string) ([]*partition.Unit, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if u, ok := c.units[model]; ok {
		return u, nil
	}
	g, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	u, err := partition.Linearize(g)
	if err != nil {
		return nil, err
	}
	c.units[model] = u
	return u, nil
}

// queries returns the per-measurement query count, trimmed in Quick mode.
func (c *Context) queries() int {
	n := c.Queries
	if n <= 0 {
		n = 100
	}
	if c.Quick && n > 20 {
		n = 20
	}
	return n
}

// Measurement summarizes one measured deployment.
type Measurement struct {
	MeanMs   float64
	P99Ms    float64
	StdMs    float64
	MeanCost float64 // mean billed ms per query
	OOM      bool
	Err      string
}

// measurePlan deploys a plan on a fresh platform instance and serves warm
// queries, returning latency and cost statistics. A deployment error whose
// cause is the memory budget is reported as OOM, like the paper's failed
// configurations.
func measurePlan(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan, n int) Measurement {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	var (
		lats  []float64
		costs []float64
		mErr  error
	)
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
		if err != nil {
			mErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			mErr = err
			return
		}
		// One warm-up query, then the measured ones (§II-B methodology).
		if _, err := d.Serve(proc, nil); err != nil {
			mErr = err
			return
		}
		for i := 0; i < n; i++ {
			r, err := d.Serve(proc, nil)
			if err != nil {
				mErr = err
				return
			}
			lats = append(lats, r.LatencyMs)
			costs = append(costs, float64(r.BilledMs))
		}
	})
	if err := env.Run(); err != nil {
		return Measurement{Err: err.Error()}
	}
	if mErr != nil {
		return Measurement{OOM: isOOM(mErr), Err: mErr.Error()}
	}
	return Measurement{
		MeanMs:   stats.Mean(lats),
		P99Ms:    stats.Percentile(lats, 99),
		StdMs:    stats.Std(lats),
		MeanCost: stats.Mean(costs),
	}
}

// measureDefault measures single-function (Default) serving.
func measureDefault(cfg platform.Config, seed int64, units []*partition.Unit, n int) Measurement {
	plan := &partition.Plan{
		Model: "default",
		Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}},
	}
	return measurePlan(cfg, seed, units, plan, n)
}

func isOOM(err error) bool {
	return err != nil && containsStr(err.Error(), "OOM")
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// platformCfg resolves a platform profile by name.
func platformCfg(name string) (platform.Config, error) { return platform.ByName(name) }

// fmtMs renders a latency cell, using "OOM" for failed configurations.
func fmtMs(m Measurement) string {
	if m.OOM {
		return "OOM"
	}
	if m.Err != "" {
		return "ERR"
	}
	return fmt.Sprintf("%.0f", m.MeanMs)
}
