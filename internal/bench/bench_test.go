package bench

import (
	"strings"
	"testing"
)

// quickCtx returns a trimmed context for fast experiment smoke tests.
func quickCtx() *Context {
	ctx := NewContext(7)
	ctx.Quick = true
	ctx.Queries = 15
	return ctx
}

func TestFig1ShapesMatchPaper(t *testing.T) {
	ctx := NewContext(7)
	ctx.Queries = 15
	res, err := Fig1(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 widening points, got %d", len(res.Rows))
	}
	// Latency grows superlinearly with widening.
	if !(res.Rows[1].Lambda.MeanMs > 2.5*res.Rows[0].Lambda.MeanMs) {
		t.Errorf("widening 2 should be >2.5x widening 1: %v vs %v",
			res.Rows[1].Lambda.MeanMs, res.Rows[0].Lambda.MeanMs)
	}
	// Paper: >2000 ms at widening 3 (Lambda); OOM afterwards.
	if res.Rows[2].Lambda.MeanMs < 2000 {
		t.Errorf("lambda widening 3 should exceed 2000 ms, got %v", res.Rows[2].Lambda.MeanMs)
	}
	if !res.Rows[3].Lambda.OOM || !res.Rows[4].Lambda.OOM {
		t.Error("lambda should OOM at widening 4 and 5")
	}
	if res.Rows[3].GCF.OOM || !res.Rows[4].GCF.OOM {
		t.Error("GCF should fit widening 4 but OOM at 5")
	}
	if !strings.Contains(res.Table(), "OOM") {
		t.Error("table should render OOM cells")
	}
}

func TestFig7ShapesMatchPaper(t *testing.T) {
	ctx := NewContext(7)
	ctx.Queries = 30
	res, err := Fig7(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]Fig7Row{}
	for _, r := range res.Rows {
		byN[r.Functions] = r
	}
	if !(byN[8].Lambda.MeanMs < byN[1].Lambda.MeanMs) {
		t.Error("lambda: 8 functions should beat 1")
	}
	if !(byN[16].Lambda.MeanMs > byN[8].Lambda.MeanMs) {
		t.Errorf("lambda: 16 functions (%v) should be worse than 8 (%v) — the paper's 8→16 harm",
			byN[16].Lambda.MeanMs, byN[8].Lambda.MeanMs)
	}
	if !(byN[16].KNIX.MeanMs < byN[8].KNIX.MeanMs) {
		t.Errorf("knix: 16 (%v) should still beat 8 (%v)", byN[16].KNIX.MeanMs, byN[8].KNIX.MeanMs)
	}
}

func TestFig9QuickSpeedups(t *testing.T) {
	res, err := Fig9(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Speedup < 1.2 {
			t.Errorf("%s/%s: speedup %.2f below the paper's band", row.Model, row.Platform, row.Speedup)
		}
	}
}

func TestFig10KNIXBeatsLambdaSpeedups(t *testing.T) {
	ctx := quickCtx()
	knix, err := Fig10(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := Fig9(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var knixVGG, lamVGG float64
	for _, r := range knix.Rows {
		if r.Model == "vgg16" {
			knixVGG = r.Speedup
		}
	}
	for _, r := range lam.Rows {
		if r.Model == "vgg16" && r.Platform == "lambda" {
			lamVGG = r.Speedup
		}
	}
	if knixVGG <= lamVGG {
		t.Errorf("KNIX should enable more speedup than Lambda (%.2f vs %.2f)", knixVGG, lamVGG)
	}
	// Thin ResNets accelerate on KNIX (they fail to on Lambda, §V-B).
	for _, r := range knix.Rows {
		if r.Model == "resnet50" && r.Speedup < 1.2 {
			t.Errorf("resnet50 on KNIX should accelerate, got %.2f", r.Speedup)
		}
	}
}

func TestFig11PipelineDominatedByLoading(t *testing.T) {
	res, err := Fig11(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Speedup < 5 {
			t.Errorf("%s: Gillis should beat Pipeline by a large factor, got %.1f", row.Model, row.Speedup)
		}
		if row.PipelineLoadMs < row.PipelineComputeMs {
			t.Errorf("%s: pipeline should be network-dominated", row.Model)
		}
	}
}

func TestFig12LinearScalingAndOOM(t *testing.T) {
	res, err := Fig12(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]Fig12Row{}
	for _, r := range res.Rows {
		byN[r.Layers] = r
	}
	if byN[3].Default.OOM {
		t.Error("rnn3 should fit a single function")
	}
	if !byN[10].Default.OOM {
		t.Error("rnn10 should OOM a single function (paper: up to 9 layers)")
	}
	if byN[10].Gillis.MeanMs <= 0 {
		t.Error("gillis must serve rnn10")
	}
	// Roughly linear: latency per layer comparable across depths.
	perLayer3 := byN[3].Gillis.MeanMs / 3
	perLayer10 := byN[10].Gillis.MeanMs / 10
	if perLayer10 > perLayer3*1.3 {
		t.Errorf("per-layer latency grew too much: %.1f → %.1f", perLayer3, perLayer10)
	}
}

func TestFig13QuickSLOCompliance(t *testing.T) {
	res, err := Fig13(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	foundSA := false
	for _, row := range res.Rows {
		if row.Algorithm == "SA" {
			foundSA = true
			if !row.SLOMet {
				t.Errorf("SA must meet the SLO for %s at %.0f ms (got %.0f)", row.Model, row.TmaxMs, row.Latency.MeanMs)
			}
		}
	}
	if !foundSA {
		t.Fatal("no SA rows")
	}
}

func TestFig14GroupingObservations(t *testing.T) {
	res, err := Fig14(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) < 3 {
		t.Fatalf("expected several groups, got %d", len(res.Groups))
	}
	first, last := res.Groups[0], res.Groups[len(res.Groups)-1]
	// Observation 1: bottom groups fuse more layers than top conv groups.
	if first.Units < 2 {
		t.Errorf("bottom group should fuse multiple units, got %d", first.Units)
	}
	// Observation 2: low layers parallelize across at least as many
	// functions as high layers.
	if first.Functions < last.Functions {
		t.Errorf("bottom group functions %d < top group %d", first.Functions, last.Functions)
	}
	// Observation 3: the master computes some low-group partitions.
	masterAny := false
	for _, g := range res.Groups {
		if g.OnMaster {
			masterAny = true
		}
	}
	if !masterAny {
		t.Error("master should compute some partitions")
	}
}

func TestFig15AccuracyBands(t *testing.T) {
	ctx := quickCtx()
	ctx.Queries = 40
	res, err := Fig15(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Runtime {
		if r.ErrPct > 9 {
			t.Errorf("model runtime error %.1f%% for %s exceeds the paper's 9%%", r.ErrPct, r.Model)
		}
	}
	for _, r := range res.Comm {
		if r.ErrPct > 15 {
			t.Errorf("comm delay error %.1f%% at n=%d too high", r.ErrPct, r.Workers)
		}
	}
	for _, r := range res.E2E {
		if r.ErrPct > 8 {
			t.Errorf("end-to-end error %.1f%% for %s exceeds the paper's band", r.ErrPct, r.Model)
		}
	}
}

func TestTablesRender(t *testing.T) {
	ctx := quickCtx()
	r1, err := Fig1(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r1.Table(), "Fig 1") {
		t.Error("fig1 table missing title")
	}
	r14, err := Fig14(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r14.Table(), "group") {
		t.Error("fig14 table missing header")
	}
}
