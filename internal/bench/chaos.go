package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"gillis/internal/core"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

// The chaos experiment stresses Gillis's fork-join serving on an imperfect
// platform: invocation failures, stragglers and warm-instance evictions are
// injected at increasing rates, and naive serving (fail on first error) is
// compared against resilient serving (retries + hedging + master fallback).
// The JSON output is the checked-in BENCH_chaos.json baseline; a later PR
// that regresses goodput or inflates cost under faults shows up as a diff.

// chaosRates is the default fault-rate sweep.
var chaosRates = []float64{0.02, 0.05, 0.10}

// chaosModel is the served model (the paper's main VGG workload).
const chaosModel = "vgg16"

// ChaosMeasurement summarizes one serving configuration under one fault
// profile.
type ChaosMeasurement struct {
	// Goodput is the fraction of queries that completed.
	Goodput float64 `json:"goodput"`
	// P50Ms / P99Ms are latency percentiles over completed queries.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// BilledMsPerQuery is the platform-level billed time divided by
	// attempted queries. It is authoritative: abandoned stragglers and
	// failed attempts are included.
	BilledMsPerQuery float64 `json:"billed_ms_per_query"`
	// CostInflation is BilledMsPerQuery over the fault-free naive baseline
	// on the same platform.
	CostInflation float64 `json:"cost_inflation"`
	// Resilience activity (zero for naive serving).
	Retries   int `json:"retries"`
	Hedges    int `json:"hedges"`
	Fallbacks int `json:"fallbacks"`
}

// ChaosRow is one (platform, fault rate) comparison.
type ChaosRow struct {
	Platform  string           `json:"platform"`
	FaultRate float64          `json:"fault_rate"`
	Naive     ChaosMeasurement `json:"naive"`
	Resilient ChaosMeasurement `json:"resilient"`
}

// ChaosReport is the full sweep plus the fault-free cost baselines the
// inflation figures are relative to.
type ChaosReport struct {
	Model     string             `json:"model"`
	Queries   int                `json:"queries"`
	Baselines map[string]float64 `json:"baseline_billed_ms_per_query"`
	Rows      []ChaosRow         `json:"rows"`
}

// chaosProfile maps a scalar fault rate onto a full profile: failures and
// 4x stragglers at the rate, evictions at half of it.
func chaosProfile(rate float64) platform.FaultProfile {
	return platform.FaultProfile{
		FailureProb:     rate,
		StragglerProb:   rate,
		StragglerFactor: 4,
		EvictionProb:    rate / 2,
	}
}

// resilientOpts is the resilient serving configuration under test.
func resilientOpts() []runtime.DeployOption {
	return []runtime.DeployOption{
		runtime.WithRetries(3, 25),
		runtime.WithHedging(95),
		runtime.WithMasterFallback(),
	}
}

// measureChaos serves n queries on a fresh faulty platform and reports
// goodput, latency percentiles over survivors, and authoritative cost.
func measureChaos(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan, n int, faults platform.FaultProfile, opts ...runtime.DeployOption) (ChaosMeasurement, error) {
	cfg.Faults = faults
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	var (
		lats      []float64
		completed int
		m         ChaosMeasurement
		setupErr  error
	)
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly, opts...)
		if err != nil {
			setupErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			setupErr = err
			return
		}
		for i := 0; i < n; i++ {
			r, err := d.Serve(proc, nil)
			if err != nil {
				continue
			}
			completed++
			lats = append(lats, r.LatencyMs)
			m.Retries += r.Resilience.Retries
			m.Hedges += r.Resilience.Hedges
			m.Fallbacks += r.Resilience.Fallbacks
		}
	})
	if err := env.Run(); err != nil {
		return m, err
	}
	if setupErr != nil {
		return m, setupErr
	}
	m.Goodput = round3(float64(completed) / float64(n))
	m.P50Ms = round3(stats.Percentile(lats, 50))
	m.P99Ms = round3(stats.Percentile(lats, 99))
	m.BilledMsPerQuery = round3(float64(p.BilledMsTotal()) / float64(n))
	return m, nil
}

// Chaos runs the fault sweep. Rates come from ctx.FaultRates when set (the
// gillis-bench -faults flag); Quick mode trims to Lambda at one rate.
func Chaos(ctx *Context) (*ChaosReport, error) {
	platforms := []string{"lambda", "gcf", "knix"}
	rates := ctx.FaultRates
	if len(rates) == 0 {
		rates = chaosRates
	}
	if ctx.Quick {
		platforms = platforms[:1]
		if len(rates) > 1 {
			rates = rates[1:2]
		}
	}
	units, err := ctx.Units(chaosModel)
	if err != nil {
		return nil, err
	}
	n := ctx.queries()
	report := &ChaosReport{Model: chaosModel, Queries: n, Baselines: make(map[string]float64)}
	for pi, pname := range platforms {
		pm, err := ctx.Model(pname)
		if err != nil {
			return nil, err
		}
		plan, _, err := core.LatencyOptimal(pm, units, core.Config{})
		if err != nil {
			return nil, err
		}
		cfg := pm.Platform()
		seed := ctx.Seed + int64(pi)*101

		// Fault-free naive baseline: the cost denominator.
		base, err := measureChaos(cfg, seed, units, plan, n, platform.FaultProfile{})
		if err != nil {
			return nil, fmt.Errorf("bench: chaos baseline on %s: %w", pname, err)
		}
		report.Baselines[pname] = base.BilledMsPerQuery

		for _, rate := range rates {
			faults := chaosProfile(rate)
			naive, err := measureChaos(cfg, seed+1, units, plan, n, faults)
			if err != nil {
				return nil, fmt.Errorf("bench: chaos naive on %s: %w", pname, err)
			}
			resil, err := measureChaos(cfg, seed+2, units, plan, n, faults, resilientOpts()...)
			if err != nil {
				return nil, fmt.Errorf("bench: chaos resilient on %s: %w", pname, err)
			}
			if base.BilledMsPerQuery > 0 {
				naive.CostInflation = round3(naive.BilledMsPerQuery / base.BilledMsPerQuery)
				resil.CostInflation = round3(resil.BilledMsPerQuery / base.BilledMsPerQuery)
			}
			report.Rows = append(report.Rows, ChaosRow{
				Platform:  pname,
				FaultRate: rate,
				Naive:     naive,
				Resilient: resil,
			})
		}
	}
	return report, nil
}

// Table renders the sweep in the figure runners' tabular style.
func (r *ChaosReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Chaos sweep: %s, %d queries (naive vs resilient serving)\n", r.Model, r.Queries)
	fmt.Fprintf(&sb, "%-8s %6s │ %8s %8s %8s %7s │ %8s %8s %8s %7s %5s %5s %4s\n",
		"platform", "rate", "n.good", "n.p99", "n.cost", "n.infl", "r.good", "r.p99", "r.cost", "r.infl", "retry", "hedge", "fb")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-8s %6.2f │ %8.2f %8.0f %8.0f %7.2f │ %8.2f %8.0f %8.0f %7.2f %5d %5d %4d\n",
			row.Platform, row.FaultRate,
			row.Naive.Goodput, row.Naive.P99Ms, row.Naive.BilledMsPerQuery, row.Naive.CostInflation,
			row.Resilient.Goodput, row.Resilient.P99Ms, row.Resilient.BilledMsPerQuery, row.Resilient.CostInflation,
			row.Resilient.Retries, row.Resilient.Hedges, row.Resilient.Fallbacks)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the report as the BENCH_chaos.json baseline format.
func (r *ChaosReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
