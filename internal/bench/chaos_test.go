package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestChaosQuick runs the trimmed sweep with the fixed CI seed and checks
// the properties the chaos baseline exists to protect: resilient serving
// must beat naive goodput under faults, and the whole report must be a
// deterministic function of the seed.
func TestChaosQuick(t *testing.T) {
	run := func() *ChaosReport {
		ctx := NewContext(42)
		ctx.Quick = true
		r, err := Chaos(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := run()
	if len(r.Rows) == 0 {
		t.Fatal("empty chaos report")
	}
	for _, row := range r.Rows {
		if row.Resilient.Goodput < row.Naive.Goodput {
			t.Errorf("%s@%.2f: resilient goodput %.3f below naive %.3f",
				row.Platform, row.FaultRate, row.Resilient.Goodput, row.Naive.Goodput)
		}
		if row.Resilient.Goodput < 0.95 {
			t.Errorf("%s@%.2f: resilient goodput %.3f; retries should absorb a 5%% fault rate",
				row.Platform, row.FaultRate, row.Resilient.Goodput)
		}
		if row.Naive.Goodput >= 1 {
			t.Errorf("%s@%.2f: naive served everything; faults not injected?", row.Platform, row.FaultRate)
		}
	}

	j1, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := run().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("chaos report not deterministic for a fixed seed")
	}
	if !json.Valid(j1) {
		t.Fatal("invalid JSON")
	}
	if !strings.Contains(r.Table(), "Chaos sweep") {
		t.Fatal("table header missing")
	}
}

// TestChaosFaultRateOverride exercises the -faults plumbing.
func TestChaosFaultRateOverride(t *testing.T) {
	ctx := NewContext(42)
	ctx.Quick = true
	ctx.FaultRates = []float64{0.08}
	r, err := Chaos(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].FaultRate != 0.08 {
		t.Fatalf("fault-rate override ignored: %+v", r.Rows)
	}
}
