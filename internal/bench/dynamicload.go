package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gillis/internal/core"
	"gillis/internal/workload"
)

// LoadRow is one (policy) row of the dynamic-load study.
type LoadRow struct {
	Policy     string
	Queries    int
	MeanMs     float64
	P99Ms      float64
	ColdStarts int
	// SLOPct is SLO attainment over all arrivals; Shed counts queries the
	// gateway rejected at admission; CostPer1KMs is billed milliseconds
	// (invocations + prewarming) per thousand queries.
	SLOPct      float64
	Shed        int
	CostPer1KMs float64
}

// LoadResult is an extension study replaying a bursty arrival trace
// (§II-A's motivating regime) through the serving gateway under different
// autoscaling policies: none, reactive target-concurrency, and
// schedule-driven burst-aware. The serverless platform absorbs the spike
// either way — the policy decides who pays cold starts on the tail, and
// what the standing warmth costs.
type LoadResult struct {
	Model string
	Spec  workload.BurstSpec
	SLOMs float64
	Rows  []LoadRow
}

// DynamicLoad runs the study with ResNet-50 on Lambda behind the gateway.
func DynamicLoad(ctx *Context) (*LoadResult, error) {
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	units, err := ctx.Units(sweepLoadModel)
	if err != nil {
		return nil, err
	}
	plan, _, err := core.LatencyOptimal(m, units, core.Config{})
	if err != nil {
		return nil, err
	}
	spec := workload.BurstSpec{
		BaseRate:  2,
		BurstRate: 20,
		Period:    20 * time.Second,
		BurstLen:  4 * time.Second,
	}
	horizon := 60 * time.Second
	if ctx.Quick {
		horizon = 20 * time.Second
	}
	arrivals, err := workload.Bursty(rand.New(rand.NewSource(ctx.Seed)), spec, horizon)
	if err != nil {
		return nil, err
	}

	cfg := m.Platform()
	cfg.WarmIdleMs = 8000
	cfg.PrewarmMs = cfg.ColdStartMs
	warmMs, err := calibrateWarmMs(cfg, ctx.Seed, units, plan)
	if err != nil {
		return nil, err
	}
	sloMs := round3(warmMs + 0.6*cfg.ColdStartMs)

	res := &LoadResult{Model: sweepLoadModel, Spec: spec, SLOMs: sloMs}
	for pi, pol := range sweepPolicies(spec, warmMs) {
		rep, err := replayPolicy(cfg, ctx.Seed+int64(pi), units, plan, arrivals, sloMs, 16, pol)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LoadRow{
			Policy:      rep.Policy,
			Queries:     rep.Queries,
			MeanMs:      rep.MeanMs,
			P99Ms:       rep.P99Ms,
			ColdStarts:  rep.ColdStarts,
			SLOPct:      rep.SLOPct,
			Shed:        rep.Shed,
			CostPer1KMs: rep.CostPer1K,
		})
	}
	return res, nil
}

// Table renders the study as text.
func (r *LoadResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dynamic load. %s under bursty traffic (%.0f→%.0f qps bursts, SLO %.0f ms)\n",
		r.Model, r.Spec.BaseRate, r.Spec.BurstRate, r.SLOMs)
	sb.WriteString("             policy | queries | mean ms | p99 ms | cold | shed |  slo% | cost/1k ms\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%19s | %7d | %7.0f | %6.0f | %4d | %4d | %5.1f | %.0f\n",
			row.Policy, row.Queries, row.MeanMs, row.P99Ms, row.ColdStarts, row.Shed, row.SLOPct, row.CostPer1KMs)
	}
	return sb.String()
}
