package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gillis/internal/core"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
	"gillis/internal/workload"
)

// LoadRow is one (policy) row of the dynamic-load study.
type LoadRow struct {
	Policy     string
	Queries    int
	MeanMs     float64
	P99Ms      float64
	ColdStarts int
}

// LoadResult is an extension study replaying a bursty arrival trace
// (§II-A's motivating regime) against a Gillis deployment under different
// warm-pool policies: none, steady-state sized, and burst-aware. The
// serverless platform absorbs the spike either way — the warm-up policy
// decides who pays cold starts on the tail.
type LoadResult struct {
	Model string
	Spec  workload.BurstSpec
	Rows  []LoadRow
}

// DynamicLoad runs the study with ResNet-50 on Lambda.
func DynamicLoad(ctx *Context) (*LoadResult, error) {
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	units, err := ctx.Units("resnet50")
	if err != nil {
		return nil, err
	}
	plan, _, err := core.LatencyOptimal(m, units, core.Config{})
	if err != nil {
		return nil, err
	}
	spec := workload.BurstSpec{
		BaseRate:  2,
		BurstRate: 20,
		Period:    20 * time.Second,
		BurstLen:  4 * time.Second,
	}
	horizon := 60 * time.Second
	if ctx.Quick {
		horizon = 20 * time.Second
	}
	arrivals, err := workload.Bursty(rand.New(rand.NewSource(ctx.Seed)), spec, horizon)
	if err != nil {
		return nil, err
	}

	res := &LoadResult{Model: "resnet50", Spec: spec}
	policies := []struct {
		name string
		warm int
	}{
		{"no warm-up", 0},
		{"steady-sized (2)", 2},
		{"burst-aware (12)", 12},
	}
	for pi, pol := range policies {
		row, err := replayTrace(m.Platform(), ctx.Seed+int64(pi), units, plan, arrivals, pol.warm)
		if err != nil {
			return nil, err
		}
		row.Policy = pol.name
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// replayTrace fires one query per arrival time against a deployment with
// `warm` prewarmed instances per function.
func replayTrace(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan,
	arrivals []time.Duration, warm int) (LoadRow, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
	if err != nil {
		return LoadRow{}, err
	}
	for i := 0; i < warm; i++ {
		if err := d.Prewarm(); err != nil {
			return LoadRow{}, err
		}
	}
	lats := make([]float64, 0, len(arrivals))
	cold := 0
	errs := make([]error, len(arrivals))
	for i, at := range arrivals {
		i, at := i, at
		env.Go(fmt.Sprintf("q%d", i), func(proc *simnet.Proc) {
			proc.Sleep(at)
			r, err := d.Serve(proc, nil)
			if err != nil {
				errs[i] = err
				return
			}
			lats = append(lats, r.LatencyMs)
			if r.ColdStart {
				cold++
			}
		})
	}
	if err := env.Run(); err != nil {
		return LoadRow{}, err
	}
	for _, err := range errs {
		if err != nil {
			return LoadRow{}, err
		}
	}
	return LoadRow{
		Queries:    len(lats),
		MeanMs:     stats.Mean(lats),
		P99Ms:      stats.Percentile(lats, 99),
		ColdStarts: cold,
	}, nil
}

// Table renders the study as text.
func (r *LoadResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dynamic load. %s under bursty traffic (%.0f→%.0f qps bursts)\n",
		r.Model, r.Spec.BaseRate, r.Spec.BurstRate)
	sb.WriteString("          policy | queries | mean ms | p99 ms | cold starts\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%16s | %7d | %7.0f | %6.0f | %d\n",
			row.Policy, row.Queries, row.MeanMs, row.P99Ms, row.ColdStarts)
	}
	return sb.String()
}
