package bench

import (
	"fmt"
	"strings"
)

// Fig1Row is one model point of Fig. 1: single-function WRN-50-k latency on
// Google Cloud Functions and AWS Lambda.
type Fig1Row struct {
	Widening int
	Lambda   Measurement
	GCF      Measurement
}

// Fig1Result reproduces Fig. 1 (§II-B): inference latency of Wide
// ResNet-50 grows ~quadratically with the widening scalar until the model
// no longer fits a single function (OOM).
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 runs the experiment.
func Fig1(ctx *Context) (*Fig1Result, error) {
	lam, err := platformCfg("lambda")
	if err != nil {
		return nil, err
	}
	gcf, err := platformCfg("gcf")
	if err != nil {
		return nil, err
	}
	maxK := 5
	if ctx.Quick {
		maxK = 3
	}
	res := &Fig1Result{}
	for k := 1; k <= maxK; k++ {
		units, err := ctx.Units(fmt.Sprintf("wrn50-%d", k))
		if k == 1 {
			units, err = ctx.Units("resnet50")
		}
		if err != nil {
			return nil, err
		}
		row := Fig1Row{Widening: k}
		row.Lambda = measureDefault(lam, ctx.Seed+int64(k), units, ctx.queries())
		row.GCF = measureDefault(gcf, ctx.Seed+int64(k)+100, units, ctx.queries())
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the figure as text.
func (r *Fig1Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig 1. Single-function WRN-50-k serving latency (ms)\n")
	sb.WriteString("widening |   lambda |      gcf\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8d | %8s | %8s\n", row.Widening, fmtMs(row.Lambda), fmtMs(row.GCF))
	}
	return sb.String()
}
