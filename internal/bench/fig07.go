package bench

import (
	"fmt"
	"strings"

	"gillis/internal/partition"
)

// Fig7Row is one fan-out point: mean latency of one parallelized layer
// group on Lambda and KNIX.
type Fig7Row struct {
	Functions int
	Lambda    Measurement
	KNIX      Measurement
}

// Fig7Result reproduces Fig. 7 (§III-C): parallelizing a layer group
// across more functions helps up to a point; on Lambda going from 8 to 16
// functions does more harm than good, while KNIX's fast function
// interactions degrade far less.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 parallelizes the three 256-channel 56×56 convolution layers of
// VGG-16 across 1..16 functions.
func Fig7(ctx *Context) (*Fig7Result, error) {
	units, err := ctx.Units("vgg16")
	if err != nil {
		return nil, err
	}
	group := units[6:9]
	lam, err := platformCfg("lambda")
	if err != nil {
		return nil, err
	}
	knix, err := platformCfg("knix")
	if err != nil {
		return nil, err
	}
	fanouts := []int{1, 2, 4, 8, 16}
	if ctx.Quick {
		fanouts = []int{1, 4, 16}
	}
	res := &Fig7Result{}
	for _, p := range fanouts {
		plan := &partition.Plan{Model: "vgg16-group", Groups: []partition.GroupPlan{
			groupPlanFor(p),
		}}
		row := Fig7Row{Functions: p}
		row.Lambda = measurePlan(lam, ctx.Seed+int64(p), group, plan, ctx.queries())
		row.KNIX = measurePlan(knix, ctx.Seed+int64(p)+50, group, plan, ctx.queries())
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func groupPlanFor(p int) partition.GroupPlan {
	if p == 1 {
		return partition.GroupPlan{
			First: 0, Last: 2,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}
	}
	return partition.GroupPlan{
		First: 0, Last: 2,
		Option: partition.Option{Dim: partition.DimSpatial, Parts: p},
	}
}

// Table renders the figure as text.
func (r *Fig7Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig 7. Layer-group latency vs number of parallel functions (ms)\n")
	sb.WriteString("functions |   lambda |     knix\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%9d | %8s | %8s\n", row.Functions, fmtMs(row.Lambda), fmtMs(row.KNIX))
	}
	return sb.String()
}
