package bench

import (
	"fmt"
	"strings"

	"gillis/internal/core"
)

// CNNRow compares Gillis's latency-optimal serving against Default for one
// model on one platform.
type CNNRow struct {
	Model    string
	Platform string
	Default  Measurement
	Gillis   Measurement
	Speedup  float64
}

// Fig9Result reproduces Fig. 9 (§V-B): Gillis-LO vs Default latencies for
// VGG and Wide ResNet models on Lambda and Google Cloud Functions.
type Fig9Result struct {
	Rows []CNNRow
}

// Fig9 runs the experiment.
func Fig9(ctx *Context) (*Fig9Result, error) {
	modelsList := []string{"vgg11", "vgg16", "vgg19", "wrn34-3", "wrn34-4", "wrn50-3"}
	platforms := []string{"lambda", "gcf"}
	if ctx.Quick {
		modelsList = []string{"vgg16", "wrn34-3"}
		platforms = []string{"lambda"}
	}
	res := &Fig9Result{}
	for _, pf := range platforms {
		rows, err := compareGillisDefault(ctx, pf, modelsList)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// compareGillisDefault measures Default and the latency-optimal plan for
// each model on one platform.
func compareGillisDefault(ctx *Context, platformName string, names []string) ([]CNNRow, error) {
	m, err := ctx.Model(platformName)
	if err != nil {
		return nil, err
	}
	cfg := m.Platform()
	var rows []CNNRow
	for i, name := range names {
		units, err := ctx.Units(name)
		if err != nil {
			return nil, err
		}
		plan, _, err := core.LatencyOptimal(m, units, core.Config{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s: %w", name, platformName, err)
		}
		seed := ctx.Seed + int64(i)*7
		row := CNNRow{Model: name, Platform: platformName}
		row.Default = measureDefault(cfg, seed, units, ctx.queries())
		row.Gillis = measurePlan(cfg, seed+1, units, plan, ctx.queries())
		if row.Gillis.Err != "" {
			return nil, fmt.Errorf("bench: gillis %s on %s: %s", name, platformName, row.Gillis.Err)
		}
		if !row.Default.OOM && row.Default.Err == "" && row.Gillis.MeanMs > 0 {
			row.Speedup = row.Default.MeanMs / row.Gillis.MeanMs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table renders the figure as text.
func (r *Fig9Result) Table() string {
	return cnnTable("Fig 9. Gillis (latency-optimal) vs Default serving, CNNs (ms)", r.Rows)
}

func cnnTable(title string, rows []CNNRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString("   model  | platform |  default |   gillis | speedup\n")
	for _, row := range rows {
		sp := "   -"
		if row.Speedup > 0 {
			sp = fmt.Sprintf("%.2fx", row.Speedup)
		}
		fmt.Fprintf(&sb, "%9s | %8s | %8s | %8s | %s\n",
			row.Model, row.Platform, fmtMs(row.Default), fmtMs(row.Gillis), sp)
	}
	return sb.String()
}

// Fig10Result reproduces Fig. 10 (§V-B): the same comparison on KNIX,
// including the "thin" classic ResNets that only benefit under fast
// function interactions.
type Fig10Result struct {
	Rows []CNNRow
}

// Fig10 runs the experiment.
func Fig10(ctx *Context) (*Fig10Result, error) {
	names := []string{"vgg16", "vgg19", "wrn50-3", "resnet34", "resnet50", "resnet101"}
	if ctx.Quick {
		names = []string{"vgg16", "resnet50"}
	}
	rows, err := compareGillisDefault(ctx, "knix", names)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

// Table renders the figure as text.
func (r *Fig10Result) Table() string {
	return cnnTable("Fig 10. Gillis vs Default serving on KNIX (ms)", r.Rows)
}
