package bench

import (
	"fmt"
	"strings"

	"gillis/internal/core"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

// Fig11Row compares Gillis against the Pipeline baseline for one model too
// large to serve from a single function.
type Fig11Row struct {
	Model string
	// PipelineMs is the end-to-end pipelined latency, decomposed into
	// computation and network (weight-loading) time as in the paper's bars.
	PipelineMs, PipelineComputeMs, PipelineLoadMs float64
	GillisMs                                      float64
	Speedup                                       float64
}

// Fig11Result reproduces Fig. 11 (§V-B): for WRN-34-5 and WRN-50-4/5 —
// models that OOM a single function — Gillis's parallel execution beats the
// S3-staged Pipeline by ~8-9×, whose latency is dominated by weight
// loading.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11 runs the experiment on Lambda.
func Fig11(ctx *Context) (*Fig11Result, error) {
	names := []string{"wrn34-5", "wrn50-4", "wrn50-5"}
	if ctx.Quick {
		names = []string{"wrn34-5"}
	}
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	cfg := m.Platform()
	res := &Fig11Result{}
	for i, name := range names {
		units, err := ctx.Units(name)
		if err != nil {
			return nil, err
		}
		plan, _, err := core.LatencyOptimal(m, units, core.Config{})
		if err != nil {
			return nil, err
		}
		seed := ctx.Seed + int64(i)*13
		pipe, err := measurePipeline(cfg, seed, units, ctx.queries())
		if err != nil {
			return nil, err
		}
		gillis := measurePlan(cfg, seed+1, units, plan, ctx.queries())
		if gillis.Err != "" {
			return nil, fmt.Errorf("bench: gillis %s: %s", name, gillis.Err)
		}
		row := Fig11Row{
			Model:             name,
			PipelineMs:        pipe.meanMs,
			PipelineComputeMs: pipe.computeMs,
			PipelineLoadMs:    pipe.loadMs,
			GillisMs:          gillis.MeanMs,
			Speedup:           pipe.meanMs / gillis.MeanMs,
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

type pipelineMeasurement struct {
	meanMs, computeMs, loadMs float64
}

// measurePipeline deploys the Pipeline baseline and serves warm queries.
func measurePipeline(cfg platform.Config, seed int64, units []*partition.Unit, n int) (pipelineMeasurement, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	var lats, comps, loads []float64
	var mErr error
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.DeployPipeline(p, units, runtime.ShapeOnly)
		if err != nil {
			mErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			mErr = err
			return
		}
		if _, err := d.Serve(proc, nil); err != nil { // warm-up
			mErr = err
			return
		}
		for i := 0; i < n; i++ {
			r, err := d.Serve(proc, nil)
			if err != nil {
				mErr = err
				return
			}
			lats = append(lats, r.LatencyMs)
			comps = append(comps, r.ComputeMs)
			loads = append(loads, r.LoadMs)
		}
	})
	if err := env.Run(); err != nil {
		return pipelineMeasurement{}, err
	}
	if mErr != nil {
		return pipelineMeasurement{}, mErr
	}
	return pipelineMeasurement{
		meanMs:    stats.Mean(lats),
		computeMs: stats.Mean(comps),
		loadMs:    stats.Mean(loads),
	}, nil
}

// Table renders the figure as text.
func (r *Fig11Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig 11. Serving large models: Pipeline vs Gillis on Lambda (ms)\n")
	sb.WriteString("  model  | pipeline | pipe-comp | pipe-net |  gillis | speedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%8s | %8.0f | %9.0f | %8.0f | %7.0f | %.1fx\n",
			row.Model, row.PipelineMs, row.PipelineComputeMs, row.PipelineLoadMs, row.GillisMs, row.Speedup)
	}
	return sb.String()
}
