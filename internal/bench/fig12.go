package bench

import (
	"fmt"
	"strings"

	"gillis/internal/core"
)

// Fig12Row is one RNN depth point.
type Fig12Row struct {
	Layers  int
	Default Measurement
	Gillis  Measurement
}

// Fig12Result reproduces Fig. 12 (§V-B): serving multi-layer LSTM models
// on Lambda. A single function only holds up to 9 layers; Gillis has no
// such limit and its latency grows linearly with depth, showing that
// function communication overhead is minimized.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 runs the experiment.
func Fig12(ctx *Context) (*Fig12Result, error) {
	depths := []int{3, 6, 9, 10, 12}
	if ctx.Quick {
		depths = []int{3, 10}
	}
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	cfg := m.Platform()
	res := &Fig12Result{}
	for i, n := range depths {
		units, err := ctx.Units(fmt.Sprintf("rnn%d", n))
		if err != nil {
			return nil, err
		}
		plan, _, err := core.LatencyOptimal(m, units, core.Config{})
		if err != nil {
			return nil, err
		}
		seed := ctx.Seed + int64(i)*17
		row := Fig12Row{Layers: n}
		row.Default = measureDefault(cfg, seed, units, ctx.queries())
		row.Gillis = measurePlan(cfg, seed+1, units, plan, ctx.queries())
		if row.Gillis.Err != "" {
			return nil, fmt.Errorf("bench: gillis rnn%d: %s", n, row.Gillis.Err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the figure as text.
func (r *Fig12Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig 12. RNN serving latency on Lambda (ms); single functions hold <= 9 layers\n")
	sb.WriteString("layers |  default |   gillis\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d | %8s | %8s\n", row.Layers, fmtMs(row.Default), fmtMs(row.Gillis))
	}
	return sb.String()
}
