package bench

import (
	"fmt"
	"strings"

	"gillis/internal/core"
)

// Fig13Row is one (model, SLO, algorithm) cell: measured mean latency,
// whether the SLO held, and the mean billed cost per query.
type Fig13Row struct {
	Model     string
	TmaxMs    float64
	Algorithm string // "SA" (Gillis RL), "BO", "BF"
	Latency   Measurement
	SLOMet    bool
}

// Fig13Result reproduces Fig. 13 (§V-C): Gillis's SLO-aware RL vs Bayesian
// optimization (and brute force on VGG-11). SA always meets the SLOs and
// costs up to ~1.8× less than BO; BO violates restrictive SLOs.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13 runs the experiment on Lambda. Restrictive and loose SLOs are set
// relative to each model's best achievable latency (the paper picks
// absolute values of the same character, e.g. VGG-11 at 500 ms).
func Fig13(ctx *Context) (*Fig13Result, error) {
	names := []string{"vgg11", "vgg16", "wrn50-4", "wrn50-5"}
	runs := 3
	episodes := 1500
	boIters := 80
	if ctx.Quick {
		names = []string{"vgg11"}
		runs = 1
		boIters = 40
	}
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	cfg := m.Platform()
	res := &Fig13Result{}
	for mi, name := range names {
		units, err := ctx.Units(name)
		if err != nil {
			return nil, err
		}
		_, lo, err := core.LatencyOptimal(m, units, core.Config{})
		if err != nil {
			return nil, err
		}
		for si, slo := range []float64{lo.LatencyMs * 1.2, lo.LatencyMs * 2.5} {
			seed := ctx.Seed + int64(mi*10+si)

			// SA: best of `runs` RL trainings (§V-C reports the best of 3).
			var bestSA *core.SLOResult
			for r := 0; r < runs; r++ {
				sa, err := core.SLOAware(m, units, slo, core.SLOConfig{Episodes: episodes, Seed: seed + int64(r)})
				if err != nil {
					return nil, err
				}
				if bestSA == nil || saBetter(&sa, bestSA) {
					tmp := sa
					bestSA = &tmp
				}
			}
			meas := measurePlan(cfg, seed+100, units, bestSA.Plan, ctx.queries())
			res.Rows = append(res.Rows, Fig13Row{
				Model: name, TmaxMs: slo, Algorithm: "SA",
				Latency: meas, SLOMet: meas.Err == "" && meas.MeanMs <= slo,
			})

			// BO: best of `runs` searches.
			var bestBO *core.BOResult
			for r := 0; r < runs; r++ {
				bo, err := core.BayesOpt(m, units, slo, core.BOConfig{Iters: boIters, Seed: seed + int64(r) + 40})
				if err != nil {
					continue // BO may fail outright on hard instances
				}
				if bestBO == nil || boBetter(&bo, bestBO) {
					tmp := bo
					bestBO = &tmp
				}
			}
			if bestBO != nil {
				meas := measurePlan(cfg, seed+200, units, bestBO.Plan, ctx.queries())
				res.Rows = append(res.Rows, Fig13Row{
					Model: name, TmaxMs: slo, Algorithm: "BO",
					Latency: meas, SLOMet: meas.Err == "" && meas.MeanMs <= slo,
				})
			}

			// BF: only for the smallest model (intractable otherwise, §V-C).
			if name == "vgg11" {
				bf, err := core.BruteForce(m, units, slo, core.BFConfig{MaxNodes: 500_000})
				if err == nil {
					meas := measurePlan(cfg, seed+300, units, bf.Plan, ctx.queries())
					res.Rows = append(res.Rows, Fig13Row{
						Model: name, TmaxMs: slo, Algorithm: "BF",
						Latency: meas, SLOMet: meas.Err == "" && meas.MeanMs <= slo,
					})
				}
			}
		}
	}
	return res, nil
}

func saBetter(a, b *core.SLOResult) bool {
	if a.Met != b.Met {
		return a.Met
	}
	if a.Met {
		return a.Pred.BilledMs < b.Pred.BilledMs
	}
	return a.Pred.LatencyMs < b.Pred.LatencyMs
}

func boBetter(a, b *core.BOResult) bool {
	if a.Met != b.Met {
		return a.Met
	}
	if a.Met {
		return a.Pred.BilledMs < b.Pred.BilledMs
	}
	return a.Pred.LatencyMs < b.Pred.LatencyMs
}

// Table renders the figure as text.
func (r *Fig13Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig 13. SLO-aware serving on Lambda: latency / billed cost per query\n")
	sb.WriteString("  model  |  T_max | alg | latency | SLO met | cost (ms billed)\n")
	for _, row := range r.Rows {
		met := "yes"
		if !row.SLOMet {
			met = "NO"
		}
		fmt.Fprintf(&sb, "%8s | %6.0f | %3s | %7s | %7s | %8.0f\n",
			row.Model, row.TmaxMs, row.Algorithm, fmtMs(row.Latency), met, row.Latency.MeanCost)
	}
	return sb.String()
}
