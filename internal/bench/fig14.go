package bench

import (
	"fmt"
	"strings"

	"gillis/internal/core"
	"gillis/internal/partition"
)

// Fig14Group describes one group of the latency-optimal WRN-34-5 plan.
type Fig14Group struct {
	Group     int
	Units     int
	Option    string
	Functions int
	OnMaster  bool
	WeightMB  float64
}

// Fig14Result reproduces Fig. 14 (§V-D): the layer grouping and
// parallelization the latency-optimal algorithm chooses for WRN-34-5. The
// paper's observations: bottom groups fuse more layers and parallelize
// wider; the master computes partitions of low, small-weight groups.
type Fig14Result struct {
	Model  string
	Groups []Fig14Group
	Plan   *partition.Plan
}

// Fig14 computes the plan (no serving required).
func Fig14(ctx *Context) (*Fig14Result, error) {
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	units, err := ctx.Units("wrn34-5")
	if err != nil {
		return nil, err
	}
	plan, _, err := core.LatencyOptimal(m, units, core.Config{})
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{Model: "wrn34-5", Plan: plan}
	for gi, gp := range plan.Groups {
		ext, err := partition.GroupExtent(units, gp.First, gp.Last, gp.Option)
		if err != nil {
			return nil, err
		}
		res.Groups = append(res.Groups, Fig14Group{
			Group:     gi + 1,
			Units:     gp.Last - gp.First + 1,
			Option:    gp.Option.String(),
			Functions: gp.Option.Parts,
			OnMaster:  gp.OnMaster,
			WeightMB:  float64(ext.WeightBytes) / 1e6,
		})
	}
	return res, nil
}

// Table renders the figure as text.
func (r *Fig14Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 14. Latency-optimal grouping of %s\n", r.Model)
	sb.WriteString("group | units |     option | functions | master | weights/part (MB)\n")
	for _, g := range r.Groups {
		master := " "
		if g.OnMaster {
			master = "*"
		}
		fmt.Fprintf(&sb, "%5d | %5d | %10s | %9d | %6s | %8.0f\n",
			g.Group, g.Units, g.Option, g.Functions, master, g.WeightMB)
	}
	return sb.String()
}
