package bench

import (
	"fmt"
	"math"
	"strings"

	"gillis/internal/core"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/stats"
)

// Fig15Runtime is one model-runtime accuracy point (top-left panel).
type Fig15Runtime struct {
	Model       string
	PredictedMs float64
	ActualMs    float64
	ErrPct      float64
}

// Fig15Comm is one concurrent-delay accuracy point (top-right panel).
type Fig15Comm struct {
	Workers     int
	PredictedMs float64
	ActualMs    float64
	ErrPct      float64
}

// Fig15E2E is one end-to-end accuracy point (bottom panel).
type Fig15E2E struct {
	Model       string
	PredictedMs float64
	ActualMs    float64
	ErrPct      float64
}

// Fig15Result reproduces Fig. 15 (§V-E): performance-model accuracy. The
// paper reports <=9% error on model runtimes, ~6.3% average error on
// concurrent communication delays, and <=6% on end-to-end latencies.
type Fig15Result struct {
	Runtime []Fig15Runtime
	Comm    []Fig15Comm
	E2E     []Fig15E2E
}

// Fig15 runs all three panels on Lambda.
func Fig15(ctx *Context) (*Fig15Result, error) {
	m, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	cfg := m.Platform()
	res := &Fig15Result{}

	// Panel 1: single-function model runtime.
	runtimeModels := []string{"vgg19", "wrn50-3", "rnn3"}
	if ctx.Quick {
		runtimeModels = []string{"vgg19"}
	}
	for i, name := range runtimeModels {
		units, err := ctx.Units(name)
		if err != nil {
			return nil, err
		}
		pred, err := m.GroupComputeMs(units, 0, len(units)-1)
		if err != nil {
			return nil, err
		}
		meas := measureDefault(cfg, ctx.Seed+int64(i), units, ctx.queries())
		if meas.Err != "" {
			return nil, fmt.Errorf("bench: fig15 %s: %s", name, meas.Err)
		}
		res.Runtime = append(res.Runtime, Fig15Runtime{
			Model: name, PredictedMs: pred, ActualMs: meas.MeanMs,
			ErrPct: 100 * math.Abs(pred-meas.MeanMs) / meas.MeanMs,
		})
	}

	// Panel 2: maximum delay of n concurrent worker communications.
	workerCounts := []int{1, 2, 4, 8, 16}
	if ctx.Quick {
		workerCounts = []int{1, 8}
	}
	for _, n := range workerCounts {
		actual, err := measureMaxOverhead(cfg, ctx.Seed+int64(n)*3, n, ctx.queries())
		if err != nil {
			return nil, err
		}
		pred := m.MaxCommMs(n)
		res.Comm = append(res.Comm, Fig15Comm{
			Workers: n, PredictedMs: pred, ActualMs: actual,
			ErrPct: 100 * math.Abs(pred-actual) / actual,
		})
	}

	// Panel 3: end-to-end latency under latency-optimal plans.
	e2eModels := []string{"vgg16", "wrn50-3", "rnn6"}
	if ctx.Quick {
		e2eModels = []string{"vgg16"}
	}
	for i, name := range e2eModels {
		units, err := ctx.Units(name)
		if err != nil {
			return nil, err
		}
		plan, pred, err := core.LatencyOptimal(m, units, core.Config{})
		if err != nil {
			return nil, err
		}
		meas := measurePlan(cfg, ctx.Seed+int64(i)*29, units, plan, ctx.queries())
		if meas.Err != "" {
			return nil, fmt.Errorf("bench: fig15 e2e %s: %s", name, meas.Err)
		}
		res.E2E = append(res.E2E, Fig15E2E{
			Model: name, PredictedMs: pred.LatencyMs, ActualMs: meas.MeanMs,
			ErrPct: 100 * math.Abs(pred.LatencyMs-meas.MeanMs) / meas.MeanMs,
		})
	}
	return res, nil
}

// measureMaxOverhead measures the mean maximum invocation overhead across n
// concurrent 1 MB master→worker communications.
func measureMaxOverhead(cfg platform.Config, seed int64, n, rounds int) (float64, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	if err := p.Register("sink", func(ctx *platform.Ctx, in platform.Payload) (platform.Payload, error) {
		return platform.Payload{}, nil
	}); err != nil {
		return 0, err
	}
	if err := p.Prewarm("sink", n); err != nil {
		return 0, err
	}
	var maxes []float64
	err := p.Register("fan", func(ctx *platform.Ctx, in platform.Payload) (platform.Payload, error) {
		promises := make([]*simnet.Promise[platform.InvokeResult], n)
		for i := range promises {
			promises[i] = ctx.InvokeAsync("sink", platform.Payload{Bytes: 1_000_000})
		}
		worst := 0.0
		for _, pr := range promises {
			r, err := pr.Wait(ctx.Proc())
			if err != nil {
				return platform.Payload{}, err
			}
			if r.OverheadMs > worst {
				worst = r.OverheadMs
			}
		}
		maxes = append(maxes, worst)
		return platform.Payload{}, nil
	})
	if err != nil {
		return 0, err
	}
	if err := p.Prewarm("fan", 1); err != nil {
		return 0, err
	}
	var runErr error
	env.Go("client", func(proc *simnet.Proc) {
		for i := 0; i < rounds; i++ {
			if _, err := p.InvokeFrom(proc, "fan", platform.Payload{}); err != nil {
				runErr = err
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		return 0, err
	}
	if runErr != nil {
		return 0, runErr
	}
	return stats.Mean(maxes), nil
}

// Table renders the figure as text.
func (r *Fig15Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig 15. Performance-model prediction accuracy (Lambda)\n")
	sb.WriteString("model runtime:      model | predicted | actual | err%\n")
	for _, row := range r.Runtime {
		fmt.Fprintf(&sb, "%25s | %9.0f | %6.0f | %4.1f\n", row.Model, row.PredictedMs, row.ActualMs, row.ErrPct)
	}
	sb.WriteString("comm delay:       workers | predicted | actual | err%\n")
	for _, row := range r.Comm {
		fmt.Fprintf(&sb, "%25d | %9.1f | %6.1f | %4.1f\n", row.Workers, row.PredictedMs, row.ActualMs, row.ErrPct)
	}
	sb.WriteString("end-to-end:         model | predicted | actual | err%\n")
	for _, row := range r.E2E {
		fmt.Fprintf(&sb, "%25s | %9.0f | %6.0f | %4.1f\n", row.Model, row.PredictedMs, row.ActualMs, row.ErrPct)
	}
	return sb.String()
}
