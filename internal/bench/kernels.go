package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"gillis/internal/nn"
	"gillis/internal/par"
	"gillis/internal/tensor"
)

// The kernel microbenchmark measures the operator forwards the serving
// runtime executes in Real mode, at kernel parallelism 1, 2 and all
// hardware threads. Its JSON output is the checked-in BENCH_kernels.json
// baseline: regressions in single-core speed, multi-core scaling, or
// allocation behaviour show up as diffs against it.

// KernelResult is one (kernel, parallelism) measurement.
type KernelResult struct {
	Kernel      string  `json:"kernel"`
	Parallelism int     `json:"parallelism"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Speedup     float64 `json:"speedup_vs_serial"`
}

// KernelReport is the full sweep plus the hardware context needed to
// interpret it (speedups are meaningless without the core count).
type KernelReport struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	Levels     []int          `json:"levels"`
	Results    []KernelResult `json:"results"`
}

// kernelCase is one op + input to sweep.
type kernelCase struct {
	name string
	op   nn.Op
	in   *tensor.Tensor
}

func kernelCases() []kernelCase {
	rng := rand.New(rand.NewSource(1))
	mk := func(op nn.Op) nn.Op {
		op.Init(rng)
		return op
	}
	return []kernelCase{
		{"conv3x3-c32-28x28", mk(nn.NewConv2D("c", 32, 32, 3, 1, 1)), tensor.Rand(rng, 1, 32, 28, 28)},
		{"conv3x3-c128-14x14", mk(nn.NewConv2D("cw", 128, 128, 3, 1, 1)), tensor.Rand(rng, 1, 128, 14, 14)},
		{"depthwise3x3-c64-28x28", mk(nn.NewDepthwiseConv2D("d", 64, 3, 1, 1)), tensor.Rand(rng, 1, 64, 28, 28)},
		{"dense-2048x1000", mk(nn.NewDense("fc", 2048, 1000)), tensor.Rand(rng, 1, 2048)},
		{"lstm-t16-h128", mk(nn.NewLSTM("l", 128, 128)), tensor.Rand(rng, 1, 16, 128)},
	}
}

// kernelLevels returns the parallelism sweep: 1, 2, and every hardware
// thread, deduplicated.
func kernelLevels() []int {
	n := runtime.GOMAXPROCS(0)
	levels := []int{1}
	if n >= 2 {
		levels = append(levels, 2)
	}
	if n > 2 {
		levels = append(levels, n)
	}
	return levels
}

// measure times op.Forward(x) for at least minDuration (and 5 iterations),
// returning ns/op and per-op allocation deltas.
func measure(op nn.Op, x *tensor.Tensor, minDuration time.Duration) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	for i := 0; i < 2; i++ { // warm up scratch arena and pool workers
		if _, err = op.Forward(x); err != nil {
			return 0, 0, 0, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	//gillis:allow nodeterm kernel microbenchmarks measure real wall-clock speed, not simulated time
	start := time.Now()
	iters := 0
	//gillis:allow nodeterm wall-clock iteration budget for the microbenchmark loop
	for time.Since(start) < minDuration || iters < 5 {
		if _, err = op.Forward(x); err != nil {
			return 0, 0, 0, err
		}
		iters++
	}
	//gillis:allow nodeterm wall-clock measurement is the quantity being reported
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return elapsed.Nanoseconds() / n,
		int64(after.Mallocs-before.Mallocs) / n,
		int64(after.TotalAlloc-before.TotalAlloc) / n,
		nil
}

// Kernels runs the kernel microbenchmark sweep. Quick mode trims the
// per-measurement budget so the sweep stays test-suite friendly.
func Kernels(c *Context) (*KernelReport, error) {
	budget := 300 * time.Millisecond
	if c.Quick {
		budget = 20 * time.Millisecond
	}
	report := &KernelReport{GoMaxProcs: runtime.GOMAXPROCS(0), Levels: kernelLevels()}
	for _, kc := range kernelCases() {
		var serialNs int64
		for _, p := range report.Levels {
			restore := par.SetParallelism(p)
			nsOp, allocs, bytes, err := measure(kc.op, kc.in, budget)
			restore()
			if err != nil {
				return nil, fmt.Errorf("kernel %s p=%d: %w", kc.name, p, err)
			}
			if p == 1 {
				serialNs = nsOp
			}
			speedup := 0.0
			if nsOp > 0 && serialNs > 0 {
				speedup = float64(serialNs) / float64(nsOp)
			}
			report.Results = append(report.Results, KernelResult{
				Kernel:      kc.name,
				Parallelism: p,
				NsPerOp:     nsOp,
				AllocsPerOp: allocs,
				BytesPerOp:  bytes,
				Speedup:     speedup,
			})
		}
	}
	return report, nil
}

// Table renders the sweep in the same tabular style as the figure runners.
func (r *KernelReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Kernel forwards (GOMAXPROCS=%d)\n", r.GoMaxProcs)
	fmt.Fprintf(&sb, "%-24s %4s %12s %9s %11s %12s\n", "kernel", "p", "ns/op", "speedup", "allocs/op", "bytes/op")
	for _, res := range r.Results {
		fmt.Fprintf(&sb, "%-24s %4d %12d %8.2fx %11d %12d\n",
			res.Kernel, res.Parallelism, res.NsPerOp, res.Speedup, res.AllocsPerOp, res.BytesPerOp)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the report as the BENCH_kernels.json baseline format.
func (r *KernelReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
