package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"gillis/internal/nn"
	"gillis/internal/par"
	"gillis/internal/tensor"
)

// The kernel microbenchmark measures the operator forwards the serving
// runtime executes in Real mode, at kernel parallelism 1, 2 and all
// hardware threads. Its JSON output is the checked-in BENCH_kernels.json
// baseline: regressions in single-core speed, multi-core scaling, or
// allocation behaviour show up as diffs against it.

// KernelResult is one (kernel, parallelism) measurement. The baseline
// columns are filled in by Compare when a prior BENCH_kernels.json is
// supplied: BaselineNsPerOp is the previous pin's time for the same
// (kernel, parallelism) pair and SpeedupVsBaseline how much faster this run
// is (>1 means improvement).
type KernelResult struct {
	Kernel            string  `json:"kernel"`
	Parallelism       int     `json:"parallelism"`
	NsPerOp           int64   `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	Speedup           float64 `json:"speedup_vs_serial"`
	BaselineNsPerOp   int64   `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// KernelReport is the full sweep plus the hardware context needed to
// interpret it (speedups are meaningless without the core count).
type KernelReport struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	Levels     []int          `json:"levels"`
	Results    []KernelResult `json:"results"`
}

// kernelCase is one op + input to sweep.
type kernelCase struct {
	name string
	op   nn.Op
	in   *tensor.Tensor
}

func kernelCases() []kernelCase {
	rng := rand.New(rand.NewSource(1))
	mk := func(op nn.Op) nn.Op {
		op.Init(rng)
		return op
	}
	return []kernelCase{
		{"conv3x3-c32-28x28", mk(nn.NewConv2D("c", 32, 32, 3, 1, 1)), tensor.Rand(rng, 1, 32, 28, 28)},
		{"conv3x3-c128-14x14", mk(nn.NewConv2D("cw", 128, 128, 3, 1, 1)), tensor.Rand(rng, 1, 128, 14, 14)},
		{"depthwise3x3-c64-28x28", mk(nn.NewDepthwiseConv2D("d", 64, 3, 1, 1)), tensor.Rand(rng, 1, 64, 28, 28)},
		{"dense-2048x1000", mk(nn.NewDense("fc", 2048, 1000)), tensor.Rand(rng, 1, 2048)},
		{"lstm-t16-h128", mk(nn.NewLSTM("l", 128, 128)), tensor.Rand(rng, 1, 16, 128)},
	}
}

// kernelLevels returns the fixed parallelism sweep {1, 2, 4, 8}. The levels
// are pinned rather than GOMAXPROCS-derived so the checked-in baseline has
// the same shape on every machine: par.SetParallelism oversubscribes
// freely, and the fixed-order accumulation contract makes oversubscription
// bitwise safe, so running 8 workers on a single core only costs scheduling
// overhead.
func kernelLevels() []int {
	return []int{1, 2, 4, 8}
}

// measure times op.Forward(x) for at least minDuration (and 5 iterations),
// returning ns/op and per-op allocation deltas.
func measure(op nn.Op, x *tensor.Tensor, minDuration time.Duration) (nsPerOp, allocsPerOp, bytesPerOp int64, err error) {
	for i := 0; i < 2; i++ { // warm up scratch arena and pool workers
		if _, err = op.Forward(x); err != nil {
			return 0, 0, 0, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	//gillis:allow nodeterm kernel microbenchmarks measure real wall-clock speed, not simulated time
	start := time.Now()
	iters := 0
	//gillis:allow nodeterm wall-clock iteration budget for the microbenchmark loop
	for time.Since(start) < minDuration || iters < 5 {
		if _, err = op.Forward(x); err != nil {
			return 0, 0, 0, err
		}
		iters++
	}
	//gillis:allow nodeterm wall-clock measurement is the quantity being reported
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(iters)
	return elapsed.Nanoseconds() / n,
		int64(after.Mallocs-before.Mallocs) / n,
		int64(after.TotalAlloc-before.TotalAlloc) / n,
		nil
}

// Kernels runs the kernel microbenchmark sweep. Quick mode trims the
// per-measurement budget so the sweep stays test-suite friendly. Each
// (kernel, level) pair is measured over several passes and the median pass
// is reported: the median tracks typical machine performance instead of a
// lucky burst window, so a baseline pinned from it is one a later check run
// can actually reproduce within the 10% regression gate.
func Kernels(c *Context) (*KernelReport, error) {
	budget, passes := 500*time.Millisecond, 5
	if c.Quick {
		budget, passes = 20*time.Millisecond, 1
	}
	report := &KernelReport{GoMaxProcs: runtime.GOMAXPROCS(0), Levels: kernelLevels()}
	for _, kc := range kernelCases() {
		var serialNs int64
		for _, p := range report.Levels {
			type pass struct{ ns, allocs, bytes int64 }
			samples := make([]pass, 0, passes)
			restore := par.SetParallelism(p)
			var err error
			for i := 0; i < passes; i++ {
				var s pass
				s.ns, s.allocs, s.bytes, err = measure(kc.op, kc.in, budget)
				if err != nil {
					break
				}
				samples = append(samples, s)
			}
			restore()
			if err != nil {
				return nil, fmt.Errorf("kernel %s p=%d: %w", kc.name, p, err)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i].ns < samples[j].ns })
			med := samples[len(samples)/2]
			nsOp, allocs, bytes := med.ns, med.allocs, med.bytes
			if p == 1 {
				serialNs = nsOp
			}
			speedup := 0.0
			if nsOp > 0 && serialNs > 0 {
				speedup = float64(serialNs) / float64(nsOp)
			}
			report.Results = append(report.Results, KernelResult{
				Kernel:      kc.name,
				Parallelism: p,
				NsPerOp:     nsOp,
				AllocsPerOp: allocs,
				BytesPerOp:  bytes,
				Speedup:     speedup,
			})
		}
	}
	return report, nil
}

// Compare annotates r's results with before/after columns against a prior
// baseline report: every (kernel, parallelism) pair present in both gets
// the baseline's ns/op and this run's speedup relative to it. Pairs the
// baseline does not cover (new kernels, new sweep levels) are left blank.
func (r *KernelReport) Compare(baseline *KernelReport) {
	prior := make(map[string]int64, len(baseline.Results))
	for _, b := range baseline.Results {
		prior[fmt.Sprintf("%s|%d", b.Kernel, b.Parallelism)] = b.NsPerOp
	}
	for i := range r.Results {
		res := &r.Results[i]
		if ns, ok := prior[fmt.Sprintf("%s|%d", res.Kernel, res.Parallelism)]; ok && ns > 0 && res.NsPerOp > 0 {
			res.BaselineNsPerOp = ns
			res.SpeedupVsBaseline = float64(ns) / float64(res.NsPerOp)
		}
	}
}

// CheckRegression returns an error naming every measurement whose ns/op
// regressed more than tolerance (fractional: 0.10 means 10%) against its
// baseline column. Results without a baseline entry are skipped — a new
// kernel or sweep level cannot regress. Call Compare first.
func (r *KernelReport) CheckRegression(tolerance float64) error {
	var bad []string
	for _, res := range r.Results {
		if res.BaselineNsPerOp <= 0 {
			continue
		}
		limit := float64(res.BaselineNsPerOp) * (1 + tolerance)
		if float64(res.NsPerOp) > limit {
			pct := 100 * (float64(res.NsPerOp)/float64(res.BaselineNsPerOp) - 1)
			bad = append(bad, fmt.Sprintf("%s p=%d: %d ns/op vs baseline %d (+%.1f%%)",
				res.Kernel, res.Parallelism, res.NsPerOp, res.BaselineNsPerOp, pct))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("kernel ns/op regressed more than %.0f%%:\n  %s",
			tolerance*100, strings.Join(bad, "\n  "))
	}
	return nil
}

// Table renders the sweep in the same tabular style as the figure runners.
// Baseline columns appear only when Compare filled them in.
func (r *KernelReport) Table() string {
	hasBase := false
	for _, res := range r.Results {
		if res.BaselineNsPerOp > 0 {
			hasBase = true
			break
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Kernel forwards (GOMAXPROCS=%d)\n", r.GoMaxProcs)
	fmt.Fprintf(&sb, "%-24s %4s %12s %9s %11s %12s", "kernel", "p", "ns/op", "speedup", "allocs/op", "bytes/op")
	if hasBase {
		fmt.Fprintf(&sb, " %12s %9s", "base ns/op", "vs base")
	}
	sb.WriteByte('\n')
	for _, res := range r.Results {
		fmt.Fprintf(&sb, "%-24s %4d %12d %8.2fx %11d %12d",
			res.Kernel, res.Parallelism, res.NsPerOp, res.Speedup, res.AllocsPerOp, res.BytesPerOp)
		if hasBase {
			if res.BaselineNsPerOp > 0 {
				fmt.Fprintf(&sb, " %12d %8.2fx", res.BaselineNsPerOp, res.SpeedupVsBaseline)
			} else {
				fmt.Fprintf(&sb, " %12s %9s", "-", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the report as the BENCH_kernels.json baseline format.
func (r *KernelReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
