package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestKernelsSweepShape(t *testing.T) {
	rep, err := Kernels(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoMaxProcs < 1 || len(rep.Levels) < 1 || rep.Levels[0] != 1 {
		t.Fatalf("bad sweep header: %+v", rep)
	}
	wantResults := 5 * len(rep.Levels)
	if len(rep.Results) != wantResults {
		t.Fatalf("want %d results (5 kernels x %d levels), got %d", wantResults, len(rep.Levels), len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Errorf("%s p=%d: non-positive ns/op", r.Kernel, r.Parallelism)
		}
		if r.Parallelism == 1 && r.Speedup != 1 {
			t.Errorf("%s: serial speedup must be exactly 1, got %v", r.Kernel, r.Speedup)
		}
		// Scratch reuse: steady-state forwards allocate only the output
		// tensor, closures, and per-call bookkeeping — strictly bounded.
		// Parallel dispatch adds a few heap allocations per par.For call
		// (waitgroup, chunk counter, two shared closures); the LSTM's 16
		// sequential timestep dispatches are the worst case. The bound is
		// independent of tensor sizes either way — a scratch-arena leak
		// shows up as hundreds of allocs, not dozens.
		limit := int64(16)
		if r.Parallelism > 1 {
			limit = 96
		}
		if r.AllocsPerOp > limit {
			t.Errorf("%s p=%d: %d allocs/op (limit %d), scratch arena is not being reused", r.Kernel, r.Parallelism, r.AllocsPerOp, limit)
		}
	}
	table := rep.Table()
	if !strings.Contains(table, "conv3x3-c32-28x28") || !strings.Contains(table, "lstm-t16-h128") {
		t.Fatalf("table missing kernels:\n%s", table)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round KernelReport
	if err := json.Unmarshal(js, &round); err != nil {
		t.Fatalf("baseline JSON does not round-trip: %v", err)
	}
	if len(round.Results) != len(rep.Results) {
		t.Fatal("JSON round-trip lost results")
	}
}

// TestKernelReportCompareAndCheck pins the baseline-comparison columns and
// the 10% regression gate on hand-built reports, independent of machine
// speed.
func TestKernelReportCompareAndCheck(t *testing.T) {
	base := &KernelReport{Results: []KernelResult{
		{Kernel: "k", Parallelism: 1, NsPerOp: 1000},
	}}
	rep := &KernelReport{Results: []KernelResult{
		{Kernel: "k", Parallelism: 1, NsPerOp: 500},
		{Kernel: "k", Parallelism: 2, NsPerOp: 400}, // no baseline entry
	}}
	rep.Compare(base)
	if rep.Results[0].BaselineNsPerOp != 1000 || rep.Results[0].SpeedupVsBaseline != 2 {
		t.Fatalf("comparison columns wrong: %+v", rep.Results[0])
	}
	if rep.Results[1].BaselineNsPerOp != 0 {
		t.Fatalf("uncovered pair gained a baseline: %+v", rep.Results[1])
	}
	table := rep.Table()
	if !strings.Contains(table, "base ns/op") || !strings.Contains(table, "2.00x") {
		t.Fatalf("table missing baseline columns:\n%s", table)
	}
	if err := rep.CheckRegression(0.10); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}

	// Exactly at the limit passes; just past it fails and names the pair.
	atLimit := &KernelReport{Results: []KernelResult{{Kernel: "k", Parallelism: 1, NsPerOp: 1100}}}
	atLimit.Compare(base)
	if err := atLimit.CheckRegression(0.10); err != nil {
		t.Fatalf("exactly +10%% must pass: %v", err)
	}
	over := &KernelReport{Results: []KernelResult{{Kernel: "k", Parallelism: 1, NsPerOp: 1111}}}
	over.Compare(base)
	err := over.CheckRegression(0.10)
	if err == nil || !strings.Contains(err.Error(), "k p=1") {
		t.Fatalf("want regression error naming the pair, got %v", err)
	}

	// Without Compare there are no baseline columns, so nothing can fail.
	fresh := &KernelReport{Results: []KernelResult{{Kernel: "k", Parallelism: 1, NsPerOp: 999999}}}
	if err := fresh.CheckRegression(0.10); err != nil {
		t.Fatalf("report without baselines must pass vacuously: %v", err)
	}
}

// TestKernelTableWithoutBaseline: no Compare call, no baseline columns.
func TestKernelTableWithoutBaseline(t *testing.T) {
	rep := &KernelReport{Results: []KernelResult{{Kernel: "k", Parallelism: 1, NsPerOp: 10, Speedup: 1}}}
	if table := rep.Table(); strings.Contains(table, "base ns/op") {
		t.Fatalf("baseline columns rendered without a baseline:\n%s", table)
	}
}
