package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestKernelsSweepShape(t *testing.T) {
	rep, err := Kernels(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoMaxProcs < 1 || len(rep.Levels) < 1 || rep.Levels[0] != 1 {
		t.Fatalf("bad sweep header: %+v", rep)
	}
	wantResults := 5 * len(rep.Levels)
	if len(rep.Results) != wantResults {
		t.Fatalf("want %d results (5 kernels x %d levels), got %d", wantResults, len(rep.Levels), len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Errorf("%s p=%d: non-positive ns/op", r.Kernel, r.Parallelism)
		}
		if r.Parallelism == 1 && r.Speedup != 1 {
			t.Errorf("%s: serial speedup must be exactly 1, got %v", r.Kernel, r.Speedup)
		}
		// Scratch reuse: steady-state forwards allocate only the output
		// tensor, closures, and per-call bookkeeping — strictly bounded.
		if r.AllocsPerOp > 16 {
			t.Errorf("%s p=%d: %d allocs/op, scratch arena is not being reused", r.Kernel, r.Parallelism, r.AllocsPerOp)
		}
	}
	table := rep.Table()
	if !strings.Contains(table, "conv3x3-c32-28x28") || !strings.Contains(table, "lstm-t16-h128") {
		t.Fatalf("table missing kernels:\n%s", table)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round KernelReport
	if err := json.Unmarshal(js, &round); err != nil {
		t.Fatalf("baseline JSON does not round-trip: %v", err)
	}
	if len(round.Results) != len(rep.Results) {
		t.Fatal("JSON round-trip lost results")
	}
}
