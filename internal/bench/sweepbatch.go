package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"gillis/internal/batching"
	"gillis/internal/core"
	"gillis/internal/gateway"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/workload"
)

// The SweepBatch figure measures cross-query batching end to end: Poisson
// arrival traces replay through the batching gateway at batch size × rate ×
// planner, comparing the latency-optimal plan against the throughput-optimal
// plan chosen *for* that batch size (DESIGN.md §13). The axes are modeled
// throughput (queries/s), tail latency, and serving cost per query — billed
// milliseconds standing in for dollars. The JSON output is the checked-in
// BENCH_batch.json baseline.

// sweepBatchModel is the served model.
const sweepBatchModel = "resnet50"

// sweepBatchDelay bounds how long a forming batch may hold its oldest query.
const sweepBatchDelay = 250 * time.Millisecond

// SweepBatchRow is one (batch size, arrival rate, planner) gateway replay.
type SweepBatchRow struct {
	Batch   int     `json:"batch"`
	RateQPS float64 `json:"rate_qps"`
	// Planner is the plan-selection policy: "latency-opt" or "throughput-opt".
	Planner string `json:"planner"`
	// PredictedQP1K is the perf model's queries-per-1k-billed-ms objective
	// for the chosen plan at this batch size.
	PredictedQP1K float64 `json:"predicted_qp1k"`
	// Report is the gateway's full deterministic load report.
	Report *gateway.LoadReport `json:"report"`
	// ThroughputQPS is served queries per second of makespan.
	ThroughputQPS float64 `json:"throughput_qps"`
	// CostPerQueryMs is billed milliseconds (prewarming included) per
	// served query; QueriesPer1KBilledMs is its reciprocal scaled to a
	// thousand billed milliseconds — the throughput-per-cost axis.
	CostPerQueryMs       float64 `json:"cost_per_query_ms"`
	QueriesPer1KBilledMs float64 `json:"queries_per_1k_billed_ms"`
}

// SweepBatchReport is the full sweep.
type SweepBatchReport struct {
	Model    string          `json:"model"`
	Platform string          `json:"platform"`
	SLOMs    float64         `json:"slo_ms"`
	Rows     []SweepBatchRow `json:"rows"`
}

// SweepBatch runs the sweep on Lambda: batch size × arrival rate × planner.
// Quick mode trims to the highest rate over a short horizon.
func SweepBatch(ctx *Context) (*SweepBatchReport, error) {
	batches := []int{1, 4, 8}
	rates := []float64{4, 8}
	horizon := 30 * time.Second
	if ctx.Quick {
		rates = rates[1:]
		horizon = 12 * time.Second
	}
	units, err := ctx.Units(sweepBatchModel)
	if err != nil {
		return nil, err
	}
	pm, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	cfg := pm.Platform()

	// Calibrate the SLO from warm single-query serving on the batch-1
	// latency-optimal plan, with headroom for batch forming (the delay
	// bound) and batched rounds.
	calPlan, _, err := core.LatencyOptimal(pm, units, core.Config{})
	if err != nil {
		return nil, err
	}
	warmMs, err := calibrateWarmMs(cfg, ctx.Seed, units, calPlan)
	if err != nil {
		return nil, fmt.Errorf("bench: batch calibration: %w", err)
	}
	maxBatch := batches[len(batches)-1]
	sloMs := round3(float64(maxBatch)*warmMs + float64(sweepBatchDelay)/1e6 + 0.6*cfg.ColdStartMs)

	report := &SweepBatchReport{Model: sweepBatchModel, Platform: "lambda", SLOMs: sloMs}
	for _, batch := range batches {
		pcfg := core.Config{Batch: batch}
		latPlan, _, err := core.LatencyOptimal(pm, units, pcfg)
		if err != nil {
			return nil, err
		}
		thrPlan, _, err := core.ThroughputOptimal(pm, units, pcfg)
		if err != nil {
			return nil, err
		}
		for _, pl := range []struct {
			name string
			plan *partition.Plan
		}{
			{"latency-opt", latPlan},
			{"throughput-opt", thrPlan},
		} {
			pred, err := pm.PredictPlanBatch(units, pl.plan, batch)
			if err != nil {
				return nil, err
			}
			for ri, rate := range rates {
				arrivals, err := workload.Poisson(rand.New(rand.NewSource(ctx.Seed+int64(ri)*13)), rate, horizon)
				if err != nil {
					return nil, err
				}
				maxInFlight := 2*int(math.Ceil(rate*warmMs/1000)) + 2
				gcfg := gateway.Config{
					MaxInFlight: maxInFlight,
					QueueCap:    2 * maxInFlight,
					SLOMs:       sloMs,
				}
				if batch > 1 {
					gcfg.Batch = batching.Config{
						MaxBatch:   batch,
						MaxDelay:   sweepBatchDelay,
						EstServeMs: float64(batch) * warmMs,
					}
				}
				rep, err := replayBatch(cfg, ctx.Seed+int64(ri)*13, units, pl.plan, arrivals, gcfg)
				if err != nil {
					return nil, fmt.Errorf("bench: batch %d@%g/%s: %w", batch, rate, pl.name, err)
				}
				row := SweepBatchRow{
					Batch: batch, RateQPS: rate, Planner: pl.name,
					PredictedQP1K: round3(pred.QueriesPer1KBilledMs),
					Report:        rep,
				}
				if rep.MakespanMs > 0 {
					row.ThroughputQPS = round3(float64(rep.Served) / (rep.MakespanMs / 1000))
				}
				if billed := rep.BilledMs + rep.PrewarmBilledMs; billed > 0 && rep.Served > 0 {
					row.CostPerQueryMs = round3(float64(billed) / float64(rep.Served))
					row.QueriesPer1KBilledMs = round3(float64(rep.Served) * 1000 / float64(billed))
				}
				report.Rows = append(report.Rows, row)
			}
		}
	}
	return report, nil
}

// replayBatch runs one gateway replay on a fresh platform.
func replayBatch(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan,
	arrivals []time.Duration, gcfg gateway.Config) (*gateway.LoadReport, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
	if err != nil {
		return nil, err
	}
	rep, _, err := gateway.Run(d, arrivals, gcfg)
	return rep, err
}

// At returns the row for one (batch, rate, planner) combination.
func (r *SweepBatchReport) At(batch int, rate float64, planner string) *SweepBatchRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Batch == batch && row.RateQPS == rate && row.Planner == planner {
			return row
		}
	}
	return nil
}

// MaxBatch returns the largest batch size in the sweep.
func (r *SweepBatchReport) MaxBatch() int {
	max := 0
	for _, row := range r.Rows {
		if row.Batch > max {
			max = row.Batch
		}
	}
	return max
}

// Table renders the sweep in the figure runners' tabular style.
func (r *SweepBatchReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Batch sweep: %s on %s behind the batching gateway (SLO %.0f ms)\n", r.Model, r.Platform, r.SLOMs)
	fmt.Fprintf(&sb, "%5s %5s %-15s │ %6s %8s %7s %7s %5s │ %9s %8s %8s\n",
		"batch", "rate", "planner", "slo%", "thruput", "p50", "p99", "shed", "cost/qry", "q/1kbms", "pred")
	for _, row := range r.Rows {
		rep := row.Report
		fmt.Fprintf(&sb, "%5d %5.0f %-15s │ %6.1f %8.2f %7.0f %7.0f %5d │ %9.0f %8.3f %8.3f\n",
			row.Batch, row.RateQPS, row.Planner,
			rep.SLOPct, row.ThroughputQPS, rep.P50Ms, rep.P99Ms, rep.Shed,
			row.CostPerQueryMs, row.QueriesPer1KBilledMs, row.PredictedQP1K)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the report as the BENCH_batch.json baseline format.
func (r *SweepBatchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
