package bench

import (
	"strings"
	"testing"
)

// TestSweepBatchThroughputPin is the acceptance check for the batching
// figure: at the largest batch size the throughput-optimal planner must
// attain at least the queries-per-billed-time of the latency-optimal
// planner, both as predicted by the perf model and as replayed through
// the batching gateway.
func TestSweepBatchThroughputPin(t *testing.T) {
	report, err := SweepBatch(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: 3 batch sizes x 1 rate x 2 planners.
	if len(report.Rows) != 6 {
		t.Fatalf("quick sweep should be 3 batches x 1 rate x 2 planners, got %d rows", len(report.Rows))
	}
	maxBatch := report.MaxBatch()
	if maxBatch < 2 {
		t.Fatalf("sweep has no real batching, max batch %d", maxBatch)
	}
	lat := report.At(maxBatch, 8, "latency-opt")
	thr := report.At(maxBatch, 8, "throughput-opt")
	if lat == nil || thr == nil {
		t.Fatalf("missing rows at batch %d: %+v", maxBatch, report.Rows)
	}
	if thr.PredictedQP1K < lat.PredictedQP1K {
		t.Errorf("predicted objective regressed: throughput-opt %.3f < latency-opt %.3f q/1k-billed-ms",
			thr.PredictedQP1K, lat.PredictedQP1K)
	}
	if thr.QueriesPer1KBilledMs < lat.QueriesPer1KBilledMs {
		t.Errorf("replayed objective regressed: throughput-opt %.3f < latency-opt %.3f q/1k-billed-ms",
			thr.QueriesPer1KBilledMs, lat.QueriesPer1KBilledMs)
	}
	for _, row := range report.Rows {
		if row.Report == nil || row.Report.Served == 0 {
			t.Fatalf("batch %d/%s served nothing", row.Batch, row.Planner)
		}
		if row.Batch > 1 && row.Report.Batches == 0 {
			t.Errorf("batch %d/%s replay formed no batches", row.Batch, row.Planner)
		}
		if row.Batch == 1 && row.Report.Batches != 0 {
			t.Errorf("batch-1 row must use the unbatched path, formed %d batches", row.Report.Batches)
		}
	}
	if !strings.Contains(report.Table(), "throughput-opt") {
		t.Error("table missing planner rows")
	}
	js, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "\"queries_per_1k_billed_ms\"") || !strings.Contains(string(js), "\"planner\"") {
		t.Fatalf("baseline JSON malformed:\n%s", js)
	}
}

// TestSweepBatchDeterministic pins the baseline property: the same context
// reproduces byte-identical JSON.
func TestSweepBatchDeterministic(t *testing.T) {
	a, err := SweepBatch(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepBatch(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if string(ja) != string(jb) {
		t.Fatal("SweepBatch is not deterministic for a fixed seed")
	}
}
