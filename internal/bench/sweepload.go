package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"gillis/internal/core"
	"gillis/internal/gateway"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/workload"
)

// The SweepLoad figure drives the serving gateway with bursty arrival
// traces at increasing burst rates and compares autoscaling policies on the
// two axes the gateway exposes: SLO attainment and cost. Prewarming is
// charged (Config.PrewarmMs = the platform's cold-start time), so a policy
// that keeps pools warm buys its SLO attainment with real billed
// milliseconds — the cost-inflation column. The JSON output is the
// checked-in BENCH_load.json baseline.

// sweepLoadModel is the served model.
const sweepLoadModel = "resnet50"

// SweepLoadRow is one (platform, burst rate, policy) gateway replay.
type SweepLoadRow struct {
	Platform string  `json:"platform"`
	BurstQPS float64 `json:"burst_qps"`
	Policy   string  `json:"policy"`
	// Report is the gateway's full deterministic load report.
	Report *gateway.LoadReport `json:"report"`
	// CostInflation is this policy's cost-per-1k over NonePolicy's on the
	// same platform and trace (1.0 for NonePolicy itself).
	CostInflation float64 `json:"cost_inflation"`
}

// SweepLoadReport is the full sweep plus the per-platform SLO deadlines
// (calibrated from warm serving latency) the attainment numbers are
// against.
type SweepLoadReport struct {
	Model string `json:"model"`
	// SLOMs maps platform name to the calibrated per-query deadline.
	SLOMs map[string]float64 `json:"slo_ms"`
	Rows  []SweepLoadRow     `json:"rows"`
}

// sweepSpec builds the arrival process for one burst rate: steady 2 qps
// background with four-second bursts at the swept rate every 20 s.
func sweepSpec(burstQPS float64) workload.BurstSpec {
	return workload.BurstSpec{
		BaseRate:  2,
		BurstRate: burstQPS,
		Period:    20 * time.Second,
		BurstLen:  4 * time.Second,
	}
}

// sweepPolicies returns the three policies under comparison for one spec.
func sweepPolicies(spec workload.BurstSpec, estServeMs float64) []gateway.Policy {
	return []gateway.Policy{
		gateway.NonePolicy{},
		gateway.TargetConcurrency{Headroom: 1},
		gateway.BurstAware{Spec: spec, EstServeMs: estServeMs, LeadMs: 500},
	}
}

// calibrateWarmMs measures the end-to-end client latency of warm serving
// (the max of three warm queries) on a fresh platform — the gateway sweep
// derives its SLO deadline and the burst-aware policy's service-time
// estimate from it.
func calibrateWarmMs(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan) (float64, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	var warmMs float64
	var mErr error
	env.Go("calibrate", func(proc *simnet.Proc) {
		d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
		if err != nil {
			mErr = err
			return
		}
		if err := d.Prewarm(); err != nil {
			mErr = err
			return
		}
		for i := 0; i < 3; i++ {
			before := proc.Now()
			if _, err := d.Serve(proc, nil); err != nil {
				mErr = err
				return
			}
			if ms := float64(proc.Now()-before) / 1e6; ms > warmMs {
				warmMs = ms
			}
		}
	})
	if err := env.Run(); err != nil {
		return 0, err
	}
	if mErr != nil {
		return 0, mErr
	}
	return warmMs, nil
}

// replayPolicy runs one gateway replay on a fresh platform.
func replayPolicy(cfg platform.Config, seed int64, units []*partition.Unit, plan *partition.Plan,
	arrivals []time.Duration, sloMs float64, maxInFlight int, pol gateway.Policy) (*gateway.LoadReport, error) {
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
	if err != nil {
		return nil, err
	}
	rep, _, err := gateway.Run(d, arrivals, gateway.Config{
		MaxInFlight: maxInFlight,
		QueueCap:    2 * maxInFlight,
		SLOMs:       sloMs,
		Policy:      pol,
	})
	return rep, err
}

// SweepLoad runs the sweep: burst rate × policy on each platform. Quick
// mode trims to Lambda at the highest burst rate over a 20 s horizon.
func SweepLoad(ctx *Context) (*SweepLoadReport, error) {
	platforms := []string{"lambda", "gcf", "knix"}
	burstRates := []float64{5, 10, 20}
	horizon := 60 * time.Second
	if ctx.Quick {
		platforms = platforms[:1]
		burstRates = burstRates[2:]
		horizon = 20 * time.Second
	}
	units, err := ctx.Units(sweepLoadModel)
	if err != nil {
		return nil, err
	}
	report := &SweepLoadReport{Model: sweepLoadModel, SLOMs: make(map[string]float64)}
	for pi, pname := range platforms {
		pm, err := ctx.Model(pname)
		if err != nil {
			return nil, err
		}
		plan, _, err := core.LatencyOptimal(pm, units, core.Config{})
		if err != nil {
			return nil, err
		}
		cfg := pm.Platform()
		// The gateway's serving economics: pools drain between bursts, and
		// warmth costs a cold-start's worth of billed time per instance.
		cfg.WarmIdleMs = 8000
		cfg.PrewarmMs = cfg.ColdStartMs
		seed := ctx.Seed + int64(pi)*101

		warmMs, err := calibrateWarmMs(cfg, seed, units, plan)
		if err != nil {
			return nil, fmt.Errorf("bench: load calibration on %s: %w", pname, err)
		}
		// Warm queries attain with ~60%-of-a-cold-start headroom for
		// queueing; a query that pays a cold start (or queues behind one)
		// violates.
		sloMs := round3(warmMs + 0.6*cfg.ColdStartMs)
		report.SLOMs[pname] = sloMs

		for ri, rate := range burstRates {
			spec := sweepSpec(rate)
			arrivals, err := workload.Bursty(rand.New(rand.NewSource(seed+int64(ri)*7)), spec, horizon)
			if err != nil {
				return nil, err
			}
			// Enough slots to absorb the burst with warm service times;
			// queueing and shedding beyond that is the study's signal.
			maxInFlight := 2*int(math.Ceil(rate*warmMs/1000)) + 2
			var nonePer1K float64
			for _, pol := range sweepPolicies(spec, warmMs) {
				rep, err := replayPolicy(cfg, seed+int64(ri)*7, units, plan, arrivals, sloMs, maxInFlight, pol)
				if err != nil {
					return nil, fmt.Errorf("bench: load %s@%g/%s: %w", pname, rate, pol.Name(), err)
				}
				row := SweepLoadRow{Platform: pname, BurstQPS: rate, Policy: rep.Policy, Report: rep}
				if _, ok := pol.(gateway.NonePolicy); ok {
					nonePer1K = rep.CostPer1K
				}
				if nonePer1K > 0 {
					row.CostInflation = round3(rep.CostPer1K / nonePer1K)
				}
				report.Rows = append(report.Rows, row)
			}
		}
	}
	return report, nil
}

// AtRate returns the sweep's rows for one platform and burst rate, in
// policy order.
func (r *SweepLoadReport) AtRate(pname string, burstQPS float64) []SweepLoadRow {
	var rows []SweepLoadRow
	for _, row := range r.Rows {
		if row.Platform == pname && row.BurstQPS == burstQPS {
			rows = append(rows, row)
		}
	}
	return rows
}

// Table renders the sweep in the figure runners' tabular style.
func (r *SweepLoadReport) Table() string {
	var sb strings.Builder
	names := make([]string, 0, len(r.SLOMs))
	for n := range r.SLOMs {
		names = append(names, n)
	}
	sort.Strings(names)
	var slos []string
	for _, n := range names {
		slos = append(slos, fmt.Sprintf("%s %.0f ms", n, r.SLOMs[n]))
	}
	fmt.Fprintf(&sb, "Load sweep: %s behind the serving gateway (SLO: %s)\n", r.Model, strings.Join(slos, ", "))
	fmt.Fprintf(&sb, "%-8s %6s %-19s │ %6s %8s %7s %7s %5s %6s │ %9s %6s\n",
		"platform", "burst", "policy", "slo%", "goodput", "p50", "p99", "shed", "cold%", "cost/1k", "infl")
	for _, row := range r.Rows {
		rep := row.Report
		fmt.Fprintf(&sb, "%-8s %6.0f %-19s │ %6.1f %8.2f %7.0f %7.0f %5d %6.1f │ %9.0f %6.2f\n",
			row.Platform, row.BurstQPS, row.Policy,
			rep.SLOPct, rep.GoodputQPS, rep.P50Ms, rep.P99Ms, rep.Shed, rep.ColdStartPct,
			rep.CostPer1K, row.CostInflation)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the report as the BENCH_load.json baseline format.
func (r *SweepLoadReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
