package bench

import (
	"strings"
	"testing"
)

// TestSweepLoadPolicyOrdering is the acceptance check for the gateway
// figure: at the burst rate, schedule-driven prewarming must attain at
// least as much SLO as reactive prewarming, which must attain at least as
// much as no prewarming — and the policies' cost inflation must be
// reported relative to the no-prewarm floor.
func TestSweepLoadPolicyOrdering(t *testing.T) {
	report, err := SweepLoad(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("quick sweep should be 1 platform x 1 rate x 3 policies, got %d rows", len(report.Rows))
	}
	rows := report.AtRate("lambda", 20)
	if len(rows) != 3 {
		t.Fatalf("no lambda rows at the burst rate: %+v", report.Rows)
	}
	none, react, burst := rows[0], rows[1], rows[2]
	if none.Policy != "none" || react.Policy != "target-concurrency" || burst.Policy != "burst-aware" {
		t.Fatalf("unexpected policy order: %s, %s, %s", none.Policy, react.Policy, burst.Policy)
	}
	if !(burst.Report.SLOPct >= react.Report.SLOPct && react.Report.SLOPct >= none.Report.SLOPct) {
		t.Errorf("SLO attainment ordering violated: burst-aware %.1f%% >= target-concurrency %.1f%% >= none %.1f%%",
			burst.Report.SLOPct, react.Report.SLOPct, none.Report.SLOPct)
	}
	if burst.Report.SLOPct <= none.Report.SLOPct {
		t.Errorf("burst-aware must strictly beat no prewarming at the burst rate: %.1f%% vs %.1f%%",
			burst.Report.SLOPct, none.Report.SLOPct)
	}
	if none.CostInflation != 1 {
		t.Errorf("NonePolicy is the cost floor, inflation %.3f", none.CostInflation)
	}
	for _, row := range []SweepLoadRow{react, burst} {
		if row.CostInflation < 1 {
			t.Errorf("%s: prewarming cannot cost less than not prewarming (inflation %.3f)", row.Policy, row.CostInflation)
		}
		if row.Report.PrewarmBilledMs == 0 {
			t.Errorf("%s: no prewarm spend recorded", row.Policy)
		}
	}
	if none.Report.PrewarmBilledMs != 0 {
		t.Errorf("NonePolicy spent %d ms prewarming", none.Report.PrewarmBilledMs)
	}
	if !strings.Contains(report.Table(), "burst-aware") {
		t.Error("table missing policy rows")
	}
	js, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), "\"slo_pct\"") || !strings.Contains(string(js), "\"cost_inflation\"") {
		t.Fatalf("baseline JSON malformed:\n%s", js)
	}
}

// TestSweepLoadDeterministic pins the baseline property: the same context
// reproduces byte-identical JSON.
func TestSweepLoadDeterministic(t *testing.T) {
	a, err := SweepLoad(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepLoad(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if string(ja) != string(jb) {
		t.Fatal("SweepLoad is not deterministic for a fixed seed")
	}
}
