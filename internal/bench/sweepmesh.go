package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"gillis/internal/gateway"
	"gillis/internal/mesh"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/workload"
)

// The SweepMesh figure drives the multi-model serving mesh with Zipf-skewed
// catalog traffic and compares LRU residency caching against a no-cache
// baseline that refetches the model for every query. The axes are the three
// knobs a catalog operator turns: how many models share the pool, how
// skewed their popularity is, and how many instances the pool holds. Loads
// are charged like autoscaler prewarming (Config.PrewarmMs = the cold-start
// time), so the cache's hit rate shows up directly in SLO attainment and
// cost per query. The JSON output is the checked-in BENCH_mesh.json
// baseline.

// meshZoo lists the catalog models in popularity-rank order (first = most
// popular). Measured resident sizes span ~8–30 MB, so swept catalog
// prefixes stress the pool's memory budget at different depths.
var meshZoo = []string{
	"mobilenet-mini", "rnn-tiny2", "mobilenet-mini-w2",
	"rnn-tiny4", "rnn-tiny6", "mobilenet-mini-w3",
}

// sweepMeshMemMB sizes each instance: every zoo model fits alone
// (largest measured ~30 MB), but deep catalogs cannot stay fully resident
// on small pools.
const sweepMeshMemMB = 36

// SweepMeshRow is one (catalog size, Zipf skew, pool size, policy) replay.
type SweepMeshRow struct {
	Models    int     `json:"models"`
	ZipfS     float64 `json:"zipf_s"`
	Instances int     `json:"instances"`
	// Policy is "lru" (capacity-constrained residency with LRU eviction)
	// or "nocache" (every query refetches the model).
	Policy string `json:"policy"`
	// Report is the gateway's full deterministic load report; Mesh the
	// placement layer's accounting for the same replay.
	Report *gateway.LoadReport `json:"report"`
	Mesh   *mesh.Report        `json:"mesh"`
	// CostInflation is this policy's cost-per-1k over the LRU policy's on
	// the same cell (1.0 for LRU itself).
	CostInflation float64 `json:"cost_inflation"`
}

// SweepMeshReport is the full sweep plus the calibrated SLO deadline the
// attainment numbers are against.
type SweepMeshReport struct {
	Catalog       []string `json:"catalog"`
	InstanceMemMB int      `json:"instance_mem_mb"`
	// SLOMs is calibrated from the slowest catalog model's warm serving
	// latency: warm hits attain, queries that pay a storage fetch for a
	// large model do not.
	SLOMs float64        `json:"slo_ms"`
	Rows  []SweepMeshRow `json:"rows"`
}

// meshSpecs builds catalog entries for the first n zoo models, each under a
// single all-on-master group plan (the mesh cares about sizes and
// placement, not partition structure).
func meshSpecs(ctx *Context, n int) ([]mesh.ModelSpec, error) {
	specs := make([]mesh.ModelSpec, 0, n)
	for _, name := range meshZoo[:n] {
		units, err := ctx.Units(name)
		if err != nil {
			return nil, err
		}
		plan := &partition.Plan{Model: name, Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}}}
		if err := plan.Validate(units); err != nil {
			return nil, err
		}
		specs = append(specs, mesh.ModelSpec{ID: name, Units: units, Plan: plan})
	}
	return specs, nil
}

// meshPlatformCfg is the mesh sweep's serving economics: pools stay warm
// across the replay (residency, not idle expiry, is the study's signal) and
// every model load bills a cold-start's worth of warm-up time.
func meshPlatformCfg() platform.Config {
	cfg := platform.AWSLambda()
	cfg.WarmIdleMs = 300000
	cfg.PrewarmMs = cfg.ColdStartMs
	return cfg
}

// calibrateMeshWarmMs measures the slowest catalog model's warm serving
// latency on a fresh single-instance mesh (loads prepaid, so only the serve
// path is timed).
func calibrateMeshWarmMs(ctx *Context, n int) (float64, error) {
	specs, err := meshSpecs(ctx, n)
	if err != nil {
		return 0, err
	}
	var warmMs float64
	for _, spec := range specs {
		env := simnet.NewEnv()
		p := platform.New(env, meshPlatformCfg(), ctx.Seed)
		m, err := mesh.New(p, mesh.Config{Instances: 1, InstanceMemMB: sweepMeshMemMB}, []mesh.ModelSpec{spec})
		if err != nil {
			return 0, err
		}
		var mErr error
		env.Go("calibrate", func(proc *simnet.Proc) {
			for i := 0; i < 3; i++ {
				d, release, err := m.Acquire(proc, spec.ID)
				if err != nil {
					mErr = err
					return
				}
				before := proc.Now()
				_, err = d.Serve(proc, nil)
				release()
				if err != nil {
					mErr = err
					return
				}
				if ms := float64(proc.Now()-before) / 1e6; i > 0 && ms > warmMs {
					warmMs = ms
				}
			}
		})
		if err := env.Run(); err != nil {
			return 0, err
		}
		if mErr != nil {
			return 0, mErr
		}
	}
	return warmMs, nil
}

// replayMesh runs one mesh-routed gateway replay on a fresh platform.
func replayMesh(ctx *Context, nModels int, zipfS float64, instances int, noCache bool,
	sloMs float64, horizon time.Duration) (*gateway.LoadReport, *mesh.Report, error) {
	specs, err := meshSpecs(ctx, nModels)
	if err != nil {
		return nil, nil, err
	}
	spec := workload.ZipfSpec{Models: meshZoo[:nModels], S: zipfS}
	seed := ctx.Seed + int64(nModels)*101 + int64(zipfS*1000)*13 + int64(instances)*7
	arrivals, err := workload.MultiModel(rand.New(rand.NewSource(seed)), spec, 2, horizon)
	if err != nil {
		return nil, nil, err
	}
	env := simnet.NewEnv()
	p := platform.New(env, meshPlatformCfg(), seed)
	m, err := mesh.New(p, mesh.Config{
		Instances:      instances,
		InstanceMemMB:  sweepMeshMemMB,
		MaxPerInstance: 4,
		NoCache:        noCache,
	}, specs)
	if err != nil {
		return nil, nil, err
	}
	rep, _, err := gateway.Run(m, workload.Times(arrivals), gateway.Config{
		MaxInFlight: 4,
		QueueCap:    8,
		SLOMs:       sloMs,
		Model:       func(i int) string { return arrivals[i].Model },
		Router:      m,
	})
	if err != nil {
		return nil, nil, err
	}
	return rep, m.Report(), nil
}

// SweepMesh runs the sweep: catalog size × Zipf skew × pool size, each cell
// replayed under LRU caching and the no-cache baseline. Quick mode trims to
// one cell over a shorter horizon.
func SweepMesh(ctx *Context) (*SweepMeshReport, error) {
	catalogSizes := []int{3, 6}
	zipfSkews := []float64{0.7, 1.1}
	poolSizes := []int{2, 4}
	horizon := 60 * time.Second
	if ctx.Quick {
		catalogSizes = []int{4}
		zipfSkews = []float64{1.1}
		poolSizes = []int{2}
		horizon = 30 * time.Second
	}
	maxCatalog := catalogSizes[len(catalogSizes)-1]

	warmMs, err := calibrateMeshWarmMs(ctx, maxCatalog)
	if err != nil {
		return nil, fmt.Errorf("bench: mesh calibration: %w", err)
	}
	// Warm hits attain with half-a-cold-start headroom for queueing; a
	// query that waits on a sizable storage fetch violates.
	cfg := meshPlatformCfg()
	sloMs := round3(warmMs + 0.5*cfg.ColdStartMs)

	report := &SweepMeshReport{
		Catalog:       meshZoo[:maxCatalog],
		InstanceMemMB: sweepMeshMemMB,
		SLOMs:         sloMs,
	}
	for _, nModels := range catalogSizes {
		for _, s := range zipfSkews {
			for _, instances := range poolSizes {
				var lruPer1K float64
				for _, noCache := range []bool{false, true} {
					rep, mrep, err := replayMesh(ctx, nModels, s, instances, noCache, sloMs, horizon)
					if err != nil {
						return nil, fmt.Errorf("bench: mesh %d models s=%g x%d nocache=%v: %w",
							nModels, s, instances, noCache, err)
					}
					row := SweepMeshRow{
						Models: nModels, ZipfS: s, Instances: instances,
						Policy: "lru", Report: rep, Mesh: mrep,
					}
					if noCache {
						row.Policy = "nocache"
					} else {
						lruPer1K = rep.CostPer1K
					}
					if lruPer1K > 0 {
						row.CostInflation = round3(rep.CostPer1K / lruPer1K)
					}
					report.Rows = append(report.Rows, row)
				}
			}
		}
	}
	return report, nil
}

// AtCell returns the sweep's rows for one (catalog size, skew, pool size)
// cell, LRU first.
func (r *SweepMeshReport) AtCell(models int, zipfS float64, instances int) []SweepMeshRow {
	var rows []SweepMeshRow
	for _, row := range r.Rows {
		if row.Models == models && row.ZipfS == zipfS && row.Instances == instances {
			rows = append(rows, row)
		}
	}
	return rows
}

// Table renders the sweep in the figure runners' tabular style.
func (r *SweepMeshReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Mesh sweep: %d-model catalog on %d MB instances (SLO %.0f ms)\n",
		len(r.Catalog), r.InstanceMemMB, r.SLOMs)
	fmt.Fprintf(&sb, "%6s %5s %5s %-8s │ %6s %6s %6s %6s │ %6s %8s %9s %6s\n",
		"models", "zipf", "pool", "policy", "hit%", "loads", "evict", "shed", "slo%", "p99", "cost/1k", "infl")
	for _, row := range r.Rows {
		rep, m := row.Report, row.Mesh
		fmt.Fprintf(&sb, "%6d %5.1f %5d %-8s │ %6.1f %6d %6d %6d │ %6.1f %8.0f %9.0f %6.2f\n",
			row.Models, row.ZipfS, row.Instances, row.Policy,
			m.HitPct, m.Loads, m.Evictions, rep.Shed,
			rep.SLOPct, rep.P99Ms, rep.CostPer1K, row.CostInflation)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the report as the BENCH_mesh.json baseline format.
func (r *SweepMeshReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
