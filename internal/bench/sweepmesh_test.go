package bench

import (
	"strings"
	"testing"
)

// TestSweepMeshCacheOrdering is the acceptance check for the mesh figure:
// LRU residency caching must strictly beat the no-cache baseline on hit
// rate and SLO attainment, at equal or lower cost per query.
func TestSweepMeshCacheOrdering(t *testing.T) {
	report, err := SweepMesh(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 2 {
		t.Fatalf("quick sweep should be 1 cell x 2 policies, got %d rows", len(report.Rows))
	}
	rows := report.AtCell(4, 1.1, 2)
	if len(rows) != 2 {
		t.Fatalf("quick cell missing: %+v", report.Rows)
	}
	lru, nocache := rows[0], rows[1]
	if lru.Policy != "lru" || nocache.Policy != "nocache" {
		t.Fatalf("unexpected policy order: %s, %s", lru.Policy, nocache.Policy)
	}
	if lru.Mesh.HitPct <= nocache.Mesh.HitPct {
		t.Errorf("LRU must strictly beat no-cache on hit rate: %.1f%% vs %.1f%%",
			lru.Mesh.HitPct, nocache.Mesh.HitPct)
	}
	if nocache.Mesh.Hits != 0 {
		t.Errorf("no-cache baseline recorded %d hits", nocache.Mesh.Hits)
	}
	if lru.Report.SLOPct <= nocache.Report.SLOPct {
		t.Errorf("LRU must strictly beat no-cache on SLO attainment: %.1f%% vs %.1f%%",
			lru.Report.SLOPct, nocache.Report.SLOPct)
	}
	if lru.Report.CostPer1K > nocache.Report.CostPer1K {
		t.Errorf("caching cannot cost more than refetching every query: %.0f vs %.0f ms/1k",
			lru.Report.CostPer1K, nocache.Report.CostPer1K)
	}
	if lru.CostInflation != 1 {
		t.Errorf("LRU is the cost floor, inflation %.3f", lru.CostInflation)
	}
	if nocache.CostInflation < 1 {
		t.Errorf("no-cache inflation below the floor: %.3f", nocache.CostInflation)
	}
	if lru.Mesh.Loads >= nocache.Mesh.Loads {
		t.Errorf("LRU must fetch fewer copies: %d vs %d loads", lru.Mesh.Loads, nocache.Mesh.Loads)
	}
	if !strings.Contains(report.Table(), "nocache") {
		t.Error("table missing policy rows")
	}
	js, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"\"hit_pct\"", "\"cost_inflation\"", "\"slo_ms\"", "\"by_model\""} {
		if !strings.Contains(string(js), key) {
			t.Fatalf("baseline JSON missing %s:\n%s", key, js)
		}
	}
}

// TestSweepMeshDeterministic pins the baseline property: the same context
// reproduces byte-identical JSON.
func TestSweepMeshDeterministic(t *testing.T) {
	a, err := SweepMesh(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepMesh(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if string(ja) != string(jb) {
		t.Fatal("SweepMesh is not deterministic for a fixed seed")
	}
}
