package bench

import (
	"fmt"
	"strings"

	"gillis/internal/core"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/trace"
)

// TraceReport is one traced fork-join query: the Chrome trace-event JSON
// (gillis-bench -trace-json) plus a printable summary.
type TraceReport struct {
	Model     string
	Platform  string
	FaultRate float64
	LatencyMs float64
	BilledMs  int64
	Spans     int
	Faulted   int
	Resil     runtime.Resilience

	// Chrome is the trace in Chrome trace-event JSON (chrome://tracing,
	// Perfetto).
	Chrome []byte
}

// QueryTrace serves one traced query of the chaos workload — the paper's
// main VGG-16 model on Lambda under the given fault rate, with resilient
// serving — and exports its span tree. The platform seed is ctx.Seed, so the
// same seed reproduces the identical trace byte for byte.
func QueryTrace(ctx *Context, faultRate float64) (*TraceReport, error) {
	units, err := ctx.Units(chaosModel)
	if err != nil {
		return nil, err
	}
	pm, err := ctx.Model("lambda")
	if err != nil {
		return nil, err
	}
	plan, _, err := core.LatencyOptimal(pm, units, core.Config{})
	if err != nil {
		return nil, err
	}
	cfg := pm.Platform()
	cfg.Faults = chaosProfile(faultRate)

	env := simnet.NewEnv()
	p := platform.New(env, cfg, ctx.Seed)
	var (
		res    runtime.Result
		tr     *trace.Trace
		prefix string
		qerr   error
	)
	env.Go("client", func(proc *simnet.Proc) {
		d, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly, resilientOpts()...)
		if err != nil {
			qerr = err
			return
		}
		prefix = d.Prefix()
		if err := d.Prewarm(); err != nil {
			qerr = err
			return
		}
		res, tr, qerr = d.ServeTraced(proc, nil)
	})
	if err := env.Run(); err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, qerr
	}

	// Strip the process-order-dependent deployment prefix from function
	// names, so the same seed yields byte-identical trace files.
	ren := func(s string) string { return strings.ReplaceAll(s, prefix, chaosModel) }
	rep := &TraceReport{
		Model:     chaosModel,
		Platform:  "lambda",
		FaultRate: faultRate,
		LatencyMs: round3(res.LatencyMs),
		BilledMs:  res.BilledMs,
		Spans:     tr.Len(),
		Resil:     res.Resilience,
		Chrome:    tr.ChromeJSON(ren),
	}
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindInvoke && s.Err != "" {
			rep.Faulted++
		}
	}
	return rep, nil
}

// Table renders the traced query in the figure runners' tabular style.
func (r *TraceReport) Table() string {
	return fmt.Sprintf(
		"Traced query: %s on %s (fault rate %.2f)\n"+
			"  latency %.1f ms, billed %d ms, %d spans (%d faulted invocations)\n"+
			"  resilience: %d retries, %d hedges (%d won), %d fallbacks, %d extra billed ms",
		r.Model, r.Platform, r.FaultRate,
		r.LatencyMs, r.BilledMs, r.Spans, r.Faulted,
		r.Resil.Retries, r.Resil.Hedges, r.Resil.HedgesWon, r.Resil.Fallbacks, r.Resil.ExtraBilledMs)
}
