package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestQueryTraceDeterministic pins the -trace-json export: the same seed
// must yield the identical Chrome trace byte for byte, and the trace must be
// valid, non-trivial JSON.
func TestQueryTraceDeterministic(t *testing.T) {
	run := func() *TraceReport {
		ctx := NewContext(42)
		ctx.Quick = true
		r, err := QueryTrace(ctx, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !bytes.Equal(a.Chrome, b.Chrome) {
		t.Fatal("same seed produced different trace JSON")
	}
	var events []map[string]any
	if err := json.Unmarshal(a.Chrome, &events); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	if len(events) < 10 || a.Spans < 5 {
		t.Fatalf("suspiciously small trace: %d events, %d spans", len(events), a.Spans)
	}
	if a.BilledMs <= 0 {
		t.Fatalf("traced query billed %d ms", a.BilledMs)
	}
	tbl := a.Table()
	if !strings.Contains(tbl, chaosModel) || !strings.Contains(tbl, "spans") {
		t.Fatalf("unexpected table:\n%s", tbl)
	}
	for _, ev := range events {
		if name, _ := ev["name"].(string); strings.Contains(name, chaosModel+"-d") {
			t.Fatalf("deployment prefix leaked into trace name %q", name)
		}
	}
}
