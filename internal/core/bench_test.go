package core

import (
	"testing"

	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
)

func benchModelAndUnits(b *testing.B, name string) (*perf.Model, []*partition.Unit) {
	b.Helper()
	m, err := perf.Build(platform.AWSLambda(), 1, 2, 300)
	if err != nil {
		b.Fatal(err)
	}
	g, err := models.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	units, err := partition.Linearize(g)
	if err != nil {
		b.Fatal(err)
	}
	return m, units
}

func BenchmarkLatencyOptimalVGG16(b *testing.B) {
	m, units := benchModelAndUnits(b, "vgg16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LatencyOptimal(m, units, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSLOAwareEpisode(b *testing.B) {
	m, units := benchModelAndUnits(b, "vgg16")
	_, lo, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One policy-gradient batch (10 rollouts) per iteration.
		if _, err := SLOAware(m, units, lo.LatencyMs*2, SLOConfig{Episodes: 10, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
