package core

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/bayesopt"
	"gillis/internal/partition"
	"gillis/internal/perf"
)

// BOConfig tunes the Bayesian-optimization baseline.
type BOConfig struct {
	Config
	// Iters is the number of strategies evaluated.
	Iters int
	// Seed makes the search reproducible.
	Seed int64
}

func (c BOConfig) withDefaults() BOConfig {
	c.Config = c.Config.withDefaults()
	if c.Iters <= 0 {
		c.Iters = 80
	}
	return c
}

// BOResult reports the Bayesian-optimization outcome.
type BOResult struct {
	Plan  *partition.Plan
	Pred  perf.PlanPrediction
	Met   bool
	Evals int
}

// BayesOpt searches for a cost-minimal SLO-compliant strategy with the
// Cherrypick-style black-box baseline (§V-C): strategies are encoded as
// points of a hypercube, the billed cost (with an SLO-violation penalty) is
// modeled as a Gaussian process, and expected improvement drives sampling.
// Unlike the RL planner it cannot exploit the performance model's structure
// — it only observes point evaluations — which is exactly the disadvantage
// the paper demonstrates.
func BayesOpt(m *perf.Model, units []*partition.Unit, tmaxMs float64, cfg BOConfig) (BOResult, error) {
	if err := validateInputs(m, units); err != nil {
		return BOResult{}, err
	}
	if tmaxMs <= 0 {
		return BOResult{}, fmt.Errorf("core: SLO T_max must be positive, got %v", tmaxMs)
	}
	cfg = cfg.withDefaults()
	pc := newPredCache(m, units, 1)
	opts := newGroupOptions(cfg.PartCounts)
	dims := 2 * len(units)

	var best BOResult
	bestScore := math.Inf(1)
	objective := func(x []float64) float64 {
		plan, err := decodePlan(x, units, opts, pc)
		if err != nil {
			return 1e9
		}
		pred, err := m.PredictPlan(units, plan)
		if err != nil {
			return 1e9
		}
		met := !pred.OOM && pred.LatencyMs <= tmaxMs
		score := float64(pred.BilledMs)
		if pred.OOM {
			score = 5e6
		} else if pred.LatencyMs > tmaxMs {
			score = float64(pred.BilledMs) + 50*(pred.LatencyMs-tmaxMs)
		}
		record := false
		switch {
		case best.Plan == nil:
			record = true
		case met != best.Met:
			record = met
		default:
			record = score < bestScore
		}
		if record {
			best.Plan, best.Pred, best.Met = plan, pred, met
			bestScore = score
		}
		return score
	}
	res, err := bayesopt.Minimize(objective, dims, bayesopt.Config{Iters: cfg.Iters}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return BOResult{}, err
	}
	best.Evals = res.Evals
	if best.Plan == nil {
		return BOResult{}, fmt.Errorf("core: BO found no valid plan in %d evaluations", res.Evals)
	}
	return best, nil
}

// decodePlan maps a point of [0,1]^(2n) to a strategy: coordinate 2i picks
// unit i's action (join the open group, or start a new group with an
// option), with infeasible choices snapped to the nearest feasible one;
// coordinate 2i+1 at a group's first unit decides master participation.
func decodePlan(x []float64, units []*partition.Unit, opts *groupOptions, pc *predCache) (*partition.Plan, error) {
	n := len(units)
	type rawGroup struct {
		first, last int
		opt         partition.Option
		masterBit   float64
	}
	var groups []rawGroup
	k := len(opts.options)
	for i := 0; i < n; i++ {
		u := units[i]
		// Action 0 = join (given a wide slot so random points favor fused,
		// low-communication strategies), 1..K = new group with an option.
		var a int
		if x[2*i] < 0.35 {
			a = 0
		} else {
			a = 1 + int((x[2*i]-0.35)/0.65*float64(k))
			if a > k {
				a = k
			}
		}
		feasible := func(a int) bool {
			if a == 0 {
				if len(groups) == 0 {
					return false
				}
				g := groups[len(groups)-1]
				return joinFeasible(units, g.first, i, g.opt)
			}
			return newGroupFeasible(u, opts.options[a-1])
		}
		if !feasible(a) {
			found := false
			for d := 1; d <= k && !found; d++ {
				for _, c := range []int{a - d, a + d} {
					if c >= 0 && c <= k && feasible(c) {
						a = c
						found = true
						break
					}
				}
			}
			if !found {
				return nil, fmt.Errorf("core: no feasible action for unit %d", i)
			}
		}
		if a == 0 {
			groups[len(groups)-1].last = i
		} else {
			groups = append(groups, rawGroup{first: i, last: i, opt: opts.options[a-1], masterBit: x[2*i+1]})
		}
	}
	budget := int64(pc.model.Platform().WeightBudgetMB) * 1e6
	remaining := budget
	plan := &partition.Plan{Model: modelName(units)}
	for _, g := range groups {
		ext, err := pc.extent(g.first, g.last, g.opt)
		if err != nil {
			return nil, err
		}
		onMaster := g.masterBit > 0.5 && ext.WeightBytes <= remaining
		if onMaster {
			remaining -= ext.WeightBytes
		}
		plan.Groups = append(plan.Groups, partition.GroupPlan{First: g.first, Last: g.last, Option: g.opt, OnMaster: onMaster})
	}
	return plan, nil
}
