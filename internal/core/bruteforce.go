package core

import (
	"fmt"
	"math"

	"gillis/internal/partition"
	"gillis/internal/perf"
)

// BFConfig tunes the brute-force baseline.
type BFConfig struct {
	Config
	// MaxNodes caps the search-tree size; the search reports Exhausted =
	// false when the cap is hit (the paper notes full enumeration takes
	// over 24 hours even for VGG-11).
	MaxNodes int64
}

func (c BFConfig) withDefaults() BFConfig {
	c.Config = c.Config.withDefaults()
	if c.MaxNodes <= 0 {
		c.MaxNodes = 2_000_000
	}
	return c
}

// BFResult reports the brute-force search outcome.
type BFResult struct {
	Plan      *partition.Plan
	Pred      perf.PlanPrediction
	Met       bool
	Nodes     int64
	Exhausted bool // true if the whole space was enumerated
}

// BruteForce enumerates all grouping / parallelization / placement
// strategies that satisfy the latency SLO and returns the cheapest (§V-C
// baseline 1). Branch-and-bound pruning on accumulated latency and cost
// keeps it tractable for small models; MaxNodes bounds the worst case.
func BruteForce(m *perf.Model, units []*partition.Unit, tmaxMs float64, cfg BFConfig) (BFResult, error) {
	if err := validateInputs(m, units); err != nil {
		return BFResult{}, err
	}
	if tmaxMs <= 0 {
		return BFResult{}, fmt.Errorf("core: SLO T_max must be positive, got %v", tmaxMs)
	}
	cfg = cfg.withDefaults()
	pc := newPredCache(m, units, 1)
	budget := int64(m.Platform().WeightBudgetMB) * 1e6

	res := BFResult{Exhausted: true}
	bestCost := int64(math.MaxInt64)
	var cur []partition.GroupPlan
	gran := m.Platform().BillingGranMs

	var dfs func(at int, latMs float64, workerBilled int64, masterBytes int64) error
	dfs = func(at int, latMs float64, workerBilled int64, masterBytes int64) error {
		if res.Nodes >= cfg.MaxNodes {
			res.Exhausted = false
			return nil
		}
		res.Nodes++
		if at == len(units) {
			total := workerBilled + ceilGran(latMs, gran)
			if latMs <= tmaxMs && total < bestCost {
				bestCost = total
				groups := make([]partition.GroupPlan, len(cur))
				copy(groups, cur)
				res.Plan = &partition.Plan{Model: modelName(units), Groups: groups}
			}
			return nil
		}
		for last := at; last < len(units); last++ {
			opts, err := optionsFor(units, at, last, cfg.PartCounts)
			if err != nil {
				return err
			}
			for _, opt := range opts {
				ext, err := pc.extent(at, last, opt)
				if err != nil {
					return err
				}
				if ext.WeightBytes+ext.ActBytes > budget {
					continue
				}
				for _, onMaster := range []bool{false, true} {
					nextMaster := masterBytes
					if onMaster {
						nextMaster += ext.WeightBytes
						if nextMaster > budget {
							continue
						}
					}
					pred, err := pc.predict(partition.GroupPlan{First: at, Last: last, Option: opt, OnMaster: onMaster})
					if err != nil {
						return err
					}
					nextLat := latMs + pred.LatencyMs
					if nextLat > tmaxMs {
						continue // latency only grows; prune
					}
					nextBilled := workerBilled
					for _, w := range pred.WorkerMs {
						nextBilled += ceilGran(w, gran)
					}
					// Lower bound on final cost prunes dominated branches.
					if nextBilled+ceilGran(nextLat, gran) >= bestCost {
						continue
					}
					cur = append(cur, partition.GroupPlan{First: at, Last: last, Option: opt, OnMaster: onMaster})
					err = dfs(last+1, nextLat, nextBilled, nextMaster)
					cur = cur[:len(cur)-1]
					if err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := dfs(0, 0, 0, 0); err != nil {
		return BFResult{}, err
	}
	if res.Plan == nil {
		return res, fmt.Errorf("core: brute force found no SLO-compliant plan (T_max=%v ms, %d nodes)", tmaxMs, res.Nodes)
	}
	pred, err := m.PredictPlan(units, res.Plan)
	if err != nil {
		return BFResult{}, err
	}
	res.Pred = pred
	res.Met = !pred.OOM && pred.LatencyMs <= tmaxMs
	return res, nil
}

func ceilGran(ms float64, gran int64) int64 {
	if ms <= 0 {
		return 0
	}
	return int64(math.Ceil(ms/float64(gran))) * gran
}
