// Package core implements Gillis's model-partitioning algorithms — the
// paper's primary contribution: the latency-optimal dynamic program with
// master memory budgeting (§IV-B, Algorithm 1), the SLO-aware hierarchical
// reinforcement learner that minimizes billed cost subject to a latency SLO
// (§IV-C), and the brute-force baseline used to validate optimality on
// small models (§V-C).
package core

import (
	"fmt"
	"strings"

	"gillis/internal/partition"
	"gillis/internal/perf"
)

// modelName recovers the model name from a unit chain (unit subgraphs are
// named "<model>[i:j]").
func modelName(units []*partition.Unit) string {
	name := units[0].Sub.Name
	if i := strings.IndexByte(name, '['); i >= 0 {
		return name[:i]
	}
	return name
}

// Config tunes the planners.
type Config struct {
	// PartCounts is the worker fan-out grid (default {2,4,8,16}).
	PartCounts []int
	// MemStepMB discretizes the master memory budget in the DP (default 100).
	MemStepMB int
	// DisableMaster forbids master participation (ablation of the design
	// choice in Fig. 4: "the master can also help to compute a partition").
	DisableMaster bool
	// DisableGrouping forces every unit into its own group (ablation of the
	// coarse-grained parallelization of §III-C: layer-wise parallelization
	// with no fusion).
	DisableGrouping bool
	// Batch is the queries-per-round the plan is chosen for: group
	// predictions, feasibility checks, and the returned prediction all use
	// this batch size. Zero or one plans for single-query serving and
	// reproduces the unbatched planners bit-for-bit.
	Batch int
}

func (c Config) withDefaults() Config {
	if len(c.PartCounts) == 0 {
		c.PartCounts = partition.DefaultPartCounts
	}
	if c.MemStepMB <= 0 {
		c.MemStepMB = 100
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	return c
}

// optionsFor enumerates candidate options for a group, including DimNone.
func optionsFor(units []*partition.Unit, first, last int, partCounts []int) ([]partition.Option, error) {
	return partition.FeasibleOptions(units, first, last, partCounts)
}

// predCache memoizes group predictions across a planning run, all at one
// fixed batch size.
type predCache struct {
	model *perf.Model
	units []*partition.Unit
	batch int
	preds map[groupKey]perf.GroupPrediction
	exts  map[extKey]partition.Extent
}

type groupKey struct {
	first, last int
	dim         partition.Dim
	parts       int
	onMaster    bool
}

type extKey struct {
	first, last int
	dim         partition.Dim
	parts       int
}

func newPredCache(m *perf.Model, units []*partition.Unit, batch int) *predCache {
	if batch < 1 {
		batch = 1
	}
	return &predCache{
		model: m,
		units: units,
		batch: batch,
		preds: make(map[groupKey]perf.GroupPrediction),
		exts:  make(map[extKey]partition.Extent),
	}
}

func (pc *predCache) extent(first, last int, opt partition.Option) (partition.Extent, error) {
	k := extKey{first, last, opt.Dim, opt.Parts}
	if e, ok := pc.exts[k]; ok {
		return e, nil
	}
	e, err := partition.GroupExtent(pc.units, first, last, opt)
	if err != nil {
		return partition.Extent{}, err
	}
	pc.exts[k] = e
	return e, nil
}

func (pc *predCache) predict(gp partition.GroupPlan) (perf.GroupPrediction, error) {
	k := groupKey{gp.First, gp.Last, gp.Option.Dim, gp.Option.Parts, gp.OnMaster}
	if p, ok := pc.preds[k]; ok {
		return p, nil
	}
	p, err := pc.model.PredictGroupBatch(pc.units, gp, pc.batch)
	if err != nil {
		return perf.GroupPrediction{}, err
	}
	pc.preds[k] = p
	return p, nil
}

// validateInputs checks planner preconditions shared by all algorithms.
func validateInputs(m *perf.Model, units []*partition.Unit) error {
	if m == nil {
		return fmt.Errorf("core: nil performance model")
	}
	if len(units) == 0 {
		return fmt.Errorf("core: no units to plan")
	}
	return nil
}
