package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gillis/internal/bayesopt"
	"gillis/internal/models"
	"gillis/internal/partition"
	"gillis/internal/perf"
	"gillis/internal/platform"
)

var (
	modelOnce   sync.Once
	sharedModel *perf.Model
	modelErr    error
)

func lambdaModel(t *testing.T) *perf.Model {
	t.Helper()
	modelOnce.Do(func() {
		sharedModel, modelErr = perf.Build(platform.AWSLambda(), 1, 2, 300)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return sharedModel
}

func unitsOf(t *testing.T, name string) []*partition.Unit {
	t.Helper()
	g, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func TestLatencyOptimalBeatsDefaultVGG16(t *testing.T) {
	m := lambdaModel(t)
	units := unitsOf(t, "vgg16")
	plan, pred, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	if pred.OOM {
		t.Fatalf("vgg16 plan OOM: %s", pred.OOMReason)
	}
	def, err := m.PredictDefault(units)
	if err != nil {
		t.Fatal(err)
	}
	speedup := def.LatencyMs / pred.LatencyMs
	// Fig. 9: VGG-16 on Lambda speeds up ~1.9×; accept a reasonable band.
	if speedup < 1.3 || speedup > 4 {
		t.Fatalf("vgg16 speedup %.2f (default %.0f ms, gillis %.0f ms) outside [1.3,4]",
			speedup, def.LatencyMs, pred.LatencyMs)
	}
}

func TestLatencyOptimalNeverWorseThanDefault(t *testing.T) {
	m := lambdaModel(t)
	for _, name := range []string{"vgg11", "resnet50", "rnn3"} {
		units := unitsOf(t, name)
		plan, pred, err := LatencyOptimal(m, units, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := plan.Validate(units); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		def, err := m.PredictDefault(units)
		if err != nil {
			t.Fatal(err)
		}
		if !def.OOM && pred.LatencyMs > def.LatencyMs*1.001 {
			t.Errorf("%s: DP latency %.1f worse than default %.1f", name, pred.LatencyMs, def.LatencyMs)
		}
	}
}

func TestLatencyOptimalHandlesTooBigModels(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	for _, name := range []string{"wrn34-5", "rnn12"} {
		units := unitsOf(t, name)
		plan, pred, err := LatencyOptimal(m, units, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pred.OOM {
			t.Fatalf("%s: plan must avoid OOM, got %s", name, pred.OOMReason)
		}
		// Default serving is infeasible; the plan must shard weights.
		def, err := m.PredictDefault(units)
		if err != nil {
			t.Fatal(err)
		}
		if !def.OOM {
			t.Fatalf("%s should not fit a single function", name)
		}
		if len(plan.Groups) < 2 {
			t.Fatalf("%s: expected multiple groups, got %d", name, len(plan.Groups))
		}
	}
}

func TestLatencyOptimalRNNLinearScaling(t *testing.T) {
	// Fig. 12: RNN latency grows roughly linearly with layer count once the
	// model spans multiple functions.
	m := lambdaModel(t)
	var lat10, lat12 float64
	for _, tc := range []struct {
		name string
		dst  *float64
	}{{"rnn10", &lat10}, {"rnn12", &lat12}} {
		units := unitsOf(t, tc.name)
		_, pred, err := LatencyOptimal(m, units, Config{})
		if err != nil {
			t.Fatal(err)
		}
		*tc.dst = pred.LatencyMs
	}
	growth := (lat12 - lat10) / lat10
	if growth <= 0 || growth > 0.45 {
		t.Fatalf("rnn10→rnn12 latency growth %.2f not consistent with linear scaling (lat10=%.0f, lat12=%.0f)",
			growth, lat10, lat12)
	}
}

func TestLatencyOptimalGroupingShape(t *testing.T) {
	// Fig. 14's qualitative observations on WRN-34-5: low conv layers are
	// parallelized across more functions than the top groups, and the
	// master computes partitions of low (small-weight) groups.
	m := lambdaModel(t)
	units := unitsOf(t, "wrn34-5")
	plan, _, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(plan)
	var lowParts, highParts, masterGroups int
	mid := len(plan.Groups) / 2
	for gi, gp := range plan.Groups {
		if gp.Option.Dim != partition.DimNone {
			if gi < mid {
				if gp.Option.Parts > lowParts {
					lowParts = gp.Option.Parts
				}
			} else if gp.Option.Parts > highParts {
				highParts = gp.Option.Parts
			}
		}
		if gp.OnMaster {
			masterGroups++
		}
	}
	if lowParts < highParts {
		t.Errorf("low groups should be parallelized at least as wide as high groups: %d vs %d", lowParts, highParts)
	}
	if masterGroups == 0 {
		t.Error("master should compute some group partitions")
	}
}

func TestSLOAwareMeetsSLO(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	units := unitsOf(t, "vgg11")
	// A loose SLO (~default latency) must always be met.
	def, err := m.PredictDefault(units)
	if err != nil {
		t.Fatal(err)
	}
	tmax := def.LatencyMs * 1.2
	res, err := SLOAware(m, units, tmax, SLOConfig{Episodes: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("loose SLO %.0f ms not met: latency %.0f", tmax, res.Pred.LatencyMs)
	}
	if err := res.Plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	if res.Pred.BilledMs <= 0 {
		t.Fatal("billed cost must be positive")
	}
}

func TestSLOAwareRestrictiveSLO(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	units := unitsOf(t, "vgg11")
	_, lo, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Restrictive: 15% above the best achievable latency.
	tmax := lo.LatencyMs * 1.15
	res, err := SLOAware(m, units, tmax, SLOConfig{Episodes: 2500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("restrictive SLO %.0f ms not met: best latency %.0f", tmax, res.Pred.LatencyMs)
	}
}

func TestSLOAwareCheaperWithLooserSLO(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	units := unitsOf(t, "vgg16")
	_, lo, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Both searches are stochastic; take the best of two seeds each, as the
	// paper reports the best of multiple runs (§V-C).
	run := func(tmax float64) (int64, bool) {
		bestCost, met := int64(1<<62), false
		for seed := int64(3); seed <= 4; seed++ {
			res, err := SLOAware(m, units, tmax, SLOConfig{Episodes: 1200, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Met && res.Pred.BilledMs < bestCost {
				bestCost, met = res.Pred.BilledMs, true
			}
		}
		return bestCost, met
	}
	tightCost, tightMet := run(lo.LatencyMs * 1.2)
	looseCost, looseMet := run(lo.LatencyMs * 3)
	if !tightMet || !looseMet {
		t.Fatalf("SLOs should be met: tight=%v loose=%v", tightMet, looseMet)
	}
	if float64(looseCost) > 1.05*float64(tightCost) {
		t.Fatalf("looser SLO should not cost appreciably more: loose %d vs tight %d", looseCost, tightCost)
	}
}

func TestSLOAwareRejectsBadTmax(t *testing.T) {
	m := lambdaModel(t)
	units := unitsOf(t, "vgg11")
	if _, err := SLOAware(m, units, 0, SLOConfig{}); err == nil {
		t.Fatal("expected bad-Tmax error")
	}
	if _, err := SLOAware(nil, units, 100, SLOConfig{}); err == nil {
		t.Fatal("expected nil-model error")
	}
}

func TestBruteForceOptimalOnSmallModel(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	// A small RNN keeps the BF space tiny (no spatial/channel options).
	units := unitsOf(t, "rnn3")
	def, err := m.PredictDefault(units)
	if err != nil {
		t.Fatal(err)
	}
	tmax := def.LatencyMs * 1.5
	bf, err := BruteForce(m, units, tmax, BFConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bf.Met || !bf.Exhausted {
		t.Fatalf("BF should exhaust and meet SLO: met=%v exhausted=%v nodes=%d", bf.Met, bf.Exhausted, bf.Nodes)
	}
	// RL should approach BF's optimal cost (paper: learns the same strategy
	// for VGG-11).
	rl, err := SLOAware(m, units, tmax, SLOConfig{Episodes: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Met {
		t.Fatal("RL should meet the SLO")
	}
	if float64(rl.Pred.BilledMs) > 1.15*float64(bf.Pred.BilledMs) {
		t.Fatalf("RL cost %d too far above BF optimum %d", rl.Pred.BilledMs, bf.Pred.BilledMs)
	}
	if float64(bf.Pred.BilledMs) > float64(rl.Pred.BilledMs)+1 {
		t.Fatalf("BF %d cannot be worse than RL %d", bf.Pred.BilledMs, rl.Pred.BilledMs)
	}
}

func TestBruteForceInfeasibleSLO(t *testing.T) {
	m := lambdaModel(t)
	units := unitsOf(t, "rnn3")
	if _, err := BruteForce(m, units, 1, BFConfig{}); err == nil {
		t.Fatal("expected no-compliant-plan error for 1 ms SLO")
	}
}

func TestBayesOptFindsFeasiblePlan(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	units := unitsOf(t, "vgg11")
	def, err := m.PredictDefault(units)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BayesOpt(m, units, def.LatencyMs*1.4, BOConfig{Iters: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("BO should meet a loose SLO; got latency %.0f", res.Pred.LatencyMs)
	}
	if err := res.Plan.Validate(units); err != nil {
		t.Fatal(err)
	}
}

func TestRLBeatsOrMatchesBOOnCost(t *testing.T) {
	// The paper's headline SLO-aware claim: RL meets SLOs with lower cost
	// than BO (up to 1.8×). Compare best-of-3 for both, as in §V-C.
	m := lambdaModel(t)
	units := unitsOf(t, "vgg16")
	_, lo, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tmax := lo.LatencyMs * 1.5

	bestRL := int64(1 << 62)
	rlMet := false
	for seed := int64(1); seed <= 2; seed++ {
		res, err := SLOAware(m, units, tmax, SLOConfig{Episodes: 700, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Met && res.Pred.BilledMs < bestRL {
			bestRL, rlMet = res.Pred.BilledMs, true
		}
	}
	bestBO := int64(1 << 62)
	boMet := false
	for seed := int64(1); seed <= 3; seed++ {
		res, err := BayesOpt(m, units, tmax, BOConfig{Iters: 60, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Met && res.Pred.BilledMs < bestBO {
			bestBO, boMet = res.Pred.BilledMs, true
		}
	}
	if !rlMet {
		t.Fatal("RL must meet the SLO")
	}
	if boMet && bestRL > bestBO*11/10 {
		t.Fatalf("RL cost %d should be within 10%% of or better than BO %d", bestRL, bestBO)
	}
}

func TestBayesOptGenericQuadratic(t *testing.T) {
	// Sanity-check the GP/EI machinery on a smooth function.
	obj := func(x []float64) float64 {
		d0 := x[0] - 0.7
		d1 := x[1] - 0.3
		return d0*d0 + d1*d1
	}
	res, err := bayesopt.Minimize(obj, 2, bayesopt.Config{Iters: 50}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 0.02 {
		t.Fatalf("BO failed to approach optimum: best %v at %v", res.Value, res.X)
	}
	random := rand.New(rand.NewSource(1))
	bestRand := 1e9
	for i := 0; i < 50; i++ {
		x := []float64{random.Float64(), random.Float64()}
		if v := obj(x); v < bestRand {
			bestRand = v
		}
	}
	if res.Value > bestRand*2 {
		t.Fatalf("BO (%.4f) much worse than random search (%.4f)", res.Value, bestRand)
	}
}

func TestDPDeterministic(t *testing.T) {
	m := lambdaModel(t)
	units := unitsOf(t, "vgg11")
	p1, pred1, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2, pred2, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pred1.LatencyMs != pred2.LatencyMs || p1.String() != p2.String() {
		t.Fatal("DP must be deterministic")
	}
}

func TestExplainBreakdown(t *testing.T) {
	m := lambdaModel(t)
	units := unitsOf(t, "vgg11")
	plan, _, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := Explain(m, units, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan breakdown", "group", "p99", "MB"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
	if _, err := Explain(nil, units, plan); err == nil {
		t.Fatal("expected nil-model error")
	}
}
