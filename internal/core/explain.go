package core

import (
	"fmt"
	"strings"

	"gillis/internal/partition"
	"gillis/internal/perf"
)

// Explain renders a per-group latency/cost breakdown of a plan under the
// performance model — the "why is this plan shaped like this" view the CLI
// exposes with `gillis partition -explain`.
func Explain(m *perf.Model, units []*partition.Unit, plan *partition.Plan) (string, error) {
	if err := validateInputs(m, units); err != nil {
		return "", err
	}
	pred, err := m.PredictPlan(units, plan)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan breakdown for %s (predicted %.0f ms, %d billed ms/query):\n",
		plan.Model, pred.LatencyMs, pred.BilledMs)
	sb.WriteString("group | units |     option | place   | latency | upload | overhead | download | workers-busy | weights/part\n")
	for gi, gp := range plan.Groups {
		g := pred.Groups[gi]
		ext, err := partition.GroupExtent(units, gp.First, gp.Last, gp.Option)
		if err != nil {
			return "", err
		}
		place := "workers"
		if gp.OnMaster {
			if gp.Option.Parts == 1 {
				place = "master"
			} else {
				place = "mixed"
			}
		}
		var workerBusy float64
		for _, w := range g.WorkerMs {
			workerBusy += w
		}
		fmt.Fprintf(&sb, "%5d | %2d..%2d | %10s | %-7s | %5.0fms | %4.0fms | %6.0fms | %6.0fms | %10.0fms | %6.0f MB\n",
			gi+1, gp.First, gp.Last, gp.Option.String(), place,
			g.LatencyMs, g.UploadMs, g.OverheadMs, g.DownloadMs, workerBusy, float64(ext.WeightBytes)/1e6)
	}
	if pred.OOM {
		fmt.Fprintf(&sb, "WARNING: plan exceeds memory budget: %s\n", pred.OOMReason)
	}
	tail, err := m.PredictPlanTail(units, plan, 1000)
	if err == nil {
		fmt.Fprintf(&sb, "latency distribution: p50 %.0f ms, p95 %.0f ms, p99 %.0f ms\n",
			tail.P50Ms, tail.P95Ms, tail.P99Ms)
	}
	return sb.String(), nil
}
