package core

import (
	"fmt"
	"math"

	"gillis/internal/partition"
	"gillis/internal/perf"
)

// LatencyOptimal computes the latency-minimal layer grouping and
// parallelization strategy via the paper's dynamic program (§IV-B):
//
//	L(j, m) = min over k ≤ j, budget b:  L(k, m−b) + t(group k..j, b)
//
// where t(·, b) is Algorithm 1 ("FindOptLatency"): the best latency over
// all feasible parallelization options of the group, running the group
// worker-only when its partition does not fit the master's budget b and on
// master + workers when it does. Memory is discretized in MemStepMB units.
func LatencyOptimal(m *perf.Model, units []*partition.Unit, cfg Config) (*partition.Plan, perf.PlanPrediction, error) {
	if err := validateInputs(m, units); err != nil {
		return nil, perf.PlanPrediction{}, err
	}
	cfg = cfg.withDefaults()
	pc := newPredCache(m, units, cfg.Batch)
	plan, err := dpSearch(m, units, cfg, pc, func(p perf.GroupPrediction) float64 { return p.LatencyMs })
	if err != nil {
		return nil, perf.PlanPrediction{}, err
	}
	pred, err := m.PredictPlanBatch(units, plan, cfg.Batch)
	if err != nil {
		return nil, perf.PlanPrediction{}, err
	}
	return plan, pred.PlanPrediction, nil
}

// dpSearch runs the grouping dynamic program against an arbitrary additive
// per-group objective: LatencyOptimal scores a group by its predicted
// latency, the throughput planner's cost candidate by its billed-time
// proxy. Group predictions (and hence scores) are at the cache's batch
// size. cfg must already have defaults applied.
func dpSearch(m *perf.Model, units []*partition.Unit, cfg Config, pc *predCache, score func(perf.GroupPrediction) float64) (*partition.Plan, error) {
	n := len(units)
	stepBytes := int64(cfg.MemStepMB) * 1e6
	levels := int(int64(m.Platform().WeightBudgetMB) * 1e6 / stepBytes)
	budgetBytes := int64(m.Platform().WeightBudgetMB) * 1e6

	// best[j][l]: optimal latency covering units [0, j) with l memory levels
	// available on the master.
	best := make([][]float64, n+1)
	type choice struct {
		k        int
		opt      partition.Option
		onMaster bool
		levels   int // master levels charged by this group
	}
	back := make([][]choice, n+1)
	for j := 0; j <= n; j++ {
		best[j] = make([]float64, levels+1)
		back[j] = make([]choice, levels+1)
		for l := range best[j] {
			if j > 0 {
				best[j][l] = math.Inf(1)
			}
		}
	}

	for j := 1; j <= n; j++ {
		kMin := 0
		if cfg.DisableGrouping {
			kMin = j - 1 // ablation: single-unit groups only
		}
		for k := kMin; k < j; k++ {
			opts, err := optionsFor(units, k, j-1, cfg.PartCounts)
			if err != nil {
				return nil, err
			}
			for _, opt := range opts {
				ext, err := pc.extent(k, j-1, opt)
				if err != nil {
					return nil, err
				}
				// Partition too large to fit into any function (Algorithm 1
				// line 7); activations scale with the batch.
				if ext.WeightBytes+ext.ActBytes*int64(pc.batch) > budgetBytes {
					continue
				}
				charge := int((ext.WeightBytes + stepBytes - 1) / stepBytes)

				// Worker-only execution: consumes no master memory.
				pred, err := pc.predict(partition.GroupPlan{First: k, Last: j - 1, Option: opt})
				if err != nil {
					return nil, err
				}
				for l := 0; l <= levels; l++ {
					if cand := best[k][l] + score(pred); cand < best[j][l] {
						best[j][l] = cand
						back[j][l] = choice{k: k, opt: opt, onMaster: false}
					}
				}
				// Master participation: charge the master's resident weights
				// against the budget (Algorithm 1 lines 9-12).
				if charge <= levels && !cfg.DisableMaster {
					mpred, err := pc.predict(partition.GroupPlan{First: k, Last: j - 1, Option: opt, OnMaster: true})
					if err != nil {
						return nil, err
					}
					for l := charge; l <= levels; l++ {
						if cand := best[k][l-charge] + score(mpred); cand < best[j][l] {
							best[j][l] = cand
							back[j][l] = choice{k: k, opt: opt, onMaster: true, levels: charge}
						}
					}
				}
			}
		}
	}

	if math.IsInf(best[n][levels], 1) {
		return nil, fmt.Errorf("core: no feasible plan for %d units within %d MB functions",
			n, m.Platform().WeightBudgetMB)
	}

	// Backtrack.
	var rev []partition.GroupPlan
	j, l := n, levels
	for j > 0 {
		ch := back[j][l]
		rev = append(rev, partition.GroupPlan{First: ch.k, Last: j - 1, Option: ch.opt, OnMaster: ch.onMaster})
		j = ch.k
		if ch.onMaster {
			l -= ch.levels
		}
	}
	plan := &partition.Plan{Model: modelName(units), Groups: reverseGroups(rev)}
	if err := plan.Validate(units); err != nil {
		return nil, fmt.Errorf("core: DP produced invalid plan: %w", err)
	}
	return plan, nil
}

func reverseGroups(rev []partition.GroupPlan) []partition.GroupPlan {
	out := make([]partition.GroupPlan, len(rev))
	for i, g := range rev {
		out[len(rev)-1-i] = g
	}
	return out
}
