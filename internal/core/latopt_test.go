package core

import (
	"math/rand"
	"testing"

	"gillis/internal/partition"
)

// randomValidPlan samples an arbitrary feasible strategy.
func randomValidPlan(rng *rand.Rand, units []*partition.Unit, pc *predCache, budget int64) (*partition.Plan, bool) {
	plan := &partition.Plan{Model: modelName(units)}
	remaining := budget
	i := 0
	for i < len(units) {
		// Random group length.
		last := i + rng.Intn(4)
		if last >= len(units) {
			last = len(units) - 1
		}
		// Shrink until an option is feasible.
		var chosen *partition.Option
		for {
			feasible, err := partition.FeasibleOptions(units, i, last, nil)
			if err != nil {
				return nil, false
			}
			var ok []partition.Option
			for _, o := range feasible {
				ext, err := pc.extent(i, last, o)
				if err != nil {
					continue
				}
				if ext.WeightBytes+ext.ActBytes <= budget {
					ok = append(ok, o)
				}
			}
			if len(ok) > 0 {
				o := ok[rng.Intn(len(ok))]
				chosen = &o
				break
			}
			if last == i {
				return nil, false
			}
			last--
		}
		gp := partition.GroupPlan{First: i, Last: last, Option: *chosen}
		ext, err := pc.extent(i, last, *chosen)
		if err != nil {
			return nil, false
		}
		if rng.Intn(2) == 0 && ext.WeightBytes <= remaining {
			gp.OnMaster = true
			remaining -= ext.WeightBytes
		}
		plan.Groups = append(plan.Groups, gp)
		i = last + 1
	}
	return plan, true
}

// Property: no random valid strategy beats the DP's predicted latency.
func TestLatencyOptimalDominatesRandomPlans(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	for _, name := range []string{"vgg11", "resnet50"} {
		units := unitsOf(t, name)
		_, best, err := LatencyOptimal(m, units, Config{})
		if err != nil {
			t.Fatal(err)
		}
		pc := newPredCache(m, units, 1)
		budget := int64(m.Platform().WeightBudgetMB) * 1e6
		rng := rand.New(rand.NewSource(99))
		tried := 0
		for tried < 60 {
			plan, ok := randomValidPlan(rng, units, pc, budget)
			if !ok {
				continue
			}
			if err := plan.Validate(units); err != nil {
				t.Fatalf("%s: random plan invalid: %v", name, err)
			}
			pred, err := m.PredictPlan(units, plan)
			if err != nil {
				t.Fatal(err)
			}
			tried++
			if pred.OOM {
				continue
			}
			if pred.LatencyMs < best.LatencyMs*0.999 {
				t.Fatalf("%s: random plan (%.1f ms) beats DP (%.1f ms):\n%s",
					name, pred.LatencyMs, best.LatencyMs, plan)
			}
		}
	}
}

// The DP must also dominate the two degenerate strategies it generalizes.
func TestLatencyOptimalDominatesDegenerate(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	units := unitsOf(t, "vgg16")
	_, best, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{DisableGrouping: true},
		{DisableMaster: true},
	} {
		_, pred, err := LatencyOptimal(m, units, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if pred.LatencyMs < best.LatencyMs*0.999 {
			t.Fatalf("restricted DP (%+v) beat the full DP: %.1f vs %.1f", cfg, pred.LatencyMs, best.LatencyMs)
		}
	}
}
