package core

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/neural"
	"gillis/internal/partition"
	"gillis/internal/perf"
)

// SLOConfig tunes the SLO-aware reinforcement learner.
type SLOConfig struct {
	Config
	// Episodes is the number of simulated-experiment training episodes.
	Episodes int
	// Hidden is the policy networks' hidden width (the paper uses two-layer
	// networks).
	Hidden int
	// LR is the Adam learning rate.
	LR float64
	// BudgetMs is B in the reward function (Eq. 4), large enough that an
	// SLO-compliant strategy always earns a positive reward.
	BudgetMs float64
	// Batch is the number of rollouts per policy-gradient update; the batch
	// mean serves as the REINFORCE baseline.
	Batch int
	// TailPercentile, when set to 95 or 99, makes the SLO constrain that
	// latency percentile instead of the mean — the §VI extension: the same
	// RL machinery applies once the tail is predictable, here via Monte
	// Carlo over the fitted EMG overheads and compute noise.
	TailPercentile float64
	// Seed makes training reproducible.
	Seed int64
}

func (c SLOConfig) withDefaults() SLOConfig {
	c.Config = c.Config.withDefaults()
	if c.Episodes <= 0 {
		c.Episodes = 1500
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.BudgetMs <= 0 {
		c.BudgetMs = 50000
	}
	if c.Batch <= 0 {
		c.Batch = 10
	}
	return c
}

// SLOResult reports the learned strategy.
type SLOResult struct {
	// Plan is the best strategy found (lowest billed cost among
	// SLO-compliant episodes, or the lowest-latency strategy if none
	// complied).
	Plan *partition.Plan
	// Pred is the performance-model prediction for Plan.
	Pred perf.PlanPrediction
	// Met reports whether Plan satisfies the SLO (Gillis "notifies the user
	// if the SLO is met", §V).
	Met bool
	// Episodes is the number of training episodes run.
	Episodes int
	// MeanReward traces smoothed training reward (diagnostics).
	MeanReward []float64
}

// SLOAware learns a cost-minimal strategy under a mean-latency SLO using
// the paper's hierarchical RL formulation (§IV-C): a partitioner policy
// walks the unit chain deciding layer grouping and per-group
// parallelization, a placer policy decides master participation per group,
// and both are trained jointly with REINFORCE against rewards computed by
// the performance model in simulated experiments.
func SLOAware(m *perf.Model, units []*partition.Unit, tmaxMs float64, cfg SLOConfig) (SLOResult, error) {
	if err := validateInputs(m, units); err != nil {
		return SLOResult{}, err
	}
	if tmaxMs <= 0 {
		return SLOResult{}, fmt.Errorf("core: SLO T_max must be positive, got %v", tmaxMs)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pc := newPredCache(m, units, 1)

	opts := newGroupOptions(cfg.PartCounts)
	agent := newAgents(rng, units, opts, cfg)

	var (
		best     *partition.Plan
		bestPred perf.PlanPrediction
		bestMet  bool
		baseline float64
		varEst   float64
		haveBase bool
		trace    []float64
	)
	better := func(pred perf.PlanPrediction, met bool) bool {
		if best == nil {
			return true
		}
		if met != bestMet {
			return met
		}
		if met {
			return pred.BilledMs < bestPred.BilledMs
		}
		return !pred.OOM && (bestPred.OOM || pred.LatencyMs < bestPred.LatencyMs)
	}

	type rollout struct {
		steps  []step
		reward float64
	}
	for ep := 0; ep < cfg.Episodes; ep += cfg.Batch {
		batch := make([]rollout, 0, cfg.Batch)
		for b := 0; b < cfg.Batch && ep+b < cfg.Episodes; b++ {
			plan, steps, err := agent.rollout(rng, units, pc)
			if err != nil {
				return SLOResult{}, err
			}
			pred, err := m.PredictPlan(units, plan)
			if err != nil {
				return SLOResult{}, err
			}
			// The latency the SLO constrains: the mean (the paper's
			// definition) or a predicted tail percentile (§VI extension).
			sloLatency := pred.LatencyMs
			if cfg.TailPercentile > 0 && !pred.OOM {
				tail, err := m.PredictPlanTail(units, plan, 300)
				if err != nil {
					return SLOResult{}, err
				}
				switch {
				case cfg.TailPercentile >= 99:
					sloLatency = tail.P99Ms
				case cfg.TailPercentile >= 95:
					sloLatency = tail.P95Ms
				default:
					sloLatency = tail.P50Ms
				}
			}
			// Reward function, Eq. (4); OOM strategies get a large negative
			// reward.
			var reward float64
			met := false
			switch {
			case pred.OOM:
				reward = -cfg.BudgetMs
			case sloLatency <= tmaxMs:
				reward = cfg.BudgetMs - float64(pred.BilledMs)
				met = true
			default:
				reward = tmaxMs - sloLatency
			}
			if better(pred, met) {
				best, bestPred, bestMet = plan, pred, met
			}
			batch = append(batch, rollout{steps: steps, reward: reward})
		}
		// Batch-relative advantages (REINFORCE with baseline, §IV-C): the
		// batch mean is the baseline, blended with a running mean for
		// stability; a running variance standardizes the scale.
		var batchMean float64
		for _, r := range batch {
			batchMean += r.reward
		}
		batchMean /= float64(len(batch))
		if !haveBase {
			baseline, varEst, haveBase = batchMean, 1, true
		}
		base := 0.5*baseline + 0.5*batchMean
		for _, r := range batch {
			diff := r.reward - base
			varEst = 0.99*varEst + 0.01*diff*diff
		}
		scale := math.Sqrt(varEst) + 1e-6
		for _, r := range batch {
			advantage := (r.reward - base) / scale
			if advantage > 5 {
				advantage = 5
			}
			if advantage < -5 {
				advantage = -5
			}
			if err := agent.accumulate(r.steps, advantage); err != nil {
				return SLOResult{}, err
			}
		}
		agent.step()
		baseline = 0.9*baseline + 0.1*batchMean
		trace = append(trace, baseline)
	}
	if best == nil {
		return SLOResult{}, fmt.Errorf("core: RL produced no plan in %d episodes", cfg.Episodes)
	}
	return SLOResult{Plan: best, Pred: bestPred, Met: bestMet, Episodes: cfg.Episodes, MeanReward: trace}, nil
}

// groupOptions is the per-unit action vocabulary: action 0 joins the
// current group; action 1+k starts a new group with options[k].
type groupOptions struct {
	options []partition.Option
}

func newGroupOptions(partCounts []int) *groupOptions {
	opts := []partition.Option{{Dim: partition.DimNone, Parts: 1}}
	for _, p := range partCounts {
		opts = append(opts, partition.Option{Dim: partition.DimSpatial, Parts: p})
	}
	for _, p := range partCounts {
		opts = append(opts, partition.Option{Dim: partition.DimChannel, Parts: p})
	}
	return &groupOptions{options: opts}
}

// agents bundles the partitioner and placer policy networks.
type agents struct {
	partitioner *neural.MLP
	placer      *neural.MLP
	opts        *groupOptions
	budgetBytes int64
}

// step records one decision for the REINFORCE update.
type step struct {
	net    *neural.MLP
	cache  *neural.Cache
	probs  []float64
	action int
}

const (
	partFeatures  = 12
	placeFeatures = 10
)

func newAgents(rng *rand.Rand, units []*partition.Unit, opts *groupOptions, cfg SLOConfig) *agents {
	return &agents{
		partitioner: neural.NewMLP(rng, partFeatures, cfg.Hidden, 1+len(opts.options), cfg.LR),
		placer:      neural.NewMLP(rng, placeFeatures, cfg.Hidden, 2, cfg.LR),
		opts:        opts,
	}
}

// rollout samples one full strategy from the current policies.
func (a *agents) rollout(rng *rand.Rand, units []*partition.Unit, pc *predCache) (*partition.Plan, []step, error) {
	var steps []step
	n := len(units)

	// Phase 1: partitioner walks the units.
	type rawGroup struct {
		first, last int
		opt         partition.Option
	}
	var groups []rawGroup
	for i := 0; i < n; i++ {
		u := units[i]
		allowed := make([]bool, 1+len(a.opts.options))
		// Join: extend the current group with unit i.
		if len(groups) > 0 {
			g := groups[len(groups)-1]
			allowed[0] = joinFeasible(units, g.first, i, g.opt)
		}
		for k, opt := range a.opts.options {
			allowed[1+k] = newGroupFeasible(u, opt)
		}
		curFirst, curOpt := -1, partition.Option{}
		if len(groups) > 0 {
			curFirst, curOpt = groups[len(groups)-1].first, groups[len(groups)-1].opt
		}
		feat := partitionerFeatures(units, i, curFirst, curOpt)
		cache, err := a.partitioner.Forward(feat)
		if err != nil {
			return nil, nil, err
		}
		probs, err := neural.MaskedSoftmax(cache.Logits, allowed)
		if err != nil {
			return nil, nil, fmt.Errorf("core: unit %d has no feasible action: %w", i, err)
		}
		act := neural.Sample(rng, probs)
		steps = append(steps, step{net: a.partitioner, cache: cache, probs: probs, action: act})
		if act == 0 {
			groups[len(groups)-1].last = i
		} else {
			groups = append(groups, rawGroup{first: i, last: i, opt: a.opts.options[act-1]})
		}
	}

	// Phase 2: placer decides master participation group by group,
	// respecting the remaining master budget.
	budget := int64(pc.model.Platform().WeightBudgetMB) * 1e6
	remaining := budget
	plan := &partition.Plan{Model: modelName(units)}
	for gi, g := range groups {
		ext, err := pc.extent(g.first, g.last, g.opt)
		if err != nil {
			return nil, nil, err
		}
		canMaster := ext.WeightBytes <= remaining
		allowed := []bool{true, canMaster} // 0: workers only, 1: master participates
		feat := placerFeatures(units, g.first, g.last, g.opt, ext, remaining, budget, gi, len(groups))
		cache, err := a.placer.Forward(feat)
		if err != nil {
			return nil, nil, err
		}
		probs, err := neural.MaskedSoftmax(cache.Logits, allowed)
		if err != nil {
			return nil, nil, err
		}
		act := neural.Sample(rng, probs)
		steps = append(steps, step{net: a.placer, cache: cache, probs: probs, action: act})
		onMaster := act == 1
		if onMaster {
			remaining -= ext.WeightBytes
		}
		plan.Groups = append(plan.Groups, partition.GroupPlan{
			First: g.first, Last: g.last, Option: g.opt, OnMaster: onMaster,
		})
	}
	return plan, steps, nil
}

// accumulate adds one rollout's REINFORCE gradients (Eqs. 5-6) with a small
// entropy bonus that keeps the stochastic policies exploring.
func (a *agents) accumulate(steps []step, advantage float64) error {
	const entropyBeta = 0.01
	for _, s := range steps {
		d := neural.PolicyGrad(s.probs, s.action, advantage)
		var entropy float64
		for _, p := range s.probs {
			if p > 0 {
				entropy -= p * math.Log(p)
			}
		}
		for i, p := range s.probs {
			if p > 0 {
				d[i] += entropyBeta * p * (math.Log(p) + entropy)
			}
		}
		if err := s.net.Backward(s.cache, d); err != nil {
			return err
		}
	}
	return nil
}

// step applies the accumulated batch gradients to both policies.
func (a *agents) step() {
	a.partitioner.Step()
	a.placer.Step()
}

// joinFeasible reports whether unit `last` can extend a group starting at
// `first` under option opt (tensor-dependency rule, §III-C).
func joinFeasible(units []*partition.Unit, first, last int, opt partition.Option) bool {
	switch opt.Dim {
	case partition.DimNone:
		return true // any units can run whole on one function
	case partition.DimSpatial:
		u := units[last]
		return u.Spatial && u.OutHeight() >= opt.Parts
	case partition.DimChannel:
		return false // channel partitions are single-unit (Fig. 6)
	}
	return false
}

// newGroupFeasible reports whether a fresh group can start at unit u with
// option opt.
func newGroupFeasible(u *partition.Unit, opt partition.Option) bool {
	switch opt.Dim {
	case partition.DimNone:
		return true
	case partition.DimSpatial:
		return u.Spatial && u.OutHeight() >= opt.Parts
	case partition.DimChannel:
		return u.Channel && u.OutChannels() >= opt.Parts
	}
	return false
}

// partitionerFeatures encodes unit i and the open group's state.
func partitionerFeatures(units []*partition.Unit, i, curFirst int, curOpt partition.Option) []float64 {
	u := units[i]
	f := make([]float64, 0, partFeatures)
	f = append(f,
		b2f(u.Spatial),
		b2f(u.Channel),
		logScale(float64(u.FLOPs)/1e9),
		logScale(float64(u.ParamBytes)/1e6),
		logScale(mb(u.InShape)),
		logScale(mb(u.OutShape)),
		float64(u.OutHeight())/224,
		float64(i)/float64(len(units)),
	)
	if curFirst >= 0 {
		var gflops float64
		for _, gu := range units[curFirst:i] {
			gflops += float64(gu.FLOPs) / 1e9
		}
		f = append(f, 1, float64(i-curFirst)/8, logScale(gflops), float64(curOpt.Parts)/16)
	} else {
		f = append(f, 0, 0, 0, 0)
	}
	return f
}

// placerFeatures encodes one group for the placer.
func placerFeatures(units []*partition.Unit, first, last int, opt partition.Option,
	ext partition.Extent, remaining, budget int64, gi, nGroups int) []float64 {
	var gflops float64
	for _, u := range units[first : last+1] {
		gflops += float64(u.FLOPs) / 1e9
	}
	return []float64{
		b2f(opt.Dim == partition.DimSpatial),
		b2f(opt.Dim == partition.DimChannel),
		b2f(opt.Dim == partition.DimNone),
		float64(opt.Parts) / 16,
		logScale(gflops),
		logScale(float64(ext.WeightBytes) / 1e6),
		logScale(float64(ext.InBytesTotal) / 1e6),
		logScale(float64(ext.OutBytesTotal) / 1e6),
		float64(remaining) / float64(budget),
		float64(gi) / float64(nGroups),
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func logScale(v float64) float64 { return math.Log1p(v) }

func mb(shape []int) float64 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return float64(n) * 4 / 1e6
}
