package core

import "testing"

// Tail SLOs (§VI extension): training against the predicted p99 must yield
// a plan whose p99 — not just its mean — clears the threshold.
func TestSLOAwareTailPercentile(t *testing.T) {
	m := lambdaModel(t)
	t.Parallel()
	units := unitsOf(t, "vgg11")
	_, lo, err := LatencyOptimal(m, units, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tmax := lo.LatencyMs * 2
	res, err := SLOAware(m, units, tmax, SLOConfig{Episodes: 500, Seed: 5, TailPercentile: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("p99 SLO %.0f ms not met", tmax)
	}
	tail, err := m.PredictPlanTail(units, res.Plan, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if tail.P99Ms > tmax*1.02 {
		t.Fatalf("chosen plan's p99 %.0f exceeds SLO %.0f", tail.P99Ms, tmax)
	}
}

// The mean-SLO and tail-SLO configurations must both reject nonsense input.
func TestAblationConfigsProduceValidPlans(t *testing.T) {
	m := lambdaModel(t)
	units := unitsOf(t, "vgg16")
	for _, cfg := range []Config{
		{DisableMaster: true},
		{DisableGrouping: true},
		{DisableMaster: true, DisableGrouping: true},
		{PartCounts: []int{8}},
	} {
		plan, pred, err := LatencyOptimal(m, units, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if err := plan.Validate(units); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if pred.OOM {
			t.Fatalf("%+v: OOM", cfg)
		}
		if cfg.DisableMaster {
			for _, gp := range plan.Groups {
				if gp.OnMaster {
					t.Fatalf("%+v: plan uses master", cfg)
				}
			}
		}
		if cfg.DisableGrouping {
			for _, gp := range plan.Groups {
				if gp.Last != gp.First {
					t.Fatalf("%+v: plan groups units", cfg)
				}
			}
		}
	}
}
