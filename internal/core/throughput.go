package core

import (
	"fmt"
	"math"

	"gillis/internal/partition"
	"gillis/internal/perf"
)

// ThroughputOptimal chooses the plan that maximizes modeled throughput per
// cost — queries per thousand billed milliseconds — at cfg.Batch queries
// per round (DESIGN.md §13). It scores a small candidate set: the
// latency-optimal plan at that batch size, a cost-minimizing run of the
// same dynamic program (scoring each group by its billed-time proxy
// instead of its latency), and the single-function Default. Ties on the
// objective break toward lower latency. Because the latency-optimal plan
// is always a candidate, the winner is never worse than it on the
// objective; at batch 1 with a cheap Default, batching buys nothing and
// the planner degrades gracefully to the cheapest feasible plan.
func ThroughputOptimal(m *perf.Model, units []*partition.Unit, cfg Config) (*partition.Plan, perf.BatchPrediction, error) {
	if err := validateInputs(m, units); err != nil {
		return nil, perf.BatchPrediction{}, err
	}
	cfg = cfg.withDefaults()

	var cands []*partition.Plan
	latPlan, _, err := LatencyOptimal(m, units, cfg)
	if err != nil {
		return nil, perf.BatchPrediction{}, err
	}
	cands = append(cands, latPlan)

	// Cost-minimizing DP: same search space, scored by each group's billed
	// time — worker durations rounded up to the billing granule plus the
	// master-side latency the group adds to the master's own bill.
	pc := newPredCache(m, units, cfg.Batch)
	gran := float64(m.Platform().BillingGranMs)
	costPlan, err := dpSearch(m, units, cfg, pc, func(p perf.GroupPrediction) float64 {
		c := p.LatencyMs
		for _, w := range p.WorkerMs {
			if w > 0 {
				c += math.Ceil(w/gran) * gran
			}
		}
		return c
	})
	if err != nil {
		return nil, perf.BatchPrediction{}, err
	}
	cands = append(cands, costPlan)

	cands = append(cands, &partition.Plan{
		Model: modelName(units),
		Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}},
	})

	var bestPlan *partition.Plan
	var best perf.BatchPrediction
	for _, plan := range cands {
		bp, err := m.PredictPlanBatch(units, plan, cfg.Batch)
		if err != nil || bp.OOM {
			continue // e.g. Default for a model that outgrows one function
		}
		better := bestPlan == nil ||
			bp.QueriesPer1KBilledMs > best.QueriesPer1KBilledMs ||
			(bp.QueriesPer1KBilledMs == best.QueriesPer1KBilledMs && bp.LatencyMs < best.LatencyMs)
		if better {
			bestPlan, best = plan, bp
		}
	}
	if bestPlan == nil {
		return nil, perf.BatchPrediction{}, fmt.Errorf("core: no feasible throughput plan at batch %d", cfg.Batch)
	}
	return bestPlan, best, nil
}
