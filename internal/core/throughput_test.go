package core

import (
	"testing"

	"gillis/internal/partition"
)

// TestThroughputAtLeastLatencyOptimal is the acceptance pin: for a
// batch-heavy workload the throughput-optimal plan must achieve at least
// the queries-per-billed-time of the latency-optimal plan at the same
// batch size (it always considers that plan as a candidate).
func TestThroughputAtLeastLatencyOptimal(t *testing.T) {
	m := lambdaModel(t)
	for _, name := range []string{"vgg11", "resnet50"} {
		units := unitsOf(t, name)
		for _, batch := range []int{1, 4, 8} {
			cfg := Config{Batch: batch}
			latPlan, _, err := LatencyOptimal(m, units, cfg)
			if err != nil {
				t.Fatal(err)
			}
			latBP, err := m.PredictPlanBatch(units, latPlan, batch)
			if err != nil {
				t.Fatal(err)
			}
			thrPlan, thrBP, err := ThroughputOptimal(m, units, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if thrBP.QueriesPer1KBilledMs < latBP.QueriesPer1KBilledMs {
				t.Errorf("%s batch %d: throughput plan %.4f q/1k-billed-ms worse than latency plan %.4f",
					name, batch, thrBP.QueriesPer1KBilledMs, latBP.QueriesPer1KBilledMs)
			}
			if thrBP.Batch != batch || thrBP.OOM {
				t.Errorf("%s batch %d: bad winning prediction %+v", name, batch, thrBP)
			}
			if err := thrPlan.Validate(units); err != nil {
				t.Errorf("%s batch %d: invalid throughput plan: %v", name, batch, err)
			}
		}
	}
}

// TestBatchOneReproducesLatencyOptimal pins backward compatibility: the
// batch dimension defaulted (0) or explicitly 1 must reproduce today's
// latency-optimal plan and prediction bit-exactly.
func TestBatchOneReproducesLatencyOptimal(t *testing.T) {
	m := lambdaModel(t)
	for _, name := range []string{"vgg11", "resnet50"} {
		units := unitsOf(t, name)
		plan0, pred0, err := LatencyOptimal(m, units, Config{})
		if err != nil {
			t.Fatal(err)
		}
		plan1, pred1, err := LatencyOptimal(m, units, Config{Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !samePlan(plan0, plan1) {
			t.Fatalf("%s: batch-1 plan diverged:\n%+v\nvs\n%+v", name, plan1.Groups, plan0.Groups)
		}
		if pred0.LatencyMs != pred1.LatencyMs || pred0.BilledMs != pred1.BilledMs {
			t.Fatalf("%s: batch-1 prediction diverged: %+v vs %+v", name, pred1, pred0)
		}
		// And the batched predictor agrees with the unbatched one on it.
		want, err := m.PredictPlan(units, plan0)
		if err != nil {
			t.Fatal(err)
		}
		if pred0.LatencyMs != want.LatencyMs || pred0.BilledMs != want.BilledMs {
			t.Fatalf("%s: planner prediction %+v diverged from PredictPlan %+v", name, pred0, want)
		}
	}
}

// TestThroughputPrefersAmortization pins the qualitative behavior on a
// model too large for a single function (the paper's motivating case, so
// every feasible plan pays fork-join overheads): at a large batch the
// throughput objective must beat its batch-1 value, because the per-round
// overheads amortize across the batch.
func TestThroughputPrefersAmortization(t *testing.T) {
	m := lambdaModel(t)
	units := unitsOf(t, "wrn34-5")
	_, bp1, err := ThroughputOptimal(m, units, Config{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, bp8, err := ThroughputOptimal(m, units, Config{Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if bp8.QueriesPer1KBilledMs <= bp1.QueriesPer1KBilledMs {
		t.Errorf("batch 8 objective %.4f did not beat batch 1 objective %.4f",
			bp8.QueriesPer1KBilledMs, bp1.QueriesPer1KBilledMs)
	}
}

func samePlan(a, b *partition.Plan) bool {
	if len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	return true
}
