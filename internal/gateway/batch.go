package gateway

// Cross-query batching (DESIGN.md §13). When Config.Batch.MaxBatch >= 2 the
// gateway routes every arrival through an admission-side batch former
// instead of the per-query serve path: arrivals accumulate into a forming
// batch that closes when it is full (at admission), or on the control tick
// when the oldest member's delay or SLO budget runs out, or when the
// arrival trace drains. One member — the arrival that filled the batch, or
// the oldest member on a tick close — leads: it acquires a single admission
// slot through the same in-flight/queue/shed machinery a lone query would,
// serves the whole batch through the backend's ServeBatch, and settles a
// typed per-query Outcome for every member. The unbatched path is untouched
// when batching is off, so unbatched replays stay byte-identical.

import (
	"fmt"

	"gillis/internal/batching"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// batchAssign is what a waiting batch member learns when its batch closes:
// whether it leads the dispatch, and (for the leader) the membership and
// closing rule.
type batchAssign struct {
	lead   bool
	batch  []batching.Member
	reason batching.CloseReason
}

// setupBatching validates the batch configuration against the backend and
// arms the former. Called from Run after cfg.withDefaults().
func (g *gateway) setupBatching(b Backend, cfg Config) error {
	if cfg.Batch.MaxBatch <= 1 {
		return nil
	}
	bb, ok := b.(BatchBackend)
	if !ok {
		return fmt.Errorf("gateway: batching enabled (MaxBatch %d) but backend %T does not implement BatchBackend", cfg.Batch.MaxBatch, b)
	}
	bcfg := cfg.Batch
	// The former inherits the gateway's control tick and SLO unless the
	// batch config pins its own.
	if bcfg.TickMs == 0 {
		bcfg.TickMs = cfg.TickMs
	}
	if bcfg.SLOMs == 0 {
		bcfg.SLOMs = cfg.SLOMs
	}
	f, err := batching.New(bcfg)
	if err != nil {
		return err
	}
	g.former = f
	g.bb = bb
	g.waiters = make(map[int]*simnet.Promise[batchAssign])
	g.batchClosed = make(map[string]int)
	g.mBatches = g.reg.Counter("gateway.batches")
	g.hBatchSize = g.reg.Histogram("gateway.batch_size")
	return nil
}

// batchedQuery admits one arrival in batched mode: join the forming batch,
// and either lead the dispatch (the arrival that fills the batch) or wait
// for a tick close to assign a role.
func (g *gateway) batchedQuery(proc *simnet.Proc, i int) {
	arrival := proc.Now()
	g.mQueries.Inc()

	g.mu.Lock()
	g.arrived++
	if g.former.Add(i, arrival) {
		// Size rule: the batch is full; this arrival closes and leads it.
		members := g.former.Take()
		g.mu.Unlock()
		g.leadBatch(proc, members, i, batching.ReasonSize)
		return
	}
	pr := simnet.NewPromise[batchAssign](proc.Env())
	g.waiters[i] = pr
	g.mu.Unlock()

	a, err := pr.Wait(proc)
	if err != nil {
		g.settle(i, Outcome{ID: i, ArrivalMs: durMs(arrival), Err: err.Error()})
		return
	}
	if a.lead {
		g.leadBatch(proc, a.batch, i, a.reason)
	}
	// Non-leaders return: the leader settles their outcomes.
}

// batchTick evaluates the tick-driven closing rules; on a close it appoints
// the oldest member leader by resolving its promise. Called from the
// autoscale process each control tick, before the adaptive controller.
func (g *gateway) batchTick(proc *simnet.Proc) {
	if g.former == nil {
		return
	}
	g.mu.Lock()
	reason := g.former.ShouldClose(proc.Now(), g.arrived >= g.total)
	if reason == batching.ReasonNone {
		g.mu.Unlock()
		return
	}
	members := g.former.Take()
	lead := g.waiters[members[0].ID]
	delete(g.waiters, members[0].ID)
	g.mu.Unlock()
	lead.Resolve(batchAssign{lead: true, batch: members, reason: reason})
}

// leadBatch runs one closed batch to completion on the leader's process:
// account the close, acquire a single admission slot (or shed the whole
// batch), serve, settle every member, and release the slot and the
// non-leader members.
func (g *gateway) leadBatch(proc *simnet.Proc, members []batching.Member, leaderID int, reason batching.CloseReason) {
	n := len(members)
	g.mu.Lock()
	g.batches++
	g.batchSizeSum += n
	g.batchClosed[reason.String()]++
	g.mu.Unlock()
	g.mBatches.Inc()
	g.hBatchSize.Observe(float64(n))

	// Admission: one slot for the whole batch, through the same switch a
	// lone query takes.
	g.mu.Lock()
	switch {
	case g.inFlight < g.cfg.MaxInFlight:
		g.inFlight++
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
	case g.brownout:
		g.brownoutSheds += n
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
		g.shedBatch(proc, members, leaderID, ErrBrownout.Error(), g.mBrownoutShed)
		return
	case len(g.queue) < g.cfg.QueueCap:
		pr := simnet.NewPromise[struct{}](proc.Env())
		g.queue = append(g.queue, pr)
		if len(g.queue) > g.maxQueue {
			g.maxQueue = len(g.queue)
		}
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
		if _, err := pr.Wait(proc); err != nil {
			for _, m := range members {
				g.settle(m.ID, Outcome{ID: m.ID, ArrivalMs: durMs(m.Arrival), BatchSize: n, Err: err.Error()})
			}
			g.releaseWaiters(members, leaderID)
			return
		}
	default:
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
		g.shedBatch(proc, members, leaderID, ErrShed.Error(), nil)
		return
	}

	g.mAdmitted.Add(int64(n))
	outs := g.serveBatch(proc, members)
	// Release the slot exactly as a lone query would.
	g.mu.Lock()
	if len(g.queue) > 0 {
		head := g.queue[0]
		g.queue = g.queue[1:]
		g.mu.Unlock()
		head.Resolve(struct{}{})
	} else {
		g.inFlight--
		g.mu.Unlock()
	}
	for k, m := range members {
		g.settle(m.ID, outs[k])
	}
	g.releaseWaiters(members, leaderID)
}

// shedBatch rejects every member of a batch that found no slot and no queue
// room. extra, when non-nil, is bumped per member on top of the shed
// counter (the brownout-shed counter).
func (g *gateway) shedBatch(proc *simnet.Proc, members []batching.Member, leaderID int, errMsg string, extra *trace.Counter) {
	n := len(members)
	for _, m := range members {
		g.mShed.Inc()
		g.mSLOViolated.Inc()
		if extra != nil {
			extra.Inc()
		}
		g.settle(m.ID, Outcome{ID: m.ID, ArrivalMs: durMs(m.Arrival), BatchSize: n, Shed: true, Err: errMsg})
	}
	g.releaseWaiters(members, leaderID)
}

// releaseWaiters resolves every non-leader member's promise so their
// processes can exit; the leader has no pending promise by construction.
func (g *gateway) releaseWaiters(members []batching.Member, leaderID int) {
	g.mu.Lock()
	var prs []*simnet.Promise[batchAssign]
	for _, m := range members {
		if m.ID == leaderID {
			continue
		}
		if pr, ok := g.waiters[m.ID]; ok {
			prs = append(prs, pr)
			delete(g.waiters, m.ID)
		}
	}
	g.mu.Unlock()
	for _, pr := range prs {
		pr.Resolve(batchAssign{})
	}
}

// serveBatch serves one admitted batch through the backend and builds the
// typed per-member Outcomes: each member keeps its own arrival, queue wait
// (batch forming plus slot wait), and SLO verdict; the serve latency and
// trace are shared; the billed time splits evenly with the remainder going
// to the earliest members so the per-query sum reconciles with the batch;
// a cold start is attributed to the first member only.
func (g *gateway) serveBatch(proc *simnet.Proc, members []batching.Member) []Outcome {
	n := len(members)
	startMs := durMs(proc.Now())
	var inputs []*tensor.Tensor
	if g.cfg.Input != nil {
		inputs = make([]*tensor.Tensor, n)
		for k, m := range members {
			inputs[k] = g.cfg.Input(m.ID)
		}
	}
	var res runtime.BatchResult
	var tr *trace.Trace
	var err error
	if g.cfg.Traced {
		res, tr, err = g.bb.ServeBatchTraced(proc, inputs, n)
	} else {
		res, err = g.bb.ServeBatch(proc, inputs, n)
	}
	endMs := durMs(proc.Now())

	outs := make([]Outcome, n)
	billed := res.BilledMs
	if err != nil {
		billed = platform.BilledMsOf(err)
	}
	base, rem := billed/int64(n), billed%int64(n)
	for k, m := range members {
		o := Outcome{
			ID:        m.ID,
			ArrivalMs: durMs(m.Arrival),
			QueueMs:   startMs - durMs(m.Arrival),
			TotalMs:   endMs - durMs(m.Arrival),
			BilledMs:  base,
			BatchSize: n,
			Trace:     tr,
		}
		if int64(k) < rem {
			o.BilledMs++
		}
		g.hQueueWaitMs.Observe(o.QueueMs)
		g.hTotalMs.Observe(o.TotalMs)
		if err != nil {
			o.Err = err.Error()
			if kind, ok := platform.FaultKindOf(err); ok {
				o.FaultKind = kind.String()
			} else {
				o.FaultKind = "other"
			}
			g.mFaulted.Inc()
			g.mSLOViolated.Inc()
			g.reg.Counter("gateway.faults." + o.FaultKind).Inc()
		} else {
			o.LatencyMs = res.LatencyMs
			if k == 0 {
				o.ColdStart = res.ColdStart
				if res.ColdStart {
					g.mColdStarts.Inc()
				}
			}
			if res.Outputs != nil {
				o.Output = res.Outputs[k]
			}
			o.SLOOK = g.cfg.SLOMs <= 0 || o.TotalMs <= g.cfg.SLOMs
			g.mServed.Inc()
			if o.SLOOK {
				g.mSLOOK.Inc()
			} else {
				g.mSLOViolated.Inc()
			}
		}
		outs[k] = o
	}
	return outs
}
