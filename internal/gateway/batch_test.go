package gateway

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gillis/internal/batching"
	"gillis/internal/par"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
	"gillis/internal/workload"
)

const ms = time.Millisecond

// TestBatchClosingRulesEndToEnd drives each closing rule through a full
// replay and pins which rule the report attributes each batch to.
func TestBatchClosingRulesEndToEnd(t *testing.T) {
	cases := []struct {
		name     string
		arrivals []time.Duration
		batch    batching.Config
		sloMs    float64
		closedBy map[string]int
		batches  int
	}{
		{
			// Two pairs of back-to-back arrivals fill MaxBatch 2 twice.
			name:     "size-triggered",
			arrivals: []time.Duration{0, 1 * ms, 2 * ms, 3 * ms},
			batch:    batching.Config{MaxBatch: 2, MaxDelay: 10 * time.Second},
			closedBy: map[string]int{"size": 2},
			batches:  2,
		},
		{
			// The early pair waits out MaxDelay while the straggler keeps
			// the trace undrained; the straggler itself closes on drain.
			name:     "delay-triggered",
			arrivals: []time.Duration{1 * ms, 2 * ms, 10 * time.Second},
			batch:    batching.Config{MaxBatch: 8, MaxDelay: 150 * ms},
			closedBy: map[string]int{"delay": 1, "drain": 1},
			batches:  2,
		},
		{
			// SLO 500 - est 300 - tick 100 fires at the 200 ms tick, well
			// before the 1 s delay bound; the straggler's own first tick
			// also trips the SLO rule (precedence over drain).
			name:     "slo-deadline-triggered",
			arrivals: []time.Duration{1 * ms, 2 * ms, 10 * time.Second},
			batch:    batching.Config{MaxBatch: 8, MaxDelay: time.Second, EstServeMs: 300},
			sloMs:    500,
			closedBy: map[string]int{"slo": 2},
			batches:  2,
		},
		{
			// A lone arrival can never fill the batch: the drained trace
			// closes it on the next tick.
			name:     "drain-on-shutdown",
			arrivals: []time.Duration{1 * ms},
			batch:    batching.Config{MaxBatch: 4, MaxDelay: 10 * time.Second},
			closedBy: map[string]int{"drain": 1},
			batches:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)
			rep, outs, err := Run(d, tc.arrivals, Config{
				MaxInFlight: 4, QueueCap: 8, SLOMs: tc.sloMs, Batch: tc.batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Batches != tc.batches {
				t.Fatalf("batches = %d, want %d: %+v", rep.Batches, tc.batches, rep)
			}
			if len(rep.BatchClosedBy) != len(tc.closedBy) {
				t.Fatalf("closed-by = %v, want %v", rep.BatchClosedBy, tc.closedBy)
			}
			for k, n := range tc.closedBy {
				if rep.BatchClosedBy[k] != n {
					t.Fatalf("closed-by[%s] = %d, want %d", k, rep.BatchClosedBy[k], n)
				}
			}
			if rep.Served != len(tc.arrivals) {
				t.Fatalf("served %d of %d", rep.Served, len(tc.arrivals))
			}
			for _, o := range outs {
				if o.BatchSize < 1 {
					t.Fatalf("query %d has no batch size: %+v", o.ID, o)
				}
			}
		})
	}
}

// TestBatchOutcomeAccounting pins the typed per-member outcome contract on
// one size-closed batch: distinct arrivals and queue waits, a shared serve
// latency, billed time split so the members sum to the batch, and the cold
// start attributed to the first member only.
func TestBatchOutcomeAccounting(t *testing.T) {
	d := deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)
	arrivals := []time.Duration{0, 3 * ms, 7 * ms}
	rep, outs, err := Run(d, arrivals, Config{
		MaxInFlight: 2, QueueCap: 4,
		Batch: batching.Config{MaxBatch: 3, MaxDelay: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches != 1 || rep.MeanBatch != 3 {
		t.Fatalf("batches/mean = %d/%.1f, want 1/3.0", rep.Batches, rep.MeanBatch)
	}
	var billed int64
	for i, o := range outs {
		if o.BatchSize != 3 {
			t.Errorf("query %d batch size %d, want 3", i, o.BatchSize)
		}
		if o.LatencyMs != outs[0].LatencyMs {
			t.Errorf("query %d latency %.3f diverged from shared %.3f", i, o.LatencyMs, outs[0].LatencyMs)
		}
		wantQueue := outs[2].ArrivalMs - o.ArrivalMs // batch closed at the last arrival
		if o.QueueMs != wantQueue {
			t.Errorf("query %d queue wait %.3f, want %.3f", i, o.QueueMs, wantQueue)
		}
		if o.ColdStart != (i == 0) {
			t.Errorf("query %d cold start %v; batches attribute it to member 0", i, o.ColdStart)
		}
		billed += o.BilledMs
	}
	if billed != rep.BilledMs {
		t.Errorf("member billed sum %d does not reconcile with report %d", billed, rep.BilledMs)
	}
	if outs[0].BilledMs < outs[2].BilledMs {
		t.Errorf("billed remainder should go to the earliest members: %d < %d", outs[0].BilledMs, outs[2].BilledMs)
	}
}

// TestBatchShedWholeBatch pins whole-batch shedding: with the single slot
// held and no queue room, a closed batch sheds every member.
func TestBatchShedWholeBatch(t *testing.T) {
	d := deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)
	arrivals := []time.Duration{0, 1 * ms, 2 * ms, 3 * ms}
	rep, outs, err := Run(d, arrivals, Config{
		MaxInFlight: 1, QueueCap: 0,
		Batch: batching.Config{MaxBatch: 2, MaxDelay: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 2 || rep.Shed != 2 {
		t.Fatalf("served/shed = %d/%d, want 2/2: %+v", rep.Served, rep.Shed, rep)
	}
	for _, i := range []int{2, 3} {
		if !outs[i].Shed || outs[i].Err != ErrShed.Error() || outs[i].BatchSize != 2 {
			t.Errorf("query %d should shed with its batch: %+v", i, outs[i])
		}
	}
	if rep.Batches != 2 {
		t.Errorf("shed batches must still count as closed: %d", rep.Batches)
	}
}

// TestBatchTracedSharesTrace pins that a traced batch hands every member
// the same span tree.
func TestBatchTracedSharesTrace(t *testing.T) {
	d := deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)
	_, outs, err := Run(d, []time.Duration{0, 1 * ms}, Config{
		MaxInFlight: 1, Traced: true,
		Batch: batching.Config{MaxBatch: 2, MaxDelay: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Trace == nil || outs[0].Trace != outs[1].Trace {
		t.Fatalf("batch members must share one trace: %p vs %p", outs[0].Trace, outs[1].Trace)
	}
}

// TestBatchedRealMatchesPerQueryForward is the end-to-end correctness pin:
// a batched Real-mode replay with a distinct input per query must produce,
// for every query, exactly the output of the monolithic per-query forward.
func TestBatchedRealMatchesPerQueryForward(t *testing.T) {
	units := tinyCNN(t)
	rng := rand.New(rand.NewSource(13))
	arrivals := []time.Duration{0, 2 * ms, 4 * ms, 6 * ms, 8 * ms, 500 * ms, 502 * ms}
	inputs := make([]*tensor.Tensor, len(arrivals))
	want := make([]*tensor.Tensor, len(arrivals))
	for i := range inputs {
		inputs[i] = tensor.Rand(rng, 1, 3, 24, 24)
		out, err := partition.ForwardChain(units, inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}
	d := deploy(t, platform.AWSLambda(), 3, runtime.Real)
	rep, outs, err := Run(d, arrivals, Config{
		MaxInFlight: 2, QueueCap: 8,
		Input: func(i int) *tensor.Tensor { return inputs[i] },
		Batch: batching.Config{MaxBatch: 4, MaxDelay: 100 * ms},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != len(arrivals) {
		t.Fatalf("served %d of %d: %+v", rep.Served, len(arrivals), rep)
	}
	for i, o := range outs {
		if o.Output == nil || !tensor.Equal(o.Output, want[i]) {
			t.Errorf("query %d batched output diverged from per-query forward", i)
		}
	}
}

// TestBatchReplayDeterminismProperty replays 100 seeded Poisson traces at
// kernel parallelism 1 and 4 and requires bit-identical reports and
// outcomes — the batched path must stay simnet-deterministic.
func TestBatchReplayDeterminismProperty(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		arrivals, err := workload.Poisson(rand.New(rand.NewSource(seed)), 4, 4*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(arrivals) == 0 {
			continue
		}
		var reports []string
		var digests []string
		for _, workers := range []int{1, 4} {
			restore := par.SetParallelism(workers)
			d := deploy(t, platform.AWSLambda(), seed, runtime.ShapeOnly)
			rep, outs, err := Run(d, arrivals, Config{
				MaxInFlight: 2, QueueCap: 4, SLOMs: 800,
				Batch: batching.Config{MaxBatch: 4, MaxDelay: 200 * ms, EstServeMs: 300},
			})
			restore()
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, string(b))
			digests = append(digests, outcomeDigest(outs))
		}
		if reports[0] != reports[1] {
			t.Fatalf("seed %d: report diverged across parallelism:\n%s\nvs\n%s", seed, reports[0], reports[1])
		}
		if digests[0] != digests[1] {
			t.Fatalf("seed %d: outcome digest diverged: %s vs %s", seed, digests[0], digests[1])
		}
	}
}

// TestGoldenBatchReport pins the full report and outcome digest of a seeded
// batched Real-mode burst replay, across repeat runs and kernel-parallelism
// settings, against testdata/batch_report.golden.
func TestGoldenBatchReport(t *testing.T) {
	replay := func() (*LoadReport, []Outcome) {
		cfg := platform.AWSLambda()
		cfg.WarmIdleMs = 8000
		cfg.PrewarmMs = cfg.ColdStartMs
		d := deploy(t, cfg, 7, runtime.Real)
		x := tensor.Rand(rand.New(rand.NewSource(3)), 1, 3, 24, 24)
		rep, outs, err := Run(d, burstTrace(t), Config{
			MaxInFlight: 4,
			QueueCap:    8,
			SLOMs:       900,
			Input:       func(int) *tensor.Tensor { return x },
			Policy:      BurstAware{Spec: burstSpec(), EstServeMs: 400, LeadMs: 500},
			Batch:       batching.Config{MaxBatch: 4, MaxDelay: 120 * ms, EstServeMs: 400},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, outs
	}
	type run struct {
		report string
		digest string
	}
	var runs []run
	for _, workers := range []int{1, 4, 1} {
		restore := par.SetParallelism(workers)
		rep, outs := replay()
		restore()
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{report: string(b) + "\n", digest: outcomeDigest(outs)})
	}
	for i := 1; i < len(runs); i++ {
		if runs[i] != runs[0] {
			t.Fatalf("batched replay %d diverged:\n%s %s\nvs\n%s %s",
				i, runs[i].report, runs[i].digest, runs[0].report, runs[0].digest)
		}
	}
	got := runs[0].report + "digest " + runs[0].digest + "\n"
	goldenPath := filepath.Join("testdata", "batch_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("batched report diverges from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// noBatchBackend implements Backend but not BatchBackend.
type noBatchBackend struct{ d *runtime.Deployment }

func (n noBatchBackend) Platform() *platform.Platform { return n.d.Platform() }
func (n noBatchBackend) Serve(proc *simnet.Proc, in *tensor.Tensor) (runtime.Result, error) {
	return n.d.Serve(proc, in)
}
func (n noBatchBackend) ServeTraced(proc *simnet.Proc, in *tensor.Tensor) (runtime.Result, *trace.Trace, error) {
	return n.d.ServeTraced(proc, in)
}
func (n noBatchBackend) WarmSets() int  { return n.d.WarmSets() }
func (n noBatchBackend) Prewarm() error { return n.d.Prewarm() }

// TestBatchRunValidation covers the batched config error paths.
func TestBatchRunValidation(t *testing.T) {
	d := deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)
	// Missing MaxDelay is a former-config error.
	if _, _, err := Run(d, nil, Config{MaxInFlight: 1, Batch: batching.Config{MaxBatch: 2}}); err == nil {
		t.Error("batching without MaxDelay must be rejected")
	}
	// A backend without ServeBatch cannot run a batched replay.
	nb := noBatchBackend{d: deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)}
	if _, _, err := Run(nb, nil, Config{
		MaxInFlight: 1,
		Batch:       batching.Config{MaxBatch: 2, MaxDelay: time.Second},
	}); err == nil {
		t.Error("non-batch backend must be rejected when batching is on")
	}
	// MaxBatch 1 means batching off: the plain path accepts any backend.
	if _, _, err := Run(nb, nil, Config{MaxInFlight: 1, Batch: batching.Config{MaxBatch: 1}}); err != nil {
		t.Errorf("MaxBatch 1 should disable batching: %v", err)
	}
}
