package gateway

import (
	"errors"
	"time"

	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// ErrBrownout is reported for queries shed because the gateway is in
// brownout: the platform is too degraded for any plan to hold the SLO, so
// admission is tightened to in-flight capacity only (no queueing) until the
// controller releases the brownout.
var ErrBrownout = errors.New("gateway: brownout, query shed")

// Backend is what the gateway serves through: a single runtime.Deployment,
// or a runtime.Switcher holding several candidate plans the controller
// hot-swaps between.
type Backend interface {
	Platform() *platform.Platform
	Serve(proc *simnet.Proc, input *tensor.Tensor) (runtime.Result, error)
	ServeTraced(proc *simnet.Proc, input *tensor.Tensor) (runtime.Result, *trace.Trace, error)
	WarmSets() int
	Prewarm() error
}

// Router places multi-model queries: Acquire resolves a catalog model ID
// to a backend ready to serve it, charging any load work (storage fetch,
// warm-up) to the calling process's virtual clock. The returned release
// must be called exactly once when the serve finishes; it returns the
// placement's concurrency slot and stamps the model's recency.
// Implementations must be deterministic functions of the virtual clock and
// their own state, like every other gateway collaborator.
type Router interface {
	Acquire(proc *simnet.Proc, model string) (Backend, func(), error)
}

// BatchBackend is a Backend that can serve a whole batch of queries in one
// fork-join round. Required when Config.Batch enables cross-query batching.
type BatchBackend interface {
	Backend
	ServeBatch(proc *simnet.Proc, inputs []*tensor.Tensor, size int) (runtime.BatchResult, error)
	ServeBatchTraced(proc *simnet.Proc, inputs []*tensor.Tensor, size int) (runtime.BatchResult, *trace.Trace, error)
}

// Switchable is a Backend with hot-swappable candidate plans
// (runtime.Switcher). SwitchTo directives are only honoured on one.
type Switchable interface {
	Backend
	Active() int
	Switch(i int) error
}

// HedgeControl is a Backend whose hedging can be toggled at serve time;
// brownout disables hedging on it to shed backup-request cost.
type HedgeControl interface {
	SetHedging(enabled bool)
}

// Statically assert the runtime types satisfy the gateway's interfaces.
var (
	_ Backend      = (*runtime.Deployment)(nil)
	_ BatchBackend = (*runtime.Deployment)(nil)
	_ HedgeControl = (*runtime.Deployment)(nil)
	_ Switchable   = (*runtime.Switcher)(nil)
	_ BatchBackend = (*runtime.Switcher)(nil)
	_ HedgeControl = (*runtime.Switcher)(nil)
)

// ControlObservation is the telemetry handed to the adaptive controller
// each tick: the autoscaler's instantaneous view plus cumulative and
// windowed outcome aggregates. Everything is derived from settled outcomes
// and the platform's billing totals on the virtual clock, so a controller
// that is a pure function of it decides deterministically.
type ControlObservation struct {
	Observation

	// Served/Shed/Faulted/SLOAttained are cumulative settled-query counts.
	Served      int
	Shed        int
	Faulted     int
	SLOAttained int

	// WindowCount is how many of the last Config.Window settles the
	// windowed fields cover (< Window early in the replay).
	WindowCount int
	// WindowSLOPct is SLO attainment over the window, in percent; shed and
	// faulted queries count against it.
	WindowSLOPct float64
	// WindowServedSLOPct is attainment among only the served queries in the
	// window (0 when none were served). During brownout the all-settles
	// attainment is dominated by sheds, so this is the recovery signal: the
	// few admitted queries reflect the platform's actual health.
	WindowServedSLOPct float64
	// WindowMeanMs is the mean arrival-to-settle latency of served queries
	// in the window (0 when none were served).
	WindowMeanMs float64
	// WindowFaulted and WindowShed count faulted / shed settles in the
	// window.
	WindowFaulted int
	WindowShed    int

	// FaultsByKind counts cumulative faulted queries by typed platform
	// fault kind ("failure", "timeout", "evicted", "throttled"); untyped
	// terminal errors count under "other".
	FaultsByKind map[string]int

	// BilledMs is the billing incurred since the replay started, prewarm
	// pings included.
	BilledMs int64

	// ActiveBackend is the active candidate index (0 for a plain
	// deployment backend); Brownout reports the gateway's current mode.
	ActiveBackend int
	Brownout      bool
}

// Directive is the controller's decision for one tick.
type Directive struct {
	// SwitchTo activates the candidate plan with this index; -1 keeps the
	// current one. Ignored unless the backend is Switchable.
	SwitchTo int
	// Brownout is the desired gateway mode: true tightens admission to
	// in-flight capacity (new arrivals past it shed with ErrBrownout, the
	// wait queue stops accepting entries) and disables hedging; false
	// restores normal admission and hedging.
	Brownout bool
}

// Controller closes the loop: the gateway calls Tick at every control
// interval (before autoscaling, so prewarming targets the plan the
// directive selects) and applies the returned directive. Implementations
// must be deterministic functions of (now, obs) and their own state — no
// wall clock, no unseeded randomness — to keep replays bit-reproducible.
type Controller interface {
	Name() string
	Tick(now time.Duration, obs ControlObservation) Directive
}

// windowEntry is one settled query in the gateway's sliding window.
type windowEntry struct {
	served  bool
	sloOK   bool
	faulted bool
	shed    bool
	totalMs float64
}

// controlTick builds the ControlObservation, asks the controller for a
// directive, and applies it. Called from the autoscale process with no
// locks held.
func (g *gateway) controlTick(proc *simnet.Proc, obs Observation) {
	if g.cfg.Controller == nil {
		return
	}
	co := ControlObservation{
		Observation: obs,
		BilledMs:    g.b.Platform().BilledMsTotal() - g.billed0,
		Brownout:    g.brownout,
	}
	if sw, ok := g.b.(Switchable); ok {
		co.ActiveBackend = sw.Active()
	}
	g.mu.Lock()
	co.Served, co.Shed, co.Faulted, co.SLOAttained = g.served, g.shed, g.faulted, g.sloAttained
	co.FaultsByKind = make(map[string]int, len(g.faultKinds))
	for k, n := range g.faultKinds {
		co.FaultsByKind[k] = n
	}
	var sloOK, served int
	var servedMs float64
	for _, e := range g.window {
		if e.sloOK {
			sloOK++
		}
		if e.served {
			served++
			servedMs += e.totalMs
		}
		if e.faulted {
			co.WindowFaulted++
		}
		if e.shed {
			co.WindowShed++
		}
	}
	co.WindowCount = len(g.window)
	if co.WindowCount > 0 {
		co.WindowSLOPct = 100 * float64(sloOK) / float64(co.WindowCount)
	}
	if served > 0 {
		co.WindowMeanMs = servedMs / float64(served)
		co.WindowServedSLOPct = 100 * float64(sloOK) / float64(served)
	}
	g.mu.Unlock()

	dir := g.cfg.Controller.Tick(proc.Now(), co)

	if sw, ok := g.b.(Switchable); ok && dir.SwitchTo >= 0 && dir.SwitchTo != sw.Active() {
		if err := sw.Switch(dir.SwitchTo); err != nil {
			g.mu.Lock()
			if g.scaleErr == nil {
				g.scaleErr = err
			}
			g.mu.Unlock()
			return
		}
		g.mu.Lock()
		g.planSwitches++
		g.mu.Unlock()
		g.mPlanSwitches.Inc()
	}
	if dir.Brownout != g.brownout {
		g.setBrownout(proc, dir.Brownout)
	}
}

// setBrownout flips the gateway's brownout mode: engaging tightens
// admission and disables hedging; releasing restores both and accumulates
// the episode's duration.
func (g *gateway) setBrownout(proc *simnet.Proc, on bool) {
	g.mu.Lock()
	g.brownout = on
	if on {
		g.brownoutSince = proc.Now()
	} else {
		g.brownoutMs += durMs(proc.Now() - g.brownoutSince)
	}
	g.mu.Unlock()
	if hc, ok := g.b.(HedgeControl); ok {
		hc.SetHedging(!on)
	}
	if on {
		g.mBrownouts.Inc()
	}
}

// recordWindow appends one settle to the sliding last-N window.
func (g *gateway) recordWindow(e windowEntry) {
	if g.cfg.Window <= 0 {
		return
	}
	g.window = append(g.window, e)
	if len(g.window) > g.cfg.Window {
		g.window = g.window[len(g.window)-g.cfg.Window:]
	}
}
