package gateway

import (
	"encoding/json"
	"testing"
	"time"

	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/workload"
	"math/rand"
)

// scriptCtl is a deterministic scripted controller: brownout between
// brownFrom and brownTo, then a switch to plan 1.
type scriptCtl struct {
	brownFrom, brownTo, switchAt time.Duration
	ticks                        int
}

func (c *scriptCtl) Name() string { return "script" }

func (c *scriptCtl) Tick(now time.Duration, obs ControlObservation) Directive {
	c.ticks++
	d := Directive{SwitchTo: -1}
	if now >= c.brownFrom && now < c.brownTo {
		d.Brownout = true
	}
	if now >= c.switchAt {
		d.SwitchTo = 1
	}
	return d
}

func TestScriptedControllerSwitchesAndBrownout(t *testing.T) {
	units := tinyCNN(t)
	plan := twoGroupPlan(t, units)
	env := simnet.NewEnv()
	p := platform.New(env, platform.AWSLambda(), 3)
	d1, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := runtime.DeployDefault(p, units, runtime.ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := runtime.NewSwitcher(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	for at := 50 * time.Millisecond; at < 5*time.Second; at += 100 * time.Millisecond {
		arrivals = append(arrivals, at)
	}
	ctl := &scriptCtl{
		brownFrom: 500 * time.Millisecond,
		brownTo:   2 * time.Second,
		switchAt:  3 * time.Second,
	}
	rep, outs, err := Run(sw, arrivals, Config{
		MaxInFlight: 1,
		QueueCap:    2,
		SLOMs:       600,
		Controller:  ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.ticks == 0 {
		t.Fatal("controller was never ticked")
	}
	if rep.Controller != "script" {
		t.Errorf("report controller %q, want script", rep.Controller)
	}
	if rep.PlanSwitches != 1 {
		t.Errorf("plan switches %d, want exactly 1 (idempotent directives)", rep.PlanSwitches)
	}
	if sw.Active() != 1 {
		t.Errorf("active plan %d after replay, want 1", sw.Active())
	}
	if rep.BrownoutSheds == 0 {
		t.Error("brownout with a saturated slot must shed")
	}
	brownoutSheds := 0
	for _, o := range outs {
		if o.Err == ErrBrownout.Error() {
			if !o.Shed {
				t.Errorf("query %d: brownout shed not marked Shed", o.ID)
			}
			if o.ArrivalMs < 500 || o.ArrivalMs >= 2000 {
				t.Errorf("query %d shed by brownout outside the episode at %v ms", o.ID, o.ArrivalMs)
			}
			brownoutSheds++
		}
	}
	if brownoutSheds != rep.BrownoutSheds {
		t.Errorf("typed brownout sheds %d != reported %d", brownoutSheds, rep.BrownoutSheds)
	}
	if rep.BrownoutMs < 1000 || rep.BrownoutMs > 2000 {
		t.Errorf("brownout duration %v ms, want ~1500", rep.BrownoutMs)
	}
	if rep.Window != 50 {
		t.Errorf("window %d, want default 50", rep.Window)
	}
	reg := p.Metrics()
	if got := reg.Counter("gateway.plan_switches").Value(); got != 1 {
		t.Errorf("gateway.plan_switches = %d, want 1", got)
	}
	if got := reg.Counter("gateway.brownouts").Value(); got != 1 {
		t.Errorf("gateway.brownouts = %d, want 1", got)
	}
	if got := reg.Counter("gateway.brownout_shed").Value(); got != int64(rep.BrownoutSheds) {
		t.Errorf("gateway.brownout_shed = %d, want %d", got, rep.BrownoutSheds)
	}
}

// TestNilControllerSwitcherBitIdentical backs the adaptive bench's
// baseline claim: serving through a Switcher holding extra (inactive)
// candidate plans, with no controller, reproduces the plain single-
// deployment replay byte-for-byte — registration costs no RNG draws and no
// virtual time.
func TestNilControllerSwitcherBitIdentical(t *testing.T) {
	replay := func(withSwitcher bool) (string, string) {
		cfg := platform.AWSLambda()
		cfg.WarmIdleMs = 8000
		cfg.PrewarmMs = cfg.ColdStartMs
		units := tinyCNN(t)
		plan := twoGroupPlan(t, units)
		env := simnet.NewEnv()
		p := platform.New(env, cfg, 7)
		d, err := runtime.Deploy(p, units, plan, runtime.Real)
		if err != nil {
			t.Fatal(err)
		}
		var b Backend = d
		if withSwitcher {
			alt, err := runtime.DeployDefault(p, units, runtime.Real)
			if err != nil {
				t.Fatal(err)
			}
			sw, err := runtime.NewSwitcher(d, alt)
			if err != nil {
				t.Fatal(err)
			}
			b = sw
		}
		x := tensor.Rand(rand.New(rand.NewSource(3)), 1, 3, 24, 24)
		rep, outs, err := Run(b, burstTrace(t), Config{
			MaxInFlight: 4,
			QueueCap:    8,
			SLOMs:       900,
			Input:       func(int) *tensor.Tensor { return x },
			Policy:      BurstAware{Spec: burstSpec(), EstServeMs: 400, LeadMs: 500},
		})
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(js), outcomeDigest(outs)
	}
	plainRep, plainDig := replay(false)
	swRep, swDig := replay(true)
	if plainRep != swRep {
		t.Errorf("reports diverged:\n%s\nvs\n%s", plainRep, swRep)
	}
	if plainDig != swDig {
		t.Errorf("outcome digests diverged: %s vs %s", plainDig, swDig)
	}
}

// TestFaultKindsInReport pins the per-kind fault accounting a drift
// detector consumes.
func TestFaultKindsInReport(t *testing.T) {
	cfg := platform.AWSLambda()
	cfg.Faults = platform.FaultProfile{FailureProb: 0.15, EvictionProb: 0.1}
	d := deploy(t, cfg, 21, runtime.ShapeOnly)
	arrivals, err := workload.Poisson(rand.New(rand.NewSource(4)), 3, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep, outs, err := Run(d, arrivals, Config{MaxInFlight: 4, QueueCap: 8, SLOMs: 900})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulted == 0 {
		t.Fatal("fault injection was vacuous")
	}
	var sum int
	for kind, n := range rep.FaultsByKind {
		if kind == "" {
			t.Error("empty fault kind in report")
		}
		sum += n
	}
	if sum != rep.Faulted {
		t.Errorf("faults by kind sum %d != faulted %d: %+v", sum, rep.Faulted, rep.FaultsByKind)
	}
	for _, o := range outs {
		faulted := !o.Shed && o.Err != ""
		if faulted && o.FaultKind == "" {
			t.Errorf("query %d faulted without a kind: %+v", o.ID, o)
		}
		if !faulted && o.FaultKind != "" {
			t.Errorf("query %d has a spurious fault kind: %+v", o.ID, o)
		}
	}
	if rep.WindowSLOPct < 0 || rep.WindowSLOPct > 100 {
		t.Errorf("window SLO pct out of range: %v", rep.WindowSLOPct)
	}
	reg := d.Platform().Metrics()
	var counted int64
	for _, k := range []string{"failure", "timeout", "evicted", "throttled", "other"} {
		counted += reg.Counter("gateway.faults." + k).Value()
	}
	if counted != int64(rep.Faulted) {
		t.Errorf("gateway.faults.* counters sum %d, want %d", counted, rep.Faulted)
	}
}

// TestFixedPoolRewarmsSwitchedPlan pins the policy half of a plan switch:
// with a FixedPool policy the autoscaler re-warms a newly activated plan
// within a control tick, so the switch does not pay a cold-start burst —
// the adaptive bench relies on exactly this to hold attainment through
// mid-replay switches.
func TestFixedPoolRewarmsSwitchedPlan(t *testing.T) {
	replay := func(pol Policy) *LoadReport {
		units := tinyCNN(t)
		plan := twoGroupPlan(t, units)
		env := simnet.NewEnv()
		cfg := platform.AWSLambda()
		cfg.WarmIdleMs = 0 // warm instances never expire on their own
		cfg.PrewarmMs = cfg.ColdStartMs
		p := platform.New(env, cfg, 3)
		d1, err := runtime.Deploy(p, units, plan, runtime.ShapeOnly)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := runtime.DeployDefault(p, units, runtime.ShapeOnly)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := runtime.NewSwitcher(d1, d2)
		if err != nil {
			t.Fatal(err)
		}
		var arrivals []time.Duration
		for at := 50 * time.Millisecond; at < 8*time.Second; at += 200 * time.Millisecond {
			arrivals = append(arrivals, at)
		}
		ctl := &scriptCtl{switchAt: 4 * time.Second}
		rep, _, err := Run(sw, arrivals, Config{
			MaxInFlight: 2,
			QueueCap:    4,
			SLOMs:       600,
			Controller:  ctl,
			Policy:      pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cold := replay(NonePolicy{})
	warm := replay(FixedPool{Sets: 2})
	if warm.PrewarmBilledMs == 0 {
		t.Error("FixedPool never prewarmed")
	}
	if warm.ColdStarts >= cold.ColdStarts {
		t.Errorf("FixedPool did not cut post-switch cold starts: %d vs %d", warm.ColdStarts, cold.ColdStarts)
	}
}

// badCtl directs a switch to a candidate index the switcher doesn't have.
type badCtl struct{}

func (badCtl) Name() string { return "bad" }

func (badCtl) Tick(now time.Duration, obs ControlObservation) Directive {
	return Directive{SwitchTo: 99}
}

// TestControllerBadSwitchFailsReplay pins the failure mode of a directive
// the backend cannot honour: the replay surfaces the switch error instead
// of silently serving on.
func TestControllerBadSwitchFailsReplay(t *testing.T) {
	units := tinyCNN(t)
	env := simnet.NewEnv()
	p := platform.New(env, platform.AWSLambda(), 3)
	d1, err := runtime.DeployDefault(p, units, runtime.ShapeOnly)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := runtime.NewSwitcher(d1)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	for at := 50 * time.Millisecond; at < 2*time.Second; at += 100 * time.Millisecond {
		arrivals = append(arrivals, at)
	}
	if _, _, err := Run(sw, arrivals, Config{MaxInFlight: 1, QueueCap: 2, Controller: badCtl{}}); err == nil {
		t.Fatal("replay with an unsatisfiable switch directive did not fail")
	}
}
