// Package gateway is the serving front door for a deployment: it replays a
// workload arrival trace against the simulated platform, admitting queries
// into a bounded FIFO queue, running up to MaxInFlight concurrent
// Deployment.Serve calls (each on its own simnet process), and shedding
// load once the queue is full — the transient-burst regime §II-A of the
// Gillis paper motivates serverless serving with.
//
// The gateway is simnet-clocked end to end: for a fixed arrival trace,
// platform seed, and policy, a replay is bit-for-bit reproducible, at any
// host kernel parallelism. An optional autoscaling Policy observes the
// gateway each control tick and prewarms warm instance sets ahead of
// demand; prewarming costs real billed milliseconds when the platform
// charges for it (Config.PrewarmMs), so policies trade SLO attainment
// against cost inflation rather than getting warmth for free.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gillis/internal/batching"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// ErrShed is reported for queries rejected at admission because the wait
// queue was full.
var ErrShed = errors.New("gateway: queue full, query shed")

// Config parameterizes a gateway replay.
type Config struct {
	// MaxInFlight caps concurrent Serve calls. Required (> 0).
	MaxInFlight int
	// QueueCap bounds the FIFO wait queue; arrivals past it are shed.
	// Zero means no waiting room: a query either starts or is shed.
	QueueCap int
	// SLOMs is the per-query latency deadline in milliseconds, measured
	// from arrival to settle (queue wait included) — the same latency SLO
	// the core/sloaware planner targets as tmax. Zero disables SLO
	// accounting: every successfully served query attains.
	SLOMs float64
	// TickMs is the autoscaling control interval (default 100 ms).
	TickMs float64
	// Traced serves each query through ServeTraced and retains the trace
	// on its Outcome.
	Traced bool
	// Input supplies the i-th query's input tensor (Real-mode
	// deployments). Nil serves every query with a nil input (ShapeOnly).
	Input func(i int) *tensor.Tensor
	// Policy is the autoscaler (default NonePolicy).
	Policy Policy
	// Window sizes the sliding last-N-settles window behind the windowed
	// report fields and ControlObservation (default 50).
	Window int
	// Controller, when set, closes the adaptive loop: it is ticked every
	// TickMs with a ControlObservation and its directives (plan switches,
	// brownout) are applied before autoscaling. Nil leaves the replay's
	// platform actions exactly as without a controller.
	Controller Controller
	// Batch enables cross-query batching when Batch.MaxBatch >= 2: arrivals
	// form batches that close on size, delay, SLO deadline, or trace drain,
	// and each batch serves through the backend's ServeBatch on a single
	// admission slot. Batch.TickMs and Batch.SLOMs default to the gateway's
	// TickMs and SLOMs. MaxBatch <= 1 leaves the per-query path untouched.
	Batch batching.Config
	// Model tags the i-th arrival with the catalog model it requests, and
	// Router resolves that tag to a serving backend at serve time — the
	// multi-model mesh path. Both must be set together (and cannot combine
	// with batching, which forms single-model batches). Nil leaves the
	// single-backend path bit-identical to a gateway without a mesh.
	Model  func(i int) string
	Router Router
}

func (c Config) withDefaults() Config {
	if c.TickMs <= 0 {
		c.TickMs = 100
	}
	if c.Policy == nil {
		c.Policy = NonePolicy{}
	}
	if c.Window <= 0 {
		c.Window = 50
	}
	return c
}

// Outcome records one query's fate.
type Outcome struct {
	// ID is the query's index in the arrival trace.
	ID int
	// Model is the catalog model the query requested (multi-model replays
	// only; empty on the single-model path).
	Model string `json:",omitempty"`
	// ArrivalMs is the arrival time on the virtual clock.
	ArrivalMs float64
	// QueueMs is the time spent waiting for a serving slot.
	QueueMs float64
	// LatencyMs is the serve latency (the master function's duration);
	// zero for shed queries.
	LatencyMs float64
	// TotalMs is arrival-to-settle: queue wait plus the full client-side
	// serve (upload, retries, download).
	TotalMs float64
	// BilledMs is the query's billed function time (master + workers).
	BilledMs int64
	// ColdStart reports whether the master cold-started.
	ColdStart bool
	// Shed reports the query was rejected at admission (Err is ErrShed's
	// message).
	Shed bool
	// Err is the terminal serve error, empty on success.
	Err string
	// SLOOK reports the query was served successfully within Config.SLOMs.
	SLOOK bool
	// BatchSize is how many queries shared the serve this query rode in: 1
	// on the per-query path, the batch's size in batched mode (including
	// for members of a shed batch), and 0 for queries shed before serving
	// on the per-query path.
	BatchSize int
	// FaultKind is the typed platform fault kind behind Err ("failure",
	// "timeout", "evicted", "throttled"), "placement" for multi-model
	// queries the Router could not place, "other" for untyped terminal
	// errors, and empty for served or shed queries.
	FaultKind string
	// Output is the inference result (Real mode only).
	Output *tensor.Tensor
	// Trace is the query's span tree (Config.Traced only; nil for shed
	// queries, which never reach the platform).
	Trace *trace.Trace
}

// gateway is the per-replay state. Fields are mutex-guarded: simnet runs at
// most one process at a time, but processes are goroutines and the race
// detector rightly wants explicit synchronization.
type gateway struct {
	b       Backend
	cfg     Config
	reg     *trace.Registry
	billed0 int64

	mu       sync.Mutex
	inFlight int
	queue    []*simnet.Promise[struct{}]
	maxQueue int
	done     int
	total    int
	outcomes []Outcome
	scaleErr error

	// Cumulative settle classification and the sliding window, maintained
	// incrementally so the controller reads them without a scan.
	served, shed, faulted, sloAttained int
	faultKinds                         map[string]int
	window                             []windowEntry

	// Per-model settle classification (multi-model replays only).
	byModel map[string]*ModelStats

	// Brownout episode state (written only by the autoscale process).
	brownout      bool
	brownoutSince time.Duration
	brownoutMs    float64
	brownoutSheds int
	planSwitches  int

	// Batched-mode state (nil/zero when Config.Batch is off). arrived
	// counts arrivals that entered the former, so the drain rule knows when
	// no future query can top a batch up; waiters maps a forming member's
	// query ID to the promise its process blocks on.
	former       *batching.Former
	bb           BatchBackend
	waiters      map[int]*simnet.Promise[batchAssign]
	arrived      int
	batches      int
	batchSizeSum int
	batchClosed  map[string]int

	mQueries, mAdmitted, mShed, mServed, mFaulted *trace.Counter
	mSLOOK, mSLOViolated, mColdStarts             *trace.Counter
	mPlanSwitches, mBrownouts, mBrownoutShed      *trace.Counter
	mBatches                                      *trace.Counter
	hQueueDepth, hQueueWaitMs, hTotalMs           *trace.Histogram
	hBatchSize                                    *trace.Histogram
}

// Run replays the arrival trace (strictly increasing offsets, as produced
// by package workload) against the backend — a plain deployment, or a
// runtime.Switcher when an adaptive controller swaps plans — and drains the
// simulation. It returns the aggregate LoadReport alongside every query's
// Outcome, indexed by arrival order.
func Run(b Backend, arrivals []time.Duration, cfg Config) (*LoadReport, []Outcome, error) {
	if cfg.MaxInFlight <= 0 {
		return nil, nil, fmt.Errorf("gateway: MaxInFlight must be positive, got %d", cfg.MaxInFlight)
	}
	if cfg.QueueCap < 0 {
		return nil, nil, fmt.Errorf("gateway: QueueCap must be non-negative, got %d", cfg.QueueCap)
	}
	if (cfg.Model == nil) != (cfg.Router == nil) {
		return nil, nil, fmt.Errorf("gateway: Model and Router must be set together")
	}
	if cfg.Router != nil && cfg.Batch.MaxBatch >= 2 {
		return nil, nil, fmt.Errorf("gateway: multi-model routing cannot combine with batching")
	}
	cfg = cfg.withDefaults()
	p := b.Platform()
	reg := p.Metrics()
	g := &gateway{
		b:             b,
		cfg:           cfg,
		reg:           reg,
		total:         len(arrivals),
		outcomes:      make([]Outcome, len(arrivals)),
		faultKinds:    make(map[string]int),
		mQueries:      reg.Counter("gateway.queries"),
		mAdmitted:     reg.Counter("gateway.admitted"),
		mShed:         reg.Counter("gateway.shed"),
		mServed:       reg.Counter("gateway.served"),
		mFaulted:      reg.Counter("gateway.faulted"),
		mSLOOK:        reg.Counter("gateway.slo_attained"),
		mSLOViolated:  reg.Counter("gateway.slo_violated"),
		mColdStarts:   reg.Counter("gateway.cold_starts"),
		mPlanSwitches: reg.Counter("gateway.plan_switches"),
		mBrownouts:    reg.Counter("gateway.brownouts"),
		mBrownoutShed: reg.Counter("gateway.brownout_shed"),
		hQueueDepth:   reg.Histogram("gateway.queue_depth"),
		hQueueWaitMs:  reg.Histogram("gateway.queue_wait_ms"),
		hTotalMs:      reg.Histogram("gateway.total_ms"),
	}

	if err := g.setupBatching(b, cfg); err != nil {
		return nil, nil, err
	}

	billed0 := p.BilledMsTotal()
	g.billed0 = billed0
	prewarm0 := p.PrewarmBilledMs()
	env := p.Env()

	// The dispatcher walks the trace on the virtual clock and launches one
	// process per query at its arrival instant.
	env.Go("gateway-dispatch", func(proc *simnet.Proc) {
		for i, at := range arrivals {
			proc.Sleep(at - proc.Now())
			i := i
			env.Go(fmt.Sprintf("query-%d", i), func(qp *simnet.Proc) {
				g.query(qp, i)
			})
		}
	})
	env.Go("gateway-autoscale", func(proc *simnet.Proc) {
		g.autoscale(proc)
	})
	if err := env.Run(); err != nil {
		return nil, nil, err
	}
	if g.scaleErr != nil {
		return nil, nil, g.scaleErr
	}
	rep := g.report(p.BilledMsTotal()-billed0, p.PrewarmBilledMs()-prewarm0)
	return rep, g.outcomes, nil
}

// query admits one arrival: start immediately, wait in the FIFO queue, or
// shed.
func (g *gateway) query(proc *simnet.Proc, i int) {
	if g.former != nil {
		g.batchedQuery(proc, i)
		return
	}
	arrivalMs := durMs(proc.Now())
	var model string
	if g.cfg.Model != nil {
		model = g.cfg.Model(i)
	}
	g.mQueries.Inc()

	g.mu.Lock()
	switch {
	case g.inFlight < g.cfg.MaxInFlight:
		g.inFlight++
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
	case g.brownout:
		// Brownout: the queue is closed. An arrival that cannot start
		// immediately is shed with the typed brownout error; entries already
		// queued keep their place.
		g.brownoutSheds++
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
		g.mShed.Inc()
		g.mBrownoutShed.Inc()
		g.mSLOViolated.Inc()
		g.settle(i, Outcome{ID: i, Model: model, ArrivalMs: arrivalMs, Shed: true, Err: ErrBrownout.Error()})
		return
	case len(g.queue) < g.cfg.QueueCap:
		pr := simnet.NewPromise[struct{}](proc.Env())
		g.queue = append(g.queue, pr)
		if len(g.queue) > g.maxQueue {
			g.maxQueue = len(g.queue)
		}
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
		// A finishing query hands its slot to the queue head directly, so
		// resolution implies the in-flight accounting already covers us.
		if _, err := pr.Wait(proc); err != nil {
			g.settle(i, Outcome{ID: i, Model: model, ArrivalMs: arrivalMs, Err: err.Error()})
			return
		}
	default:
		g.hQueueDepth.Observe(float64(len(g.queue)))
		g.mu.Unlock()
		g.mShed.Inc()
		g.mSLOViolated.Inc()
		g.settle(i, Outcome{ID: i, Model: model, ArrivalMs: arrivalMs, Shed: true, Err: ErrShed.Error()})
		return
	}

	g.mAdmitted.Inc()
	o := g.serve(proc, i, arrivalMs, model)

	// Release the slot: hand it to the queue head if anyone is waiting.
	g.mu.Lock()
	if len(g.queue) > 0 {
		head := g.queue[0]
		g.queue = g.queue[1:]
		g.mu.Unlock()
		head.Resolve(struct{}{})
	} else {
		g.inFlight--
		g.mu.Unlock()
	}
	g.settle(i, o)
}

// serve runs the admitted query to completion and builds its Outcome. On
// the multi-model path the Router resolves the backend first — a cache
// miss loads the model on this query's process, so the load time lands in
// TotalMs (and counts against the SLO) but not in LatencyMs.
func (g *gateway) serve(proc *simnet.Proc, i int, arrivalMs float64, model string) Outcome {
	startMs := durMs(proc.Now())
	backend := g.b
	release := func() {}
	if g.cfg.Router != nil {
		rb, rel, err := g.cfg.Router.Acquire(proc, model)
		if err != nil {
			o := Outcome{
				ID:        i,
				Model:     model,
				ArrivalMs: arrivalMs,
				QueueMs:   startMs - arrivalMs,
				TotalMs:   durMs(proc.Now()) - arrivalMs,
				Err:       err.Error(),
				FaultKind: "placement",
			}
			g.hQueueWaitMs.Observe(o.QueueMs)
			g.hTotalMs.Observe(o.TotalMs)
			g.mFaulted.Inc()
			g.mSLOViolated.Inc()
			g.reg.Counter("gateway.faults." + o.FaultKind).Inc()
			return o
		}
		backend = rb
		release = rel
	}
	var in *tensor.Tensor
	if g.cfg.Input != nil {
		in = g.cfg.Input(i)
	}
	var res runtime.Result
	var tr *trace.Trace
	var err error
	if g.cfg.Traced {
		res, tr, err = backend.ServeTraced(proc, in)
	} else {
		res, err = backend.Serve(proc, in)
	}
	release()
	o := Outcome{
		ID:        i,
		Model:     model,
		ArrivalMs: arrivalMs,
		QueueMs:   startMs - arrivalMs,
		TotalMs:   durMs(proc.Now()) - arrivalMs,
		Trace:     tr,
	}
	g.hQueueWaitMs.Observe(o.QueueMs)
	g.hTotalMs.Observe(o.TotalMs)
	if err != nil {
		o.Err = err.Error()
		o.BilledMs = platform.BilledMsOf(err)
		if k, ok := platform.FaultKindOf(err); ok {
			o.FaultKind = k.String()
		} else {
			o.FaultKind = "other"
		}
		g.mFaulted.Inc()
		g.mSLOViolated.Inc()
		g.reg.Counter("gateway.faults." + o.FaultKind).Inc()
		return o
	}
	o.LatencyMs = res.LatencyMs
	o.BilledMs = res.BilledMs
	o.ColdStart = res.ColdStart
	o.Output = res.Output
	o.BatchSize = 1
	o.SLOOK = g.cfg.SLOMs <= 0 || o.TotalMs <= g.cfg.SLOMs
	g.mServed.Inc()
	if res.ColdStart {
		g.mColdStarts.Inc()
	}
	if o.SLOOK {
		g.mSLOOK.Inc()
	} else {
		g.mSLOViolated.Inc()
	}
	return o
}

// settle records the outcome, classifies it into the cumulative and
// windowed aggregates, and counts the query done (the autoscaler's exit
// condition).
func (g *gateway) settle(i int, o Outcome) {
	e := windowEntry{sloOK: o.SLOOK, totalMs: o.TotalMs}
	g.mu.Lock()
	g.outcomes[i] = o
	g.done++
	switch {
	case o.Shed:
		g.shed++
		e.shed = true
	case o.Err != "":
		g.faulted++
		e.faulted = true
		kind := o.FaultKind
		if kind == "" {
			kind = "other"
		}
		g.faultKinds[kind]++
	default:
		g.served++
		e.served = true
		if o.SLOOK {
			g.sloAttained++
		}
	}
	if o.Model != "" {
		if g.byModel == nil {
			g.byModel = make(map[string]*ModelStats)
		}
		ms := g.byModel[o.Model]
		if ms == nil {
			ms = &ModelStats{}
			g.byModel[o.Model] = ms
		}
		switch {
		case o.Shed:
			ms.Shed++
		case o.Err != "":
			ms.Faulted++
		default:
			ms.Served++
		}
		if !o.SLOOK {
			ms.SLOMiss++
		}
	}
	g.recordWindow(e)
	g.mu.Unlock()
}

// autoscale runs the control loop: each tick it observes the gateway,
// asks the policy for a warm-set target, and prewarms the difference. It
// exits once every query has settled so the simulation can drain.
func (g *gateway) autoscale(proc *simnet.Proc) {
	tick := time.Duration(g.cfg.TickMs * float64(time.Millisecond))
	for {
		g.mu.Lock()
		obs := Observation{
			InFlight: g.inFlight,
			QueueLen: len(g.queue),
			Done:     g.done,
			Total:    g.total,
		}
		g.mu.Unlock()
		if obs.Done >= obs.Total {
			// Close any still-open brownout episode so the report's
			// accumulated duration covers it.
			if g.brownout {
				g.setBrownout(proc, false)
			}
			return
		}
		// Tick-driven batch closes fire first (the SLO rule budgets one
		// tick of lead time), then the adaptive controller, so autoscaling
		// targets the plan (and admission mode) its directive selects.
		g.batchTick(proc)
		g.controlTick(proc, obs)
		if g.scaleErr != nil {
			return
		}
		obs.WarmSets = g.b.WarmSets()
		target := g.cfg.Policy.Target(proc.Now(), obs)
		// Busy instances return to the pool when they finish, so the
		// standing capacity is warm sets plus in-flight queries; only the
		// shortfall needs new instances.
		for have := obs.WarmSets + obs.InFlight; have < target; have++ {
			if err := g.b.Prewarm(); err != nil {
				g.mu.Lock()
				if g.scaleErr == nil {
					g.scaleErr = fmt.Errorf("gateway: prewarm: %w", err)
				}
				g.mu.Unlock()
				return
			}
		}
		proc.Sleep(tick)
	}
}

// durMs converts a virtual-clock duration to milliseconds.
func durMs(d time.Duration) float64 { return float64(d) / 1e6 }
