package gateway

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/par"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace/tracetest"
	"gillis/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the load-report golden file")

// tinyCNN is the runtime test model: stem conv+bn+relu, maxpool, residual
// block, avgpool.
func tinyCNN(t *testing.T) []*partition.Unit {
	t.Helper()
	g := graph.New("tinycnn", []int{3, 24, 24})
	g.MustAdd(nn.NewConv2D("stem", 3, 8, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 8))
	g.MustAdd(nn.NewReLU("stem_relu"))
	pool := g.MustAdd(nn.NewMaxPool2D("pool", 3, 2, 1))
	c1 := g.MustAdd(nn.NewConv2D("b_conv1", 8, 8, 3, 1, 1), pool)
	b1 := g.MustAdd(nn.NewBatchNorm("b_bn1", 8), c1)
	r1 := g.MustAdd(nn.NewReLU("b_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D("b_conv2", 8, 8, 3, 1, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm("b_bn2", 8), c2)
	add := g.MustAdd(nn.NewAdd("b_add"), b2, pool)
	g.MustAdd(nn.NewReLU("b_relu2"), add)
	g.MustAdd(nn.NewAvgPool2D("avg", 2, 2))
	g.Init(42)
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func twoGroupPlan(t *testing.T, units []*partition.Unit) *partition.Plan {
	t.Helper()
	plan := &partition.Plan{Model: "tinycnn", Groups: []partition.GroupPlan{
		{First: 0, Last: 0, Option: partition.Option{Dim: partition.DimChannel, Parts: 2}},
		{First: 1, Last: 3, Option: partition.Option{Dim: partition.DimSpatial, Parts: 2}, OnMaster: true},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	return plan
}

// burstTrace is the shared seeded 60 s burst trace.
func burstSpec() workload.BurstSpec {
	return workload.BurstSpec{BaseRate: 0.4, BurstRate: 3, Period: 20 * time.Second, BurstLen: 5 * time.Second}
}

func burstTrace(t *testing.T) []time.Duration {
	t.Helper()
	arrivals, err := workload.Bursty(rand.New(rand.NewSource(42)), burstSpec(), 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return arrivals
}

// deploy builds a fresh platform + deployment for one replay.
func deploy(t *testing.T, cfg platform.Config, seed int64, mode runtime.ExecMode, opts ...runtime.DeployOption) *runtime.Deployment {
	t.Helper()
	units := tinyCNN(t)
	plan := twoGroupPlan(t, units)
	env := simnet.NewEnv()
	p := platform.New(env, cfg, seed)
	d, err := runtime.Deploy(p, units, plan, mode, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// outcomeDigest hashes every outcome's observable fields so two replays can
// be compared bit-for-bit without storing each outcome in the golden file.
func outcomeDigest(outs []Outcome) string {
	h := fnv.New64a()
	for _, o := range outs {
		fmt.Fprintf(h, "%d|%.6f|%.6f|%.6f|%.6f|%d|%v|%v|%v|%q\n",
			o.ID, o.ArrivalMs, o.QueueMs, o.LatencyMs, o.TotalMs,
			o.BilledMs, o.ColdStart, o.Shed, o.SLOOK, o.Err)
		if o.Output != nil {
			for _, v := range o.Output.Data() {
				fmt.Fprintf(h, "%x,", v)
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func goldenReplay(t *testing.T) (*LoadReport, []Outcome) {
	t.Helper()
	cfg := platform.AWSLambda()
	cfg.WarmIdleMs = 8000 // pools drain between the 20 s-apart bursts
	cfg.PrewarmMs = cfg.ColdStartMs
	d := deploy(t, cfg, 7, runtime.Real)
	x := tensor.Rand(rand.New(rand.NewSource(3)), 1, 3, 24, 24)
	rep, outs, err := Run(d, burstTrace(t), Config{
		MaxInFlight: 4,
		QueueCap:    8,
		SLOMs:       900,
		Input:       func(int) *tensor.Tensor { return x },
		Policy:      BurstAware{Spec: burstSpec(), EstServeMs: 400, LeadMs: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, outs
}

// TestGoldenLoadReport pins the full report of a seeded 60 s burst replay —
// and asserts the replay is bit-for-bit deterministic across repeat runs
// and host kernel-parallelism settings (Real-mode outputs included).
func TestGoldenLoadReport(t *testing.T) {
	type run struct {
		report string
		digest string
		outs   []Outcome
	}
	var runs []run
	for _, workers := range []int{1, 4, 1} {
		restore := par.SetParallelism(workers)
		rep, outs := goldenReplay(t)
		restore()
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{report: string(b) + "\n", digest: outcomeDigest(outs), outs: outs})
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].report != runs[0].report {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, runs[i].report, runs[0].report)
		}
		if runs[i].digest != runs[0].digest {
			t.Fatalf("replay %d outcome digest diverged: %s vs %s", i, runs[i].digest, runs[0].digest)
		}
		for j, o := range runs[i].outs {
			ref := runs[0].outs[j]
			if (o.Output == nil) != (ref.Output == nil) || (o.Output != nil && !tensor.Equal(o.Output, ref.Output)) {
				t.Fatalf("query %d output not bitwise-stable across kernel parallelism", j)
			}
		}
	}

	got := runs[0].report + "digest " + runs[0].digest + "\n"
	goldenPath := filepath.Join("testdata", "load_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("load report diverges from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestChaosReplayTraceInvariants runs the burst replay under injected
// faults with tracing on and checks every admitted query's span tree, plus
// exact billing reconciliation: per-span billed-ms across all traces must
// sum to the platform's billed total minus the autoscaler's prewarm pings
// (which no query span carries).
func TestChaosReplayTraceInvariants(t *testing.T) {
	cfg := platform.AWSLambda()
	cfg.WarmIdleMs = 8000
	cfg.PrewarmMs = cfg.ColdStartMs
	cfg.Faults = platform.FaultProfile{FailureProb: 0.05, StragglerProb: 0.1, StragglerFactor: 3, EvictionProb: 0.03}
	d := deploy(t, cfg, 42, runtime.ShapeOnly,
		runtime.WithRetries(3, 25), runtime.WithHedging(95), runtime.WithMasterFallback())
	rep, outs, err := Run(d, burstTrace(t), Config{
		MaxInFlight: 4,
		QueueCap:    8,
		SLOMs:       900,
		Traced:      true,
		Policy:      TargetConcurrency{Headroom: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served == 0 {
		t.Fatal("chaos replay served nothing")
	}
	var billedInTraces int64
	failedSpans := 0
	for _, o := range outs {
		if o.Shed {
			if o.Trace != nil {
				t.Fatalf("query %d: shed queries must not reach the platform", o.ID)
			}
			continue
		}
		if o.Trace == nil {
			t.Fatalf("query %d: admitted query has no trace", o.ID)
		}
		tracetest.CheckWellFormed(t, o.Trace)
		failedSpans += tracetest.CheckFaultKinds(t, o.Trace)
		billedInTraces += tracetest.BilledMsSum(o.Trace)
	}
	if failedSpans == 0 {
		t.Error("fault injection was vacuous: no failed invocation spans")
	}
	p := d.Platform()
	if want := p.BilledMsTotal() - p.PrewarmBilledMs(); billedInTraces != want {
		t.Errorf("per-span billing across traces = %d ms, want platform total %d", billedInTraces, want)
	}
	if rep.PrewarmBilledMs == 0 {
		t.Error("reactive policy never prewarmed under load")
	}
}

// TestQueueAndShed pins the admission state machine: with one slot and one
// queue seat, the third and fourth back-to-back arrivals are shed.
func TestQueueAndShed(t *testing.T) {
	d := deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)
	arrivals := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond,
	}
	rep, outs, err := Run(d, arrivals, Config{MaxInFlight: 1, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 2 || rep.Shed != 2 {
		t.Fatalf("served/shed = %d/%d, want 2/2: %+v", rep.Served, rep.Shed, rep)
	}
	if outs[0].Shed || outs[0].QueueMs != 0 {
		t.Errorf("query 0 should start immediately: %+v", outs[0])
	}
	if outs[1].Shed || outs[1].QueueMs <= 0 {
		t.Errorf("query 1 should wait in queue: %+v", outs[1])
	}
	for _, i := range []int{2, 3} {
		if !outs[i].Shed || outs[i].Err != ErrShed.Error() {
			t.Errorf("query %d should be shed with ErrShed: %+v", i, outs[i])
		}
	}
	reg := d.Platform().Metrics()
	if got := reg.Counter("gateway.shed").Value(); got != 2 {
		t.Errorf("gateway.shed = %d, want 2", got)
	}
	if got := reg.Counter("gateway.admitted").Value(); got != 2 {
		t.Errorf("gateway.admitted = %d, want 2", got)
	}
	if got := reg.Counter("gateway.queries").Value(); got != 4 {
		t.Errorf("gateway.queries = %d, want 4", got)
	}
	if rep.MaxQueue != 1 {
		t.Errorf("max queue %d, want 1", rep.MaxQueue)
	}
}

// TestRunValidatesConfig covers the config error paths.
func TestRunValidatesConfig(t *testing.T) {
	d := deploy(t, platform.AWSLambda(), 1, runtime.ShapeOnly)
	if _, _, err := Run(d, nil, Config{MaxInFlight: 0}); err == nil {
		t.Error("MaxInFlight 0 must be rejected")
	}
	if _, _, err := Run(d, nil, Config{MaxInFlight: 1, QueueCap: -1}); err == nil {
		t.Error("negative QueueCap must be rejected")
	}
	// An empty trace is a valid degenerate replay.
	rep, outs, err := Run(d, nil, Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 0 || len(outs) != 0 {
		t.Errorf("empty replay: %+v", rep)
	}
}

// TestPolicyTargets pins the three policies' arithmetic.
func TestPolicyTargets(t *testing.T) {
	obs := Observation{InFlight: 3, QueueLen: 2, WarmSets: 1}
	if got := (NonePolicy{}).Target(0, obs); got != 0 {
		t.Errorf("NonePolicy target %d, want 0", got)
	}
	if got := (TargetConcurrency{}).Target(0, obs); got != 5 {
		t.Errorf("TargetConcurrency target %d, want in-flight 3 + queue 2", got)
	}
	if got := (TargetConcurrency{Headroom: 2}).Target(0, obs); got != 7 {
		t.Errorf("TargetConcurrency+2 target %d, want 7", got)
	}
	spec := workload.BurstSpec{BaseRate: 1, BurstRate: 10, Period: 10 * time.Second, BurstLen: 2 * time.Second}
	ba := BurstAware{Spec: spec, EstServeMs: 500, LeadMs: 1000}
	// Inside a burst window: ceil(10 qps * 0.5 s) = 5.
	if got := ba.Target(1*time.Second, obs); got != 5 {
		t.Errorf("in-burst target %d, want 5", got)
	}
	// Mid-period, far from the next window: base rate only.
	if got := ba.Target(5*time.Second, obs); got != 1 {
		t.Errorf("off-burst target %d, want 1", got)
	}
	// Within LeadMs of the next window: burst rate already.
	if got := ba.Target(9500*time.Millisecond, obs); got != 5 {
		t.Errorf("lead-in target %d, want 5", got)
	}
	if got := (FixedPool{Sets: 4}).Target(0, obs); got != 4 {
		t.Errorf("FixedPool target %d, want 4", got)
	}
	for _, p := range []Policy{NonePolicy{}, TargetConcurrency{}, BurstAware{}, FixedPool{}} {
		if p.Name() == "" {
			t.Errorf("%T has no name", p)
		}
	}
}

// TestPrewarmPolicyCutsColdStarts compares NonePolicy against a reactive
// policy on the same seed: keeping instances warm must not increase cold
// starts, and must show up as prewarm spend.
func TestPrewarmPolicyCutsColdStarts(t *testing.T) {
	replay := func(pol Policy) *LoadReport {
		cfg := platform.AWSLambda()
		cfg.WarmIdleMs = 300 // shorter than the mean 500 ms arrival gap
		cfg.PrewarmMs = 100
		d := deploy(t, cfg, 5, runtime.ShapeOnly)
		arrivals, err := workload.Poisson(rand.New(rand.NewSource(9)), 2, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := Run(d, arrivals, Config{MaxInFlight: 4, QueueCap: 8, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	none := replay(NonePolicy{})
	react := replay(TargetConcurrency{Headroom: 1})
	if none.PrewarmBilledMs != 0 {
		t.Errorf("NonePolicy spent %d ms prewarming", none.PrewarmBilledMs)
	}
	if react.PrewarmBilledMs == 0 {
		t.Error("reactive policy never prewarmed")
	}
	if react.ColdStarts > none.ColdStarts {
		t.Errorf("reactive policy cold-started more than none: %d vs %d", react.ColdStarts, none.ColdStarts)
	}
	if react.ColdStartPct >= none.ColdStartPct && none.ColdStarts > 1 {
		t.Errorf("prewarming bought nothing: %.1f%% vs %.1f%% cold", react.ColdStartPct, none.ColdStartPct)
	}
}
