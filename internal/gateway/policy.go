package gateway

import (
	"math"
	"time"

	"gillis/internal/workload"
)

// Observation is what a Policy sees each control tick.
type Observation struct {
	// InFlight is the number of queries currently being served.
	InFlight int
	// QueueLen is the number of queries waiting for a slot.
	QueueLen int
	// WarmSets is the deployment's idle warm instance-set count.
	WarmSets int
	// Done and Total report replay progress.
	Done, Total int
}

// Policy decides how many warm instance sets the deployment should have
// standing by. The gateway prewarms up to the target each tick (it never
// tears warm instances down — the platform's idle expiry does that, which
// is exactly how real FaaS warm pools drain).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Target returns the desired warm-set count at virtual time now.
	Target(now time.Duration, obs Observation) int
}

// NonePolicy never prewarms: every pool miss pays a cold start, and
// nothing is spent keeping instances warm. The cost floor and the SLO
// ceiling's worst case.
type NonePolicy struct{}

// Name implements Policy.
func (NonePolicy) Name() string { return "none" }

// Target implements Policy.
func (NonePolicy) Target(time.Duration, Observation) int { return 0 }

// TargetConcurrency reactively tracks observed demand: the target is the
// current in-flight count plus the queue backlog plus a fixed headroom. It
// only learns about a burst after the burst's queries have already
// arrived, so the burst's leading edge still pays cold starts.
type TargetConcurrency struct {
	// Headroom is added on top of observed demand (default 0).
	Headroom int
}

// Name implements Policy.
func (p TargetConcurrency) Name() string { return "target-concurrency" }

// Target implements Policy.
func (p TargetConcurrency) Target(_ time.Duration, obs Observation) int {
	return obs.InFlight + obs.QueueLen + p.Headroom
}

// BurstAware prewarms from the workload schedule itself: inside a burst
// window — or within LeadMs of one starting — it targets enough warm sets
// to absorb the burst rate by Little's law (rate × service time); outside,
// the base rate. It pays for warmth it may not use, buying SLO attainment
// at the burst's leading edge.
type BurstAware struct {
	// Spec is the arrival process the gateway is serving.
	Spec workload.BurstSpec
	// EstServeMs estimates one query's service time.
	EstServeMs float64
	// LeadMs prewarms this far ahead of a burst window (default 0:
	// prewarm only once inside the window).
	LeadMs float64
}

// Name implements Policy.
func (p BurstAware) Name() string { return "burst-aware" }

// Target implements Policy.
func (p BurstAware) Target(now time.Duration, obs Observation) int {
	rate := p.Spec.BaseRate
	lead := time.Duration(p.LeadMs * float64(time.Millisecond))
	if workload.InBurst(p.Spec, now) || workload.InBurst(p.Spec, now+lead) {
		rate = p.Spec.BurstRate
	}
	return int(math.Ceil(rate * p.EstServeMs / 1000))
}

// FixedPool keeps a constant number of warm instance sets standing by for
// the active deployment. On a plain backend it is a static warm pool; on a
// switcher it re-warms each newly activated plan within a control tick,
// which is what keeps a controller's plan switch from paying a cold-start
// burst on its first queries.
type FixedPool struct {
	// Sets is the warm-set target (typically the gateway's MaxInFlight).
	Sets int
}

// Name implements Policy.
func (p FixedPool) Name() string { return "fixed-pool" }

// Target implements Policy.
func (p FixedPool) Target(time.Duration, Observation) int { return p.Sets }
