package gateway

import (
	"math"
	"sort"
)

// LoadReport aggregates one gateway replay. Every field is derived
// deterministically from the outcomes and the platform's billing totals,
// so for a fixed seed and trace the report is byte-stable under JSON
// encoding — bench golden files and baselines pin it directly.
type LoadReport struct {
	// Policy is the autoscaling policy's name.
	Policy string `json:"policy"`
	// Queries counts every arrival; Served/Shed/Faulted partition how the
	// non-attaining remainder fell out.
	Queries int `json:"queries"`
	Served  int `json:"served"`
	Shed    int `json:"shed"`
	Faulted int `json:"faulted"`
	// SLOAttained counts queries served within the deadline; SLOPct is the
	// attainment ratio over all arrivals (shed and faulted queries count
	// against it).
	SLOAttained int     `json:"slo_attained"`
	SLOPct      float64 `json:"slo_pct"`
	// GoodputQPS is SLO-attained queries per second of makespan.
	GoodputQPS float64 `json:"goodput_qps"`
	// MeanMs/P50Ms/P99Ms summarize arrival-to-settle latency over served
	// queries (exact order statistics, not histogram estimates).
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// ColdStarts counts served queries whose master cold-started;
	// ColdStartPct is their share of served queries.
	ColdStarts   int     `json:"cold_starts"`
	ColdStartPct float64 `json:"cold_start_pct"`
	// MaxQueue is the deepest the wait queue got.
	MaxQueue int `json:"max_queue"`
	// BilledMs is the invocation billing the replay incurred;
	// PrewarmBilledMs the autoscaler's warm-up pings on top.
	BilledMs        int64 `json:"billed_ms"`
	PrewarmBilledMs int64 `json:"prewarm_billed_ms"`
	// CostPer1K is total billed ms (invocations + prewarming) normalized
	// per thousand arriving queries — the cost axis policies inflate.
	CostPer1K float64 `json:"cost_per_1k_ms"`
	// MakespanMs spans the first arrival to the last settle.
	MakespanMs float64 `json:"makespan_ms"`
	// FaultsByKind partitions Faulted by typed platform fault kind (plus
	// "other" for untyped terminal errors). Omitted when nothing faulted.
	FaultsByKind map[string]int `json:"faults_by_kind,omitempty"`
	// Window is the sliding-window size behind WindowSLOPct, which reports
	// SLO attainment over the last Window settles of the replay — the
	// drift signal the adaptive controller watches, frozen at its final
	// value.
	Window       int     `json:"window"`
	WindowSLOPct float64 `json:"window_slo_pct"`
	// Controller names the adaptive controller, when one ran.
	Controller string `json:"controller,omitempty"`
	// PlanSwitches counts controller-commanded plan swaps; BrownoutSheds
	// the queries shed by brownout admission; BrownoutMs the accumulated
	// brownout duration.
	PlanSwitches  int     `json:"plan_switches,omitempty"`
	BrownoutSheds int     `json:"brownout_sheds,omitempty"`
	BrownoutMs    float64 `json:"brownout_ms,omitempty"`
	// Batches counts closed batches in a batched replay (shed batches
	// included); MeanBatch is the mean members per batch; BatchClosedBy
	// partitions the closes by rule ("size", "slo", "delay", "drain"). All
	// omitted on the per-query path, keeping unbatched reports
	// byte-identical to before batching existed.
	Batches       int            `json:"batches,omitempty"`
	MeanBatch     float64        `json:"mean_batch,omitempty"`
	BatchClosedBy map[string]int `json:"batch_closed_by,omitempty"`
	// ByModel partitions outcomes by requested catalog model in a
	// multi-model (mesh-routed) replay. Omitted on the single-model path,
	// keeping existing reports byte-identical to before the mesh existed.
	ByModel map[string]*ModelStats `json:"by_model,omitempty"`
}

// ModelStats partitions one catalog model's arrivals by fate. SLOMiss
// counts the model's arrivals that did not attain the SLO — shed and
// faulted queries count against it, like the report's global SLOPct.
type ModelStats struct {
	Served  int `json:"served"`
	Shed    int `json:"shed"`
	Faulted int `json:"faulted,omitempty"`
	SLOMiss int `json:"slo_miss"`
}

// report builds the LoadReport from settled outcomes. The makespan comes
// from the outcomes themselves, not the drained clock (the autoscaler's
// final tick pads the latter).
func (g *gateway) report(billedMs, prewarmMs int64) *LoadReport {
	rep := &LoadReport{
		Policy:          g.cfg.Policy.Name(),
		Queries:         g.total,
		MaxQueue:        g.maxQueue,
		BilledMs:        billedMs - prewarmMs,
		PrewarmBilledMs: prewarmMs,
		Window:          g.cfg.Window,
		PlanSwitches:    g.planSwitches,
		BrownoutSheds:   g.brownoutSheds,
		BrownoutMs:      round3(g.brownoutMs),
	}
	if g.cfg.Controller != nil {
		rep.Controller = g.cfg.Controller.Name()
	}
	if g.batches > 0 {
		rep.Batches = g.batches
		rep.MeanBatch = round3(float64(g.batchSizeSum) / float64(g.batches))
		rep.BatchClosedBy = make(map[string]int, len(g.batchClosed))
		for k, n := range g.batchClosed {
			rep.BatchClosedBy[k] = n
		}
	}
	if len(g.faultKinds) > 0 {
		rep.FaultsByKind = make(map[string]int, len(g.faultKinds))
		for k, n := range g.faultKinds {
			rep.FaultsByKind[k] = n
		}
	}
	if len(g.byModel) > 0 {
		rep.ByModel = make(map[string]*ModelStats, len(g.byModel))
		for m, ms := range g.byModel {
			cp := *ms
			rep.ByModel[m] = &cp
		}
	}
	var winOK int
	for _, e := range g.window {
		if e.sloOK {
			winOK++
		}
	}
	if len(g.window) > 0 {
		rep.WindowSLOPct = round3(100 * float64(winOK) / float64(len(g.window)))
	}
	var totals []float64
	var sum, firstArrival, lastSettle float64
	for i, o := range g.outcomes {
		if i == 0 || o.ArrivalMs < firstArrival {
			firstArrival = o.ArrivalMs
		}
		if settle := o.ArrivalMs + o.TotalMs; settle > lastSettle {
			lastSettle = settle
		}
		switch {
		case o.Shed:
			rep.Shed++
		case o.Err != "":
			rep.Faulted++
		default:
			rep.Served++
			totals = append(totals, o.TotalMs)
			sum += o.TotalMs
			if o.ColdStart {
				rep.ColdStarts++
			}
			if o.SLOOK {
				rep.SLOAttained++
			}
		}
	}
	sort.Float64s(totals)
	if rep.Served > 0 {
		rep.MeanMs = round3(sum / float64(rep.Served))
		rep.P50Ms = round3(quantile(totals, 0.5))
		rep.P99Ms = round3(quantile(totals, 0.99))
		rep.ColdStartPct = round3(100 * float64(rep.ColdStarts) / float64(rep.Served))
	}
	if rep.Queries > 0 {
		rep.SLOPct = round3(100 * float64(rep.SLOAttained) / float64(rep.Queries))
		rep.CostPer1K = round3(float64(billedMs) / float64(rep.Queries) * 1000)
	}
	if rep.MakespanMs = round3(lastSettle - firstArrival); rep.MakespanMs > 0 {
		rep.GoodputQPS = round3(float64(rep.SLOAttained) / (rep.MakespanMs / 1000))
	}
	return rep
}

// quantile returns the exact q-th order statistic of sorted xs (nearest-rank
// method).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(xs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(xs) {
		rank = len(xs)
	}
	return xs[rank-1]
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
