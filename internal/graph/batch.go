package graph

import (
	"fmt"

	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// ForwardBatch executes the graph once per query with cross-query batched
// kernels: each node runs nn.ForwardBatch over the whole batch before the
// walk advances, so batch-aware operators amortize their packing and weight
// traffic across queries. The result is bitwise identical to calling
// Forward once per input — the batched kernels run the exact per-element
// accumulation schedules (see internal/nn/batch.go) and the observer is
// notified once per (node, query), matching the sequential loop.
func (g *Graph) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(g.nodes) == 0 {
		return nil, fmt.Errorf("graph %q: empty", g.Name)
	}
	if len(xs) == 0 {
		return nil, nil
	}
	for _, x := range xs {
		if !tensor.ShapeEqual(x.Shape(), g.inShape) {
			return nil, fmt.Errorf("graph %q: input shape %v, want %v", g.Name, x.Shape(), g.inShape)
		}
	}
	vals := make([][]*tensor.Tensor, len(g.nodes))
	ins := make([][]*tensor.Tensor, len(xs))
	for _, n := range g.nodes {
		for e := range xs {
			row := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				if in == InputID {
					row[i] = xs[e]
				} else {
					row[i] = vals[in][e]
				}
			}
			ins[e] = row
			nn.Observe(n.Op)
		}
		outs, err := nn.ForwardBatch(n.Op, ins)
		if err != nil {
			return nil, fmt.Errorf("graph %q node %d (%s): %w", g.Name, n.ID, n.Op.Name(), err)
		}
		vals[n.ID] = outs
	}
	return vals[g.OutputID()], nil
}
