package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"gillis/internal/nn"
	"gillis/internal/par"
	"gillis/internal/tensor"
)

// randomBatchModel draws a small CNN with a random depth, random residual
// block, and a dense head, then fuses it — so the batched walk exercises
// FusedConv2D (Conv+BN+ReLU), pooling fallbacks, Flatten, and FusedDense
// in one graph.
func randomBatchModel(t *testing.T, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := 1 + rng.Intn(3)
	hw := 8 + 2*rng.Intn(4)
	g := New(fmt.Sprintf("rnd%d", seed), []int{c, hw, hw})
	width := 4 + rng.Intn(8)
	g.MustAdd(nn.NewConv2D("stem", c, width, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem.bn", width))
	g.MustAdd(nn.NewReLU("stem.relu"))
	if rng.Intn(2) == 1 {
		stem := g.OutputID()
		br := g.MustAdd(nn.NewConv2D("res.conv", width, width, 3, 1, 1), stem)
		g.MustAdd(nn.NewAdd("res.add"), br, stem)
	}
	g.MustAdd(nn.NewMaxPool2D("pool", 2, 2, 0))
	g.MustAdd(nn.NewGlobalAvgPool("gap"))
	g.MustAdd(nn.NewFlatten("flat"))
	g.MustAdd(nn.NewDense("fc", width, 3+rng.Intn(8)))
	g.MustAdd(nn.NewReLU("fc.relu"))
	g.Init(seed)
	fused, _, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	return fused
}

// TestGraphForwardBatchEquivalenceProperty asserts, for ≥12 random fused
// models and batch sizes {1,2,4,8} × parallelism {1,4}, that the batched
// graph walk is bitwise identical to the per-query Forward loop.
func TestGraphForwardBatchEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			g := randomBatchModel(t, seed)
			rng := rand.New(rand.NewSource(100 + seed))
			for _, batch := range []int{1, 2, 4, 8} {
				xs := make([]*tensor.Tensor, batch)
				for e := range xs {
					xs[e] = tensor.Rand(rng, 1, g.InShape()...)
				}
				restore := par.SetParallelism(1)
				want := make([]*tensor.Tensor, batch)
				for e, x := range xs {
					out, err := g.Forward(x)
					if err != nil {
						restore()
						t.Fatal(err)
					}
					want[e] = out
				}
				restore()
				for _, p := range []int{1, 4} {
					restore := par.SetParallelism(p)
					got, err := g.ForwardBatch(xs)
					restore()
					if err != nil {
						t.Fatalf("b=%d p=%d: %v", batch, p, err)
					}
					for e := range got {
						if !tensor.Equal(got[e], want[e]) {
							t.Fatalf("b=%d p=%d: element %d diverged from per-query Forward", batch, p, e)
						}
					}
				}
			}
		})
	}
}

// TestGraphForwardBatchValidation pins input-shape validation and the
// empty-batch edge.
func TestGraphForwardBatchValidation(t *testing.T) {
	g := tinyChain()
	g.Init(1)
	if _, err := g.ForwardBatch([]*tensor.Tensor{tensor.New(2, 6, 6)}); err == nil {
		t.Fatal("expected shape error")
	}
	outs, err := g.ForwardBatch(nil)
	if err != nil || outs != nil {
		t.Fatalf("empty batch: got %v, %v", outs, err)
	}
}
