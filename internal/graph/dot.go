package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visualization:
// one node per operator (labelled with its name, kind and output shape) and
// one edge per tensor dependency.
func (g *Graph) WriteDOT(w io.Writer) error {
	shapes, err := g.Shapes()
	if err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Name)
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	fmt.Fprintf(&sb, "  input [label=\"input %v\", shape=ellipse];\n", g.inShape)
	for _, n := range g.nodes {
		fmt.Fprintf(&sb, "  n%d [label=\"%s\\n%s %v\"];\n", n.ID, n.Op.Name(), n.Op.Kind(), shapes[n.ID])
		for _, in := range n.Inputs {
			if in == InputID {
				fmt.Fprintf(&sb, "  input -> n%d;\n", n.ID)
			} else {
				fmt.Fprintf(&sb, "  n%d -> n%d;\n", in, n.ID)
			}
		}
	}
	sb.WriteString("}\n")
	_, err = io.WriteString(w, sb.String())
	return err
}
