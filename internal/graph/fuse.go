package graph

import (
	"fmt"

	"gillis/internal/nn"
)

// Fuse rewrites a graph into its operator-fused form: BatchNorm and ReLU
// nodes that directly follow a weighted layer are absorbed into that layer's
// GEMM epilogue, and redundant element-wise chains collapse. Every rewrite
// is bitwise semantics-preserving — the fused graph produces identical
// outputs to the original at every parallelism level (the epilogue performs
// exactly the absorbed operators' arithmetic in the same per-element order)
// — but the planners see fewer nodes, fewer per-layer FLOPs (fused ReLUs
// ride the kernel pass for free), and smaller weight footprints (a folded
// BatchNorm ships two per-channel vectors instead of four).
//
// Rewrites applied, in decreasing priority:
//
//   - Conv2D + BatchNorm [+ ReLU]  →  FusedConv2D (folded affine epilogue).
//     The BatchNorm's frozen statistics must be materialized, since folding
//     evaluates gamma/sqrt(var+eps) at rewrite time.
//   - Conv2D + ReLU                →  FusedConv2D (ReLU epilogue).
//   - Dense + ReLU                 →  FusedDense.
//   - ReLU whose producer already ends in a ReLU (fused or standalone)
//     is dropped: relu∘relu = relu exactly.
//
// A node is absorbed only when the intermediate value has exactly one
// consumer, so no rewrite changes any observable tensor. Operators that are
// not rewritten are carried into the new graph by reference; fused wrappers
// alias the original layers' weight tensors rather than copying them.
//
// Fuse returns the rewritten graph and the number of nodes eliminated
// (0 means the graph came back structurally identical).
func Fuse(g *Graph) (*Graph, int, error) {
	n := g.Len()
	if n == 0 {
		return nil, 0, fmt.Errorf("graph %q: empty", g.Name)
	}
	consumers, err := g.Consumers()
	if err != nil {
		return nil, 0, err
	}
	// soleConsumer returns the single node consuming id's output exactly
	// once, or nil.
	soleConsumer := func(id int) *Node {
		c := consumers[id]
		if len(c) != 1 {
			return nil
		}
		next := g.Node(c[0])
		if len(next.Inputs) != 1 || next.Inputs[0] != id {
			return nil
		}
		return next
	}

	out := New(g.Name, g.inShape)
	remap := make([]int, n)     // old node ID -> new node ID
	absorbed := make([]bool, n) // nodes folded into an earlier fused op
	eliminated := 0
	mapInputs := func(ins []int) []int {
		mapped := make([]int, len(ins))
		for i, in := range ins {
			if in == InputID {
				mapped[i] = InputID
			} else {
				mapped[i] = remap[in]
			}
		}
		return mapped
	}

	for _, node := range g.Nodes() {
		if absorbed[node.ID] {
			continue
		}
		var fused nn.Op
		var tail []*Node // nodes the fused op absorbs
		switch op := node.Op.(type) {
		case *nn.Conv2D:
			next := soleConsumer(node.ID)
			if bn, ok := opAs[*nn.BatchNorm](next); ok && bn.Initialized() && bn.C == op.OutC {
				relu := false
				if _, ok := opAs[*nn.ReLU](soleConsumer(next.ID)); ok {
					relu = true
					tail = []*Node{next, soleConsumer(next.ID)}
				} else {
					tail = []*Node{next}
				}
				f, err := nn.NewFusedConv2D(op, bn, relu)
				if err != nil {
					return nil, 0, fmt.Errorf("graph %q: fuse node %d: %w", g.Name, node.ID, err)
				}
				fused = f
			} else if _, ok := opAs[*nn.ReLU](next); ok {
				f, err := nn.NewFusedConv2D(op, nil, true)
				if err != nil {
					return nil, 0, fmt.Errorf("graph %q: fuse node %d: %w", g.Name, node.ID, err)
				}
				fused = f
				tail = []*Node{next}
			}
		case *nn.Dense:
			if _, ok := opAs[*nn.ReLU](soleConsumer(node.ID)); ok {
				fused = nn.NewFusedDense(op)
				tail = []*Node{soleConsumer(node.ID)}
			}
		case *nn.ReLU:
			// Collapse relu∘relu: if the producer's rewritten form already
			// ends in a ReLU, this node is the identity.
			if in := node.Inputs[0]; len(node.Inputs) == 1 && in != InputID {
				if endsInReLU(out.Node(remap[in]).Op) {
					remap[node.ID] = remap[in]
					eliminated++
					continue
				}
			}
		}
		toAdd := node.Op
		if fused != nil {
			toAdd = fused
		}
		id, err := out.Add(toAdd, mapInputs(node.Inputs)...)
		if err != nil {
			return nil, 0, fmt.Errorf("graph %q: rebuild node %d: %w", g.Name, node.ID, err)
		}
		remap[node.ID] = id
		for _, t := range tail {
			absorbed[t.ID] = true
			remap[t.ID] = id
			eliminated++
		}
	}
	if err := out.Validate(); err != nil {
		return nil, 0, fmt.Errorf("graph %q: fused graph invalid: %w", g.Name, err)
	}
	return out, eliminated, nil
}

// opAs returns node's op as T when node is non-nil and the op has that type.
func opAs[T nn.Op](node *Node) (T, bool) {
	var zero T
	if node == nil {
		return zero, false
	}
	op, ok := node.Op.(T)
	return op, ok
}

// endsInReLU reports whether op's output is already rectified, making a
// following ReLU the identity.
func endsInReLU(op nn.Op) bool {
	switch o := op.(type) {
	case *nn.ReLU:
		return true
	case *nn.FusedConv2D:
		return o.Relu
	case *nn.FusedDense:
		return true
	}
	return false
}
