package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"gillis/internal/nn"
	"gillis/internal/par"
	"gillis/internal/tensor"
)

// buildConvBNReluNet is a small CNN exercising every fusion pattern:
// conv+bn+relu, conv+relu, a residual branch that must NOT fuse (the conv
// output has two consumers), dense+relu, and a redundant relu chain.
func buildConvBNReluNet(t *testing.T) *Graph {
	t.Helper()
	g := New("fusenet", []int{3, 16, 16})
	c1 := g.MustAdd(nn.NewConv2D("c1", 3, 8, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("b1", 8))
	g.MustAdd(nn.NewReLU("r1"))
	c2 := g.MustAdd(nn.NewConv2D("c2", 8, 8, 3, 1, 1)) // two consumers: no fusion
	r2 := g.MustAdd(nn.NewReLU("r2"), c2)
	g.MustAdd(nn.NewAdd("add"), c2, r2)
	g.MustAdd(nn.NewConv2D("c3", 8, 12, 3, 1, 1))
	g.MustAdd(nn.NewReLU("r3"))
	g.MustAdd(nn.NewReLU("r3b")) // relu∘relu collapses
	g.MustAdd(nn.NewFlatten("fl"))
	g.MustAdd(nn.NewDense("fc", 12*16*16, 10))
	g.MustAdd(nn.NewReLU("r4"))
	g.MustAdd(nn.NewSoftmax("sm"))
	_ = c1
	return g
}

func TestFuseRewritesKnownPatterns(t *testing.T) {
	g := buildConvBNReluNet(t)
	g.Init(7)
	fused, eliminated, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	// Absorbed: b1, r1 (into c1), r3 (into c3), r3b (collapsed), r4 (into fc).
	if want := 5; eliminated != want {
		t.Fatalf("eliminated %d nodes, want %d", eliminated, want)
	}
	kinds := map[string]int{}
	for _, n := range fused.Nodes() {
		kinds[fmt.Sprintf("%T", n.Op)]++
	}
	if kinds["*nn.FusedConv2D"] != 2 {
		t.Fatalf("fused graph has %d FusedConv2D nodes, want 2", kinds["*nn.FusedConv2D"])
	}
	if kinds["*nn.FusedDense"] != 1 {
		t.Fatalf("fused graph has %d FusedDense nodes, want 1", kinds["*nn.FusedDense"])
	}
	// c2 feeds two consumers; it must survive unfused alongside its ReLU.
	if kinds["*nn.Conv2D"] != 1 || kinds["*nn.ReLU"] != 1 {
		t.Fatalf("multi-consumer conv was rewritten: kinds=%v", kinds)
	}
	if fl, fu := mustFLOPs(t, fused), mustFLOPs(t, g); fl >= fu {
		t.Fatalf("fused FLOPs %d not below unfused %d", fl, fu)
	}
	if fused.ParamCount() >= g.ParamCount() {
		t.Fatalf("fused params %d not below unfused %d", fused.ParamCount(), g.ParamCount())
	}
}

func mustFLOPs(t *testing.T, g *Graph) int64 {
	t.Helper()
	f, err := g.FLOPs()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFusePreservesOutputsOnRandomModels is the fusion property test: on
// randomly generated layer stacks, the fused graph must produce bitwise
// identical outputs to the original, at several parallelism levels.
func TestFusePreservesOutputsOnRandomModels(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g, in := randomModel(rng)
			g.Init(seed + 100)
			fused, _, err := Fuse(g)
			if err != nil {
				t.Fatal(err)
			}
			restore := par.SetParallelism(1)
			want, err := g.Forward(in)
			restore()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 3, 8} {
				restore := par.SetParallelism(p)
				got, err := fused.Forward(in)
				restore()
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				if !tensor.Equal(got, want) {
					t.Fatalf("p=%d: fused forward diverged from unfused graph", p)
				}
			}
		})
	}
}

// randomModel generates a random conv stack with interleaved BatchNorm/ReLU
// in random combinations, ending in flatten + dense (+ optional relu).
func randomModel(rng *rand.Rand) (*Graph, *tensor.Tensor) {
	c, h, w := 3, 13, 13
	g := New("rand", []int{c, h, w})
	layers := 1 + rng.Intn(4)
	for i := 0; i < layers; i++ {
		outC := 4 + rng.Intn(9)
		g.MustAdd(nn.NewConv2D(fmt.Sprintf("c%d", i), c, outC, 3, 1, 1))
		c = outC
		if rng.Intn(2) == 0 {
			g.MustAdd(nn.NewBatchNorm(fmt.Sprintf("b%d", i), c))
		}
		for r := 0; r < rng.Intn(3); r++ { // zero, one, or chained ReLUs
			g.MustAdd(nn.NewReLU(fmt.Sprintf("r%d_%d", i, r)))
		}
	}
	g.MustAdd(nn.NewFlatten("fl"))
	g.MustAdd(nn.NewDense("fc", c*h*w, 5+rng.Intn(10)))
	if rng.Intn(2) == 0 {
		g.MustAdd(nn.NewReLU("rf"))
	}
	return g, tensor.Rand(rng, 1, 3, h, w)
}

// TestFuseUninitializedBNLeftAlone: folding needs materialized statistics;
// an uninitialized graph must round-trip through Fuse without BN folding
// (ReLU-only rewrites are still fine).
func TestFuseUninitializedBNLeftAlone(t *testing.T) {
	g := New("uninit", []int{3, 8, 8})
	g.MustAdd(nn.NewConv2D("c", 3, 4, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("b", 4))
	g.MustAdd(nn.NewReLU("r"))
	fused, eliminated, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if eliminated != 0 {
		t.Fatalf("eliminated %d nodes from an uninitialized graph, want 0", eliminated)
	}
	if fused.Len() != g.Len() {
		t.Fatalf("fused graph has %d nodes, want %d", fused.Len(), g.Len())
	}
}
