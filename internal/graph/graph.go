// Package graph defines the model intermediate representation Gillis
// partitions: a DAG of nn operators with a single input and a single output.
// It plays the role the ONNX compute graph plays in the original system.
package graph

import (
	"fmt"
	"math/rand"
	"strings"

	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// InputID is the pseudo node ID that refers to the graph's input tensor.
const InputID = -1

// Node is one operator application in a graph.
type Node struct {
	ID     int
	Op     nn.Op
	Inputs []int // producer node IDs; InputID refers to the graph input
}

// Graph is a single-input DAG of operators. Nodes are stored in topological
// order (a node's inputs always precede it); the last node is the output.
type Graph struct {
	Name    string
	inShape []int
	nodes   []*Node
}

// New creates an empty graph with the given input shape.
func New(name string, inShape []int) *Graph {
	s := make([]int, len(inShape))
	copy(s, inShape)
	return &Graph{Name: name, inShape: s}
}

// InShape returns a copy of the graph's input shape.
func (g *Graph) InShape() []int {
	s := make([]int, len(g.inShape))
	copy(s, g.inShape)
	return s
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// Nodes returns the graph's nodes in topological order. The returned slice
// must not be modified.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Add appends an operator whose inputs are the given node IDs. With no
// inputs it consumes the most recent node (or the graph input for the first
// node). It returns the new node's ID.
func (g *Graph) Add(op nn.Op, inputs ...int) (int, error) {
	if op == nil {
		return 0, fmt.Errorf("graph: nil op")
	}
	if len(inputs) == 0 {
		inputs = []int{len(g.nodes) - 1} // previous node; -1 == InputID for the first
	}
	id := len(g.nodes)
	ins := make([]int, len(inputs))
	for i, in := range inputs {
		if in < InputID || in >= id {
			return 0, fmt.Errorf("graph: node %q input %d out of range (have %d nodes)", op.Name(), in, id)
		}
		ins[i] = in
	}
	g.nodes = append(g.nodes, &Node{ID: id, Op: op, Inputs: ins})
	return id, nil
}

// MustAdd is Add for statically known-good model builders; it panics on
// error.
func (g *Graph) MustAdd(op nn.Op, inputs ...int) int {
	id, err := g.Add(op, inputs...)
	if err != nil {
		panic(err)
	}
	return id
}

// OutputID returns the ID of the output node.
func (g *Graph) OutputID() int { return len(g.nodes) - 1 }

// Shapes computes every node's output shape. Index i holds node i's shape.
func (g *Graph) Shapes() ([][]int, error) {
	if len(g.nodes) == 0 {
		return nil, fmt.Errorf("graph %q: empty", g.Name)
	}
	shapes := make([][]int, len(g.nodes))
	for _, n := range g.nodes {
		ins := make([][]int, len(n.Inputs))
		for i, in := range n.Inputs {
			if in == InputID {
				ins[i] = g.inShape
			} else {
				ins[i] = shapes[in]
			}
		}
		s, err := n.Op.OutShape(ins...)
		if err != nil {
			return nil, fmt.Errorf("graph %q node %d (%s): %w", g.Name, n.ID, n.Op.Name(), err)
		}
		shapes[n.ID] = s
	}
	return shapes, nil
}

// OutShape returns the output node's shape.
func (g *Graph) OutShape() ([]int, error) {
	shapes, err := g.Shapes()
	if err != nil {
		return nil, err
	}
	return shapes[g.OutputID()], nil
}

// Validate checks that the graph is well-formed and shape-consistent.
func (g *Graph) Validate() error {
	seen := make(map[string]bool, len(g.nodes))
	for _, n := range g.nodes {
		if seen[n.Op.Name()] {
			return fmt.Errorf("graph %q: duplicate op name %q", g.Name, n.Op.Name())
		}
		seen[n.Op.Name()] = true
	}
	_, err := g.Shapes()
	return err
}

// Forward runs the whole graph on the given input. All weighted operators
// must be initialized.
func (g *Graph) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(g.nodes) == 0 {
		return nil, fmt.Errorf("graph %q: empty", g.Name)
	}
	if !tensor.ShapeEqual(x.Shape(), g.inShape) {
		return nil, fmt.Errorf("graph %q: input shape %v, want %v", g.Name, x.Shape(), g.inShape)
	}
	vals := make([]*tensor.Tensor, len(g.nodes))
	for _, n := range g.nodes {
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			if in == InputID {
				ins[i] = x
			} else {
				ins[i] = vals[in]
			}
		}
		nn.Observe(n.Op)
		out, err := n.Op.Forward(ins...)
		if err != nil {
			return nil, fmt.Errorf("graph %q node %d (%s): %w", g.Name, n.ID, n.Op.Name(), err)
		}
		vals[n.ID] = out
	}
	return vals[g.OutputID()], nil
}

// Init materializes every weighted operator deterministically from the seed.
func (g *Graph) Init(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, n := range g.nodes {
		n.Op.Init(rng)
	}
}

// Initialized reports whether every operator has weights.
func (g *Graph) Initialized() bool {
	for _, n := range g.nodes {
		if !n.Op.Initialized() {
			return false
		}
	}
	return true
}

// ParamCount returns the total number of stored fp32 scalars.
func (g *Graph) ParamCount() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.Op.ParamCount()
	}
	return total
}

// ParamBytes returns the total weight footprint in bytes.
func (g *Graph) ParamBytes() int64 { return g.ParamCount() * 4 }

// FLOPs returns the total forward FLOPs of the graph.
func (g *Graph) FLOPs() (int64, error) {
	shapes, err := g.Shapes()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range g.nodes {
		ins := make([][]int, len(n.Inputs))
		for i, in := range n.Inputs {
			if in == InputID {
				ins[i] = g.inShape
			} else {
				ins[i] = shapes[in]
			}
		}
		total += n.Op.FLOPs(ins...)
	}
	return total, nil
}

// Consumers returns, for each node ID, the IDs of the nodes consuming it.
// Index len(nodes) is unused; InputID consumers are under key -1 of the
// second return value.
func (g *Graph) Consumers() (map[int][]int, error) {
	if len(g.nodes) == 0 {
		return nil, fmt.Errorf("graph %q: empty", g.Name)
	}
	out := make(map[int][]int)
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			out[in] = append(out[in], n.ID)
		}
	}
	return out, nil
}

// String renders a human-readable summary.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q in=%v nodes=%d", g.Name, g.inShape, len(g.nodes))
	return sb.String()
}
