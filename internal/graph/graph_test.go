package graph

import (
	"strings"
	"testing"

	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// tinyChain builds input[1,6,6] -> conv3x3(pad1) -> relu -> maxpool2/2.
func tinyChain() *Graph {
	g := New("tiny", []int{1, 6, 6})
	g.MustAdd(nn.NewConv2D("conv1", 1, 2, 3, 1, 1))
	g.MustAdd(nn.NewReLU("relu1"))
	g.MustAdd(nn.NewMaxPool2D("pool1", 2, 2, 0))
	return g
}

// tinyResidual builds a residual block: conv -> (conv, identity) -> add.
func tinyResidual() *Graph {
	g := New("res", []int{2, 4, 4})
	stem := g.MustAdd(nn.NewConv2D("stem", 2, 2, 3, 1, 1))
	branch := g.MustAdd(nn.NewConv2D("branch", 2, 2, 3, 1, 1), stem)
	g.MustAdd(nn.NewAdd("add"), branch, stem)
	return g
}

func TestAddDefaultsToPreviousNode(t *testing.T) {
	g := tinyChain()
	if got := g.Node(1).Inputs[0]; got != 0 {
		t.Fatalf("relu should consume conv, got input %d", got)
	}
	if got := g.Node(0).Inputs[0]; got != InputID {
		t.Fatalf("first node should consume graph input, got %d", got)
	}
}

func TestAddRejectsBadInputs(t *testing.T) {
	g := New("g", []int{1, 4, 4})
	if _, err := g.Add(nn.NewReLU("r"), 5); err == nil {
		t.Fatal("expected forward-reference error")
	}
	if _, err := g.Add(nil); err == nil {
		t.Fatal("expected nil-op error")
	}
}

func TestShapesAndValidate(t *testing.T) {
	g := tinyChain()
	shapes, err := g.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 6, 6}, {2, 6, 6}, {2, 3, 3}}
	for i, s := range want {
		if !tensor.ShapeEqual(shapes[i], s) {
			t.Fatalf("node %d shape %v, want %v", i, shapes[i], s)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	g := New("g", []int{1, 4, 4})
	g.MustAdd(nn.NewReLU("x"))
	g.MustAdd(nn.NewReLU("x"))
	if err := g.Validate(); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestValidateRejectsShapeErrors(t *testing.T) {
	g := New("g", []int{3, 8, 8})
	g.MustAdd(nn.NewConv2D("c", 4, 8, 3, 1, 1)) // wrong input channels
	if err := g.Validate(); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestForwardChain(t *testing.T) {
	g := tinyChain()
	g.Init(42)
	x := tensor.Full(1, 1, 6, 6)
	out, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(out.Shape(), []int{2, 3, 3}) {
		t.Fatalf("out shape %v", out.Shape())
	}
	// ReLU then maxpool of ReLU output: all outputs non-negative.
	for _, v := range out.Data() {
		if v < 0 {
			t.Fatalf("negative value after relu+maxpool: %v", v)
		}
	}
}

func TestForwardResidualMatchesManual(t *testing.T) {
	g := tinyResidual()
	g.Init(7)
	x := tensor.Full(0.5, 2, 4, 4)
	out, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	stem, err := g.Node(0).Op.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	branch, err := g.Node(1).Op.Forward(stem)
	if err != nil {
		t.Fatal(err)
	}
	want := branch.Clone()
	if err := want.AddInPlace(stem); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(out, want) {
		t.Fatal("residual forward mismatch")
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	g := tinyChain()
	g.Init(1)
	if _, err := g.Forward(tensor.New(1, 5, 5)); err == nil {
		t.Fatal("expected input-shape error")
	}
	if _, err := New("empty", []int{1}).Forward(tensor.New(1)); err == nil {
		t.Fatal("expected empty-graph error")
	}
}

func TestInitDeterministic(t *testing.T) {
	a, b := tinyChain(), tinyChain()
	a.Init(99)
	b.Init(99)
	x := tensor.Full(0.25, 1, 6, 6)
	oa, err := a.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := b.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(oa, ob) {
		t.Fatal("same seed must produce identical weights")
	}
	if !a.Initialized() {
		t.Fatal("graph should report initialized")
	}
	if tinyChain().Initialized() {
		t.Fatal("fresh graph should not report initialized")
	}
}

func TestParamAndFLOPAccounting(t *testing.T) {
	g := tinyChain()
	wantParams := int64(2*1*9 + 2) // conv weights + bias
	if g.ParamCount() != wantParams {
		t.Fatalf("params %d, want %d", g.ParamCount(), wantParams)
	}
	if g.ParamBytes() != wantParams*4 {
		t.Fatal("ParamBytes mismatch")
	}
	fl, err := g.FLOPs()
	if err != nil {
		t.Fatal(err)
	}
	convFl := nn.NewConv2D("c", 1, 2, 3, 1, 1).FLOPs([]int{1, 6, 6})
	reluFl := int64(2 * 6 * 6)
	poolFl := int64(2*3*3) * 4
	if fl != convFl+reluFl+poolFl {
		t.Fatalf("FLOPs %d, want %d", fl, convFl+reluFl+poolFl)
	}
}

func TestConsumers(t *testing.T) {
	g := tinyResidual()
	cons, err := g.Consumers()
	if err != nil {
		t.Fatal(err)
	}
	if len(cons[0]) != 2 {
		t.Fatalf("stem should have two consumers, got %v", cons[0])
	}
	if len(cons[InputID]) != 1 {
		t.Fatalf("graph input should have one consumer, got %v", cons[InputID])
	}
}

func TestInShapeReturnsCopy(t *testing.T) {
	g := New("g", []int{1, 2, 3})
	s := g.InShape()
	s[0] = 9
	if g.InShape()[0] != 1 {
		t.Fatal("InShape must return a copy")
	}
}

func TestWriteDOT(t *testing.T) {
	g := tinyResidual()
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "input ->", "n0 -> n1", "Conv2D", "Add"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Residual: stem feeds both the branch and the add.
	if strings.Count(dot, "n0 ->") != 2 {
		t.Errorf("stem should have two outgoing edges:\n%s", dot)
	}
	bad := New("bad", []int{3, 8, 8})
	bad.MustAdd(nn.NewConv2D("c", 5, 8, 3, 1, 1)) // channel mismatch
	if err := bad.WriteDOT(&sb); err == nil {
		t.Error("expected shape error")
	}
}
