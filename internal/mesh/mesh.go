// Package mesh is the multi-model serving layer: a catalog of partitioned
// models served from a shared pool of memory-bounded instances, in the
// style of ModelMesh's management SPI. Each catalog entry carries a
// predicted size (from the plan's transfer profile) and a measured size
// learned on first load; the placement layer routes each query to an
// instance already holding its model (cache hit) or loads the model —
// paying the object-storage fetch on the query's own virtual clock and
// billing warm-up through the platform's PrewarmMs machinery — evicting
// least-recently-used idle models under memory pressure.
//
// The mesh is simnet-clocked end to end: placement, eviction, and load
// decisions are pure functions of the virtual clock, the catalog order,
// and instance IDs, so a mesh-routed gateway replay is bit-for-bit
// reproducible at any host parallelism.
package mesh

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gillis/internal/gateway"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/runtime"
	"gillis/internal/simnet"
	"gillis/internal/tensor"
	"gillis/internal/trace"
)

// ErrUnknownModel is reported when a query requests a model the catalog
// does not hold.
var ErrUnknownModel = errors.New("mesh: unknown model")

// ErrNoCapacity is reported when no instance can hold the requested model
// even after evicting every idle resident — the catalog entry is too big
// for the pool, or every byte is pinned by in-flight queries.
var ErrNoCapacity = errors.New("mesh: no instance capacity for model")

// ModelSpec is one catalog entry: a model's partitioned serving plan.
type ModelSpec struct {
	// ID is the catalog key queries route by. Must be unique and match the
	// plan's model name (function names derive from it).
	ID    string
	Units []*partition.Unit
	Plan  *partition.Plan
}

// Config sizes the serving pool.
type Config struct {
	// Instances is the pool size. Required (> 0).
	Instances int
	// InstanceMemMB is each instance's model-residency budget. Required
	// (> 0).
	InstanceMemMB int
	// MaxPerInstance caps concurrent serves per instance; a saturated
	// holder triggers a scale-out load of a second copy when memory
	// allows. Zero means unlimited concurrency.
	MaxPerInstance int
	// Mode is the deployments' execution mode (default ShapeOnly).
	Mode runtime.ExecMode
	// NoCache disables residency tracking entirely: every query pays a
	// full load. The baseline the LRU mesh is measured against.
	NoCache bool
}

// model is one catalog entry's serving state.
type model struct {
	spec ModelSpec
	dep  *runtime.Deployment
	// predicted is the catalog-time size estimate: the model's weights
	// plus the plan's transfer profile (worker shipments and activation
	// payloads), known before any load. measured is the exact
	// per-instance resident set (group extents times their partition
	// counts), learned when the first load completes; zero until then.
	predicted int64
	measured  int64

	hits, misses, loads, loadWaits, evictions int
	loadedBytes                               int64
	loadMsSum                                 float64
}

// residency is one model resident (or loading) on one instance.
type residency struct {
	bytes    int64
	lastUsed time.Duration
	serving  int
	loading  *simnet.Promise[struct{}]
}

// instance is one pool member.
type instance struct {
	id       int
	used     int64
	inFlight int
	resident map[string]*residency
}

// Mesh is the serving mesh. It implements gateway.Router (placement) and
// gateway.Backend (the anchor handed to gateway.Run for platform and
// warm-set observation; serving always goes through routed deployments).
type Mesh struct {
	p   *platform.Platform
	env *simnet.Env
	cfg Config
	reg *trace.Registry

	mu     sync.Mutex
	models map[string]*model
	order  []string
	insts  []*instance

	mHits, mMisses, mLoads, mLoadWaits, mEvictions *trace.Counter
	gResidentModels, gResidentBytes                *trace.Gauge
	hLoadMs                                        *trace.Histogram
}

// New deploys every catalog entry on the platform (registration only —
// nothing is resident until a query triggers a load) and returns the mesh.
func New(p *platform.Platform, cfg Config, specs []ModelSpec) (*Mesh, error) {
	if cfg.Instances <= 0 {
		return nil, fmt.Errorf("mesh: Instances must be positive, got %d", cfg.Instances)
	}
	if cfg.InstanceMemMB <= 0 {
		return nil, fmt.Errorf("mesh: InstanceMemMB must be positive, got %d", cfg.InstanceMemMB)
	}
	if cfg.Mode == 0 {
		cfg.Mode = runtime.ShapeOnly
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("mesh: empty catalog")
	}
	reg := p.Metrics()
	m := &Mesh{
		p:               p,
		env:             p.Env(),
		cfg:             cfg,
		reg:             reg,
		models:          make(map[string]*model, len(specs)),
		mHits:           reg.Counter("mesh.hits"),
		mMisses:         reg.Counter("mesh.misses"),
		mLoads:          reg.Counter("mesh.loads"),
		mLoadWaits:      reg.Counter("mesh.load_waits"),
		mEvictions:      reg.Counter("mesh.evictions"),
		gResidentModels: reg.Gauge("mesh.resident_models"),
		gResidentBytes:  reg.Gauge("mesh.resident_bytes"),
		hLoadMs:         reg.Histogram("mesh.load_ms"),
	}
	for _, spec := range specs {
		if spec.ID == "" {
			return nil, fmt.Errorf("mesh: catalog entry with empty ID")
		}
		if _, dup := m.models[spec.ID]; dup {
			return nil, fmt.Errorf("mesh: duplicate catalog entry %q", spec.ID)
		}
		dep, err := runtime.Deploy(p, spec.Units, spec.Plan, cfg.Mode)
		if err != nil {
			return nil, fmt.Errorf("mesh: deploy %s: %w", spec.ID, err)
		}
		// Predicted size: the model's weights plus the plan's transfer
		// profile (worker shipments and activation payloads) — everything
		// a load must pull through the network, known at catalog time. The
		// measured resident set replaces it after the first load.
		transfer, err := partition.TransferBytes(spec.Units, spec.Plan)
		if err != nil {
			return nil, fmt.Errorf("mesh: size %s: %w", spec.ID, err)
		}
		var params int64
		for _, u := range spec.Units {
			params += u.ParamBytes
		}
		m.models[spec.ID] = &model{spec: spec, dep: dep, predicted: params + transfer}
		m.order = append(m.order, spec.ID)
	}
	for i := 0; i < cfg.Instances; i++ {
		m.insts = append(m.insts, &instance{id: i, resident: make(map[string]*residency)})
	}
	return m, nil
}

// memBudget is an instance's residency budget in bytes.
func (m *Mesh) memBudget() int64 { return int64(m.cfg.InstanceMemMB) * 1e6 }

// Acquire implements gateway.Router: it resolves a model ID to a ready
// deployment, loading the model first on a cache miss (virtual time passes
// on proc) and waiting behind an in-progress load instead of duplicating
// it. Exactly one of hit/miss is counted per query.
func (m *Mesh) Acquire(proc *simnet.Proc, id string) (gateway.Backend, func(), error) {
	m.mu.Lock()
	mm := m.models[id]
	m.mu.Unlock()
	if mm == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	if m.cfg.NoCache {
		return m.acquireNoCache(proc, mm)
	}
	counted := false
	for {
		m.mu.Lock()
		// 1. An instance already holds the model with free concurrency:
		// cache hit.
		if inst := m.holderLocked(mm.spec.ID, true); inst != nil {
			r := inst.resident[mm.spec.ID]
			r.serving++
			r.lastUsed = proc.Now()
			inst.inFlight++
			m.mu.Unlock()
			if !counted {
				m.countHit(mm)
			}
			return mm.dep, m.releaseFn(inst, mm.spec.ID), nil
		}
		// 2. Someone is already loading it: wait on their load rather than
		// fetching a duplicate copy.
		if pr := m.loadingLocked(mm.spec.ID); pr != nil {
			if !counted {
				mm.loadWaits++
				m.mu.Unlock()
				m.countMiss(mm)
				m.mLoadWaits.Inc()
				counted = true
			} else {
				m.mu.Unlock()
			}
			if _, err := pr.Wait(proc); err != nil {
				return nil, nil, err
			}
			continue
		}
		// 3. Memory capacity somewhere: place and load (a saturated holder
		// elsewhere makes this a scale-out copy).
		if inst, r, pr := m.placeLocked(mm); inst != nil {
			m.mu.Unlock()
			if !counted {
				m.countMiss(mm)
				counted = true
			}
			if err := m.load(proc, mm, inst, r, pr); err != nil {
				return nil, nil, err
			}
			continue
		}
		// 4. No memory anywhere but a holder exists: route to the least
		// loaded holder past its concurrency cap rather than failing.
		if inst := m.holderLocked(mm.spec.ID, false); inst != nil {
			r := inst.resident[mm.spec.ID]
			r.serving++
			r.lastUsed = proc.Now()
			inst.inFlight++
			m.mu.Unlock()
			if !counted {
				m.countHit(mm)
			}
			return mm.dep, m.releaseFn(inst, mm.spec.ID), nil
		}
		m.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %s needs %d MB", ErrNoCapacity, mm.spec.ID, mm.sizeHint()/1e6)
	}
}

// acquireNoCache is the load-every-query baseline: no residency, every
// query pays the full fetch and warm-up.
func (m *Mesh) acquireNoCache(proc *simnet.Proc, mm *model) (gateway.Backend, func(), error) {
	if mm.predicted > m.memBudget() {
		return nil, nil, fmt.Errorf("%w: %s needs %d MB", ErrNoCapacity, mm.spec.ID, mm.predicted/1e6)
	}
	// Least-loaded instance, lowest ID on ties.
	m.mu.Lock()
	inst := m.insts[0]
	for _, cand := range m.insts[1:] {
		if cand.inFlight < inst.inFlight {
			inst = cand
		}
	}
	inst.inFlight++
	m.mu.Unlock()
	m.countMiss(mm)
	before := proc.Now()
	if err := m.fetchAndWarm(proc, mm); err != nil {
		m.mu.Lock()
		inst.inFlight--
		m.mu.Unlock()
		return nil, nil, err
	}
	loadMs := durMs(proc.Now() - before)
	m.mu.Lock()
	if mm.measured == 0 {
		mm.measured = measuredBytes(mm.spec)
	}
	mm.loads++
	mm.loadedBytes += mm.predicted
	mm.loadMsSum += loadMs
	m.mu.Unlock()
	m.mLoads.Inc()
	m.reg.Counter("mesh.loads." + mm.spec.ID).Inc()
	m.hLoadMs.Observe(loadMs)
	return mm.dep, m.releaseFn(inst, ""), nil
}

// holderLocked returns the instance to serve a hit on: holds the model
// loaded (not mid-load), least in-flight, lowest ID on ties; nil when no
// holder qualifies. respectCap filters out instances at their concurrency
// cap.
func (m *Mesh) holderLocked(id string, respectCap bool) *instance {
	var best *instance
	for _, inst := range m.insts {
		r := inst.resident[id]
		if r == nil || r.loading != nil {
			continue
		}
		if respectCap && m.cfg.MaxPerInstance > 0 && inst.inFlight >= m.cfg.MaxPerInstance {
			continue
		}
		if best == nil || inst.inFlight < best.inFlight {
			best = inst
		}
	}
	return best
}

// loadingLocked returns the promise of an in-progress load of the model,
// lowest instance ID first, or nil.
func (m *Mesh) loadingLocked(id string) *simnet.Promise[struct{}] {
	for _, inst := range m.insts {
		if r := inst.resident[id]; r != nil && r.loading != nil {
			return r.loading
		}
	}
	return nil
}

// sizeHint is the bytes a load reserves: the measured resident set once
// learned, the predicted transfer size before that.
func (mm *model) sizeHint() int64 {
	if mm.measured > 0 {
		return mm.measured
	}
	return mm.predicted
}

// placeLocked picks the instance to load the model onto: among instances
// not already holding it whose budget can fit it after evicting idle
// residents, the one with the most free bytes (fewest evictions), lowest
// ID on ties. It reserves the residency (so concurrent placements see the
// claim), evicting as needed, and returns the load promise. Returns nils
// when no instance can fit the model.
func (m *Mesh) placeLocked(mm *model) (*instance, *residency, *simnet.Promise[struct{}]) {
	size := mm.sizeHint()
	budget := m.memBudget()
	var best *instance
	for _, inst := range m.insts {
		if inst.resident[mm.spec.ID] != nil {
			continue
		}
		free := budget - inst.used
		evictable := int64(0)
		for _, r := range inst.resident {
			if r.serving == 0 && r.loading == nil {
				evictable += r.bytes
			}
		}
		if free+evictable < size {
			continue
		}
		if best == nil || budget-inst.used > budget-best.used {
			best = inst
		}
	}
	if best == nil {
		return nil, nil, nil
	}
	if !m.evictLocked(best, size) {
		return nil, nil, nil
	}
	pr := simnet.NewPromise[struct{}](m.env)
	r := &residency{bytes: size, lastUsed: m.env.Now(), loading: pr}
	best.resident[mm.spec.ID] = r
	best.used += size
	return best, r, pr
}

// evictLocked evicts idle residents of the instance, least recently used
// first (smallest catalog ID on recency ties), until need more bytes fit
// the budget. Reports whether it succeeded; on failure nothing further is
// evicted (partial evictions stand — they were the LRU tail anyway).
func (m *Mesh) evictLocked(inst *instance, need int64) bool {
	budget := m.memBudget()
	for inst.used+need > budget {
		victimID := ""
		var victim *residency
		for id, r := range inst.resident {
			if r.serving > 0 || r.loading != nil {
				continue
			}
			if victim == nil || r.lastUsed < victim.lastUsed ||
				(r.lastUsed == victim.lastUsed && id < victimID) {
				victimID, victim = id, r
			}
		}
		if victim == nil {
			return false
		}
		delete(inst.resident, victimID)
		inst.used -= victim.bytes
		if vm := m.models[victimID]; vm != nil {
			vm.evictions++
			m.reg.Counter("mesh.evictions." + victimID).Inc()
		}
		m.mEvictions.Inc()
		m.setGaugesLocked()
	}
	return true
}

// load performs the reserved load on the query's process: fetch the model
// from object storage, warm the deployment (billed via PrewarmMs), then
// true up the reservation to the measured resident set — learning it on
// the first load — and publish the residency. Waiters blocked on the load
// promise resume when it resolves.
func (m *Mesh) load(proc *simnet.Proc, mm *model, inst *instance, r *residency, pr *simnet.Promise[struct{}]) error {
	before := proc.Now()
	err := m.fetchAndWarm(proc, mm)
	m.mu.Lock()
	if err == nil && mm.measured == 0 {
		mm.measured = measuredBytes(mm.spec)
	}
	if err == nil && mm.measured != r.bytes {
		// The reservation was the predicted size; the measured resident
		// set replaces it. Growth can overflow the budget — evict idle
		// residents to absorb it, or fail the load if pinned bytes block.
		inst.used += mm.measured - r.bytes
		r.bytes = mm.measured
		if inst.used > m.memBudget() && !m.evictLocked(inst, 0) {
			err = fmt.Errorf("%w: %s measured %d MB over the reservation",
				ErrNoCapacity, mm.spec.ID, mm.measured/1e6)
		}
	}
	if err != nil {
		delete(inst.resident, mm.spec.ID)
		inst.used -= r.bytes
		m.setGaugesLocked()
		m.mu.Unlock()
		pr.Fail(err)
		return err
	}
	r.loading = nil
	r.lastUsed = proc.Now()
	mm.loads++
	mm.loadedBytes += mm.predicted
	loadMs := durMs(proc.Now() - before)
	mm.loadMsSum += loadMs
	m.setGaugesLocked()
	m.mu.Unlock()
	m.mLoads.Inc()
	m.reg.Counter("mesh.loads." + mm.spec.ID).Inc()
	m.hLoadMs.Observe(loadMs)
	pr.Resolve(struct{}{})
	return nil
}

// fetchAndWarm pays a load's virtual time and billing: the object-storage
// fetch of the model's transfer bytes, then one warm instance set per
// function (billed at the platform's PrewarmMs like any autoscaler
// prewarm).
func (m *Mesh) fetchAndWarm(proc *simnet.Proc, mm *model) error {
	cfg := m.p.Config()
	ms := cfg.StorageLatencyMs + float64(mm.predicted)/1e6/cfg.StorageMBps*1000
	proc.Sleep(time.Duration(ms * float64(time.Millisecond)))
	return mm.dep.Prewarm()
}

// measuredBytes is the exact per-instance resident set of a plan: every
// group's extent (weights + activation working set) times its partition
// count — replication and halos included, which the predicted transfer
// size underestimates.
func measuredBytes(spec ModelSpec) int64 {
	var total int64
	for _, gp := range spec.Plan.Groups {
		ext, err := partition.GroupExtent(spec.Units, gp.First, gp.Last, gp.Option)
		if err != nil {
			// The plan deployed, so extents computed once already; treat a
			// late failure as the reservation being exact.
			return 0
		}
		parts := int64(gp.Option.Parts)
		if parts < 1 {
			parts = 1
		}
		total += (ext.WeightBytes + ext.ActBytes) * parts
	}
	return total
}

// releaseFn returns the query's release callback: it returns the
// concurrency slot and stamps the model's recency for LRU.
func (m *Mesh) releaseFn(inst *instance, id string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			inst.inFlight--
			if r := inst.resident[id]; r != nil {
				r.serving--
				r.lastUsed = m.env.Now()
			}
			m.mu.Unlock()
		})
	}
}

func (m *Mesh) countHit(mm *model) {
	m.mu.Lock()
	mm.hits++
	m.mu.Unlock()
	m.mHits.Inc()
	m.reg.Counter("mesh.hits." + mm.spec.ID).Inc()
}

func (m *Mesh) countMiss(mm *model) {
	m.mu.Lock()
	mm.misses++
	m.mu.Unlock()
	m.mMisses.Inc()
	m.reg.Counter("mesh.misses." + mm.spec.ID).Inc()
}

// setGaugesLocked refreshes the residency gauges after any load or evict.
func (m *Mesh) setGaugesLocked() {
	var nmodels int
	var bytes int64
	for _, inst := range m.insts {
		for _, r := range inst.resident {
			if r.loading == nil {
				nmodels++
				bytes += r.bytes
			}
		}
	}
	at := durMs(m.env.Now())
	m.gResidentModels.Set(float64(nmodels), at)
	m.gResidentBytes.Set(float64(bytes), at)
}

// Platform implements gateway.Backend.
func (m *Mesh) Platform() *platform.Platform { return m.p }

// WarmSets implements gateway.Backend: warm instance sets standing by
// across the whole catalog.
func (m *Mesh) WarmSets() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int
	for _, id := range m.order {
		n += m.models[id].dep.WarmSets()
	}
	return n
}

// Serve implements gateway.Backend. The mesh never serves directly —
// queries must route through Acquire — so this is a configuration error.
func (m *Mesh) Serve(proc *simnet.Proc, input *tensor.Tensor) (runtime.Result, error) {
	return runtime.Result{}, errors.New("mesh: serve through a multi-model gateway (Config.Model + Config.Router)")
}

// ServeTraced implements gateway.Backend; see Serve.
func (m *Mesh) ServeTraced(proc *simnet.Proc, input *tensor.Tensor) (runtime.Result, *trace.Trace, error) {
	_, err := m.Serve(proc, input)
	return runtime.Result{}, nil, err
}

// Prewarm implements gateway.Backend. Pool-level prewarming is
// per-model in a mesh (loads warm what they place), so a policy that
// prewarms through the mesh anchor is a configuration error.
func (m *Mesh) Prewarm() error {
	return errors.New("mesh: prewarming is per-model; use gateway.NonePolicy with a mesh backend")
}

// Deployment returns the catalog entry's deployment, for callers that
// serve outside the gateway (tests, the CLI's single-query path).
func (m *Mesh) Deployment(id string) (*runtime.Deployment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mm := m.models[id]
	if mm == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, id)
	}
	return mm.dep, nil
}

// Models returns the catalog IDs in catalog order.
func (m *Mesh) Models() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// durMs converts a virtual-clock duration to milliseconds.
func durMs(d time.Duration) float64 { return float64(d) / 1e6 }

// Statically assert the mesh satisfies the gateway's contracts.
var (
	_ gateway.Backend = (*Mesh)(nil)
	_ gateway.Router  = (*Mesh)(nil)
)
