package mesh

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gillis/internal/gateway"
	"gillis/internal/models"
	"gillis/internal/par"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/simnet"
	"gillis/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the mesh-report golden file")

// catalogSpecs builds the test catalog: zoo models at distinct parameter
// sizes, each under a single all-on-master group plan (the mesh cares
// about sizes and placement, not partition structure).
func catalogSpecs(t testing.TB, names ...string) []ModelSpec {
	t.Helper()
	var specs []ModelSpec
	for _, name := range names {
		g, err := models.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		units, err := partition.Linearize(g)
		if err != nil {
			t.Fatal(err)
		}
		plan := &partition.Plan{Model: name, Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}}}
		if err := plan.Validate(units); err != nil {
			t.Fatal(err)
		}
		specs = append(specs, ModelSpec{ID: name, Units: units, Plan: plan})
	}
	return specs
}

// meshPlatformCfg is the shared serving economics: pools stay warm across
// the replay (residency, not idle expiry, is the study's signal) and
// warmth bills a cold start per instance.
func meshPlatformCfg() platform.Config {
	cfg := platform.AWSLambda()
	cfg.WarmIdleMs = 120000
	cfg.PrewarmMs = cfg.ColdStartMs
	return cfg
}

// testCatalog's measured resident sizes (~8/12/18/18 MB) total past the
// golden pool's 2 x 24 MB, so the full catalog can never stay resident
// and the LRU must evict.
var testCatalog = []string{"mobilenet-mini", "rnn-tiny2", "rnn-tiny4", "mobilenet-mini-w2"}

// meshTrace is the shared seeded Zipf multi-model trace.
func meshTrace(t testing.TB) []workload.ModelArrival {
	t.Helper()
	spec := workload.ZipfSpec{Models: testCatalog, S: 1}
	arrivals, err := workload.MultiModel(rand.New(rand.NewSource(42)), spec, 2, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return arrivals
}

// replay runs one mesh-routed gateway replay on a fresh platform.
func replay(t testing.TB, cfg Config) (*gateway.LoadReport, []gateway.Outcome, *Report) {
	t.Helper()
	env := simnet.NewEnv()
	p := platform.New(env, meshPlatformCfg(), 7)
	m, err := New(p, cfg, catalogSpecs(t, testCatalog...))
	if err != nil {
		t.Fatal(err)
	}
	arrivals := meshTrace(t)
	rep, outs, err := gateway.Run(m, workload.Times(arrivals), gateway.Config{
		MaxInFlight: 4,
		QueueCap:    8,
		SLOMs:       2000,
		Model:       func(i int) string { return arrivals[i].Model },
		Router:      m,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, outs, m.Report()
}

// outcomeDigest hashes every outcome's observable fields so replays can be
// compared bit-for-bit without storing each outcome in the golden file.
func outcomeDigest(outs []gateway.Outcome) string {
	h := fnv.New64a()
	for _, o := range outs {
		fmt.Fprintf(h, "%d|%q|%.6f|%.6f|%.6f|%.6f|%d|%v|%v|%v|%q\n",
			o.ID, o.Model, o.ArrivalMs, o.QueueMs, o.LatencyMs, o.TotalMs,
			o.BilledMs, o.ColdStart, o.Shed, o.SLOOK, o.Err)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// lruConfig is the golden replay's pool: two instances sized so the
// catalog does not fit resident all at once, forcing LRU evictions.
func lruConfig() Config {
	return Config{Instances: 2, InstanceMemMB: 24, MaxPerInstance: 4}
}

// TestGoldenMeshReport pins the gateway load report, the mesh report, and
// the outcome digest of a seeded Zipf replay — and asserts the replay is
// bit-for-bit deterministic across repeat runs and host kernel-parallelism
// settings.
func TestGoldenMeshReport(t *testing.T) {
	type run struct {
		text   string
		digest string
	}
	var runs []run
	for _, workers := range []int{1, 4, 1} {
		restore := par.SetParallelism(workers)
		rep, outs, mrep := replay(t, lruConfig())
		restore()
		gb, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		mb, err := mrep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{text: string(gb) + "\n" + string(mb), digest: outcomeDigest(outs)})
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].text != runs[0].text {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, runs[i].text, runs[0].text)
		}
		if runs[i].digest != runs[0].digest {
			t.Fatalf("replay %d outcome digest diverged: %s vs %s", i, runs[i].digest, runs[0].digest)
		}
	}

	got := runs[0].text + "digest " + runs[0].digest + "\n"
	goldenPath := filepath.Join("testdata", "mesh_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("mesh report diverges from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestMeshLRUBehaviour checks the placement layer's accounting on the
// golden replay: hits dominate under Zipf skew, the undersized pool
// evicts, every routed query is classified exactly once, and the
// per-model outcome counts surface in the gateway report.
func TestMeshLRUBehaviour(t *testing.T) {
	rep, outs, mrep := replay(t, lruConfig())
	if mrep.Queries != mrep.Hits+mrep.Misses {
		t.Fatalf("hit/miss accounting leaks: %d queries, %d hits, %d misses", mrep.Queries, mrep.Hits, mrep.Misses)
	}
	if mrep.Hits == 0 || mrep.Misses == 0 {
		t.Fatalf("replay should mix hits and misses, got %d/%d", mrep.Hits, mrep.Misses)
	}
	if mrep.HitPct < 50 {
		t.Errorf("Zipf skew should make residency pay: hit rate %.1f%% < 50%%", mrep.HitPct)
	}
	if mrep.Evictions == 0 {
		t.Error("undersized pool should evict")
	}
	if mrep.Loads == 0 || mrep.LoadedMB == 0 || mrep.MeanLoadMs == 0 {
		t.Errorf("loads unaccounted: %d loads, %.1f MB, %.1f ms mean", mrep.Loads, mrep.LoadedMB, mrep.MeanLoadMs)
	}
	// Admitted (non-shed) queries route through the mesh exactly once.
	admitted := 0
	for _, o := range outs {
		if !o.Shed {
			admitted++
		}
		if o.Model == "" {
			t.Fatalf("query %d missing its model tag", o.ID)
		}
	}
	if mrep.Queries != admitted {
		t.Errorf("mesh saw %d queries, gateway admitted %d", mrep.Queries, admitted)
	}
	if len(rep.ByModel) != len(testCatalog) {
		t.Fatalf("per-model outcome counts missing: %+v", rep.ByModel)
	}
	var served int
	for _, ms := range rep.ByModel {
		served += ms.Served
	}
	if served != rep.Served {
		t.Errorf("ByModel served %d != report served %d", served, rep.Served)
	}
	for _, mr := range mrep.PerModel {
		if mr.Loads > 0 && mr.MeasuredMB == 0 {
			t.Errorf("%s loaded but never measured", mr.ID)
		}
		if mr.MeasuredMB > 0 && mr.MeasuredMB < mr.PredictedMB {
			t.Errorf("%s: measured %.2f MB below predicted %.2f MB — extents should include activations",
				mr.ID, mr.MeasuredMB, mr.PredictedMB)
		}
	}
}

// TestMeshNoCacheBaseline: with residency disabled every query is a miss
// and pays a load, and the hit rate is exactly zero.
func TestMeshNoCacheBaseline(t *testing.T) {
	cfg := lruConfig()
	cfg.NoCache = true
	_, outs, mrep := replay(t, cfg)
	if mrep.Hits != 0 {
		t.Fatalf("no-cache baseline recorded %d hits", mrep.Hits)
	}
	admitted := 0
	for _, o := range outs {
		if !o.Shed {
			admitted++
		}
	}
	if mrep.Misses != admitted || mrep.Loads != admitted {
		t.Fatalf("no-cache should load per query: %d misses, %d loads, %d admitted",
			mrep.Misses, mrep.Loads, admitted)
	}
}

// TestMeshSharedLoad: queries for the same cold model arriving while its
// load is in flight wait for that load instead of fetching duplicates.
func TestMeshSharedLoad(t *testing.T) {
	env := simnet.NewEnv()
	p := platform.New(env, meshPlatformCfg(), 7)
	m, err := New(p, Config{Instances: 1, InstanceMemMB: 64}, catalogSpecs(t, "mobilenet-mini"))
	if err != nil {
		t.Fatal(err)
	}
	// Three coincident-arrival queries (1 ns apart) for one cold model.
	arrivals := []time.Duration{0, time.Nanosecond, 2 * time.Nanosecond}
	_, _, err = gateway.Run(m, arrivals, gateway.Config{
		MaxInFlight: 3,
		SLOMs:       5000,
		Model:       func(int) string { return "mobilenet-mini" },
		Router:      m,
	})
	if err != nil {
		t.Fatal(err)
	}
	mrep := m.Report()
	if mrep.Loads != 1 {
		t.Fatalf("concurrent cold queries fetched %d copies, want 1", mrep.Loads)
	}
	if mrep.LoadWaits != 2 {
		t.Fatalf("expected 2 queries to wait on the in-flight load, got %d", mrep.LoadWaits)
	}
	if mrep.Hits != 0 || mrep.Misses != 3 {
		t.Fatalf("all three queries missed the cold cache: %d hits, %d misses", mrep.Hits, mrep.Misses)
	}
}

// TestMeshErrors covers the typed failure modes and constructor
// validation.
func TestMeshErrors(t *testing.T) {
	env := simnet.NewEnv()
	p := platform.New(env, meshPlatformCfg(), 7)
	specs := catalogSpecs(t, "mobilenet-mini")

	if _, err := New(p, Config{Instances: 0, InstanceMemMB: 64}, specs); err == nil {
		t.Error("want instance-count validation error")
	}
	if _, err := New(p, Config{Instances: 1, InstanceMemMB: 0}, specs); err == nil {
		t.Error("want memory validation error")
	}
	if _, err := New(p, Config{Instances: 1, InstanceMemMB: 64}, nil); err == nil {
		t.Error("want empty-catalog error")
	}
	if _, err := New(p, Config{Instances: 1, InstanceMemMB: 64}, append(catalogSpecs(t, "rnn-tiny2"), specs[0], specs[0])); err == nil {
		t.Error("want duplicate-ID error")
	}

	m, err := New(p, Config{Instances: 1, InstanceMemMB: 1}, specs)
	if err != nil {
		t.Fatal(err)
	}
	var routeErr error
	env.Go("client", func(proc *simnet.Proc) {
		_, _, routeErr = m.Acquire(proc, "mobilenet-mini")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(routeErr, ErrNoCapacity) {
		t.Errorf("1 MB instance should reject the model, got %v", routeErr)
	}

	env2 := simnet.NewEnv()
	p2 := platform.New(env2, meshPlatformCfg(), 7)
	m2, err := New(p2, Config{Instances: 1, InstanceMemMB: 64}, catalogSpecs(t, "mobilenet-mini"))
	if err != nil {
		t.Fatal(err)
	}
	env2.Go("client", func(proc *simnet.Proc) {
		_, _, routeErr = m2.Acquire(proc, "nope")
	})
	if err := env2.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(routeErr, ErrUnknownModel) {
		t.Errorf("want ErrUnknownModel, got %v", routeErr)
	}
	if _, err := m2.Serve(nil, nil); err == nil {
		t.Error("mesh.Serve must refuse direct serving")
	}
	if _, _, err := m2.ServeTraced(nil, nil); err == nil {
		t.Error("mesh.ServeTraced must refuse direct serving")
	}
	if err := m2.Prewarm(); err == nil {
		t.Error("mesh.Prewarm must refuse pool-level prewarming")
	}
	if _, err := m2.Deployment("nope"); err == nil {
		t.Error("want unknown-model deployment error")
	}
	if d, err := m2.Deployment("mobilenet-mini"); err != nil || d == nil {
		t.Errorf("catalog deployment lookup failed: %v", err)
	}
	if got := m2.Models(); len(got) != 1 || got[0] != "mobilenet-mini" {
		t.Errorf("catalog order wrong: %v", got)
	}
}

// TestMeshSingleModelServePath: once a single-model catalog is resident,
// hit queries serve through the exact same deployment path as a plain
// gateway replay — warm serve latencies match bit-for-bit.
func TestMeshSingleModelServePath(t *testing.T) {
	arrivals := []time.Duration{0, 2 * time.Second, 4 * time.Second, 6 * time.Second}
	gcfg := gateway.Config{MaxInFlight: 2, QueueCap: 4, SLOMs: 5000}

	// Plain path: a deployment on its own platform, prewarmed by the
	// first query's cold start.
	env := simnet.NewEnv()
	p := platform.New(env, meshPlatformCfg(), 7)
	specs := catalogSpecs(t, "rnn-tiny2")
	d, err := New(p, Config{Instances: 1, InstanceMemMB: 64}, specs)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := d.Deployment("rnn-tiny2")
	if err != nil {
		t.Fatal(err)
	}
	_, plain, err := gateway.Run(dep, arrivals, gcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Mesh path: same platform seed, same arrivals, routed.
	env2 := simnet.NewEnv()
	p2 := platform.New(env2, meshPlatformCfg(), 7)
	m, err := New(p2, Config{Instances: 1, InstanceMemMB: 64}, catalogSpecs(t, "rnn-tiny2"))
	if err != nil {
		t.Fatal(err)
	}
	mcfg := gcfg
	mcfg.Model = func(int) string { return "rnn-tiny2" }
	mcfg.Router = m
	_, routed, err := gateway.Run(m, arrivals, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Query 0 differs by design (cold start vs load); every warm query
	// after it must serve identically.
	for i := 1; i < len(arrivals); i++ {
		if plain[i].LatencyMs != routed[i].LatencyMs {
			t.Errorf("query %d: warm serve latency diverged: plain %.3f ms, routed %.3f ms",
				i, plain[i].LatencyMs, routed[i].LatencyMs)
		}
	}
	if m.Report().Hits != len(arrivals)-1 {
		t.Errorf("single-model catalog should hit after the first load, got %d hits", m.Report().Hits)
	}
}

// TestMeshConfigValidation covers the gateway-side coupling rules.
func TestMeshConfigValidation(t *testing.T) {
	env := simnet.NewEnv()
	p := platform.New(env, meshPlatformCfg(), 7)
	m, err := New(p, Config{Instances: 1, InstanceMemMB: 64}, catalogSpecs(t, "mobilenet-mini"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := gateway.Run(m, []time.Duration{0}, gateway.Config{
		MaxInFlight: 1, Router: m,
	}); err == nil {
		t.Error("Router without Model must be rejected")
	}
	if _, _, err := gateway.Run(m, []time.Duration{0}, gateway.Config{
		MaxInFlight: 1, Model: func(int) string { return "x" },
	}); err == nil {
		t.Error("Model without Router must be rejected")
	}
}

// TestMeshReportRendering sanity-checks the human-readable table.
func TestMeshReportRendering(t *testing.T) {
	_, _, mrep := replay(t, lruConfig())
	table := mrep.Table()
	for _, name := range testCatalog {
		if !containsStr(table, name) {
			t.Errorf("table missing %s:\n%s", name, table)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
