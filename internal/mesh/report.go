package mesh

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Report aggregates one mesh replay. Every field is derived
// deterministically from the mesh's counters, so for a fixed seed and
// trace the report is byte-stable under JSON encoding — the mesh golden
// and the BENCH_mesh.json baseline pin it directly.
type Report struct {
	// Instances/InstanceMemMB/Models echo the pool and catalog sizing.
	Instances     int `json:"instances"`
	InstanceMemMB int `json:"instance_mem_mb"`
	Models        int `json:"models"`
	// Queries counts routed acquires; Hits and Misses partition them by
	// whether the model was resident when the query arrived. HitPct is
	// hits over queries.
	Queries int     `json:"queries"`
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitPct  float64 `json:"hit_pct"`
	// Loads counts storage fetches performed; LoadWaits the missed queries
	// that piggybacked on another query's in-progress load instead of
	// fetching their own copy; Evictions the LRU removals that made room.
	Loads     int `json:"loads"`
	LoadWaits int `json:"load_waits"`
	Evictions int `json:"evictions"`
	// LoadedMB is the cumulative bytes fetched from object storage;
	// MeanLoadMs the mean fetch-plus-warm-up time per load.
	LoadedMB   float64 `json:"loaded_mb"`
	MeanLoadMs float64 `json:"mean_load_ms"`
	// ResidentModels/ResidentMB snapshot residency at report time.
	ResidentModels int     `json:"resident_models"`
	ResidentMB     float64 `json:"resident_mb"`
	// PerModel lists every catalog entry in catalog order.
	PerModel []ModelReport `json:"per_model"`
}

// ModelReport is one catalog entry's accounting.
type ModelReport struct {
	ID string `json:"id"`
	// PredictedMB is the catalog-time size estimate (the plan's transfer
	// profile); MeasuredMB the exact resident set learned on first load
	// (zero if the model never loaded).
	PredictedMB float64 `json:"predicted_mb"`
	MeasuredMB  float64 `json:"measured_mb"`
	Hits        int     `json:"hits"`
	Misses      int     `json:"misses"`
	Loads       int     `json:"loads"`
	LoadWaits   int     `json:"load_waits,omitempty"`
	Evictions   int     `json:"evictions,omitempty"`
	// Resident is how many instances hold the model at report time.
	Resident int `json:"resident,omitempty"`
}

// Report builds the mesh's deterministic accounting snapshot.
func (m *Mesh) Report() *Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := &Report{
		Instances:     m.cfg.Instances,
		InstanceMemMB: m.cfg.InstanceMemMB,
		Models:        len(m.order),
	}
	var loadMsSum float64
	for _, id := range m.order {
		mm := m.models[id]
		mr := ModelReport{
			ID:          id,
			PredictedMB: roundMB(mm.predicted),
			MeasuredMB:  roundMB(mm.measured),
			Hits:        mm.hits,
			Misses:      mm.misses,
			Loads:       mm.loads,
			LoadWaits:   mm.loadWaits,
			Evictions:   mm.evictions,
		}
		for _, inst := range m.insts {
			if r := inst.resident[id]; r != nil && r.loading == nil {
				mr.Resident++
			}
		}
		rep.Hits += mm.hits
		rep.Misses += mm.misses
		rep.Loads += mm.loads
		rep.LoadWaits += mm.loadWaits
		rep.Evictions += mm.evictions
		rep.LoadedMB += float64(mm.loadedBytes) / 1e6
		loadMsSum += mm.loadMsSum
		rep.PerModel = append(rep.PerModel, mr)
	}
	rep.Queries = rep.Hits + rep.Misses
	if rep.Queries > 0 {
		rep.HitPct = round3(100 * float64(rep.Hits) / float64(rep.Queries))
	}
	rep.LoadedMB = round3(rep.LoadedMB)
	if rep.Loads > 0 {
		rep.MeanLoadMs = round3(loadMsSum / float64(rep.Loads))
	}
	var bytes int64
	for _, inst := range m.insts {
		for _, r := range inst.resident {
			if r.loading == nil {
				rep.ResidentModels++
				bytes += r.bytes
			}
		}
	}
	rep.ResidentMB = roundMB(bytes)
	return rep
}

// Table renders the report in the figure runners' tabular style.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Mesh: %d models on %d x %d MB instances — %d queries, %.1f%% hits, %d loads (%d waited), %d evictions\n",
		r.Models, r.Instances, r.InstanceMemMB, r.Queries, r.HitPct, r.Loads, r.LoadWaits, r.Evictions)
	fmt.Fprintf(&sb, "%-20s %9s %9s %6s %6s %6s %6s %4s\n",
		"model", "pred MB", "meas MB", "hits", "miss", "loads", "evict", "res")
	for _, mr := range r.PerModel {
		fmt.Fprintf(&sb, "%-20s %9.2f %9.2f %6d %6d %6d %6d %4d\n",
			mr.ID, mr.PredictedMB, mr.MeasuredMB, mr.Hits, mr.Misses, mr.Loads, mr.Evictions, mr.Resident)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// JSON renders the report byte-stably.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func roundMB(b int64) float64 { return round3(float64(b) / 1e6) }

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
