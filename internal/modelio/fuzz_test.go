package modelio

import (
	"bytes"
	"testing"

	"gillis/internal/graph"
	"gillis/internal/nn"
)

// FuzzLoad hardens the ONNX-lite reader against corrupt inputs: it must
// return an error or a valid graph, never panic or over-allocate.
func FuzzLoad(f *testing.F) {
	// Seed with a valid archive and a few mutations.
	g := graph.New("seed", []int{2, 4, 4})
	g.MustAdd(nn.NewConv2D("c", 2, 3, 3, 1, 1))
	g.MustAdd(nn.NewReLU("r"))
	g.Init(1)
	var buf bytes.Buffer
	if err := Save(&buf, g, true); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("GLSM"))
	f.Add([]byte("GLSM\x00\x00\x00\x10{\"version\":1}"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that loads must be a valid graph.
		if verr := loaded.Validate(); verr != nil {
			t.Fatalf("Load returned invalid graph: %v", verr)
		}
	})
}
