// Package modelio serializes model graphs to a compact self-contained
// binary format ("ONNX-lite"): a JSON structure header followed by raw
// little-endian fp32 weight blocks. It fills the role ONNX plays in the
// original Gillis system — a platform-neutral interchange format that the
// deployment pipeline packages into serverless functions.
package modelio

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

const (
	magic   = "GLSM"
	version = 1
)

// header is the JSON model structure preceding the weight blocks.
type header struct {
	Version    int      `json:"version"`
	Name       string   `json:"name"`
	InShape    []int    `json:"inShape"`
	HasWeights bool     `json:"hasWeights"`
	Nodes      []opSpec `json:"nodes"`
}

// opSpec describes one operator instance.
type opSpec struct {
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Inputs []int          `json:"inputs"`
	Attrs  map[string]int `json:"attrs,omitempty"`
}

// Save writes the graph to w. If withWeights is true every operator must be
// initialized and its tensors are appended after the header.
func Save(w io.Writer, g *graph.Graph, withWeights bool) error {
	if withWeights && !g.Initialized() {
		return fmt.Errorf("modelio: graph %q has uninitialized weights", g.Name)
	}
	h := header{
		Version:    version,
		Name:       g.Name,
		InShape:    g.InShape(),
		HasWeights: withWeights,
		Nodes:      make([]opSpec, 0, g.Len()),
	}
	for _, n := range g.Nodes() {
		spec, err := encodeOp(n.Op)
		if err != nil {
			return err
		}
		spec.Inputs = append([]int(nil), n.Inputs...)
		h.Nodes = append(h.Nodes, spec)
	}
	hb, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("modelio: marshal header: %w", err)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hb))); err != nil {
		return err
	}
	if _, err := bw.Write(hb); err != nil {
		return err
	}
	if withWeights {
		for _, n := range g.Nodes() {
			if err := writeWeights(bw, n.Op); err != nil {
				return fmt.Errorf("modelio: node %q: %w", n.Op.Name(), err)
			}
		}
	}
	return bw.Flush()
}

// Load reads a graph written by Save.
func Load(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	mg := make([]byte, len(magic))
	if _, err := io.ReadFull(br, mg); err != nil {
		return nil, fmt.Errorf("modelio: read magic: %w", err)
	}
	if string(mg) != magic {
		return nil, fmt.Errorf("modelio: bad magic %q", mg)
	}
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("modelio: read header length: %w", err)
	}
	const maxHeader = 64 << 20
	if hlen > maxHeader {
		return nil, fmt.Errorf("modelio: header length %d exceeds limit", hlen)
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(br, hb); err != nil {
		return nil, fmt.Errorf("modelio: read header: %w", err)
	}
	var h header
	if err := json.Unmarshal(hb, &h); err != nil {
		return nil, fmt.Errorf("modelio: parse header: %w", err)
	}
	if h.Version != version {
		return nil, fmt.Errorf("modelio: unsupported version %d", h.Version)
	}
	g := graph.New(h.Name, h.InShape)
	for _, spec := range h.Nodes {
		op, err := decodeOp(spec)
		if err != nil {
			return nil, err
		}
		if _, err := g.Add(op, spec.Inputs...); err != nil {
			return nil, fmt.Errorf("modelio: rebuild graph: %w", err)
		}
	}
	if h.HasWeights {
		for _, n := range g.Nodes() {
			if err := readWeights(br, n.Op); err != nil {
				return nil, fmt.Errorf("modelio: node %q weights: %w", n.Op.Name(), err)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("modelio: loaded graph invalid: %w", err)
	}
	return g, nil
}

// SaveFile writes the graph to path.
func SaveFile(path string, g *graph.Graph, withWeights bool) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return Save(f, g, withWeights)
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func encodeOp(op nn.Op) (opSpec, error) {
	spec := opSpec{Kind: op.Kind().String(), Name: op.Name(), Attrs: map[string]int{}}
	switch o := op.(type) {
	case *nn.Conv2D:
		spec.Attrs["inC"] = o.InC
		spec.Attrs["outC"] = o.OutC
		spec.Attrs["kernel"] = o.Kernel
		spec.Attrs["stride"] = o.Stride
		spec.Attrs["pad"] = o.Pad
	case *nn.DepthwiseConv2D:
		spec.Attrs["c"] = o.C
		spec.Attrs["kernel"] = o.Kernel
		spec.Attrs["stride"] = o.Stride
		spec.Attrs["pad"] = o.Pad
		spec.Attrs["lo"] = o.Lo
		spec.Attrs["hi"] = o.Hi
	case *nn.BatchNorm:
		spec.Attrs["c"] = o.C
	case *nn.MaxPool2D:
		spec.Attrs["kernel"] = o.Kernel
		spec.Attrs["stride"] = o.Stride
		spec.Attrs["pad"] = o.Pad
	case *nn.AvgPool2D:
		spec.Attrs["kernel"] = o.Kernel
		spec.Attrs["stride"] = o.Stride
	case *nn.Dense:
		spec.Attrs["in"] = o.In
		spec.Attrs["out"] = o.Out
	case *nn.LSTM:
		spec.Attrs["in"] = o.InSize
		spec.Attrs["hidden"] = o.Hidden
	case *nn.FusedConv2D:
		// Kind() reports Conv2D for the perf model; the serialized kind must
		// stay distinct so Load rebuilds the fused wrapper.
		spec.Kind = "FusedConv2D"
		spec.Attrs["inC"] = o.Conv.InC
		spec.Attrs["outC"] = o.Conv.OutC
		spec.Attrs["kernel"] = o.Conv.Kernel
		spec.Attrs["stride"] = o.Conv.Stride
		spec.Attrs["pad"] = o.Conv.Pad
		if o.HasBN() {
			spec.Attrs["bn"] = 1
		}
		if o.Relu {
			spec.Attrs["relu"] = 1
		}
	case *nn.FusedDense:
		spec.Kind = "FusedDense"
		spec.Attrs["in"] = o.Dense.In
		spec.Attrs["out"] = o.Dense.Out
	case *nn.ReLU, *nn.Add, *nn.Softmax, *nn.Flatten, *nn.GlobalAvgPool, *nn.TakeLast, *nn.Concat:
		// no attributes
	default:
		return opSpec{}, fmt.Errorf("modelio: cannot serialize op kind %s", op.Kind())
	}
	return spec, nil
}

func decodeOp(spec opSpec) (nn.Op, error) {
	a := spec.Attrs
	switch spec.Kind {
	case "Conv2D":
		return nn.NewConv2D(spec.Name, a["inC"], a["outC"], a["kernel"], a["stride"], a["pad"]), nil
	case "DepthwiseConv2D":
		op := nn.NewDepthwiseConv2D(spec.Name, a["c"], a["kernel"], a["stride"], a["pad"])
		if a["hi"] > 0 {
			op.Lo, op.Hi = a["lo"], a["hi"]
		}
		return op, nil
	case "BatchNorm":
		return nn.NewBatchNorm(spec.Name, a["c"]), nil
	case "MaxPool2D":
		return nn.NewMaxPool2D(spec.Name, a["kernel"], a["stride"], a["pad"]), nil
	case "AvgPool2D":
		return nn.NewAvgPool2D(spec.Name, a["kernel"], a["stride"]), nil
	case "Dense":
		return nn.NewDense(spec.Name, a["in"], a["out"]), nil
	case "FusedConv2D":
		conv := nn.NewConv2D(spec.Name, a["inC"], a["outC"], a["kernel"], a["stride"], a["pad"])
		f := &nn.FusedConv2D{Conv: conv, Relu: a["relu"] == 1}
		if a["bn"] == 1 {
			// Placeholder affine so SetWeights expects (and installs) the
			// folded scale/shift tensors from the weight block.
			f.Scale = tensor.New(a["outC"])
			f.Shift = tensor.New(a["outC"])
		}
		return f, nil
	case "FusedDense":
		return nn.NewFusedDense(nn.NewDense(spec.Name, a["in"], a["out"])), nil
	case "LSTM":
		return nn.NewLSTM(spec.Name, a["in"], a["hidden"]), nil
	case "ReLU":
		return nn.NewReLU(spec.Name), nil
	case "Add":
		return nn.NewAdd(spec.Name), nil
	case "Softmax":
		return nn.NewSoftmax(spec.Name), nil
	case "Flatten":
		return nn.NewFlatten(spec.Name), nil
	case "GlobalAvgPool":
		return nn.NewGlobalAvgPool(spec.Name), nil
	case "TakeLast":
		return nn.NewTakeLast(spec.Name), nil
	case "Concat":
		return nn.NewConcat(spec.Name), nil
	}
	return nil, fmt.Errorf("modelio: unknown op kind %q", spec.Kind)
}

func writeWeights(w io.Writer, op nn.Op) error {
	wt, ok := op.(nn.Weighted)
	if !ok {
		return binary.Write(w, binary.LittleEndian, uint32(0))
	}
	ws := wt.Weights()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ws))); err != nil {
		return err
	}
	for _, t := range ws {
		shape := t.Shape()
		if err := binary.Write(w, binary.LittleEndian, uint8(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 4*len(t.Data()))
		for i, v := range t.Data() {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readWeights(r io.Reader, op nn.Op) error {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	wt, ok := op.(nn.Weighted)
	if !ok {
		if count != 0 {
			return fmt.Errorf("weight block for weight-free op")
		}
		return nil
	}
	ws := make([]*tensor.Tensor, count)
	for i := range ws {
		var rank uint8
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		if rank == 0 || rank > 8 {
			return fmt.Errorf("bad tensor rank %d", rank)
		}
		shape := make([]int, rank)
		n := 1
		for d := range shape {
			var v uint32
			if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
				return err
			}
			if v == 0 || v > 1<<28 {
				return fmt.Errorf("bad dimension %d", v)
			}
			shape[d] = int(v)
			n *= int(v)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		data := make([]float32, n)
		for j := range data {
			data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		t, err := tensor.FromData(data, shape...)
		if err != nil {
			return err
		}
		ws[i] = t
	}
	return wt.SetWeights(ws)
}
