package modelio

import (
	"bytes"
	"path/filepath"
	"testing"

	"gillis/internal/graph"
	"gillis/internal/models"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// tinyModel exercises every serializable op kind.
func tinyModel(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("tiny", []int{2, 8, 8})
	stem := g.MustAdd(nn.NewConv2D("conv", 2, 4, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("bn", 4))
	g.MustAdd(nn.NewReLU("relu"))
	g.MustAdd(nn.NewMaxPool2D("mp", 2, 2, 0))
	g.MustAdd(nn.NewAvgPool2D("ap", 2, 2))
	short := g.MustAdd(nn.NewConv2D("short", 2, 4, 3, 4, 1), graph.InputID)
	g.MustAdd(nn.NewAdd("add"), 4, short)
	g.MustAdd(nn.NewGlobalAvgPool("gap"))
	g.MustAdd(nn.NewDense("fc", 4, 6))
	g.MustAdd(nn.NewSoftmax("sm"))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = stem
	return g
}

func TestRoundtripWithWeights(t *testing.T) {
	g := tinyModel(t)
	g.Init(11)
	var buf bytes.Buffer
	if err := Save(&buf, g, true); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name != g.Name || g2.Len() != g.Len() {
		t.Fatalf("structure mismatch: %s/%d vs %s/%d", g2.Name, g2.Len(), g.Name, g.Len())
	}
	x := tensor.Full(0.3, 2, 8, 8)
	want, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g2.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("loaded model must produce bitwise identical outputs")
	}
}

func TestRoundtripSpecOnly(t *testing.T) {
	g, err := models.VGG(11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, g, false); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.ParamCount() != g.ParamCount() {
		t.Fatalf("param counts differ: %d vs %d", g2.ParamCount(), g.ParamCount())
	}
	if g2.Initialized() {
		t.Fatal("spec-only load must not have weights")
	}
	s1, err := g.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g2.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(s1, s2) {
		t.Fatal("shapes differ after roundtrip")
	}
}

func TestRoundtripRNN(t *testing.T) {
	g, err := models.RNNCustom(2, 6, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	g.Init(5)
	var buf bytes.Buffer
	if err := Save(&buf, g, true); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(0.2, 4, 6)
	want, _ := g.Forward(x)
	got, err := g2.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("RNN roundtrip mismatch")
	}
}

func TestSaveUninitializedWithWeightsFails(t *testing.T) {
	g := tinyModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, g, true); err == nil {
		t.Fatal("expected error for uninitialized weights")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("GLSM\xff\xff\xff\xff"),
		[]byte("GLSM\x02\x00\x00\x00{}"),
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLoadTruncatedWeights(t *testing.T) {
	g := tinyModel(t)
	g.Init(3)
	var buf bytes.Buffer
	if err := Save(&buf, g, true); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestFileRoundtrip(t *testing.T) {
	g := tinyModel(t)
	g.Init(7)
	path := filepath.Join(t.TempDir(), "tiny.glsm")
	if err := SaveFile(path, g, true); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatal("file roundtrip structure mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.glsm")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestRoundtripDepthwiseAndConcat(t *testing.T) {
	g := graph.New("dwcat", []int{4, 8, 8})
	in := g.MustAdd(nn.NewDepthwiseConv2D("dw", 4, 3, 1, 1))
	b1 := g.MustAdd(nn.NewConv2D("b1", 4, 2, 1, 1, 0), in)
	b2 := g.MustAdd(nn.NewConv2D("b2", 4, 3, 1, 1, 0), in)
	g.MustAdd(nn.NewConcat("cat"), b1, b2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Init(13)
	var buf bytes.Buffer
	if err := Save(&buf, g, true); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(0.4, 4, 8, 8)
	want, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g2.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("depthwise/concat roundtrip mismatch")
	}
	// A sliced depthwise op (Lo/Hi set) must survive serialization too.
	sliced, err := nn.NewDepthwiseConv2D("dws", 6, 3, 1, 1).SliceChannels(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	gs := graph.New("s", []int{6, 8, 8})
	gs.MustAdd(sliced)
	gs.Init(14)
	buf.Reset()
	if err := Save(&buf, gs, true); err != nil {
		t.Fatal(err)
	}
	gs2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	xs := tensor.Full(0.2, 6, 8, 8)
	wantS, _ := gs.Forward(xs)
	gotS, err := gs2.Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(wantS, gotS) {
		t.Fatal("sliced depthwise roundtrip mismatch")
	}
}

// TestRoundtripFusedGraph runs a graph through the fusion pass, serializes
// it with weights, and checks the loaded copy (including the folded
// scale/shift epilogue tensors) forwards bitwise identically.
func TestRoundtripFusedGraph(t *testing.T) {
	g := graph.New("fused", []int{3, 10, 10})
	g.MustAdd(nn.NewConv2D("c1", 3, 6, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("b1", 6))
	g.MustAdd(nn.NewReLU("r1"))
	g.MustAdd(nn.NewConv2D("c2", 6, 8, 3, 1, 1))
	g.MustAdd(nn.NewReLU("r2"))
	g.MustAdd(nn.NewFlatten("fl"))
	g.MustAdd(nn.NewDense("fc", 8*10*10, 5))
	g.MustAdd(nn.NewReLU("r3"))
	g.Init(13)
	fg, eliminated, err := graph.Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if eliminated != 4 {
		t.Fatalf("eliminated %d nodes, want 4", eliminated)
	}
	var buf bytes.Buffer
	if err := Save(&buf, fg, true); err != nil {
		t.Fatal(err)
	}
	fg2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(0.25, 3, 10, 10)
	want, err := g.Forward(x) // the unfused original is the reference
	if err != nil {
		t.Fatal(err)
	}
	got, err := fg2.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("loaded fused model must match the unfused original bitwise")
	}
}
