package modelio

import (
	"bytes"
	"fmt"
	"testing"

	"gillis/internal/models"
	"gillis/internal/tensor"
)

// zooEntries is every model family and variant the models.ByName zoo
// constructs — the full set the paper evaluates (§V-A) plus the two
// branch-model families added for the merging experiments.
var zooEntries = []string{
	"vgg11", "vgg16", "vgg19",
	"resnet34", "resnet50", "resnet101",
	"wrn34-2", "wrn50-2", "wrn50-4", "wrn101-2",
	"rnn2", "rnn4", "rnn6", "rnn8",
	"inception-mini", "mobilenet-mini",
	// Serving-mesh catalog fillers: the same two small families at
	// distinct parameter sizes.
	"mobilenet-mini-w2", "mobilenet-mini-w3",
	"rnn-tiny2", "rnn-tiny4", "rnn-tiny6",
}

// TestZooRoundtripEveryEntry exports and reimports every zoo model
// (structure only) and requires an identical graph back: same name, input
// shape, node count, and per-node operator kind, name, wiring, and
// parameter count.
func TestZooRoundtripEveryEntry(t *testing.T) {
	for _, name := range zooEntries {
		t.Run(name, func(t *testing.T) {
			g, err := models.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Save(&buf, g, false); err != nil {
				t.Fatal(err)
			}
			g2, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}

			if g2.Name != g.Name {
				t.Errorf("name: got %q, want %q", g2.Name, g.Name)
			}
			if !tensor.ShapeEqual(g2.InShape(), g.InShape()) {
				t.Errorf("input shape: got %v, want %v", g2.InShape(), g.InShape())
			}
			if g2.Len() != g.Len() {
				t.Fatalf("node count: got %d, want %d", g2.Len(), g.Len())
			}
			for i, n := range g.Nodes() {
				n2 := g2.Node(i)
				if n2.Op.Kind() != n.Op.Kind() {
					t.Errorf("node %d kind: got %v, want %v", i, n2.Op.Kind(), n.Op.Kind())
				}
				if n2.Op.Name() != n.Op.Name() {
					t.Errorf("node %d name: got %q, want %q", i, n2.Op.Name(), n.Op.Name())
				}
				if fmt.Sprintf("%v", n2.Inputs) != fmt.Sprintf("%v", n.Inputs) {
					t.Errorf("node %d inputs: got %v, want %v", i, n2.Inputs, n.Inputs)
				}
				if n2.Op.ParamCount() != n.Op.ParamCount() {
					t.Errorf("node %d (%s) params: got %d, want %d",
						i, n.Op.Name(), n2.Op.ParamCount(), n.Op.ParamCount())
				}
			}
			if g2.ParamCount() != g.ParamCount() {
				t.Errorf("total params: got %d, want %d", g2.ParamCount(), g.ParamCount())
			}
			f1, err := g.FLOPs()
			if err != nil {
				t.Fatal(err)
			}
			f2, err := g2.FLOPs()
			if err != nil {
				t.Fatal(err)
			}
			if f1 != f2 {
				t.Errorf("FLOPs: got %d, want %d", f2, f1)
			}
		})
	}
}
