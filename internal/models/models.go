// Package models is the benchmark-model zoo: the VGG, ResNet, Wide ResNet,
// and multi-layer LSTM families the Gillis paper evaluates (§V-A). The
// constructors reproduce the published architectures so that parameter
// counts — and therefore the serverless out-of-memory frontiers the paper
// observes — land in the right places.
package models

import (
	"fmt"

	"gillis/internal/graph"
	"gillis/internal/nn"
)

// ImageInput is the CHW input shape of all CNN models.
var ImageInput = []int{3, 224, 224}

const numClasses = 1000

// RNN model defaults matching §V-A: 2K hidden LSTM cells, language-model
// style sequence length and vocabulary.
const (
	RNNHidden = 2048
	RNNSteps  = 35
	RNNVocab  = 10000
)

// VGG builds a VGG model. variant must be 11, 16, or 19.
func VGG(variant int) (*graph.Graph, error) {
	cfgs := map[int][]int{
		// -1 denotes a 2x2/2 max-pooling layer.
		11: {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1},
		16: {64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512, 512, -1},
		19: {64, 64, -1, 128, 128, -1, 256, 256, 256, 256, -1, 512, 512, 512, 512, -1, 512, 512, 512, 512, -1},
	}
	cfg, ok := cfgs[variant]
	if !ok {
		return nil, fmt.Errorf("models: unknown VGG variant %d", variant)
	}
	g := graph.New(fmt.Sprintf("vgg%d", variant), ImageInput)
	inC := 3
	convI, poolI := 0, 0
	for _, c := range cfg {
		if c == -1 {
			poolI++
			g.MustAdd(nn.NewMaxPool2D(fmt.Sprintf("pool%d", poolI), 2, 2, 0))
			continue
		}
		convI++
		g.MustAdd(nn.NewConv2D(fmt.Sprintf("conv%d", convI), inC, c, 3, 1, 1))
		g.MustAdd(nn.NewReLU(fmt.Sprintf("relu%d", convI)))
		inC = c
	}
	g.MustAdd(nn.NewFlatten("flatten"))
	g.MustAdd(nn.NewDense("fc1", 512*7*7, 4096))
	g.MustAdd(nn.NewReLU("fc1_relu"))
	g.MustAdd(nn.NewDense("fc2", 4096, 4096))
	g.MustAdd(nn.NewReLU("fc2_relu"))
	g.MustAdd(nn.NewDense("fc3", 4096, numClasses))
	g.MustAdd(nn.NewSoftmax("prob"))
	return g, nil
}

// ResNet builds a classic residual network. depth must be 34, 50, or 101.
func ResNet(depth int) (*graph.Graph, error) { return WideResNet(depth, 1) }

// WideResNet builds a ResNet widened by multiplying every convolution's
// channel count by k (WRN-depth-k in the paper's notation; k = 1 recovers
// the classic ResNet). depth must be 34, 50, or 101.
func WideResNet(depth, k int) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("models: widening scalar %d must be >= 1", k)
	}
	type stageCfg struct {
		blocks     []int
		bottleneck bool
	}
	cfgs := map[int]stageCfg{
		34:  {blocks: []int{3, 4, 6, 3}, bottleneck: false},
		50:  {blocks: []int{3, 4, 6, 3}, bottleneck: true},
		101: {blocks: []int{3, 4, 23, 3}, bottleneck: true},
	}
	cfg, ok := cfgs[depth]
	if !ok {
		return nil, fmt.Errorf("models: unknown ResNet depth %d", depth)
	}
	name := fmt.Sprintf("resnet%d", depth)
	if k > 1 {
		name = fmt.Sprintf("wrn%d-%d", depth, k)
	}
	g := graph.New(name, ImageInput)

	stemC := 64 * k
	g.MustAdd(nn.NewConv2D("stem_conv", 3, stemC, 7, 2, 3))
	g.MustAdd(nn.NewBatchNorm("stem_bn", stemC))
	g.MustAdd(nn.NewReLU("stem_relu"))
	last := g.MustAdd(nn.NewMaxPool2D("stem_pool", 3, 2, 1))

	inC := stemC
	baseC := []int{64, 128, 256, 512}
	for stage, nBlocks := range cfg.blocks {
		c := baseC[stage] * k
		for b := 0; b < nBlocks; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("s%db%d", stage+1, b+1)
			if cfg.bottleneck {
				last = addBottleneckBlock(g, prefix, last, inC, c, stride)
				inC = c * 4
			} else {
				last = addBasicBlock(g, prefix, last, inC, c, stride)
				inC = c
			}
		}
	}
	g.MustAdd(nn.NewGlobalAvgPool("gap"), last)
	g.MustAdd(nn.NewDense("fc", inC, numClasses))
	g.MustAdd(nn.NewSoftmax("prob"))
	return g, nil
}

// addBasicBlock appends a ResNet-34-style block (two 3x3 convolutions) and
// returns the output node ID.
func addBasicBlock(g *graph.Graph, prefix string, in, inC, outC, stride int) int {
	c1 := g.MustAdd(nn.NewConv2D(prefix+"_conv1", inC, outC, 3, stride, 1), in)
	b1 := g.MustAdd(nn.NewBatchNorm(prefix+"_bn1", outC), c1)
	r1 := g.MustAdd(nn.NewReLU(prefix+"_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D(prefix+"_conv2", outC, outC, 3, 1, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm(prefix+"_bn2", outC), c2)

	short := in
	if stride != 1 || inC != outC {
		sc := g.MustAdd(nn.NewConv2D(prefix+"_down", inC, outC, 1, stride, 0), in)
		short = g.MustAdd(nn.NewBatchNorm(prefix+"_down_bn", outC), sc)
	}
	sum := g.MustAdd(nn.NewAdd(prefix+"_add"), b2, short)
	return g.MustAdd(nn.NewReLU(prefix+"_relu2"), sum)
}

// addBottleneckBlock appends a ResNet-50-style block (1x1 reduce, 3x3,
// 1x1 expand ×4) and returns the output node ID.
func addBottleneckBlock(g *graph.Graph, prefix string, in, inC, c, stride int) int {
	outC := c * 4
	c1 := g.MustAdd(nn.NewConv2D(prefix+"_conv1", inC, c, 1, 1, 0), in)
	b1 := g.MustAdd(nn.NewBatchNorm(prefix+"_bn1", c), c1)
	r1 := g.MustAdd(nn.NewReLU(prefix+"_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D(prefix+"_conv2", c, c, 3, stride, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm(prefix+"_bn2", c), c2)
	r2 := g.MustAdd(nn.NewReLU(prefix+"_relu2"), b2)
	c3 := g.MustAdd(nn.NewConv2D(prefix+"_conv3", c, outC, 1, 1, 0), r2)
	b3 := g.MustAdd(nn.NewBatchNorm(prefix+"_bn3", outC), c3)

	short := in
	if stride != 1 || inC != outC {
		sc := g.MustAdd(nn.NewConv2D(prefix+"_down", inC, outC, 1, stride, 0), in)
		short = g.MustAdd(nn.NewBatchNorm(prefix+"_down_bn", outC), sc)
	}
	sum := g.MustAdd(nn.NewAdd(prefix+"_add"), b3, short)
	return g.MustAdd(nn.NewReLU(prefix+"_relu3"), sum)
}

// RNN builds an n-layer LSTM language model with 2K hidden size (RNN-n in
// the paper's notation): n stacked LSTM layers followed by a vocabulary
// projection on the final step.
func RNN(layers int) (*graph.Graph, error) {
	return RNNCustom(layers, RNNHidden, RNNSteps, RNNVocab)
}

// RNNCustom builds an LSTM stack with explicit dimensions, for tests and
// microbenchmarks.
func RNNCustom(layers, hidden, steps, vocab int) (*graph.Graph, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: RNN needs at least 1 layer, got %d", layers)
	}
	g := graph.New(fmt.Sprintf("rnn%d", layers), []int{steps, hidden})
	for i := 1; i <= layers; i++ {
		g.MustAdd(nn.NewLSTM(fmt.Sprintf("lstm%d", i), hidden, hidden))
	}
	g.MustAdd(nn.NewTakeLast("last"))
	g.MustAdd(nn.NewDense("proj", hidden, vocab))
	g.MustAdd(nn.NewSoftmax("prob"))
	return g, nil
}

// ByName constructs a benchmark model from its paper notation, e.g.
// "vgg16", "resnet50", "wrn34-5", "rnn6".
func ByName(name string) (*graph.Graph, error) {
	var a, b int
	switch {
	case scan(name, "vgg%d", &a):
		return VGG(a)
	case scan(name, "resnet%d", &a):
		return ResNet(a)
	case scan(name, "wrn%d-%d", &a, &b):
		return WideResNet(a, b)
	case scan(name, "rnn-tiny%d", &a):
		return RNNTiny(a)
	case scan(name, "rnn%d", &a):
		return RNN(a)
	case name == "inception-mini":
		return MiniInception()
	case name == "mobilenet-mini":
		return MobileNetMini()
	case scan(name, "mobilenet-mini-w%d", &a):
		return MobileNetMiniW(a)
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}

func scan(s, format string, args ...any) bool {
	n, err := fmt.Sscanf(s, format, args...)
	return err == nil && n == len(args)
}

// MiniInception builds a compact GoogLeNet-style network of Inception
// branch modules — the second branch-module family the paper's Fig. 5
// merging handles (1x1 / 1x1→3x3 / 1x1→5x5 / pool→1x1 branches joined by a
// channel concatenation).
func MiniInception() (*graph.Graph, error) {
	g := graph.New("inception-mini", ImageInput)
	g.MustAdd(nn.NewConv2D("stem_conv", 3, 64, 7, 2, 3))
	g.MustAdd(nn.NewReLU("stem_relu"))
	last := g.MustAdd(nn.NewMaxPool2D("stem_pool", 3, 2, 1))

	last = addInceptionModule(g, "i3a", last, 64, 32, 48, 64, 8, 16, 16)   // out 128
	last = addInceptionModule(g, "i3b", last, 128, 64, 64, 96, 16, 32, 32) // out 224
	last = g.MustAdd(nn.NewMaxPool2D("pool3", 3, 2, 1), last)
	last = addInceptionModule(g, "i4a", last, 224, 96, 48, 104, 8, 24, 32) // out 256
	g.MustAdd(nn.NewGlobalAvgPool("gap"), last)
	g.MustAdd(nn.NewDense("fc", 256, numClasses))
	g.MustAdd(nn.NewSoftmax("prob"))
	return g, nil
}

// addInceptionModule appends a four-branch Inception module and returns the
// concatenated output node ID.
func addInceptionModule(g *graph.Graph, prefix string, in, inC, c1, c3r, c3, c5r, c5, cp int) int {
	b1 := g.MustAdd(nn.NewConv2D(prefix+"_b1", inC, c1, 1, 1, 0), in)
	b1 = g.MustAdd(nn.NewReLU(prefix+"_b1_relu"), b1)

	b3 := g.MustAdd(nn.NewConv2D(prefix+"_b3r", inC, c3r, 1, 1, 0), in)
	b3 = g.MustAdd(nn.NewReLU(prefix+"_b3r_relu"), b3)
	b3 = g.MustAdd(nn.NewConv2D(prefix+"_b3", c3r, c3, 3, 1, 1), b3)
	b3 = g.MustAdd(nn.NewReLU(prefix+"_b3_relu"), b3)

	b5 := g.MustAdd(nn.NewConv2D(prefix+"_b5r", inC, c5r, 1, 1, 0), in)
	b5 = g.MustAdd(nn.NewReLU(prefix+"_b5r_relu"), b5)
	b5 = g.MustAdd(nn.NewConv2D(prefix+"_b5", c5r, c5, 5, 1, 2), b5)
	b5 = g.MustAdd(nn.NewReLU(prefix+"_b5_relu"), b5)

	bp := g.MustAdd(nn.NewMaxPool2D(prefix+"_pool", 3, 1, 1), in)
	bp = g.MustAdd(nn.NewConv2D(prefix+"_bp", inC, cp, 1, 1, 0), bp)
	bp = g.MustAdd(nn.NewReLU(prefix+"_bp_relu"), bp)

	return g.MustAdd(nn.NewConcat(prefix+"_concat"), b1, b3, b5, bp)
}

// MobileNetMini builds a compact MobileNet-style network of depthwise
// separable convolutions (depthwise 3x3 + pointwise 1x1, each followed by
// BatchNorm and ReLU) — a model family whose depthwise layers are both
// spatially local and channel-sliceable.
func MobileNetMini() (*graph.Graph, error) {
	return mobileNetMini("mobilenet-mini", 1)
}

// MobileNetMiniW builds MobileNetMini with every channel count multiplied
// by w ("mobilenet-mini-wN"): the serving mesh's catalog fillers, giving
// the same architecture at quadratically growing parameter sizes.
func MobileNetMiniW(w int) (*graph.Graph, error) {
	if w < 1 {
		return nil, fmt.Errorf("models: width multiplier %d must be >= 1", w)
	}
	return mobileNetMini(fmt.Sprintf("mobilenet-mini-w%d", w), w)
}

func mobileNetMini(name string, w int) (*graph.Graph, error) {
	g := graph.New(name, ImageInput)
	g.MustAdd(nn.NewConv2D("stem_conv", 3, 32*w, 3, 2, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 32*w))
	g.MustAdd(nn.NewReLU("stem_relu"))

	inC := 32 * w
	for i, cfg := range []struct{ outC, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
	} {
		prefix := fmt.Sprintf("ds%d", i+1)
		outC := cfg.outC * w
		g.MustAdd(nn.NewDepthwiseConv2D(prefix+"_dw", inC, 3, cfg.stride, 1))
		g.MustAdd(nn.NewBatchNorm(prefix+"_dw_bn", inC))
		g.MustAdd(nn.NewReLU(prefix + "_dw_relu"))
		g.MustAdd(nn.NewConv2D(prefix+"_pw", inC, outC, 1, 1, 0))
		g.MustAdd(nn.NewBatchNorm(prefix+"_pw_bn", outC))
		g.MustAdd(nn.NewReLU(prefix + "_pw_relu"))
		inC = outC
	}
	g.MustAdd(nn.NewGlobalAvgPool("gap"))
	g.MustAdd(nn.NewDense("fc", inC, numClasses))
	g.MustAdd(nn.NewSoftmax("prob"))
	return g, nil
}

// RNN-tiny dimensions: small enough that several fit one serving
// instance's memory budget together, which is what a catalog mix needs.
const (
	rnnTinyHidden = 320
	rnnTinySteps  = 16
	rnnTinyVocab  = 4000
)

// RNNTiny builds a small n-layer LSTM stack ("rnn-tinyN"): the RNN-family
// catalog fillers, growing linearly in parameter size with the layer
// count.
func RNNTiny(layers int) (*graph.Graph, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: RNN needs at least 1 layer, got %d", layers)
	}
	g := graph.New(fmt.Sprintf("rnn-tiny%d", layers), []int{rnnTinySteps, rnnTinyHidden})
	for i := 1; i <= layers; i++ {
		g.MustAdd(nn.NewLSTM(fmt.Sprintf("lstm%d", i), rnnTinyHidden, rnnTinyHidden))
	}
	g.MustAdd(nn.NewTakeLast("last"))
	g.MustAdd(nn.NewDense("proj", rnnTinyHidden, rnnTinyVocab))
	g.MustAdd(nn.NewSoftmax("prob"))
	return g, nil
}
