package models

import (
	"math"
	"testing"

	"gillis/internal/tensor"
)

// paramsM returns the model's parameter count in millions.
func paramsM(t *testing.T, name string) float64 {
	t.Helper()
	g, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return float64(g.ParamCount()) / 1e6
}

// within asserts |got-want|/want <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/want > tol {
		t.Fatalf("%s: got %.2fM params, want %.2fM (±%.0f%%)", name, got, want, tol*100)
	}
}

// Published parameter counts (torchvision / original papers). BatchNorm
// running statistics count as stored scalars here, so allow a small
// tolerance.
func TestPublishedParameterCounts(t *testing.T) {
	within(t, "vgg11", paramsM(t, "vgg11"), 132.86, 0.01)
	within(t, "vgg16", paramsM(t, "vgg16"), 138.36, 0.01)
	within(t, "vgg19", paramsM(t, "vgg19"), 143.67, 0.01)
	within(t, "resnet34", paramsM(t, "resnet34"), 21.80, 0.02)
	within(t, "resnet50", paramsM(t, "resnet50"), 25.56, 0.02)
	within(t, "resnet101", paramsM(t, "resnet101"), 44.55, 0.02)
}

// The OOM frontier the paper reports (M = 1.4 GB usable weight budget,
// §V-A): WRN-34-4 and WRN-50-3 still fit in one function; WRN-34-5 and
// WRN-50-4/5 do not; RNN stacks fit up to 9 layers.
func TestOOMFrontierMatchesPaper(t *testing.T) {
	const budgetMB = 1400.0
	weightMB := func(name string) float64 { return paramsM(t, name) * 4 } // fp32

	fits := map[string]bool{
		"vgg19":   true,
		"wrn34-3": true,
		"wrn34-4": true,
		"wrn50-3": true,
		"wrn34-5": false,
		"wrn50-4": false,
		"wrn50-5": false,
		"rnn9":    true,
		"rnn10":   false,
	}
	for name, want := range fits {
		mb := weightMB(name)
		if got := mb <= budgetMB; got != want {
			t.Errorf("%s: weights %.0f MB, fits=%v, paper says fits=%v", name, mb, got, want)
		}
	}
}

func TestWideningGrowsQuadratically(t *testing.T) {
	p1 := paramsM(t, "resnet50")
	p3 := paramsM(t, "wrn50-3")
	// Conv params dominate and scale with k^2; allow generous bounds.
	if ratio := p3 / p1; ratio < 7 || ratio > 9.5 {
		t.Fatalf("WRN-50-3 / ResNet-50 param ratio %.2f outside quadratic range", ratio)
	}
}

func TestCNNOutputShapes(t *testing.T) {
	for _, name := range []string{"vgg11", "resnet34", "resnet50", "wrn34-2"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := g.OutShape()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tensor.ShapeEqual(out, []int{1000}) {
			t.Fatalf("%s output shape %v, want [1000]", name, out)
		}
	}
}

func TestRNNShapesAndParams(t *testing.T) {
	g, err := RNN(3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(out, []int{RNNVocab}) {
		t.Fatalf("rnn3 output shape %v", out)
	}
	// Each 2K LSTM layer stores ~33.6M scalars (134 MB fp32).
	perLayer := (paramsM(t, "rnn4") - paramsM(t, "rnn3")) // isolate one layer
	if perLayer < 33 || perLayer > 34.2 {
		t.Fatalf("per-layer LSTM params %.2fM, want ~33.6M", perLayer)
	}
}

func TestTinyForwardRuns(t *testing.T) {
	// A miniature RNN exercises the full LSTM + TakeLast + Dense + Softmax
	// path with real math.
	g, err := RNNCustom(2, 8, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	g.Init(1)
	out, err := g.Forward(tensor.Full(0.1, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	var sum float32
	for _, v := range out.Data() {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-4 {
		t.Fatalf("softmax output does not sum to 1: %v", sum)
	}
}

func TestByNameErrors(t *testing.T) {
	for _, bad := range []string{"vgg12", "resnet18", "wrn20-2", "bert", ""} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) should fail", bad)
		}
	}
}

func TestWideResNetRejectsBadScalar(t *testing.T) {
	if _, err := WideResNet(34, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestRNNRejectsBadLayerCount(t *testing.T) {
	if _, err := RNN(0); err == nil {
		t.Fatal("expected error for 0 layers")
	}
}
