// Package neural is a from-scratch micro neural-network library backing
// Gillis's SLO-aware reinforcement-learning agents (§IV-C): two-layer
// perceptrons with tanh hidden units, masked-softmax policies, REINFORCE
// policy gradients, and an Adam optimizer. It replaces the deep-learning
// framework the paper trains its partitioner/placer policies with.
package neural

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a two-layer perceptron: logits = W2·tanh(W1·x + b1) + b2.
type MLP struct {
	in, hidden, out    int
	w1, b1, w2, b2     []float64
	gw1, gb1, gw2, gb2 []float64
	opt                *Adam
}

// NewMLP creates a two-layer network with Xavier-style initialization.
func NewMLP(rng *rand.Rand, in, hidden, out int, lr float64) *MLP {
	m := &MLP{
		in: in, hidden: hidden, out: out,
		w1:  make([]float64, hidden*in),
		b1:  make([]float64, hidden),
		w2:  make([]float64, out*hidden),
		b2:  make([]float64, out),
		gw1: make([]float64, hidden*in),
		gb1: make([]float64, hidden),
		gw2: make([]float64, out*hidden),
		gb2: make([]float64, out),
	}
	s1 := math.Sqrt(2.0 / float64(in+hidden))
	for i := range m.w1 {
		m.w1[i] = rng.NormFloat64() * s1
	}
	s2 := math.Sqrt(2.0 / float64(hidden+out))
	for i := range m.w2 {
		m.w2[i] = rng.NormFloat64() * s2
	}
	m.opt = NewAdam(lr, m.paramCount())
	return m
}

func (m *MLP) paramCount() int {
	return len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2)
}

// Cache holds the activations of one forward pass for backprop.
type Cache struct {
	X      []float64
	Hidden []float64
	Logits []float64
}

// Forward computes logits for input x.
func (m *MLP) Forward(x []float64) (*Cache, error) {
	if len(x) != m.in {
		return nil, fmt.Errorf("neural: input size %d, want %d", len(x), m.in)
	}
	c := &Cache{X: append([]float64(nil), x...)}
	c.Hidden = make([]float64, m.hidden)
	for h := 0; h < m.hidden; h++ {
		acc := m.b1[h]
		row := m.w1[h*m.in : (h+1)*m.in]
		for i, v := range x {
			acc += row[i] * v
		}
		c.Hidden[h] = math.Tanh(acc)
	}
	c.Logits = make([]float64, m.out)
	for o := 0; o < m.out; o++ {
		acc := m.b2[o]
		row := m.w2[o*m.hidden : (o+1)*m.hidden]
		for h, v := range c.Hidden {
			acc += row[h] * v
		}
		c.Logits[o] = acc
	}
	return c, nil
}

// Backward accumulates parameter gradients for dLoss/dLogits.
func (m *MLP) Backward(c *Cache, dlogits []float64) error {
	if len(dlogits) != m.out {
		return fmt.Errorf("neural: dlogits size %d, want %d", len(dlogits), m.out)
	}
	dh := make([]float64, m.hidden)
	for o, d := range dlogits {
		m.gb2[o] += d
		row := m.w2[o*m.hidden : (o+1)*m.hidden]
		grow := m.gw2[o*m.hidden : (o+1)*m.hidden]
		for h, v := range c.Hidden {
			grow[h] += d * v
			dh[h] += d * row[h]
		}
	}
	for h, d := range dh {
		d *= 1 - c.Hidden[h]*c.Hidden[h] // tanh'
		m.gb1[h] += d
		grow := m.gw1[h*m.in : (h+1)*m.in]
		for i, v := range c.X {
			grow[i] += d * v
		}
	}
	return nil
}

// Step applies accumulated gradients with Adam and zeroes them.
func (m *MLP) Step() {
	params := [][]float64{m.w1, m.b1, m.w2, m.b2}
	grads := [][]float64{m.gw1, m.gb1, m.gw2, m.gb2}
	m.opt.Step(params, grads)
	for _, g := range grads {
		for i := range g {
			g[i] = 0
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba), as used by the paper to update
// both policy networks.
type Adam struct {
	lr, beta1, beta2, eps float64
	t                     int
	m, v                  []float64
}

// NewAdam creates an optimizer for a parameter vector of size n.
func NewAdam(lr float64, n int) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: make([]float64, n), v: make([]float64, n)}
}

// Step applies one update across the parameter groups (flattened in order).
func (a *Adam) Step(params, grads [][]float64) {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	idx := 0
	for gi, p := range params {
		g := grads[gi]
		for i := range p {
			a.m[idx] = a.beta1*a.m[idx] + (1-a.beta1)*g[i]
			a.v[idx] = a.beta2*a.v[idx] + (1-a.beta2)*g[i]*g[i]
			mh := a.m[idx] / c1
			vh := a.v[idx] / c2
			p[i] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
			idx++
		}
	}
}

// MaskedSoftmax returns softmax probabilities with masked-out entries forced
// to zero. At least one entry must be allowed.
func MaskedSoftmax(logits []float64, allowed []bool) ([]float64, error) {
	if len(logits) != len(allowed) {
		return nil, fmt.Errorf("neural: logits/mask length mismatch %d/%d", len(logits), len(allowed))
	}
	mx := math.Inf(-1)
	any := false
	for i, ok := range allowed {
		if ok {
			any = true
			if logits[i] > mx {
				mx = logits[i]
			}
		}
	}
	if !any {
		return nil, fmt.Errorf("neural: all actions masked")
	}
	probs := make([]float64, len(logits))
	var sum float64
	for i, ok := range allowed {
		if ok {
			probs[i] = math.Exp(logits[i] - mx)
			sum += probs[i]
		}
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs, nil
}

// Sample draws an index from a probability vector.
func Sample(rng *rand.Rand, probs []float64) int {
	r := rng.Float64()
	var acc float64
	last := 0
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		acc += p
		last = i
		if r < acc {
			return i
		}
	}
	return last // guard against rounding
}

// PolicyGrad returns dLoss/dLogits for REINFORCE with the given advantage:
// loss = -advantage * log π(action), so dlogits = advantage*(π - onehot).
func PolicyGrad(probs []float64, action int, advantage float64) []float64 {
	d := make([]float64, len(probs))
	for i, p := range probs {
		d[i] = advantage * p
	}
	d[action] -= advantage
	return d
}
