package neural

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardShapeChecks(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(1)), 3, 4, 2, 0.01)
	if _, err := m.Forward([]float64{1, 2}); err == nil {
		t.Fatal("expected input-size error")
	}
	c, err := m.Forward([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Logits) != 2 || len(c.Hidden) != 4 {
		t.Fatal("bad cache shapes")
	}
	if err := m.Backward(c, []float64{1}); err == nil {
		t.Fatal("expected dlogits-size error")
	}
}

// Gradient check: numerical vs analytic on a scalar loss L = sum(logits²)/2.
func TestBackwardGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 3, 5, 2, 0.01)
	x := []float64{0.3, -0.7, 1.1}

	loss := func() float64 {
		c, err := m.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		var l float64
		for _, v := range c.Logits {
			l += v * v / 2
		}
		return l
	}
	c, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(c, c.Logits); err != nil { // dL/dlogits = logits
		t.Fatal(err)
	}
	const eps = 1e-6
	check := func(params, grads []float64, name string) {
		for _, i := range []int{0, len(params) / 2, len(params) - 1} {
			orig := params[i]
			params[i] = orig + eps
			lp := loss()
			params[i] = orig - eps
			lm := loss()
			params[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-grads[i]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: numeric %v vs analytic %v", name, i, numeric, grads[i])
			}
		}
	}
	check(m.w1, m.gw1, "w1")
	check(m.b1, m.gb1, "b1")
	check(m.w2, m.gw2, "w2")
	check(m.b2, m.gb2, "b2")
}

// End-to-end: REINFORCE on a trivial contextual bandit must learn to pick
// the rewarded action.
func TestREINFORCELearnsBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 2, 8, 3, 0.05)
	allowed := []bool{true, true, true}
	// Context [1,0] rewards action 2; context [0,1] rewards action 0.
	baseline := 0.0
	for ep := 0; ep < 800; ep++ {
		x := []float64{1, 0}
		best := 2
		if ep%2 == 1 {
			x = []float64{0, 1}
			best = 0
		}
		c, err := m.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		probs, err := MaskedSoftmax(c.Logits, allowed)
		if err != nil {
			t.Fatal(err)
		}
		a := Sample(rng, probs)
		reward := 0.0
		if a == best {
			reward = 1
		}
		adv := reward - baseline
		baseline = 0.95*baseline + 0.05*reward
		if err := m.Backward(c, PolicyGrad(probs, a, adv)); err != nil {
			t.Fatal(err)
		}
		m.Step()
	}
	for _, tc := range []struct {
		x    []float64
		best int
	}{{[]float64{1, 0}, 2}, {[]float64{0, 1}, 0}} {
		c, _ := m.Forward(tc.x)
		probs, _ := MaskedSoftmax(c.Logits, allowed)
		if probs[tc.best] < 0.8 {
			t.Fatalf("bandit not learned: context %v probs %v", tc.x, probs)
		}
	}
}

func TestMaskedSoftmax(t *testing.T) {
	probs, err := MaskedSoftmax([]float64{1, 2, 3}, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if probs[1] != 0 {
		t.Fatal("masked entry must be zero")
	}
	if math.Abs(probs[0]+probs[2]-1) > 1e-12 {
		t.Fatal("probs must sum to 1")
	}
	if probs[2] <= probs[0] {
		t.Fatal("higher logit must get higher probability")
	}
	if _, err := MaskedSoftmax([]float64{1}, []bool{false}); err == nil {
		t.Fatal("expected all-masked error")
	}
	if _, err := MaskedSoftmax([]float64{1}, []bool{true, true}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	// Numerical stability with huge logits.
	probs, err = MaskedSoftmax([]float64{1000, 999}, []bool{true, true})
	if err != nil || math.IsNaN(probs[0]) {
		t.Fatalf("unstable softmax: %v %v", probs, err)
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	probs := []float64{0.2, 0, 0.8}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[Sample(rng, probs)]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-probability action sampled")
	}
	if math.Abs(float64(counts[2])/10000-0.8) > 0.03 {
		t.Fatalf("sample frequencies off: %v", counts)
	}
}

func TestPolicyGradDirection(t *testing.T) {
	probs := []float64{0.25, 0.75}
	d := PolicyGrad(probs, 0, 2.0)
	// Positive advantage: gradient must push chosen action's logit up
	// (negative dlogit since we descend).
	if d[0] >= 0 || d[1] <= 0 {
		t.Fatalf("unexpected gradient %v", d)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (p-3)² with Adam.
	p := []float64{0.0}
	g := []float64{0.0}
	opt := NewAdam(0.1, 1)
	for i := 0; i < 500; i++ {
		g[0] = 2 * (p[0] - 3)
		opt.Step([][]float64{p}, [][]float64{g})
	}
	if math.Abs(p[0]-3) > 0.01 {
		t.Fatalf("Adam did not converge: %v", p[0])
	}
}
