package nn

// axpy and dotAcc are the two inner-loop shapes every GEMM-like kernel in
// this package reduces to. Keeping them in one place keeps the
// bounds-check-free, vectorizable form of the loop in a single spot — and,
// more importantly, pins down the accumulation order: both run strictly
// left to right, index 0 upwards, which is what makes kernel outputs
// bitwise reproducible across serial, parallel, and partitioned execution.

// axpy accumulates a*x[i] into y[i] for every i. y must be at least as long
// as x.
func axpy(a float32, x, y []float32) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += a * v
	}
}

// dotAcc returns acc plus the dot product of x and w, accumulated left to
// right. w must be at least as long as x.
func dotAcc(acc float32, x, w []float32) float32 {
	w = w[:len(x)]
	for i, v := range x {
		acc += v * w[i]
	}
	return acc
}
