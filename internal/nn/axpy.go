package nn

// dotAcc returns acc plus the dot product of x and w, accumulated strictly
// left to right, index 0 upwards — one rounding per multiply and one per
// add. DepthwiseConv2D's tiny k×k window dots keep this order (the GEMM
// engine in gemm.go is the entry point for every matrix-shaped reduction);
// the strict order is what makes its outputs bitwise reproducible across
// serial, parallel, and partitioned execution.
func dotAcc(acc float32, x, w []float32) float32 {
	w = w[:len(x)]
	for i, v := range x {
		acc += v * w[i]
	}
	return acc
}
