package nn

import "gillis/internal/tensor"

// Cross-query batching dispatch. A batched forward must be *bitwise
// identical* to running the per-query loop — batching is a scheduling
// optimization, never a numerics change — so the fast paths
// (Conv2D/FusedConv2D, Dense/FusedDense, LSTM) widen the parallel index
// space to batch×bands while executing the exact per-element band bodies of
// the single-query kernels (see gemm.go). Everything else, and any batch
// that mixes input shapes, falls back to the per-query loop, which is the
// equivalence baseline by definition.

// BatchForwarder is implemented by single-input operators with a dedicated
// batched forward. Implementations may assume all inputs share one shape;
// ForwardBatch (the dispatcher) checks that before taking the fast path.
type BatchForwarder interface {
	ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error)
}

// ForwardBatch applies op to a batch of input lists, one list per query.
// Single-input ops implementing BatchForwarder with shape-uniform inputs
// take the batched kernel path; everything else loops op.Forward per query.
// Both paths produce bitwise-identical outputs.
func ForwardBatch(op Op, ins [][]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	if bf, ok := op.(BatchForwarder); ok && uniformSingleInput(ins) {
		xs := make([]*tensor.Tensor, len(ins))
		for e, in := range ins {
			xs[e] = in[0]
		}
		return bf.ForwardBatch(xs)
	}
	outs := make([]*tensor.Tensor, len(ins))
	for e, in := range ins {
		out, err := op.Forward(in...)
		if err != nil {
			return nil, err
		}
		outs[e] = out
	}
	return outs, nil
}

// uniformSingleInput reports whether every query has exactly one input and
// all inputs share one shape — the precondition of the batched fast paths.
func uniformSingleInput(ins [][]*tensor.Tensor) bool {
	if len(ins[0]) != 1 {
		return false
	}
	shape := ins[0][0].Shape()
	for _, in := range ins[1:] {
		if len(in) != 1 || !tensor.ShapeEqual(in[0].Shape(), shape) {
			return false
		}
	}
	return true
}

var (
	_ BatchForwarder = (*Conv2D)(nil)
	_ BatchForwarder = (*FusedConv2D)(nil)
	_ BatchForwarder = (*Dense)(nil)
	_ BatchForwarder = (*FusedDense)(nil)
	_ BatchForwarder = (*LSTM)(nil)
)
