package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// Batch-equivalence property suite: for randomly-drawn ops (≥12 seeds) and
// batch sizes {1,2,4,8} × parallelism {1,4}, the batched forward must be
// bitwise identical to running the per-query loop. This is the contract the
// gateway batcher and the throughput planner lean on — batching is purely a
// scheduling optimization, never a numerics change.

var batchSizes = []int{1, 2, 4, 8}

// randomBatchCases draws one instance of every batch-aware op kind with
// random dimensions from seed.
func randomBatchCases(t *testing.T, seed int64) []detCase {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(op Op) Op {
		op.Init(rng)
		return op
	}
	inC := 1 + rng.Intn(5)
	outC := 1 + rng.Intn(13)
	kern := 1 + 2*rng.Intn(2) // 1 or 3
	stride := 1 + rng.Intn(2)
	pad := rng.Intn(2)
	h, w := 7+rng.Intn(9), 7+rng.Intn(9)
	conv := mk(NewConv2D("c", inC, outC, kern, stride, pad)).(*Conv2D)
	bn := mk(NewBatchNorm("bn", outC)).(*BatchNorm)
	fconv, err := NewFusedConv2D(mk(NewConv2D("fc", inC, outC, kern, stride, pad)).(*Conv2D), bn, true)
	if err != nil {
		t.Fatal(err)
	}
	dIn, dOut := 9+rng.Intn(120), 3+rng.Intn(60)
	lIn, lHid := 5+rng.Intn(24), 4+rng.Intn(29)
	steps := 2 + rng.Intn(6)
	return []detCase{
		{"conv", conv, tensor.Rand(rng, 1, inC, h, w)},
		{"fused-conv-bn-relu", fconv, tensor.Rand(rng, 1, inC, h, w)},
		{"dense", mk(NewDense("d", dIn, dOut)), tensor.Rand(rng, 1, dIn)},
		{"fused-dense", NewFusedDense(mk(NewDense("fd", dIn, dOut)).(*Dense)), tensor.Rand(rng, 1, dIn)},
		{"lstm", mk(NewLSTM("l", lIn, lHid)), tensor.Rand(rng, 1, steps, lIn)},
	}
}

// batchInputs draws batch inputs shaped like proto.
func batchInputs(rng *rand.Rand, proto *tensor.Tensor, batch int) []*tensor.Tensor {
	xs := make([]*tensor.Tensor, batch)
	for e := range xs {
		xs[e] = tensor.Rand(rng, 1, proto.Shape()...)
	}
	return xs
}

func TestBatchForwardEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cases := randomBatchCases(t, 1000+seed)
			rng := rand.New(rand.NewSource(seed))
			for _, tc := range cases {
				for _, batch := range batchSizes {
					xs := batchInputs(rng, tc.in, batch)
					ins := make([][]*tensor.Tensor, batch)
					for e, x := range xs {
						ins[e] = []*tensor.Tensor{x}
					}
					restore := par.SetParallelism(1)
					want := make([]*tensor.Tensor, batch)
					for e, x := range xs {
						out, err := tc.op.Forward(x)
						if err != nil {
							restore()
							t.Fatalf("%s b=%d: %v", tc.name, batch, err)
						}
						want[e] = out
					}
					restore()
					for _, p := range []int{1, 4} {
						restore := par.SetParallelism(p)
						got, err := ForwardBatch(tc.op, ins)
						restore()
						if err != nil {
							t.Fatalf("%s b=%d p=%d: %v", tc.name, batch, p, err)
						}
						if len(got) != batch {
							t.Fatalf("%s b=%d p=%d: got %d outputs", tc.name, batch, p, len(got))
						}
						for e := range got {
							if !tensor.Equal(got[e], want[e]) {
								t.Fatalf("%s b=%d p=%d: element %d is not bitwise identical to the per-query loop", tc.name, batch, p, e)
							}
						}
					}
				}
			}
		})
	}
}

// TestForwardBatchFallbackLoop pins the dispatcher's fallback paths: ops
// without a batched kernel, and batches that mix input shapes, go through
// the per-query loop and still match it bitwise.
func TestForwardBatchFallbackLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mp := NewMaxPool2D("mp", 3, 2, 1)
	conv := NewConv2D("c", 3, 5, 3, 1, 1)
	conv.Init(rng)
	cases := []struct {
		name string
		op   Op
		ins  [][]*tensor.Tensor
	}{
		{"no-batch-kernel", mp, [][]*tensor.Tensor{
			{tensor.Rand(rng, 1, 4, 11, 11)},
			{tensor.Rand(rng, 1, 4, 11, 11)},
		}},
		{"mixed-shapes", conv, [][]*tensor.Tensor{
			{tensor.Rand(rng, 1, 3, 11, 11)},
			{tensor.Rand(rng, 1, 3, 9, 13)},
		}},
	}
	for _, tc := range cases {
		got, err := ForwardBatch(tc.op, tc.ins)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for e, in := range tc.ins {
			want, err := tc.op.Forward(in...)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if !tensor.Equal(got[e], want) {
				t.Fatalf("%s: fallback element %d diverged from Forward", tc.name, e)
			}
		}
	}
}

// TestForwardBatchEmpty pins the zero-batch edge cases.
func TestForwardBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDense("d", 5, 3)
	d.Init(rng)
	outs, err := ForwardBatch(d, nil)
	if err != nil || outs != nil {
		t.Fatalf("empty batch: got %v, %v", outs, err)
	}
	if outs, err := d.ForwardBatch(nil); err != nil || outs != nil {
		t.Fatalf("empty Dense batch: got %v, %v", outs, err)
	}
}

// TestConvGoldenBatched extends the hand-computed conv golden to the
// batched op: the known 3x3/2x2 case plus a second input whose answer is a
// scaled copy.
func TestConvGoldenBatched(t *testing.T) {
	c := NewConv2D("c", 1, 1, 2, 1, 0)
	c.W = tensor.Full(1, 1, 1, 2, 2)
	c.B = tensor.New(1)
	a := mustTensor(t, []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	b := mustTensor(t, []float32{
		2, 4, 6,
		8, 10, 12,
		14, 16, 18,
	}, 1, 3, 3)
	outs, err := c.ForwardBatch([]*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantA := mustTensor(t, []float32{12, 16, 24, 28}, 1, 2, 2)
	wantB := mustTensor(t, []float32{24, 32, 48, 56}, 1, 2, 2)
	if !tensor.Equal(outs[0], wantA) || !tensor.Equal(outs[1], wantB) {
		t.Fatalf("batched conv golden mismatch: got %v and %v", outs[0].Data(), outs[1].Data())
	}
}
