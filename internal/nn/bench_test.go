package nn

import (
	"math/rand"
	"testing"

	"gillis/internal/tensor"
)

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", 32, 32, 3, 1, 1)
	c.Init(rng)
	x := tensor.Rand(rng, 1, 32, 28, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDepthwiseConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := NewDepthwiseConv2D("d", 64, 3, 1, 1)
	d.Init(rng)
	x := tensor.Rand(rng, 1, 64, 28, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSTMForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM("l", 128, 128)
	l.Init(rng)
	x := tensor.Rand(rng, 1, 16, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense("d", 2048, 1000)
	d.Init(rng)
	x := tensor.Rand(rng, 1, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}
