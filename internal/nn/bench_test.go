package nn

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// parLevels returns the parallelism levels every kernel benchmark sweeps:
// serial, two-way, and all hardware threads (deduplicated and sorted).
func parLevels() []int {
	n := runtime.GOMAXPROCS(0)
	levels := []int{1}
	if n >= 2 {
		levels = append(levels, 2)
	}
	if n > 2 {
		levels = append(levels, n)
	}
	return levels
}

// benchForward runs op.Forward(x) at every parallelism level as
// subbenchmarks named p1, p2, pN.
func benchForward(b *testing.B, op Op, x *tensor.Tensor) {
	b.Helper()
	for _, p := range parLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			restore := par.SetParallelism(p)
			defer restore()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := op.Forward(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D("c", 32, 32, 3, 1, 1)
	c.Init(rng)
	benchForward(b, c, tensor.Rand(rng, 1, 32, 28, 28))
}

// BenchmarkConv2DForwardWide is the large-channel regime (ResNet body
// blocks) where the GEMM dominates and multi-core speedup should be
// closest to linear.
func BenchmarkConv2DForwardWide(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D("cw", 128, 128, 3, 1, 1)
	c.Init(rng)
	benchForward(b, c, tensor.Rand(rng, 1, 128, 14, 14))
}

func BenchmarkDepthwiseConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := NewDepthwiseConv2D("d", 64, 3, 1, 1)
	d.Init(rng)
	benchForward(b, d, tensor.Rand(rng, 1, 64, 28, 28))
}

func BenchmarkLSTMForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM("l", 128, 128)
	l.Init(rng)
	benchForward(b, l, tensor.Rand(rng, 1, 16, 128))
}

func BenchmarkDenseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense("d", 2048, 1000)
	d.Init(rng)
	benchForward(b, d, tensor.Rand(rng, 1, 2048))
}

func BenchmarkMaxPool2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := NewMaxPool2D("m", 3, 2, 1)
	benchForward(b, m, tensor.Rand(rng, 1, 64, 56, 56))
}
