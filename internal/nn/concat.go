package nn

import (
	"fmt"
	"math/rand"

	"gillis/internal/tensor"
)

// KindConcat identifies the Concat operator.
const KindConcat Kind = 101

// Concat concatenates CHW feature maps along the channel dimension — the
// join of Inception-style branch modules (paper Fig. 5). Spatial dimensions
// must agree across inputs.
type Concat struct {
	OpName string
}

var _ Spatial = (*Concat)(nil)

// NewConcat constructs a channel concatenation operator.
func NewConcat(name string) *Concat { return &Concat{OpName: name} }

// Name implements Op.
func (c *Concat) Name() string { return c.OpName }

// Kind implements Op.
func (c *Concat) Kind() Kind { return KindConcat }

// OutShape implements Op.
func (c *Concat) OutShape(in ...[]int) ([]int, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("nn: Concat %q expects >= 2 inputs, got %d", c.OpName, len(in))
	}
	channels := 0
	for i, s := range in {
		if len(s) != 3 {
			return nil, fmt.Errorf("nn: Concat %q input %d must be CHW, got %v", c.OpName, i, s)
		}
		if s[1] != in[0][1] || s[2] != in[0][2] {
			return nil, fmt.Errorf("nn: Concat %q spatial mismatch %v vs %v", c.OpName, s, in[0])
		}
		channels += s[0]
	}
	return []int{channels, in[0][1], in[0][2]}, nil
}

// FLOPs implements Op (a copy per element).
func (c *Concat) FLOPs(in ...[]int) int64 {
	var total int64
	for _, s := range in {
		total += prod(s)
	}
	return total
}

// ParamCount implements Op.
func (c *Concat) ParamCount() int64 { return 0 }

// Init implements Op.
func (c *Concat) Init(*rand.Rand) {}

// Initialized implements Op.
func (c *Concat) Initialized() bool { return true }

// Forward implements Op.
func (c *Concat) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("nn: Concat %q expects >= 2 inputs, got %d", c.OpName, len(in))
	}
	return tensor.ConcatDim(0, in...)
}

// HKernel implements Spatial.
func (c *Concat) HKernel() (k, s, p int) { return 1, 1, 0 }

// ForwardValidH implements Spatial.
func (c *Concat) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return c.Forward(in...)
}
