package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// Conv2D is a 2-D convolution with a square kernel, equal stride, and equal
// zero padding on both axes. Input/output layout is CHW.
type Conv2D struct {
	OpName string
	InC    int
	OutC   int
	Kernel int
	Stride int
	Pad    int

	// W has shape [OutC, InC, Kernel, Kernel]; B has shape [OutC].
	W *tensor.Tensor
	B *tensor.Tensor
}

var (
	_ Weighted         = (*Conv2D)(nil)
	_ Spatial          = (*Conv2D)(nil)
	_ ChannelSliceable = (*Conv2D)(nil)
)

// NewConv2D constructs an uninitialized convolution.
func NewConv2D(name string, inC, outC, kernel, stride, pad int) *Conv2D {
	return &Conv2D{OpName: name, InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name implements Op.
func (c *Conv2D) Name() string { return c.OpName }

// Kind implements Op.
func (c *Conv2D) Kind() Kind { return KindConv }

// OutShape implements Op.
func (c *Conv2D) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("Conv2D", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("Conv2D", s, 3); err != nil {
		return nil, err
	}
	if s[0] != c.InC {
		return nil, fmt.Errorf("nn: Conv2D %q expects %d input channels, got %d", c.OpName, c.InC, s[0])
	}
	oh := convOutDim(s[1], c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(s[2], c.Kernel, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: Conv2D %q output is empty for input %v", c.OpName, s)
	}
	return []int{c.OutC, oh, ow}, nil
}

// FLOPs implements Op.
func (c *Conv2D) FLOPs(in ...[]int) int64 {
	out, err := c.OutShape(in...)
	if err != nil {
		return 0
	}
	macs := int64(c.OutC) * int64(c.InC) * int64(c.Kernel*c.Kernel) * int64(out[1]) * int64(out[2])
	return 2*macs + prod(out) // + bias add
}

// ParamCount implements Op.
func (c *Conv2D) ParamCount() int64 {
	return int64(c.OutC)*int64(c.InC)*int64(c.Kernel*c.Kernel) + int64(c.OutC)
}

// Init implements Op using He-style uniform initialization.
func (c *Conv2D) Init(rng *rand.Rand) {
	fanIn := float64(c.InC * c.Kernel * c.Kernel)
	scale := float32(math.Sqrt(2 / fanIn))
	c.W = tensor.Rand(rng, scale, c.OutC, c.InC, c.Kernel, c.Kernel)
	c.B = tensor.Rand(rng, 0.01, c.OutC)
}

// Initialized implements Op.
func (c *Conv2D) Initialized() bool { return c.W != nil && c.B != nil }

// Weights implements Weighted.
func (c *Conv2D) Weights() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// SetWeights implements Weighted.
func (c *Conv2D) SetWeights(ws []*tensor.Tensor) error {
	if len(ws) != 2 {
		return fmt.Errorf("nn: Conv2D %q expects 2 weight tensors, got %d", c.OpName, len(ws))
	}
	if !tensor.ShapeEqual(ws[0].Shape(), []int{c.OutC, c.InC, c.Kernel, c.Kernel}) {
		return fmt.Errorf("nn: Conv2D %q weight shape %v mismatch", c.OpName, ws[0].Shape())
	}
	if !tensor.ShapeEqual(ws[1].Shape(), []int{c.OutC}) {
		return fmt.Errorf("nn: Conv2D %q bias shape %v mismatch", c.OpName, ws[1].Shape())
	}
	c.W, c.B = ws[0], ws[1]
	return nil
}

// Forward implements Op with implicit zero padding on both axes.
func (c *Conv2D) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return c.forward(in, true)
}

// HKernel implements Spatial.
func (c *Conv2D) HKernel() (k, s, p int) { return c.Kernel, c.Stride, c.Pad }

// ForwardValidH implements Spatial: zero padding is applied along width
// only; the caller has supplied halo rows along height.
func (c *Conv2D) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return c.forward(in, false)
}

func (c *Conv2D) forward(in []*tensor.Tensor, padH bool) (*tensor.Tensor, error) {
	if err := checkOneInput("Conv2D", len(in)); err != nil {
		return nil, err
	}
	if !c.Initialized() {
		return nil, fmt.Errorf("nn: Conv2D %q has no weights", c.OpName)
	}
	x := in[0]
	if x.Rank() != 3 || x.Dim(0) != c.InC {
		return nil, fmt.Errorf("nn: Conv2D %q bad input %v", c.OpName, x.Shape())
	}
	// Explicitly pad, then run a valid convolution. This is the trick that
	// makes halo-correct partitioned execution trivially exact: interior
	// partitions receive real halo rows where the monolithic run would see
	// neighbours, and boundary partitions receive the same zero rows. The
	// padded copy is staged in the scratch arena rather than a fresh tensor.
	h, w := x.Dim(1), x.Dim(2)
	xd := x.Data()
	if c.Pad > 0 {
		padTop := 0
		if padH {
			padTop = c.Pad
		}
		ph, pw := h+2*padTop, w+2*c.Pad
		pbuf := par.GetF32(c.InC * ph * pw)
		defer par.PutF32(pbuf)
		padded := *pbuf
		clear(padded)
		for ic := 0; ic < c.InC; ic++ {
			for y := 0; y < h; y++ {
				dst := (ic*ph+padTop+y)*pw + c.Pad
				copy(padded[dst:dst+w], xd[(ic*h+y)*w:(ic*h+y)*w+w])
			}
		}
		xd, h, w = padded, ph, pw
	}
	oh := (h-c.Kernel)/c.Stride + 1
	ow := (w-c.Kernel)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: Conv2D %q empty output for padded input %v", c.OpName, []int{c.InC, h, w})
	}
	out := tensor.New(c.OutC, oh, ow)

	// im2col + row-wise AXPY: each output element accumulates in exactly
	// the (ic, ky, kx) order of the reference triple loop, so results are
	// bitwise identical to naive convolution — partitioned-vs-monolithic
	// equality tests rely on this — while the contiguous inner loops
	// vectorize. Parallelism is over im2col rows and output channels: both
	// write disjoint ranges, and no reduction is ever split, so outputs
	// stay bitwise identical at every parallelism level.
	wd, bd, od := c.W.Data(), c.B.Data(), out.Data()
	k := c.Kernel
	pixels := oh * ow
	rows := c.InC * k * k
	cbuf := par.GetF32(rows * pixels)
	defer par.PutF32(cbuf)
	cols := *cbuf
	par.For(rows, pixels, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			ic := row / (k * k)
			ky := (row / k) % k
			kx := row % k
			dst := cols[row*pixels : (row+1)*pixels]
			for oy := 0; oy < oh; oy++ {
				src := (ic*h+oy*c.Stride+ky)*w + kx
				if c.Stride == 1 {
					copy(dst[oy*ow:(oy+1)*ow], xd[src:src+ow])
					continue
				}
				for ox := 0; ox < ow; ox++ {
					dst[oy*ow+ox] = xd[src+ox*c.Stride]
				}
			}
		}
	})
	par.For(c.OutC, 2*rows*pixels, func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			acc := od[oc*pixels : (oc+1)*pixels]
			for i := range acc {
				acc[i] = bd[oc]
			}
			wRow := wd[oc*rows : (oc+1)*rows]
			for j, wj := range wRow {
				axpy(wj, cols[j*pixels:(j+1)*pixels], acc)
			}
		}
	})
	return out, nil
}

// OutChannels implements ChannelSliceable.
func (c *Conv2D) OutChannels() int { return c.OutC }

// SliceChannels implements ChannelSliceable: the returned convolution keeps
// filters [start, end) and computes the corresponding output channels.
func (c *Conv2D) SliceChannels(start, end int) (Op, error) {
	if start < 0 || end > c.OutC || start >= end {
		return nil, fmt.Errorf("nn: Conv2D %q channel slice [%d,%d) out of range %d", c.OpName, start, end, c.OutC)
	}
	out := NewConv2D(fmt.Sprintf("%s[%d:%d]", c.OpName, start, end), c.InC, end-start, c.Kernel, c.Stride, c.Pad)
	if c.Initialized() {
		w, err := c.W.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		b, err := c.B.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		out.W, out.B = w, b
	}
	return out, nil
}
