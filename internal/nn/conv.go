package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// Conv2D is a 2-D convolution with a square kernel, equal stride, and equal
// zero padding on both axes. Input/output layout is CHW.
type Conv2D struct {
	OpName string
	InC    int
	OutC   int
	Kernel int
	Stride int
	Pad    int

	// W has shape [OutC, InC, Kernel, Kernel]; B has shape [OutC].
	W *tensor.Tensor
	B *tensor.Tensor
}

var (
	_ Weighted         = (*Conv2D)(nil)
	_ Spatial          = (*Conv2D)(nil)
	_ ChannelSliceable = (*Conv2D)(nil)
)

// NewConv2D constructs an uninitialized convolution.
func NewConv2D(name string, inC, outC, kernel, stride, pad int) *Conv2D {
	return &Conv2D{OpName: name, InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name implements Op.
func (c *Conv2D) Name() string { return c.OpName }

// Kind implements Op.
func (c *Conv2D) Kind() Kind { return KindConv }

// OutShape implements Op.
func (c *Conv2D) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("Conv2D", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("Conv2D", s, 3); err != nil {
		return nil, err
	}
	if s[0] != c.InC {
		return nil, fmt.Errorf("nn: Conv2D %q expects %d input channels, got %d", c.OpName, c.InC, s[0])
	}
	oh := convOutDim(s[1], c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(s[2], c.Kernel, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: Conv2D %q output is empty for input %v", c.OpName, s)
	}
	return []int{c.OutC, oh, ow}, nil
}

// FLOPs implements Op.
func (c *Conv2D) FLOPs(in ...[]int) int64 {
	out, err := c.OutShape(in...)
	if err != nil {
		return 0
	}
	macs := int64(c.OutC) * int64(c.InC) * int64(c.Kernel*c.Kernel) * int64(out[1]) * int64(out[2])
	return 2*macs + prod(out) // + bias add
}

// ParamCount implements Op.
func (c *Conv2D) ParamCount() int64 {
	return int64(c.OutC)*int64(c.InC)*int64(c.Kernel*c.Kernel) + int64(c.OutC)
}

// Init implements Op using He-style uniform initialization.
func (c *Conv2D) Init(rng *rand.Rand) {
	fanIn := float64(c.InC * c.Kernel * c.Kernel)
	scale := float32(math.Sqrt(2 / fanIn))
	c.W = tensor.Rand(rng, scale, c.OutC, c.InC, c.Kernel, c.Kernel)
	c.B = tensor.Rand(rng, 0.01, c.OutC)
}

// Initialized implements Op.
func (c *Conv2D) Initialized() bool { return c.W != nil && c.B != nil }

// Weights implements Weighted.
func (c *Conv2D) Weights() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// SetWeights implements Weighted.
func (c *Conv2D) SetWeights(ws []*tensor.Tensor) error {
	if len(ws) != 2 {
		return fmt.Errorf("nn: Conv2D %q expects 2 weight tensors, got %d", c.OpName, len(ws))
	}
	if !tensor.ShapeEqual(ws[0].Shape(), []int{c.OutC, c.InC, c.Kernel, c.Kernel}) {
		return fmt.Errorf("nn: Conv2D %q weight shape %v mismatch", c.OpName, ws[0].Shape())
	}
	if !tensor.ShapeEqual(ws[1].Shape(), []int{c.OutC}) {
		return fmt.Errorf("nn: Conv2D %q bias shape %v mismatch", c.OpName, ws[1].Shape())
	}
	c.W, c.B = ws[0], ws[1]
	return nil
}

// Forward implements Op with implicit zero padding on both axes.
func (c *Conv2D) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return c.forward(in, true, nil)
}

// HKernel implements Spatial.
func (c *Conv2D) HKernel() (k, s, p int) { return c.Kernel, c.Stride, c.Pad }

// ForwardValidH implements Spatial: zero padding is applied along width
// only; the caller has supplied halo rows along height.
func (c *Conv2D) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return c.forward(in, false, nil)
}

// forward lowers the convolution onto the GEMM engine: the im2col transform
// packs the input into a [InC*K*K][oh*ow] B panel in pooled scratch, and
// gemmBias multiplies the [OutC][InC*K*K] weight rows against it. Zero
// padding is synthesized directly while packing (out-of-range pixels become
// zero panel entries), identical bitwise to convolving an explicitly padded
// copy but without staging one. Each output element accumulates its K terms
// strictly in (ic, ky, kx) order — the accumulation-order contract in
// gemm.go — so outputs are bitwise identical at every parallelism level and
// under spatial/channel partitioning. epi, if non-nil, is a fused
// per-channel post-op applied to finished rows (see fused.go).
func (c *Conv2D) forward(in []*tensor.Tensor, padH bool, epi *epilogue) (*tensor.Tensor, error) {
	if err := checkOneInput("Conv2D", len(in)); err != nil {
		return nil, err
	}
	if !c.Initialized() {
		return nil, fmt.Errorf("nn: Conv2D %q has no weights", c.OpName)
	}
	x := in[0]
	if x.Rank() != 3 || x.Dim(0) != c.InC {
		return nil, fmt.Errorf("nn: Conv2D %q bad input %v", c.OpName, x.Shape())
	}
	h, w := x.Dim(1), x.Dim(2)
	xd := x.Data()
	padTop, padL := 0, c.Pad
	if padH {
		padTop = c.Pad
	}
	oh := (h+2*padTop-c.Kernel)/c.Stride + 1
	ow := (w+2*padL-c.Kernel)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: Conv2D %q empty output for input %v", c.OpName, x.Shape())
	}
	out := tensor.New(c.OutC, oh, ow)
	wd, bd, od := c.W.Data(), c.B.Data(), out.Data()
	k := c.Kernel
	pixels := oh * ow
	rows := c.InC * k * k
	cbuf := par.GetF32(rows * pixels)
	defer par.PutF32(cbuf)
	cols := *cbuf
	// Pack the B panel. Parallelism is over panel rows: disjoint writes,
	// no reduction, so packing is deterministic at every parallelism level.
	par.For(rows, pixels, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			c.packRow(xd, h, w, oh, ow, padTop, padL, row, cols[row*pixels:(row+1)*pixels])
		}
	})
	gemmBias(c.OutC, pixels, rows, wd, cols, bd, od, epi)
	return out, nil
}

// packRow writes one im2col B-panel row (a fixed (ic, ky, kx) triple swept
// over the output pixels) into dst. Pure per-row writes — the unit both the
// single-query and batched packers parallelize over.
func (c *Conv2D) packRow(xd []float32, h, w, oh, ow, padTop, padL, row int, dst []float32) {
	k := c.Kernel
	ic := row / (k * k)
	ky := (row / k) % k
	kx := row % k
	for oy := 0; oy < oh; oy++ {
		y := oy*c.Stride + ky - padTop
		drow := dst[oy*ow : (oy+1)*ow]
		if y < 0 || y >= h {
			clear(drow)
			continue
		}
		src := (ic*h + y) * w
		if c.Stride == 1 {
			// In-range columns satisfy 0 <= ox+kx-padL < w.
			ox0 := max(padL-kx, 0)
			ox1 := min(w-kx+padL, ow)
			ox1 = max(ox1, ox0)
			clear(drow[:ox0])
			copy(drow[ox0:ox1], xd[src+ox0+kx-padL:src+ox1+kx-padL])
			clear(drow[ox1:])
			continue
		}
		for ox := 0; ox < ow; ox++ {
			xcol := ox*c.Stride + kx - padL
			if xcol < 0 || xcol >= w {
				drow[ox] = 0
			} else {
				drow[ox] = xd[src+xcol]
			}
		}
	}
}

// ForwardBatch implements BatchForwarder: one im2col pack over batch×rows
// panel rows into a single pooled scratch slab, then one batched GEMM. The
// packed panel for each element is byte-identical to the single-query pack,
// and gemmBiasBatch runs the identical per-band kernel bodies, so the
// batched forward is bitwise equal to the per-query loop. Inputs must share
// one shape (the dispatcher in batch.go falls back to the loop otherwise).
func (c *Conv2D) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return c.forwardBatch(xs, nil)
}

func (c *Conv2D) forwardBatch(xs []*tensor.Tensor, epi *epilogue) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	if !c.Initialized() {
		return nil, fmt.Errorf("nn: Conv2D %q has no weights", c.OpName)
	}
	for _, x := range xs {
		if x.Rank() != 3 || x.Dim(0) != c.InC {
			return nil, fmt.Errorf("nn: Conv2D %q bad input %v", c.OpName, x.Shape())
		}
		if !tensor.ShapeEqual(x.Shape(), xs[0].Shape()) {
			return nil, fmt.Errorf("nn: Conv2D %q batch mixes shapes %v and %v", c.OpName, xs[0].Shape(), x.Shape())
		}
	}
	batch := len(xs)
	h, w := xs[0].Dim(1), xs[0].Dim(2)
	padTop, padL := c.Pad, c.Pad
	oh := (h+2*padTop-c.Kernel)/c.Stride + 1
	ow := (w+2*padL-c.Kernel)/c.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: Conv2D %q empty output for input %v", c.OpName, xs[0].Shape())
	}
	k := c.Kernel
	pixels := oh * ow
	rows := c.InC * k * k
	cbuf := par.GetF32(batch * rows * pixels)
	defer par.PutF32(cbuf)
	cols := *cbuf
	outs := make([]*tensor.Tensor, batch)
	bs := make([][]float32, batch)
	ods := make([][]float32, batch)
	for e := range xs {
		outs[e] = tensor.New(c.OutC, oh, ow)
		bs[e] = cols[e*rows*pixels : (e+1)*rows*pixels]
		ods[e] = outs[e].Data()
	}
	par.For(batch*rows, pixels, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			e, row := idx/rows, idx%rows
			c.packRow(xs[e].Data(), h, w, oh, ow, padTop, padL, row, bs[e][row*pixels:(row+1)*pixels])
		}
	})
	gemmBiasBatch(batch, c.OutC, pixels, rows, c.W.Data(), bs, ods, c.B.Data(), epi)
	return outs, nil
}

// OutChannels implements ChannelSliceable.
func (c *Conv2D) OutChannels() int { return c.OutC }

// SliceChannels implements ChannelSliceable: the returned convolution keeps
// filters [start, end) and computes the corresponding output channels.
func (c *Conv2D) SliceChannels(start, end int) (Op, error) {
	if start < 0 || end > c.OutC || start >= end {
		return nil, fmt.Errorf("nn: Conv2D %q channel slice [%d,%d) out of range %d", c.OpName, start, end, c.OutC)
	}
	out := NewConv2D(fmt.Sprintf("%s[%d:%d]", c.OpName, start, end), c.InC, end-start, c.Kernel, c.Stride, c.Pad)
	if c.Initialized() {
		w, err := c.W.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		b, err := c.B.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		out.W, out.B = w, b
	}
	return out, nil
}
