package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/tensor"
)

// Dense is a fully connected layer mapping a rank-1 input of size In to a
// rank-1 output of size Out.
type Dense struct {
	OpName string
	In     int
	Out    int

	// W has shape [Out, In]; B has shape [Out].
	W *tensor.Tensor
	B *tensor.Tensor
}

var (
	_ Weighted         = (*Dense)(nil)
	_ ChannelSliceable = (*Dense)(nil)
)

// NewDense constructs an uninitialized fully connected layer.
func NewDense(name string, in, out int) *Dense {
	return &Dense{OpName: name, In: in, Out: out}
}

// Name implements Op.
func (d *Dense) Name() string { return d.OpName }

// Kind implements Op.
func (d *Dense) Kind() Kind { return KindDense }

// OutShape implements Op.
func (d *Dense) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("Dense", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("Dense", s, 1); err != nil {
		return nil, err
	}
	if s[0] != d.In {
		return nil, fmt.Errorf("nn: Dense %q expects input size %d, got %d", d.OpName, d.In, s[0])
	}
	return []int{d.Out}, nil
}

// FLOPs implements Op.
func (d *Dense) FLOPs(in ...[]int) int64 {
	if _, err := d.OutShape(in...); err != nil {
		return 0
	}
	return 2*int64(d.In)*int64(d.Out) + int64(d.Out)
}

// ParamCount implements Op.
func (d *Dense) ParamCount() int64 { return int64(d.In)*int64(d.Out) + int64(d.Out) }

// Init implements Op.
func (d *Dense) Init(rng *rand.Rand) {
	scale := float32(math.Sqrt(2 / float64(d.In)))
	d.W = tensor.Rand(rng, scale, d.Out, d.In)
	d.B = tensor.Rand(rng, 0.01, d.Out)
}

// Initialized implements Op.
func (d *Dense) Initialized() bool { return d.W != nil && d.B != nil }

// Weights implements Weighted.
func (d *Dense) Weights() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// SetWeights implements Weighted.
func (d *Dense) SetWeights(ws []*tensor.Tensor) error {
	if len(ws) != 2 {
		return fmt.Errorf("nn: Dense %q expects 2 weight tensors, got %d", d.OpName, len(ws))
	}
	if !tensor.ShapeEqual(ws[0].Shape(), []int{d.Out, d.In}) {
		return fmt.Errorf("nn: Dense %q weight shape %v mismatch", d.OpName, ws[0].Shape())
	}
	if !tensor.ShapeEqual(ws[1].Shape(), []int{d.Out}) {
		return fmt.Errorf("nn: Dense %q bias shape %v mismatch", d.OpName, ws[1].Shape())
	}
	d.W, d.B = ws[0], ws[1]
	return nil
}

// Forward implements Op.
func (d *Dense) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("Dense", len(in)); err != nil {
		return nil, err
	}
	if !d.Initialized() {
		return nil, fmt.Errorf("nn: Dense %q has no weights", d.OpName)
	}
	x := in[0]
	if x.Rank() != 1 || x.Dim(0) != d.In {
		return nil, fmt.Errorf("nn: Dense %q bad input %v", d.OpName, x.Shape())
	}
	return d.forwardRelu(x, false)
}

// forwardRelu lowers the layer onto the row-dot micro-kernel (gemm.go).
// Each output row reduces over In with the fixed lane-striped schedule of
// laneDotAcc — invariant under parallelism and channel slicing — and relu
// optionally fuses the activation into the same pass (see fused.go).
func (d *Dense) forwardRelu(x *tensor.Tensor, relu bool) (*tensor.Tensor, error) {
	out := tensor.New(d.Out)
	gemvBias(d.Out, d.In, d.W.Data(), d.B.Data(), x.Data(), out.Data(), relu)
	return out, nil
}

// ForwardBatch implements BatchForwarder: one batched row-dot pass over all
// inputs, bitwise identical to the per-query loop (see gemvBiasBatch).
func (d *Dense) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return d.forwardReluBatch(xs, false)
}

func (d *Dense) forwardReluBatch(xs []*tensor.Tensor, relu bool) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	if !d.Initialized() {
		return nil, fmt.Errorf("nn: Dense %q has no weights", d.OpName)
	}
	outs := make([]*tensor.Tensor, len(xs))
	ins := make([][]float32, len(xs))
	ods := make([][]float32, len(xs))
	for e, x := range xs {
		if x.Rank() != 1 || x.Dim(0) != d.In {
			return nil, fmt.Errorf("nn: Dense %q bad input %v", d.OpName, x.Shape())
		}
		outs[e] = tensor.New(d.Out)
		ins[e] = x.Data()
		ods[e] = outs[e].Data()
	}
	gemvBiasBatch(len(xs), d.Out, d.In, d.W.Data(), d.B.Data(), ins, ods, relu)
	return outs, nil
}

// OutChannels implements ChannelSliceable.
func (d *Dense) OutChannels() int { return d.Out }

// SliceChannels implements ChannelSliceable: the returned layer computes
// output features [start, end) from the full input.
func (d *Dense) SliceChannels(start, end int) (Op, error) {
	if start < 0 || end > d.Out || start >= end {
		return nil, fmt.Errorf("nn: Dense %q channel slice [%d,%d) out of range %d", d.OpName, start, end, d.Out)
	}
	out := NewDense(fmt.Sprintf("%s[%d:%d]", d.OpName, start, end), d.In, end-start)
	if d.Initialized() {
		w, err := d.W.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		b, err := d.B.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		out.W, out.B = w, b
	}
	return out, nil
}

// Flatten reshapes any input into a rank-1 tensor.
type Flatten struct {
	OpName string
}

var _ Op = (*Flatten)(nil)

// NewFlatten constructs a flatten operator.
func NewFlatten(name string) *Flatten { return &Flatten{OpName: name} }

// Name implements Op.
func (f *Flatten) Name() string { return f.OpName }

// Kind implements Op.
func (f *Flatten) Kind() Kind { return KindFlatten }

// OutShape implements Op.
func (f *Flatten) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("Flatten", len(in)); err != nil {
		return nil, err
	}
	return []int{int(prod(in[0]))}, nil
}

// FLOPs implements Op.
func (f *Flatten) FLOPs(in ...[]int) int64 { return 0 }

// ParamCount implements Op.
func (f *Flatten) ParamCount() int64 { return 0 }

// Init implements Op.
func (f *Flatten) Init(*rand.Rand) {}

// Initialized implements Op.
func (f *Flatten) Initialized() bool { return true }

// Forward implements Op.
func (f *Flatten) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("Flatten", len(in)); err != nil {
		return nil, err
	}
	return in[0].Clone().Reshape(in[0].Len())
}
