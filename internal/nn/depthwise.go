package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// KindDepthwiseConv identifies the DepthwiseConv2D operator.
const KindDepthwiseConv Kind = 102

// DepthwiseConv2D convolves each input channel with its own square filter
// (the MobileNet building block). Output channel c depends only on input
// channel c, so the operator is both spatially local and channel-sliceable;
// a channel slice carries the (Lo, Hi) window and extracts its input
// channels itself, since the runtime ships the full input to channel
// partitions.
type DepthwiseConv2D struct {
	OpName string
	C      int
	Kernel int
	Stride int
	Pad    int

	// Lo/Hi select the input-channel window of a channel slice; (0, C) for
	// the unsliced operator.
	Lo, Hi int

	// W has shape [Hi-Lo, Kernel, Kernel]; B has shape [Hi-Lo].
	W *tensor.Tensor
	B *tensor.Tensor
}

var (
	_ Weighted         = (*DepthwiseConv2D)(nil)
	_ Spatial          = (*DepthwiseConv2D)(nil)
	_ ChannelSliceable = (*DepthwiseConv2D)(nil)
)

// NewDepthwiseConv2D constructs an uninitialized depthwise convolution.
func NewDepthwiseConv2D(name string, c, kernel, stride, pad int) *DepthwiseConv2D {
	return &DepthwiseConv2D{OpName: name, C: c, Kernel: kernel, Stride: stride, Pad: pad, Lo: 0, Hi: c}
}

// Name implements Op.
func (d *DepthwiseConv2D) Name() string { return d.OpName }

// Kind implements Op.
func (d *DepthwiseConv2D) Kind() Kind { return KindDepthwiseConv }

func (d *DepthwiseConv2D) span() int { return d.Hi - d.Lo }

// OutShape implements Op. The input always carries all C channels; a slice
// produces only its window's channels.
func (d *DepthwiseConv2D) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("DepthwiseConv2D", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("DepthwiseConv2D", s, 3); err != nil {
		return nil, err
	}
	if s[0] != d.C {
		return nil, fmt.Errorf("nn: DepthwiseConv2D %q expects %d channels, got %d", d.OpName, d.C, s[0])
	}
	oh := convOutDim(s[1], d.Kernel, d.Stride, d.Pad)
	ow := convOutDim(s[2], d.Kernel, d.Stride, d.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: DepthwiseConv2D %q output empty for input %v", d.OpName, s)
	}
	return []int{d.span(), oh, ow}, nil
}

// FLOPs implements Op.
func (d *DepthwiseConv2D) FLOPs(in ...[]int) int64 {
	out, err := d.OutShape(in...)
	if err != nil {
		return 0
	}
	return 2*int64(out[0])*int64(d.Kernel*d.Kernel)*int64(out[1])*int64(out[2]) + prod(out)
}

// ParamCount implements Op.
func (d *DepthwiseConv2D) ParamCount() int64 {
	return int64(d.span())*int64(d.Kernel*d.Kernel) + int64(d.span())
}

// Init implements Op.
func (d *DepthwiseConv2D) Init(rng *rand.Rand) {
	scale := float32(math.Sqrt(2 / float64(d.Kernel*d.Kernel)))
	d.W = tensor.Rand(rng, scale, d.span(), d.Kernel, d.Kernel)
	d.B = tensor.Rand(rng, 0.01, d.span())
}

// Initialized implements Op.
func (d *DepthwiseConv2D) Initialized() bool { return d.W != nil && d.B != nil }

// Weights implements Weighted.
func (d *DepthwiseConv2D) Weights() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// SetWeights implements Weighted.
func (d *DepthwiseConv2D) SetWeights(ws []*tensor.Tensor) error {
	if len(ws) != 2 {
		return fmt.Errorf("nn: DepthwiseConv2D %q expects 2 weight tensors, got %d", d.OpName, len(ws))
	}
	if !tensor.ShapeEqual(ws[0].Shape(), []int{d.span(), d.Kernel, d.Kernel}) ||
		!tensor.ShapeEqual(ws[1].Shape(), []int{d.span()}) {
		return fmt.Errorf("nn: DepthwiseConv2D %q weight shape mismatch", d.OpName)
	}
	d.W, d.B = ws[0], ws[1]
	return nil
}

// Forward implements Op.
func (d *DepthwiseConv2D) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return d.forward(in, true)
}

// HKernel implements Spatial.
func (d *DepthwiseConv2D) HKernel() (k, s, p int) { return d.Kernel, d.Stride, d.Pad }

// ForwardValidH implements Spatial.
func (d *DepthwiseConv2D) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return d.forward(in, false)
}

func (d *DepthwiseConv2D) forward(in []*tensor.Tensor, padH bool) (*tensor.Tensor, error) {
	if err := checkOneInput("DepthwiseConv2D", len(in)); err != nil {
		return nil, err
	}
	if !d.Initialized() {
		return nil, fmt.Errorf("nn: DepthwiseConv2D %q has no weights", d.OpName)
	}
	x := in[0]
	if x.Rank() != 3 || x.Dim(0) != d.C {
		return nil, fmt.Errorf("nn: DepthwiseConv2D %q bad input %v", d.OpName, x.Shape())
	}
	// Windows are read directly from the input with clipped indexing —
	// no staged padded/sliced copy. Boundary windows still accumulate an
	// explicit zero term per out-of-range tap, so every output element sees
	// exactly the terms (and rounding) a zero-padded copy would produce.
	span, h, w := d.span(), x.Dim(1), x.Dim(2)
	xd := x.Data()
	padTop := 0
	if padH {
		padTop = d.Pad
	}
	padL := d.Pad
	oh := (h+2*padTop-d.Kernel)/d.Stride + 1
	ow := (w+2*padL-d.Kernel)/d.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: DepthwiseConv2D %q empty output", d.OpName)
	}
	out := tensor.New(span, oh, ow)
	wd, bd, od := d.W.Data(), d.B.Data(), out.Data()
	k := d.Kernel
	// Output channel c depends only on input channel c: parallelizing over
	// channels splits no reduction, so outputs are bitwise identical at
	// every parallelism level.
	// Interior output rows/columns — whose windows never touch padding —
	// are resolved once, outside the pixel loops, so the hot path is as
	// branch-free as the staged-copy version was.
	oyLo := min(max(ceilDiv(padTop, d.Stride), 0), oh)
	oyHi := min(max((h-k+padTop)/d.Stride+1, oyLo), oh)
	oxLo := min(max(ceilDiv(padL, d.Stride), 0), ow)
	oxHi := min(max((w-k+padL)/d.Stride+1, oxLo), ow)
	par.For(span, 2*oh*ow*k*k, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			bias := bd[c]
			wRows := wd[c*k*k : (c+1)*k*k]
			src := (d.Lo + c) * h * w
			// boundary computes one pixel whose window may overlap the
			// padding: clipped taps accumulate from the input, out-of-range
			// taps accumulate an explicit zero term, all in (ky, kx) order.
			boundary := func(oy, ox int) float32 {
				y0 := oy*d.Stride - padTop
				x0 := ox*d.Stride - padL
				kx0 := max(-x0, 0)
				kx1 := max(min(w-x0, k), kx0)
				acc := bias
				for ky := 0; ky < k; ky++ {
					y := y0 + ky
					wRow := wRows[ky*k : (ky+1)*k]
					if y < 0 || y >= h {
						for _, wv := range wRow {
							acc += 0 * wv
						}
						continue
					}
					for _, wv := range wRow[:kx0] {
						acc += 0 * wv
					}
					rowBase := src + y*w + x0
					acc = dotAcc(acc, xd[rowBase+kx0:rowBase+kx1], wRow[kx0:kx1])
					for _, wv := range wRow[kx1:] {
						acc += 0 * wv
					}
				}
				return acc
			}
			for oy := 0; oy < oh; oy++ {
				rowOut := od[(c*oh+oy)*ow : (c*oh+oy+1)*ow]
				if oy < oyLo || oy >= oyHi {
					for ox := 0; ox < ow; ox++ {
						rowOut[ox] = boundary(oy, ox)
					}
					continue
				}
				for ox := 0; ox < oxLo; ox++ {
					rowOut[ox] = boundary(oy, ox)
				}
				base := src + (oy*d.Stride-padTop)*w - padL
				if k == 3 {
					// Fully unrolled 3x3 taps in the same strict (ky, kx)
					// order — the MobileNet hot path.
					w00, w01, w02 := wRows[0], wRows[1], wRows[2]
					w10, w11, w12 := wRows[3], wRows[4], wRows[5]
					w20, w21, w22 := wRows[6], wRows[7], wRows[8]
					for ox := oxLo; ox < oxHi; ox++ {
						r0 := base + ox*d.Stride
						r1, r2 := r0+w, r0+2*w
						acc := bias
						acc += xd[r0] * w00
						acc += xd[r0+1] * w01
						acc += xd[r0+2] * w02
						acc += xd[r1] * w10
						acc += xd[r1+1] * w11
						acc += xd[r1+2] * w12
						acc += xd[r2] * w20
						acc += xd[r2+1] * w21
						acc += xd[r2+2] * w22
						rowOut[ox] = acc
					}
				} else {
					for ox := oxLo; ox < oxHi; ox++ {
						x0 := base + ox*d.Stride
						acc := bias
						for ky := 0; ky < k; ky++ {
							row := x0 + ky*w
							acc = dotAcc(acc, xd[row:row+k], wRows[ky*k:(ky+1)*k])
						}
						rowOut[ox] = acc
					}
				}
				for ox := oxHi; ox < ow; ox++ {
					rowOut[ox] = boundary(oy, ox)
				}
			}
		}
	})
	return out, nil
}

// ceilDiv returns ceil(a/b) for non-negative a and positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// OutChannels implements ChannelSliceable.
func (d *DepthwiseConv2D) OutChannels() int { return d.span() }

// SliceChannels implements ChannelSliceable: the slice keeps filters
// [start, end) of this operator's window and extracts the matching input
// channels itself.
func (d *DepthwiseConv2D) SliceChannels(start, end int) (Op, error) {
	if start < 0 || end > d.span() || start >= end {
		return nil, fmt.Errorf("nn: DepthwiseConv2D %q channel slice [%d,%d) out of range %d", d.OpName, start, end, d.span())
	}
	out := NewDepthwiseConv2D(fmt.Sprintf("%s[%d:%d]", d.OpName, start, end), d.C, d.Kernel, d.Stride, d.Pad)
	out.Lo, out.Hi = d.Lo+start, d.Lo+end
	if d.Initialized() {
		w, err := d.W.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		b, err := d.B.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		out.W, out.B = w, b
	}
	return out, nil
}
