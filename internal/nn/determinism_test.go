package nn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// The partition layer's exactness proofs reduce to one kernel invariant:
// Forward output is bitwise identical at every parallelism level, because
// par.For only ever splits independent output elements, never a reduction.
// These tests pin that invariant for every rewired op, using odd sizes that
// do not divide evenly into scheduler chunks.

// detCase is one op + input whose forward output must not depend on the
// parallelism level.
type detCase struct {
	name string
	op   Op
	in   *tensor.Tensor
}

func detCases(t *testing.T) []detCase {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	mk := func(op Op) Op {
		op.Init(rng)
		return op
	}
	dw := mk(NewDepthwiseConv2D("dw", 13, 3, 1, 1))
	dwSliced, err := dw.(*DepthwiseConv2D).SliceChannels(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	fbn := mk(NewBatchNorm("fbn", 13)).(*BatchNorm)
	fconv, err := NewFusedConv2D(mk(NewConv2D("fc", 5, 13, 3, 1, 1)).(*Conv2D), fbn, true)
	if err != nil {
		t.Fatal(err)
	}
	return []detCase{
		{"conv-pad", mk(NewConv2D("c", 5, 13, 3, 1, 1)), tensor.Rand(rng, 1, 5, 17, 19)},
		{"conv-stride", mk(NewConv2D("cs", 7, 11, 5, 2, 2)), tensor.Rand(rng, 1, 7, 23, 23)},
		{"conv-nopad", mk(NewConv2D("cn", 3, 9, 3, 1, 0)), tensor.Rand(rng, 1, 3, 15, 15)},
		{"depthwise", dw, tensor.Rand(rng, 1, 13, 17, 17)},
		{"depthwise-sliced", dwSliced, tensor.Rand(rng, 1, 13, 17, 17)},
		{"dense", mk(NewDense("d", 251, 127)), tensor.Rand(rng, 1, 251)},
		{"fused-conv-bn-relu", fconv, tensor.Rand(rng, 1, 5, 17, 19)},
		{"fused-dense", NewFusedDense(mk(NewDense("fd", 251, 127)).(*Dense)), tensor.Rand(rng, 1, 251)},
		{"maxpool", NewMaxPool2D("mp", 3, 2, 1), tensor.Rand(rng, 1, 11, 19, 19)},
		{"avgpool", NewAvgPool2D("ap", 2, 2), tensor.Rand(rng, 1, 11, 18, 18)},
		{"gap", NewGlobalAvgPool("gap"), tensor.Rand(rng, 1, 13, 9, 9)},
		{"lstm", mk(NewLSTM("l", 37, 53)), tensor.Rand(rng, 1, 11, 37)},
	}
}

// forceWork drops the parallel thresholds out of the way by oversubscribing
// the cap; with the cap above GOMAXPROCS the parallel path runs even on
// single-core machines.
func TestForwardBitwiseIdenticalAcrossParallelism(t *testing.T) {
	cases := detCases(t)
	restore := par.SetParallelism(1)
	refs := make([]*tensor.Tensor, len(cases))
	for i, tc := range cases {
		out, err := tc.op.Forward(tc.in)
		if err != nil {
			restore()
			t.Fatalf("%s: %v", tc.name, err)
		}
		refs[i] = out
	}
	restore()

	for _, p := range []int{2, 3, 5, 8} {
		restore := par.SetParallelism(p)
		for i, tc := range cases {
			out, err := tc.op.Forward(tc.in)
			if err != nil {
				restore()
				t.Fatalf("p=%d %s: %v", p, tc.name, err)
			}
			if !tensor.Equal(out, refs[i]) {
				restore()
				t.Fatalf("p=%d %s: output is not bitwise identical to serial execution", p, tc.name)
			}
		}
		restore()
	}
}

// TestBatchedForwardBitwiseIdenticalAcrossParallelism extends the
// parallelism-invariance pin to the batched ops: for every op with a batched
// kernel, ForwardBatch over a batch of three must equal the serial per-query
// loop bitwise at every parallelism level — the batch dimension only widens
// the parallel index space, it never reorders an accumulation.
func TestBatchedForwardBitwiseIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const batch = 3
	for _, tc := range detCases(t) {
		if _, ok := tc.op.(BatchForwarder); !ok {
			continue
		}
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ins := make([][]*tensor.Tensor, batch)
			for e := range ins {
				ins[e] = []*tensor.Tensor{tensor.Rand(rng, 1, tc.in.Shape()...)}
			}
			restore := par.SetParallelism(1)
			refs := make([]*tensor.Tensor, batch)
			for e := range ins {
				out, err := tc.op.Forward(ins[e][0])
				if err != nil {
					restore()
					t.Fatal(err)
				}
				refs[e] = out
			}
			restore()
			for _, p := range []int{1, 2, 3, 5, 8} {
				restore := par.SetParallelism(p)
				outs, err := ForwardBatch(tc.op, ins)
				restore()
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				for e := range outs {
					if !tensor.Equal(outs[e], refs[e]) {
						t.Fatalf("p=%d element %d: batched output is not bitwise identical to serial per-query execution", p, e)
					}
				}
			}
		})
	}
}

// TestForwardValidHBitwiseIdenticalAcrossParallelism covers the halo
// execution path the spatial partitioner uses.
func TestForwardValidHBitwiseIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		op Spatial
		in *tensor.Tensor
	}{
		{NewConv2D("c", 5, 13, 3, 1, 1), tensor.Rand(rng, 1, 5, 17, 19)},
		{NewDepthwiseConv2D("dw", 13, 3, 1, 1), tensor.Rand(rng, 1, 13, 17, 19)},
		{NewMaxPool2D("mp", 3, 2, 1), tensor.Rand(rng, 1, 13, 17, 19)},
	}
	for _, tc := range cases {
		tc.op.Init(rng)
	}
	for _, tc := range cases {
		op, in := tc.op, tc.in
		restore := par.SetParallelism(1)
		want, err := op.ForwardValidH(in)
		restore()
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		restore = par.SetParallelism(7)
		got, err := op.ForwardValidH(in)
		restore()
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("%s: ForwardValidH diverged under parallelism", op.Name())
		}
	}
}

// TestConcurrentForwardIsRaceFree shares one initialized op across many
// goroutines calling Forward simultaneously (the serving runtime does this
// when several simulated instances execute the same partition). Run with
// -race; it also checks all outputs agree bitwise.
func TestConcurrentForwardIsRaceFree(t *testing.T) {
	restore := par.SetParallelism(4)
	defer restore()
	for _, tc := range detCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.op.Forward(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 8
			outs := make([]*tensor.Tensor, goroutines)
			errs := make([]error, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					outs[g], errs[g] = tc.op.Forward(tc.in)
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				if !tensor.Equal(outs[g], want) {
					t.Fatalf("goroutine %d produced a different output", g)
				}
			}
		})
	}
}

// TestConvScratchDoesNotLeakState runs two different inputs through the same
// conv back to back: a stale scratch buffer (e.g. unzeroed padding) would
// corrupt the second result.
func TestConvScratchDoesNotLeakState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D("c", 3, 4, 3, 1, 1)
	c.Init(rng)
	a := tensor.Rand(rng, 1, 3, 9, 9)
	b := tensor.Rand(rng, 1, 3, 9, 9)
	wantA, err := c.Forward(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Forward(b); err != nil {
		t.Fatal(err)
	}
	gotA, err := c.Forward(a)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(gotA, wantA) {
		t.Fatal("conv forward depends on scratch-buffer history")
	}
}

// TestParallelismLevelsSweep is a sanity sweep over ragged sizes: output
// channel counts chosen to never divide evenly by the chunk counts the
// scheduler picks.
func TestParallelismLevelsSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, outC := range []int{1, 2, 3, 7, 29} {
		c := NewConv2D(fmt.Sprintf("c%d", outC), 3, outC, 3, 1, 1)
		c.Init(rng)
		in := tensor.Rand(rng, 1, 3, 13, 13)
		restore := par.SetParallelism(1)
		want, err := c.Forward(in)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		restore = par.SetParallelism(5)
		got, err := c.Forward(in)
		restore()
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("outC=%d: ragged chunking changed the output", outC)
		}
	}
}
