package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/tensor"
)

// BatchNorm applies per-channel affine normalization using frozen inference
// statistics: y = gamma * (x - mean) / sqrt(var + eps) + beta.
// Input layout is CHW.
type BatchNorm struct {
	OpName string
	C      int
	Eps    float32

	// Gamma, Beta, Mean, Var each have shape [C].
	Gamma *tensor.Tensor
	Beta  *tensor.Tensor
	Mean  *tensor.Tensor
	Var   *tensor.Tensor
}

var (
	_ Weighted         = (*BatchNorm)(nil)
	_ Spatial          = (*BatchNorm)(nil)
	_ ChannelSliceable = (*BatchNorm)(nil)
)

// NewBatchNorm constructs an uninitialized batch normalization operator.
func NewBatchNorm(name string, c int) *BatchNorm {
	return &BatchNorm{OpName: name, C: c, Eps: 1e-5}
}

// Name implements Op.
func (b *BatchNorm) Name() string { return b.OpName }

// Kind implements Op.
func (b *BatchNorm) Kind() Kind { return KindBatchNorm }

// OutShape implements Op.
func (b *BatchNorm) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("BatchNorm", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("BatchNorm", s, 3); err != nil {
		return nil, err
	}
	if s[0] != b.C {
		return nil, fmt.Errorf("nn: BatchNorm %q expects %d channels, got %d", b.OpName, b.C, s[0])
	}
	out := make([]int, len(s))
	copy(out, s)
	return out, nil
}

// FLOPs implements Op (one multiply + one add per element with folded
// scale/shift).
func (b *BatchNorm) FLOPs(in ...[]int) int64 {
	if len(in) != 1 {
		return 0
	}
	return 2 * prod(in[0])
}

// ParamCount implements Op: gamma, beta, mean, and variance are all resident.
func (b *BatchNorm) ParamCount() int64 { return 4 * int64(b.C) }

// Init implements Op.
func (b *BatchNorm) Init(rng *rand.Rand) {
	b.Gamma = tensor.Rand(rng, 0.5, b.C)
	for i, v := range b.Gamma.Data() {
		b.Gamma.Data()[i] = 1 + v // gammas near 1 keep activations well-scaled
	}
	b.Beta = tensor.Rand(rng, 0.1, b.C)
	b.Mean = tensor.Rand(rng, 0.1, b.C)
	b.Var = tensor.Rand(rng, 0.2, b.C)
	for i, v := range b.Var.Data() {
		b.Var.Data()[i] = 1 + v*v // strictly positive variances
	}
}

// Initialized implements Op.
func (b *BatchNorm) Initialized() bool {
	return b.Gamma != nil && b.Beta != nil && b.Mean != nil && b.Var != nil
}

// Weights implements Weighted.
func (b *BatchNorm) Weights() []*tensor.Tensor {
	return []*tensor.Tensor{b.Gamma, b.Beta, b.Mean, b.Var}
}

// SetWeights implements Weighted.
func (b *BatchNorm) SetWeights(ws []*tensor.Tensor) error {
	if len(ws) != 4 {
		return fmt.Errorf("nn: BatchNorm %q expects 4 weight tensors, got %d", b.OpName, len(ws))
	}
	for i, w := range ws {
		if !tensor.ShapeEqual(w.Shape(), []int{b.C}) {
			return fmt.Errorf("nn: BatchNorm %q weight %d shape %v mismatch", b.OpName, i, w.Shape())
		}
	}
	b.Gamma, b.Beta, b.Mean, b.Var = ws[0], ws[1], ws[2], ws[3]
	return nil
}

// Forward implements Op.
func (b *BatchNorm) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("BatchNorm", len(in)); err != nil {
		return nil, err
	}
	if !b.Initialized() {
		return nil, fmt.Errorf("nn: BatchNorm %q has no weights", b.OpName)
	}
	x := in[0]
	if x.Rank() != 3 || x.Dim(0) != b.C {
		return nil, fmt.Errorf("nn: BatchNorm %q bad input %v", b.OpName, x.Shape())
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(c, h, w)
	xd, od := x.Data(), out.Data()
	g, bt, mn, vr := b.Gamma.Data(), b.Beta.Data(), b.Mean.Data(), b.Var.Data()
	for ci := 0; ci < c; ci++ {
		scale := g[ci] / float32(math.Sqrt(float64(vr[ci]+b.Eps)))
		shift := bt[ci] - scale*mn[ci]
		for i := ci * h * w; i < (ci+1)*h*w; i++ {
			od[i] = xd[i]*scale + shift
		}
	}
	return out, nil
}

// HKernel implements Spatial.
func (b *BatchNorm) HKernel() (k, s, p int) { return 1, 1, 0 }

// ForwardValidH implements Spatial.
func (b *BatchNorm) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return b.Forward(in...)
}

// OutChannels implements ChannelSliceable.
func (b *BatchNorm) OutChannels() int { return b.C }

// SliceChannels implements ChannelSliceable.
func (b *BatchNorm) SliceChannels(start, end int) (Op, error) {
	if start < 0 || end > b.C || start >= end {
		return nil, fmt.Errorf("nn: BatchNorm %q channel slice [%d,%d) out of range %d", b.OpName, start, end, b.C)
	}
	out := NewBatchNorm(fmt.Sprintf("%s[%d:%d]", b.OpName, start, end), end-start)
	out.Eps = b.Eps
	if b.Initialized() {
		ws := make([]*tensor.Tensor, 4)
		for i, w := range b.Weights() {
			s, err := w.SliceDim(0, start, end)
			if err != nil {
				return nil, err
			}
			ws[i] = s
		}
		if err := out.SetWeights(ws); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReLU is the rectified-linear activation, element-wise on any shape.
type ReLU struct {
	OpName string
}

var _ Spatial = (*ReLU)(nil)

// NewReLU constructs a ReLU operator.
func NewReLU(name string) *ReLU { return &ReLU{OpName: name} }

// Name implements Op.
func (r *ReLU) Name() string { return r.OpName }

// Kind implements Op.
func (r *ReLU) Kind() Kind { return KindReLU }

// OutShape implements Op.
func (r *ReLU) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("ReLU", len(in)); err != nil {
		return nil, err
	}
	out := make([]int, len(in[0]))
	copy(out, in[0])
	return out, nil
}

// FLOPs implements Op.
func (r *ReLU) FLOPs(in ...[]int) int64 {
	if len(in) != 1 {
		return 0
	}
	return prod(in[0])
}

// ParamCount implements Op.
func (r *ReLU) ParamCount() int64 { return 0 }

// Init implements Op.
func (r *ReLU) Init(*rand.Rand) {}

// Initialized implements Op.
func (r *ReLU) Initialized() bool { return true }

// Forward implements Op.
func (r *ReLU) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("ReLU", len(in)); err != nil {
		return nil, err
	}
	out := in[0].Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	return out, nil
}

// HKernel implements Spatial.
func (r *ReLU) HKernel() (k, s, p int) { return 1, 1, 0 }

// ForwardValidH implements Spatial.
func (r *ReLU) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return r.Forward(in...)
}

// Add sums two same-shaped tensors element-wise (residual connections).
type Add struct {
	OpName string
}

var _ Spatial = (*Add)(nil)

// NewAdd constructs an element-wise addition operator.
func NewAdd(name string) *Add { return &Add{OpName: name} }

// Name implements Op.
func (a *Add) Name() string { return a.OpName }

// Kind implements Op.
func (a *Add) Kind() Kind { return KindAdd }

// OutShape implements Op.
func (a *Add) OutShape(in ...[]int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: Add expects 2 inputs, got %d", len(in))
	}
	if !tensor.ShapeEqual(in[0], in[1]) {
		return nil, fmt.Errorf("nn: Add %q shape mismatch %v vs %v", a.OpName, in[0], in[1])
	}
	out := make([]int, len(in[0]))
	copy(out, in[0])
	return out, nil
}

// FLOPs implements Op.
func (a *Add) FLOPs(in ...[]int) int64 {
	if len(in) != 2 {
		return 0
	}
	return prod(in[0])
}

// ParamCount implements Op.
func (a *Add) ParamCount() int64 { return 0 }

// Init implements Op.
func (a *Add) Init(*rand.Rand) {}

// Initialized implements Op.
func (a *Add) Initialized() bool { return true }

// Forward implements Op.
func (a *Add) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: Add expects 2 inputs, got %d", len(in))
	}
	out := in[0].Clone()
	if err := out.AddInPlace(in[1]); err != nil {
		return nil, fmt.Errorf("nn: Add %q: %w", a.OpName, err)
	}
	return out, nil
}

// HKernel implements Spatial.
func (a *Add) HKernel() (k, s, p int) { return 1, 1, 0 }

// ForwardValidH implements Spatial.
func (a *Add) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return a.Forward(in...)
}

// Softmax normalizes the final dimension into a probability distribution.
type Softmax struct {
	OpName string
}

var _ Op = (*Softmax)(nil)

// NewSoftmax constructs a softmax operator.
func NewSoftmax(name string) *Softmax { return &Softmax{OpName: name} }

// Name implements Op.
func (s *Softmax) Name() string { return s.OpName }

// Kind implements Op.
func (s *Softmax) Kind() Kind { return KindSoftmax }

// OutShape implements Op.
func (s *Softmax) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("Softmax", len(in)); err != nil {
		return nil, err
	}
	out := make([]int, len(in[0]))
	copy(out, in[0])
	return out, nil
}

// FLOPs implements Op.
func (s *Softmax) FLOPs(in ...[]int) int64 {
	if len(in) != 1 {
		return 0
	}
	return 5 * prod(in[0])
}

// ParamCount implements Op.
func (s *Softmax) ParamCount() int64 { return 0 }

// Init implements Op.
func (s *Softmax) Init(*rand.Rand) {}

// Initialized implements Op.
func (s *Softmax) Initialized() bool { return true }

// Forward implements Op.
func (s *Softmax) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("Softmax", len(in)); err != nil {
		return nil, err
	}
	x := in[0]
	n := x.Dim(x.Rank() - 1)
	out := x.Clone()
	d := out.Data()
	for base := 0; base < len(d); base += n {
		row := d[base : base+n]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float32
		for i, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			row[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range row {
			row[i] *= inv
		}
	}
	return out, nil
}
