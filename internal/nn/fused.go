package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/tensor"
)

// Fused operators bind the BatchNorm/ReLU that follow a weighted layer into
// that layer's GEMM epilogue (gemm.go): the post-op runs on each finished
// output row while it is still cache-resident instead of in a separate pass
// over the activation. Fusion is bitwise invisible — the epilogue performs
// exactly the arithmetic of the standalone BatchNorm/ReLU forwards, in the
// same per-element order — so fused and unfused graphs produce identical
// outputs at every parallelism level and under partitioned execution.
//
// What the planners see changes, though: a FusedConv2D folds BatchNorm's
// four per-channel vectors (gamma, beta, mean, var) into two (scale, shift),
// halving the BatchNorm share of the weight bytes a partition ships, and the
// fused ReLU costs no separate activation pass, so its FLOPs disappear from
// the per-layer totals. Kind() still reports the base operator's kind, so
// the fitted per-kind runtime regressions in internal/perf apply unchanged.

// FusedConv2D is a Conv2D with an optional folded BatchNorm (per-channel
// affine) and an optional trailing ReLU executed in the GEMM epilogue.
type FusedConv2D struct {
	Conv *Conv2D

	// Scale and Shift hold the folded BatchNorm transform
	// y = conv(x)*Scale[c] + Shift[c]; both nil when no BatchNorm is fused.
	// Shape [OutC].
	Scale *tensor.Tensor
	Shift *tensor.Tensor

	// Relu applies max(y, 0) after the affine (or directly on the conv
	// output when no BatchNorm is fused).
	Relu bool
}

var (
	_ Weighted         = (*FusedConv2D)(nil)
	_ Spatial          = (*FusedConv2D)(nil)
	_ ChannelSliceable = (*FusedConv2D)(nil)
)

// FoldBatchNorm converts frozen BatchNorm statistics into the per-channel
// (scale, shift) pair the GEMM epilogue applies, using exactly the
// arithmetic of BatchNorm.Forward: scale = gamma/sqrt(var+eps),
// shift = beta - scale*mean. The BatchNorm must be initialized.
func FoldBatchNorm(b *BatchNorm) (scale, shift *tensor.Tensor, err error) {
	if !b.Initialized() {
		return nil, nil, fmt.Errorf("nn: BatchNorm %q has no statistics to fold", b.OpName)
	}
	scale = tensor.New(b.C)
	shift = tensor.New(b.C)
	sd, td := scale.Data(), shift.Data()
	g, bt, mn, vr := b.Gamma.Data(), b.Beta.Data(), b.Mean.Data(), b.Var.Data()
	for ci := 0; ci < b.C; ci++ {
		s := g[ci] / float32(math.Sqrt(float64(vr[ci]+b.Eps)))
		sd[ci] = s
		td[ci] = bt[ci] - s*mn[ci]
	}
	return scale, shift, nil
}

// NewFusedConv2D wraps a convolution with an optional folded BatchNorm and
// optional ReLU. bn may be nil; when present it must be initialized and
// match the convolution's output channels.
func NewFusedConv2D(conv *Conv2D, bn *BatchNorm, relu bool) (*FusedConv2D, error) {
	f := &FusedConv2D{Conv: conv, Relu: relu}
	if bn != nil {
		if bn.C != conv.OutC {
			return nil, fmt.Errorf("nn: fuse %q+%q: BatchNorm channels %d != conv output %d",
				conv.OpName, bn.OpName, bn.C, conv.OutC)
		}
		scale, shift, err := FoldBatchNorm(bn)
		if err != nil {
			return nil, err
		}
		f.Scale, f.Shift = scale, shift
	}
	return f, nil
}

// Name implements Op: the fused operator keeps the convolution's name (the
// absorbed BatchNorm/ReLU nodes disappear from the graph).
func (f *FusedConv2D) Name() string { return f.Conv.OpName }

// Kind implements Op. Reporting KindConv keeps the fused operator matched to
// the conv runtime regression in the performance model.
func (f *FusedConv2D) Kind() Kind { return KindConv }

// HasBN reports whether a folded BatchNorm is attached.
func (f *FusedConv2D) HasBN() bool { return f.Scale != nil }

// epi assembles the GEMM epilogue for the current weights.
func (f *FusedConv2D) epi() *epilogue {
	e := &epilogue{relu: f.Relu}
	if f.Scale != nil {
		e.scale, e.shift = f.Scale.Data(), f.Shift.Data()
	}
	return e
}

// OutShape implements Op.
func (f *FusedConv2D) OutShape(in ...[]int) ([]int, error) { return f.Conv.OutShape(in...) }

// FLOPs implements Op: the convolution plus two ops per element for the
// folded affine. The fused ReLU adds none — it happens in the same pass,
// which is exactly the FLOP reduction the fusion pass reports to planners.
func (f *FusedConv2D) FLOPs(in ...[]int) int64 {
	base := f.Conv.FLOPs(in...)
	if base == 0 {
		return 0
	}
	if f.Scale != nil {
		out, err := f.OutShape(in...)
		if err != nil {
			return base
		}
		base += 2 * prod(out)
	}
	return base
}

// ParamCount implements Op: conv weights plus the two folded per-channel
// vectors (versus four for a standalone BatchNorm).
func (f *FusedConv2D) ParamCount() int64 {
	n := f.Conv.ParamCount()
	if f.Scale != nil {
		n += 2 * int64(f.Conv.OutC)
	}
	return n
}

// Init implements Op: deterministic like every other operator, drawing the
// convolution and, if a BatchNorm was fused at construction, the folded
// affine.
func (f *FusedConv2D) Init(rng *rand.Rand) {
	f.Conv.Init(rng)
	if f.Scale != nil {
		c := f.Conv.OutC
		f.Scale = tensor.Rand(rng, 0.1, c)
		for i, v := range f.Scale.Data() {
			f.Scale.Data()[i] = 1 + v
		}
		f.Shift = tensor.Rand(rng, 0.1, c)
	}
}

// Initialized implements Op.
func (f *FusedConv2D) Initialized() bool {
	return f.Conv.Initialized()
}

// Weights implements Weighted: conv weight, conv bias, then scale and shift
// when a BatchNorm is fused.
func (f *FusedConv2D) Weights() []*tensor.Tensor {
	ws := []*tensor.Tensor{f.Conv.W, f.Conv.B}
	if f.Scale != nil {
		ws = append(ws, f.Scale, f.Shift)
	}
	return ws
}

// SetWeights implements Weighted.
func (f *FusedConv2D) SetWeights(ws []*tensor.Tensor) error {
	want := 2
	if f.Scale != nil {
		want = 4
	}
	if len(ws) != want {
		return fmt.Errorf("nn: FusedConv2D %q expects %d weight tensors, got %d", f.Name(), want, len(ws))
	}
	if err := f.Conv.SetWeights(ws[:2]); err != nil {
		return err
	}
	if f.Scale != nil {
		for _, t := range ws[2:] {
			if !tensor.ShapeEqual(t.Shape(), []int{f.Conv.OutC}) {
				return fmt.Errorf("nn: FusedConv2D %q scale/shift shape %v mismatch", f.Name(), t.Shape())
			}
		}
		f.Scale, f.Shift = ws[2], ws[3]
	}
	return nil
}

// Forward implements Op.
func (f *FusedConv2D) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return f.Conv.forward(in, true, f.epi())
}

// ForwardBatch implements BatchForwarder: the batched conv pass with the
// folded BatchNorm/ReLU epilogue applied to each element's finished rows,
// bitwise identical to the per-query fused forward.
func (f *FusedConv2D) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return f.Conv.forwardBatch(xs, f.epi())
}

// HKernel implements Spatial.
func (f *FusedConv2D) HKernel() (k, s, p int) { return f.Conv.HKernel() }

// ForwardValidH implements Spatial.
func (f *FusedConv2D) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return f.Conv.forward(in, false, f.epi())
}

// OutChannels implements ChannelSliceable.
func (f *FusedConv2D) OutChannels() int { return f.Conv.OutC }

// SliceChannels implements ChannelSliceable: the slice carries the matching
// window of the folded affine, so sliced execution applies the identical
// per-channel epilogue.
func (f *FusedConv2D) SliceChannels(start, end int) (Op, error) {
	cs, err := f.Conv.SliceChannels(start, end)
	if err != nil {
		return nil, err
	}
	out := &FusedConv2D{Conv: cs.(*Conv2D), Relu: f.Relu}
	if f.Scale != nil {
		scale, err := f.Scale.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		shift, err := f.Shift.SliceDim(0, start, end)
		if err != nil {
			return nil, err
		}
		out.Scale, out.Shift = scale, shift
	}
	return out, nil
}

// FusedDense is a Dense layer with the trailing ReLU executed inside the
// row-dot kernel pass.
type FusedDense struct {
	Dense *Dense
}

var (
	_ Weighted         = (*FusedDense)(nil)
	_ ChannelSliceable = (*FusedDense)(nil)
)

// NewFusedDense wraps a dense layer with a fused ReLU.
func NewFusedDense(d *Dense) *FusedDense { return &FusedDense{Dense: d} }

// Name implements Op.
func (f *FusedDense) Name() string { return f.Dense.OpName }

// Kind implements Op: KindDense keeps the perf model's dense regression
// applicable.
func (f *FusedDense) Kind() Kind { return KindDense }

// OutShape implements Op.
func (f *FusedDense) OutShape(in ...[]int) ([]int, error) { return f.Dense.OutShape(in...) }

// FLOPs implements Op: the ReLU rides the kernel pass for free.
func (f *FusedDense) FLOPs(in ...[]int) int64 { return f.Dense.FLOPs(in...) }

// ParamCount implements Op.
func (f *FusedDense) ParamCount() int64 { return f.Dense.ParamCount() }

// Init implements Op.
func (f *FusedDense) Init(rng *rand.Rand) { f.Dense.Init(rng) }

// Initialized implements Op.
func (f *FusedDense) Initialized() bool { return f.Dense.Initialized() }

// Weights implements Weighted.
func (f *FusedDense) Weights() []*tensor.Tensor { return f.Dense.Weights() }

// SetWeights implements Weighted.
func (f *FusedDense) SetWeights(ws []*tensor.Tensor) error { return f.Dense.SetWeights(ws) }

// Forward implements Op.
func (f *FusedDense) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("FusedDense", len(in)); err != nil {
		return nil, err
	}
	if !f.Dense.Initialized() {
		return nil, fmt.Errorf("nn: FusedDense %q has no weights", f.Name())
	}
	x := in[0]
	if x.Rank() != 1 || x.Dim(0) != f.Dense.In {
		return nil, fmt.Errorf("nn: FusedDense %q bad input %v", f.Name(), x.Shape())
	}
	return f.Dense.forwardRelu(x, true)
}

// ForwardBatch implements BatchForwarder with the ReLU fused into the
// batched row-dot pass.
func (f *FusedDense) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	return f.Dense.forwardReluBatch(xs, true)
}

// OutChannels implements ChannelSliceable.
func (f *FusedDense) OutChannels() int { return f.Dense.Out }

// SliceChannels implements ChannelSliceable.
func (f *FusedDense) SliceChannels(start, end int) (Op, error) {
	ds, err := f.Dense.SliceChannels(start, end)
	if err != nil {
		return nil, err
	}
	return &FusedDense{Dense: ds.(*Dense)}, nil
}
