package nn

import (
	"math/rand"
	"testing"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// The fusion contract: a fused operator's output is bitwise identical to
// running the unfused sequence, at every parallelism level, for every
// execution path the partitioner uses (full forward, halo forward, channel
// slices). The unfused sequence is the golden reference — it is itself
// pinned by the determinism tests — so these tests double as per-level
// goldens for the fused ops.

// fusedGolden runs the unfused reference sequence conv→[bn]→[relu] serially.
func fusedGolden(t *testing.T, conv *Conv2D, bn *BatchNorm, relu bool, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	restore := par.SetParallelism(1)
	defer restore()
	out, err := conv.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if bn != nil {
		if out, err = bn.Forward(out); err != nil {
			t.Fatal(err)
		}
	}
	if relu {
		r := NewReLU("r")
		if out, err = r.Forward(out); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestFusedConvBitwiseEqualsUnfusedAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		name string
		bn   bool
		relu bool
	}{
		{"conv-bn", true, false},
		{"conv-bn-relu", true, true},
		{"conv-relu", false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conv := NewConv2D("c", 5, 13, 3, 1, 1)
			conv.Init(rng)
			var bn *BatchNorm
			if tc.bn {
				bn = NewBatchNorm("b", 13)
				bn.Init(rng)
			}
			in := tensor.Rand(rng, 1, 5, 17, 19)
			want := fusedGolden(t, conv, bn, tc.relu, in)

			fused, err := NewFusedConv2D(conv, bn, tc.relu)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 2, 3, 5, 8} {
				restore := par.SetParallelism(p)
				got, err := fused.Forward(in)
				restore()
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				if !tensor.Equal(got, want) {
					t.Fatalf("p=%d: fused output is not bitwise identical to the unfused sequence", p)
				}
			}
		})
	}
}

func TestFusedDenseBitwiseEqualsUnfusedAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := NewDense("d", 251, 127)
	d.Init(rng)
	in := tensor.Rand(rng, 1, 251)

	restore := par.SetParallelism(1)
	want, err := d.Forward(in)
	if err != nil {
		restore()
		t.Fatal(err)
	}
	r := NewReLU("r")
	if want, err = r.Forward(want); err != nil {
		restore()
		t.Fatal(err)
	}
	restore()

	fused := NewFusedDense(d)
	for _, p := range []int{1, 2, 3, 5, 8} {
		restore := par.SetParallelism(p)
		got, err := fused.Forward(in)
		restore()
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("p=%d: fused dense output differs from dense+relu", p)
		}
	}
}

// TestFusedConvChannelSliceExact mirrors the conv channel-slice exactness
// test: computing disjoint channel windows of a fused op and concatenating
// them must reproduce the full fused forward bitwise (the epilogue vectors
// are sliced in lockstep with the filters).
func TestFusedConvChannelSliceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	conv := NewConv2D("c", 4, 12, 3, 1, 1)
	conv.Init(rng)
	bn := NewBatchNorm("b", 12)
	bn.Init(rng)
	fused, err := NewFusedConv2D(conv, bn, true)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Rand(rng, 1, 4, 11, 13)
	want, err := fused.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{0, 5, 9, 12} // deliberately uneven windows
	got := tensor.New(want.Shape()...)
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		sl, err := fused.SliceChannels(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		part, err := sl.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		hw := want.Dim(1) * want.Dim(2)
		copy(got.Data()[lo*hw:hi*hw], part.Data())
	}
	if !tensor.Equal(got, want) {
		t.Fatal("channel-sliced fused conv does not reassemble to the full output")
	}
}

// TestFusedConvValidHEqualsUnfused covers the halo path the spatial
// partitioner drives.
func TestFusedConvValidHEqualsUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	conv := NewConv2D("c", 3, 7, 3, 1, 1)
	conv.Init(rng)
	bn := NewBatchNorm("b", 7)
	bn.Init(rng)
	fused, err := NewFusedConv2D(conv, bn, true)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Rand(rng, 1, 3, 14, 15)

	want, err := conv.ForwardValidH(in)
	if err != nil {
		t.Fatal(err)
	}
	if want, err = bn.Forward(want); err != nil {
		t.Fatal(err)
	}
	r := NewReLU("r")
	if want, err = r.Forward(want); err != nil {
		t.Fatal(err)
	}

	got, err := fused.ForwardValidH(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("fused ForwardValidH differs from the unfused sequence")
	}
}

// TestFusedAccounting pins what the planners see: the folded BatchNorm
// stores half the standalone parameters, and the fused ReLU reports no
// FLOPs of its own.
func TestFusedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	conv := NewConv2D("c", 4, 8, 3, 1, 1)
	conv.Init(rng)
	bn := NewBatchNorm("b", 8)
	bn.Init(rng)
	fused, err := NewFusedConv2D(conv, bn, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fused.ParamCount(), conv.ParamCount()+2*8; got != want {
		t.Fatalf("fused ParamCount = %d, want %d (conv + 2 per-channel vectors)", got, want)
	}
	in := []int{4, 9, 9}
	unfused := conv.FLOPs(in) + bn.FLOPs([]int{8, 9, 9}) + NewReLU("r").FLOPs([]int{8, 9, 9})
	if got := fused.FLOPs(in); got >= unfused {
		t.Fatalf("fused FLOPs = %d, want < unfused total %d", got, unfused)
	}
	if got, want := fused.FLOPs(in), conv.FLOPs(in)+bn.FLOPs([]int{8, 9, 9}); got != want {
		t.Fatalf("fused FLOPs = %d, want conv+affine = %d", got, want)
	}
}
