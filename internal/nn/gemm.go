package nn

import "gillis/internal/par"

// This file is the package's single GEMM-shaped compute engine. Conv2D
// (via im2col), Dense, and LSTM all lower onto the two micro-kernels below;
// the AVX assembly in gemm_amd64.s and the pure-Go reference kernels here
// implement the exact same accumulation-order contract, so outputs are
// bitwise identical across architectures, parallelism levels, and
// partitioned execution.
//
// Accumulation-order contract:
//
//   - Matrix-panel kernel (conv): every output element accumulates its K
//     terms strictly in order, one rounding per multiply and one per add
//     (acc += a[p]*b[p], p = 0,1,2,...). SIMD lanes hold *independent*
//     output elements, never partial sums of one element, so the order per
//     element is the same whether a pixel lands in the vector body, the
//     scalar column tail, or a differently-aligned block of a spatial
//     partition.
//   - Row-dot kernel (dense/LSTM): each output row reduces over K in eight
//     interleaved stripes (lane q sums terms q, q+8, q+16, ...), the lanes
//     are combined by the fixed tree ((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7)),
//     and any K%8 tail terms are then added in order. The schedule depends
//     only on K — a layer constant — so it is invariant under parallelism
//     and channel slicing.
//
// Blocking: the register tile is Mc=4 rows × 8 columns. gemmBand4 walks the
// output in Nc-column by Kc-depth blocks so a B panel of at most
// Kc×8 floats (16KB) stays L1-resident across the column sweep while the
// four A rows stream; bands of four rows are the unit of parallelism
// (disjoint outputs, no reduction ever splits). The im2col packing in
// Conv2D builds the B panel in pooled scratch; A panels are the weight rows
// themselves, already contiguous.
const (
	gemmKc = 512
	gemmNc = 512
)

// epilogue is a fused per-output-channel post-op applied to a finished
// output row: an optional affine y = y*scale + shift (the BatchNorm
// inference transform) followed by an optional ReLU. Both use exactly the
// arithmetic of the standalone BatchNorm/ReLU forwards, so fusing them is
// bitwise invisible.
type epilogue struct {
	scale []float32 // per-channel scale, nil for none
	shift []float32 // per-channel shift, same length as scale
	relu  bool
}

// apply transforms one finished output row (channel ch). A nil epilogue is
// a no-op.
func (e *epilogue) apply(ch int, row []float32) {
	if e == nil {
		return
	}
	if e.scale != nil {
		s, t := e.scale[ch], e.shift[ch]
		for i, v := range row {
			row[i] = v*s + t
		}
	}
	if e.relu {
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			}
		}
	}
}

// gemmBias computes out[m][n] = bias[i] + a[m][k]·b[k][n], applying the
// epilogue to each finished row. a is row-major [m][k] (weight rows), b is
// row-major [k][n] (the packed im2col panel). Parallelism is over 4-row
// bands; every path accumulates each element strictly in k order.
func gemmBias(m, n, k int, a, b, bias, out []float32, epi *epilogue) {
	par.For((m+3)/4, 8*k*n, func(lo, hi int) {
		for band := lo; band < hi; band++ {
			gemmBandAt(m, n, k, a, b, bias, out, epi, band)
		}
	})
}

// gemmBiasBatch runs gemmBias over a batch of B panels sharing one weight
// matrix: out[e][m][n] = bias[i] + a[m][k]·bs[e][k][n]. The parallel index
// space is batch×bands, and each (element, band) pair executes exactly the
// per-band body of gemmBias — the same kernels, the same strict-k
// accumulation order, the same blocking — so a batch of N is bitwise
// identical to N sequential gemmBias calls at every parallelism level.
func gemmBiasBatch(batch, m, n, k int, a []float32, bs, outs [][]float32, bias []float32, epi *epilogue) {
	bands := (m + 3) / 4
	par.For(batch*bands, 8*k*n, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			e, band := idx/bands, idx%bands
			gemmBandAt(m, n, k, a, bs[e], bias, outs[e], epi, band)
		}
	})
}

// gemmBandAt is the per-band body shared by gemmBias and gemmBiasBatch:
// rows [band*4, band*4+4) of one output panel, full rows initialized to
// bias then accumulated by gemmBand4, m%4 tail rows by the strict-k scalar
// loop, then the epilogue per finished row.
func gemmBandAt(m, n, k int, a, b, bias, out []float32, epi *epilogue, band int) {
	i := band * 4
	if i+4 <= m {
		for r := i; r < i+4; r++ {
			row := out[r*n : (r+1)*n]
			bv := bias[r]
			for j := range row {
				row[j] = bv
			}
		}
		gemmBand4(n, k,
			a[i*k:(i+1)*k], a[(i+1)*k:(i+2)*k], a[(i+2)*k:(i+3)*k], a[(i+3)*k:(i+4)*k],
			b,
			out[i*n:(i+1)*n], out[(i+1)*n:(i+2)*n], out[(i+2)*n:(i+3)*n], out[(i+3)*n:(i+4)*n])
	} else {
		for r := i; r < m; r++ {
			row := out[r*n : (r+1)*n]
			ar := a[r*k : (r+1)*k]
			bv := bias[r]
			for j := range row {
				s := bv
				for p := 0; p < k; p++ {
					s += ar[p] * b[p*n+j]
				}
				row[j] = s
			}
		}
	}
	for r := i; r < min(i+4, m); r++ {
		epi.apply(r, out[r*n:(r+1)*n])
	}
}

// gemmBand4 accumulates four output rows c0..c3 (length n) with Nc/Kc cache
// blocking around the 4x8 micro-kernel. Column tails (n%8) fall back to a
// scalar loop with the identical strict-k accumulation order.
func gemmBand4(n, k int, a0, a1, a2, a3, b, c0, c1, c2, c3 []float32) {
	for jc := 0; jc < n; jc += gemmNc {
		jEnd := min(jc+gemmNc, n)
		for pc := 0; pc < k; pc += gemmKc {
			pEnd := min(pc+gemmKc, k)
			kc := pEnd - pc
			j := jc
			for ; j+8 <= jEnd; j += 8 {
				mulAddPanel4x8(kc, a0[pc:pEnd], a1[pc:pEnd], a2[pc:pEnd], a3[pc:pEnd],
					b[pc*n+j:], n, c0[j:j+8], c1[j:j+8], c2[j:j+8], c3[j:j+8])
			}
			for ; j < jEnd; j++ {
				s0, s1, s2, s3 := c0[j], c1[j], c2[j], c3[j]
				for p := pc; p < pEnd; p++ {
					bv := b[p*n+j]
					s0 += a0[p] * bv
					s1 += a1[p] * bv
					s2 += a2[p] * bv
					s3 += a3[p] * bv
				}
				c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
			}
		}
	}
}

// mulAddPanel4x8Go is the pure-Go reference of the matrix-panel micro-kernel:
// c_r[j] += a_r[p] * b[p*bstride+j] for r in 0..3, j in 0..7, p ascending.
// Bitwise identical to the AVX version (independent lanes, one mul and one
// add rounding per term, strict p order).
func mulAddPanel4x8Go(k int, a0, a1, a2, a3, b []float32, bstride int, c0, c1, c2, c3 []float32) {
	c0, c1, c2, c3 = c0[:8], c1[:8], c2[:8], c3[:8]
	for p := 0; p < k; p++ {
		brow := b[p*bstride : p*bstride+8]
		v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
		for j, bv := range brow {
			c0[j] += v0 * bv
			c1[j] += v1 * bv
			c2[j] += v2 * bv
			c3[j] += v3 * bv
		}
	}
}

// gemvBias computes out[i] = bias[i] + w[i]·x for an [m][k] row-major weight
// matrix, with an optional fused ReLU. Rows are processed in bands of four;
// every row follows the lane-striped reduction contract of laneDotAcc.
func gemvBias(m, k int, w, bias, x, out []float32, relu bool) {
	par.For((m+3)/4, 8*k, func(lo, hi int) {
		for band := lo; band < hi; band++ {
			gemvBandAt(m, k, w, bias, x, out, relu, band)
		}
	})
}

// gemvBiasBatch runs gemvBias over a batch of input vectors sharing one
// weight matrix: outs[e][i] = bias[i] + w[i]·xs[e]. Like gemmBiasBatch, the
// parallel index space is batch×bands and each pair runs the exact per-band
// body of gemvBias, so batched output is bitwise identical to the
// per-query loop.
func gemvBiasBatch(batch, m, k int, w, bias []float32, xs, outs [][]float32, relu bool) {
	bands := (m + 3) / 4
	par.For(batch*bands, 8*k, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			e, band := idx/bands, idx%bands
			gemvBandAt(m, k, w, bias, xs[e], outs[e], relu, band)
		}
	})
}

// gemvBandAt is the per-band body shared by gemvBias and gemvBiasBatch:
// rows [band*4, band*4+4) of one output vector, full bands via gemvBand4,
// m%4 tail rows via laneDotAcc, then the optional fused ReLU.
func gemvBandAt(m, k int, w, bias, x, out []float32, relu bool, band int) {
	i := band * 4
	if i+4 <= m {
		copy(out[i:i+4], bias[i:i+4])
		gemvBand4(k, w[i*k:], k, x, out[i:i+4])
	} else {
		for r := i; r < m; r++ {
			out[r] = laneDotAcc(bias[r], w[r*k:(r+1)*k], x[:k])
		}
	}
	if relu {
		for r := i; r < min(i+4, m); r++ {
			if out[r] < 0 {
				out[r] = 0
			}
		}
	}
}

// gemvBand4 accumulates four row-dots into acc[0:4]: acc[r] += w[r·ldw:]·x
// over k terms, vector body over the largest multiple of 8 and the k tail
// added in order afterwards — the same schedule laneDotAcc implements for a
// single row.
func gemvBand4(k int, w []float32, ldw int, x, acc []float32) {
	k8 := k &^ 7
	if k8 > 0 {
		laneDotAcc4(k8, w, w[ldw:], w[2*ldw:], w[3*ldw:], x, acc)
	}
	for r := 0; r < 4; r++ {
		wr := w[r*ldw : r*ldw+k]
		s := acc[r]
		for p := k8; p < k; p++ {
			s += wr[p] * x[p]
		}
		acc[r] = s
	}
}

// laneDotAcc4Go is the pure-Go reference of the row-dot micro-kernel:
// out[r] += laneDot(w_r, x) for r in 0..3. k must be a multiple of 8.
func laneDotAcc4Go(k int, w0, w1, w2, w3, x, out []float32) {
	out[0] = laneDotAcc(out[0], w0[:k], x[:k])
	out[1] = laneDotAcc(out[1], w1[:k], x[:k])
	out[2] = laneDotAcc(out[2], w2[:k], x[:k])
	out[3] = laneDotAcc(out[3], w3[:k], x[:k])
}

// laneDotAcc is the scalar statement of the row-dot contract: eight
// interleaved partial sums over the largest multiple of 8, combined by the
// fixed tree ((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7)), then the tail terms in
// order. Single rows (band tails, sliced layers) and the AVX kernel agree
// bitwise because the schedule depends only on len(w).
func laneDotAcc(acc float32, w, x []float32) float32 {
	k8 := len(w) &^ 7
	var l [8]float32
	for p := 0; p < k8; p += 8 {
		wp, xp := w[p:p+8], x[p:p+8]
		for q, wv := range wp {
			l[q] += wv * xp[q]
		}
	}
	s0 := l[0] + l[4]
	s1 := l[1] + l[5]
	s2 := l[2] + l[6]
	s3 := l[3] + l[7]
	acc += (s0 + s1) + (s2 + s3)
	for p := k8; p < len(w); p++ {
		acc += w[p] * x[p]
	}
	return acc
}
