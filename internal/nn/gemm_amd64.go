//go:build amd64

package nn

// gemmKernel4x8 is the AVX matrix-panel micro-kernel (gemm_amd64.s):
// c_r[0:8] += a_r[p] * b[p*bstrideBytes/4 : ...][0:8] for r in 0..3 with
// strict p order per element. bstrideBytes is the byte stride between
// consecutive k rows of b.
func gemmKernel4x8(k int64, a0, a1, a2, a3, b *float32, bstrideBytes int64, c0, c1, c2, c3 *float32)

// gemvKernel4x8 is the AVX row-dot micro-kernel (gemm_amd64.s):
// out[r] += laneDot(w_r[0:k], x[0:k]) for r in 0..3. k must be a multiple
// of 8.
func gemvKernel4x8(k int64, w0, w1, w2, w3, x, out *float32)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

// useAVXKernels gates the assembly micro-kernels. When false the pure-Go
// reference kernels run instead; both implement the same accumulation-order
// contract, so flipping this flag never changes an output bit (the
// equivalence is asserted by TestKernelAsmMatchesReference).
var useAVXKernels = detectAVX()

// detectAVX reports whether the CPU and OS support 256-bit AVX state. The
// kernels use only AVX1 instructions (VMULPS/VADDPS/VBROADCASTSS/VHADDPS).
func detectAVX() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 1 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	lo, _ := xgetbvAsm()
	return lo&6 == 6 // OS saves XMM and YMM state
}

func mulAddPanel4x8(k int, a0, a1, a2, a3, b []float32, bstride int, c0, c1, c2, c3 []float32) {
	if useAVXKernels {
		gemmKernel4x8(int64(k), &a0[0], &a1[0], &a2[0], &a3[0], &b[0], int64(bstride)*4,
			&c0[0], &c1[0], &c2[0], &c3[0])
		return
	}
	mulAddPanel4x8Go(k, a0, a1, a2, a3, b, bstride, c0, c1, c2, c3)
}

func laneDotAcc4(k int, w0, w1, w2, w3, x, out []float32) {
	if useAVXKernels {
		gemvKernel4x8(int64(k), &w0[0], &w1[0], &w2[0], &w3[0], &x[0], &out[0])
		return
	}
	laneDotAcc4Go(k, w0, w1, w2, w3, x, out)
}
