#include "textflag.h"

// AVX micro-kernels for the GEMM engine (see gemm.go for the
// accumulation-order contract). Only AVX1 instructions are used; dispatch
// in gemm_amd64.go verifies CPU and OS support before these run.

// func gemmKernel4x8(k int64, a0, a1, a2, a3, b *float32, bstrideBytes int64, c0, c1, c2, c3 *float32)
//
// For r in 0..3: c_r[0:8] += a_r[p] * b[p][0:8], p = 0..k-1, one VMULPS and
// one VADDPS per (r, p) — SIMD lanes are independent output elements, so
// each element accumulates in strict p order, bitwise identical to the
// scalar reference mulAddPanel4x8Go.
TEXT ·gemmKernel4x8(SB), NOSPLIT, $0-88
	MOVQ k+0(FP), CX
	MOVQ a0+8(FP), AX
	MOVQ a1+16(FP), R9
	MOVQ a2+24(FP), R10
	MOVQ a3+32(FP), R11
	MOVQ b+40(FP), BX
	MOVQ bstrideBytes+48(FP), DX
	MOVQ c0+56(FP), DI
	MOVQ c1+64(FP), SI
	MOVQ c2+72(FP), R8
	MOVQ c3+80(FP), R12
	VMOVUPS (DI), Y0
	VMOVUPS (SI), Y1
	VMOVUPS (R8), Y2
	VMOVUPS (R12), Y3
	XORQ R13, R13
loop:
	TESTQ CX, CX
	JZ    done
	VMOVUPS (BX), Y5
	VBROADCASTSS (AX)(R13*4), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y0, Y0
	VBROADCASTSS (R9)(R13*4), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y1, Y1
	VBROADCASTSS (R10)(R13*4), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y2, Y2
	VBROADCASTSS (R11)(R13*4), Y4
	VMULPS Y5, Y4, Y6
	VADDPS Y6, Y3, Y3
	ADDQ DX, BX
	INCQ R13
	DECQ CX
	JMP  loop
done:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (SI)
	VMOVUPS Y2, (R8)
	VMOVUPS Y3, (R12)
	VZEROUPPER
	RET

// func gemvKernel4x8(k int64, w0, w1, w2, w3, x, out *float32)
//
// For r in 0..3: out[r] += laneReduce(w_r .* x) over k terms (k ≡ 0 mod 8):
// lane q accumulates terms q, q+8, ...; lanes fold high-half onto low, then
// pairwise via HADDPS — the fixed tree ((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))
// stated in laneDotAcc.
TEXT ·gemvKernel4x8(SB), NOSPLIT, $0-56
	MOVQ k+0(FP), CX
	MOVQ w0+8(FP), AX
	MOVQ w1+16(FP), R9
	MOVQ w2+24(FP), R10
	MOVQ w3+32(FP), R11
	MOVQ x+40(FP), BX
	MOVQ out+48(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ R13, R13
loop:
	TESTQ CX, CX
	JZ    done
	VMOVUPS (BX)(R13*4), Y5
	VMOVUPS (AX)(R13*4), Y6
	VMULPS Y5, Y6, Y6
	VADDPS Y6, Y0, Y0
	VMOVUPS (R9)(R13*4), Y6
	VMULPS Y5, Y6, Y6
	VADDPS Y6, Y1, Y1
	VMOVUPS (R10)(R13*4), Y6
	VMULPS Y5, Y6, Y6
	VADDPS Y6, Y2, Y2
	VMOVUPS (R11)(R13*4), Y6
	VMULPS Y5, Y6, Y6
	VADDPS Y6, Y3, Y3
	ADDQ $8, R13
	SUBQ $8, CX
	JMP  loop
done:
	VEXTRACTF128 $1, Y0, X5
	VADDPS X5, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPS X5, X1, X1
	VEXTRACTF128 $1, Y2, X5
	VADDPS X5, X2, X2
	VEXTRACTF128 $1, Y3, X5
	VADDPS X5, X3, X3
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	VMOVSS (DI), X6
	VADDSS X0, X6, X6
	VMOVSS X6, (DI)
	VMOVSS 4(DI), X6
	VADDSS X1, X6, X6
	VMOVSS X6, 4(DI)
	VMOVSS 8(DI), X6
	VADDSS X2, X6, X6
	VMOVSS X6, 8(DI)
	VMOVSS 12(DI), X6
	VADDSS X3, X6, X6
	VMOVSS X6, 12(DI)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
