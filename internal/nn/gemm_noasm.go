//go:build !amd64

package nn

// useAVXKernels mirrors the amd64 dispatch flag so tests can reference it;
// on other architectures the pure-Go reference kernels always run.
var useAVXKernels = false

func mulAddPanel4x8(k int, a0, a1, a2, a3, b []float32, bstride int, c0, c1, c2, c3 []float32) {
	mulAddPanel4x8Go(k, a0, a1, a2, a3, b, bstride, c0, c1, c2, c3)
}

func laneDotAcc4(k int, w0, w1, w2, w3, x, out []float32) {
	laneDotAcc4Go(k, w0, w1, w2, w3, x, out)
}
