package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestKernelAsmMatchesReference proves the dispatched micro-kernels (AVX
// assembly where available, the Go references otherwise) agree bitwise with
// the pure-Go contract statements in gemm.go, across ragged k values and
// denormal-heavy inputs. On platforms without the assembly the dispatch IS
// the reference and the test is trivially green — it still pins that the
// wrappers wire through correctly.
func TestKernelAsmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	fill := func(n int) []float32 {
		s := make([]float32, n)
		for i := range s {
			v := float32(rng.NormFloat64())
			switch rng.Intn(8) {
			case 0:
				v = 0
			case 1:
				v *= 1e-38 // subnormal territory
			case 2:
				v *= 1e30
			}
			s[i] = v
		}
		return s
	}

	t.Run("mulAddPanel4x8", func(t *testing.T) {
		for _, k := range []int{1, 2, 7, 8, 9, 64, 100, 511, 512, 513} {
			const bstride = 8
			a0, a1, a2, a3 := fill(k), fill(k), fill(k), fill(k)
			b := fill(k * bstride)
			cRef := [4][]float32{fill(8), fill(8), fill(8), fill(8)}
			var cGot [4][]float32
			for r := range cGot {
				cGot[r] = append([]float32(nil), cRef[r]...)
			}
			mulAddPanel4x8Go(k, a0, a1, a2, a3, b, bstride, cRef[0], cRef[1], cRef[2], cRef[3])
			mulAddPanel4x8(k, a0, a1, a2, a3, b, bstride, cGot[0], cGot[1], cGot[2], cGot[3])
			for r := range cRef {
				for j := range cRef[r] {
					if math.Float32bits(cRef[r][j]) != math.Float32bits(cGot[r][j]) {
						t.Fatalf("k=%d row=%d col=%d: dispatched kernel %v != reference %v",
							k, r, j, cGot[r][j], cRef[r][j])
					}
				}
			}
		}
	})

	t.Run("laneDotAcc4", func(t *testing.T) {
		for _, k8 := range []int{8, 16, 64, 504, 512, 1024} {
			w := fill(4 * k8)
			x := fill(k8)
			ref := fill(4)
			got := append([]float32(nil), ref...)
			laneDotAcc4Go(k8, w, w[k8:], w[2*k8:], w[3*k8:], x, ref)
			laneDotAcc4(k8, w, w[k8:], w[2*k8:], w[3*k8:], x, got)
			for r := range ref {
				if math.Float32bits(ref[r]) != math.Float32bits(got[r]) {
					t.Fatalf("k8=%d row=%d: dispatched kernel %v != reference %v", k8, r, got[r], ref[r])
				}
			}
		}
	})
}
