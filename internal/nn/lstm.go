package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// LSTM is a single unidirectional LSTM layer unrolled over a [T, InSize]
// input sequence, producing the [T, Hidden] sequence of hidden states.
// Gate order in the stacked weight matrices is (input, forget, cell, output).
//
// Recurrent layers have no local spatial response — each output step depends
// on the whole prefix — so LSTM deliberately does not implement Spatial or
// ChannelSliceable: Gillis can place an LSTM stack across functions (serial
// rounds) but cannot tensor-partition it, exactly as in the paper (§V-B).
type LSTM struct {
	OpName string
	InSize int
	Hidden int

	// Wx has shape [4*Hidden, InSize]; Wh has shape [4*Hidden, Hidden];
	// B has shape [4*Hidden].
	Wx *tensor.Tensor
	Wh *tensor.Tensor
	B  *tensor.Tensor
}

var _ Weighted = (*LSTM)(nil)

// NewLSTM constructs an uninitialized LSTM layer.
func NewLSTM(name string, inSize, hidden int) *LSTM {
	return &LSTM{OpName: name, InSize: inSize, Hidden: hidden}
}

// Name implements Op.
func (l *LSTM) Name() string { return l.OpName }

// Kind implements Op.
func (l *LSTM) Kind() Kind { return KindLSTM }

// OutShape implements Op.
func (l *LSTM) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("LSTM", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("LSTM", s, 2); err != nil {
		return nil, err
	}
	if s[1] != l.InSize {
		return nil, fmt.Errorf("nn: LSTM %q expects input size %d, got %d", l.OpName, l.InSize, s[1])
	}
	return []int{s[0], l.Hidden}, nil
}

// FLOPs implements Op.
func (l *LSTM) FLOPs(in ...[]int) int64 {
	s, err := l.OutShape(in...)
	if err != nil {
		return 0
	}
	t := int64(s[0])
	h := int64(l.Hidden)
	x := int64(l.InSize)
	// Per step: two matmuls (4h×x and 4h×h), plus gate nonlinearities and
	// element-wise state updates (~10 ops per hidden unit).
	return t * (2*4*h*x + 2*4*h*h + 10*h)
}

// ParamCount implements Op.
func (l *LSTM) ParamCount() int64 {
	h := int64(l.Hidden)
	return 4*h*int64(l.InSize) + 4*h*h + 4*h
}

// Init implements Op.
func (l *LSTM) Init(rng *rand.Rand) {
	sx := float32(math.Sqrt(1 / float64(l.InSize)))
	sh := float32(math.Sqrt(1 / float64(l.Hidden)))
	l.Wx = tensor.Rand(rng, sx, 4*l.Hidden, l.InSize)
	l.Wh = tensor.Rand(rng, sh, 4*l.Hidden, l.Hidden)
	l.B = tensor.Rand(rng, 0.01, 4*l.Hidden)
}

// Initialized implements Op.
func (l *LSTM) Initialized() bool { return l.Wx != nil && l.Wh != nil && l.B != nil }

// Weights implements Weighted.
func (l *LSTM) Weights() []*tensor.Tensor { return []*tensor.Tensor{l.Wx, l.Wh, l.B} }

// SetWeights implements Weighted.
func (l *LSTM) SetWeights(ws []*tensor.Tensor) error {
	if len(ws) != 3 {
		return fmt.Errorf("nn: LSTM %q expects 3 weight tensors, got %d", l.OpName, len(ws))
	}
	if !tensor.ShapeEqual(ws[0].Shape(), []int{4 * l.Hidden, l.InSize}) ||
		!tensor.ShapeEqual(ws[1].Shape(), []int{4 * l.Hidden, l.Hidden}) ||
		!tensor.ShapeEqual(ws[2].Shape(), []int{4 * l.Hidden}) {
		return fmt.Errorf("nn: LSTM %q weight shape mismatch", l.OpName)
	}
	l.Wx, l.Wh, l.B = ws[0], ws[1], ws[2]
	return nil
}

// Forward implements Op, starting from zero initial hidden and cell states.
func (l *LSTM) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("LSTM", len(in)); err != nil {
		return nil, err
	}
	if !l.Initialized() {
		return nil, fmt.Errorf("nn: LSTM %q has no weights", l.OpName)
	}
	x := in[0]
	if x.Rank() != 2 || x.Dim(1) != l.InSize {
		return nil, fmt.Errorf("nn: LSTM %q bad input %v", l.OpName, x.Shape())
	}
	steps := x.Dim(0)
	h := l.Hidden
	out := tensor.New(steps, h)
	xd, od := x.Data(), out.Data()
	wx, wh, bias := l.Wx.Data(), l.Wh.Data(), l.B.Data()

	// All per-step temporaries come from the scratch arena; repeated
	// forwards allocate nothing beyond the output tensor.
	hBuf, cBuf, gBuf := par.GetF32(h), par.GetF32(h), par.GetF32(4*h)
	defer par.PutF32(hBuf)
	defer par.PutF32(cBuf)
	defer par.PutF32(gBuf)
	hState, cState, gates := *hBuf, *cBuf, *gBuf
	clear(hState)
	clear(cState)
	// The timestep recurrence is inherently serial, but within a step the
	// 4*Hidden gate rows are independent row-dots and the Hidden state
	// updates are element-wise; parallelizing over those rows splits no
	// reduction, so outputs are bitwise identical at every parallelism
	// level. Gate rows run in bands of four on the row-dot micro-kernel
	// (gemm.go): per row, bias + laneDot over x_t, then + laneDot over
	// h_{t-1} — a fixed schedule independent of banding and parallelism.
	// Both bodies are hoisted out of the timestep loop so each Forward
	// allocates the closures once, not per step; xt is rebound between
	// steps (serially, after For returns, so no goroutine observes a
	// partial update).
	var xt []float32
	gateRows := func(lo, hi int) {
		for band := lo; band < hi; band++ {
			g := band * 4
			copy(gates[g:g+4], bias[g:g+4])
			gemvBand4(l.InSize, wx[g*l.InSize:], l.InSize, xt, gates[g:g+4])
			gemvBand4(h, wh[g*h:], h, hState, gates[g:g+4])
		}
	}
	stateUpdate := func(lo, hi int) {
		for j := lo; j < hi; j++ {
			ig := sigmoid(gates[j])
			fg := sigmoid(gates[h+j])
			gg := float32(math.Tanh(float64(gates[2*h+j])))
			og := sigmoid(gates[3*h+j])
			cState[j] = fg*cState[j] + ig*gg
			hState[j] = og * float32(math.Tanh(float64(cState[j])))
		}
	}
	for t := 0; t < steps; t++ {
		xt = xd[t*l.InSize : (t+1)*l.InSize]
		par.For(h, 8*(l.InSize+h), gateRows)
		par.For(h, 64, stateUpdate)
		copy(od[t*h:(t+1)*h], hState)
	}
	return out, nil
}

// ForwardBatch implements BatchForwarder. The timestep recurrence stays
// serial, but within each step the parallel index space becomes
// batch×bands: every (element, band) pair runs exactly the per-element gate
// band and state-update bodies of Forward against that element's own
// state slab, so the batched sequence outputs are bitwise identical to the
// per-query loop at every parallelism level. Inputs must share one shape
// (the dispatcher in batch.go falls back to the loop otherwise).
func (l *LSTM) ForwardBatch(xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	if !l.Initialized() {
		return nil, fmt.Errorf("nn: LSTM %q has no weights", l.OpName)
	}
	for _, x := range xs {
		if x.Rank() != 2 || x.Dim(1) != l.InSize {
			return nil, fmt.Errorf("nn: LSTM %q bad input %v", l.OpName, x.Shape())
		}
		if x.Dim(0) != xs[0].Dim(0) {
			return nil, fmt.Errorf("nn: LSTM %q batch mixes sequence lengths %d and %d", l.OpName, xs[0].Dim(0), x.Dim(0))
		}
	}
	batch := len(xs)
	steps := xs[0].Dim(0)
	h := l.Hidden
	wx, wh, bias := l.Wx.Data(), l.Wh.Data(), l.B.Data()

	outs := make([]*tensor.Tensor, batch)
	ods := make([][]float32, batch)
	for e := range xs {
		outs[e] = tensor.New(steps, h)
		ods[e] = outs[e].Data()
	}
	// One scratch slab per kind, sliced per element; each element's state
	// region is touched only through its own (element, band) indices.
	hBuf, cBuf, gBuf := par.GetF32(batch*h), par.GetF32(batch*h), par.GetF32(batch*4*h)
	defer par.PutF32(hBuf)
	defer par.PutF32(cBuf)
	defer par.PutF32(gBuf)
	hAll, cAll, gAll := *hBuf, *cBuf, *gBuf
	clear(hAll)
	clear(cAll)
	var t int
	gateRows := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			e, band := idx/h, idx%h
			xt := xs[e].Data()[t*l.InSize : (t+1)*l.InSize]
			hState := hAll[e*h : (e+1)*h]
			gates := gAll[e*4*h : (e+1)*4*h]
			g := band * 4
			copy(gates[g:g+4], bias[g:g+4])
			gemvBand4(l.InSize, wx[g*l.InSize:], l.InSize, xt, gates[g:g+4])
			gemvBand4(h, wh[g*h:], h, hState, gates[g:g+4])
		}
	}
	stateUpdate := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			e, j := idx/h, idx%h
			hState := hAll[e*h : (e+1)*h]
			cState := cAll[e*h : (e+1)*h]
			gates := gAll[e*4*h : (e+1)*4*h]
			ig := sigmoid(gates[j])
			fg := sigmoid(gates[h+j])
			gg := float32(math.Tanh(float64(gates[2*h+j])))
			og := sigmoid(gates[3*h+j])
			cState[j] = fg*cState[j] + ig*gg
			hState[j] = og * float32(math.Tanh(float64(cState[j])))
		}
	}
	for t = 0; t < steps; t++ {
		par.For(batch*h, 8*(l.InSize+h), gateRows)
		par.For(batch*h, 64, stateUpdate)
		for e := 0; e < batch; e++ {
			copy(ods[e][t*h:(t+1)*h], hAll[e*h:(e+1)*h])
		}
	}
	return outs, nil
}

func sigmoid(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}
