package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gillis/internal/tensor"
)

func mustTensor(t *testing.T, data []float32, shape ...int) *tensor.Tensor {
	t.Helper()
	x, err := tensor.FromData(data, shape...)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestConvGolden(t *testing.T) {
	// 1x3x3 input, one 2x2 filter of ones, stride 1, no pad, zero bias.
	c := NewConv2D("c", 1, 1, 2, 1, 0)
	c.W = tensor.Full(1, 1, 1, 2, 2)
	c.B = tensor.New(1)
	in := mustTensor(t, []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTensor(t, []float32{12, 16, 24, 28}, 1, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("conv golden mismatch: got %v", out.Data())
	}
}

func TestConvPadding(t *testing.T) {
	// Identity-ish: 1x1 input, 3x3 filter of ones, pad 1 → sums 3x3
	// neighbourhood; with a single pixel the output equals the input value.
	c := NewConv2D("c", 1, 1, 3, 1, 1)
	c.W = tensor.Full(1, 1, 1, 3, 3)
	c.B = tensor.New(1)
	in := mustTensor(t, []float32{5}, 1, 1, 1)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(1) != 1 || out.Dim(2) != 1 || out.At(0, 0, 0) != 5 {
		t.Fatalf("padded conv wrong: %v %v", out.Shape(), out.Data())
	}
}

func TestConvStride(t *testing.T) {
	c := NewConv2D("c", 1, 1, 1, 2, 0)
	c.W = tensor.Full(1, 1, 1, 1, 1)
	c.B = tensor.New(1)
	in := mustTensor(t, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTensor(t, []float32{1, 3, 9, 11}, 1, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("strided conv got %v", out.Data())
	}
}

func TestConvOutShapeErrors(t *testing.T) {
	c := NewConv2D("c", 3, 8, 3, 1, 1)
	if _, err := c.OutShape([]int{4, 8, 8}); err == nil {
		t.Fatal("expected channel mismatch error")
	}
	if _, err := c.OutShape([]int{3, 8}); err == nil {
		t.Fatal("expected rank error")
	}
	if _, err := c.OutShape([]int{3, 8, 8}, []int{3, 8, 8}); err == nil {
		t.Fatal("expected input-count error")
	}
}

func TestConvUninitializedForward(t *testing.T) {
	c := NewConv2D("c", 1, 1, 1, 1, 0)
	if _, err := c.Forward(tensor.New(1, 2, 2)); err == nil {
		t.Fatal("expected uninitialized-weights error")
	}
}

func TestConvChannelSliceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConv2D("c", 3, 8, 3, 1, 1)
	c.Init(rng)
	in := tensor.Rand(rng, 1, 3, 6, 6)
	full, err := c.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*tensor.Tensor
	for _, r := range [][2]int{{0, 3}, {3, 5}, {5, 8}} {
		sub, err := c.SliceChannels(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		p, err := sub.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	cat, err := tensor.ConcatDim(0, parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(full, cat) {
		t.Fatal("channel-sliced conv must reproduce full output bitwise")
	}
}

func TestConvParamsAndFLOPs(t *testing.T) {
	c := NewConv2D("c", 3, 64, 7, 2, 3)
	if got, want := c.ParamCount(), int64(3*64*49+64); got != want {
		t.Fatalf("params got %d want %d", got, want)
	}
	out, err := c.OutShape([]int{3, 224, 224})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 64 || out[1] != 112 || out[2] != 112 {
		t.Fatalf("ResNet stem shape wrong: %v", out)
	}
	if c.FLOPs([]int{3, 224, 224}) <= 0 {
		t.Fatal("FLOPs must be positive")
	}
}

func TestMaxPoolGoldenAndPadding(t *testing.T) {
	m := NewMaxPool2D("p", 3, 2, 1)
	in := mustTensor(t, []float32{
		-1, -2, -3, -4,
		-5, -6, -7, -8,
		-9, -10, -11, -12,
		-13, -14, -15, -16,
	}, 1, 4, 4)
	out, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// Padding must behave as -inf: windows that overlap the border still
	// pick the max *real* value (zero-padding would wrongly return 0 for an
	// all-negative input).
	want := mustTensor(t, []float32{-1, -2, -5, -6}, 1, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("maxpool got %v", out.Data())
	}
}

func TestAvgPoolGolden(t *testing.T) {
	a := NewAvgPool2D("a", 2, 2)
	in := mustTensor(t, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, err := a.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTensor(t, []float32{3.5, 5.5, 11.5, 13.5}, 1, 2, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("avgpool got %v", out.Data())
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool("g")
	in := mustTensor(t, []float32{1, 2, 3, 4, 10, 20, 30, 40}, 2, 2, 2)
	out, err := g.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTensor(t, []float32{2.5, 25}, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("gap got %v", out.Data())
	}
}

func TestBatchNormGolden(t *testing.T) {
	b := NewBatchNorm("b", 2)
	ws := []*tensor.Tensor{
		tensor.Full(2, 2), // gamma
		tensor.Full(1, 2), // beta
		tensor.Full(3, 2), // mean
		tensor.Full(4, 2), // var
	}
	if err := b.SetWeights(ws); err != nil {
		t.Fatal(err)
	}
	in := tensor.Full(5, 2, 1, 1)
	out, err := b.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// y = 2*(5-3)/sqrt(4+eps) + 1 ≈ 3
	if math.Abs(float64(out.At(0, 0, 0))-3) > 1e-4 {
		t.Fatalf("bn got %v", out.Data())
	}
}

func TestBatchNormChannelSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBatchNorm("b", 6)
	b.Init(rng)
	in := tensor.Rand(rng, 1, 6, 3, 3)
	full, err := b.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := b.SliceChannels(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := b.SliceChannels(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	inLo, _ := in.SliceDim(0, 0, 2)
	inHi, _ := in.SliceDim(0, 2, 6)
	outLo, err := lo.Forward(inLo)
	if err != nil {
		t.Fatal(err)
	}
	outHi, err := hi.Forward(inHi)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := tensor.ConcatDim(0, outLo, outHi)
	if !tensor.Equal(full, cat) {
		t.Fatal("channel-sliced BN must reproduce full output")
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU("r")
	in := mustTensor(t, []float32{-1, 0, 2}, 3)
	out, err := r.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTensor(t, []float32{0, 0, 2}, 3)
	if !tensor.Equal(out, want) {
		t.Fatalf("relu got %v", out.Data())
	}
	if in.At(0) != -1 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestAdd(t *testing.T) {
	a := NewAdd("a")
	x := mustTensor(t, []float32{1, 2}, 2)
	y := mustTensor(t, []float32{10, 20}, 2)
	out, err := a.Forward(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTensor(t, []float32{11, 22}, 2)
	if !tensor.Equal(out, want) {
		t.Fatalf("add got %v", out.Data())
	}
	if _, err := a.Forward(x); err == nil {
		t.Fatal("expected two-input error")
	}
	if _, err := a.OutShape([]int{2}, []int{3}); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSoftmax(t *testing.T) {
	s := NewSoftmax("s")
	in := mustTensor(t, []float32{1, 1, 1, 1}, 4)
	out, err := s.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data() {
		if math.Abs(float64(v)-0.25) > 1e-6 {
			t.Fatalf("softmax got %v", out.Data())
		}
	}
	// Numerical stability with large logits.
	big := mustTensor(t, []float32{1000, 1000}, 2)
	out, err = s.Forward(big)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(float64(out.At(0))) || math.Abs(float64(out.At(0))-0.5) > 1e-6 {
		t.Fatalf("softmax unstable: %v", out.Data())
	}
}

func TestDenseGoldenAndSlice(t *testing.T) {
	d := NewDense("d", 2, 3)
	w := mustTensor(t, []float32{
		1, 0,
		0, 1,
		1, 1,
	}, 3, 2)
	b := mustTensor(t, []float32{0, 0, 1}, 3)
	if err := d.SetWeights([]*tensor.Tensor{w, b}); err != nil {
		t.Fatal(err)
	}
	in := mustTensor(t, []float32{3, 4}, 2)
	out, err := d.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTensor(t, []float32{3, 4, 8}, 3)
	if !tensor.Equal(out, want) {
		t.Fatalf("dense got %v", out.Data())
	}
	sub, err := d.SliceChannels(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	subOut, err := sub.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	wantSub := mustTensor(t, []float32{4, 8}, 2)
	if !tensor.Equal(subOut, wantSub) {
		t.Fatalf("dense slice got %v", subOut.Data())
	}
}

func TestLSTMShapesAndDeterminism(t *testing.T) {
	l := NewLSTM("l", 4, 3)
	l.Init(rand.New(rand.NewSource(1)))
	in := tensor.Rand(rand.New(rand.NewSource(2)), 1, 5, 4)
	out1, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(out1.Shape(), []int{5, 3}) {
		t.Fatalf("lstm out shape %v", out1.Shape())
	}
	out2, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(out1, out2) {
		t.Fatal("lstm forward must be deterministic")
	}
	// Hidden states are bounded by tanh.
	for _, v := range out1.Data() {
		if v < -1 || v > 1 {
			t.Fatalf("hidden state out of range: %v", v)
		}
	}
}

func TestLSTMCausality(t *testing.T) {
	// Changing a late input step must not affect earlier outputs.
	l := NewLSTM("l", 2, 2)
	l.Init(rand.New(rand.NewSource(5)))
	in := tensor.Rand(rand.New(rand.NewSource(6)), 1, 4, 2)
	out1, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := in.Clone()
	in2.Set(99, 3, 0)
	out2, err := l.Forward(in2)
	if err != nil {
		t.Fatal(err)
	}
	early1, _ := out1.SliceDim(0, 0, 3)
	early2, _ := out2.SliceDim(0, 0, 3)
	if !tensor.Equal(early1, early2) {
		t.Fatal("LSTM must be causal")
	}
}

func TestParamBytesAndWeightedRoundtrip(t *testing.T) {
	ops := []Weighted{
		NewConv2D("c", 2, 4, 3, 1, 1),
		NewBatchNorm("b", 4),
		NewDense("d", 8, 4),
		NewLSTM("l", 4, 4),
	}
	rng := rand.New(rand.NewSource(9))
	for _, op := range ops {
		if op.Initialized() {
			t.Fatalf("%s should start uninitialized", op.Name())
		}
		op.Init(rng)
		if !op.Initialized() {
			t.Fatalf("%s should be initialized", op.Name())
		}
		var n int64
		for _, w := range op.Weights() {
			n += int64(w.Len())
		}
		if n != op.ParamCount() {
			t.Fatalf("%s ParamCount %d != stored scalars %d", op.Name(), op.ParamCount(), n)
		}
		if ParamBytes(op) != 4*n {
			t.Fatalf("%s ParamBytes mismatch", op.Name())
		}
		if err := op.SetWeights(op.Weights()); err != nil {
			t.Fatalf("%s SetWeights roundtrip: %v", op.Name(), err)
		}
		if err := op.SetWeights(nil); err == nil {
			t.Fatalf("%s expected SetWeights(nil) error", op.Name())
		}
	}
}

// Property: for any Spatial op, Forward equals ForwardValidH applied to an
// input explicitly padded along height.
func TestSpatialValidHEquivalence(t *testing.T) {
	f := func(seed int64, which uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(3)
		h := 4 + rng.Intn(5)
		w := 4 + rng.Intn(5)
		in := tensor.Rand(rng, 1, c, h, w)

		var op Spatial
		switch which % 4 {
		case 0:
			cv := NewConv2D("c", c, 2, 3, 1+rng.Intn(2), 1)
			cv.Init(rng)
			op = cv
		case 1:
			op = NewMaxPool2D("p", 3, 2, 1)
		case 2:
			bn := NewBatchNorm("b", c)
			bn.Init(rng)
			op = bn
		default:
			op = NewReLU("r")
		}
		full, err := op.Forward(in)
		if err != nil {
			return false
		}
		_, _, p := op.HKernel()
		padded := in
		if p > 0 {
			padded, err = in.PadDim(1, p, p)
			if err != nil {
				return false
			}
			// MaxPool pads with -inf, not zero; emulate by very negative fill.
			if op.Kind() == KindMaxPool {
				d := padded.Data()
				for hh := 0; hh < p; hh++ {
					for ci := 0; ci < c; ci++ {
						for x := 0; x < w; x++ {
							d[(ci*(h+2*p)+hh)*w+x] = float32(math.Inf(-1))
							d[(ci*(h+2*p)+h+2*p-1-hh)*w+x] = float32(math.Inf(-1))
						}
					}
				}
			}
		}
		valid, err := op.ForwardValidH(padded)
		if err != nil {
			return false
		}
		return tensor.Equal(full, valid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindConv.String() != "Conv2D" || Kind(99).String() != "Kind(99)" {
		t.Fatal("Kind.String broken")
	}
}
