package nn

import "sync/atomic"

// ObserveFunc receives a notification immediately before an operator's
// forward executes. The tracing subsystem installs one scoped around a
// Real-mode forward to attribute per-operator kernel events to the
// enclosing compute span.
type ObserveFunc func(op Op)

// observer holds the installed hook; nil means observation is off and the
// per-op cost is a single atomic load.
var observer atomic.Pointer[ObserveFunc]

// SetObserver installs fn as the forward observer (nil disables it) and
// returns a function restoring the previous hook. Like par.SetParallelism,
// the hook is process-wide but intended for scoped use: within one
// simulation environment at most one process executes at a time, so scopes
// installed around a forward never overlap there.
func SetObserver(fn ObserveFunc) (restore func()) {
	var p *ObserveFunc
	if fn != nil {
		p = &fn
	}
	prev := observer.Swap(p)
	return func() { observer.Store(prev) }
}

// Observe notifies the installed observer, if any, that op is about to
// execute. Graph execution paths (monolithic forward, channel subgraphs,
// halo-correct spatial execution) call it once per operator application.
func Observe(op Op) {
	if f := observer.Load(); f != nil {
		(*f)(op)
	}
}
