// Package nn implements the neural-network operators Gillis serves: exact
// fp32 forward computation, FLOP and parameter accounting, and the
// partitioning hooks (halo-correct spatial execution, output-channel
// slicing) that the model-partitioning layer builds on. It replaces the
// MXNet backend used by the original system.
//
// Conventions:
//   - Feature maps are CHW (no batch dimension; Gillis serves single
//     queries).
//   - Dense vectors are rank-1.
//   - Recurrent inputs are [T, features] sequences.
//   - A multiply-accumulate counts as 2 FLOPs.
//   - ParamCount is the number of stored fp32 scalars (what occupies
//     function memory), not the number of trainable parameters.
package nn

import (
	"fmt"
	"math/rand"

	"gillis/internal/tensor"
)

// Kind identifies an operator type.
type Kind int

// Operator kinds.
const (
	KindConv Kind = iota + 1
	KindBatchNorm
	KindReLU
	KindMaxPool
	KindAvgPool
	KindGlobalAvgPool
	KindDense
	KindFlatten
	KindAdd
	KindSoftmax
	KindLSTM
)

var kindNames = map[Kind]string{
	KindConv:          "Conv2D",
	KindBatchNorm:     "BatchNorm",
	KindReLU:          "ReLU",
	KindMaxPool:       "MaxPool2D",
	KindAvgPool:       "AvgPool2D",
	KindGlobalAvgPool: "GlobalAvgPool",
	KindDense:         "Dense",
	KindFlatten:       "Flatten",
	KindAdd:           "Add",
	KindSoftmax:       "Softmax",
	KindLSTM:          "LSTM",
	KindTakeLast:      "TakeLast",
	KindConcat:        "Concat",
	KindDepthwiseConv: "DepthwiseConv2D",
}

// String returns the operator kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is a neural-network operator.
type Op interface {
	// Name returns the operator's instance name (unique within a graph).
	Name() string
	// Kind returns the operator type.
	Kind() Kind
	// OutShape computes the output shape for the given input shapes, or an
	// error if they are invalid for this operator.
	OutShape(in ...[]int) ([]int, error)
	// Forward computes the operator output. Weighted operators must have
	// been initialized (Init or SetWeights) first.
	Forward(in ...*tensor.Tensor) (*tensor.Tensor, error)
	// FLOPs estimates the floating-point operations for the given input
	// shapes.
	FLOPs(in ...[]int) int64
	// ParamCount is the number of stored fp32 scalars.
	ParamCount() int64
	// Init materializes the operator's weights deterministically from rng.
	// It is a no-op for weight-free operators.
	Init(rng *rand.Rand)
	// Initialized reports whether weights are materialized (always true for
	// weight-free operators).
	Initialized() bool
}

// Weighted is implemented by operators that carry weight tensors, for
// serialization.
type Weighted interface {
	Op
	// Weights returns the operator's weight tensors in a fixed order.
	Weights() []*tensor.Tensor
	// SetWeights installs weight tensors previously produced by Weights.
	SetWeights(ws []*tensor.Tensor) error
}

// Spatial is implemented by operators whose output has a local response
// along the height axis, enabling halo-correct partitioned execution.
type Spatial interface {
	Op
	// HKernel returns the (kernel, stride, padding) triple along height.
	// Element-wise operators return (1, 1, 0).
	HKernel() (k, s, p int)
	// ForwardValidH computes the operator without implicit padding along
	// height (width padding, if any, still applies). The caller supplies
	// any required halo/padding rows explicitly.
	ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error)
}

// ChannelSliceable is implemented by operators whose output channels (or
// output features) can be computed independently from a slice of the
// weights, enabling channel-partitioned execution.
type ChannelSliceable interface {
	Op
	// OutChannels returns the number of independent output channels.
	OutChannels() int
	// SliceChannels returns an operator computing only output channels
	// [start, end).
	SliceChannels(start, end int) (Op, error)
}

// ParamBytes returns the weight footprint of an op in bytes.
func ParamBytes(op Op) int64 { return op.ParamCount() * 4 }

func checkRank(op string, in []int, want int) error {
	if len(in) != want {
		return fmt.Errorf("nn: %s expects rank-%d input, got shape %v", op, want, in)
	}
	return nil
}

func checkOneInput(op string, n int) error {
	if n != 1 {
		return fmt.Errorf("nn: %s expects exactly 1 input, got %d", op, n)
	}
	return nil
}

func prod(s []int) int64 {
	p := int64(1)
	for _, d := range s {
		p *= int64(d)
	}
	return p
}

// convOutDim returns the output size of a strided window op along one axis.
func convOutDim(in, k, s, p int) int {
	return (in+2*p-k)/s + 1
}
