package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gillis/internal/par"
	"gillis/internal/tensor"
)

// MaxPool2D is a 2-D max pooling operator with a square window. Padding
// positions act as -inf, matching standard framework semantics.
type MaxPool2D struct {
	OpName string
	Kernel int
	Stride int
	Pad    int
}

var _ Spatial = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a max-pooling operator.
func NewMaxPool2D(name string, kernel, stride, pad int) *MaxPool2D {
	return &MaxPool2D{OpName: name, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name implements Op.
func (m *MaxPool2D) Name() string { return m.OpName }

// Kind implements Op.
func (m *MaxPool2D) Kind() Kind { return KindMaxPool }

// OutShape implements Op.
func (m *MaxPool2D) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("MaxPool2D", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("MaxPool2D", s, 3); err != nil {
		return nil, err
	}
	oh := convOutDim(s[1], m.Kernel, m.Stride, m.Pad)
	ow := convOutDim(s[2], m.Kernel, m.Stride, m.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: MaxPool2D %q output is empty for input %v", m.OpName, s)
	}
	return []int{s[0], oh, ow}, nil
}

// FLOPs implements Op (one compare per window element).
func (m *MaxPool2D) FLOPs(in ...[]int) int64 {
	out, err := m.OutShape(in...)
	if err != nil {
		return 0
	}
	return prod(out) * int64(m.Kernel*m.Kernel)
}

// ParamCount implements Op.
func (m *MaxPool2D) ParamCount() int64 { return 0 }

// Init implements Op.
func (m *MaxPool2D) Init(*rand.Rand) {}

// Initialized implements Op.
func (m *MaxPool2D) Initialized() bool { return true }

// Forward implements Op.
func (m *MaxPool2D) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return m.pool(in, true)
}

// HKernel implements Spatial.
func (m *MaxPool2D) HKernel() (k, s, p int) { return m.Kernel, m.Stride, m.Pad }

// ForwardValidH implements Spatial.
func (m *MaxPool2D) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return m.pool(in, false)
}

func (m *MaxPool2D) pool(in []*tensor.Tensor, padH bool) (*tensor.Tensor, error) {
	if err := checkOneInput("MaxPool2D", len(in)); err != nil {
		return nil, err
	}
	x := in[0]
	if x.Rank() != 3 {
		return nil, fmt.Errorf("nn: MaxPool2D %q bad input %v", m.OpName, x.Shape())
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	padTop := 0
	if padH {
		padTop = m.Pad
	}
	// Output size over the (virtually) padded extent.
	hExt := h + 2*padTop
	wExt := w + 2*m.Pad
	oh := (hExt-m.Kernel)/m.Stride + 1
	ow := (wExt-m.Kernel)/m.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: MaxPool2D %q empty output for input %v", m.OpName, x.Shape())
	}
	out := tensor.New(c, oh, ow)
	xd, od := x.Data(), out.Data()
	negInf := float32(math.Inf(-1))
	// Channels are independent: parallelizing over them preserves bitwise
	// outputs at every parallelism level.
	par.For(c, oh*ow*m.Kernel*m.Kernel, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*m.Stride - padTop
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*m.Stride - m.Pad
					best := negInf
					for ky := 0; ky < m.Kernel; ky++ {
						y := iy0 + ky
						if y < 0 || y >= h {
							continue
						}
						row := (ci*h + y) * w
						for kx := 0; kx < m.Kernel; kx++ {
							xx := ix0 + kx
							if xx < 0 || xx >= w {
								continue
							}
							if v := xd[row+xx]; v > best {
								best = v
							}
						}
					}
					od[(ci*oh+oy)*ow+ox] = best
				}
			}
		}
	})
	return out, nil
}

// AvgPool2D is a 2-D average pooling operator without padding support (the
// benchmark models never average-pool with padding).
type AvgPool2D struct {
	OpName string
	Kernel int
	Stride int
}

var _ Spatial = (*AvgPool2D)(nil)

// NewAvgPool2D constructs an average-pooling operator.
func NewAvgPool2D(name string, kernel, stride int) *AvgPool2D {
	return &AvgPool2D{OpName: name, Kernel: kernel, Stride: stride}
}

// Name implements Op.
func (a *AvgPool2D) Name() string { return a.OpName }

// Kind implements Op.
func (a *AvgPool2D) Kind() Kind { return KindAvgPool }

// OutShape implements Op.
func (a *AvgPool2D) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("AvgPool2D", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("AvgPool2D", s, 3); err != nil {
		return nil, err
	}
	oh := convOutDim(s[1], a.Kernel, a.Stride, 0)
	ow := convOutDim(s[2], a.Kernel, a.Stride, 0)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: AvgPool2D %q output is empty for input %v", a.OpName, s)
	}
	return []int{s[0], oh, ow}, nil
}

// FLOPs implements Op.
func (a *AvgPool2D) FLOPs(in ...[]int) int64 {
	out, err := a.OutShape(in...)
	if err != nil {
		return 0
	}
	return prod(out) * int64(a.Kernel*a.Kernel)
}

// ParamCount implements Op.
func (a *AvgPool2D) ParamCount() int64 { return 0 }

// Init implements Op.
func (a *AvgPool2D) Init(*rand.Rand) {}

// Initialized implements Op.
func (a *AvgPool2D) Initialized() bool { return true }

// Forward implements Op.
func (a *AvgPool2D) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	return a.ForwardValidH(in...)
}

// HKernel implements Spatial.
func (a *AvgPool2D) HKernel() (k, s, p int) { return a.Kernel, a.Stride, 0 }

// ForwardValidH implements Spatial (identical to Forward: no padding).
func (a *AvgPool2D) ForwardValidH(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("AvgPool2D", len(in)); err != nil {
		return nil, err
	}
	x := in[0]
	if x.Rank() != 3 {
		return nil, fmt.Errorf("nn: AvgPool2D %q bad input %v", a.OpName, x.Shape())
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh := (h-a.Kernel)/a.Stride + 1
	ow := (w-a.Kernel)/a.Stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: AvgPool2D %q empty output for input %v", a.OpName, x.Shape())
	}
	out := tensor.New(c, oh, ow)
	xd, od := x.Data(), out.Data()
	norm := 1 / float32(a.Kernel*a.Kernel)
	// Channels are independent: parallelizing over them preserves bitwise
	// outputs at every parallelism level.
	par.For(c, oh*ow*a.Kernel*a.Kernel, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for ky := 0; ky < a.Kernel; ky++ {
						row := (ci*h + oy*a.Stride + ky) * w
						for kx := 0; kx < a.Kernel; kx++ {
							acc += xd[row+ox*a.Stride+kx]
						}
					}
					od[(ci*oh+oy)*ow+ox] = acc * norm
				}
			}
		}
	})
	return out, nil
}

// GlobalAvgPool averages each channel's full feature map, producing a rank-1
// tensor of per-channel means.
type GlobalAvgPool struct {
	OpName string
}

var _ Op = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool constructs a global average pooling operator.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{OpName: name} }

// Name implements Op.
func (g *GlobalAvgPool) Name() string { return g.OpName }

// Kind implements Op.
func (g *GlobalAvgPool) Kind() Kind { return KindGlobalAvgPool }

// OutShape implements Op.
func (g *GlobalAvgPool) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("GlobalAvgPool", len(in)); err != nil {
		return nil, err
	}
	s := in[0]
	if err := checkRank("GlobalAvgPool", s, 3); err != nil {
		return nil, err
	}
	return []int{s[0]}, nil
}

// FLOPs implements Op.
func (g *GlobalAvgPool) FLOPs(in ...[]int) int64 {
	if len(in) != 1 || len(in[0]) != 3 {
		return 0
	}
	return prod(in[0])
}

// ParamCount implements Op.
func (g *GlobalAvgPool) ParamCount() int64 { return 0 }

// Init implements Op.
func (g *GlobalAvgPool) Init(*rand.Rand) {}

// Initialized implements Op.
func (g *GlobalAvgPool) Initialized() bool { return true }

// Forward implements Op.
func (g *GlobalAvgPool) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("GlobalAvgPool", len(in)); err != nil {
		return nil, err
	}
	x := in[0]
	if x.Rank() != 3 {
		return nil, fmt.Errorf("nn: GlobalAvgPool %q bad input %v", g.OpName, x.Shape())
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(c)
	xd, od := x.Data(), out.Data()
	norm := 1 / float32(h*w)
	// Per-channel means are independent reductions; the per-channel
	// accumulation order is unchanged under parallelism.
	par.For(c, h*w, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			var acc float32
			for i := ci * h * w; i < (ci+1)*h*w; i++ {
				acc += xd[i]
			}
			od[ci] = acc * norm
		}
	})
	return out, nil
}
