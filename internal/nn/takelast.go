package nn

import (
	"fmt"
	"math/rand"

	"gillis/internal/tensor"
)

// KindTakeLast identifies the TakeLast operator.
const KindTakeLast Kind = 100

// TakeLast extracts the final time step of a [T, H] sequence as a rank-1
// tensor of size H. It bridges recurrent stacks to dense classification
// heads.
type TakeLast struct {
	OpName string
}

var _ Op = (*TakeLast)(nil)

// NewTakeLast constructs a TakeLast operator.
func NewTakeLast(name string) *TakeLast { return &TakeLast{OpName: name} }

// Name implements Op.
func (l *TakeLast) Name() string { return l.OpName }

// Kind implements Op.
func (l *TakeLast) Kind() Kind { return KindTakeLast }

// OutShape implements Op.
func (l *TakeLast) OutShape(in ...[]int) ([]int, error) {
	if err := checkOneInput("TakeLast", len(in)); err != nil {
		return nil, err
	}
	if err := checkRank("TakeLast", in[0], 2); err != nil {
		return nil, err
	}
	return []int{in[0][1]}, nil
}

// FLOPs implements Op.
func (l *TakeLast) FLOPs(in ...[]int) int64 { return 0 }

// ParamCount implements Op.
func (l *TakeLast) ParamCount() int64 { return 0 }

// Init implements Op.
func (l *TakeLast) Init(*rand.Rand) {}

// Initialized implements Op.
func (l *TakeLast) Initialized() bool { return true }

// Forward implements Op.
func (l *TakeLast) Forward(in ...*tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkOneInput("TakeLast", len(in)); err != nil {
		return nil, err
	}
	x := in[0]
	if x.Rank() != 2 {
		return nil, fmt.Errorf("nn: TakeLast %q expects [T,H] input, got %v", l.OpName, x.Shape())
	}
	row, err := x.SliceDim(0, x.Dim(0)-1, x.Dim(0))
	if err != nil {
		return nil, err
	}
	return row.Reshape(x.Dim(1))
}
