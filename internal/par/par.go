// Package par is the kernel execution engine: a shared worker pool with a
// chunked parallel-for primitive, and a scratch-buffer arena for zero-alloc
// reuse of kernel temporaries (im2col matrices, padded inputs, LSTM gate
// buffers).
//
// Determinism contract: For splits an index range into contiguous chunks
// and runs the caller's body over disjoint sub-ranges. Callers must only
// parallelize over *independent output elements* — never over a reduction
// dimension — so every output element is computed by exactly one goroutine
// with exactly the accumulation order of the serial loop. Under that
// discipline the result is bitwise identical at every parallelism level,
// which is the invariant Gillis's partitioned-vs-monolithic equality tests
// rely on.
//
// Scheduling: chunks are claimed from an atomic counter, so load imbalance
// between chunks (e.g. ragged tails) self-corrects. Below a minimum work
// threshold For runs the body serially inline, so tiny tensors never pay
// goroutine dispatch or synchronization overhead.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minParallelWork is the minimum estimated scalar-op count of a loop before
// For considers spawning workers. Dispatching to the pool costs on the order
// of a few microseconds; 32k float ops take roughly that long on one core,
// so smaller loops run inline.
const minParallelWork = 32 * 1024

// minChunkWork is the minimum estimated scalar-op count per claimed chunk,
// bounding the number of atomic claims per For call.
const minChunkWork = 8 * 1024

// chunksPerWorker is the target number of chunks each worker claims, giving
// the atomic-counter scheduler room to rebalance uneven chunks.
const chunksPerWorker = 4

// limit holds the configured parallelism cap; 0 means "use GOMAXPROCS".
var limit atomic.Int32

// Parallelism returns the current worker cap for For: the value installed by
// SetParallelism, or GOMAXPROCS when unset.
func Parallelism() int {
	if n := limit.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism caps For at n workers (n <= 0 restores the GOMAXPROCS
// default) and returns a function restoring the previous cap. The cap is
// process-wide and only affects scheduling, never results: kernels built on
// For are bitwise deterministic at every parallelism level, so concurrent
// scopes with different caps perturb timing only.
func SetParallelism(n int) (restore func()) {
	if n < 0 {
		n = 0
	}
	prev := limit.Swap(int32(n))
	return func() { limit.Store(prev) }
}

// pool is the lazily started process-wide worker pool. Workers block on the
// task channel between For calls, so steady-state kernel execution spawns no
// goroutines.
var pool struct {
	once  sync.Once
	tasks chan func()
}

func startPool() {
	pool.tasks = make(chan func(), 4*runtime.GOMAXPROCS(0))
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		//gillis:allow goleak pool workers are deliberately detached for the process lifetime; For joins each submitted task through its own WaitGroup
		go func() {
			for task := range pool.tasks {
				task()
			}
		}()
	}
}

// submit hands fn to an idle pool worker, or runs it on a fresh goroutine if
// every worker is busy (e.g. nested For calls); it never blocks, so nesting
// cannot deadlock the pool.
func submit(fn func()) {
	pool.once.Do(startPool)
	select {
	case pool.tasks <- fn:
	default:
		//gillis:allow goleak fn is For's task closure, which signals a WaitGroup For waits on; submit cannot see that contract across the call boundary
		go fn()
	}
}

// For runs body over the index range [0, n), split into contiguous disjoint
// chunks. itemCost is the caller's estimate of scalar operations per index;
// when n*itemCost is below the parallel threshold, or the parallelism cap is
// 1, the body runs inline as body(0, n). For returns only after every index
// has been processed.
//
// The body may be called concurrently from multiple goroutines with disjoint
// [lo, hi) ranges; it must not write outside the output elements owned by
// its range.
func For(n, itemCost int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if itemCost < 1 {
		itemCost = 1
	}
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 || n*itemCost < minParallelWork {
		body(0, n)
		return
	}
	chunk := n / (p * chunksPerWorker)
	if min := (minChunkWork + itemCost - 1) / itemCost; chunk < min {
		chunk = min
	}
	if chunk < 1 {
		chunk = 1
	}

	var next atomic.Int64
	run := func() {
		for {
			hi := int(next.Add(int64(chunk)))
			lo := hi - chunk
			if lo >= n {
				return
			}
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	// One shared task closure for all workers: submitting the same func
	// value p-1 times allocates once, not per worker, which matters for
	// kernels that dispatch many small Fors per forward (LSTM timesteps).
	var wg sync.WaitGroup
	wg.Add(p - 1)
	task := func() {
		defer wg.Done()
		run()
	}
	for i := 1; i < p; i++ {
		submit(task)
	}
	run()
	wg.Wait()
}
