package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// forceParallel raises the cap above GOMAXPROCS so the parallel path is
// exercised even on single-core CI machines.
func forceParallel(t *testing.T, n int) {
	t.Helper()
	restore := SetParallelism(n)
	t.Cleanup(restore)
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	forceParallel(t, 7)
	for _, n := range []int{1, 2, 3, 13, 64, 997, 4096} {
		hits := make([]int32, n)
		For(n, minParallelWork, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad range [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForSmallWorkRunsInline(t *testing.T) {
	forceParallel(t, 8)
	calls := 0
	For(100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("inline fallback got [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("inline fallback called body %d times", calls)
	}
}

func TestForParallelismOneRunsInline(t *testing.T) {
	forceParallel(t, 1)
	calls := 0
	For(1000, minParallelWork, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("parallelism 1 called body %d times, want 1", calls)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body must not run for n <= 0")
	}
}

func TestForNestedDoesNotDeadlock(t *testing.T) {
	forceParallel(t, 4)
	var total atomic.Int64
	For(8, minParallelWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(8, minParallelWork, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if total.Load() != 64 {
		t.Fatalf("nested For covered %d inner indices, want 64", total.Load())
	}
}

func TestForConcurrentCallers(t *testing.T) {
	forceParallel(t, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := make([]int64, 256)
			For(256, minParallelWork, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sum[i] = int64(i)
				}
			})
			for i, v := range sum {
				if v != int64(i) {
					t.Errorf("lost write at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSetParallelismRestore(t *testing.T) {
	base := Parallelism()
	restore := SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	restore()
	if got := Parallelism(); got != base {
		t.Fatalf("restore: Parallelism() = %d, want %d", got, base)
	}
	// n <= 0 restores the GOMAXPROCS default.
	restore = SetParallelism(-1)
	defer restore()
	if Parallelism() < 1 {
		t.Fatal("Parallelism() must be at least 1")
	}
}

func TestScratchBufferReuse(t *testing.T) {
	b := GetF32(1024)
	if len(*b) != 1024 {
		t.Fatalf("GetF32 len = %d, want 1024", len(*b))
	}
	(*b)[0] = 42
	PutF32(b)
	// A smaller request must reuse capacity, not reallocate.
	c := GetF32(16)
	if len(*c) != 16 {
		t.Fatalf("GetF32 len = %d, want 16", len(*c))
	}
	if cap(*c) < 1024 {
		t.Fatalf("scratch buffer was not reused: cap %d", cap(*c))
	}
	PutF32(c)
}
