package par

import "sync"

// The scratch arena recycles float32 buffers across kernel invocations so
// hot forwards allocate nothing beyond their output tensor. sync.Pool keeps
// per-P free lists, so concurrent forwards (one per simulated function
// instance, or one per serving goroutine) each reuse their own warm buffers
// without contention.
//
// Buffers are returned with undefined contents; callers that need zeroed
// storage (e.g. padded-input staging) must clear the region themselves.
var f32Pool = sync.Pool{New: func() any { return new([]float32) }}

// GetF32 returns a length-n float32 scratch buffer with undefined contents.
// The *[]float32 handle must be released with PutF32 when the kernel is
// done; the slice must not be retained afterwards.
func GetF32(n int) *[]float32 {
	b := f32Pool.Get().(*[]float32)
	if cap(*b) < n {
		*b = make([]float32, n)
	}
	*b = (*b)[:n]
	return b
}

// PutF32 returns a buffer obtained from GetF32 to the arena.
func PutF32(b *[]float32) {
	f32Pool.Put(b)
}
