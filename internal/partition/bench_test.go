package partition

import (
	"testing"

	"gillis/internal/models"
)

func benchUnits(b *testing.B, name string) []*Unit {
	b.Helper()
	g, err := models.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	units, err := Linearize(g)
	if err != nil {
		b.Fatal(err)
	}
	return units
}

func BenchmarkLinearizeResNet50(b *testing.B) {
	g, err := models.ResNet(50)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Linearize(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpatialSlices16(b *testing.B) {
	units := benchUnits(b, "vgg16")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpatialSlices(units[:6], 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupExtentSpatial(b *testing.B) {
	units := benchUnits(b, "wrn34-5")
	opt := Option{Dim: DimSpatial, Parts: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupExtent(units, 0, 5, opt); err != nil {
			b.Fatal(err)
		}
	}
}
