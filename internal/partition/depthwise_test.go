package partition

import (
	"math/rand"
	"testing"

	"gillis/internal/graph"
	"gillis/internal/models"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// dwBlock builds a depthwise-separable block: dw3x3 + bn + relu + pw1x1 +
// bn + relu.
func dwBlock(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("dsblock", []int{6, 20, 20})
	g.MustAdd(nn.NewDepthwiseConv2D("dw", 6, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("dw_bn", 6))
	g.MustAdd(nn.NewReLU("dw_relu"))
	g.MustAdd(nn.NewConv2D("pw", 6, 10, 1, 1, 0))
	g.MustAdd(nn.NewBatchNorm("pw_bn", 10))
	g.MustAdd(nn.NewReLU("pw_relu"))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Init(21)
	return g
}

func TestDepthwiseUnitsCapabilities(t *testing.T) {
	units := linearized(t, dwBlock(t))
	if len(units) != 2 {
		t.Fatalf("expected 2 units (dw+bn+relu, pw+bn+relu), got %d", len(units))
	}
	for i, u := range units {
		if !u.Spatial || !u.Channel {
			t.Errorf("unit %d should be spatial+channel: %v", i, u)
		}
	}
}

func TestDepthwiseSpatialExactness(t *testing.T) {
	g := dwBlock(t)
	units := linearized(t, g)
	x := tensor.Rand(rand.New(rand.NewSource(22)), 1, 6, 20, 20)
	want, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 4} {
		got, err := ExecSpatial(units, parts, x)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !tensor.Equal(want, got) {
			t.Fatalf("parts=%d: depthwise spatial partition mismatch", parts)
		}
	}
}

func TestDepthwiseChannelExactness(t *testing.T) {
	g := dwBlock(t)
	units := linearized(t, g)
	x := tensor.Rand(rand.New(rand.NewSource(23)), 1, 6, 20, 20)
	// The depthwise unit (unit 0): channel partition must be exact even
	// though each slice extracts its own input channels.
	want, err := units[0].Sub.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 3} {
		got, err := ExecChannel(units[0], parts, x)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !tensor.Equal(want, got) {
			t.Fatalf("parts=%d: depthwise channel partition mismatch", parts)
		}
	}
	// Channel slices hold proportionally fewer weights.
	slices, err := ChannelSlices(units[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, cs := range slices {
		total += cs.ParamBytes
	}
	if total != units[0].ParamBytes {
		t.Fatalf("slice weights %d should sum to unit weights %d", total, units[0].ParamBytes)
	}
}

func TestMobileNetMiniLinearizesAndPartitions(t *testing.T) {
	g, err := models.ByName("mobilenet-mini")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	units := linearized(t, g)
	// Stem + 6 blocks × 2 convs + gap + fc + softmax ≈ 16 units.
	if len(units) < 14 || len(units) > 18 {
		t.Fatalf("unexpected unit count %d", len(units))
	}
	dwUnits := 0
	for _, u := range units {
		if u.Sub.Node(0).Op.Kind() == nn.KindDepthwiseConv {
			dwUnits++
			if !u.Channel || !u.Spatial {
				t.Errorf("depthwise unit %s should be spatial+channel", u.Name)
			}
		}
	}
	if dwUnits != 6 {
		t.Fatalf("expected 6 depthwise units, got %d", dwUnits)
	}
	out, err := g.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1000 {
		t.Fatalf("output shape %v", out)
	}
}
