package partition_test

import (
	"fmt"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/partition"
	"gillis/internal/tensor"
)

// ExampleLinearize shows how a model with a residual branch collapses into
// the linear unit chain Gillis partitions.
func ExampleLinearize() {
	g := graph.New("example", []int{3, 16, 16})
	stem := g.MustAdd(nn.NewConv2D("stem", 3, 8, 3, 1, 1))
	branch := g.MustAdd(nn.NewConv2D("branch", 8, 8, 3, 1, 1), stem)
	g.MustAdd(nn.NewAdd("add"), branch, stem)
	g.MustAdd(nn.NewReLU("relu"))

	units, err := partition.Linearize(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, u := range units {
		fmt.Printf("unit %d: %s (%d ops, spatial=%v)\n", u.Index, u.Name, u.Sub.Len(), u.Spatial)
	}
	// Output:
	// unit 0: stem (1 ops, spatial=true)
	// unit 1: add (3 ops, spatial=true)
}

// ExampleExecSpatial demonstrates bit-exact spatially partitioned
// execution: the partitioned result equals monolithic execution.
func ExampleExecSpatial() {
	g := graph.New("example", []int{1, 8, 8})
	g.MustAdd(nn.NewConv2D("conv", 1, 1, 3, 1, 1))
	g.Init(1)
	units, err := partition.Linearize(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	x := tensor.Full(1, 1, 8, 8)
	whole, _ := partition.ForwardChain(units, x)
	split, _ := partition.ExecSpatial(units, 4, x)
	fmt.Println("bitwise equal:", tensor.Equal(whole, split))
	// Output:
	// bitwise equal: true
}

// ExampleFeasibleOptions lists the parallelization options tensor-dependency
// analysis admits for a convolution unit.
func ExampleFeasibleOptions() {
	g := graph.New("example", []int{3, 32, 32})
	g.MustAdd(nn.NewConv2D("conv", 3, 16, 3, 1, 1))
	g.MustAdd(nn.NewReLU("relu"))
	units, _ := partition.Linearize(g)
	opts, _ := partition.FeasibleOptions(units, 0, 0, []int{2, 4})
	for _, o := range opts {
		fmt.Println(o)
	}
	// Output:
	// whole
	// spatial×2
	// spatial×4
	// channel×2
	// channel×4
}
