package partition

import (
	"fmt"
	"math"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// ExecSpatialPart computes one spatial partition of a layer group. slab must
// contain rows slice.InRows of the group input (full channels and width).
// The result contains rows slice.OutRows of the group output, bitwise equal
// to the corresponding rows of a monolithic run: interior halo rows come
// from the slab and boundary overhang is filled with the op's padding value
// (0, or -inf for max pooling), exactly as implicit padding would.
func ExecSpatialPart(units []*Unit, slice PartSlice, slab *tensor.Tensor) (*tensor.Tensor, error) {
	if len(units) != len(slice.units) {
		return nil, fmt.Errorf("partition: slice built for %d units, got %d", len(slice.units), len(units))
	}
	cur := slab
	curRange := slice.InRows
	for ui, u := range units {
		us := slice.units[ui]
		if us.inRows != curRange {
			return nil, fmt.Errorf("partition: unit %d input rows %v, slice expects %v", ui, curRange, us.inRows)
		}
		out, err := execUnitPart(u, us, cur)
		if err != nil {
			return nil, err
		}
		cur = out
		curRange = us.nodes[u.Sub.OutputID()]
	}
	return cur, nil
}

// execUnitPart runs one unit's subgraph over the partition's row ranges.
func execUnitPart(u *Unit, us unitSlice, slab *tensor.Tensor) (*tensor.Tensor, error) {
	nodes := u.Sub.Nodes()
	shapes := u.NodeShapes()
	vals := make([]*tensor.Tensor, len(nodes))
	for _, node := range nodes {
		outRange := us.nodes[node.ID]
		if outRange.Len() <= 0 {
			continue // dead node for this partition (cannot happen in practice)
		}
		k, s, p, err := hksp(node.Op)
		if err != nil {
			return nil, err
		}
		req := inRangeForOut(outRange, k, s, p)
		ins := make([]*tensor.Tensor, len(node.Inputs))
		for i, in := range node.Inputs {
			var src *tensor.Tensor
			var srcRange RowRange
			var srcH int
			if in == graph.InputID {
				src, srcRange, srcH = slab, us.inRows, heightOf(u.InShape)
			} else {
				src, srcRange, srcH = vals[in], us.nodes[in], shapes[in][1]
			}
			padded, err := windowSlab(src, srcRange, srcH, req, padValue(node.Op))
			if err != nil {
				return nil, fmt.Errorf("partition: unit %d node %s: %w", u.Index, node.Op.Name(), err)
			}
			ins[i] = padded
		}
		sp := node.Op.(nn.Spatial) // hksp already verified
		nn.Observe(node.Op)
		out, err := sp.ForwardValidH(ins...)
		if err != nil {
			return nil, fmt.Errorf("partition: unit %d node %s: %w", u.Index, node.Op.Name(), err)
		}
		if out.Dim(1) != outRange.Len() {
			return nil, fmt.Errorf("partition: unit %d node %s produced %d rows, want %d",
				u.Index, node.Op.Name(), out.Dim(1), outRange.Len())
		}
		vals[node.ID] = out
	}
	return vals[u.Sub.OutputID()], nil
}

// windowSlab extracts rows req (which may overhang [0, srcH)) from a slab
// covering srcRange, filling overhang with fill.
func windowSlab(src *tensor.Tensor, srcRange RowRange, srcH int, req RowRange, fill float32) (*tensor.Tensor, error) {
	inside := req.clip(srcH)
	if inside.Lo < srcRange.Lo || inside.Hi > srcRange.Hi {
		return nil, fmt.Errorf("need rows %v but slab covers %v (h=%d)", req, srcRange, srcH)
	}
	body, err := src.SliceDim(1, inside.Lo-srcRange.Lo, inside.Hi-srcRange.Lo)
	if err != nil {
		return nil, err
	}
	before := inside.Lo - req.Lo
	after := req.Hi - inside.Hi
	if before == 0 && after == 0 {
		return body, nil
	}
	padded, err := body.PadDim(1, before, after)
	if err != nil {
		return nil, err
	}
	if fill != 0 {
		fillRows(padded, 0, before, fill)
		fillRows(padded, padded.Dim(1)-after, padded.Dim(1), fill)
	}
	return padded, nil
}

// fillRows sets rows [lo, hi) of a CHW tensor to v.
func fillRows(t *tensor.Tensor, lo, hi int, v float32) {
	c, h, w := t.Dim(0), t.Dim(1), t.Dim(2)
	d := t.Data()
	for ci := 0; ci < c; ci++ {
		for y := lo; y < hi; y++ {
			row := (ci*h + y) * w
			for x := 0; x < w; x++ {
				d[row+x] = v
			}
		}
	}
}

// padValue returns the implicit padding fill of an op (-inf for max
// pooling, zero otherwise).
func padValue(op nn.Op) float32 {
	if op.Kind() == nn.KindMaxPool {
		return float32(math.Inf(-1))
	}
	return 0
}

// ExecSpatial partitions the group `parts` ways, executes every partition,
// and reassembles the full output. It is the in-process reference for what
// master and workers do cooperatively in the serving runtime.
func ExecSpatial(units []*Unit, parts int, x *tensor.Tensor) (*tensor.Tensor, error) {
	slices, err := SpatialSlices(units, parts)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(slices))
	for i, ps := range slices {
		slab, err := x.SliceDim(1, ps.InRows.Lo, ps.InRows.Hi)
		if err != nil {
			return nil, err
		}
		out, err := ExecSpatialPart(units, ps, slab)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return tensor.ConcatDim(1, outs...)
}

// ExecChannel partitions a single unit `parts` ways along output channels,
// executes every slice on the full input, and reassembles.
func ExecChannel(u *Unit, parts int, x *tensor.Tensor) (*tensor.Tensor, error) {
	slices, err := ChannelSlices(u, parts)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, len(slices))
	for i, cs := range slices {
		sub, err := ChannelSubgraph(u, cs.Channels.Lo, cs.Channels.Hi)
		if err != nil {
			return nil, err
		}
		out, err := sub.Forward(x)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return tensor.ConcatDim(0, outs...)
}

// InputSlab extracts the group-input rows a spatial partition needs.
func InputSlab(x *tensor.Tensor, ps PartSlice) (*tensor.Tensor, error) {
	return x.SliceDim(1, ps.InRows.Lo, ps.InRows.Hi)
}
