package partition

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadPlan hardens the plan reader: arbitrary JSON must either load
// into a structurally sane plan or fail cleanly.
func FuzzLoadPlan(f *testing.F) {
	good := &Plan{Model: "m", Groups: []GroupPlan{
		{First: 0, Last: 2, Option: Option{Dim: DimSpatial, Parts: 4}, OnMaster: true},
	}}
	var buf bytes.Buffer
	if err := good.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"model":"x","groups":[]}`)
	f.Add(`{"model":"x","groups":[{"dim":"channel","parts":-4}]}`)
	f.Add(`not json at all`)
	f.Add(`{"groups":[{"first":9e9}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		p, err := LoadPlan(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, gp := range p.Groups {
			switch gp.Option.Dim {
			case DimNone, DimSpatial, DimChannel:
			default:
				t.Fatalf("loaded plan has invalid dim %v", gp.Option.Dim)
			}
		}
		// A loaded plan must survive re-serialization.
		var out bytes.Buffer
		if err := p.Save(&out); err != nil {
			t.Fatalf("loaded plan failed to save: %v", err)
		}
	})
}
