package partition

import (
	"math/rand"
	"testing"

	"gillis/internal/graph"
	"gillis/internal/models"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// The paper's Fig. 5 shows branch merging for both residual blocks and
// Inception modules; these tests cover the Inception side.

func TestLinearizeMiniInception(t *testing.T) {
	g, err := models.MiniInception()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	units, err := Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	// Stem conv(+relu), stem pool, 2 inception modules, pool3, inception,
	// gap, fc(+softmax? softmax stays separate), softmax.
	if len(units) < 8 || len(units) > 10 {
		for _, u := range units {
			t.Log(u)
		}
		t.Fatalf("unexpected unit count %d", len(units))
	}
	// Each inception module must collapse into one spatial unit.
	inceptionUnits := 0
	for _, u := range units {
		if u.Sub.Len() >= 10 { // 4 branches ≈ 12 ops
			inceptionUnits++
			if !u.Spatial {
				t.Errorf("inception unit %s must be spatial", u.Name)
			}
			if u.Channel {
				t.Errorf("inception unit %s must not be channel-partitionable", u.Name)
			}
		}
	}
	if inceptionUnits != 3 {
		t.Fatalf("expected 3 merged inception modules, got %d", inceptionUnits)
	}
}

// A small Inception module must execute spatially partitioned with bitwise
// exactness (concat + multi-branch halos).
func TestInceptionSpatialExactness(t *testing.T) {
	g := graph.New("mini-incep", []int{4, 20, 20})
	in := g.MustAdd(nn.NewConv2D("stem", 4, 6, 3, 1, 1))
	b1 := g.MustAdd(nn.NewConv2D("b1", 6, 4, 1, 1, 0), in)
	b3 := g.MustAdd(nn.NewConv2D("b3r", 6, 3, 1, 1, 0), in)
	b3 = g.MustAdd(nn.NewConv2D("b3", 3, 4, 3, 1, 1), b3)
	b5 := g.MustAdd(nn.NewConv2D("b5r", 6, 3, 1, 1, 0), in)
	b5 = g.MustAdd(nn.NewConv2D("b5", 3, 4, 5, 1, 2), b5)
	bp := g.MustAdd(nn.NewMaxPool2D("bpool", 3, 1, 1), in)
	bp = g.MustAdd(nn.NewConv2D("bp", 6, 4, 1, 1, 0), bp)
	g.MustAdd(nn.NewConcat("cat"), b1, b3, b5, bp)
	g.MustAdd(nn.NewReLU("relu"))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Init(11)
	units, err := Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Rand(rand.New(rand.NewSource(13)), 1, 4, 20, 20)
	want, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 5} {
		got, err := ExecSpatial(units, parts, x)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !tensor.Equal(want, got) {
			t.Fatalf("parts=%d: inception partition mismatch", parts)
		}
	}
}

func TestConcatOpBasics(t *testing.T) {
	c := nn.NewConcat("cat")
	a := tensor.Full(1, 2, 3, 3)
	b := tensor.Full(2, 1, 3, 3)
	out, err := c.Forward(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEqual(out.Shape(), []int{3, 3, 3}) {
		t.Fatalf("shape %v", out.Shape())
	}
	if out.At(0, 0, 0) != 1 || out.At(2, 0, 0) != 2 {
		t.Fatal("concat values wrong")
	}
	if _, err := c.Forward(a); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := c.OutShape([]int{1, 3, 3}, []int{1, 4, 4}); err == nil {
		t.Fatal("expected spatial mismatch error")
	}
}
