package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gillis/internal/graph"
	"gillis/internal/models"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// tinyCNN builds a small conv net with a residual block, exercising every
// spatial op kind: stem conv + bn + relu, maxpool, residual block with
// downsample, avgpool.
func tinyCNN(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("tinycnn", []int{3, 24, 24})
	g.MustAdd(nn.NewConv2D("stem", 3, 8, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("stem_bn", 8))
	g.MustAdd(nn.NewReLU("stem_relu"))
	pool := g.MustAdd(nn.NewMaxPool2D("pool", 3, 2, 1))
	c1 := g.MustAdd(nn.NewConv2D("b_conv1", 8, 8, 3, 1, 1), pool)
	b1 := g.MustAdd(nn.NewBatchNorm("b_bn1", 8), c1)
	r1 := g.MustAdd(nn.NewReLU("b_relu1"), b1)
	c2 := g.MustAdd(nn.NewConv2D("b_conv2", 8, 8, 3, 1, 1), r1)
	b2 := g.MustAdd(nn.NewBatchNorm("b_bn2", 8), c2)
	add := g.MustAdd(nn.NewAdd("b_add"), b2, pool)
	g.MustAdd(nn.NewReLU("b_relu2"), add)
	g.MustAdd(nn.NewAvgPool2D("avg", 2, 2))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func linearized(t *testing.T, g *graph.Graph) []*Unit {
	t.Helper()
	units, err := Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func TestLinearizeTinyCNN(t *testing.T) {
	units := linearized(t, tinyCNN(t))
	// Expected units after merging: [stem conv+bn+relu], [pool],
	// [residual block + trailing relu], [avgpool].
	if len(units) != 4 {
		for _, u := range units {
			t.Log(u)
		}
		t.Fatalf("got %d units, want 4", len(units))
	}
	if !units[0].Channel || !units[0].Spatial {
		t.Errorf("stem unit should be spatial+channel: %v", units[0])
	}
	if units[1].Channel {
		t.Errorf("pool unit must not be channel-partitionable")
	}
	if units[2].Channel || !units[2].Spatial {
		t.Errorf("residual block should be spatial-only: %v", units[2])
	}
	if units[2].Sub.Len() != 7 {
		t.Errorf("block should hold 7 ops, got %d", units[2].Sub.Len())
	}
	// FLOPs and params are preserved by linearization.
	g := tinyCNN(t)
	wantFLOPs, err := g.FLOPs()
	if err != nil {
		t.Fatal(err)
	}
	var gotFLOPs, gotParams int64
	for _, u := range units {
		gotFLOPs += u.FLOPs
		gotParams += u.ParamBytes
	}
	if gotFLOPs != wantFLOPs {
		t.Errorf("FLOPs %d != %d", gotFLOPs, wantFLOPs)
	}
	if gotParams != g.ParamBytes() {
		t.Errorf("params %d != %d", gotParams, g.ParamBytes())
	}
}

func TestLinearizeZooModels(t *testing.T) {
	cases := []struct {
		name     string
		minUnits int
		maxUnits int
	}{
		{"vgg11", 15, 25},
		{"resnet34", 18, 22}, // stem, pool, 16 blocks, gap, fc, softmax
		{"resnet50", 18, 22},
		{"rnn3", 6, 7}, // 3 lstm + takelast + dense(+sm merged? no) + softmax
	}
	for _, c := range cases {
		g, err := models.ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		units := linearized(t, g)
		if len(units) < c.minUnits || len(units) > c.maxUnits {
			t.Errorf("%s: %d units, want in [%d,%d]", c.name, len(units), c.minUnits, c.maxUnits)
		}
		// Boundary shapes must chain.
		for i := 1; i < len(units); i++ {
			if !tensor.ShapeEqual(units[i].InShape, units[i-1].OutShape) {
				t.Fatalf("%s: unit %d input %v != unit %d output %v",
					c.name, i, units[i].InShape, i-1, units[i-1].OutShape)
			}
		}
	}
}

func TestResNetBlockUnitsAreSpatial(t *testing.T) {
	g, err := models.ResNet(34)
	if err != nil {
		t.Fatal(err)
	}
	units := linearized(t, g)
	spatialCount := 0
	for _, u := range units {
		if u.Spatial {
			spatialCount++
		}
	}
	// Stem + pool + 16 residual blocks are all spatial; gap/fc/softmax not.
	if spatialCount != 18 {
		t.Fatalf("resnet34 spatial units %d, want 18", spatialCount)
	}
}

func TestRNNUnitsNotPartitionable(t *testing.T) {
	g, err := models.RNNCustom(3, 8, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range linearized(t, g) {
		if u.Spatial {
			t.Errorf("RNN unit %s must not be spatially partitionable", u.Name)
		}
	}
}

func TestForwardChainMatchesGraph(t *testing.T) {
	g := tinyCNN(t)
	g.Init(3)
	units := linearized(t, g)
	x := tensor.Rand(rand.New(rand.NewSource(4)), 1, 3, 24, 24)
	want, err := g.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("linearized execution must match graph execution bitwise")
	}
}

// THE core correctness property: spatially partitioned group execution is
// bitwise identical to monolithic execution, for any partition count, on a
// model with strides, padding, max pooling, and a residual diamond.
func TestSpatialPartitionExactness(t *testing.T) {
	g := tinyCNN(t)
	g.Init(5)
	units := linearized(t, g)
	x := tensor.Rand(rand.New(rand.NewSource(6)), 1, 3, 24, 24)
	want, err := ForwardChain(units, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 4, 6} {
		got, err := ExecSpatial(units, parts, x)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !tensor.Equal(want, got) {
			d, _ := tensor.MaxAbsDiff(want, got)
			t.Fatalf("parts=%d: partitioned output differs (max |Δ| = %v)", parts, d)
		}
	}
}

// Sub-groups (partial unit ranges) must also be exact, since the DP
// algorithm forms groups at arbitrary boundaries.
func TestSpatialSubgroupExactness(t *testing.T) {
	g := tinyCNN(t)
	g.Init(7)
	units := linearized(t, g)
	x := tensor.Rand(rand.New(rand.NewSource(8)), 1, 3, 24, 24)

	// Compute unit-boundary activations monolithically.
	acts := []*tensor.Tensor{x}
	cur := x
	for _, u := range units {
		out, err := u.Sub.Forward(cur)
		if err != nil {
			t.Fatal(err)
		}
		acts = append(acts, out)
		cur = out
	}
	for first := 0; first < len(units); first++ {
		for last := first; last < len(units); last++ {
			group := units[first : last+1]
			spatial := true
			for _, u := range group {
				if !u.Spatial {
					spatial = false
				}
			}
			if !spatial || group[len(group)-1].OutHeight() < 3 {
				continue
			}
			got, err := ExecSpatial(group, 3, acts[first])
			if err != nil {
				t.Fatalf("group [%d,%d]: %v", first, last, err)
			}
			if !tensor.Equal(acts[last+1], got) {
				t.Fatalf("group [%d,%d]: partitioned output differs", first, last)
			}
		}
	}
}

// Property test: random conv/pool/bn/relu chains, random partition counts.
func TestSpatialPartitionExactnessProperty(t *testing.T) {
	f := func(seed int64, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 12 + rng.Intn(16)
		c := 1 + rng.Intn(3)
		g := graph.New("rand", []int{c, h, h})
		depth := 1 + rng.Intn(4)
		inC := c
		for i := 0; i < depth; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				outC := 1 + rng.Intn(4)
				k := []int{1, 3, 5}[rng.Intn(3)]
				s := 1 + rng.Intn(2)
				g.MustAdd(nn.NewConv2D(opName("conv", i), inC, outC, k, s, k/2))
				inC = outC
			case 2:
				g.MustAdd(nn.NewMaxPool2D(opName("mp", i), 2, 2, 0))
			case 3:
				g.MustAdd(nn.NewBatchNorm(opName("bn", i), inC))
				g.MustAdd(nn.NewReLU(opName("relu", i)))
			}
		}
		if err := g.Validate(); err != nil {
			return true // degenerate (output collapsed); skip
		}
		g.Init(seed)
		units, err := Linearize(g)
		if err != nil {
			return false
		}
		for _, u := range units {
			if !u.Spatial {
				return false
			}
		}
		outH := units[len(units)-1].OutHeight()
		parts := 1 + int(partsRaw)%4
		if parts > outH {
			parts = outH
		}
		x := tensor.Rand(rng, 1, c, h, h)
		want, err := ForwardChain(units, x)
		if err != nil {
			return false
		}
		got, err := ExecSpatial(units, parts, x)
		if err != nil {
			return false
		}
		return tensor.Equal(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelPartitionExactness(t *testing.T) {
	g := tinyCNN(t)
	g.Init(9)
	units := linearized(t, g)
	u := units[0] // stem conv+bn+relu, channel-partitionable
	if !u.Channel {
		t.Fatal("stem unit should be channel-partitionable")
	}
	x := tensor.Rand(rand.New(rand.NewSource(10)), 1, 3, 24, 24)
	want, err := u.Sub.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 4, 8} {
		got, err := ExecChannel(u, parts, x)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !tensor.Equal(want, got) {
			t.Fatalf("parts=%d: channel-partitioned output differs", parts)
		}
	}
}

func TestChannelPartitionDense(t *testing.T) {
	g := graph.New("fc", []int{16})
	g.MustAdd(nn.NewDense("fc1", 16, 12))
	g.MustAdd(nn.NewReLU("relu"))
	g.Init(2)
	units := linearized(t, g)
	if len(units) != 1 || !units[0].Channel {
		t.Fatalf("dense+relu should merge into one channel unit: %v", units)
	}
	x := tensor.Rand(rand.New(rand.NewSource(3)), 1, 16)
	want, err := units[0].Sub.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecChannel(units[0], 3, x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want, got) {
		t.Fatal("dense channel partition differs")
	}
}

func TestSpatialSlicesHaloGrowth(t *testing.T) {
	// Two stacked 3x3 convs: interior partition needs 2 halo rows per side.
	g := graph.New("halo", []int{1, 16, 16})
	g.MustAdd(nn.NewConv2D("c1", 1, 1, 3, 1, 1))
	g.MustAdd(nn.NewConv2D("c2", 1, 1, 3, 1, 1))
	units := linearized(t, g)
	slices, err := SpatialSlices(units, 4)
	if err != nil {
		t.Fatal(err)
	}
	mid := slices[1] // interior: out rows [4,8)
	if mid.OutRows != (RowRange{4, 8}) {
		t.Fatalf("out rows %v", mid.OutRows)
	}
	if mid.InRows != (RowRange{2, 10}) {
		t.Fatalf("interior in rows %v, want [2,10) (2-row halo per side)", mid.InRows)
	}
	if slices[0].InRows != (RowRange{0, 6}) {
		t.Fatalf("boundary in rows %v, want [0,6)", slices[0].InRows)
	}
	// Total FLOPs across partitions must exceed the monolithic FLOPs
	// (redundant halo computation), and grow with partition count.
	ext4, err := GroupExtent(units, 0, 1, Option{Dim: DimSpatial, Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	ext8, err := GroupExtent(units, 0, 1, Option{Dim: DimSpatial, Parts: 8})
	if err != nil {
		t.Fatal(err)
	}
	mono := units[0].FLOPs + units[1].FLOPs
	if ext4.TotalFLOPs <= mono {
		t.Fatalf("4-way total FLOPs %d should exceed monolithic %d (halo redundancy)", ext4.TotalFLOPs, mono)
	}
	if ext8.TotalFLOPs <= ext4.TotalFLOPs {
		t.Fatalf("redundancy should grow with parts: %d vs %d", ext8.TotalFLOPs, ext4.TotalFLOPs)
	}
}

func TestFeasibleOptions(t *testing.T) {
	units := linearized(t, tinyCNN(t))
	// Whole-model group: spatial only (block kills channel).
	opts, err := FeasibleOptions(units, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	hasSpatial, hasChannel := false, false
	for _, o := range opts {
		if o.Dim == DimSpatial {
			hasSpatial = true
		}
		if o.Dim == DimChannel {
			hasChannel = true
		}
	}
	if !hasSpatial || hasChannel {
		t.Fatalf("group [0,2] options %v: want spatial, no channel", opts)
	}
	// Single stem unit: both.
	opts, err = FeasibleOptions(units, 0, 0, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	hasChannel = false
	for _, o := range opts {
		if o.Dim == DimChannel {
			hasChannel = true
		}
	}
	if !hasChannel {
		t.Fatalf("stem options %v missing channel", opts)
	}
	if _, err := FeasibleOptions(units, 2, 1, nil); err == nil {
		t.Fatal("expected bad-range error")
	}
}

func TestGroupExtentChannelReducesWeights(t *testing.T) {
	units := linearized(t, tinyCNN(t))
	u := units[0]
	whole, err := GroupExtent(units, 0, 0, Option{Dim: DimNone, Parts: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := GroupExtent(units, 0, 0, Option{Dim: DimChannel, Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ch.WeightBytes >= whole.WeightBytes {
		t.Fatalf("channel partition must shrink per-function weights: %d vs %d", ch.WeightBytes, whole.WeightBytes)
	}
	sp, err := GroupExtent(units, 0, 0, Option{Dim: DimSpatial, Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sp.WeightBytes != u.ParamBytes {
		t.Fatalf("spatial partition replicates weights: %d vs %d", sp.WeightBytes, u.ParamBytes)
	}
	// Channel partitions each need the full input.
	if ch.InBytesTotal != 4*tensor.SizeBytes(u.InShape) {
		t.Fatalf("channel in bytes %d, want 4× full input", ch.InBytesTotal)
	}
}

func TestPlanValidate(t *testing.T) {
	units := linearized(t, tinyCNN(t))
	good := &Plan{Model: "tiny", Groups: []GroupPlan{
		{First: 0, Last: 1, Option: Option{Dim: DimSpatial, Parts: 2}, OnMaster: true},
		{First: 2, Last: 2, Option: Option{Dim: DimSpatial, Parts: 4}},
		{First: 3, Last: 3, Option: Option{Dim: DimNone, Parts: 1}, OnMaster: true},
	}}
	if err := good.Validate(units); err != nil {
		t.Fatal(err)
	}
	if got := good.Groups[0].Workers(); got != 1 {
		t.Fatalf("workers %d, want 1 (master takes a partition)", got)
	}
	if got := good.Groups[1].Workers(); got != 4 {
		t.Fatalf("workers %d, want 4", got)
	}
	bad := &Plan{Groups: []GroupPlan{{First: 0, Last: 1, Option: Option{Dim: DimSpatial, Parts: 2}}}}
	if err := bad.Validate(units); err == nil {
		t.Fatal("expected coverage error")
	}
	gap := &Plan{Groups: []GroupPlan{
		{First: 0, Last: 0, Option: Option{Dim: DimNone, Parts: 1}},
		{First: 2, Last: 3, Option: Option{Dim: DimNone, Parts: 1}},
	}}
	if err := gap.Validate(units); err == nil {
		t.Fatal("expected gap error")
	}
	infeasible := &Plan{Groups: []GroupPlan{
		{First: 0, Last: 3, Option: Option{Dim: DimChannel, Parts: 2}},
	}}
	if err := infeasible.Validate(units); err == nil {
		t.Fatal("expected infeasible-option error")
	}
}

func TestMasterWeightBytes(t *testing.T) {
	units := linearized(t, tinyCNN(t))
	plan := &Plan{Model: "tiny", Groups: []GroupPlan{
		{First: 0, Last: 1, Option: Option{Dim: DimSpatial, Parts: 2}, OnMaster: true},
		{First: 2, Last: 3, Option: Option{Dim: DimNone, Parts: 1}},
	}}
	got, err := plan.MasterWeightBytes(units)
	if err != nil {
		t.Fatal(err)
	}
	want := units[0].ParamBytes + units[1].ParamBytes
	if got != want {
		t.Fatalf("master weights %d, want %d", got, want)
	}
}

func TestSpatialSlicesErrors(t *testing.T) {
	units := linearized(t, tinyCNN(t))
	if _, err := SpatialSlices(nil, 2); err == nil {
		t.Fatal("expected empty-group error")
	}
	if _, err := SpatialSlices(units[:1], 0); err == nil {
		t.Fatal("expected bad-parts error")
	}
	if _, err := SpatialSlices(units[:1], 1000); err == nil {
		t.Fatal("expected too-many-parts error")
	}
	g, err := models.RNNCustom(1, 4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rnnUnits := linearized(t, g)
	if _, err := SpatialSlices(rnnUnits[:1], 2); err == nil {
		t.Fatal("expected non-spatial error")
	}
	if _, err := ChannelSlices(rnnUnits[0], 2); err == nil {
		t.Fatal("expected non-channel error")
	}
}

func opName(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}
