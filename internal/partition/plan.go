package partition

import (
	"fmt"
	"strings"

	"gillis/internal/tensor"
)

// Dim is a partitioning dimension.
type Dim int

// Partitioning dimensions.
const (
	// DimNone runs the group whole on a single function.
	DimNone Dim = iota + 1
	// DimSpatial splits the group output along feature-map height; workers
	// replicate the group weights and receive input slabs with halos.
	DimSpatial
	// DimChannel splits a single unit along output channels; workers hold a
	// weight slice and receive the full input.
	DimChannel
)

// String returns the dimension name.
func (d Dim) String() string {
	switch d {
	case DimNone:
		return "none"
	case DimSpatial:
		return "spatial"
	case DimChannel:
		return "channel"
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// Option is one way to parallelize a layer group.
type Option struct {
	Dim   Dim
	Parts int
}

// String renders e.g. "spatial×4".
func (o Option) String() string {
	if o.Dim == DimNone {
		return "whole"
	}
	return fmt.Sprintf("%s×%d", o.Dim, o.Parts)
}

// DefaultPartCounts is the worker fan-out grid searched by the planners,
// matching the paper's experiments (up to 16 parallel functions, Fig. 7).
var DefaultPartCounts = []int{2, 4, 8, 16}

// FeasibleOptions enumerates the parallelization options of the group
// units[first..last] based on tensor dependencies (§III-C): spatial
// partitioning requires local height response in every unit; channel
// partitioning requires a single-unit group with sliceable output channels.
func FeasibleOptions(units []*Unit, first, last int, partCounts []int) ([]Option, error) {
	if first < 0 || last >= len(units) || first > last {
		return nil, fmt.Errorf("partition: bad group [%d,%d] of %d units", first, last, len(units))
	}
	if len(partCounts) == 0 {
		partCounts = DefaultPartCounts
	}
	opts := []Option{{Dim: DimNone, Parts: 1}}

	spatial := true
	for _, u := range units[first : last+1] {
		if !u.Spatial {
			spatial = false
			break
		}
	}
	if spatial {
		outH := units[last].OutHeight()
		for _, p := range partCounts {
			if p > 1 && outH >= p {
				opts = append(opts, Option{Dim: DimSpatial, Parts: p})
			}
		}
	}
	if first == last && units[first].Channel {
		outC := units[first].OutChannels()
		for _, p := range partCounts {
			if p > 1 && outC >= p {
				opts = append(opts, Option{Dim: DimChannel, Parts: p})
			}
		}
	}
	return opts, nil
}

// Extent summarizes a parallelization option's resource profile, the
// quantities the performance model and memory checks consume.
type Extent struct {
	// Parts is the partition count (1 for DimNone).
	Parts int
	// WeightBytes is the largest per-partition resident weight footprint.
	WeightBytes int64
	// MaxFLOPs is the most-loaded partition's compute (incl. halo
	// redundancy); TotalFLOPs sums all partitions.
	MaxFLOPs, TotalFLOPs int64
	// InBytesTotal and OutBytesTotal sum the request and response payloads
	// across partitions (what crosses the master's links).
	InBytesTotal, OutBytesTotal int64
	// MaxPartInBytes / MaxPartOutBytes are the largest single-partition
	// payloads.
	MaxPartInBytes, MaxPartOutBytes int64
	// ActBytes is the peak per-partition activation footprint.
	ActBytes int64
}

// GroupExtent computes the Extent of parallelizing units[first..last] with
// the given option.
func GroupExtent(units []*Unit, first, last int, opt Option) (Extent, error) {
	if first < 0 || last >= len(units) || first > last {
		return Extent{}, fmt.Errorf("partition: bad group [%d,%d]", first, last)
	}
	group := units[first : last+1]
	switch opt.Dim {
	case DimNone:
		var ext Extent
		ext.Parts = 1
		for _, u := range group {
			ext.WeightBytes += u.ParamBytes
			ext.TotalFLOPs += u.FLOPs
			act := tensor.SizeBytes(u.InShape) + tensor.SizeBytes(u.OutShape)
			if act > ext.ActBytes {
				ext.ActBytes = act
			}
		}
		ext.MaxFLOPs = ext.TotalFLOPs
		ext.InBytesTotal = tensor.SizeBytes(group[0].InShape)
		ext.OutBytesTotal = tensor.SizeBytes(group[len(group)-1].OutShape)
		ext.MaxPartInBytes = ext.InBytesTotal
		ext.MaxPartOutBytes = ext.OutBytesTotal
		return ext, nil

	case DimSpatial:
		slices, err := SpatialSlices(group, opt.Parts)
		if err != nil {
			return Extent{}, err
		}
		var ext Extent
		ext.Parts = opt.Parts
		var weights int64
		for _, u := range group {
			weights += u.ParamBytes // replicated on every partition
		}
		ext.WeightBytes = weights
		for _, ps := range slices {
			ext.TotalFLOPs += ps.FLOPs
			if ps.FLOPs > ext.MaxFLOPs {
				ext.MaxFLOPs = ps.FLOPs
			}
			ext.InBytesTotal += ps.InBytes
			ext.OutBytesTotal += ps.OutBytes
			if ps.InBytes > ext.MaxPartInBytes {
				ext.MaxPartInBytes = ps.InBytes
			}
			if ps.OutBytes > ext.MaxPartOutBytes {
				ext.MaxPartOutBytes = ps.OutBytes
			}
			if ps.ActBytes > ext.ActBytes {
				ext.ActBytes = ps.ActBytes
			}
		}
		return ext, nil

	case DimChannel:
		if first != last {
			return Extent{}, fmt.Errorf("partition: channel option on multi-unit group [%d,%d]", first, last)
		}
		slices, err := ChannelSlices(group[0], opt.Parts)
		if err != nil {
			return Extent{}, err
		}
		var ext Extent
		ext.Parts = opt.Parts
		for _, cs := range slices {
			ext.TotalFLOPs += cs.FLOPs
			if cs.FLOPs > ext.MaxFLOPs {
				ext.MaxFLOPs = cs.FLOPs
			}
			if cs.ParamBytes > ext.WeightBytes {
				ext.WeightBytes = cs.ParamBytes
			}
			ext.InBytesTotal += cs.InBytes
			ext.OutBytesTotal += cs.OutBytes
			if cs.InBytes > ext.MaxPartInBytes {
				ext.MaxPartInBytes = cs.InBytes
			}
			if cs.OutBytes > ext.MaxPartOutBytes {
				ext.MaxPartOutBytes = cs.OutBytes
			}
			act := cs.InBytes + cs.OutBytes
			if act > ext.ActBytes {
				ext.ActBytes = act
			}
		}
		return ext, nil
	}
	return Extent{}, fmt.Errorf("partition: unknown dimension %v", opt.Dim)
}

// GroupPlan assigns one layer group its parallelization and placement.
type GroupPlan struct {
	// First and Last are inclusive unit indices.
	First, Last int
	// Option is the group's parallelization.
	Option Option
	// OnMaster places partition 0 on the master function (Fig. 4: "the
	// master can also help to compute a partition"). For DimNone it places
	// the whole group on the master instead of a worker.
	OnMaster bool
}

// Workers returns the number of worker functions the group occupies.
func (gp GroupPlan) Workers() int {
	if gp.OnMaster {
		return gp.Option.Parts - 1
	}
	return gp.Option.Parts
}

// Plan is a complete layer grouping and parallelization strategy S for a
// model (§IV-B problem formulation).
type Plan struct {
	Model  string
	Groups []GroupPlan
}

// Validate checks that the plan covers units [0, n) contiguously and that
// every group's option is feasible.
func (p *Plan) Validate(units []*Unit) error {
	next := 0
	for gi, gp := range p.Groups {
		if gp.First != next {
			return fmt.Errorf("partition: plan group %d starts at %d, want %d", gi, gp.First, next)
		}
		if gp.Last < gp.First || gp.Last >= len(units) {
			return fmt.Errorf("partition: plan group %d range [%d,%d] invalid", gi, gp.First, gp.Last)
		}
		opts, err := FeasibleOptions(units, gp.First, gp.Last, allPartCounts(gp.Option.Parts))
		if err != nil {
			return err
		}
		if !containsOption(opts, gp.Option) {
			return fmt.Errorf("partition: plan group %d option %v infeasible for units [%d,%d]",
				gi, gp.Option, gp.First, gp.Last)
		}
		if gp.Option.Dim == DimNone && gp.Option.Parts != 1 {
			return fmt.Errorf("partition: plan group %d: whole group must have 1 part", gi)
		}
		next = gp.Last + 1
	}
	if next != len(units) {
		return fmt.Errorf("partition: plan covers %d of %d units", next, len(units))
	}
	return nil
}

// MasterWeightBytes sums the weights resident on the master across all
// groups it participates in.
func (p *Plan) MasterWeightBytes(units []*Unit) (int64, error) {
	var total int64
	for _, gp := range p.Groups {
		if !gp.OnMaster {
			continue
		}
		ext, err := GroupExtent(units, gp.First, gp.Last, gp.Option)
		if err != nil {
			return 0, err
		}
		total += ext.WeightBytes
	}
	return total, nil
}

// String renders the plan in the style of the paper's Fig. 14.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %s (%d groups):\n", p.Model, len(p.Groups))
	for gi, gp := range p.Groups {
		place := "workers only"
		if gp.OnMaster {
			if gp.Option.Parts == 1 {
				place = "master only"
			} else {
				place = "master + workers"
			}
		}
		fmt.Fprintf(&sb, "  group %d: units %d..%d, %v, %s\n", gi+1, gp.First, gp.Last, gp.Option, place)
	}
	return sb.String()
}

func allPartCounts(p int) []int {
	if p <= 1 {
		return DefaultPartCounts
	}
	return []int{p}
}

func containsOption(opts []Option, o Option) bool {
	for _, x := range opts {
		if x == o {
			return true
		}
	}
	return false
}
