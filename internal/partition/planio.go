package partition

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// planJSON is the stable on-disk representation of a Plan.
type planJSON struct {
	Model  string      `json:"model"`
	Groups []groupJSON `json:"groups"`
}

type groupJSON struct {
	First    int    `json:"first"`
	Last     int    `json:"last"`
	Dim      string `json:"dim"` // "none", "spatial", "channel"
	Parts    int    `json:"parts"`
	OnMaster bool   `json:"onMaster"`
}

// Save writes the plan as JSON.
func (p *Plan) Save(w io.Writer) error {
	out := planJSON{Model: p.Model}
	for _, gp := range p.Groups {
		out.Groups = append(out.Groups, groupJSON{
			First: gp.First, Last: gp.Last,
			Dim: gp.Option.Dim.String(), Parts: gp.Option.Parts,
			OnMaster: gp.OnMaster,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadPlan reads a plan written by Save. Callers should Validate it against
// the model's units before deploying.
func LoadPlan(r io.Reader) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("partition: decode plan: %w", err)
	}
	p := &Plan{Model: in.Model}
	for i, g := range in.Groups {
		var dim Dim
		switch g.Dim {
		case "none":
			dim = DimNone
		case "spatial":
			dim = DimSpatial
		case "channel":
			dim = DimChannel
		default:
			return nil, fmt.Errorf("partition: plan group %d has unknown dim %q", i, g.Dim)
		}
		p.Groups = append(p.Groups, GroupPlan{
			First: g.First, Last: g.Last,
			Option:   Option{Dim: dim, Parts: g.Parts},
			OnMaster: g.OnMaster,
		})
	}
	return p, nil
}

// SavePlanFile writes the plan to path.
func SavePlanFile(path string, p *Plan) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return p.Save(f)
}

// LoadPlanFile reads a plan from path.
func LoadPlanFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPlan(f)
}
