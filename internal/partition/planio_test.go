package partition

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestPlanRoundtrip(t *testing.T) {
	units := linearized(t, tinyCNN(t))
	plan := &Plan{Model: "tiny", Groups: []GroupPlan{
		{First: 0, Last: 1, Option: Option{Dim: DimSpatial, Parts: 4}, OnMaster: true},
		{First: 2, Last: 2, Option: Option{Dim: DimSpatial, Parts: 2}},
		{First: 3, Last: 3, Option: Option{Dim: DimNone, Parts: 1}, OnMaster: true},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"spatial"`) {
		t.Fatalf("dims should serialize as strings:\n%s", buf.String())
	}
	back, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(units); err != nil {
		t.Fatal(err)
	}
	if back.String() != plan.String() {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", back, plan)
	}
}

func TestPlanFileRoundtripAndErrors(t *testing.T) {
	plan := &Plan{Model: "m", Groups: []GroupPlan{
		{First: 0, Last: 0, Option: Option{Dim: DimChannel, Parts: 8}},
	}}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := SavePlanFile(path, plan); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPlanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Groups[0].Option.Dim != DimChannel || back.Groups[0].Option.Parts != 8 {
		t.Fatalf("roundtrip lost option: %+v", back.Groups[0])
	}
	if _, err := LoadPlanFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected missing-file error")
	}
	if _, err := LoadPlan(strings.NewReader("{bad json")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := LoadPlan(strings.NewReader(`{"model":"m","groups":[{"dim":"diagonal"}]}`)); err == nil {
		t.Fatal("expected unknown-dim error")
	}
}
