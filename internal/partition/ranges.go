package partition

import (
	"fmt"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// RowRange is a half-open interval [Lo, Hi) of feature-map rows.
type RowRange struct {
	Lo, Hi int
}

// Len returns the number of rows in the range.
func (r RowRange) Len() int { return r.Hi - r.Lo }

// union returns the smallest range covering both (empty ranges ignored).
func (r RowRange) union(o RowRange) RowRange {
	if r.Len() <= 0 {
		return o
	}
	if o.Len() <= 0 {
		return r
	}
	if o.Lo < r.Lo {
		r.Lo = o.Lo
	}
	if o.Hi > r.Hi {
		r.Hi = o.Hi
	}
	return r
}

// clip restricts the range to [0, h).
func (r RowRange) clip(h int) RowRange {
	if r.Lo < 0 {
		r.Lo = 0
	}
	if r.Hi > h {
		r.Hi = h
	}
	if r.Hi < r.Lo {
		r.Hi = r.Lo
	}
	return r
}

// inRangeForOut returns the unpadded input rows required to compute output
// rows out of an op with height kernel k, stride s, padding p:
// [out.Lo*s - p, (out.Hi-1)*s + k - p).
func inRangeForOut(out RowRange, k, s, p int) RowRange {
	return RowRange{Lo: out.Lo*s - p, Hi: (out.Hi-1)*s + k - p}
}

// PartSlice describes one spatial partition of a layer group: which rows of
// the group input it needs, which rows of the group output it produces, and
// its exact compute/transfer extents (including halo redundancy).
type PartSlice struct {
	InRows  RowRange
	OutRows RowRange
	// FLOPs is the exact work of this partition, including redundant halo
	// computation in intermediate layers.
	FLOPs int64
	// InBytes and OutBytes are the partition's payload sizes.
	InBytes, OutBytes int64
	// ActBytes is the peak activation slab footprint during execution.
	ActBytes int64

	units []unitSlice // per-unit execution metadata
}

// unitSlice carries the per-node row ranges of one unit for one partition.
type unitSlice struct {
	inRows RowRange   // clipped rows of the unit input this partition holds
	nodes  []RowRange // clipped output rows to compute, per node ID
}

// SpatialSlices computes the partition slices for parallelizing the unit
// group `units` across `parts` partitions along the height axis. Every unit
// must be Spatial and the group output must have at least `parts` rows.
func SpatialSlices(units []*Unit, parts int) ([]PartSlice, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("partition: empty group")
	}
	if parts < 1 {
		return nil, fmt.Errorf("partition: parts %d < 1", parts)
	}
	for _, u := range units {
		if !u.Spatial {
			return nil, fmt.Errorf("partition: unit %d (%s) is not spatially partitionable", u.Index, u.Name)
		}
	}
	last := units[len(units)-1]
	outH := last.OutHeight()
	if outH < parts {
		return nil, fmt.Errorf("partition: group output height %d < %d parts", outH, parts)
	}
	slices := make([]PartSlice, parts)
	for i := 0; i < parts; i++ {
		out := RowRange{Lo: i * outH / parts, Hi: (i + 1) * outH / parts}
		ps, err := backprop(units, out)
		if err != nil {
			return nil, err
		}
		slices[i] = ps
	}
	return slices, nil
}

// backprop derives a PartSlice for one target output range by propagating
// required row intervals backwards through every unit (and, inside each
// unit, through its subgraph), then accounting forward for FLOPs.
func backprop(units []*Unit, out RowRange) (PartSlice, error) {
	ps := PartSlice{OutRows: out}
	ps.units = make([]unitSlice, len(units))

	need := out
	for ui := len(units) - 1; ui >= 0; ui-- {
		u := units[ui]
		us, inNeed, err := backpropUnit(u, need)
		if err != nil {
			return PartSlice{}, err
		}
		ps.units[ui] = us
		need = inNeed
	}
	ps.InRows = need.clip(heightOf(units[0].InShape))

	// Forward accounting: FLOPs proportional to computed rows; activation
	// peak is the largest node slab.
	var flops int64
	var maxAct int64
	for ui, u := range units {
		shapes := u.NodeShapes()
		for _, node := range u.Sub.Nodes() {
			full, err := nodeFLOPs(u, node, shapes)
			if err != nil {
				return PartSlice{}, err
			}
			r := ps.units[ui].nodes[node.ID]
			h := shapes[node.ID][1]
			if h > 0 {
				flops += full * int64(r.Len()) / int64(h)
				act := tensor.SizeBytes(shapes[node.ID]) * int64(r.Len()) / int64(h)
				if act > maxAct {
					maxAct = act
				}
			}
		}
	}
	ps.FLOPs = flops
	ps.ActBytes = maxAct
	ps.InBytes = rowBytes(units[0].InShape) * int64(ps.InRows.Len())
	ps.OutBytes = rowBytes(units[len(units)-1].OutShape) * int64(out.Len())
	return ps, nil
}

// backpropUnit propagates a required output range through one unit's
// subgraph, returning per-node clipped output ranges and the required range
// of the unit input.
func backpropUnit(u *Unit, out RowRange) (unitSlice, RowRange, error) {
	nodes := u.Sub.Nodes()
	shapes := u.NodeShapes()
	need := make([]RowRange, len(nodes))
	need[len(nodes)-1] = out.clip(heightOf(u.OutShape))
	var inputNeed RowRange
	for i := len(nodes) - 1; i >= 0; i-- {
		node := nodes[i]
		k, s, p, err := hksp(node.Op)
		if err != nil {
			return unitSlice{}, RowRange{}, fmt.Errorf("partition: unit %d (%s): %w", u.Index, u.Name, err)
		}
		req := inRangeForOut(need[i], k, s, p)
		for _, in := range node.Inputs {
			if in == graph.InputID {
				inputNeed = inputNeed.union(req)
				continue
			}
			h := shapes[in][1]
			need[in] = need[in].union(req.clip(h))
		}
	}
	return unitSlice{inRows: inputNeed.clip(heightOf(u.InShape)), nodes: need}, inputNeed, nil
}

// hksp returns the height kernel/stride/pad of a spatial op.
func hksp(op nn.Op) (k, s, p int, err error) {
	sp, ok := op.(nn.Spatial)
	if !ok {
		return 0, 0, 0, fmt.Errorf("op %s (%s) is not spatial", op.Name(), op.Kind())
	}
	k, s, p = sp.HKernel()
	return k, s, p, nil
}

// nodeFLOPs computes a node's full-tensor FLOPs within its unit.
func nodeFLOPs(u *Unit, node *graph.Node, shapes [][]int) (int64, error) {
	ins := make([][]int, len(node.Inputs))
	for i, in := range node.Inputs {
		if in == graph.InputID {
			ins[i] = u.InShape
		} else {
			ins[i] = shapes[in]
		}
	}
	return node.Op.FLOPs(ins...), nil
}

func heightOf(shape []int) int {
	if len(shape) == 3 {
		return shape[1]
	}
	return 0
}

// rowBytes returns the byte size of one row (all channels, full width).
func rowBytes(shape []int) int64 {
	if len(shape) != 3 {
		return 0
	}
	return int64(shape[0]) * int64(shape[2]) * 4
}

// ChannelSlice describes one channel partition of a single-unit group: the
// output channels it computes, the weights it holds, and its extents. Every
// channel partition consumes the full group input.
type ChannelSlice struct {
	Channels   RowRange
	FLOPs      int64
	ParamBytes int64
	InBytes    int64
	OutBytes   int64
}

// ChannelSlices computes the partition slices for parallelizing a single
// channel-partitionable unit across `parts` partitions along its output
// channels.
func ChannelSlices(u *Unit, parts int) ([]ChannelSlice, error) {
	if !u.Channel {
		return nil, fmt.Errorf("partition: unit %d (%s) is not channel-partitionable", u.Index, u.Name)
	}
	outC := u.OutChannels()
	if outC < parts {
		return nil, fmt.Errorf("partition: unit %d has %d output channels < %d parts", u.Index, outC, parts)
	}
	inBytes := tensor.SizeBytes(u.InShape)
	outBytes := tensor.SizeBytes(u.OutShape)
	slices := make([]ChannelSlice, parts)
	for i := 0; i < parts; i++ {
		lo, hi := i*outC/parts, (i+1)*outC/parts
		sub, err := ChannelSubgraph(u, lo, hi)
		if err != nil {
			return nil, err
		}
		frac := func(v int64) int64 { return v * int64(hi-lo) / int64(outC) }
		slices[i] = ChannelSlice{
			Channels:   RowRange{Lo: lo, Hi: hi},
			FLOPs:      frac(u.FLOPs),
			ParamBytes: sub.ParamBytes(),
			InBytes:    inBytes,
			OutBytes:   frac(outBytes),
		}
	}
	return slices, nil
}

// ChannelSubgraph builds the subgraph computing output channels [lo, hi) of
// a channel-partitionable unit. Weight tensors are sliced if materialized.
func ChannelSubgraph(u *Unit, lo, hi int) (*graph.Graph, error) {
	if !u.Channel {
		return nil, fmt.Errorf("partition: unit %d (%s) is not channel-partitionable", u.Index, u.Name)
	}
	sub := graph.New(fmt.Sprintf("%s[ch%d:%d]", u.Name, lo, hi), u.InShape)
	for _, node := range u.Sub.Nodes() {
		var op nn.Op
		switch o := node.Op.(type) {
		case nn.ChannelSliceable:
			sliced, err := o.SliceChannels(lo, hi)
			if err != nil {
				return nil, err
			}
			op = sliced
		case *nn.ReLU:
			op = nn.NewReLU(fmt.Sprintf("%s[ch%d:%d]", o.Name(), lo, hi))
		default:
			return nil, fmt.Errorf("partition: op %s (%s) cannot be channel-sliced", node.Op.Name(), node.Op.Kind())
		}
		if _, err := sub.Add(op, node.Inputs...); err != nil {
			return nil, err
		}
	}
	return sub, nil
}
