package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

func TestRowRangeBasics(t *testing.T) {
	a := RowRange{2, 5}
	if a.Len() != 3 {
		t.Fatal("len")
	}
	if got := a.union(RowRange{4, 9}); got != (RowRange{2, 9}) {
		t.Fatalf("union %v", got)
	}
	if got := a.union(RowRange{}); got != a {
		t.Fatalf("union with empty %v", got)
	}
	if got := (RowRange{}).union(a); got != a {
		t.Fatalf("empty union %v", got)
	}
	if got := (RowRange{-3, 12}).clip(10); got != (RowRange{0, 10}) {
		t.Fatalf("clip %v", got)
	}
	if got := (RowRange{8, 4}).clip(10); got.Len() != 0 {
		t.Fatalf("degenerate clip %v", got)
	}
}

func TestInRangeForOutGolden(t *testing.T) {
	cases := []struct {
		out     RowRange
		k, s, p int
		want    RowRange
	}{
		// 3x3 stride-1 pad-1 conv: one-row halo each side.
		{RowRange{4, 8}, 3, 1, 1, RowRange{3, 9}},
		// 1x1: identity.
		{RowRange{4, 8}, 1, 1, 0, RowRange{4, 8}},
		// 7x7 stride-2 pad-3 stem: out rows [0,2) need rows [-3, 6).
		{RowRange{0, 2}, 7, 2, 3, RowRange{-3, 6}},
		// 2x2 stride-2 pool.
		{RowRange{3, 5}, 2, 2, 0, RowRange{6, 10}},
	}
	for _, c := range cases {
		if got := inRangeForOut(c.out, c.k, c.s, c.p); got != c.want {
			t.Errorf("inRangeForOut(%v,%d,%d,%d) = %v, want %v", c.out, c.k, c.s, c.p, got, c.want)
		}
	}
}

// Property: partitions' output ranges tile the output exactly and their
// summed FLOPs are at least the monolithic FLOPs.
func TestSpatialSlicesTileAndRedundancy(t *testing.T) {
	f := func(seed int64, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 10 + rng.Intn(20)
		g := graph.New("p", []int{2, h, h})
		g.MustAdd(nn.NewConv2D("c1", 2, 3, 3, 1, 1))
		g.MustAdd(nn.NewReLU("r1"))
		g.MustAdd(nn.NewConv2D("c2", 3, 2, 3, 1, 1))
		units, err := Linearize(g)
		if err != nil {
			return false
		}
		outH := units[len(units)-1].OutHeight()
		parts := 1 + int(partsRaw)%5
		if parts > outH {
			parts = outH
		}
		slices, err := SpatialSlices(units, parts)
		if err != nil {
			return false
		}
		at := 0
		var total int64
		for _, ps := range slices {
			if ps.OutRows.Lo != at {
				return false // gap or overlap in the output tiling
			}
			at = ps.OutRows.Hi
			total += ps.FLOPs
		}
		if at != outH {
			return false
		}
		var mono int64
		for _, u := range units {
			mono += u.FLOPs
		}
		return total >= mono
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Diamond-topology property: residual blocks with random depths still
// linearize into valid units whose chain forward matches the graph.
func TestLinearizeDiamondProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 2 + rng.Intn(3)
		h := 12 + rng.Intn(8)
		g := graph.New("d", []int{c, h, h})
		last := g.MustAdd(nn.NewConv2D("stem", c, c, 3, 1, 1))
		blocks := 1 + rng.Intn(3)
		for b := 0; b < blocks; b++ {
			// Main path of 1-3 convs, identity shortcut, then Add.
			depth := 1 + rng.Intn(3)
			cur := last
			for d := 0; d < depth; d++ {
				cur = g.MustAdd(nn.NewConv2D(opName("b", b*10+d), c, c, 3, 1, 1), cur)
			}
			last = g.MustAdd(nn.NewAdd(opName("add", b)), cur, last)
		}
		if err := g.Validate(); err != nil {
			return false
		}
		g.Init(seed)
		units, err := Linearize(g)
		if err != nil {
			return false
		}
		// Every block collapses: expect 1 stem unit + `blocks` block units.
		if len(units) != 1+blocks {
			return false
		}
		x := tensor.Rand(rng, 1, c, h, h)
		want, err := g.Forward(x)
		if err != nil {
			return false
		}
		got, err := ForwardChain(units, x)
		if err != nil {
			return false
		}
		if !tensor.Equal(want, got) {
			return false
		}
		// And the partitioned path agrees too.
		got3, err := ExecSpatial(units, 3, x)
		if err != nil {
			return false
		}
		return tensor.Equal(want, got3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelSubgraphUninitialized(t *testing.T) {
	g := graph.New("c", []int{3, 8, 8})
	g.MustAdd(nn.NewConv2D("conv", 3, 8, 3, 1, 1))
	g.MustAdd(nn.NewReLU("relu"))
	units, err := Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	// Without weights: the subgraph is still constructible (for memory
	// accounting) and reports sliced parameter counts.
	sub, err := ChannelSubgraph(units[0], 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Initialized() {
		t.Fatal("sliced op should be uninitialized")
	}
	want := nn.NewConv2D("x", 3, 4, 3, 1, 1).ParamCount()
	if sub.ParamCount() != want {
		t.Fatalf("sliced params %d, want %d", sub.ParamCount(), want)
	}
	if _, err := ChannelSubgraph(units[0], 5, 3); err == nil {
		t.Fatal("expected bad-range error")
	}
}
