package partition

import (
	"fmt"

	"gillis/internal/tensor"
)

// TransferBytes totals the bytes a plan moves over the master's network
// links: the weight shipment that deploys each worker partition plus the
// per-query activation payloads (partition inputs out, partition outputs
// back). Work the master executes itself — DimNone groups placed on the
// master, and partition 0 of a parallel group with OnMaster — moves nothing.
//
// This is the quantity the fusion pass shrinks for the planners: folding a
// BatchNorm into its convolution halves that BatchNorm's share of the
// shipped weight bytes (two per-channel vectors instead of four), so a plan
// over a fused graph reports strictly fewer transfer bytes than the same
// plan over the unfused graph.
func TransferBytes(units []*Unit, p *Plan) (int64, error) {
	if err := p.Validate(units); err != nil {
		return 0, err
	}
	var total int64
	for gi, gp := range p.Groups {
		switch gp.Option.Dim {
		case DimNone:
			if gp.OnMaster {
				continue
			}
			var weights int64
			for _, u := range units[gp.First : gp.Last+1] {
				weights += u.ParamBytes
			}
			total += weights
			total += tensor.SizeBytes(units[gp.First].InShape) + tensor.SizeBytes(units[gp.Last].OutShape)

		case DimSpatial:
			slices, err := SpatialSlices(units[gp.First:gp.Last+1], gp.Option.Parts)
			if err != nil {
				return 0, fmt.Errorf("partition: transfer bytes of group %d: %w", gi, err)
			}
			var weights int64
			for _, u := range units[gp.First : gp.Last+1] {
				weights += u.ParamBytes // replicated per worker
			}
			for i, ps := range slices {
				if gp.OnMaster && i == 0 {
					continue
				}
				total += weights + ps.InBytes + ps.OutBytes
			}

		case DimChannel:
			slices, err := ChannelSlices(units[gp.First], gp.Option.Parts)
			if err != nil {
				return 0, fmt.Errorf("partition: transfer bytes of group %d: %w", gi, err)
			}
			for i, cs := range slices {
				if gp.OnMaster && i == 0 {
					continue
				}
				total += cs.ParamBytes + cs.InBytes + cs.OutBytes
			}

		default:
			return 0, fmt.Errorf("partition: transfer bytes: unknown dimension %v", gp.Option.Dim)
		}
	}
	return total, nil
}
