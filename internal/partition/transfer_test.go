package partition

import (
	"math/rand"
	"testing"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// exampleCNN is a conv-bn-relu stack — the fusion pass's bread and butter.
func exampleCNN(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("example-cnn", []int{3, 28, 28})
	g.MustAdd(nn.NewConv2D("c1", 3, 16, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("b1", 16))
	g.MustAdd(nn.NewReLU("r1"))
	g.MustAdd(nn.NewConv2D("c2", 16, 32, 3, 1, 1))
	g.MustAdd(nn.NewBatchNorm("b2", 32))
	g.MustAdd(nn.NewReLU("r2"))
	g.MustAdd(nn.NewMaxPool2D("p", 2, 2, 0))
	g.MustAdd(nn.NewFlatten("fl"))
	g.MustAdd(nn.NewDense("fc", 32*14*14, 10))
	g.MustAdd(nn.NewReLU("r3"))
	g.Init(11)
	return g
}

// TestFusedPlanReportsFewerTransferBytes is the planner-visibility
// acceptance check: the same partition plan over the fused graph must
// report strictly fewer transfer bytes than over the unfused graph, because
// folded BatchNorms ship two per-channel vectors instead of four.
func TestFusedPlanReportsFewerTransferBytes(t *testing.T) {
	g := exampleCNN(t)
	fg, eliminated, err := graph.Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if eliminated == 0 {
		t.Fatal("fusion pass rewrote nothing on the example model")
	}
	units, err := Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	fusedUnits, err := Linearize(fg)
	if err != nil {
		t.Fatal(err)
	}
	// Element-wise merging already collapses BN/ReLU into the preceding
	// weighted unit, so both chains linearize to the same boundaries.
	if len(units) != len(fusedUnits) {
		t.Fatalf("unit chains differ: %d unfused vs %d fused", len(units), len(fusedUnits))
	}
	plan := &Plan{
		Model: g.Name,
		Groups: []GroupPlan{
			{First: 0, Last: 0, Option: Option{Dim: DimChannel, Parts: 4}},
			{First: 1, Last: len(units) - 1, Option: Option{Dim: DimNone, Parts: 1}},
		},
	}
	unfusedBytes, err := TransferBytes(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	fusedBytes, err := TransferBytes(fusedUnits, plan)
	if err != nil {
		t.Fatal(err)
	}
	if fusedBytes >= unfusedBytes {
		t.Fatalf("fused plan transfers %d bytes, want strictly fewer than unfused %d", fusedBytes, unfusedBytes)
	}
	t.Logf("transfer bytes: unfused=%d fused=%d (saved %d)", unfusedBytes, fusedBytes, unfusedBytes-fusedBytes)

	// The fused chain reports fewer FLOPs to the planners, too.
	var fu, uu int64
	for _, u := range units {
		uu += u.FLOPs
	}
	for _, u := range fusedUnits {
		fu += u.FLOPs
	}
	if fu >= uu {
		t.Fatalf("fused chain FLOPs %d not below unfused %d", fu, uu)
	}
}

// TestFusedUnitsPartitionedExecutionExact: channel- and spatially-
// partitioned execution of the fused chain must agree bitwise with the
// unfused monolithic forward.
func TestFusedUnitsPartitionedExecutionExact(t *testing.T) {
	g := exampleCNN(t)
	fg, _, err := graph.Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	fusedUnits, err := Linearize(fg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.Rand(rand.New(rand.NewSource(3)), 1, 3, 28, 28)
	want, err := g.Forward(rng)
	if err != nil {
		t.Fatal(err)
	}

	// Fused chain, unpartitioned.
	got, err := ForwardChain(fusedUnits, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("fused chain forward diverged from unfused graph")
	}

	// Channel partition of the first fused unit.
	if !fusedUnits[0].Channel {
		t.Fatal("first fused unit lost channel partitionability")
	}
	cout, err := ExecChannel(fusedUnits[0], 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := ForwardChain(fusedUnits[1:], cout)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(rest, want) {
		t.Fatal("channel-partitioned fused execution diverged")
	}

	// Spatial partition across the fused conv units.
	if !fusedUnits[0].Spatial || !fusedUnits[1].Spatial {
		t.Fatal("fused conv units lost spatial partitionability")
	}
	sout, err := ExecSpatial(fusedUnits[:2], 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	srest, err := ForwardChain(fusedUnits[2:], sout)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(srest, want) {
		t.Fatal("spatially partitioned fused execution diverged")
	}
}

// TestTransferBytesPlacementBranches covers the placement cases the fused
// comparison test does not: spatial groups, master-resident partition 0,
// off-master whole groups, and plan-validation failure.
func TestTransferBytesPlacementBranches(t *testing.T) {
	g := exampleCNN(t)
	units, err := Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	last := len(units) - 1
	mk := func(spatialOnMaster, wholeOnMaster bool) int64 {
		t.Helper()
		plan := &Plan{
			Model: g.Name,
			Groups: []GroupPlan{
				{First: 0, Last: 1, Option: Option{Dim: DimSpatial, Parts: 3}, OnMaster: spatialOnMaster},
				{First: 2, Last: last, Option: Option{Dim: DimNone, Parts: 1}, OnMaster: wholeOnMaster},
			},
		}
		b, err := TransferBytes(units, plan)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	allRemote := mk(false, false)
	masterSlice := mk(true, false)
	masterTail := mk(false, true)
	if masterSlice >= allRemote {
		t.Fatalf("master-resident partition 0 must shed its shipment: %d >= %d", masterSlice, allRemote)
	}
	if masterTail >= allRemote {
		t.Fatalf("master-resident whole group must ship nothing: %d >= %d", masterTail, allRemote)
	}
	// The off-master whole group ships exactly its weights plus one
	// input/output activation pair.
	var tailWeights int64
	for _, u := range units[2:] {
		tailWeights += u.ParamBytes
	}
	wantTail := tailWeights + tensor.SizeBytes(units[2].InShape) + tensor.SizeBytes(units[last].OutShape)
	if got := allRemote - masterTail; got != wantTail {
		t.Fatalf("whole-group shipment = %d, want %d", got, wantTail)
	}

	bad := &Plan{Model: g.Name, Groups: []GroupPlan{{First: 1, Last: last, Option: Option{Dim: DimNone, Parts: 1}}}}
	if _, err := TransferBytes(units, bad); err == nil {
		t.Fatal("invalid plan must error")
	}
}
