// Package partition implements Gillis's model-partitioning substrate
// (§III-C of the paper): linearizing a model DAG into a chain of units via
// branch merging, fusing element-wise layers into their preceding
// weight-intensive layers, analyzing tensor dependencies to decide which
// dimensions a group of layers can be parallelized along, computing exact
// input halos (and hence redundant computation) for spatial partitions, and
// executing partitions with bit-exact equivalence to monolithic execution.
package partition

import (
	"fmt"

	"gillis/internal/graph"
	"gillis/internal/nn"
	"gillis/internal/tensor"
)

// Unit is one element of the linearized model: a single-input,
// single-output subgraph (a single layer, or a merged branch module such
// as a residual block, §III-C Fig. 5).
type Unit struct {
	// Index is the unit's position in the linearized chain.
	Index int
	// Name identifies the unit, derived from its primary op.
	Name string
	// Sub is the unit's subgraph; its InputID refers to the previous unit's
	// output (or the model input for unit 0).
	Sub *graph.Graph
	// InShape and OutShape are the unit's boundary shapes.
	InShape, OutShape []int
	// FLOPs and ParamBytes aggregate the subgraph.
	FLOPs      int64
	ParamBytes int64
	// shapes caches the subgraph's per-node output shapes (computed once at
	// linearization; shape queries are hot in the planners).
	shapes [][]int
	// Spatial reports that every op in the unit has a local response along
	// the height axis, so the unit can join a spatially partitioned group.
	Spatial bool
	// Channel reports that the unit's output channels are independently
	// computable from a slice of its weights (single conv/dense plus fused
	// per-channel element-wise ops).
	Channel bool
}

// OutChannels returns the size of the channel dimension of the unit output
// (dimension 0 for CHW, the only dimension for dense outputs).
func (u *Unit) OutChannels() int { return u.OutShape[0] }

// NodeShapes returns the cached per-node output shapes of the unit's
// subgraph. The result must not be modified.
func (u *Unit) NodeShapes() [][]int { return u.shapes }

// OutHeight returns the spatial height of the unit output, or 0 for
// non-spatial outputs.
func (u *Unit) OutHeight() int {
	if len(u.OutShape) == 3 {
		return u.OutShape[1]
	}
	return 0
}

// String renders a compact description.
func (u *Unit) String() string {
	return fmt.Sprintf("unit %d %q in=%v out=%v flops=%d params=%dB spatial=%v channel=%v",
		u.Index, u.Name, u.InShape, u.OutShape, u.FLOPs, u.ParamBytes, u.Spatial, u.Channel)
}

// Linearize converts a model graph into the unit chain Gillis partitions.
// It implements the paper's branch merging (parallel branches collapse into
// a single unit) and element-wise merging (ReLU/BatchNorm fuse into the
// preceding weighted unit).
//
// The algorithm finds "cut points": positions i such that every edge
// crossing the boundary after node i originates at node i — i.e. exactly
// one value is live. Segments between consecutive cut points become units;
// this collapses arbitrary series-parallel branch modules without
// special-casing block shapes.
func Linearize(g *graph.Graph) ([]*Unit, error) {
	n := g.Len()
	if n == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	shapes, err := g.Shapes()
	if err != nil {
		return nil, err
	}

	// maxConsumer[i] = largest node ID consuming node i's output.
	maxConsumer := make([]int, n)
	for i := range maxConsumer {
		maxConsumer[i] = -1
	}
	inputMaxConsumer := -1
	for _, node := range g.Nodes() {
		for _, in := range node.Inputs {
			if in == graph.InputID {
				if node.ID > inputMaxConsumer {
					inputMaxConsumer = node.ID
				}
				continue
			}
			if node.ID > maxConsumer[in] {
				maxConsumer[in] = node.ID
			}
		}
	}
	// Boundary after node i is a cut iff no earlier value (a node j < i or
	// the graph input) is consumed after i.
	cuts := make([]bool, n)
	maxSoFar := inputMaxConsumer // max consumer among {input, nodes 0..i-1}
	for i := 0; i < n; i++ {
		cuts[i] = maxSoFar <= i
		if maxConsumer[i] > maxSoFar {
			maxSoFar = maxConsumer[i]
		}
	}
	cuts[n-1] = true

	var units []*Unit
	segStart := 0
	for i := 0; i < n; i++ {
		if !cuts[i] {
			continue
		}
		u, err := buildUnit(g, shapes, segStart, i)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
		segStart = i + 1
	}
	units = mergeElementwise(units)
	for i, u := range units {
		u.Index = i
	}
	return units, nil
}

// buildUnit packages nodes [start, end] of g into a Unit.
func buildUnit(g *graph.Graph, shapes [][]int, start, end int) (*Unit, error) {
	var inShape []int
	if start == 0 {
		inShape = g.InShape()
	} else {
		inShape = shapes[start-1]
	}
	sub := graph.New(fmt.Sprintf("%s[%d:%d]", g.Name, start, end), inShape)
	for id := start; id <= end; id++ {
		node := g.Node(id)
		ins := make([]int, len(node.Inputs))
		for i, in := range node.Inputs {
			switch {
			case in == graph.InputID || in == start-1:
				ins[i] = graph.InputID
			case in >= start && in < id:
				ins[i] = in - start
			default:
				return nil, fmt.Errorf("partition: node %d input %d escapes segment [%d,%d]", id, in, start, end)
			}
		}
		if _, err := sub.Add(node.Op, ins...); err != nil {
			return nil, err
		}
	}
	flops, err := sub.FLOPs()
	if err != nil {
		return nil, err
	}
	subShapes, err := sub.Shapes()
	if err != nil {
		return nil, err
	}
	u := &Unit{
		Name:       g.Node(end).Op.Name(),
		Sub:        sub,
		InShape:    inShape,
		OutShape:   shapes[end],
		FLOPs:      flops,
		ParamBytes: sub.ParamBytes(),
		shapes:     subShapes,
	}
	u.Spatial = unitSpatial(u)
	u.Channel = unitChannel(u)
	return u, nil
}

// unitSpatial reports whether all ops have a local height response and the
// boundary tensors are CHW feature maps.
func unitSpatial(u *Unit) bool {
	if len(u.InShape) != 3 || len(u.OutShape) != 3 {
		return false
	}
	for _, node := range u.Sub.Nodes() {
		if _, ok := node.Op.(nn.Spatial); !ok {
			return false
		}
	}
	return true
}

// unitChannel reports whether the unit is a single weighted op whose output
// channels split independently, optionally followed by fused per-channel
// element-wise ops.
func unitChannel(u *Unit) bool {
	nodes := u.Sub.Nodes()
	if len(nodes) == 0 {
		return false
	}
	switch nodes[0].Op.(type) {
	case *nn.Conv2D, *nn.Dense, *nn.DepthwiseConv2D, *nn.FusedConv2D, *nn.FusedDense:
	default:
		return false
	}
	if _, ok := nodes[0].Op.(nn.ChannelSliceable); !ok {
		return false
	}
	for _, node := range nodes[1:] {
		switch node.Op.(type) {
		case *nn.BatchNorm, *nn.ReLU:
			// per-channel element-wise: fine
		default:
			return false
		}
		if len(node.Inputs) != 1 || node.Inputs[0] != node.ID-1 {
			return false
		}
	}
	return true
}

// mergeElementwise fuses pure element-wise single-op units (ReLU,
// BatchNorm) into their predecessor (§III-C: "merge consecutive
// element-wise layers into the preceding weight-intensive layers").
func mergeElementwise(units []*Unit) []*Unit {
	var out []*Unit
	for _, u := range units {
		if len(out) > 0 && isElementwiseUnit(u) {
			prev := out[len(out)-1]
			merged, err := fuseUnits(prev, u)
			if err == nil {
				out[len(out)-1] = merged
				continue
			}
		}
		out = append(out, u)
	}
	return out
}

// isElementwiseUnit reports whether the unit is a single ReLU or BatchNorm.
func isElementwiseUnit(u *Unit) bool {
	if u.Sub.Len() != 1 {
		return false
	}
	switch u.Sub.Node(0).Op.(type) {
	case *nn.ReLU, *nn.BatchNorm:
		return true
	}
	return false
}

// fuseUnits appends b's ops to a, producing a combined unit.
func fuseUnits(a, b *Unit) (*Unit, error) {
	sub := graph.New(a.Sub.Name+"+"+b.Name, a.InShape)
	for _, node := range a.Sub.Nodes() {
		if _, err := sub.Add(node.Op, node.Inputs...); err != nil {
			return nil, err
		}
	}
	base := a.Sub.Len()
	for _, node := range b.Sub.Nodes() {
		ins := make([]int, len(node.Inputs))
		for i, in := range node.Inputs {
			if in == graph.InputID {
				ins[i] = base - 1
			} else {
				ins[i] = in + base
			}
		}
		if _, err := sub.Add(node.Op, ins...); err != nil {
			return nil, err
		}
	}
	subShapes, err := sub.Shapes()
	if err != nil {
		return nil, err
	}
	u := &Unit{
		Name:       a.Name,
		Sub:        sub,
		InShape:    a.InShape,
		OutShape:   b.OutShape,
		FLOPs:      a.FLOPs + b.FLOPs,
		ParamBytes: a.ParamBytes + b.ParamBytes,
		shapes:     subShapes,
	}
	u.Spatial = unitSpatial(u)
	u.Channel = unitChannel(u)
	return u, nil
}

// ForwardChain runs units sequentially with full (monolithic) execution —
// the reference the partitioned paths are tested against.
func ForwardChain(units []*Unit, x *tensor.Tensor) (*tensor.Tensor, error) {
	cur := x
	for _, u := range units {
		out, err := u.Sub.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("partition: unit %d (%s): %w", u.Index, u.Name, err)
		}
		cur = out
	}
	return cur, nil
}

// ForwardChainBatch runs units sequentially over a batch of inputs with
// cross-query batched kernels (graph.ForwardBatch per unit). Bitwise
// identical to calling ForwardChain once per input.
func ForwardChainBatch(units []*Unit, xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	cur := xs
	for _, u := range units {
		outs, err := u.Sub.ForwardBatch(cur)
		if err != nil {
			return nil, fmt.Errorf("partition: unit %d (%s): %w", u.Index, u.Name, err)
		}
		cur = outs
	}
	return cur, nil
}

// InitUnits materializes weights for every unit deterministically.
func InitUnits(units []*Unit, seed int64) {
	for _, u := range units {
		u.Sub.Init(seed + int64(u.Index))
	}
}
