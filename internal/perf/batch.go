package perf

// Batch-parameterized prediction (DESIGN.md §13). A batched fork-join round
// moves batch× the activations and does batch× the compute, but pays the
// per-round invocation overheads — request fan-out and the EMG
// communication draws — once. The planner uses these predictions to choose
// a plan *for* a batch size: deeper parallelism amortizes better as the
// compute share grows, so the throughput-optimal plan can differ from the
// latency-optimal one.

import (
	"fmt"

	"gillis/internal/partition"
)

// BatchPrediction is a plan prediction at an explicit batch size, extended
// with the throughput objectives the planner ranks by.
type BatchPrediction struct {
	PlanPrediction
	// Batch is the queries per fork-join round the prediction models.
	Batch int
	// QPS is the modeled steady-state throughput: Batch queries per
	// LatencyMs round.
	QPS float64
	// CostPerQueryMs is the billed milliseconds attributed to each query:
	// BilledMs / Batch.
	CostPerQueryMs float64
	// QueriesPer1KBilledMs is the throughput-per-cost objective
	// (queries/sec/$ with billed time as the cost proxy): queries served
	// per thousand billed milliseconds.
	QueriesPer1KBilledMs float64
}

// PredictGroupBatch is PredictGroup at an explicit batch size; batch 1
// reproduces PredictGroup bit-for-bit.
func (m *Model) PredictGroupBatch(units []*partition.Unit, gp partition.GroupPlan, batch int) (GroupPrediction, error) {
	return m.predictGroupBatch(units, gp, batch)
}

// PredictPlanBatch estimates a full plan serving batches of the given size
// and derives the throughput objectives. Batch 1 reproduces PredictPlan
// bit-for-bit.
func (m *Model) PredictPlanBatch(units []*partition.Unit, plan *partition.Plan, batch int) (BatchPrediction, error) {
	if batch < 1 {
		return BatchPrediction{}, fmt.Errorf("perf: batch must be positive, got %d", batch)
	}
	pp, err := m.predictPlanBatch(units, plan, batch)
	if err != nil {
		return BatchPrediction{}, err
	}
	out := BatchPrediction{PlanPrediction: pp, Batch: batch}
	if pp.LatencyMs > 0 {
		out.QPS = float64(batch) / (pp.LatencyMs / 1000)
	}
	if pp.BilledMs > 0 {
		out.CostPerQueryMs = float64(pp.BilledMs) / float64(batch)
		out.QueriesPer1KBilledMs = float64(batch) * 1000 / float64(pp.BilledMs)
	}
	return out, nil
}
