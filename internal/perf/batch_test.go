package perf

import (
	"testing"

	"gillis/internal/partition"
)

func batchTestPlan(t *testing.T, units []*partition.Unit) *partition.Plan {
	t.Helper()
	plan := &partition.Plan{Model: "vgg11", Groups: []partition.GroupPlan{
		{First: 0, Last: 1, Option: partition.Option{Dim: partition.DimSpatial, Parts: 4}},
		{First: 2, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	if err := plan.Validate(units); err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestPredictPlanBatchOneBitExact pins the refactor contract: the batched
// predictor at batch 1 is the unbatched predictor, bit for bit, for both
// a parallel plan and the Default baseline.
func TestPredictPlanBatchOneBitExact(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg11")
	plans := []*partition.Plan{
		batchTestPlan(t, units),
		{Model: "vgg11", Groups: []partition.GroupPlan{
			{First: 0, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
		}},
	}
	for pi, plan := range plans {
		want, err := m.PredictPlan(units, plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.PredictPlanBatch(units, plan, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.LatencyMs != want.LatencyMs || got.BilledMs != want.BilledMs || got.OOM != want.OOM {
			t.Fatalf("plan %d: batch-1 prediction diverged: %+v vs %+v", pi, got.PlanPrediction, want)
		}
		for gi := range want.Groups {
			w, g := want.Groups[gi], got.Groups[gi]
			if g.LatencyMs != w.LatencyMs || g.UploadMs != w.UploadMs ||
				g.OverheadMs != w.OverheadMs || g.DownloadMs != w.DownloadMs {
				t.Fatalf("plan %d group %d: batch-1 group prediction diverged: %+v vs %+v", pi, gi, g, w)
			}
		}
		if got.Batch != 1 || got.CostPerQueryMs != float64(want.BilledMs) {
			t.Fatalf("plan %d: batch-1 objectives wrong: %+v", pi, got)
		}
	}
}

// TestBatchAmortizesOverheads pins the economics: growing the batch must
// raise the modeled latency sublinearly (the per-round overheads are paid
// once), which makes the per-query cost fall and the throughput-per-cost
// objective rise monotonically over {1,2,4,8}.
func TestBatchAmortizesOverheads(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg11")
	plan := batchTestPlan(t, units)
	var prev BatchPrediction
	for i, batch := range []int{1, 2, 4, 8} {
		bp, err := m.PredictPlanBatch(units, plan, batch)
		if err != nil {
			t.Fatal(err)
		}
		if bp.OOM {
			t.Fatalf("batch %d OOM: %s", batch, bp.OOMReason)
		}
		if i > 0 {
			ratio := float64(batch) / float64(prev.Batch)
			if bp.LatencyMs >= prev.LatencyMs*ratio {
				t.Errorf("batch %d latency %.2f not sublinear vs batch %d latency %.2f",
					batch, bp.LatencyMs, prev.Batch, prev.LatencyMs)
			}
			if bp.CostPerQueryMs >= prev.CostPerQueryMs {
				t.Errorf("batch %d cost/query %.2f did not fall from %.2f",
					batch, bp.CostPerQueryMs, prev.CostPerQueryMs)
			}
			if bp.QueriesPer1KBilledMs <= prev.QueriesPer1KBilledMs {
				t.Errorf("batch %d queries/1k-billed-ms %.4f did not rise from %.4f",
					batch, bp.QueriesPer1KBilledMs, prev.QueriesPer1KBilledMs)
			}
			if bp.QPS <= prev.QPS {
				t.Errorf("batch %d QPS %.3f did not rise from %.3f", batch, bp.QPS, prev.QPS)
			}
		}
		prev = bp
	}
}

// TestPredictPlanBatchValidation covers the argument contract and the
// batch-scaled OOM check (activations scale with the batch, weights do
// not).
func TestPredictPlanBatchValidation(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg11")
	plan := batchTestPlan(t, units)
	if _, err := m.PredictPlanBatch(units, plan, 0); err == nil {
		t.Error("batch 0 must be rejected")
	}
	if _, err := m.PredictGroupBatch(units, plan.Groups[0], -1); err == nil {
		t.Error("negative batch must be rejected")
	}
	// A huge batch must eventually blow the activation budget.
	bp, err := m.PredictPlanBatch(units, plan, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bp.OOM {
		t.Error("a million-query batch should exceed the activation budget")
	}
}
