// Package perf implements Gillis's performance model (§IV-A): given the
// profiled per-layer-type runtime regressions and the fitted EMG
// communication-delay distribution, it predicts the execution latency and
// billed cost of any layer grouping / parallelization / placement strategy.
// Both partitioning algorithms — the latency-optimal dynamic program and the
// SLO-aware reinforcement learner — search strategies entirely against this
// model, never against the live platform.
package perf

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gillis/internal/nn"
	"gillis/internal/partition"
	"gillis/internal/platform"
	"gillis/internal/profile"
	"gillis/internal/stats"
)

// Model is a fitted performance model for one platform.
type Model struct {
	cfg     platform.Config
	layers  map[nn.Kind][]float64
	comm    stats.EMG
	netMBps float64

	mu          sync.Mutex
	maxCommMemo map[int]float64 // ExpectedMax is a pure function of n
}

// New assembles a model from fitted components.
func New(cfg platform.Config, layers map[nn.Kind][]float64, comm stats.EMG, netMBps float64) (*Model, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("perf: no layer models")
	}
	if err := comm.Validate(); err != nil {
		return nil, err
	}
	if netMBps <= 0 {
		return nil, fmt.Errorf("perf: non-positive bandwidth %v", netMBps)
	}
	return &Model{cfg: cfg, layers: layers, comm: comm, netMBps: netMBps, maxCommMemo: make(map[int]float64)}, nil
}

// Build profiles the platform end to end (§IV-A) and returns the fitted
// model. repeats controls layer-profiling repetitions; commRuns the number
// of communication round-trips.
func Build(cfg platform.Config, seed int64, repeats, commRuns int) (*Model, error) {
	samples, err := profile.ProfileLayers(cfg, seed, repeats)
	if err != nil {
		return nil, fmt.Errorf("perf: layer profiling: %w", err)
	}
	layers, err := profile.FitLayerModels(samples)
	if err != nil {
		return nil, err
	}
	comm, err := profile.ProfileComm(cfg, seed+1, commRuns)
	if err != nil {
		return nil, fmt.Errorf("perf: comm profiling: %w", err)
	}
	return New(cfg, layers, comm.Overhead, comm.NetMBps)
}

// Platform returns the platform profile the model was fitted for.
func (m *Model) Platform() platform.Config { return m.cfg }

// Priors rescale a fitted model against live telemetry: the adaptive
// controller observes attained compute times and invocation overheads,
// compares them with the model's predictions, and derives multiplicative
// corrections. Scale 1 means "as fitted"; 2 means "the platform is running
// twice as slow as profiled".
type Priors struct {
	// ComputeScale multiplies every layer-model coefficient (degraded or
	// straggler-heavy platforms inflate compute uniformly to first order).
	ComputeScale float64
	// CommScale linearly rescales the invocation-overhead EMG (Mu and
	// Sigma scale up, Lambda — a rate — scales down), preserving its shape
	// while moving its mean and tail together.
	CommScale float64
}

// WithPriors returns a new model with the priors applied to a copy of this
// model's fitted components; the receiver is unchanged. Planners re-run
// against the returned model to produce plans matched to the observed
// regime.
func (m *Model) WithPriors(pr Priors) (*Model, error) {
	if pr.ComputeScale <= 0 || pr.CommScale <= 0 {
		return nil, fmt.Errorf("perf: non-positive prior scales %+v", pr)
	}
	layers := make(map[nn.Kind][]float64, len(m.layers))
	for k, w := range m.layers {
		sw := make([]float64, len(w))
		for i, c := range w {
			sw[i] = c * pr.ComputeScale
		}
		layers[k] = sw
	}
	comm := stats.EMG{
		Mu:     m.comm.Mu * pr.CommScale,
		Sigma:  m.comm.Sigma * pr.CommScale,
		Lambda: m.comm.Lambda / pr.CommScale,
	}
	return New(m.cfg, layers, comm, m.netMBps)
}

// Comm returns the fitted invocation-overhead distribution.
func (m *Model) Comm() stats.EMG { return m.comm }

// NetMBps returns the fitted payload bandwidth.
func (m *Model) NetMBps() float64 { return m.netMBps }

// OpTimeMs predicts one operator's runtime from its fitted kind model.
func (m *Model) OpTimeMs(op nn.Op, inShapes [][]int) (float64, error) {
	w, ok := m.layers[op.Kind()]
	if !ok {
		return 0, fmt.Errorf("perf: no model for layer kind %s", op.Kind())
	}
	bytes, err := profile.OpBytes(op, inShapes)
	if err != nil {
		return 0, err
	}
	ms := stats.Dot(w, profile.Features(op.FLOPs(inShapes...), bytes))
	if ms < 0 {
		ms = 0
	}
	return ms, nil
}

// UnitTimeMs predicts a unit's full (unpartitioned) compute time by summing
// its operator predictions (§IV-A: "we infer its runtime by summing up all
// the predicted layer execution times").
func (m *Model) UnitTimeMs(u *partition.Unit) (float64, error) {
	shapes := u.NodeShapes()
	var total float64
	for _, node := range u.Sub.Nodes() {
		ins := make([][]int, len(node.Inputs))
		for i, in := range node.Inputs {
			if in < 0 {
				ins[i] = u.InShape
			} else {
				ins[i] = shapes[in]
			}
		}
		ms, err := m.OpTimeMs(node.Op, ins)
		if err != nil {
			return 0, err
		}
		total += ms
	}
	return total, nil
}

// GroupComputeMs predicts the monolithic compute time of units[first..last].
func (m *Model) GroupComputeMs(units []*partition.Unit, first, last int) (float64, error) {
	var total float64
	for _, u := range units[first : last+1] {
		ms, err := m.UnitTimeMs(u)
		if err != nil {
			return 0, err
		}
		total += ms
	}
	return total, nil
}

// TransferMs predicts a payload transfer time over the function link.
func (m *Model) TransferMs(bytes int64) float64 {
	return float64(bytes) / 1e6 / m.netMBps * 1000
}

// MaxCommMs predicts the expected maximum invocation overhead across n
// concurrent workers via EMG order statistics (§IV-A).
func (m *Model) MaxCommMs(n int) float64 {
	if n <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.maxCommMemo[n]; ok {
		return v
	}
	v := m.comm.ExpectedMax(n)
	m.maxCommMemo[n] = v
	return v
}

// expectedForkJoinMs estimates E[max_i(offset_i + overhead_i + comp_i)]
// where overhead_i are i.i.d. draws from the fitted EMG distribution —
// the generalization of the n-th order statistic to workers with
// deterministic start offsets. A fixed-seed Monte Carlo keeps the
// prediction deterministic.
func (m *Model) expectedForkJoinMs(offsets, comps []float64) float64 {
	n := len(offsets)
	if n == 0 {
		return 0
	}
	const trials = 1200
	rng := rand.New(rand.NewSource(0x6f725374))
	var sum float64
	for t := 0; t < trials; t++ {
		worst := math.Inf(-1)
		for i := 0; i < n; i++ {
			v := offsets[i] + m.comm.Sample(rng) + comps[i]
			if v > worst {
				worst = v
			}
		}
		sum += worst
	}
	return sum / trials
}

// GroupPrediction is the model's estimate for one group plan.
type GroupPrediction struct {
	// LatencyMs is the master-observed time for the group.
	LatencyMs float64
	// WorkerMs are the predicted handler durations of the worker functions.
	WorkerMs []float64
	// UploadMs, OverheadMs and DownloadMs decompose the communication.
	UploadMs, OverheadMs, DownloadMs float64
	// OOM marks a plan that exceeds a function's memory budget.
	OOM bool
	// OOMReason explains the violation.
	OOMReason string
}

// PredictGroup estimates the latency of one layer group under a group plan
// (Algorithm 1's latency oracle for a given parallelization option and
// master participation).
func (m *Model) PredictGroup(units []*partition.Unit, gp partition.GroupPlan) (GroupPrediction, error) {
	return m.predictGroupBatch(units, gp, 1)
}

// predictGroupBatch is PredictGroup with an explicit batch dimension:
// compute and payload bytes scale with the batch, while the per-round
// invocation overheads (request fan-out, EMG cold-path draws) are paid
// once — the amortization cross-query batching buys. Every batch
// scaling is a multiplication by float64(batch) or int64(batch), so
// batch 1 reproduces the unbatched prediction bit-for-bit.
func (m *Model) predictGroupBatch(units []*partition.Unit, gp partition.GroupPlan, batch int) (GroupPrediction, error) {
	if batch < 1 {
		return GroupPrediction{}, fmt.Errorf("perf: batch must be positive, got %d", batch)
	}
	bf, bi := float64(batch), int64(batch)
	ext, err := partition.GroupExtent(units, gp.First, gp.Last, gp.Option)
	if err != nil {
		return GroupPrediction{}, err
	}
	var pred GroupPrediction
	budget := int64(m.cfg.WeightBudgetMB) * 1e6
	if ext.WeightBytes+ext.ActBytes*bi > budget {
		pred.OOM = true
		pred.OOMReason = fmt.Sprintf("partition weights+activations %d MB exceed budget %d MB",
			(ext.WeightBytes+ext.ActBytes*bi)/1e6, budget/1e6)
	}
	baseMs, err := m.GroupComputeMs(units, gp.First, gp.Last)
	if err != nil {
		return GroupPrediction{}, err
	}
	baseMs *= bf
	groupFLOPs := int64(0)
	for _, u := range units[gp.First : gp.Last+1] {
		groupFLOPs += u.FLOPs
	}
	scale := func(flops int64) float64 {
		if groupFLOPs == 0 {
			return 0
		}
		return baseMs * float64(flops) / float64(groupFLOPs)
	}

	if gp.Option.Dim == partition.DimNone {
		if gp.OnMaster {
			pred.LatencyMs = baseMs
			return pred, nil
		}
		up := m.cfg.RequestOverheadMs + m.TransferMs(ext.InBytesTotal*bi)
		over := m.MaxCommMs(1)
		down := m.TransferMs(ext.OutBytesTotal * bi)
		pred.UploadMs, pred.OverheadMs, pred.DownloadMs = up, over, down
		pred.WorkerMs = []float64{baseMs}
		pred.LatencyMs = up + over + baseMs + down
		return pred, nil
	}

	// Parallel execution: collect per-partition compute and payloads.
	type part struct {
		flops   int64
		in, out int64
	}
	var parts []part
	switch gp.Option.Dim {
	case partition.DimSpatial:
		slices, err := partition.SpatialSlices(units[gp.First:gp.Last+1], gp.Option.Parts)
		if err != nil {
			return GroupPrediction{}, err
		}
		for _, ps := range slices {
			parts = append(parts, part{flops: ps.FLOPs, in: ps.InBytes, out: ps.OutBytes})
		}
	case partition.DimChannel:
		slices, err := partition.ChannelSlices(units[gp.First], gp.Option.Parts)
		if err != nil {
			return GroupPrediction{}, err
		}
		for _, cs := range slices {
			parts = append(parts, part{flops: cs.FLOPs, in: cs.InBytes, out: cs.OutBytes})
		}
	default:
		return GroupPrediction{}, fmt.Errorf("perf: unknown option %v", gp.Option)
	}

	workerParts := parts
	var masterMs float64
	if gp.OnMaster {
		masterMs = scale(parts[0].flops)
		workerParts = parts[1:]
	}
	var upTotal, downTotal, maxPartDown float64
	offsets := make([]float64, 0, len(workerParts))
	comps := make([]float64, 0, len(workerParts))
	for _, wp := range workerParts {
		upTotal += m.cfg.RequestOverheadMs + m.TransferMs(wp.in*bi)
		offsets = append(offsets, upTotal) // upload prefix: when this worker's request is out
		d := m.TransferMs(wp.out * bi)
		downTotal += d
		if d > maxPartDown {
			maxPartDown = d
		}
		ms := scale(wp.flops)
		pred.WorkerMs = append(pred.WorkerMs, ms)
		comps = append(comps, ms)
	}
	over := m.MaxCommMs(len(workerParts))
	// Workers start staggered by their upload slots, so their responses
	// partially drain the downlink before the last worker finishes; the
	// effective serialized tail is between one response and the full total.
	downEff := (downTotal + maxPartDown) / 2
	pred.UploadMs, pred.OverheadMs, pred.DownloadMs = upTotal, over, downEff

	// Fork-join completion: the expected maximum over workers of
	// (upload prefix + EMG overhead + compute), by order statistics over
	// the fitted distribution with deterministic offsets; the master
	// computes its own partition concurrently with the uploads.
	workerSide := m.expectedForkJoinMs(offsets, comps) + downEff
	masterSide := masterMs
	if upTotal > masterSide {
		masterSide = upTotal
	}
	if masterSide > workerSide {
		pred.LatencyMs = masterSide
	} else {
		pred.LatencyMs = workerSide
	}
	// Reassembly (memory-bandwidth bound concatenation).
	if m.cfg.MemGBps > 0 {
		pred.LatencyMs += float64(ext.OutBytesTotal*bi) / 1e9 / m.cfg.MemGBps * 1000
	}
	return pred, nil
}

// PlanPrediction is the model's estimate for a complete strategy.
type PlanPrediction struct {
	// LatencyMs is the end-to-end inference latency (master duration).
	LatencyMs float64
	// BilledMs is the billed function duration C^S(G) of Eq. (2).
	BilledMs int64
	// Groups holds the per-group predictions.
	Groups []GroupPrediction
	// OOM marks an infeasible plan; OOMReason explains it.
	OOM       bool
	OOMReason string
}

// PredictPlan estimates latency and cost of a full plan, checking both the
// per-worker and the cumulative master memory budgets.
func (m *Model) PredictPlan(units []*partition.Unit, plan *partition.Plan) (PlanPrediction, error) {
	bp, err := m.PredictPlanBatch(units, plan, 1)
	if err != nil {
		return PlanPrediction{}, err
	}
	return bp.PlanPrediction, nil
}

// predictPlanBatch estimates a full plan serving batches of the given size
// in every fork-join round.
func (m *Model) predictPlanBatch(units []*partition.Unit, plan *partition.Plan, batch int) (PlanPrediction, error) {
	if err := plan.Validate(units); err != nil {
		return PlanPrediction{}, err
	}
	var out PlanPrediction
	budget := int64(m.cfg.WeightBudgetMB) * 1e6
	var masterBytes int64
	for _, gp := range plan.Groups {
		pred, err := m.predictGroupBatch(units, gp, batch)
		if err != nil {
			return PlanPrediction{}, err
		}
		out.Groups = append(out.Groups, pred)
		out.LatencyMs += pred.LatencyMs
		if pred.OOM && !out.OOM {
			out.OOM, out.OOMReason = true, pred.OOMReason
		}
		if gp.OnMaster {
			ext, err := partition.GroupExtent(units, gp.First, gp.Last, gp.Option)
			if err != nil {
				return PlanPrediction{}, err
			}
			masterBytes += ext.WeightBytes
		}
		for _, wms := range pred.WorkerMs {
			out.BilledMs += billedMs(wms, m.cfg.BillingGranMs)
		}
	}
	if masterBytes > budget && !out.OOM {
		out.OOM = true
		out.OOMReason = fmt.Sprintf("master resident weights %d MB exceed budget %d MB", masterBytes/1e6, budget/1e6)
	}
	out.BilledMs += billedMs(out.LatencyMs, m.cfg.BillingGranMs)
	return out, nil
}

// PredictDefault estimates single-function (unpartitioned) serving: the
// Default baseline. It returns an OOM prediction when the model does not
// fit the weight budget.
func (m *Model) PredictDefault(units []*partition.Unit) (PlanPrediction, error) {
	plan := &partition.Plan{
		Model: "default",
		Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}},
	}
	return m.PredictPlan(units, plan)
}

func billedMs(ms float64, gran int64) int64 {
	if ms <= 0 {
		return 0
	}
	return int64(math.Ceil(ms/float64(gran))) * gran
}
