package perf

import (
	"math"
	"strings"
	"sync"
	"testing"

	"gillis/internal/models"
	"gillis/internal/nn"
	"gillis/internal/partition"
	"gillis/internal/platform"
)

// sharedModel builds one fitted Lambda model for all tests (profiling runs
// a few hundred simulated invocations).
var (
	buildOnce   sync.Once
	lambdaModel *Model
	buildErr    error
)

func lambda(t *testing.T) *Model {
	t.Helper()
	buildOnce.Do(func() {
		lambdaModel, buildErr = Build(platform.AWSLambda(), 1, 2, 300)
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return lambdaModel
}

func unitsOf(t *testing.T, name string) []*partition.Unit {
	t.Helper()
	g, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	units, err := partition.Linearize(g)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func TestBuildValidations(t *testing.T) {
	cfg := platform.AWSLambda()
	if _, err := New(cfg, nil, cfg.InvokeOverhead, 10); err == nil {
		t.Fatal("expected no-layer-models error")
	}
	m := lambda(t)
	if _, err := New(cfg, map[nn.Kind][]float64{nn.KindConv: {0, 1, 0}}, cfg.InvokeOverhead, -1); err == nil {
		t.Fatal("expected bad-bandwidth error")
	}
	if m.NetMBps() <= 0 || m.Comm().Validate() != nil {
		t.Fatal("fitted model invalid")
	}
}

func TestUnitTimeAccuracy(t *testing.T) {
	// Predicted model runtime vs ground truth (the simulator's cost law):
	// Fig. 15 top-left reports ≤9% error.
	m := lambda(t)
	cfg := m.Platform()
	for _, name := range []string{"vgg19", "wrn50-3", "rnn3"} {
		units := unitsOf(t, name)
		var pred, truth float64
		for _, u := range units {
			ms, err := m.UnitTimeMs(u)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			pred += ms
			shapes, err := u.Sub.Shapes()
			if err != nil {
				t.Fatal(err)
			}
			for _, node := range u.Sub.Nodes() {
				ins := make([][]int, len(node.Inputs))
				for i, in := range node.Inputs {
					if in < 0 {
						ins[i] = u.InShape
					} else {
						ins[i] = shapes[in]
					}
				}
				fl := node.Op.FLOPs(ins...)
				var bytes int64
				for _, s := range ins {
					n := int64(4)
					for _, d := range s {
						n *= int64(d)
					}
					bytes += n
				}
				outShape, err := node.Op.OutShape(ins...)
				if err != nil {
					t.Fatal(err)
				}
				n := int64(4)
				for _, d := range outShape {
					n *= int64(d)
				}
				bytes += n + node.Op.ParamCount()*4
				truth += float64(fl)/(cfg.GFLOPS*1e6) + float64(bytes)/(cfg.MemGBps*1e6) + cfg.OpOverheadMs
			}
		}
		if rel := math.Abs(pred-truth) / truth; rel > 0.09 {
			t.Errorf("%s: predicted %.0f ms vs truth %.0f ms (%.1f%% error)", name, pred, truth, rel*100)
		}
	}
}

func TestPredictGroupParallelSpeedup(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg16")
	// A heavy early conv group should get faster with moderate parallelism.
	gp := func(parts int) partition.GroupPlan {
		opt := partition.Option{Dim: partition.DimSpatial, Parts: parts}
		if parts == 1 {
			opt = partition.Option{Dim: partition.DimNone, Parts: 1}
		}
		return partition.GroupPlan{First: 0, Last: 2, Option: opt, OnMaster: parts == 1}
	}
	p1, err := m.PredictGroup(units, gp(1))
	if err != nil {
		t.Fatal(err)
	}
	p4, err := m.PredictGroup(units, gp(4))
	if err != nil {
		t.Fatal(err)
	}
	if p4.LatencyMs >= p1.LatencyMs {
		t.Fatalf("4-way parallel (%.0f ms) should beat single-function (%.0f ms)", p4.LatencyMs, p1.LatencyMs)
	}
	if len(p4.WorkerMs) != 4 {
		t.Fatalf("worker count %d, want 4", len(p4.WorkerMs))
	}
}

func TestPredictGroupMasterParticipation(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg16")
	opt := partition.Option{Dim: partition.DimSpatial, Parts: 4}
	without, err := m.PredictGroup(units, partition.GroupPlan{First: 0, Last: 2, Option: opt})
	if err != nil {
		t.Fatal(err)
	}
	with, err := m.PredictGroup(units, partition.GroupPlan{First: 0, Last: 2, Option: opt, OnMaster: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.WorkerMs) != 3 || len(without.WorkerMs) != 4 {
		t.Fatalf("worker counts %d/%d, want 3/4", len(with.WorkerMs), len(without.WorkerMs))
	}
	// Master participation uploads one slab fewer.
	if with.UploadMs >= without.UploadMs {
		t.Fatalf("master participation should reduce upload: %.1f vs %.1f", with.UploadMs, without.UploadMs)
	}
}

func TestPredictGroupOOM(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "wrn34-5") // 2.1 GB of weights
	full := partition.GroupPlan{
		First: 0, Last: len(units) - 1,
		Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
		OnMaster: true,
	}
	pred, err := m.PredictGroup(units, full)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.OOM {
		t.Fatal("WRN-34-5 whole-model group must OOM a 1.4 GB budget")
	}
	if !strings.Contains(pred.OOMReason, "budget") {
		t.Fatalf("OOM reason unhelpful: %q", pred.OOMReason)
	}
}

func TestPredictDefaultMatchesPaperOOMFrontier(t *testing.T) {
	m := lambda(t)
	cases := map[string]bool{ // model → should fit
		"vgg19":   true,
		"wrn34-4": true,
		"wrn50-3": true,
		"wrn34-5": false,
		"wrn50-4": false,
		"rnn9":    true,
		"rnn10":   false,
	}
	for name, fits := range cases {
		pred, err := m.PredictDefault(unitsOf(t, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pred.OOM == fits {
			t.Errorf("%s: OOM=%v, paper says fits=%v", name, pred.OOM, fits)
		}
	}
}

func TestPredictPlanCostAccounting(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg11")
	plan := &partition.Plan{Model: "vgg11", Groups: []partition.GroupPlan{
		{First: 0, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	pred, err := m.PredictPlan(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	if pred.OOM {
		t.Fatalf("vgg11 should fit: %s", pred.OOMReason)
	}
	// Master-only plan: cost = billed master duration only.
	if pred.BilledMs < int64(pred.LatencyMs) || pred.BilledMs > int64(pred.LatencyMs)+1 {
		t.Fatalf("billed %d vs latency %.1f", pred.BilledMs, pred.LatencyMs)
	}
	// Same plan on GCF granularity bills in 100 ms units.
	gcfModel, err := New(platform.GoogleCloudFunctions(), map[nn.Kind][]float64{}, m.Comm(), m.NetMBps())
	if err == nil {
		_ = gcfModel
		t.Fatal("expected error for empty layer models")
	}
}

func TestPredictPlanWorkerBilling(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg11")
	plan := &partition.Plan{Model: "vgg11", Groups: []partition.GroupPlan{
		{First: 0, Last: len(units) - 2, Option: partition.Option{Dim: partition.DimSpatial, Parts: 2}},
		{First: len(units) - 1, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	// vgg tail units (flatten/dense) are not spatial: find a valid split
	// instead — group [0..1] spatial, remainder on master.
	plan = &partition.Plan{Model: "vgg11", Groups: []partition.GroupPlan{
		{First: 0, Last: 1, Option: partition.Option{Dim: partition.DimSpatial, Parts: 2}},
		{First: 2, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	pred, err := m.PredictPlan(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	var workerBilled int64
	for _, g := range pred.Groups {
		for _, w := range g.WorkerMs {
			workerBilled += int64(math.Ceil(w))
		}
	}
	if pred.BilledMs < int64(pred.LatencyMs)+workerBilled {
		t.Fatalf("billed %d must cover master %d + workers %d", pred.BilledMs, int64(pred.LatencyMs), workerBilled)
	}
}

func TestMaxCommMonotone(t *testing.T) {
	m := lambda(t)
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		v := m.MaxCommMs(n)
		if v <= prev {
			t.Fatalf("MaxCommMs(%d)=%v not increasing", n, v)
		}
		prev = v
	}
	if m.MaxCommMs(0) != 0 {
		t.Fatal("MaxCommMs(0) should be 0")
	}
}

// Fig. 7's qualitative shape: for a fixed group, latency on Lambda improves
// with a few workers then degrades at 16, while KNIX (fast interactions)
// keeps improving or flattens.
func TestParallelismSweetSpot(t *testing.T) {
	mLam := lambda(t)
	mKnix, err := Build(platform.KNIX(), 3, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Group the three 256-channel 56×56 convolutions of VGG-16 (units 6-8):
	// compute-heavy with a modest input slab, like the paper's Fig. 7 probe.
	units := unitsOf(t, "vgg16")
	lat := func(m *Model, parts int) float64 {
		gp := partition.GroupPlan{First: 6, Last: 8, Option: partition.Option{Dim: partition.DimSpatial, Parts: parts}}
		if parts == 1 {
			gp.Option = partition.Option{Dim: partition.DimNone, Parts: 1}
			gp.OnMaster = true
		}
		pred, err := m.PredictGroup(units, gp)
		if err != nil {
			t.Fatal(err)
		}
		return pred.LatencyMs
	}
	lam1, lam8, lam16 := lat(mLam, 1), lat(mLam, 8), lat(mLam, 16)
	if lam8 >= lam1 {
		t.Fatalf("lambda: 8 workers (%.1f) should beat 1 (%.1f)", lam8, lam1)
	}
	if lam16 <= lam8 {
		t.Fatalf("lambda: going from 8 (%.1f) to 16 (%.1f) workers should do more harm than good — Fig. 7", lam8, lam16)
	}
	knix8, knix16 := lat(mKnix, 8), lat(mKnix, 16)
	knixDegrade := (knix16 - knix8) / knix8
	lamDegrade := (lam16 - lam8) / lam8
	if knixDegrade >= lamDegrade {
		t.Fatalf("KNIX should degrade less at 16 workers: knix %.2f vs lambda %.2f", knixDegrade, lamDegrade)
	}
}

func TestWithPriors(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg19")

	if _, err := m.WithPriors(Priors{ComputeScale: 0, CommScale: 1}); err == nil {
		t.Fatal("expected non-positive ComputeScale error")
	}
	if _, err := m.WithPriors(Priors{ComputeScale: 1, CommScale: -2}); err == nil {
		t.Fatal("expected non-positive CommScale error")
	}

	// Identity priors reproduce the fitted model's predictions exactly.
	id, err := m.WithPriors(Priors{ComputeScale: 1, CommScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.UnitTimeMs(units[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := id.UnitTimeMs(units[0]); got != base {
		t.Errorf("identity priors changed compute: %v vs %v", got, base)
	}
	if id.Comm() != m.Comm() {
		t.Errorf("identity priors changed comm: %+v vs %+v", id.Comm(), m.Comm())
	}

	// A 2x compute prior doubles per-unit compute predictions and leaves
	// the receiver untouched.
	scaled, err := m.WithPriors(Priors{ComputeScale: 2, CommScale: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := scaled.UnitTimeMs(units[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2*base) > 1e-9*base {
		t.Errorf("2x compute prior: %v, want %v", got, 2*base)
	}
	if after, _ := m.UnitTimeMs(units[0]); after != base {
		t.Errorf("receiver mutated by WithPriors: %v vs %v", after, base)
	}

	// The comm prior scales the EMG mean (Mu + 1/Lambda) linearly and
	// keeps the distribution valid.
	if err := scaled.Comm().Validate(); err != nil {
		t.Fatalf("scaled comm invalid: %v", err)
	}
	baseMean := m.Comm().Mu + 1/m.Comm().Lambda
	scaledMean := scaled.Comm().Mu + 1/scaled.Comm().Lambda
	if math.Abs(scaledMean-1.5*baseMean) > 1e-9*baseMean {
		t.Errorf("comm mean scaled to %v, want %v", scaledMean, 1.5*baseMean)
	}

	// Plan predictions under inflated priors dominate the fitted ones —
	// the property replanning relies on.
	plan := &partition.Plan{
		Model: "vgg19",
		Groups: []partition.GroupPlan{{
			First: 0, Last: len(units) - 1,
			Option:   partition.Option{Dim: partition.DimNone, Parts: 1},
			OnMaster: true,
		}},
	}
	pBase, err := m.PredictPlan(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	pScaled, err := scaled.PredictPlan(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	if pScaled.LatencyMs <= pBase.LatencyMs {
		t.Errorf("inflated priors must inflate latency: %v vs %v", pScaled.LatencyMs, pBase.LatencyMs)
	}
}
