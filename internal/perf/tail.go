package perf

import (
	"math"
	"math/rand"
	"sort"

	"gillis/internal/partition"
)

// TailPrediction summarizes a sampled latency distribution for a plan.
type TailPrediction struct {
	MeanMs float64
	P50Ms  float64
	P95Ms  float64
	P99Ms  float64
}

// PredictPlanTail estimates the latency distribution of a plan by Monte
// Carlo over the fitted EMG communication overheads and the platform's
// compute noise. This extends the paper's mean-latency SLOs to the tail
// SLOs discussed as future work in §VI: the same RL machinery applies once
// the tail can be predicted.
func (m *Model) PredictPlanTail(units []*partition.Unit, plan *partition.Plan, trials int) (TailPrediction, error) {
	if err := plan.Validate(units); err != nil {
		return TailPrediction{}, err
	}
	if trials < 100 {
		trials = 100
	}
	// Precompute deterministic per-group structure once.
	type groupSim struct {
		local    bool    // whole group on the master
		baseMs   float64 // monolithic compute time
		offsets  []float64
		comps    []float64
		masterMs float64
		downEff  float64
		remoteUp float64 // DimNone-on-worker upload
	}
	sims := make([]groupSim, 0, len(plan.Groups))
	for _, gp := range plan.Groups {
		pred, err := m.PredictGroup(units, gp)
		if err != nil {
			return TailPrediction{}, err
		}
		gs := groupSim{downEff: pred.DownloadMs}
		baseMs, err := m.GroupComputeMs(units, gp.First, gp.Last)
		if err != nil {
			return TailPrediction{}, err
		}
		gs.baseMs = baseMs
		switch {
		case gp.Option.Dim == partition.DimNone && gp.OnMaster:
			gs.local = true
		case gp.Option.Dim == partition.DimNone:
			gs.remoteUp = pred.UploadMs
			gs.comps = []float64{baseMs}
		default:
			groupFLOPs := int64(0)
			for _, u := range units[gp.First : gp.Last+1] {
				groupFLOPs += u.FLOPs
			}
			var parts []struct{ flops, in int64 }
			switch gp.Option.Dim {
			case partition.DimSpatial:
				slices, err := partition.SpatialSlices(units[gp.First:gp.Last+1], gp.Option.Parts)
				if err != nil {
					return TailPrediction{}, err
				}
				for _, ps := range slices {
					parts = append(parts, struct{ flops, in int64 }{ps.FLOPs, ps.InBytes})
				}
			case partition.DimChannel:
				slices, err := partition.ChannelSlices(units[gp.First], gp.Option.Parts)
				if err != nil {
					return TailPrediction{}, err
				}
				for _, cs := range slices {
					parts = append(parts, struct{ flops, in int64 }{cs.FLOPs, cs.InBytes})
				}
			}
			scale := func(fl int64) float64 {
				if groupFLOPs == 0 {
					return 0
				}
				return baseMs * float64(fl) / float64(groupFLOPs)
			}
			workerParts := parts
			if gp.OnMaster {
				gs.masterMs = scale(parts[0].flops)
				workerParts = parts[1:]
			}
			var up float64
			for _, wp := range workerParts {
				up += m.cfg.RequestOverheadMs + m.TransferMs(wp.in)
				gs.offsets = append(gs.offsets, up)
				gs.comps = append(gs.comps, scale(wp.flops))
			}
		}
		sims = append(sims, gs)
	}

	noise := func(rng *rand.Rand) float64 {
		if m.cfg.ComputeNoise <= 0 {
			return 1
		}
		return math.Exp(rng.NormFloat64() * m.cfg.ComputeNoise)
	}
	rng := rand.New(rand.NewSource(0x7461696c))
	lat := make([]float64, trials)
	for t := range lat {
		var total float64
		for _, gs := range sims {
			switch {
			case gs.local:
				total += gs.baseMs * noise(rng)
			case gs.remoteUp > 0:
				total += gs.remoteUp + m.comm.Sample(rng) + gs.comps[0]*noise(rng) + gs.downEff
			default:
				worst := gs.masterMs * noise(rng)
				for i, off := range gs.offsets {
					v := off + m.comm.Sample(rng) + gs.comps[i]*noise(rng)
					if v > worst {
						worst = v
					}
				}
				total += worst + gs.downEff
			}
		}
		lat[t] = total
	}
	sort.Float64s(lat)
	q := func(p float64) float64 { return lat[int(p*float64(trials-1))] }
	var mean float64
	for _, v := range lat {
		mean += v
	}
	return TailPrediction{
		MeanMs: mean / float64(trials),
		P50Ms:  q(0.50),
		P95Ms:  q(0.95),
		P99Ms:  q(0.99),
	}, nil
}
