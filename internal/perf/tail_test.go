package perf

import (
	"testing"

	"gillis/internal/partition"
)

func TestPredictPlanTailOrdering(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg16")
	plan := &partition.Plan{Model: "vgg16", Groups: []partition.GroupPlan{
		{First: 0, Last: 5, Option: partition.Option{Dim: partition.DimSpatial, Parts: 4}, OnMaster: true},
		{First: 6, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	tail, err := m.PredictPlanTail(units, plan, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !(tail.P50Ms <= tail.P95Ms && tail.P95Ms <= tail.P99Ms) {
		t.Fatalf("quantiles out of order: %+v", tail)
	}
	if tail.MeanMs <= 0 {
		t.Fatal("mean must be positive")
	}
	// The sampled mean should track the analytic prediction.
	pred, err := m.PredictPlan(units, plan)
	if err != nil {
		t.Fatal(err)
	}
	rel := (tail.MeanMs - pred.LatencyMs) / pred.LatencyMs
	if rel < -0.1 || rel > 0.1 {
		t.Fatalf("sampled mean %.0f vs analytic %.0f (%.1f%%)", tail.MeanMs, pred.LatencyMs, rel*100)
	}
	// Parallel groups have nontrivial tails: p99 strictly above p50.
	if tail.P99Ms <= tail.P50Ms {
		t.Fatal("p99 should exceed p50 for a plan with fork-join rounds")
	}
}

func TestPredictPlanTailDeterministic(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg11")
	plan := &partition.Plan{Model: "vgg11", Groups: []partition.GroupPlan{
		{First: 0, Last: len(units) - 1, Option: partition.Option{Dim: partition.DimNone, Parts: 1}, OnMaster: true},
	}}
	a, err := m.PredictPlanTail(units, plan, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.PredictPlanTail(units, plan, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("tail prediction must be deterministic")
	}
}

func TestPredictPlanTailRejectsBadPlan(t *testing.T) {
	m := lambda(t)
	units := unitsOf(t, "vgg11")
	bad := &partition.Plan{Groups: []partition.GroupPlan{{First: 1, Last: 2, Option: partition.Option{Dim: partition.DimNone, Parts: 1}}}}
	if _, err := m.PredictPlanTail(units, bad, 100); err == nil {
		t.Fatal("expected validation error")
	}
}
