package platform

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gillis/internal/simnet"
)

func TestInjectedFailureBillsPartialWork(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{FailureProb: 1}
	runSim(t, cfg, 1, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(2e9) // 100 ms
			return Payload{Bytes: 1000}, nil
		})
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err == nil {
			t.Fatal("expected injected failure")
		}
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Kind != FaultFailure {
			t.Fatalf("want InvokeError{FaultFailure}, got %v", err)
		}
		// The crashed invocation's work is done and billed — both on the
		// result returned alongside the error and inside the error itself.
		if res.BilledMs < 100 || ie.Res.BilledMs != res.BilledMs {
			t.Errorf("partial billing lost: res=%+v errRes=%+v", res, ie.Res)
		}
		if BilledMsOf(err) != res.TotalBilledMs {
			t.Errorf("BilledMsOf %d, want %d", BilledMsOf(err), res.TotalBilledMs)
		}
		if p.Faulted() != 1 {
			t.Errorf("faulted %d, want 1", p.Faulted())
		}
	})
}

func TestHandlerErrorCarriesBilling(t *testing.T) {
	// Satellite fix: a handler error must not swallow the populated
	// InvokeResult — the platform billed the failed run.
	cfg := fastCfg()
	boom := errors.New("boom")
	runSim(t, cfg, 2, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9) // 50 ms
			return Payload{}, boom
		})
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if !errors.Is(err, boom) {
			t.Fatalf("handler error lost: %v", err)
		}
		if res.HandlerMs < 49 || res.BilledMs < 50 || res.TotalBilledMs != res.BilledMs {
			t.Errorf("billing not populated on handler error: %+v", res)
		}
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Kind != FaultFailure || ie.Res.BilledMs != res.BilledMs {
			t.Errorf("typed error wrong: %#v", err)
		}
	})
}

func TestFailedNestedInvocationChargedToCallerOnce(t *testing.T) {
	cfg := fastCfg()
	runSim(t, cfg, 3, func(p *Platform, proc *simnet.Proc) {
		boom := errors.New("boom")
		_ = p.Register("worker", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9) // 50 ms
			return Payload{}, boom
		})
		var workerBilled int64
		_ = p.Register("master", func(ctx *Ctx, in Payload) (Payload, error) {
			res, err := ctx.Invoke("worker", Payload{Bytes: 100})
			if err == nil {
				return Payload{}, errors.New("worker should fail")
			}
			workerBilled = BilledMsOf(err)
			if res.TotalBilledMs != workerBilled || res.BilledMs < 50 {
				t.Errorf("failed Invoke must surface partial billing: %+v vs %d", res, workerBilled)
			}
			return Payload{}, nil
		})
		res, err := p.InvokeFrom(proc, "master", Payload{})
		if err != nil {
			t.Fatal(err)
		}
		if workerBilled < 50 {
			t.Fatalf("worker billing not in error: %d", workerBilled)
		}
		// Master's total must include the failed worker exactly once.
		want := res.BilledMs + workerBilled
		if res.TotalBilledMs != want {
			t.Errorf("master total %d, want master %d + worker %d", res.TotalBilledMs, res.BilledMs, workerBilled)
		}
	})
}

func TestExecutionTimeoutKillsAndBillsElapsed(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{TimeoutMs: 100}
	runSim(t, cfg, 4, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("slow", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(10e9) // 500 ms >> the 100 ms limit
			return Payload{}, nil
		})
		before := proc.Now()
		res, err := p.InvokeFrom(proc, "slow", Payload{})
		elapsedMs := float64(proc.Now()-before) / 1e6
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Kind != FaultTimeout {
			t.Fatalf("want FaultTimeout, got %v", err)
		}
		if res.HandlerMs != 100 || res.BilledMs != 100 {
			t.Errorf("killed invocation bills the elapsed limit: %+v", res)
		}
		// The caller learns about the kill at the timeout, not after the
		// handler's full 500 ms.
		if elapsedMs > 400 {
			t.Errorf("caller waited %v ms; the kill must cut the wait", elapsedMs)
		}
	})
}

func TestTimeoutDestroysInstance(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{TimeoutMs: 50}
	runSim(t, cfg, 5, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			if d, ok := in.Data.(int64); ok {
				ctx.Compute(d)
			}
			return Payload{}, nil
		})
		if err := p.Prewarm("f", 1); err != nil {
			t.Fatal(err)
		}
		// First invocation times out on the (single) warm instance.
		r1, err := p.InvokeFrom(proc, "f", Payload{Data: int64(10e9)})
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Kind != FaultTimeout {
			t.Fatalf("want timeout, got %v", err)
		}
		if r1.ColdStart {
			t.Error("first invocation should have used the warm instance")
		}
		// The killed instance must not return to the pool: next is cold.
		r2, err := p.InvokeFrom(proc, "f", Payload{Data: int64(0)})
		if err != nil {
			t.Fatal(err)
		}
		if !r2.ColdStart {
			t.Error("killed instance leaked back into the warm pool")
		}
	})
}

func TestFastHandlerSurvivesTimeout(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{TimeoutMs: 1000}
	runSim(t, cfg, 6, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9) // 50 ms < limit
			return Payload{Data: "ok"}, nil
		})
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Resp.Data != "ok" || res.HandlerMs < 49 {
			t.Errorf("fast handler mangled under a timeout limit: %+v", res)
		}
	})
}

func TestStragglerSlowdown(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{StragglerProb: 1, StragglerFactor: 3}
	runSim(t, cfg, 7, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(2e9) // 100 ms healthy
			return Payload{}, nil
		})
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Fatal(err)
		}
		if res.HandlerMs < 295 || res.HandlerMs > 305 {
			t.Errorf("straggler handler %v ms, want ~300", res.HandlerMs)
		}
	})
}

func TestEvictionFailsFastWithoutBilling(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = FaultProfile{EvictionProb: 1}
	runSim(t, cfg, 8, func(p *Platform, proc *simnet.Proc) {
		ran := false
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ran = true
			return Payload{}, nil
		})
		if err := p.Prewarm("f", 1); err != nil {
			t.Fatal(err)
		}
		res, err := p.InvokeFrom(proc, "f", Payload{})
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Kind != FaultEvicted {
			t.Fatalf("want FaultEvicted, got %v", err)
		}
		if ran {
			t.Error("evicted invocation must not run the handler")
		}
		if res.HandlerMs != 0 || res.BilledMs != 0 {
			t.Errorf("eviction bills nothing: %+v", res)
		}
		if res.ColdStart {
			t.Error("first eviction should have claimed the prewarmed instance")
		}
		// The claimed warm instance was destroyed: next acquisition is cold.
		res2, err := p.InvokeFrom(proc, "f", Payload{})
		if !errors.As(err, &ie) || ie.Kind != FaultEvicted {
			t.Fatalf("want FaultEvicted again, got %v", err)
		}
		if !res2.ColdStart {
			t.Error("evicted warm instance leaked back into the pool")
		}
	})
}

func TestFaultScheduleReproducibleFromSeed(t *testing.T) {
	type outcome struct {
		kind FaultKind // 0 = success
		ms   float64
	}
	run := func(seed int64) []outcome {
		cfg := AWSLambda()
		cfg.Faults = FaultProfile{FailureProb: 0.2, StragglerProb: 0.2, StragglerFactor: 4, EvictionProb: 0.1}
		var out []outcome
		runSim(t, cfg, seed, func(p *Platform, proc *simnet.Proc) {
			_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
				ctx.Compute(5e8)
				return Payload{}, nil
			})
			for i := 0; i < 100; i++ {
				res, err := p.InvokeFrom(proc, "f", Payload{})
				o := outcome{ms: res.HandlerMs}
				var ie *InvokeError
				if errors.As(err, &ie) {
					o.kind = ie.Kind
				}
				out = append(out, o)
			}
		})
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at invocation %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i].kind == c[i].kind {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical fault schedule")
	}
	// Faults must actually fire at these rates.
	faults := 0
	for _, o := range a {
		if o.kind != 0 {
			faults++
		}
	}
	if faults < 10 {
		t.Fatalf("only %d/100 faults at ~28%% combined rate", faults)
	}
}

func TestFaultsDoNotPerturbNoiseStream(t *testing.T) {
	// Enabling eviction-free fault draws must leave the EMG overhead and
	// compute-noise stream untouched: successful invocations in a faulty
	// run match the fault-free run exactly until the first actual fault.
	run := func(faults FaultProfile) []float64 {
		cfg := AWSLambda()
		cfg.Faults = faults
		var out []float64
		runSim(t, cfg, 42, func(p *Platform, proc *simnet.Proc) {
			_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
				ctx.Compute(5e8)
				return Payload{}, nil
			})
			for i := 0; i < 20; i++ {
				res, err := p.InvokeFrom(proc, "f", Payload{})
				if err != nil {
					break
				}
				out = append(out, res.HandlerMs+res.OverheadMs)
			}
		})
		return out
	}
	clean := run(FaultProfile{})
	// Probabilities low enough that (deterministically, for this seed) no
	// fault fires in 20 invocations — draws still happen on every one.
	faulty := run(FaultProfile{FailureProb: 1e-9, StragglerProb: 1e-9, EvictionProb: 1e-9})
	if len(faulty) != len(clean) {
		t.Fatalf("a fault fired unexpectedly: %d vs %d invocations", len(faulty), len(clean))
	}
	for i := range clean {
		if clean[i] != faulty[i] {
			t.Fatalf("noise stream perturbed at %d: %v vs %v", i, clean[i], faulty[i])
		}
	}
}

func TestKilledInstanceInvokeFailsFast(t *testing.T) {
	// A zombie (killed) handler's nested invocations fail immediately.
	cfg := fastCfg()
	cfg.Faults = FaultProfile{TimeoutMs: 50}
	runSim(t, cfg, 9, func(p *Platform, proc *simnet.Proc) {
		nested := 0
		_ = p.Register("leaf", func(ctx *Ctx, in Payload) (Payload, error) {
			nested++
			return Payload{}, nil
		})
		_ = p.Register("zombie", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(10e9) // 500 ms: killed at 50
			if _, err := ctx.Invoke("leaf", Payload{}); err != nil {
				return Payload{}, err
			}
			return Payload{}, nil
		})
		_, err := p.InvokeFrom(proc, "zombie", Payload{})
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Kind != FaultTimeout {
			t.Fatalf("want timeout, got %v", err)
		}
		if nested != 0 {
			t.Error("killed instance must not launch nested invocations")
		}
		if !ie.Res.ColdStart {
			t.Error("expected cold start on first invocation")
		}
	})
}

func TestWarmIdleExpiryDeterministic(t *testing.T) {
	cfg := fastCfg()
	cfg.WarmIdleMs = 1000
	runSim(t, cfg, 10, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		if err := p.Prewarm("f", 2); err != nil {
			t.Fatal(err)
		}
		if got := p.WarmCount("f"); got != 2 {
			t.Fatalf("warm after prewarm = %d, want 2", got)
		}
		// One nanosecond short of the idle limit: both instances survive.
		proc.Sleep(1000*time.Millisecond - time.Nanosecond)
		if got := p.WarmCount("f"); got != 2 {
			t.Errorf("warm at idle-1ns = %d, want 2", got)
		}
		// At exactly WarmIdleMs of idleness the platform reclaims them.
		proc.Sleep(time.Nanosecond)
		if got := p.WarmCount("f"); got != 0 {
			t.Errorf("warm at idle = %d, want 0 (expired)", got)
		}
		// The next invocation pays a cold start again.
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.ColdStart {
			t.Error("expired pool must force a cold start")
		}
		// The instance that just finished is freshly stamped and survives
		// a short idle, then expires on its own schedule.
		proc.Sleep(500 * time.Millisecond)
		if got := p.WarmCount("f"); got != 1 {
			t.Errorf("fresh instance expired early: warm = %d, want 1", got)
		}
		proc.Sleep(500 * time.Millisecond)
		if got := p.WarmCount("f"); got != 0 {
			t.Errorf("fresh instance outlived WarmIdleMs: warm = %d, want 0", got)
		}
	})
}

func TestWarmIdleZeroNeverExpires(t *testing.T) {
	cfg := fastCfg() // WarmIdleMs = 0: instances are kept forever
	runSim(t, cfg, 11, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		if err := p.Prewarm("f", 3); err != nil {
			t.Fatal(err)
		}
		proc.Sleep(time.Hour)
		if got := p.WarmCount("f"); got != 3 {
			t.Errorf("warm after 1h with no idle limit = %d, want 3", got)
		}
	})
}

func TestMaxConcurrencyThrottlesWithoutBilling(t *testing.T) {
	env := simnet.NewEnv()
	cfg := fastCfg()
	cfg.MaxConcurrency = 1
	p := New(env, cfg, 12)
	_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
		ctx.Compute(2e9) // 100 ms
		return Payload{}, nil
	})
	var firstErr, throttledErr, retryErr error
	var throttledRes, retryRes InvokeResult
	env.Go("first", func(proc *simnet.Proc) {
		_, firstErr = p.InvokeFrom(proc, "f", Payload{})
	})
	env.Go("second", func(proc *simnet.Proc) {
		proc.Sleep(10 * time.Millisecond) // while "first" is in flight
		throttledRes, throttledErr = p.InvokeFrom(proc, "f", Payload{})
		proc.Sleep(2 * time.Second) // after "first" settles
		retryRes, retryErr = p.InvokeFrom(proc, "f", Payload{})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if firstErr != nil {
		t.Fatalf("admitted invocation failed: %v", firstErr)
	}
	var ie *InvokeError
	if !errors.As(throttledErr, &ie) || ie.Kind != FaultThrottled {
		t.Fatalf("want InvokeError{FaultThrottled}, got %v", throttledErr)
	}
	if !strings.Contains(ie.Error(), "throttled") {
		t.Errorf("throttle error message: %q", ie.Error())
	}
	// A throttled invocation does no work and bills nothing.
	if throttledRes.BilledMs != 0 || throttledRes.TotalBilledMs != 0 || throttledRes.HandlerMs != 0 {
		t.Errorf("throttle must bill nothing: %+v", throttledRes)
	}
	if BilledMsOf(throttledErr) != 0 {
		t.Errorf("BilledMsOf(throttled) = %d, want 0", BilledMsOf(throttledErr))
	}
	if p.Faulted() != 1 {
		t.Errorf("faulted = %d, want 1 (the throttle)", p.Faulted())
	}
	// Once the slot frees, the same caller gets through on the warm
	// instance the first invocation left behind.
	if retryErr != nil {
		t.Fatalf("post-throttle retry failed: %v", retryErr)
	}
	if retryRes.ColdStart {
		t.Error("retry should reuse the warm instance")
	}
}

func TestPrewarmBillsPingCost(t *testing.T) {
	cfg := fastCfg()
	cfg.PrewarmMs = 50
	runSim(t, cfg, 13, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		if err := p.Prewarm("f", 3); err != nil {
			t.Fatal(err)
		}
		if got := p.BilledMsTotal(); got != 150 {
			t.Errorf("prewarm billed %d ms, want 3*50", got)
		}
		if got := p.PrewarmBilledMs(); got != 150 {
			t.Errorf("PrewarmBilledMs = %d, want 150", got)
		}
		if got := p.WarmCount("f"); got != 3 {
			t.Errorf("warm = %d, want 3", got)
		}
		// An invocation's billing stacks on top; the prewarm share stays
		// separately attributable for trace reconciliation.
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.BilledMsTotal(); got != 150+res.TotalBilledMs {
			t.Errorf("total %d, want prewarm 150 + invocation %d", got, res.TotalBilledMs)
		}
		if got := p.PrewarmBilledMs(); got != 150 {
			t.Errorf("PrewarmBilledMs drifted to %d", got)
		}
	})
}

func TestPrewarmFreeByDefault(t *testing.T) {
	runSim(t, fastCfg(), 14, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		if err := p.Prewarm("f", 5); err != nil {
			t.Fatal(err)
		}
		if got := p.BilledMsTotal(); got != 0 {
			t.Errorf("default prewarm billed %d ms, want 0", got)
		}
	})
}

func TestThrottleDoesNotPerturbFaultStream(t *testing.T) {
	// A throttled arrival is rejected before any RNG draw, so the fault
	// schedule seen by admitted invocations is identical with and without
	// throttled traffic interleaved.
	kinds := func(throttleNoise bool) []FaultKind {
		env := simnet.NewEnv()
		cfg := fastCfg()
		cfg.MaxConcurrency = 1
		cfg.Faults = FaultProfile{FailureProb: 0.3}
		p := New(env, cfg, 42)
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(2e9) // 100 ms
			return Payload{}, nil
		})
		var out []FaultKind
		env.Go("driver", func(proc *simnet.Proc) {
			for i := 0; i < 30; i++ {
				_, err := p.InvokeFrom(proc, "f", Payload{})
				var ie *InvokeError
				if errors.As(err, &ie) {
					out = append(out, ie.Kind)
				} else {
					out = append(out, 0)
				}
			}
		})
		if throttleNoise {
			env.Go("noise", func(proc *simnet.Proc) {
				for i := 0; i < 50; i++ {
					proc.Sleep(37 * time.Millisecond)
					_, _ = p.InvokeFrom(proc, "f", Payload{})
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	quiet, noisy := kinds(false), kinds(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("fault schedule perturbed at %d: %v vs %v", i, quiet[i], noisy[i])
		}
	}
}

func TestFaultScheduleResolvesByTime(t *testing.T) {
	degraded := FaultProfile{FailureProb: 0.5}
	recovered := FaultProfile{}
	cfg := fastCfg()
	cfg.Faults = FaultProfile{StragglerProb: 0.1}
	// Deliberately out of order: New sorts a copy by AtMs.
	cfg.FaultSchedule = []FaultTransition{
		{AtMs: 2000, Profile: recovered},
		{AtMs: 1000, Profile: degraded},
	}
	p := New(simnet.NewEnv(), cfg, 1)
	if got := p.Config().FaultSchedule[0].AtMs; got != 1000 {
		t.Fatalf("schedule not sorted: first transition at %v", got)
	}
	cases := []struct {
		atMs float64
		want FaultProfile
	}{
		{0, cfg.Faults},
		{999, cfg.Faults},
		{1000, degraded}, // transition instant inclusive
		{1999, degraded},
		{2000, recovered},
		{50000, recovered},
	}
	for _, c := range cases {
		if got := p.FaultsAt(time.Duration(c.atMs) * time.Millisecond); got != c.want {
			t.Errorf("FaultsAt(%v ms) = %+v, want %+v", c.atMs, got, c.want)
		}
	}
}

func TestFaultScheduleAppliesMidReplay(t *testing.T) {
	// Healthy at t=0, every invocation crashes from t=1s, healthy again
	// from t=2s. The profile is resolved at each invocation's dispatch.
	cfg := fastCfg()
	cfg.FaultSchedule = []FaultTransition{
		{AtMs: 1000, Profile: FaultProfile{FailureProb: 1}},
		{AtMs: 2000, Profile: FaultProfile{}},
	}
	runSim(t, cfg, 5, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(2e8) // 10 ms
			return Payload{Bytes: 10}, nil
		})
		invoke := func() error {
			_, err := p.InvokeFrom(proc, "f", Payload{})
			return err
		}
		if err := invoke(); err != nil {
			t.Fatalf("healthy phase failed: %v", err)
		}
		proc.Sleep(1200*time.Millisecond - (proc.Now()-proc.Now()%time.Millisecond)%time.Millisecond)
		for proc.Now() < 1200*time.Millisecond {
			proc.Sleep(1200*time.Millisecond - proc.Now())
		}
		err := invoke()
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Kind != FaultFailure {
			t.Fatalf("degraded phase: want FaultFailure, got %v", err)
		}
		if k, ok := FaultKindOf(err); !ok || k != FaultFailure {
			t.Errorf("FaultKindOf = %v,%v, want failure,true", k, ok)
		}
		for proc.Now() < 2500*time.Millisecond {
			proc.Sleep(2500*time.Millisecond - proc.Now())
		}
		if err := invoke(); err != nil {
			t.Fatalf("recovered phase failed: %v", err)
		}
	})
}

func TestFaultScheduleTimeoutApplies(t *testing.T) {
	// A TimeoutMs that only exists in a scheduled profile must kill
	// handlers dispatched after the transition — the limit is resolved per
	// invocation, not from the static profile.
	cfg := fastCfg()
	cfg.FaultSchedule = []FaultTransition{
		{AtMs: 500, Profile: FaultProfile{TimeoutMs: 50}},
	}
	runSim(t, cfg, 6, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("slow", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(4e9) // 200 ms >> the scheduled 50 ms limit
			return Payload{}, nil
		})
		if _, err := p.InvokeFrom(proc, "slow", Payload{}); err != nil {
			t.Fatalf("pre-transition invocation must not be killed: %v", err)
		}
		for proc.Now() < 600*time.Millisecond {
			proc.Sleep(600*time.Millisecond - proc.Now())
		}
		res, err := p.InvokeFrom(proc, "slow", Payload{})
		if k, ok := FaultKindOf(err); !ok || k != FaultTimeout {
			t.Fatalf("post-transition: want FaultTimeout, got %v", err)
		}
		if res.HandlerMs != 50 {
			t.Errorf("killed at %v ms, want exactly the 50 ms limit", res.HandlerMs)
		}
	})
}

func TestEmptyFaultScheduleByteIdentical(t *testing.T) {
	// A nil schedule — and a schedule whose only transition re-asserts the
	// base profile — must leave a stochastic replay bit-identical to the
	// single-profile configuration.
	type tally struct {
		faulted, billed int64
		end             time.Duration
	}
	replay := func(sched []FaultTransition) tally {
		env := simnet.NewEnv()
		cfg := AWSLambda()
		cfg.Faults = FaultProfile{FailureProb: 0.2, StragglerProb: 0.1, StragglerFactor: 3}
		cfg.FaultSchedule = sched
		p := New(env, cfg, 77)
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9)
			return Payload{Bytes: 500}, nil
		})
		env.Go("driver", func(proc *simnet.Proc) {
			for i := 0; i < 40; i++ {
				_, _ = p.InvokeFrom(proc, "f", Payload{Bytes: 200})
				proc.Sleep(13 * time.Millisecond)
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return tally{p.Faulted(), p.BilledMsTotal(), env.Now()}
	}
	base := replay(nil)
	same := replay([]FaultTransition{{AtMs: 0, Profile: FaultProfile{FailureProb: 0.2, StragglerProb: 0.1, StragglerFactor: 3}}})
	if base != same {
		t.Fatalf("schedule re-asserting the base profile diverged: %+v vs %+v", base, same)
	}
}
