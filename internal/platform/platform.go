// Package platform simulates serverless FaaS platforms — AWS Lambda, Google
// Cloud Functions, and KNIX — on top of the simnet discrete-event kernel.
// It models the properties that matter to Gillis's partitioning decisions:
// per-instance memory ceilings, effective compute throughput, per-function
// network bandwidth (request payloads serialize on the invoker's uplink),
// EMG-distributed invocation overhead (as measured by the paper in §IV-A),
// cold versus warm starts, billed-duration accounting at the platform's
// billing granularity, and S3-like object storage for the Pipeline
// baseline.
//
// The real clouds are substituted by this simulator (see DESIGN.md); the
// partitioning algorithms consume only profiled performance models, in the
// paper and here alike, so algorithmic behaviour is preserved.
package platform

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gillis/internal/simnet"
	"gillis/internal/stats"
	"gillis/internal/trace"
)

// Config describes one serverless platform.
type Config struct {
	Name string
	// MemoryMB is the per-instance memory ceiling.
	MemoryMB int
	// WeightBudgetMB is the usable model-weight budget M per function after
	// OS, runtime, and activation overheads (1400 MB in §V-A).
	WeightBudgetMB int
	// GFLOPS is the effective single-instance compute throughput.
	GFLOPS float64
	// MemGBps is the effective memory bandwidth: operators pay
	// bytesTouched/MemGBps on top of their FLOP time.
	MemGBps float64
	// OpOverheadMs is the fixed per-operator dispatch cost.
	OpOverheadMs float64
	// NetMBps is the per-function network bandwidth for request/response
	// payloads.
	NetMBps float64
	// RequestOverheadMs is the caller-side CPU cost of issuing one REST
	// invocation (payload serialization, connection handling); it serializes
	// on the caller's uplink, so wide fan-outs pay it per worker.
	RequestOverheadMs float64
	// InvokeOverhead is the REST invocation overhead distribution in
	// milliseconds.
	InvokeOverhead stats.EMG
	// BillingGranMs is the billing granularity in milliseconds (1 for
	// Lambda, 100 for Google Cloud Functions).
	BillingGranMs int64
	// ColdStartMs is the instance cold-start penalty.
	ColdStartMs float64
	// StorageMBps and StorageLatencyMs model S3-like object storage.
	StorageMBps      float64
	StorageLatencyMs float64
	// ComputeNoise is the lognormal sigma applied to compute durations.
	ComputeNoise float64
	// MaxConcurrency caps the number of simultaneously running invocations
	// per function (the real clouds' per-function concurrency limit). An
	// invocation arriving at the cap is rejected immediately with a typed
	// FaultThrottled error and bills nothing. Zero means unlimited (the
	// pre-gateway behaviour).
	MaxConcurrency int
	// WarmIdleMs is the warm-instance idle expiry: an instance that has sat
	// unused in the warm pool for WarmIdleMs or more of virtual time is
	// reclaimed, so the next acquisition pays a cold start. Zero keeps
	// instances warm forever (the pre-gateway behaviour).
	WarmIdleMs float64
	// PrewarmMs is the billed duration charged per prewarmed instance: a
	// warm-up ping occupies the instance for roughly its cold-start time, and
	// the platform bills it like any other invocation. Zero makes prewarming
	// free (the paper's idealization, and the pre-gateway behaviour).
	PrewarmMs float64
	// Faults injects platform failures; the zero value models a perfect
	// cloud (the pre-fault-injection behaviour).
	Faults FaultProfile
	// FaultSchedule replaces the active fault profile at scheduled virtual
	// times, so a replay can cross fault-regime changes (stock platform
	// degrading mid-trace, then recovering). Faults is in force from t=0;
	// each transition replaces the active profile wholesale from its
	// instant. The active profile is a pure function of virtual time, so
	// scheduled regimes replay exactly. An empty schedule preserves the
	// single-profile behaviour bit-for-bit.
	FaultSchedule []FaultTransition
}

// FaultTransition schedules one wholesale fault-profile replacement.
type FaultTransition struct {
	// AtMs is the virtual time, in milliseconds since the simulation
	// epoch, at which Profile takes effect.
	AtMs float64
	// Profile is the fault profile in force from AtMs until the next
	// transition (if any). It replaces the previous profile entirely —
	// fields are not merged.
	Profile FaultProfile
}

// FaultsAt resolves the fault profile in force at virtual time now:
// Config.Faults until the first scheduled transition, then the latest
// transition whose instant has passed. New sorts the schedule by AtMs, so a
// linear scan resolves it.
func (c Config) FaultsAt(now time.Duration) FaultProfile {
	f := c.Faults
	nowMs := durToMs(now)
	for _, t := range c.FaultSchedule {
		if nowMs < t.AtMs {
			break
		}
		f = t.Profile
	}
	return f
}

// FaultProfile describes the imperfections of a real serverless platform:
// invocation failures, long-tail stragglers, execution-time kills, and
// instance eviction. All faults are drawn from a dedicated RNG seeded from
// the platform seed, in a fixed per-invocation order, so a fault schedule
// replays exactly for a given seed — and enabling faults does not perturb
// the platform's compute-noise or invocation-overhead streams.
type FaultProfile struct {
	// FailureProb is the per-invocation probability that the function
	// crashes during execution. The handler's work is done and billed, but
	// the response is lost — the worst case for a fork-join caller.
	FailureProb float64
	// StragglerProb is the per-invocation probability that the instance
	// runs degraded, with its compute durations multiplied by
	// StragglerFactor.
	StragglerProb float64
	// StragglerFactor is the compute slowdown of a straggler instance
	// (DefaultStragglerFactor when a straggler is drawn and this is unset).
	StragglerFactor float64
	// TimeoutMs is the platform's function execution time limit: a handler
	// still running after TimeoutMs of virtual time is killed, the caller
	// receives a FaultTimeout error, and the platform bills the elapsed
	// TimeoutMs. Zero means no limit.
	TimeoutMs float64
	// EvictionProb is the per-invocation probability that the platform
	// reclaims the hosting instance between dispatch and execution: the
	// handler never runs, nothing is billed, and a claimed warm instance
	// is destroyed rather than returned to the pool.
	EvictionProb float64
}

// DefaultStragglerFactor is the compute slowdown applied to stragglers when
// a FaultProfile enables them without choosing a factor.
const DefaultStragglerFactor = 4.0

// active reports whether any fault class is enabled.
func (f FaultProfile) active() bool {
	return f.FailureProb > 0 || f.StragglerProb > 0 || f.TimeoutMs > 0 || f.EvictionProb > 0
}

// FaultKind classifies an injected invocation fault.
type FaultKind int

// Fault kinds.
const (
	// FaultFailure: the function crashed (injected, or a handler error).
	FaultFailure FaultKind = iota + 1
	// FaultTimeout: the platform killed the function at its execution
	// time limit.
	FaultTimeout
	// FaultEvicted: the platform reclaimed the hosting instance before
	// the handler could run.
	FaultEvicted
	// FaultThrottled: the function was at its MaxConcurrency cap and the
	// platform rejected the invocation before any work ran. Nothing is
	// billed.
	FaultThrottled
)

func (k FaultKind) String() string {
	switch k {
	case FaultFailure:
		return "failure"
	case FaultTimeout:
		return "timeout"
	case FaultEvicted:
		return "evicted"
	case FaultThrottled:
		return "throttled"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// InvokeError is the typed error of a failed invocation. The partial
// billing of the failed attempt is attached in Res (Resp is empty): the
// platform bills crashed invocations for their full handler duration and
// timed-out ones for the elapsed TimeoutMs, exactly as the real clouds do.
type InvokeError struct {
	Kind FaultKind
	Fn   string
	Res  InvokeResult
	// Err is the underlying handler error for FaultFailure, nil for
	// injected faults.
	Err error
}

func (e *InvokeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("platform: function %q: %v", e.Fn, e.Err)
	}
	switch e.Kind {
	case FaultTimeout:
		return fmt.Sprintf("platform: function %q: killed at the %0.f ms execution timeout", e.Fn, e.Res.HandlerMs)
	case FaultEvicted:
		return fmt.Sprintf("platform: function %q: instance evicted before execution", e.Fn)
	case FaultThrottled:
		return fmt.Sprintf("platform: function %q: throttled at its concurrency limit", e.Fn)
	}
	return fmt.Sprintf("platform: function %q: injected invocation failure", e.Fn)
}

func (e *InvokeError) Unwrap() error { return e.Err }

// BilledMsOf extracts the billed duration attached to a failed invocation's
// error (0 when err carries no billing). Callers use it to account for the
// cost of failed, retried, and abandoned attempts.
func BilledMsOf(err error) int64 {
	var ie *InvokeError
	if errors.As(err, &ie) {
		return ie.Res.TotalBilledMs
	}
	return 0
}

// FaultKindOf extracts the fault kind attached to a failed invocation's
// error. The second return is false when err carries no typed fault (e.g. a
// plain handler error that never reached the platform).
func FaultKindOf(err error) (FaultKind, bool) {
	var ie *InvokeError
	if errors.As(err, &ie) {
		return ie.Kind, true
	}
	return 0, false
}

// AWSLambda returns the AWS Lambda profile used in the paper's experiments
// (3 GB instances, 1 ms billing).
func AWSLambda() Config {
	return Config{
		Name:              "lambda",
		MemoryMB:          3008,
		WeightBudgetMB:    1400,
		GFLOPS:            20,
		MemGBps:           8,
		OpOverheadMs:      0.05,
		NetMBps:           40, // ~320 Mb/s (§II-B measures ~300 Mb/s per function)
		RequestOverheadMs: 2.5,
		InvokeOverhead:    stats.EMG{Mu: 12, Sigma: 3, Lambda: 0.125},
		BillingGranMs:     1,
		ColdStartMs:       180,
		StorageMBps:       85,
		StorageLatencyMs:  30,
		ComputeNoise:      0.02,
	}
}

// GoogleCloudFunctions returns the GCF profile (4 GB instances, more CPU per
// instance than Lambda, 100 ms billing, slower network).
func GoogleCloudFunctions() Config {
	return Config{
		Name:              "gcf",
		MemoryMB:          4096,
		WeightBudgetMB:    1900, // 4 GB instances host more weights than Lambda's 3 GB
		GFLOPS:            26,
		MemGBps:           10,
		OpOverheadMs:      0.05,
		NetMBps:           37.5, // ~300 Mb/s (§II-B)
		RequestOverheadMs: 3,
		InvokeOverhead:    stats.EMG{Mu: 20, Sigma: 5, Lambda: 0.08},
		BillingGranMs:     100,
		ColdStartMs:       300,
		StorageMBps:       50,
		StorageLatencyMs:  40,
		ComputeNoise:      0.02,
	}
}

// KNIX returns the KNIX profile: function resources matched to a Lambda
// instance (§V-A) but with compute-collocated storage giving much faster
// function interactions.
func KNIX() Config {
	return Config{
		Name:              "knix",
		MemoryMB:          3008,
		WeightBudgetMB:    1400,
		GFLOPS:            20,
		MemGBps:           8,
		OpOverheadMs:      0.05,
		NetMBps:           250, // Redis-backed local data plane
		RequestOverheadMs: 1,
		InvokeOverhead:    stats.EMG{Mu: 2.5, Sigma: 0.6, Lambda: 0.8},
		BillingGranMs:     1,
		ColdStartMs:       80,
		StorageMBps:       300,
		StorageLatencyMs:  2,
		ComputeNoise:      0.02,
	}
}

// ByName returns a platform profile by name.
func ByName(name string) (Config, error) {
	switch name {
	case "lambda":
		return AWSLambda(), nil
	case "gcf":
		return GoogleCloudFunctions(), nil
	case "knix":
		return KNIX(), nil
	}
	return Config{}, fmt.Errorf("platform: unknown platform %q", name)
}

// Payload is a request or response body: an explicit wire size plus an
// arbitrary in-simulation value (e.g. a tensor, or a shape-only
// descriptor).
type Payload struct {
	Bytes int64
	Data  any
}

// Handler is the code of a serverless function.
type Handler func(ctx *Ctx, payload Payload) (Payload, error)

// InvokeResult reports one completed invocation.
type InvokeResult struct {
	Resp Payload
	// HandlerMs is the billed-duration basis: handler execution time.
	HandlerMs float64
	// BilledMs is HandlerMs rounded up to the billing granularity.
	BilledMs int64
	// TotalBilledMs adds the billed durations of all nested invocations.
	TotalBilledMs int64
	// OverheadMs, UploadMs and DownloadMs decompose the communication cost
	// seen by the caller.
	OverheadMs, UploadMs, DownloadMs float64
	// ColdStart reports whether this invocation paid a cold start.
	ColdStart bool
}

// functionDef is a registered function with its warm-instance pool. The
// pool holds each idle instance's last-used virtual time; acquisition is
// LIFO (most recently used first), which keeps the pool small under idle
// expiry, exactly like the real clouds' instance reuse.
type functionDef struct {
	name    string
	handler Handler
	warm    []time.Duration // idle instances' available-since stamps, oldest first
	running int             // invocations currently in flight (MaxConcurrency accounting)
}

// Platform is one simulated serverless deployment.
type Platform struct {
	cfg Config
	env *simnet.Env
	m   *pmetrics

	mu              sync.Mutex
	rng             *rand.Rand
	faultRng        *rand.Rand // dedicated stream: faults don't perturb noise/overhead draws
	fns             map[string]*functionDef
	storage         map[string]Object
	invoked         int64
	faulted         int64
	billedMs        int64
	prewarmBilledMs int64
	deploySeq       int64
}

// NextDeploySeq numbers deployments registered on this platform. Keeping
// the counter per-platform (not process-global) makes function-name
// prefixes replay-stable: two identical replays on fresh platforms yield
// identical names, and therefore bit-identical error strings.
func (p *Platform) NextDeploySeq() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deploySeq++
	return p.deploySeq
}

// pmetrics caches the platform's metric handles so the invocation hot path
// pays no registry lookups.
type pmetrics struct {
	reg            *trace.Registry
	invocations    *trace.Counter
	coldStarts     *trace.Counter
	billedMs       *trace.Counter
	faultFailure   *trace.Counter
	faultTimeout   *trace.Counter
	faultEvicted   *trace.Counter
	faultThrottled *trace.Counter
	prewarms       *trace.Counter
	warmExpired    *trace.Counter
	overheadMs     *trace.Histogram
	handlerMs      *trace.Histogram
}

func newPMetrics(reg *trace.Registry) *pmetrics {
	return &pmetrics{
		reg:            reg,
		invocations:    reg.Counter("platform.invocations"),
		coldStarts:     reg.Counter("platform.cold_starts"),
		billedMs:       reg.Counter("platform.billed_ms"),
		faultFailure:   reg.Counter("platform.faults.failure"),
		faultTimeout:   reg.Counter("platform.faults.timeout"),
		faultEvicted:   reg.Counter("platform.faults.evicted"),
		faultThrottled: reg.Counter("platform.faults.throttled"),
		prewarms:       reg.Counter("platform.prewarms"),
		warmExpired:    reg.Counter("platform.warm_expired"),
		overheadMs:     reg.Histogram("platform.overhead_ms"),
		handlerMs:      reg.Histogram("platform.handler_ms"),
	}
}

// Object is an entry in the platform's object storage.
type Object struct {
	Bytes int64
	Data  any
}

// New creates a platform simulation bound to env.
func New(env *simnet.Env, cfg Config, seed int64) *Platform {
	if len(cfg.FaultSchedule) > 1 {
		sched := append([]FaultTransition(nil), cfg.FaultSchedule...)
		sort.SliceStable(sched, func(i, j int) bool { return sched[i].AtMs < sched[j].AtMs })
		cfg.FaultSchedule = sched
	}
	return &Platform{
		cfg:      cfg,
		env:      env,
		m:        newPMetrics(trace.NewRegistry()),
		rng:      rand.New(rand.NewSource(seed)),
		faultRng: rand.New(rand.NewSource(seed ^ faultSeedSalt)),
		fns:      make(map[string]*functionDef),
		storage:  make(map[string]Object),
	}
}

// Metrics returns the registry the platform records invocation metrics into.
func (p *Platform) Metrics() *trace.Registry { return p.m.reg }

// UseMetrics redirects the platform's metric recording into reg, so several
// platforms (e.g. one per served request) can aggregate into one registry.
// Call it before the simulation runs; it is not safe concurrently with
// in-flight invocations.
func (p *Platform) UseMetrics(reg *trace.Registry) {
	p.m = newPMetrics(reg)
}

// faultSeedSalt decorrelates the fault stream from the noise stream while
// keeping both a pure function of the platform seed.
const faultSeedSalt = 0x5e3779b97f4a7c15

// Config returns the platform profile.
func (p *Platform) Config() Config { return p.cfg }

// FaultsAt resolves the fault profile in force at virtual time now,
// honouring the configured FaultSchedule. Controllers use it to learn the
// scheduled regime without re-deriving the schedule.
func (p *Platform) FaultsAt(now time.Duration) FaultProfile { return p.cfg.FaultsAt(now) }

// Env returns the simulation environment.
func (p *Platform) Env() *simnet.Env { return p.env }

// Register deploys a function under the given name.
func (p *Platform) Register(name string, h Handler) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.fns[name]; ok {
		return fmt.Errorf("platform: function %q already registered", name)
	}
	p.fns[name] = &functionDef{name: name, handler: h}
	return nil
}

// Prewarm adds n warm instances of the function, modeling the paper's
// warm-up pings (§III-A). When the platform charges for warm-up pings
// (Config.PrewarmMs > 0), each prewarmed instance bills PrewarmMs at the
// billing granularity — prewarming buys latency with money, which is the
// whole trade-off the gateway's autoscaling policies navigate. With
// PrewarmMs zero the ping cost is ignored, as in the paper.
func (p *Platform) Prewarm(name string, n int) error {
	now := p.env.Now()
	p.mu.Lock()
	f, ok := p.fns[name]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("platform: prewarm of unknown function %q", name)
	}
	var cost int64
	if p.cfg.PrewarmMs > 0 {
		cost = billed(p.cfg.PrewarmMs, p.cfg.BillingGranMs) * int64(n)
		p.billedMs += cost
		p.prewarmBilledMs += cost
	}
	for i := 0; i < n; i++ {
		f.warm = append(f.warm, now)
	}
	p.mu.Unlock()
	p.m.prewarms.Add(int64(n))
	if cost > 0 {
		p.m.billedMs.Add(cost)
	}
	return nil
}

// expireWarmLocked drops instances that have idled in the pool for
// WarmIdleMs or more of virtual time. Expiry is evaluated lazily, on every
// pool access, which is deterministic because accesses happen at virtual
// times fixed by the simulation. It returns how many instances expired.
func (p *Platform) expireWarmLocked(f *functionDef, now time.Duration) int {
	idle := p.cfg.WarmIdleMs
	if idle <= 0 {
		return 0
	}
	cutoff := msToDur(idle)
	n := 0
	for n < len(f.warm) && now-f.warm[n] >= cutoff {
		n++
	}
	if n > 0 {
		f.warm = f.warm[n:]
	}
	return n
}

// WarmCount returns the function's current idle warm-instance count after
// applying idle expiry at the current virtual time. Autoscaling controllers
// poll it to decide how many instances to prewarm.
func (p *Platform) WarmCount(name string) int {
	now := p.env.Now()
	p.mu.Lock()
	f, ok := p.fns[name]
	if !ok {
		p.mu.Unlock()
		return 0
	}
	expired := p.expireWarmLocked(f, now)
	n := len(f.warm)
	p.mu.Unlock()
	if expired > 0 {
		p.m.warmExpired.Add(int64(expired))
	}
	return n
}

// Invocations returns the total number of completed invocations (including
// failed, timed-out, and evicted ones — the platform saw them all).
func (p *Platform) Invocations() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.invoked
}

// Faulted returns the number of invocations that suffered an injected
// fault (failure, timeout, or eviction).
func (p *Platform) Faulted() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faulted
}

// BilledMsTotal returns the billed milliseconds of every settled
// invocation, successful or not, plus prewarm charges. Unlike per-query
// roll-ups, it also counts attempts whose caller stopped waiting (abandoned
// stragglers), so it is the authoritative cost figure for chaos and load
// experiments.
func (p *Platform) BilledMsTotal() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.billedMs
}

// PrewarmBilledMs returns the portion of BilledMsTotal charged for warm-up
// pings (zero unless Config.PrewarmMs is set). Per-query trace roll-ups
// exclude it: no invocation span carries it.
func (p *Platform) PrewarmBilledMs() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prewarmBilledMs
}

// Ctx is the execution context of one running function instance.
type Ctx struct {
	platform *Platform
	proc     *simnet.Proc
	fnName   string
	uplink   *simnet.Resource
	downlink *simnet.Resource
	span     *trace.Span // exec span of this invocation; nil when untraced
	start    time.Duration
	slow     float64      // straggler compute multiplier (1 = healthy)
	children atomic.Int64 // billed ms accumulated from nested invocations
	killed   atomic.Bool  // set when the platform kills the instance
}

// Span returns this invocation's execution span (nil when the invocation is
// untraced). Handlers use it to attach child spans and events; nil receivers
// are safe everywhere in package trace, so handlers need no tracing check.
func (c *Ctx) Span() *trace.Span { return c.span }

// Killed reports whether the platform has killed this instance (execution
// timeout). A killed handler keeps executing as a zombie in the simulation,
// but its compute is skipped and its nested invocations fail fast, so it
// drains quickly; its response is discarded either way.
func (c *Ctx) Killed() bool { return c.killed.Load() }

// Platform returns the hosting platform.
func (c *Ctx) Platform() *Platform { return c.platform }

// Proc returns the simnet process executing this function.
func (c *Ctx) Proc() *simnet.Proc { return c.proc }

// FunctionName returns the name this instance serves.
func (c *Ctx) FunctionName() string { return c.fnName }

// MemoryMB returns the instance memory ceiling.
func (c *Ctx) MemoryMB() int { return c.platform.cfg.MemoryMB }

// Compute advances virtual time by the duration of flops floating-point
// operations at the platform's effective throughput, with multiplicative
// lognormal noise.
func (c *Ctx) Compute(flops int64) { c.ComputeOp(flops, 0) }

// ComputeOp advances virtual time for one operator execution: FLOP time at
// the platform's throughput, plus memory-bandwidth time for bytesTouched,
// plus the fixed operator dispatch overhead, with multiplicative lognormal
// noise.
func (c *Ctx) ComputeOp(flops, bytesTouched int64) {
	if c.killed.Load() {
		return // zombie after a platform kill: drain without consuming time
	}
	cfg := c.platform.cfg
	sec := float64(flops) / (cfg.GFLOPS * 1e9)
	if cfg.MemGBps > 0 {
		sec += float64(bytesTouched) / (cfg.MemGBps * 1e9)
	}
	sec += cfg.OpOverheadMs / 1000
	if sec <= 0 {
		return
	}
	if c.slow > 1 {
		sec *= c.slow
	}
	noise := 1.0
	if s := cfg.ComputeNoise; s > 0 {
		c.platform.mu.Lock()
		noise = math.Exp(c.platform.rng.NormFloat64() * s)
		c.platform.mu.Unlock()
	}
	c.proc.Sleep(time.Duration(sec * noise * float64(time.Second)))
}

// Invoke synchronously invokes another function and waits for its result.
// On a failed invocation the returned InvokeResult is still populated with
// the billing the platform charged for the failed run.
func (c *Ctx) Invoke(name string, payload Payload) (InvokeResult, error) {
	return settled(c.InvokeAsync(name, payload).Wait(c.proc))
}

// settled recovers the billed InvokeResult carried inside a typed
// InvokeError, so synchronous callers see partial billing alongside the
// error instead of a zero result.
func settled(res InvokeResult, err error) (InvokeResult, error) {
	if err != nil {
		var ie *InvokeError
		if errors.As(err, &ie) {
			return ie.Res, err
		}
	}
	return res, err
}

// InvokeAsync starts an invocation and returns a promise for its result.
// The request payload serializes on this instance's uplink and the response
// on its downlink, reproducing the synchronization overhead that makes very
// wide fan-outs counterproductive on Lambda (Fig. 7).
func (c *Ctx) InvokeAsync(name string, payload Payload) *simnet.Promise[InvokeResult] {
	pr, _ := c.InvokeAsyncSpan(name, payload, nil)
	return pr
}

// InvokeAsyncSpan is InvokeAsync with explicit trace parentage: the new
// invocation's span becomes a child of parent (or of this instance's own
// execution span when parent is nil) and is returned so the caller can attach
// attempt metadata. A killed instance's invocations fail fast without ever
// reaching the platform, and correspondingly produce no span.
func (c *Ctx) InvokeAsyncSpan(name string, payload Payload, parent *trace.Span) (*simnet.Promise[InvokeResult], *trace.Span) {
	if c.killed.Load() {
		pr := simnet.NewPromise[InvokeResult](c.platform.env)
		pr.Fail(fmt.Errorf("platform: instance of %q was killed", c.fnName))
		return pr, nil
	}
	if parent == nil {
		parent = c.span
	}
	return c.platform.invokeAsync(c, parent, name, payload)
}

// StorageGet fetches an object, charging storage latency plus transfer time.
func (c *Ctx) StorageGet(key string) (Object, error) {
	p := c.platform
	p.mu.Lock()
	obj, ok := p.storage[key]
	p.mu.Unlock()
	if !ok {
		return Object{}, fmt.Errorf("platform: storage object %q not found", key)
	}
	c.proc.Sleep(msToDur(p.cfg.StorageLatencyMs + float64(obj.Bytes)/1e6/p.cfg.StorageMBps*1000))
	return obj, nil
}

// StoragePut uploads an object, charging storage latency plus transfer time.
func (c *Ctx) StoragePut(key string, obj Object) {
	p := c.platform
	c.proc.Sleep(msToDur(p.cfg.StorageLatencyMs + float64(obj.Bytes)/1e6/p.cfg.StorageMBps*1000))
	p.mu.Lock()
	p.storage[key] = obj
	p.mu.Unlock()
}

// Seed stores an object directly (no simulated time), for experiment setup.
func (p *Platform) Seed(key string, obj Object) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.storage[key] = obj
}

// InvokeFrom invokes a function from a plain simulation process (an external
// client): invocation overhead and payload transfer still apply, but no
// uplink serialization, since the client is not a constrained function.
func (p *Platform) InvokeFrom(proc *simnet.Proc, name string, payload Payload) (InvokeResult, error) {
	return p.InvokeFromSpan(proc, name, payload, nil)
}

// InvokeFromSpan is InvokeFrom with the invocation's span attached under
// parent (untraced when parent is nil).
func (p *Platform) InvokeFromSpan(proc *simnet.Proc, name string, payload Payload, parent *trace.Span) (InvokeResult, error) {
	pr, _ := p.invokeAsync(nil, parent, name, payload)
	return settled(pr.Wait(proc))
}

func (p *Platform) invokeAsync(from *Ctx, parent *trace.Span, name string, payload Payload) (*simnet.Promise[InvokeResult], *trace.Span) {
	sp := parent.Childf(trace.KindInvoke, "invoke:%s", name)
	promise := simnet.NewPromise[InvokeResult](p.env)
	p.env.Go("invoke:"+name, func(proc *simnet.Proc) {
		res, err := p.runInvocation(proc, from, sp, name, payload)
		if err != nil {
			promise.Fail(err)
			return
		}
		promise.Resolve(res)
	})
	return promise, sp
}

func (p *Platform) runInvocation(proc *simnet.Proc, from *Ctx, sp *trace.Span, name string, payload Payload) (InvokeResult, error) {
	p.mu.Lock()
	f, ok := p.fns[name]
	if !ok {
		p.mu.Unlock()
		err := fmt.Errorf("platform: invoke of unknown function %q", name)
		sp.Fail("", err.Error())
		sp.EndSpan()
		return InvokeResult{}, err
	}

	var res InvokeResult

	// Concurrency-limit admission: an invocation arriving while
	// MaxConcurrency others are in flight is rejected before any work —
	// no upload, no fault draws (the fault schedule of admitted
	// invocations is unperturbed), and nothing billed.
	if p.cfg.MaxConcurrency > 0 && f.running >= p.cfg.MaxConcurrency {
		p.invoked++
		p.faulted++
		p.mu.Unlock()
		p.m.invocations.Inc()
		p.m.faultThrottled.Inc()
		ierr := &InvokeError{Kind: FaultThrottled, Fn: name, Res: res}
		sp.SetBilled(0, 0)
		sp.Fail(FaultThrottled.String(), ierr.Error())
		sp.EndSpan()
		return res, ierr
	}
	f.running++
	p.mu.Unlock()

	// Request issuance + upload: function callers pay the per-request CPU
	// cost and serialize on their uplink; external clients only pay the
	// transfer.
	upMs := float64(payload.Bytes) / 1e6 / p.cfg.NetMBps * 1000
	before := proc.Now()
	usp := sp.Child(trace.KindUpload, "upload")
	if from != nil {
		from.uplink.Acquire(proc)
		proc.Sleep(msToDur(p.cfg.RequestOverheadMs + upMs))
		from.uplink.Release()
	} else {
		proc.Sleep(msToDur(upMs))
	}
	usp.EndSpan()
	res.UploadMs = durToMs(proc.Now() - before)

	// Invocation dispatch overhead (EMG, §IV-A).
	p.mu.Lock()
	overhead := p.cfg.InvokeOverhead.Sample(p.rng)
	p.mu.Unlock()
	dsp := sp.Child(trace.KindDispatch, "dispatch")
	proc.Sleep(msToDur(overhead))
	dsp.EndSpan()
	res.OverheadMs = overhead

	// Fault draws: always in the same per-invocation order, from the
	// dedicated fault RNG, so the schedule is a pure function of the
	// platform seed and the (deterministic) invocation order. The profile
	// is resolved at the draw instant, so a scheduled regime change applies
	// to every invocation dispatched after its transition time.
	faults := p.cfg.FaultsAt(proc.Now())
	var evicted, crash bool
	slow := 1.0
	if faults.active() {
		p.mu.Lock()
		if faults.EvictionProb > 0 && p.faultRng.Float64() < faults.EvictionProb {
			evicted = true
		}
		if faults.FailureProb > 0 && p.faultRng.Float64() < faults.FailureProb {
			crash = true
		}
		if faults.StragglerProb > 0 && p.faultRng.Float64() < faults.StragglerProb {
			slow = faults.StragglerFactor
			if slow <= 1 {
				slow = DefaultStragglerFactor
			}
		}
		p.mu.Unlock()
	}

	// Instance acquisition: warm pool (most recently used instance first,
	// after expiring instances that idled past WarmIdleMs) or cold start.
	now := proc.Now()
	p.mu.Lock()
	expired := p.expireWarmLocked(f, now)
	if n := len(f.warm); n > 0 {
		f.warm = f.warm[:n-1]
	} else {
		res.ColdStart = true
	}
	p.mu.Unlock()
	if expired > 0 {
		p.m.warmExpired.Add(int64(expired))
	}

	if evicted {
		// The platform reclaimed the instance between dispatch and
		// execution: the handler never runs, nothing is billed, and the
		// claimed warm instance (if any) is destroyed.
		p.mu.Lock()
		f.running--
		p.invoked++
		p.faulted++
		p.mu.Unlock()
		p.m.invocations.Inc()
		p.m.faultEvicted.Inc()
		p.m.overheadMs.Observe(overhead)
		ierr := &InvokeError{Kind: FaultEvicted, Fn: name, Res: res}
		sp.SetBilled(0, 0)
		sp.Fail(FaultEvicted.String(), ierr.Error())
		sp.EndSpan()
		return res, ierr
	}

	if res.ColdStart {
		csp := sp.Child(trace.KindColdStart, "coldstart")
		proc.Sleep(msToDur(p.cfg.ColdStartMs))
		csp.EndSpan()
		sp.SetAttr("cold", "1")
	}

	esp := sp.Child(trace.KindExec, "exec")
	ctx := &Ctx{
		platform: p,
		proc:     proc,
		fnName:   name,
		uplink:   simnet.NewResource(p.env),
		downlink: simnet.NewResource(p.env),
		span:     esp,
		slow:     slow,
	}
	ctx.start = proc.Now()
	resp, herr, timedOut := p.runHandler(proc, ctx, f, payload, faults.TimeoutMs)

	res.HandlerMs = durToMs(proc.Now() - ctx.start)
	if timedOut {
		res.HandlerMs = faults.TimeoutMs // killed exactly at the limit
		// The zombie handler ends the exec span when it drains; mark it so
		// trace invariants tolerate a child outliving its parent here.
		esp.SetAttr("killed", "1")
	}
	res.BilledMs = billed(res.HandlerMs, p.cfg.BillingGranMs)
	res.TotalBilledMs = res.BilledMs + ctx.children.Load()

	// Settle the invocation exactly once: the instance returns to the warm
	// pool (stamped with the current virtual time for idle expiry) unless
	// the platform killed it, and the invocation counts (and bills) even if
	// the handler failed.
	settleAt := proc.Now()
	p.mu.Lock()
	f.running--
	if !timedOut {
		f.warm = append(f.warm, settleAt)
	}
	p.invoked++
	p.billedMs += res.BilledMs
	if timedOut || crash {
		p.faulted++
	}
	p.mu.Unlock()

	p.m.invocations.Inc()
	if res.ColdStart {
		p.m.coldStarts.Inc()
	}
	p.m.billedMs.Add(res.BilledMs)
	p.m.overheadMs.Observe(overhead)
	p.m.handlerMs.Observe(res.HandlerMs)

	// Charge the caller's nested-billing accumulator exactly once, on
	// every settled path — failed invocations are billed too.
	if from != nil {
		from.children.Add(res.TotalBilledMs)
	}

	// The invocation span owns this instance's own billed duration; nested
	// invocations carry their own spans, so a flat sum over all spans
	// reproduces the platform's authoritative BilledMsTotal.
	sp.SetBilled(res.BilledMs, res.TotalBilledMs)

	switch {
	case timedOut:
		p.m.faultTimeout.Inc()
		ierr := &InvokeError{Kind: FaultTimeout, Fn: name, Res: res}
		sp.Fail(FaultTimeout.String(), ierr.Error())
		sp.EndSpan()
		return res, ierr
	case herr != nil:
		p.m.faultFailure.Inc()
		ierr := &InvokeError{Kind: FaultFailure, Fn: name, Res: res, Err: herr}
		sp.Fail(FaultFailure.String(), ierr.Error())
		sp.EndSpan()
		return res, ierr
	case crash:
		// The handler finished its (billed) work but crashed before the
		// response left the instance.
		p.m.faultFailure.Inc()
		ierr := &InvokeError{Kind: FaultFailure, Fn: name, Res: res}
		sp.Fail(FaultFailure.String(), ierr.Error())
		sp.EndSpan()
		return res, ierr
	}

	// Response download: serialized on the caller's downlink.
	downMs := float64(resp.Bytes) / 1e6 / p.cfg.NetMBps * 1000
	before = proc.Now()
	wsp := sp.Child(trace.KindDownload, "download")
	if from != nil {
		from.downlink.Acquire(proc)
		proc.Sleep(msToDur(downMs))
		from.downlink.Release()
	} else {
		proc.Sleep(msToDur(downMs))
	}
	wsp.EndSpan()
	res.DownloadMs = durToMs(proc.Now() - before)
	res.Resp = resp
	sp.EndSpan()
	return res, nil
}

// runHandler executes the function body, under the platform's execution
// time limit when one is configured. A handler that outlives the limit is
// killed: the invocation returns timedOut=true at exactly TimeoutMs, while
// the handler keeps draining as a zombie (its compute is skipped and its
// nested invocations fail fast once the kill flag is set).
func (p *Platform) runHandler(proc *simnet.Proc, ctx *Ctx, f *functionDef, payload Payload, limit float64) (Payload, error, bool) {
	if limit <= 0 {
		ctx.proc = proc
		resp, err := f.handler(ctx, payload)
		ctx.span.EndSpan()
		return resp, err, false
	}
	type handlerOut struct {
		resp Payload
		err  error
	}
	done := simnet.NewPromise[handlerOut](p.env)
	p.env.Go("exec:"+ctx.fnName, func(hp *simnet.Proc) {
		ctx.proc = hp
		resp, err := f.handler(ctx, payload)
		// A killed handler ends its exec span here, at zombie drain time —
		// after the parent invocation span settled (see the "killed" attr).
		ctx.span.EndSpan()
		done.Resolve(handlerOut{resp, err})
	})
	out, werr := done.WaitTimeout(proc, msToDur(limit))
	if werr != nil { // deadline elapsed: the platform kills the instance
		ctx.killed.Store(true)
		return Payload{}, nil, true
	}
	return out.resp, out.err, false
}

// billed rounds ms up to the next multiple of gran.
func billed(ms float64, gran int64) int64 {
	if ms <= 0 {
		return 0
	}
	units := int64(math.Ceil(ms / float64(gran)))
	return units * gran
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

func durToMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
