package platform

import (
	"errors"
	"strings"
	"testing"

	"gillis/internal/simnet"
)

// runSim executes driver as a client process and returns any error from
// env.Run.
func runSim(t *testing.T, cfg Config, seed int64, driver func(p *Platform, proc *simnet.Proc)) {
	t.Helper()
	env := simnet.NewEnv()
	p := New(env, cfg, seed)
	env.Go("driver", func(proc *simnet.Proc) { driver(p, proc) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// fastCfg is a platform with negligible randomness for exact assertions.
func fastCfg() Config {
	cfg := AWSLambda()
	cfg.ComputeNoise = 0
	return cfg
}

func TestInvokeBasic(t *testing.T) {
	cfg := fastCfg()
	runSim(t, cfg, 1, func(p *Platform, proc *simnet.Proc) {
		err := p.Register("echo", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(2e9) // 100 ms at 20 GFLOPS
			return Payload{Bytes: in.Bytes, Data: in.Data}, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		res, err := p.InvokeFrom(proc, "echo", Payload{Bytes: 1000, Data: "hi"})
		if err != nil {
			t.Error(err)
			return
		}
		if res.Resp.Data != "hi" {
			t.Errorf("resp %v", res.Resp.Data)
		}
		if res.HandlerMs < 99 || res.HandlerMs > 101 {
			t.Errorf("handler ms %v, want ~100", res.HandlerMs)
		}
		if !res.ColdStart {
			t.Error("first invocation must cold-start")
		}
		if res.BilledMs < 100 || res.BilledMs != res.TotalBilledMs {
			t.Errorf("billing wrong: %+v", res)
		}
	})
}

func TestWarmStartAfterFirstInvocation(t *testing.T) {
	runSim(t, fastCfg(), 2, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		r1, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Error(err)
			return
		}
		r2, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Error(err)
			return
		}
		if !r1.ColdStart || r2.ColdStart {
			t.Errorf("cold/warm wrong: %v %v", r1.ColdStart, r2.ColdStart)
		}
	})
}

func TestPrewarmAvoidsColdStart(t *testing.T) {
	runSim(t, fastCfg(), 3, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		if err := p.Prewarm("f", 2); err != nil {
			t.Error(err)
			return
		}
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Error(err)
			return
		}
		if res.ColdStart {
			t.Error("prewarmed function must warm-start")
		}
	})
	env := simnet.NewEnv()
	p := New(env, fastCfg(), 1)
	if err := p.Prewarm("missing", 1); err == nil {
		t.Fatal("expected unknown-function error")
	}
}

func TestBillingGranularity(t *testing.T) {
	cfg := fastCfg()
	cfg.BillingGranMs = 100
	runSim(t, cfg, 4, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(int64(0.3e9)) // 15 ms
			return Payload{}, nil
		})
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Error(err)
			return
		}
		if res.BilledMs != 100 {
			t.Errorf("billed %d, want 100 (GCF rounds up to 100 ms)", res.BilledMs)
		}
	})
}

func TestNestedInvocationBillingRollsUp(t *testing.T) {
	cfg := fastCfg()
	runSim(t, cfg, 5, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("worker", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(1e9) // 50 ms
			return Payload{}, nil
		})
		_ = p.Register("master", func(ctx *Ctx, in Payload) (Payload, error) {
			for i := 0; i < 3; i++ {
				if _, err := ctx.Invoke("worker", Payload{Bytes: 100}); err != nil {
					return Payload{}, err
				}
			}
			return Payload{}, nil
		})
		res, err := p.InvokeFrom(proc, "master", Payload{})
		if err != nil {
			t.Error(err)
			return
		}
		if res.TotalBilledMs < res.BilledMs+3*50 {
			t.Errorf("total billed %d must include 3 workers (master %d)", res.TotalBilledMs, res.BilledMs)
		}
	})
}

func TestForkJoinLatencyIsMaxOfWorkers(t *testing.T) {
	cfg := fastCfg()
	cfg.InvokeOverhead.Sigma = 0.001 // nearly deterministic overhead
	cfg.InvokeOverhead.Lambda = 1e6
	runSim(t, cfg, 6, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("w", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(in.Data.(int64))
			return Payload{}, nil
		})
		_ = p.Register("m", func(ctx *Ctx, in Payload) (Payload, error) {
			pr1 := ctx.InvokeAsync("w", Payload{Data: int64(4e9)}) // 200 ms
			pr2 := ctx.InvokeAsync("w", Payload{Data: int64(1e9)}) // 50 ms
			if _, err := pr1.Wait(ctx.Proc()); err != nil {
				return Payload{}, err
			}
			if _, err := pr2.Wait(ctx.Proc()); err != nil {
				return Payload{}, err
			}
			return Payload{}, nil
		})
		res, err := p.InvokeFrom(proc, "m", Payload{})
		if err != nil {
			t.Error(err)
			return
		}
		// Master time ≈ max(worker) + overheads, definitely < sum(workers).
		if res.HandlerMs < 200 || res.HandlerMs > 420 {
			t.Errorf("fork-join master ms %v, want ~max worker (200) + overheads + cold starts", res.HandlerMs)
		}
	})
}

func TestUplinkSerialization(t *testing.T) {
	cfg := fastCfg()
	cfg.NetMBps = 10 // 10 MB payload = 1000 ms
	runSim(t, cfg, 7, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("w", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil })
		_ = p.Register("m", func(ctx *Ctx, in Payload) (Payload, error) {
			start := ctx.Proc().Now()
			var prs []*simnet.Promise[InvokeResult]
			for i := 0; i < 4; i++ {
				prs = append(prs, ctx.InvokeAsync("w", Payload{Bytes: 10e6}))
			}
			for _, pr := range prs {
				if _, err := pr.Wait(ctx.Proc()); err != nil {
					return Payload{}, err
				}
			}
			elapsed := float64(ctx.Proc().Now()-start) / 1e6
			// Four 1000 ms uploads must serialize on the master's uplink.
			if elapsed < 4000 {
				t.Errorf("uploads not serialized: elapsed %v ms", elapsed)
			}
			return Payload{}, nil
		})
		if _, err := p.InvokeFrom(proc, "m", Payload{}); err != nil {
			t.Error(err)
		}
	})
}

func TestHandlerErrorPropagates(t *testing.T) {
	runSim(t, fastCfg(), 8, func(p *Platform, proc *simnet.Proc) {
		wantErr := errors.New("oom")
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, wantErr })
		_, err := p.InvokeFrom(proc, "f", Payload{})
		if err == nil || !errors.Is(err, wantErr) {
			t.Errorf("got %v", err)
		}
		if p.Invocations() != 1 {
			t.Errorf("failed invocation must still count: %d", p.Invocations())
		}
	})
}

func TestInvokeUnknownFunction(t *testing.T) {
	runSim(t, fastCfg(), 9, func(p *Platform, proc *simnet.Proc) {
		if _, err := p.InvokeFrom(proc, "nope", Payload{}); err == nil {
			t.Error("expected unknown-function error")
		}
	})
}

func TestRegisterDuplicate(t *testing.T) {
	env := simnet.NewEnv()
	p := New(env, fastCfg(), 1)
	h := func(ctx *Ctx, in Payload) (Payload, error) { return Payload{}, nil }
	if err := p.Register("f", h); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("f", h); err == nil {
		t.Fatal("expected duplicate-registration error")
	}
}

func TestStorage(t *testing.T) {
	cfg := fastCfg()
	runSim(t, cfg, 10, func(p *Platform, proc *simnet.Proc) {
		p.Seed("weights/part0", Object{Bytes: 60e6, Data: "blob"})
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			start := ctx.Proc().Now()
			obj, err := ctx.StorageGet("weights/part0")
			if err != nil {
				return Payload{}, err
			}
			if obj.Data != "blob" {
				t.Error("wrong object data")
			}
			// 60 MB / StorageMBps + storage latency.
			cfg := ctx.Platform().Config()
			want := cfg.StorageLatencyMs + 60/cfg.StorageMBps*1000
			ms := float64(ctx.Proc().Now()-start) / 1e6
			if ms < want*0.99 || ms > want*1.01 {
				t.Errorf("storage get took %v ms, want ~%v", ms, want)
			}
			if _, err := ctx.StorageGet("missing"); err == nil {
				t.Error("expected missing-object error")
			}
			ctx.StoragePut("out", Object{Bytes: 1e6})
			return Payload{}, nil
		})
		if _, err := p.InvokeFrom(proc, "f", Payload{}); err != nil {
			t.Error(err)
		}
		if _, err := p.InvokeFrom(proc, "f", Payload{}); err != nil {
			t.Error(err)
		}
	})
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		var out []float64
		runSim(t, AWSLambda(), 42, func(p *Platform, proc *simnet.Proc) {
			_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
				ctx.Compute(5e8)
				return Payload{Bytes: 1e5}, nil
			})
			for i := 0; i < 5; i++ {
				res, err := p.InvokeFrom(proc, "f", Payload{Bytes: 2e5})
				if err != nil {
					t.Error(err)
					return
				}
				out = append(out, res.HandlerMs+res.OverheadMs)
			}
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlatformPresets(t *testing.T) {
	for _, name := range []string{"lambda", "gcf", "knix"} {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.WeightBudgetMB < 1400 {
			t.Errorf("%s: weight budget %d below the paper's M = 1400 MB", name, cfg.WeightBudgetMB)
		}
		if err := cfg.InvokeOverhead.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("azure"); err == nil {
		t.Fatal("expected unknown-platform error")
	}
	lam, gcf, knix := AWSLambda(), GoogleCloudFunctions(), KNIX()
	if lam.BillingGranMs != 1 || gcf.BillingGranMs != 100 {
		t.Fatal("billing granularities must match the paper (1 ms / 100 ms)")
	}
	if knix.InvokeOverhead.Mean() >= lam.InvokeOverhead.Mean() {
		t.Fatal("KNIX must have faster function interactions than Lambda")
	}
	if gcf.GFLOPS <= lam.GFLOPS {
		t.Fatal("GCF instances have more resources than Lambda (§V-B)")
	}
}

func TestBilledRounding(t *testing.T) {
	cases := []struct {
		ms   float64
		gran int64
		want int64
	}{
		{0, 1, 0}, {0.2, 1, 1}, {1, 1, 1}, {1.01, 1, 2},
		{99, 100, 100}, {100, 100, 100}, {101, 100, 200},
	}
	for _, c := range cases {
		if got := billed(c.ms, c.gran); got != c.want {
			t.Errorf("billed(%v,%d) = %d, want %d", c.ms, c.gran, got, c.want)
		}
	}
}

func TestInvocationNameInErrors(t *testing.T) {
	runSim(t, fastCfg(), 11, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("exploder", func(ctx *Ctx, in Payload) (Payload, error) {
			return Payload{}, errors.New("boom")
		})
		_, err := p.InvokeFrom(proc, "exploder", Payload{})
		if err == nil || !strings.Contains(err.Error(), "exploder") {
			t.Errorf("error should name the function: %v", err)
		}
	})
}

func TestZeroMsHandlerBillsNothing(t *testing.T) {
	// A handler that returns without consuming any virtual time sits exactly
	// on the 0-ms boundary: billed(0, gran) must be 0, not one granule.
	runSim(t, fastCfg(), 12, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("noop", func(ctx *Ctx, in Payload) (Payload, error) {
			return Payload{}, nil
		})
		res, err := p.InvokeFrom(proc, "noop", Payload{})
		if err != nil {
			t.Fatal(err)
		}
		if res.HandlerMs != 0 || res.BilledMs != 0 || res.TotalBilledMs != 0 {
			t.Errorf("0-ms handler billed: %+v", res)
		}
		if p.BilledMsTotal() != 0 {
			t.Errorf("platform aggregate %d, want 0", p.BilledMsTotal())
		}
	})
}

func TestGCFHundredMsRounding(t *testing.T) {
	// GCF bills in 100 ms granules: a 150 ms handler is charged 200 ms.
	cfg := GoogleCloudFunctions()
	cfg.ComputeNoise = 0
	cfg.OpOverheadMs = 0
	runSim(t, cfg, 13, func(p *Platform, proc *simnet.Proc) {
		flops := int64(0.150 * cfg.GFLOPS * 1e9)
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(flops)
			return Payload{}, nil
		})
		res, err := p.InvokeFrom(proc, "f", Payload{})
		if err != nil {
			t.Fatal(err)
		}
		if res.HandlerMs < 149 || res.HandlerMs > 151 {
			t.Fatalf("handler %v ms, want ~150", res.HandlerMs)
		}
		if res.BilledMs != 200 {
			t.Errorf("billed %d ms, want 200 (100 ms granularity)", res.BilledMs)
		}
	})
}

func TestWarmPoolConcurrentAccounting(t *testing.T) {
	// Five concurrent invocations against a pool of two prewarmed instances:
	// exactly three must cold-start, and after they all settle the pool holds
	// five warm instances, so a second concurrent wave is fully warm. Run
	// under -race this also exercises the pool counters across goroutines.
	runSim(t, fastCfg(), 14, func(p *Platform, proc *simnet.Proc) {
		_ = p.Register("f", func(ctx *Ctx, in Payload) (Payload, error) {
			ctx.Compute(2e9)
			return Payload{}, nil
		})
		if err := p.Prewarm("f", 2); err != nil {
			t.Fatal(err)
		}
		wave := func() (cold int, billed int64) {
			const n = 5
			prs := make([]*simnet.Promise[InvokeResult], n)
			for i := range prs {
				prs[i], _ = p.invokeAsync(nil, nil, "f", Payload{})
			}
			for _, pr := range prs {
				res, err := pr.Wait(proc)
				if err != nil {
					t.Fatal(err)
				}
				if res.ColdStart {
					cold++
				}
				billed += res.BilledMs
			}
			return cold, billed
		}
		cold1, b1 := wave()
		if cold1 != 3 {
			t.Errorf("first wave: %d cold starts, want 3", cold1)
		}
		cold2, b2 := wave()
		if cold2 != 0 {
			t.Errorf("second wave: %d cold starts, want 0 (pool grew to 5)", cold2)
		}
		if got := p.BilledMsTotal(); got != b1+b2 {
			t.Errorf("platform aggregate %d, want %d", got, b1+b2)
		}
		if p.Invocations() != 10 {
			t.Errorf("invocations %d, want 10", p.Invocations())
		}
	})
}

// TestCtxAndPlatformAccessors pins the handler-visible context accessors
// and the per-platform deploy-sequence counter the runtime names functions
// with.
func TestCtxAndPlatformAccessors(t *testing.T) {
	cfg := fastCfg()
	runSim(t, cfg, 1, func(p *Platform, proc *simnet.Proc) {
		if p.Env() == nil {
			t.Error("Env() returned nil")
		}
		if s1, s2 := p.NextDeploySeq(), p.NextDeploySeq(); s1 != 1 || s2 != 2 {
			t.Errorf("deploy sequence = %d, %d; want 1, 2", s1, s2)
		}
		_ = p.Register("acc", func(ctx *Ctx, in Payload) (Payload, error) {
			if ctx.FunctionName() != "acc" {
				t.Errorf("FunctionName() = %q, want acc", ctx.FunctionName())
			}
			if ctx.MemoryMB() != cfg.MemoryMB {
				t.Errorf("MemoryMB() = %d, want %d", ctx.MemoryMB(), cfg.MemoryMB)
			}
			if ctx.Killed() {
				t.Error("fresh invocation reports Killed")
			}
			return Payload{}, nil
		})
		if _, err := p.InvokeFrom(proc, "acc", Payload{}); err != nil {
			t.Error(err)
		}
	})
}
